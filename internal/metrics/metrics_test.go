package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d", c.Load())
	}
	if prev := c.Reset(); prev != 5 || c.Load() != 0 {
		t.Fatalf("reset returned %d, now %d", prev, c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("lost increments: %d", c.Load())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(0.5) != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram must report zeros")
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for v := uint64(0); v < 16; v++ {
		h.Record(v)
	}
	if h.Count() != 16 {
		t.Fatalf("count=%d", h.Count())
	}
	if got := h.Percentile(0); got != 0 {
		t.Fatalf("p0=%d", got)
	}
	if got := h.Max(); got != 15 {
		t.Fatalf("max=%d", got)
	}
	if m := h.Mean(); math.Abs(m-7.5) > 1e-9 {
		t.Fatalf("mean=%v", m)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..10000; p95 must come back within bucket resolution (~7%).
	for v := uint64(1); v <= 10000; v++ {
		h.Record(v)
	}
	p95 := float64(h.Percentile(0.95))
	if p95 < 9500*0.90 || p95 > 9500*1.10 {
		t.Fatalf("p95 = %v, want ~9500", p95)
	}
	p50 := float64(h.Percentile(0.50))
	if p50 < 5000*0.90 || p50 > 5000*1.10 {
		t.Fatalf("p50 = %v, want ~5000", p50)
	}
}

func TestHistogramQuantileClamping(t *testing.T) {
	h := NewHistogram()
	h.Record(42)
	if h.Percentile(-1) == 0 && h.Percentile(2) == 0 {
		t.Fatalf("clamped quantiles must still return data")
	}
}

// Property: percentiles are monotone in q.
func TestHistogramMonotoneProperty(t *testing.T) {
	h := NewHistogram()
	for v := uint64(1); v < 5000; v += 7 {
		h.Record(v * v % 100000)
	}
	f := func(a, b uint8) bool {
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Percentile(qa) <= h.Percentile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for j := uint64(0); j < 5000; j++ {
				h.Record(base + j)
			}
		}(uint64(i) * 1000)
	}
	wg.Wait()
	if h.Count() != 20000 {
		t.Fatalf("count=%d", h.Count())
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Record(10)
	s := h.Snapshot()
	if s.Count != 1 || s.String() == "" {
		t.Fatalf("snapshot: %+v", s)
	}
}

func TestTrafficSharesSumToOne(t *testing.T) {
	tr := NewTraffic()
	tr.Add(ClassCacheMiss, 700)
	tr.Add(ClassUpdate, 200)
	tr.Add(ClassAck, 50)
	tr.Add(ClassInvalidate, 40)
	tr.Add(ClassFlowControl, 10)
	shares := tr.Shares()
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	if shares[ClassCacheMiss] != 0.7 {
		t.Fatalf("cache miss share = %v", shares[ClassCacheMiss])
	}
}

func TestTrafficPacketsAndAddN(t *testing.T) {
	tr := NewTraffic()
	tr.AddN(ClassUpdate, 10, 830)
	if tr.Packets(ClassUpdate) != 10 || tr.Bytes(ClassUpdate) != 830 {
		t.Fatalf("AddN accounting wrong: %d pkts %d bytes",
			tr.Packets(ClassUpdate), tr.Bytes(ClassUpdate))
	}
	if tr.TotalBytes() != 830 {
		t.Fatalf("total=%d", tr.TotalBytes())
	}
}

func TestTrafficEmptyShares(t *testing.T) {
	tr := NewTraffic()
	for _, s := range tr.Shares() {
		if s != 0 {
			t.Fatalf("empty traffic must have zero shares")
		}
	}
	if tr.String() == "" {
		t.Fatalf("String must render")
	}
}

func TestMsgClassString(t *testing.T) {
	want := map[MsgClass]string{
		ClassCacheMiss:   "cache misses",
		ClassUpdate:      "updates",
		ClassInvalidate:  "invalidates",
		ClassAck:         "acks",
		ClassFlowControl: "flow control",
	}
	for c, w := range want {
		if c.String() != w {
			t.Fatalf("%d: %q", int(c), c.String())
		}
	}
	if MsgClass(99).String() == "" {
		t.Fatalf("unknown class must still render")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	dump := r.Dump()
	if len(dump) != 2 || dump[0] != "a=4" || dump[1] != "b=1" {
		t.Fatalf("dump = %v", dump)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i) % 100000)
	}
}
