package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Benchmark regression gating against committed baselines. Absolute
// throughput is machine-bound — a laptop baseline means nothing to a CI
// runner — so the comparison is on each table's *shape*: every row's
// throughput relative to its own table's first row (the ablation baseline
// row). Those ratios express the property each table exists to demonstrate
// (coalescing speeds up over per-request framing, batch frames speed up over
// single-op frames) and transfer across hosts; a fresh run whose ratio falls
// more than the tolerance below the committed ratio is a regression.
//
// Allocation columns ("allocs/op") are gated too, but absolutely: allocation
// counts are a property of the code, not the host, so a fresh row may not
// allocate more than the committed count grown by the tolerance (plus a
// small absolute slack for background-work noise).

// Regression names one failed comparison.
type Regression struct {
	Table  string
	Row    string
	Detail string
}

// CompareRuns checks fresh results against committed baselines. Tables are
// matched by ID and rows by their first cell (the ablation label); only
// tables present in both sets with a throughput column are compared.
// tolerance is the allowed relative ratio drop (0.25 = a row may lose up to
// a quarter of its committed relative speedup).
func CompareRuns(baseline, fresh []Table, tolerance float64) (string, []Regression) {
	var b strings.Builder
	var regs []Regression
	freshByID := map[string]Table{}
	for _, t := range fresh {
		freshByID[t.ID] = t
	}
	compared := 0
	for _, base := range baseline {
		cur, ok := freshByID[base.ID]
		if !ok {
			fmt.Fprintf(&b, "%s: not in fresh run, skipped\n", base.ID)
			continue
		}
		col := throughputColumn(base.Columns)
		if col < 0 || col != throughputColumn(cur.Columns) {
			fmt.Fprintf(&b, "%s: no matching throughput column, skipped\n", base.ID)
			continue
		}
		baseRatios, bOK := rowRatios(base, col)
		curRatios, cOK := rowRatios(cur, col)
		if !bOK || !cOK {
			fmt.Fprintf(&b, "%s: unparseable throughput cells, skipped\n", base.ID)
			continue
		}
		fmt.Fprintf(&b, "%s (vs row %q, tolerance %.0f%%):\n", base.ID, base.Rows[0][0], tolerance*100)
		for label, baseR := range baseRatios {
			curR, ok := curRatios[label]
			if !ok {
				fmt.Fprintf(&b, "  %-16s baseline %.2fx, missing from fresh run\n", label, baseR)
				regs = append(regs, Regression{Table: base.ID, Row: label, Detail: "row missing from fresh run"})
				continue
			}
			verdict := "ok"
			if curR < baseR*(1-tolerance) {
				verdict = "REGRESSION"
				regs = append(regs, Regression{
					Table: base.ID, Row: label,
					Detail: fmt.Sprintf("relative throughput %.2fx, committed %.2fx (floor %.2fx)", curR, baseR, baseR*(1-tolerance)),
				})
			}
			fmt.Fprintf(&b, "  %-16s committed %.2fx  fresh %.2fx  %s\n", label, baseR, curR, verdict)
			compared++
		}
		n, allocRegs := compareAllocs(&b, base, cur, tolerance)
		compared += n
		regs = append(regs, allocRegs...)
	}
	fmt.Fprintf(&b, "compared %d rows, %d regressions\n", compared, len(regs))
	return b.String(), regs
}

// allocSlack absorbs run-to-run noise in whole-process allocation counts
// (GC bookkeeping, background flushers) when comparing allocs/op cells.
const allocSlack = 0.5

// compareAllocs gates a table's allocs/op column (when both runs carry one):
// fresh allocations per op must not exceed the committed count by more than
// the tolerance fraction plus allocSlack.
func compareAllocs(b *strings.Builder, base, cur Table, tolerance float64) (int, []Regression) {
	col := allocsColumn(base.Columns)
	if col < 0 || col != allocsColumn(cur.Columns) {
		return 0, nil
	}
	baseVals := rowValues(base, col)
	curVals := rowValues(cur, col)
	if len(baseVals) == 0 {
		return 0, nil
	}
	fmt.Fprintf(b, "%s allocs/op (absolute, tolerance %.0f%% + %.1f):\n", base.ID, tolerance*100, allocSlack)
	var regs []Regression
	compared := 0
	for label, baseA := range baseVals {
		curA, ok := curVals[label]
		if !ok {
			// Missing from the fresh run (the throughput pass flags that)
			// or gate-exempt there (a "~"-marked cell).
			continue
		}
		ceiling := baseA*(1+tolerance) + allocSlack
		verdict := "ok"
		if curA > ceiling {
			verdict = "REGRESSION"
			regs = append(regs, Regression{
				Table: base.ID, Row: label,
				Detail: fmt.Sprintf("allocs/op %.2f, committed %.2f (ceiling %.2f)", curA, baseA, ceiling),
			})
		}
		fmt.Fprintf(b, "  %-16s committed %.2f  fresh %.2f  %s\n", label, baseA, curA, verdict)
		compared++
	}
	return compared, regs
}

// allocsColumn finds the allocations column, or -1.
func allocsColumn(cols []string) int {
	for i, c := range cols {
		if strings.Contains(strings.ToLower(c), "allocs") {
			return i
		}
	}
	return -1
}

// rowValues maps each row label to its absolute value in col. Cells that
// do not parse as a number are skipped, not errors: a row opts out of
// absolute gating by marking its cell (e.g. the "~"-prefixed allocs of a
// scheduling-dependent mode). Rows past the first with duplicate labels
// are skipped too.
func rowValues(t Table, col int) map[string]float64 {
	out := map[string]float64{}
	for _, row := range t.Rows {
		if len(row) == 0 || col >= len(row) {
			continue
		}
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			continue
		}
		if _, dup := out[row[0]]; dup {
			continue
		}
		out[row[0]] = v
	}
	return out
}

// throughputColumn finds the throughput column, or -1.
func throughputColumn(cols []string) int {
	for i, c := range cols {
		if strings.Contains(strings.ToLower(c), "throughput") {
			return i
		}
	}
	return -1
}

// rowRatios maps each row label to its throughput relative to the table's
// first row. Rows past the first with duplicate labels are skipped (the
// label is the match key).
func rowRatios(t Table, col int) (map[string]float64, bool) {
	if len(t.Rows) == 0 || col >= len(t.Rows[0]) {
		return nil, false
	}
	base, err := strconv.ParseFloat(t.Rows[0][col], 64)
	if err != nil || base <= 0 {
		return nil, false
	}
	out := map[string]float64{}
	for _, row := range t.Rows {
		if col >= len(row) || len(row) == 0 {
			return nil, false
		}
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return nil, false
		}
		if _, dup := out[row[0]]; dup {
			continue
		}
		out[row[0]] = v / base
	}
	return out, true
}
