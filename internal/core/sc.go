package core

import "repro/internal/timestamp"

// SC protocol (per-key Sequential Consistency, §5.2).
//
// The protocol is the update-based design of Burckhardt, fully distributed:
// a put that hits in any cache is applied locally at once — writes are
// non-blocking and reads that follow observe the new value immediately —
// and an update carrying the new value and its Lamport timestamp is
// broadcast to the other replicas. Replicas apply an update only when its
// timestamp exceeds the stored one (session ids break ties), so all replicas
// converge on the same per-key write order: the (clock, writer) pair gives
// every write a unique point in a single total order.

// WriteSC performs a local SC write. On a cache hit it increments the
// Lamport clock, stores the value, and returns the Update that must be
// broadcast to the other N-1 replicas. On a miss it returns ErrMiss and the
// caller forwards the put to the key's home shard.
func (c *Cache) WriteSC(key uint64, value []byte) (Update, error) {
	e, ok := c.table.Load().m[key]
	if !ok {
		c.stats.Misses.Add(1)
		return Update{}, ErrMiss
	}
	var out Update
	e.lock.Lock()
	if e.frozen {
		e.lock.Unlock()
		return Update{}, ErrFrozen
	}
	e.ts = e.ts.Next(c.nodeID)
	e.setValueLocked(value)
	e.dirty = true
	out = Update{Key: key, TS: e.ts, Value: append([]byte(nil), value...)}
	e.lock.Unlock()

	c.stats.Hits.Add(1)
	c.stats.WritesSC.Add(1)
	return out, nil
}

// RMWSC performs a local SC read-modify-write: under the entry lock it reads
// the current value, hands a copy to compute, and — when compute elects to
// write — applies the returned value immediately (SC writes are
// non-blocking) and returns the Update to broadcast. witness is the value
// compute observed (always a fresh copy); applied reports whether compute
// chose to write. The entry lock makes the read-compute-write sequence
// atomic against every other mutation of this replica; under SC this node is
// the key's single RMW serialization point, so replica convergence by
// timestamp order carries RMW atomicity cluster-wide.
func (c *Cache) RMWSC(key uint64, compute func(cur []byte) ([]byte, bool)) (upd Update, witness []byte, applied bool, err error) {
	e, ok := c.table.Load().m[key]
	if !ok {
		c.stats.Misses.Add(1)
		return Update{}, nil, false, ErrMiss
	}
	e.lock.Lock()
	if e.frozen {
		e.lock.Unlock()
		return Update{}, nil, false, ErrFrozen
	}
	if e.installing {
		e.lock.Unlock()
		c.stats.Misses.Add(1)
		return Update{}, nil, false, ErrMiss
	}
	witness = append([]byte(nil), e.val[:e.vlen]...)
	value, ok := compute(witness)
	if !ok {
		e.lock.Unlock()
		c.stats.Hits.Add(1)
		return Update{}, witness, false, nil
	}
	e.ts = e.ts.Next(c.nodeID)
	e.setValueLocked(value)
	e.dirty = true
	upd = Update{Key: key, TS: e.ts, Value: append([]byte(nil), value...)}
	e.lock.Unlock()

	c.stats.Hits.Add(1)
	c.stats.WritesSC.Add(1)
	return upd, witness, true, nil
}

// WriteSCWithTS performs an SC write whose serialization timestamp was
// assigned externally — by a sequencer node (the Figure 4b design the paper
// contrasts with its fully-distributed protocol). The entry's clock is
// advanced to the given timestamp if it is newer; otherwise the write is
// superseded and not applied locally (the sequencer guarantees this cannot
// happen while the sequencer is the only timestamp source).
func (c *Cache) WriteSCWithTS(key uint64, value []byte, ts timestamp.TS) (Update, error) {
	e, ok := c.table.Load().m[key]
	if !ok {
		c.stats.Misses.Add(1)
		return Update{}, ErrMiss
	}
	e.lock.Lock()
	if e.frozen {
		e.lock.Unlock()
		return Update{}, ErrFrozen
	}
	if ts.After(e.ts) {
		e.ts = ts
		e.setValueLocked(value)
		e.dirty = true
	}
	e.lock.Unlock()
	c.stats.Hits.Add(1)
	c.stats.WritesSC.Add(1)
	return Update{Key: key, TS: ts, Value: append([]byte(nil), value...)}, nil
}

// ApplyUpdateSC applies a received SC update: the change is applied only if
// the received timestamp orders after the stored one. It reports whether the
// update was applied.
func (c *Cache) ApplyUpdateSC(u Update) bool {
	e, ok := c.table.Load().m[u.Key]
	if !ok {
		// The hot set shifted between the sender's epoch and ours; the
		// update is simply dropped — the KVS home copy is the fallback.
		c.stats.UpdatesDiscarded.Add(1)
		return false
	}
	applied := false
	e.lock.Lock()
	if u.TS.After(e.ts) {
		e.ts = u.TS
		e.setValueLocked(u.Value)
		e.dirty = true
		applied = true
	}
	e.lock.Unlock()
	if applied {
		c.stats.UpdatesApplied.Add(1)
	} else {
		c.stats.UpdatesDiscarded.Add(1)
	}
	return applied
}

// MaxTS returns the highest timestamp stored for key (test hook used by
// convergence property tests).
func (c *Cache) MaxTS(key uint64) timestamp.TS {
	e, ok := c.table.Load().m[key]
	if !ok {
		return timestamp.TS{}
	}
	var ts timestamp.TS
	e.lock.Read(func() { ts = e.ts })
	return ts
}
