// Package topk implements the hot-item identification machinery ccKVS uses
// to populate its symmetric caches (EuroSys'18, §4).
//
// The paper adopts the scheme of Li et al.: a memory-efficient top-k stream
// summary (the Space-Saving algorithm of Metwally et al.) maintains an
// approximate key-popularity list; request sampling keeps its update cost off
// the critical path; and an epoch-based coordinator periodically publishes
// the current top-k as the new hot set. Because symmetric caching load
// balances requests across all servers, every server observes the same
// access distribution, so a single coordinator node suffices.
package topk

import (
	"sort"
	"sync"
)

// Entry is one item of the key-popularity list.
type Entry struct {
	Key   uint64
	Count uint64 // estimated hit count
	Err   uint64 // maximum overestimation error (Space-Saving epsilon)
}

// SpaceSaving is the Metwally et al. stream-summary: it tracks at most k
// counters and guarantees that any item with true frequency above n/k is
// present, with count overestimated by at most the smallest counter value.
// It is not safe for concurrent use; wrap it in a Sampler or Coordinator.
type SpaceSaving struct {
	k     int
	index map[uint64]int // key -> slot
	slots []Entry
}

// NewSpaceSaving returns a summary with capacity k (k must be positive).
func NewSpaceSaving(k int) *SpaceSaving {
	if k <= 0 {
		panic("topk: capacity must be positive")
	}
	return &SpaceSaving{
		k:     k,
		index: make(map[uint64]int, k),
		slots: make([]Entry, 0, k),
	}
}

// K returns the summary capacity.
func (s *SpaceSaving) K() int { return s.k }

// Len returns the number of tracked keys.
func (s *SpaceSaving) Len() int { return len(s.slots) }

// Observe records one access to key.
func (s *SpaceSaving) Observe(key uint64) {
	if i, ok := s.index[key]; ok {
		s.slots[i].Count++
		return
	}
	if len(s.slots) < s.k {
		s.index[key] = len(s.slots)
		s.slots = append(s.slots, Entry{Key: key, Count: 1})
		return
	}
	// Replace the current minimum: the new key inherits min+1 with error min.
	mi := s.minSlot()
	min := s.slots[mi]
	delete(s.index, min.Key)
	s.slots[mi] = Entry{Key: key, Count: min.Count + 1, Err: min.Count}
	s.index[key] = mi
}

func (s *SpaceSaving) minSlot() int {
	mi := 0
	for i := 1; i < len(s.slots); i++ {
		if s.slots[i].Count < s.slots[mi].Count {
			mi = i
		}
	}
	return mi
}

// Estimate returns the estimated count for key and whether it is tracked.
func (s *SpaceSaving) Estimate(key uint64) (Entry, bool) {
	i, ok := s.index[key]
	if !ok {
		return Entry{}, false
	}
	return s.slots[i], true
}

// Top returns the n highest-count entries in descending count order.
func (s *SpaceSaving) Top(n int) []Entry {
	out := make([]Entry, len(s.slots))
	copy(out, s.slots)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Reset clears the summary for a new epoch.
func (s *SpaceSaving) Reset() {
	s.index = make(map[uint64]int, s.k)
	s.slots = s.slots[:0]
}

// Sampler wraps a SpaceSaving summary with request sampling: only one in
// `rate` observations is forwarded to the summary, which the paper uses to
// keep frequency counting off the critical path. Safe for concurrent use.
type Sampler struct {
	mu    sync.Mutex
	ss    *SpaceSaving
	rate  uint64
	ticks uint64
}

// NewSampler returns a sampler forwarding 1/rate observations (rate >= 1).
func NewSampler(k int, rate uint64) *Sampler {
	if rate == 0 {
		rate = 1
	}
	return &Sampler{ss: NewSpaceSaving(k), rate: rate}
}

// Observe possibly records the access, per the sampling rate.
func (s *Sampler) Observe(key uint64) {
	s.mu.Lock()
	s.ticks++
	if s.ticks%s.rate == 0 {
		s.ss.Observe(key)
	}
	s.mu.Unlock()
}

// Top returns the current top-n entries.
func (s *Sampler) Top(n int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ss.Top(n)
}

// TopAndReset atomically snapshots the top-n entries and starts a new
// epoch: an observation lands either in the returned snapshot or in the
// next epoch, never in neither (a separate Top-then-Reset would drop
// whatever arrived in between).
func (s *Sampler) TopAndReset(n int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.ss.Top(n)
	s.ss.Reset()
	s.ticks = 0
	return out
}

// Reset starts a new epoch.
func (s *Sampler) Reset() {
	s.mu.Lock()
	s.ss.Reset()
	s.ticks = 0
	s.mu.Unlock()
}

// HotSet is an immutable published set of hot keys, the content of the
// symmetric caches for one epoch.
type HotSet struct {
	Epoch uint64
	Keys  []uint64
	set   map[uint64]struct{}
}

// Contains reports whether key is in the hot set.
func (h *HotSet) Contains(key uint64) bool {
	_, ok := h.set[key]
	return ok
}

// Size returns the number of hot keys.
func (h *HotSet) Size() int { return len(h.Keys) }

// newHotSet builds a HotSet from keys.
func newHotSet(epoch uint64, keys []uint64) *HotSet {
	set := make(map[uint64]struct{}, len(keys))
	for _, k := range keys {
		set[k] = struct{}{}
	}
	return &HotSet{Epoch: epoch, Keys: keys, set: set}
}

// Coordinator is the single cache coordinator of §4: it aggregates sampled
// observations, and at each epoch boundary publishes the top `cacheSize` keys
// as the new hot set. Subscribers (the nodes' symmetric caches) receive the
// published set via the callback registered with Subscribe. Thread-safe.
type Coordinator struct {
	mu        sync.Mutex
	sampler   *Sampler
	cacheSize int
	epoch     uint64
	current   *HotSet
	subs      []func(*HotSet)
	// churn counts keys added/removed across epochs, mirroring the paper's
	// observation that only a handful of keys change per epoch.
	lastAdded, lastRemoved int
}

// NewCoordinator returns a coordinator that will publish hot sets of
// cacheSize keys, tracking trackK >= cacheSize candidates with the given
// sampling rate.
func NewCoordinator(cacheSize, trackK int, sampleRate uint64) *Coordinator {
	if trackK < cacheSize {
		trackK = cacheSize
	}
	return &Coordinator{
		sampler:   NewSampler(trackK, sampleRate),
		cacheSize: cacheSize,
		current:   newHotSet(0, nil),
	}
}

// Observe feeds one sampled request key to the coordinator.
func (c *Coordinator) Observe(key uint64) { c.sampler.Observe(key) }

// Seed installs an initial hot set (epoch 0) without publishing to
// subscribers, so churn across the first real epoch is measured against
// the bootstrap content rather than an empty set.
func (c *Coordinator) Seed(keys []uint64) {
	c.mu.Lock()
	c.current = newHotSet(0, append([]uint64(nil), keys...))
	c.mu.Unlock()
}

// Current returns the most recently published hot set.
func (c *Coordinator) Current() *HotSet {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

// Subscribe registers a callback invoked (synchronously) with every newly
// published hot set.
func (c *Coordinator) Subscribe(fn func(*HotSet)) {
	c.mu.Lock()
	c.subs = append(c.subs, fn)
	c.mu.Unlock()
}

// EndEpoch closes the current epoch: the top cacheSize keys observed since
// the previous epoch boundary become the new hot set, which is published to
// all subscribers. The epoch always rolls, and the returned (added, removed)
// churn always describes the published set relative to the previous one:
// when the epoch observed too few distinct keys to fill the cache — a short
// epoch, aggressive sampling, or an idle system — incumbent keys are
// retained to fill the remainder rather than shrinking (or, in the extreme,
// clearing) the hot set, so an empty epoch publishes the previous set again
// with zero churn. The sampler is reset so each epoch measures popularity
// afresh, which is what lets the hot set track a moving workload.
//
// Selection applies demotion hysteresis: candidates are ranked by their
// epoch count with incumbents' counts doubled, so an incumbent is displaced
// only by a challenger observed more than twice as often. Below the first
// few dozen ranks of a Zipf distribution the estimated counts are nearly
// tied, so a memoryless top-k re-rolls its tail every epoch; the sticky
// factor suppresses that noise (churn then tracks genuine popularity
// shifts, the "handful of keys per epoch" the paper observes) while both a
// clearly hotter challenger and a hotspot move still churn the set — cold
// incumbents stop being observed and score zero.
func (c *Coordinator) EndEpoch() (*HotSet, int, int) {
	scored := c.sampler.TopAndReset(2 * c.cacheSize)

	c.mu.Lock()
	incumbent := make(map[uint64]struct{}, len(c.current.Keys))
	for _, k := range c.current.Keys {
		incumbent[k] = struct{}{}
	}
	for i := range scored {
		if _, ok := incumbent[scored[i].Key]; ok {
			scored[i].Count *= 2 // sticky factor
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Count != scored[j].Count {
			return scored[i].Count > scored[j].Count
		}
		return scored[i].Key < scored[j].Key
	})
	keys := make([]uint64, 0, c.cacheSize)
	seen := make(map[uint64]struct{}, c.cacheSize)
	add := func(k uint64) {
		if _, dup := seen[k]; !dup && len(keys) < c.cacheSize {
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
	}
	for _, e := range scored {
		add(e.Key)
	}
	// Incumbent backfill for short epochs (too few distinct keys observed
	// to fill the cache), hottest-first order preserved.
	for _, k := range c.current.Keys {
		add(k)
	}
	c.epoch++
	next := newHotSet(c.epoch, keys)
	added, removed := 0, 0
	for _, k := range keys {
		if !c.current.Contains(k) {
			added++
		}
	}
	for _, k := range c.current.Keys {
		if !next.Contains(k) {
			removed++
		}
	}
	c.current = next
	c.lastAdded, c.lastRemoved = added, removed
	subs := append([]func(*HotSet){}, c.subs...)
	c.mu.Unlock()

	for _, fn := range subs {
		fn(next)
	}
	return next, added, removed
}

// Churn returns the (added, removed) key counts of the last epoch change.
func (c *Coordinator) Churn() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastAdded, c.lastRemoved
}
