package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.Fields(cell)[0], 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestTableRender(t *testing.T) {
	tab := Table{ID: "x", Title: "demo", Columns: []string{"a", "bee"}}
	tab.AddRow("r1", 3.14159)
	tab.AddRow(7, "text")
	tab.Notes = append(tab.Notes, "a note")
	out := tab.Render()
	for _, want := range []string{"demo", "bee", "3.14", "r1", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{0: "0", 1234.6: "1235", 42.42: "42.4", 3.14159: "3.14"}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q want %q", in, got, want)
		}
	}
}

// CompareRuns gates throughput by per-table ratio shape and allocs/op by
// absolute ceiling: a fresh run that keeps its relative speedups but
// allocates more per op than the committed baseline (plus tolerance and
// slack) is a regression.
func TestCompareRunsGatesAllocsColumns(t *testing.T) {
	mk := func(tputB, allocB, tputC, allocC float64) (Table, Table) {
		base := Table{ID: "client-edge", Columns: []string{"mode", "throughput ops/s", "allocs/op"}}
		base.AddRow("single-op", 1000.0, allocB)
		base.AddRow("batched", tputB, allocB/4)
		base.AddRow("auto-batch", 1000.0, "~4.5")
		cur := Table{ID: "client-edge", Columns: []string{"mode", "throughput ops/s", "allocs/op"}}
		cur.AddRow("single-op", 2000.0, allocC)
		cur.AddRow("batched", tputC, allocC/4)
		cur.AddRow("auto-batch", 2000.0, "~11.1")
		return base, cur
	}

	// Healthy: ratios hold, allocations flat.
	base, cur := mk(3000, 8, 6000, 8)
	report, regs := CompareRuns([]Table{base}, []Table{cur}, 0.25)
	if len(regs) != 0 {
		t.Fatalf("healthy run flagged: %v\n%s", regs, report)
	}
	if !strings.Contains(report, "allocs/op") {
		t.Fatalf("report never mentions the allocs gate:\n%s", report)
	}

	// Allocation regression only: ratios hold, single-op row allocates 3x.
	base, cur = mk(3000, 8, 6000, 24)
	_, regs = CompareRuns([]Table{base}, []Table{cur}, 0.25)
	if len(regs) == 0 {
		t.Fatal("3x allocs/op growth not flagged")
	}
	for _, r := range regs {
		if !strings.Contains(r.Detail, "allocs/op") {
			t.Fatalf("unexpected non-alloc regression: %+v", r)
		}
	}

	// Throughput regression still caught with the allocs column present.
	base, cur = mk(3000, 8, 2000*1.5, 8) // batched ratio 3.0 -> 1.5
	_, regs = CompareRuns([]Table{base}, []Table{cur}, 0.25)
	if len(regs) == 0 {
		t.Fatal("halved relative throughput not flagged")
	}
}

func TestFig1Shape(t *testing.T) {
	tab := Fig1()
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	hottest := parseCell(t, tab.Rows[0][1])
	if hottest < 5.5 || hottest > 9.5 {
		t.Errorf("hottest server %.2fx avg, paper says >7x", hottest)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if !strings.Contains(last[0], "imbalance") {
		t.Errorf("missing imbalance summary row")
	}
}

func TestFig3Shape(t *testing.T) {
	tab := Fig3()
	// Hit rates increase down the rows (larger cache) and right-to-left
	// (higher alpha) at fixed size.
	for i := 1; i < len(tab.Rows); i++ {
		for col := 1; col <= 3; col++ {
			if parseCell(t, tab.Rows[i][col]) < parseCell(t, tab.Rows[i-1][col]) {
				t.Errorf("row %d col %d: hit rate not monotone in cache size", i, col)
			}
		}
	}
	for _, row := range tab.Rows {
		if parseCell(t, row[1]) < parseCell(t, row[3]) {
			t.Errorf("alpha=1.01 must dominate alpha=0.90: %v", row)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	tab := Fig8()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At alpha=0.99 (column 2): ccKVS > Uniform > Base > Base-EREW.
	uniform := parseCell(t, tab.Rows[0][2])
	erew := parseCell(t, tab.Rows[1][2])
	base := parseCell(t, tab.Rows[2][2])
	cckvs := parseCell(t, tab.Rows[3][2])
	if !(cckvs > uniform && uniform > base && base > erew) {
		t.Errorf("ordering wrong: ccKVS=%v Uniform=%v Base=%v EREW=%v", cckvs, uniform, base, erew)
	}
	if ratio := cckvs / base; ratio < 2.8 || ratio > 3.8 {
		t.Errorf("ccKVS/Base = %.2f, paper says ~3.2", ratio)
	}
}

func TestFig9Shape(t *testing.T) {
	tab := Fig9()
	for _, row := range tab.Rows {
		hits, misses := parseCell(t, row[1]), parseCell(t, row[2])
		total, uniform := parseCell(t, row[3]), parseCell(t, row[4])
		if hits+misses < total*0.99 || hits+misses > total*1.01 {
			t.Errorf("hits+misses != total: %v", row)
		}
		if misses < uniform*0.85 || misses > uniform*1.15 {
			t.Errorf("miss throughput should track Uniform: %v", row)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tab := Fig10()
	prevSC, prevLin := 1e18, 1e18
	for _, row := range tab.Rows {
		sc, lin := parseCell(t, row[2]), parseCell(t, row[3])
		if sc > prevSC || lin > prevLin {
			t.Errorf("throughput must fall with write ratio: %v", row)
		}
		if sc < lin {
			t.Errorf("SC must dominate Lin: %v", row)
		}
		prevSC, prevLin = sc, lin
	}
	// At 5% writes ccKVS-Lin still beats Base.
	last := tab.Rows[len(tab.Rows)-1]
	if parseCell(t, last[3]) <= parseCell(t, last[4]) {
		t.Errorf("Lin@5%% must beat Base: %v", last)
	}
}

func TestFig11Shape(t *testing.T) {
	tab := Fig11()
	for _, row := range tab.Rows {
		total := 0.0
		for col := 2; col <= 6; col++ {
			total += parseCell(t, row[col])
		}
		if total < 99 || total > 101 {
			t.Errorf("shares must sum to 100%%: %v (got %.1f)", row, total)
		}
		if strings.Contains(row[0], "SC") && parseCell(t, row[4]) != 0 {
			t.Errorf("SC must have no invalidation traffic: %v", row)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	tab := Fig12()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		base, lin, sc := parseCell(t, row[2]), parseCell(t, row[3]), parseCell(t, row[4])
		if !(sc >= lin && lin > base) {
			t.Errorf("ordering must hold at every size: %v", row)
		}
	}
}

func TestFig13aShape(t *testing.T) {
	tab := Fig13a()
	for _, row := range tab.Rows {
		without, with := parseCell(t, row[1]), parseCell(t, row[2])
		if with <= without*0.99 {
			t.Errorf("coalescing must raise utilization: %v", row)
		}
	}
	// Small objects without coalescing are packet-rate bound.
	if !strings.Contains(tab.Rows[0][3], "packet") {
		t.Errorf("40B w/o coalescing should be packet-rate bound: %v", tab.Rows[0])
	}
}

func TestFig13bShape(t *testing.T) {
	tab := Fig13b()
	// 40B read-only row: ccKVS-SC > 2000 MRPS and > 2x Base.
	row := tab.Rows[0]
	base, sc := parseCell(t, row[2]), parseCell(t, row[4])
	if sc < 2000 {
		t.Errorf("coalesced ccKVS = %.0f MRPS, paper reports > 2000", sc)
	}
	if sc < 2*base {
		t.Errorf("coalesced ccKVS must stay > 2x Base: %v", row)
	}
}

func TestFig13cShape(t *testing.T) {
	tab := Fig13c(20_000)
	if len(tab.Rows) < 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	// Latency rises with load; everything stays well under 1ms.
	if parseCell(t, last[1]) < parseCell(t, first[1]) {
		t.Errorf("read-only avg latency must rise with load")
	}
	for _, row := range tab.Rows {
		for col := 1; col <= 6; col++ {
			if v := parseCell(t, row[col]); v <= 0 || v > 1000 {
				t.Errorf("latency %v out of range in %v", v, row)
			}
		}
	}
	// Lin p95 clearly above Lin avg at the highest load.
	if parseCell(t, last[6]) < parseCell(t, last[5])*1.2 {
		t.Errorf("Lin p95 should exceed avg at high load: %v", last)
	}
}

func TestFig14Shape(t *testing.T) {
	tab := Fig14()
	// Model at 9 nodes close to sim at 9 nodes (paper: within 2%).
	for _, row := range tab.Rows {
		if row[0] != "9" {
			continue
		}
		modelSC, simSC := parseCell(t, row[2]), parseCell(t, row[5])
		if diff := (modelSC - simSC) / simSC; diff > 0.1 || diff < -0.1 {
			t.Errorf("model/sim SC diverge at 9 nodes: %v vs %v", modelSC, simSC)
		}
	}
	// Uniform model grows monotonically.
	prev := 0.0
	for _, row := range tab.Rows {
		u := parseCell(t, row[1])
		if u <= prev {
			t.Errorf("Uniform model must grow with N")
		}
		prev = u
	}
}

func TestFig15Shape(t *testing.T) {
	tab := Fig15()
	prevSC := 1e18
	for _, row := range tab.Rows {
		sc, lin := parseCell(t, row[1]), parseCell(t, row[2])
		if sc <= lin {
			t.Errorf("SC break-even must exceed Lin: %v", row)
		}
		if sc > prevSC {
			t.Errorf("break-even must fall with N: %v", row)
		}
		prevSC = sc
		// Simulated values in the same ballpark as the model (within 2x).
		simSC := parseCell(t, row[3])
		if simSC < sc/2 || simSC > sc*2 {
			t.Errorf("sim SC break-even %v far from model %v", simSC, sc)
		}
	}
}

func TestVerificationTable(t *testing.T) {
	tab := Verification()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[5] != "verified" {
			t.Errorf("%v", row)
		}
	}
}

func TestAblationWriteSerialization(t *testing.T) {
	tab := AblationWriteSerialization()
	for _, row := range tab.Rows {
		dist := parseCell(t, row[1])
		seq := parseCell(t, row[2])
		prim := parseCell(t, row[3])
		if !(dist >= seq && seq >= prim) {
			t.Errorf("fully distributed must dominate sequencer must dominate primary: %v", row)
		}
	}
	// At 20% writes the primary is clearly the bottleneck.
	last := tab.Rows[len(tab.Rows)-1]
	if parseCell(t, last[3]) > parseCell(t, last[1])*0.7 {
		t.Errorf("primary should collapse under heavy hot writes: %v", last)
	}
}

func TestAblationCoalesceFactor(t *testing.T) {
	tab := AblationCoalesceFactor()
	first := parseCell(t, tab.Rows[0][1])
	last := parseCell(t, tab.Rows[len(tab.Rows)-1][1])
	if last <= first {
		t.Errorf("coalescing must help: %v -> %v", first, last)
	}
	// Monotone non-decreasing through the sweep.
	prev := 0.0
	for _, row := range tab.Rows {
		v := parseCell(t, row[1])
		if v < prev*0.999 {
			t.Errorf("throughput dipped in sweep: %v", tab.Rows)
		}
		prev = v
	}
}

func TestAblationCreditBatch(t *testing.T) {
	tab := AblationCreditBatch()
	first := parseCell(t, tab.Rows[0][1])              // fc share at batch=1
	last := parseCell(t, tab.Rows[len(tab.Rows)-1][1]) // fc share at batch=32
	if last >= first {
		t.Errorf("credit batching must shrink flow-control share: %v -> %v", first, last)
	}
	if last > 2 {
		t.Errorf("batched flow control should be negligible, got %.2f%%", last)
	}
}

func TestAblationCacheSize(t *testing.T) {
	tab := AblationCacheSize()
	prevHit := 0.0
	for _, row := range tab.Rows {
		hit := parseCell(t, row[1])
		if hit < prevHit {
			t.Errorf("hit rate must grow with cache size")
		}
		prevHit = hit
	}
}

func TestAllRegistryRuns(t *testing.T) {
	all := All()
	// fig13c is slow; covered by its own test above.
	delete(all, "fig13c")
	delete(all, "verify") // covered above
	for id, fn := range all {
		tab := fn()
		if tab.ID != id {
			t.Errorf("registry id %q renders table id %q", id, tab.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if out := tab.Render(); len(out) == 0 {
			t.Errorf("%s: empty render", id)
		}
	}
}

func TestLocalValidation(t *testing.T) {
	tab, err := LocalValidation(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// ccKVS rows must show high hit rates; baselines zero.
	for _, row := range tab.Rows {
		hit := parseCell(t, row[2])
		if strings.HasPrefix(row[0], "ccKVS") && hit < 30 {
			t.Errorf("%s hit rate %.1f%% too low", row[0], hit)
		}
		if strings.HasPrefix(row[0], "Base") && hit != 0 {
			t.Errorf("%s must have no cache hits", row[0])
		}
	}
}

func TestLocalSerializationAblation(t *testing.T) {
	tab, err := LocalSerializationAblation(400)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		atZero := parseCell(t, row[2])
		elsewhere := parseCell(t, row[3])
		switch row[0] {
		case "primary":
			if elsewhere != 0 || atZero == 0 {
				t.Errorf("primary must execute all writes at node 0: %v", row)
			}
		case "distributed", "sequencer":
			if elsewhere == 0 {
				t.Errorf("%s must spread write execution: %v", row[0], row)
			}
		}
	}
}
