package cluster

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fabric"
	"repro/internal/metrics"
)

// The request-coalescing pipeline of §6.3/§8.5, applied to the remote-access
// (cache-miss) path. The paper's cache threads never send one network packet
// per remote request: outstanding requests bound for the same home machine
// ride together in multi-request packets, shifting the bottleneck from the
// switch packet-processing rate to raw bandwidth (Figure 13a) and letting
// credits be charged per packet rather than per request.
//
// This reproduction keeps the same shape in goroutine form: every *worker*
// runs one sender per peer, so a node's outbound request streams are as
// parallel as its worker bank. Callers enqueue not-yet-encoded requests
// (wireReq); the sender drains whatever is pending — up to maxMsgs requests
// or maxBytes payload per packet — encoding each entry straight into the
// packet buffer, and flushes immediately when the pipeline runs dry, so an
// isolated request never waits for company (opportunistic batching, exactly
// like fabric.Batcher's contract). Concurrency is the only source of
// coalescing: a single closed-loop client sees one request per packet, many
// clients (or one MultiGet/MultiPut) see multi-request packets.
//
// Flow control: one credit is acquired per request *packet*; the batched
// response packet is the implicit credit update (see rpcClient.handleResponse).

// ErrPipelineClosed fails remote calls issued against a closed cluster.
var ErrPipelineClosed = errors.New("cluster: request pipeline closed")

// pipeline aggregates outstanding remote requests per destination node for
// one worker.
type pipeline struct {
	w        *worker
	maxMsgs  int
	maxBytes int

	mu     sync.RWMutex
	queues map[uint8]chan wireReq
	closed bool
	wg     sync.WaitGroup
}

// newPipeline starts one sender goroutine per remote peer.
func newPipeline(w *worker, peers, depth, maxMsgs, maxBytes int) *pipeline {
	pl := &pipeline{
		w:        w,
		maxMsgs:  maxMsgs,
		maxBytes: maxBytes,
		queues:   make(map[uint8]chan wireReq, peers),
	}
	for peer := 0; peer < peers; peer++ {
		if peer == int(w.node.id) {
			continue
		}
		q := make(chan wireReq, depth)
		pl.queues[uint8(peer)] = q
		pl.wg.Add(1)
		go pl.sender(uint8(peer), q)
	}
	return pl
}

// enqueue hands one request to home's sender. The request is failed (never
// dropped) if the pipeline is closed or home is unknown, so callers blocked
// on the pending channel always complete.
func (pl *pipeline) enqueue(home uint8, q wireReq) {
	pl.mu.RLock()
	if pl.closed {
		pl.mu.RUnlock()
		pl.w.rpc.fail([]uint64{q.id}, ErrPipelineClosed)
		return
	}
	ch := pl.queues[home]
	if ch == nil {
		pl.mu.RUnlock()
		pl.w.rpc.fail([]uint64{q.id}, errors.New("cluster: no pipeline for home node"))
		return
	}
	// The channel send stays under the read lock so close() cannot close the
	// queue between the check and the send.
	ch <- q
	pl.mu.RUnlock()
}

// sender drains home's queue into multi-request packets. Each iteration
// takes one request (blocking) and then opportunistically coalesces whatever
// else is already pending, up to the packet limits. A request that would
// push the packet past maxBytes is carried into the next packet (a single
// oversized request still ships alone — it must go somehow).
func (pl *pipeline) sender(home uint8, q chan wireReq) {
	defer pl.wg.Done()
	w := pl.w
	n := w.node
	cfg := n.cluster.cfg
	kvsAddr := fabric.Addr{Node: home, Thread: cfg.kvsThread(w.idx)}
	srcAddr := fabric.Addr{Node: n.id, Thread: cfg.respThread(w.idx)}
	ids := make([]uint64, 0, pl.maxMsgs)
	// When the transport serializes packets during Send (TCP), the packet
	// buffer is reused across iterations — the request hot path then
	// allocates nothing per packet. Reference-passing transports get a
	// fresh buffer per packet.
	reuse := n.cluster.trCopies
	var buf []byte
	var carry *wireReq
	for {
		var first wireReq
		if carry != nil {
			first, carry = *carry, nil
		} else {
			var ok bool
			if first, ok = <-q; !ok {
				return
			}
		}
		if reuse {
			buf = buf[:0]
		} else {
			buf = make([]byte, 0, first.encodedSize()*2)
		}
		buf = first.appendTo(buf)
		ids = append(ids[:0], first.id)
	collect:
		for len(ids) < pl.maxMsgs && len(buf) < pl.maxBytes {
			select {
			case it, ok := <-q:
				if !ok {
					break collect
				}
				if len(buf)+it.encodedSize() > pl.maxBytes {
					carry = &it // would bust the byte bound: next packet
					break collect
				}
				buf = it.appendTo(buf)
				ids = append(ids, it.id)
			default:
				break collect // pipeline drained: flush now, never wait
			}
		}
		// One credit per packet (§6.3): the batched response restores it. A
		// failed acquire means home left the membership view (its budget was
		// dropped by the view change): fail the whole batch — this is what
		// fails requests *queued* toward a dead peer, not just the in-flight
		// ones rpcClient.failPeer catches — and keep draining; the queue may
		// still hold requests enqueued before the flip.
		if !w.credits.Acquire(kvsAddr) {
			w.rpc.fail(ids, fmt.Errorf("cluster: request for node %d dropped (%w)", home, ErrNodeDown))
			continue
		}
		err := n.cluster.transport.Send(fabric.Packet{
			Src:   srcAddr,
			Dst:   kvsAddr,
			Class: metrics.ClassCacheMiss,
			Data:  buf,
		})
		if err != nil {
			// No response will arrive to restore the credit; put it back so
			// the drain of a closing pipeline cannot starve.
			w.credits.Grant(kvsAddr, 1)
			w.rpc.fail(ids, err)
			continue
		}
		n.RemoteReqPackets.Add(1)
		n.RemoteReqMsgs.Add(uint64(len(ids)))
	}
}

// close stops accepting requests and waits for the senders to drain: queued
// requests still go out (their responses complete the waiting callers, so
// call this while the transport is up) or fail when the transport refuses
// the send. Requests enqueued after close fail with ErrPipelineClosed.
func (pl *pipeline) close() {
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return
	}
	pl.closed = true
	for _, q := range pl.queues {
		close(q)
	}
	pl.mu.Unlock()
	pl.wg.Wait()
}
