package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// exec runs the CLI with args and returns exit code, stdout and stderr.
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListPrintsExperimentIDs(t *testing.T) {
	code, out, _ := exec(t, "-list")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, id := range []string{"ablation-coalesce", "ablation-serialization"} {
		if !strings.Contains(out, id) {
			t.Fatalf("-list output missing %q:\n%s", id, out)
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := exec(t, "-definitely-not-a-flag"); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code, _, _ := exec(t, "-h"); code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
}

func TestNoArgsPrintsUsage(t *testing.T) {
	code, _, errb := exec(t)
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb, "Usage") && !strings.Contains(errb, "-fig") {
		t.Fatalf("no usage text on stderr:\n%s", errb)
	}
}

func TestUnknownExperimentExitsTwo(t *testing.T) {
	code, _, errb := exec(t, "-fig", "no-such-figure")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown experiment") {
		t.Fatalf("missing diagnostic:\n%s", errb)
	}
}

func TestAnalyticExperimentRenders(t *testing.T) {
	code, out, errb := exec(t, "-fig", "ablation-coalesce")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errb)
	}
	if !strings.Contains(out, "ablation-coalesce") {
		t.Fatalf("table missing header:\n%s", out)
	}
}

// -json must archive the produced tables so CI can accumulate a benchmark
// trajectory across runs.
func TestJSONArtifactWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	code, out, errb := exec(t, "-fig", "ablation-coalesce", "-json", path)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errb)
	}
	if !strings.Contains(out, "wrote 1 table(s)") {
		t.Fatalf("missing json confirmation:\n%s", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Tables []experiments.Table `json:"tables"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(doc.Tables) != 1 || doc.Tables[0].ID != "ablation-coalesce" ||
		len(doc.Tables[0].Rows) == 0 {
		t.Fatalf("artifact content wrong: %+v", doc)
	}
}

// The churn ablation drives the real cluster with a background refresh loop
// — a tiny end-to-end run of the whole reconfiguration stack.
func TestChurnAblationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster run")
	}
	code, out, errb := exec(t, "-churn", "-ops", "200")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errb)
	}
	for _, want := range []string{"none", "full reinstall", "incremental"} {
		if !strings.Contains(out, want) {
			t.Fatalf("churn table missing %q row:\n%s", want, out)
		}
	}
}
