package core

// Lin protocol (per-key Linearizability, §5.2).
//
// Lin writes are synchronous: a put may return only after its value has
// become visible to all replicas. The protocol is two-phase, adapted from
// Guerraoui et al.'s high-throughput atomic storage algorithm:
//
//  1. The writer moves the entry to the transient Write state, tags the
//     write with a fresh Lamport timestamp and broadcasts invalidations.
//  2. Every replica that receives an invalidation with a timestamp greater
//     than its stored one transitions the entry to Invalid (reads stall)
//     and always acknowledges — acks are unconditional so that concurrent
//     writers can never starve each other (deadlock freedom).
//  3. When the writer has gathered N-1 acks it applies the value locally
//     (if no higher-timestamped write intervened), transitions the entry
//     back to Valid and broadcasts the update; replicas in Invalid state
//     apply an update exactly when its timestamp matches the invalidation
//     they observed last, otherwise the update is discarded.
//
// Writes are fully distributed: any replica can initiate a write for any
// cached key; serialization comes from the timestamps alone.

// WriteLinStart begins a Lin write. On a cache hit it stages the value,
// moves the entry to the Write state and returns the Invalidation to
// broadcast. The write completes when ApplyAck reports done; until then
// reads on this node return the pre-write value (the put has not returned,
// so that is linearizable), and further local writes to the key are refused
// with ErrWritePending.
func (c *Cache) WriteLinStart(key uint64, value []byte) (Invalidation, error) {
	e, ok := c.table.Load().m[key]
	if !ok {
		c.stats.Misses.Add(1)
		return Invalidation{}, ErrMiss
	}
	var inv Invalidation
	e.lock.Lock()
	if e.frozen {
		// The key is being demoted; the caller retries until the entry is
		// removed and the write misses to the home shard (which by then
		// holds the demotion's write-back).
		e.lock.Unlock()
		return Invalidation{}, ErrFrozen
	}
	if e.pendActive {
		e.lock.Unlock()
		return Invalidation{}, ErrWritePending
	}
	// The new timestamp must dominate everything this replica has seen,
	// including a concurrent writer's invalidation timestamp. The writer
	// stamps its own copy too: at completion, e.ts == pendTS tells it that
	// no higher-timestamped write intervened.
	e.pendTS = e.ts.Next(c.nodeID)
	e.ts = e.pendTS
	if len(e.pendVal) < len(value) {
		e.pendVal = make([]byte, len(value))
	}
	copy(e.pendVal[:len(value)], value)
	e.pendVlen = len(value)
	e.pendActive = true
	e.acks = 0
	if e.state == StateValid {
		e.state = StateWrite
	}
	inv = Invalidation{Key: key, TS: e.pendTS, From: c.nodeID}
	e.lock.Unlock()

	c.stats.Hits.Add(1)
	c.stats.WritesLin.Add(1)
	return inv, nil
}

// ApplyInvalidation processes a received invalidation and returns the Ack to
// send back to the writer. Acks are always produced; the entry is
// invalidated only when the incoming timestamp orders after the stored one.
// A replica that is itself in the Write state can thus lose the race: its
// entry becomes Invalid and its own completion will not publish its value.
func (c *Cache) ApplyInvalidation(inv Invalidation) (Ack, bool) {
	c.stats.Invalidations.Add(1)
	e, ok := c.table.Load().m[inv.Key]
	if !ok {
		// Not cached this epoch: nothing to invalidate, but still ack so
		// the writer can make progress.
		return Ack{Key: inv.Key, TS: inv.TS, From: c.nodeID}, false
	}
	invalidated := false
	e.lock.Lock()
	if inv.TS.After(e.ts) {
		e.ts = inv.TS
		e.state = StateInvalid
		invalidated = true
	}
	e.lock.Unlock()
	return Ack{Key: inv.Key, TS: inv.TS, From: c.nodeID}, invalidated
}

// ApplyAck records an acknowledgement for this node's outstanding write.
// When the last of the N-1 acks arrives, the write completes: the staged
// value is applied locally if its timestamp is still the highest observed
// (otherwise a concurrent writer won the race and its update will carry the
// final value), the entry returns to Valid when appropriate, and the Update
// to broadcast is returned with done=true.
func (c *Cache) ApplyAck(a Ack) (Update, bool) {
	e, ok := c.table.Load().m[a.Key]
	if !ok {
		return Update{}, false
	}
	c.stats.AcksReceived.Add(1)

	var out Update
	done := false
	e.lock.Lock()
	if e.pendActive && a.TS == e.pendTS {
		e.acks++
		if e.acks >= c.numNodes-1 {
			done = true
			e.pendActive = false
			if e.ts == e.pendTS {
				// Our write is still the latest this replica has seen:
				// perform it locally and publish.
				e.setValueLocked(e.pendVal[:e.pendVlen])
				e.dirty = true
				e.state = StateValid
			} else {
				// A concurrent write with a higher timestamp invalidated
				// us; our value is superseded before ever becoming
				// visible. The entry stays Invalid awaiting the winner's
				// update.
				c.stats.WriteConflictsLost.Add(1)
			}
			out = Update{
				Key:   a.Key,
				TS:    a.TS,
				Value: append([]byte(nil), e.pendVal[:e.pendVlen]...),
			}
		}
	}
	e.lock.Unlock()
	return out, done
}

// ApplyUpdateLin applies a received Lin update: the value is installed only
// when the entry is Invalid and the update's timestamp matches the
// invalidation's, i.e. this is exactly the update the replica is waiting
// for; stale updates (superseded by a higher-timestamped invalidation) are
// discarded. It reports whether the update was applied.
func (c *Cache) ApplyUpdateLin(u Update) bool {
	e, ok := c.table.Load().m[u.Key]
	if !ok {
		c.stats.UpdatesDiscarded.Add(1)
		return false
	}
	applied := false
	e.lock.Lock()
	if e.state == StateInvalid && u.TS == e.ts {
		e.setValueLocked(u.Value)
		e.dirty = true
		e.state = StateValid
		applied = true
	}
	e.lock.Unlock()
	if applied {
		c.stats.UpdatesApplied.Add(1)
	} else {
		c.stats.UpdatesDiscarded.Add(1)
	}
	return applied
}

// PendingWrite reports whether this node has an outstanding Lin write for
// key (test hook).
func (c *Cache) PendingWrite(key uint64) bool {
	e, ok := c.table.Load().m[key]
	if !ok {
		return false
	}
	var p bool
	e.lock.Read(func() { p = e.pendActive })
	return p
}
