package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// LocalWorkerScalingAblation measures how per-node worker banks scale the
// remote-access path on the real in-process cluster: the cache-less Base
// system under the paper's Zipfian preset pushes (N-1)/N of all requests
// over the fabric, so every op crosses a KVS dispatcher — exactly the
// single-goroutine bottleneck multi-worker nodes remove (§6.2's cache/KVS
// thread partitioning). Rows sweep WorkersPerNode; on multi-core hosts the
// 4-worker row must beat the 1-worker row (the CI gate), on a single
// hardware thread scaling is physically impossible and the gate is skipped.
func LocalWorkerScalingAblation(opsPerClient int, requireScaling bool) (Table, error) {
	if opsPerClient <= 0 {
		opsPerClient = 3000
	}
	t := Table{
		ID:      "local-workers",
		Title:   "Per-node worker scaling on the live cluster [3 nodes, Base, alpha=0.99, 1% writes]",
		Columns: []string{"workers/node", "throughput ops/s", "remote ops/s", "speedup", "p95 read us"},
	}
	const (
		nodes   = 3
		numKeys = 20000
		clients = 16
	)
	wl, _ := workload.Preset(workload.PaperDefault, numKeys)
	wl.Seed = 99

	tput := map[int]float64{}
	var baseline float64
	for _, w := range []int{1, 2, 4, 8} {
		cl, err := cluster.New(cluster.Config{
			Nodes: nodes, System: cluster.Base, NumKeys: numKeys, WorkersPerNode: w,
		})
		if err != nil {
			return Table{}, fmt.Errorf("workers=%d: %w", w, err)
		}
		cl.Populate()
		res, err := cl.Run(cluster.RunOptions{
			Clients:      clients,
			OpsPerClient: opsPerClient,
			Workload:     wl,
		})
		cl.Close()
		if err != nil {
			return Table{}, fmt.Errorf("workers=%d: %w", w, err)
		}
		remoteRate := float64(res.RemoteOps) / res.Duration.Seconds()
		tput[w] = remoteRate
		if w == 1 {
			baseline = res.Throughput
		}
		t.AddRow(fmt.Sprintf("%d", w), res.Throughput, remoteRate,
			fmt.Sprintf("%.2fx", res.Throughput/baseline), float64(res.ReadLat.P95)/1000)
	}
	t.Notes = append(t.Notes,
		"1 worker serializes every remote access through one dispatcher goroutine per node; W workers serve disjoint key stripes in parallel",
		fmt.Sprintf("GOMAXPROCS=%d during this run", runtime.GOMAXPROCS(0)))

	if requireScaling {
		if runtime.GOMAXPROCS(0) <= 1 {
			t.Notes = append(t.Notes, "scaling gate skipped: a single hardware thread cannot run workers in parallel")
		} else if tput[4] <= tput[1] {
			return t, fmt.Errorf("worker scaling regression: 4-worker remote throughput %.0f ops/s is not above 1-worker %.0f ops/s",
				tput[4], tput[1])
		}
	}
	return t, nil
}
