package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

// LocalValidation runs the real in-process cluster (actual protocol traffic
// over the fabric transport) at laptop scale and reports relative
// throughput and hit rates. Absolute numbers depend on the host; the
// qualitative ordering must match the paper: ccKVS serves the skewed
// workload mostly from its caches while the baselines push most requests
// over the fabric.
func LocalValidation(opsPerClient int) (Table, error) {
	if opsPerClient <= 0 {
		opsPerClient = 2000
	}
	t := Table{
		ID:      "local",
		Title:   "In-process cluster validation [5 nodes, alpha=0.99, 1% writes]",
		Columns: []string{"system", "throughput ops/s", "hit rate %", "remote ops", "p95 read us"},
	}
	const (
		nodes   = 5
		numKeys = 20000
		cacheSz = 200 // 1% of keys -> high hit rate at this scale
	)
	configs := []struct {
		name string
		cfg  cluster.Config
	}{
		{"Base-EREW", cluster.Config{Nodes: nodes, System: cluster.BaseEREW, NumKeys: numKeys}},
		{"Base", cluster.Config{Nodes: nodes, System: cluster.Base, NumKeys: numKeys}},
		{"ccKVS-SC", cluster.Config{Nodes: nodes, System: cluster.CCKVS, Protocol: core.SC, NumKeys: numKeys, CacheItems: cacheSz}},
		{"ccKVS-Lin", cluster.Config{Nodes: nodes, System: cluster.CCKVS, Protocol: core.Lin, NumKeys: numKeys, CacheItems: cacheSz}},
	}
	for _, c := range configs {
		cl, err := cluster.New(c.cfg)
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", c.name, err)
		}
		cl.Populate()
		if c.cfg.System == cluster.CCKVS {
			cl.InstallHotSet(cluster.DefaultHotSet(c.cfg.CacheItems))
		}
		res, err := cl.Run(cluster.RunOptions{
			Clients:      8,
			OpsPerClient: opsPerClient,
			Workload: workload.Config{
				NumKeys: numKeys, Alpha: 0.99, WriteRatio: 0.01, ValueSize: 40, Seed: 77,
			},
		})
		cl.Close()
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", c.name, err)
		}
		t.AddRow(c.name, res.Throughput, res.HitRate()*100,
			int(res.RemoteOps), float64(res.ReadLat.P95)/1000)
	}
	t.Notes = append(t.Notes,
		"functional validation on the real in-process cluster; paper-scale numbers come from the calibrated simulator (fig8/fig10)")
	return t, nil
}

// LocalSerializationAblation runs the Figure 4 write-serialization design
// space on the real cluster under a write-heavy hot workload: the fully
// distributed design of the paper against executable primary- and
// sequencer-based variants (all hot writes funneled through node 0).
func LocalSerializationAblation(opsPerClient int) (Table, error) {
	if opsPerClient <= 0 {
		opsPerClient = 1500
	}
	t := Table{
		ID:      "local-serialization",
		Title:   "Figure 4 design space on the live cluster [4 nodes, alpha=0.99, 20% writes]",
		Columns: []string{"design", "throughput ops/s", "writes at node 0", "writes elsewhere"},
	}
	for _, ser := range []cluster.Serialization{
		cluster.SerializationDistributed,
		cluster.SerializationSequencer,
		cluster.SerializationPrimary,
	} {
		cl, err := cluster.New(cluster.Config{
			Nodes: 4, System: cluster.CCKVS, Protocol: core.SC,
			NumKeys: 5000, CacheItems: 64, Serialization: ser,
		})
		if err != nil {
			return Table{}, err
		}
		cl.Populate()
		cl.InstallHotSet(cluster.DefaultHotSet(64))
		res, err := cl.Run(cluster.RunOptions{
			Clients:      8,
			OpsPerClient: opsPerClient,
			Workload: workload.Config{
				NumKeys: 5000, Alpha: 0.99, WriteRatio: 0.2, ValueSize: 40, Seed: 13,
			},
		})
		if err != nil {
			cl.Close()
			return Table{}, fmt.Errorf("%v: %w", ser, err)
		}
		atZero := cl.Node(0).CacheStatsWritesSC()
		var elsewhere uint64
		for i := 1; i < cl.NumNodes(); i++ {
			elsewhere += cl.Node(i).CacheStatsWritesSC()
		}
		cl.Close()
		t.AddRow(ser.String(), res.Throughput, int(atZero), int(elsewhere))
	}
	t.Notes = append(t.Notes,
		"primary executes every hot write on node 0; sequencer only timestamps there; distributed spreads both")
	return t, nil
}
