package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	bad := []Params{
		{N: 1, BW: 1, BRR: 1},
		{N: 9, HitRatio: -0.1, BW: 1, BRR: 1},
		{N: 9, WriteRatio: 2, BW: 1, BRR: 1},
		{N: 9, BW: 0, BRR: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d must fail: %+v", i, p)
		}
	}
	if err := Defaults(9, 0.01).Validate(); err != nil {
		t.Fatal(err)
	}
}

// §8.7 validation points: with 9 servers and 1% writes the model estimates
// 628 MRPS (SC) and 554 MRPS (Lin); Uniform is ~240 MRPS.
func TestPaperValidationPoints(t *testing.T) {
	p := Defaults(9, 0.01)
	if got := p.ThroughputSC() / 1e6; math.Abs(got-628) > 628*0.03 {
		t.Errorf("T_SC = %.1f MRPS, paper model says 628", got)
	}
	if got := p.ThroughputLin() / 1e6; math.Abs(got-554) > 554*0.03 {
		t.Errorf("T_Lin = %.1f MRPS, paper model says 554", got)
	}
	if got := p.ThroughputUniform() / 1e6; math.Abs(got-240) > 240*0.03 {
		t.Errorf("T_U = %.1f MRPS, paper reports 240", got)
	}
}

func TestTrafficComponents(t *testing.T) {
	p := Defaults(9, 0.01)
	// TR_CM = (1-0.65) * (8/9) * 113.
	want := 0.35 * (8.0 / 9.0) * 113
	if got := p.TRCM(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TRCM = %v want %v", got, want)
	}
	// TR_Lin / TR_SC = B_Lin / B_SC.
	if r := p.TRLin() / p.TRSC(); math.Abs(r-183.0/83.0) > 1e-9 {
		t.Errorf("TRLin/TRSC = %v", r)
	}
	// TR_U is TRCM with h=0.
	p0 := p
	p0.HitRatio = 0
	if math.Abs(p0.TRCM()-p.TRU()) > 1e-9 {
		t.Errorf("TRU mismatch")
	}
}

func TestReadOnlyEquivalence(t *testing.T) {
	// With no writes the two protocols cost the same.
	p := Defaults(9, 0)
	if p.ThroughputSC() != p.ThroughputLin() {
		t.Errorf("read-only SC and Lin must coincide")
	}
	// And beat Uniform by 1/(1-h).
	gain := p.ThroughputSC() / p.ThroughputUniform()
	if math.Abs(gain-1/(1-p.HitRatio)) > 1e-9 {
		t.Errorf("read-only gain %v, want %v", gain, 1/(1-p.HitRatio))
	}
}

// §8.7.2: break-even write ratios. Paper: ~8% for SC at 20 servers, ~4% SC
// and ~1.7% Lin at 40 servers.
func TestBreakEvenAnchors(t *testing.T) {
	p20 := Defaults(20, 0)
	if got := p20.BreakEvenSC() * 100; got < 5.5 || got > 8.5 {
		t.Errorf("SC break-even @20 = %.2f%%, paper says ~8%%", got)
	}
	p40 := Defaults(40, 0)
	if got := p40.BreakEvenSC() * 100; got < 3 || got > 4.5 {
		t.Errorf("SC break-even @40 = %.2f%%, paper says ~4%%", got)
	}
	if got := p40.BreakEvenLin() * 100; got < 1.3 || got > 2.1 {
		t.Errorf("Lin break-even @40 = %.2f%%, paper says ~1.7%%", got)
	}
}

// At the break-even write ratio, ccKVS and Uniform throughput must be equal
// (the defining property), for any valid parameterization.
func TestBreakEvenFixedPointProperty(t *testing.T) {
	f := func(nRaw uint8, hRaw uint8) bool {
		n := 2 + int(nRaw%62)
		h := 0.05 + 0.9*float64(hRaw)/255
		p := Defaults(n, 0)
		p.HitRatio = h
		p.WriteRatio = p.BreakEvenSC()
		if p.WriteRatio > 1 {
			return true // degenerate tiny-N case: break-even beyond 100%
		}
		return math.Abs(p.ThroughputSC()-p.ThroughputUniform()) < p.ThroughputUniform()*1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Same for Lin.
	g := func(nRaw uint8) bool {
		n := 2 + int(nRaw%62)
		p := Defaults(n, 0)
		p.WriteRatio = p.BreakEvenLin()
		if p.WriteRatio > 1 {
			return true
		}
		return math.Abs(p.ThroughputLin()-p.ThroughputUniform()) < p.ThroughputUniform()*1e-9
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Monotonicity properties: throughput falls with write ratio; consistency
// traffic rises with N; break-even falls with N.
func TestMonotonicityProperties(t *testing.T) {
	f := func(w1, w2 uint8) bool {
		a := Defaults(9, float64(w1)/255*0.2)
		b := Defaults(9, float64(w2)/255*0.2)
		if a.WriteRatio > b.WriteRatio {
			a, b = b, a
		}
		return a.ThroughputLin() >= b.ThroughputLin() && a.ThroughputSC() >= b.ThroughputSC()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	prevSC, prevLin := math.Inf(1), math.Inf(1)
	for n := 5; n <= 40; n += 5 {
		p := Defaults(n, 0)
		if be := p.BreakEvenSC(); be >= prevSC {
			t.Errorf("SC break-even must fall with N")
		} else {
			prevSC = be
		}
		if be := p.BreakEvenLin(); be >= prevLin {
			t.Errorf("Lin break-even must fall with N")
		} else {
			prevLin = be
		}
	}
}

func TestScalabilityStudy(t *testing.T) {
	pts := ScalabilityStudy(5, 40, 0.01)
	if len(pts) != 36 {
		t.Fatalf("points = %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.N != 5 || last.N != 40 {
		t.Fatalf("range wrong: %d..%d", first.N, last.N)
	}
	// Totals grow with N; SC > Lin throughout; Uniform scaling ~linear.
	for i := 1; i < len(pts); i++ {
		if pts[i].UniformMRPS <= pts[i-1].UniformMRPS {
			t.Fatalf("Uniform must grow with N")
		}
		if pts[i].SCMRPS < pts[i].LinMRPS {
			t.Fatalf("SC must dominate Lin at N=%d", pts[i].N)
		}
	}
	// Uniform per-server rate is ~flat: total ~ linear.
	perServer5 := first.UniformMRPS / 5
	perServer40 := last.UniformMRPS / 40
	if math.Abs(perServer5-perServer40)/perServer5 > 0.2 {
		t.Fatalf("Uniform deviates from linear: %.1f vs %.1f MRPS/server", perServer5, perServer40)
	}
}

func TestBreakEvenStudy(t *testing.T) {
	pts := BreakEvenStudy(5, 40)
	if len(pts) != 36 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.SCPct <= p.LinPct {
			t.Fatalf("N=%d: SC (%.2f%%) must exceed Lin (%.2f%%)", p.N, p.SCPct, p.LinPct)
		}
	}
}

func BenchmarkModelSolve(b *testing.B) {
	p := Defaults(9, 0.01)
	for i := 0; i < b.N; i++ {
		_ = p.ThroughputLin()
	}
}
