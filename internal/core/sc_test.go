package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/timestamp"
)

// newReplicaGroup builds n caches holding the same key set, as symmetric
// caching mandates.
func newReplicaGroup(t *testing.T, n int, keys ...uint64) []*Cache {
	t.Helper()
	caches := make([]*Cache, n)
	for i := range caches {
		caches[i] = NewCache(uint8(i), n)
		caches[i].Install(keys, func(key uint64) ([]byte, timestamp.TS, bool) {
			return []byte{byte(key)}, timestamp.TS{}, true
		})
	}
	return caches
}

func TestWriteSCMiss(t *testing.T) {
	c := newCacheWith(t, 0, 3, 1)
	if _, err := c.WriteSC(9, []byte("x")); err != ErrMiss {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteSCLocalImmediatelyVisible(t *testing.T) {
	c := newCacheWith(t, 2, 3, 1)
	u, err := c.WriteSC(1, []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	// SC writes are non-blocking: a read right after must see the value
	// without waiting for the broadcast ("allowing for reads following the
	// write to return the new value without waiting", §5.2).
	v, ts, err := c.Read(1, nil)
	if err != nil || string(v) != "new" {
		t.Fatalf("read after write: %q %v", v, err)
	}
	if ts != u.TS || u.TS.Writer != 2 || u.TS.Clock != 1 {
		t.Fatalf("timestamps: read=%v update=%v", ts, u.TS)
	}
	if u.Key != 1 || string(u.Value) != "new" {
		t.Fatalf("update = %+v", u)
	}
}

func TestApplyUpdateSCNewerWins(t *testing.T) {
	caches := newReplicaGroup(t, 2, 1)
	u, _ := caches[0].WriteSC(1, []byte("v1"))
	if !caches[1].ApplyUpdateSC(u) {
		t.Fatalf("first update must apply")
	}
	v, _, _ := caches[1].Read(1, nil)
	if string(v) != "v1" {
		t.Fatalf("replica value %q", v)
	}
}

func TestApplyUpdateSCStaleDiscarded(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	u1, _ := caches[0].WriteSC(1, []byte("a")) // ts 1.0
	u2, _ := caches[1].WriteSC(1, []byte("b")) // ts 1.1 — wins the tie on writer id

	// Replica 2 receives them out of order.
	if !caches[2].ApplyUpdateSC(u2) {
		t.Fatalf("u2 must apply")
	}
	if caches[2].ApplyUpdateSC(u1) {
		t.Fatalf("stale u1 must be discarded")
	}
	v, _, _ := caches[2].Read(1, nil)
	if string(v) != "b" {
		t.Fatalf("replica2 = %q, want b", v)
	}
	if caches[2].Stats().UpdatesDiscarded.Load() != 1 {
		t.Fatalf("discard not counted")
	}
}

func TestApplyUpdateSCUnknownKey(t *testing.T) {
	c := newCacheWith(t, 0, 2, 1)
	if c.ApplyUpdateSC(Update{Key: 99, TS: timestamp.TS{Clock: 5}}) {
		t.Fatalf("update for uncached key must be dropped")
	}
}

// The central SC property: however updates are interleaved and reordered,
// all replicas converge to the same value for every key — write
// serialization via Lamport timestamps (§5.2, Burckhardt's invariant).
func TestSCConvergenceUnderReordering(t *testing.T) {
	const nodes, writes = 5, 40
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		caches := newReplicaGroup(t, nodes, 1, 2)
		var updates []Update
		// Writers scattered across replicas, two keys.
		for w := 0; w < writes; w++ {
			writer := rng.Intn(nodes)
			key := uint64(1 + rng.Intn(2))
			u, err := caches[writer].WriteSC(key, []byte(fmt.Sprintf("w%d-%d", writer, w)))
			if err != nil {
				t.Fatal(err)
			}
			updates = append(updates, u)
		}
		// Deliver every update to every other replica in a fresh random
		// order per replica (update broadcasts are asynchronous and the
		// network may reorder them arbitrarily).
		for i, c := range caches {
			perm := rng.Perm(len(updates))
			for _, pi := range perm {
				u := updates[pi]
				if u.TS.Writer == uint8(i) {
					continue // writers do not self-deliver
				}
				c.ApplyUpdateSC(u)
			}
		}
		for _, key := range []uint64{1, 2} {
			ref, _, err := caches[0].Read(key, nil)
			if err != nil {
				t.Fatal(err)
			}
			refTS := caches[0].MaxTS(key)
			for i := 1; i < nodes; i++ {
				v, _, err := caches[i].Read(key, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(v, ref) || caches[i].MaxTS(key) != refTS {
					t.Fatalf("trial %d key %d: replica %d diverged: %q(%v) vs %q(%v)",
						trial, key, i, v, caches[i].MaxTS(key), ref, refTS)
				}
			}
		}
	}
}

// Writes from the same session must appear in session order: a session's
// second write must carry a higher timestamp so no replica can apply them
// in reverse.
func TestSCSessionOrder(t *testing.T) {
	caches := newReplicaGroup(t, 2, 1)
	u1, _ := caches[0].WriteSC(1, []byte("first"))
	u2, _ := caches[0].WriteSC(1, []byte("second"))
	if !u2.TS.After(u1.TS) {
		t.Fatalf("session order violated: %v !> %v", u2.TS, u1.TS)
	}
	// Reordered delivery still ends on "second".
	caches[1].ApplyUpdateSC(u2)
	caches[1].ApplyUpdateSC(u1)
	v, _, _ := caches[1].Read(1, nil)
	if string(v) != "second" {
		t.Fatalf("got %q", v)
	}
}

func TestSCDirtyMarksForWriteBack(t *testing.T) {
	caches := newReplicaGroup(t, 2, 1)
	u, _ := caches[0].WriteSC(1, []byte("x"))
	caches[1].ApplyUpdateSC(u)
	// Both the writer and the update receiver hold dirty copies; evicting
	// from either must surface a write-back.
	for i, c := range caches {
		wb := c.Install(nil, func(uint64) ([]byte, timestamp.TS, bool) { return nil, timestamp.TS{}, false })
		if len(wb) != 1 {
			t.Fatalf("cache %d: %d write-backs", i, len(wb))
		}
	}
}

func BenchmarkWriteSC(b *testing.B) {
	c := NewCache(0, 9)
	c.Install([]uint64{1}, func(uint64) ([]byte, timestamp.TS, bool) {
		return make([]byte, 40), timestamp.TS{}, true
	})
	val := make([]byte, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.WriteSC(1, val)
	}
}

func BenchmarkCacheRead(b *testing.B) {
	c := NewCache(0, 9)
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i)
	}
	c.Install(keys, func(uint64) ([]byte, timestamp.TS, bool) {
		return make([]byte, 40), timestamp.TS{}, true
	})
	buf := make([]byte, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _, _ = c.Read(uint64(i)&1023, buf)
	}
}

// SC updates are idempotent: re-applying the latest update must be a no-op
// discard, and replaying an old one must never roll the value back.
func TestSCDuplicateAndReplayDiscarded(t *testing.T) {
	caches := newReplicaGroup(t, 2, 1)
	u1, _ := caches[0].WriteSC(1, []byte("one"))
	u2, _ := caches[0].WriteSC(1, []byte("two"))
	if !caches[1].ApplyUpdateSC(u2) {
		t.Fatal("fresh update rejected")
	}
	if caches[1].ApplyUpdateSC(u2) {
		t.Fatal("duplicate update applied")
	}
	if caches[1].ApplyUpdateSC(u1) {
		t.Fatal("replayed stale update applied")
	}
	v, _, _ := caches[1].Read(1, nil)
	if string(v) != "two" {
		t.Fatalf("rollback: %q", v)
	}
}
