// Package cluster assembles the full systems evaluated in the paper
// (EuroSys'18, §7.1) as in-process deployments: every node couples a KVS
// shard with (for ccKVS) an instance of the symmetric cache, threads are
// partitioned into cache threads and KVS threads (§6.2), and nodes exchange
// remote accesses and consistency messages over a fabric transport.
//
// Five system flavours are provided:
//
//   - BaseEREW  — NUMA abstraction, KVS partitioned at core granularity
//   - Base      — NUMA abstraction, CRCW KVS (partitioned per server)
//   - Uniform   — Base driven by a uniform workload (the baselines' upper
//     bound; selected by the workload, not the cluster config)
//   - ccKVS-SC  — Base plus symmetric caches kept consistent with the SC
//     protocol
//   - ccKVS-Lin — same with the Lin protocol
//
// The cluster is functionally complete (real protocol traffic over a real
// transport); paper-scale *performance* numbers come from internal/simnet,
// which models the rack's network bottlenecks explicitly.
package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/timestamp"
	"repro/internal/zipf"
)

// System selects the evaluated design.
type System int

// Evaluated systems.
const (
	// BaseEREW partitions each node's KVS at thread granularity
	// (exclusive reads, exclusive writes), like stock MICA.
	BaseEREW System = iota
	// Base partitions the KVS at server granularity (CRCW).
	Base
	// CCKVS is Base plus consistent symmetric caching.
	CCKVS
)

// String names the system as in the paper's figures.
func (s System) String() string {
	switch s {
	case BaseEREW:
		return "Base-EREW"
	case Base:
		return "Base"
	case CCKVS:
		return "ccKVS"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Thread ids within a node's fabric address space.
const (
	threadCache   uint8 = iota // consistency messages between cache threads
	threadKVS                  // remote KVS request server
	threadResp                 // remote KVS responses (RPC completions)
	threadFlow                 // explicit credit updates
	threadSession              // client-facing session requests (session.go)
)

// Serialization selects how hot writes obtain their place in the per-key
// write order — the design space of the paper's Figure 4. The paper's
// protocols are fully distributed (Figure 4c); the primary and sequencer
// variants exist as executable baselines for the ablation.
type Serialization int

// Write-serialization designs.
const (
	// SerializationDistributed: any replica writes locally; Lamport
	// timestamps serialize (Figure 4c, the paper's design).
	SerializationDistributed Serialization = iota
	// SerializationPrimary: all hot writes execute on a designated
	// primary node, which broadcasts the updates (Figure 4a).
	SerializationPrimary
	// SerializationSequencer: writers fetch a per-key timestamp from a
	// sequencer node, then apply and broadcast themselves (Figure 4b).
	SerializationSequencer
)

// String names the design.
func (s Serialization) String() string {
	switch s {
	case SerializationPrimary:
		return "primary"
	case SerializationSequencer:
		return "sequencer"
	default:
		return "distributed"
	}
}

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the deployment size (paper: 9).
	Nodes int
	// System picks the design; Protocol applies only to CCKVS.
	System   System
	Protocol core.Protocol
	// Serialization selects the Figure 4 write-serialization design for
	// ccKVS-SC hot writes (default: fully distributed). Node 0 acts as
	// primary/sequencer when selected.
	Serialization Serialization
	// NumKeys is the dataset size; keys are 0..NumKeys-1 ranked by
	// popularity (rank 0 hottest).
	NumKeys uint64
	// CacheItems is the symmetric cache capacity in objects (paper: 0.1%
	// of the dataset = 250K).
	CacheItems int
	// ValueSize is the object payload size (paper default 40B).
	ValueSize int
	// KVSPartitions is the per-node partition count for BaseEREW
	// (stands in for the per-core partitioning; default 8).
	KVSPartitions int
	// CreditsPerPeer bounds in-flight messages toward each peer (§6.3;
	// default 64).
	CreditsPerPeer int
	// CreditBatch is how many received consistency messages are
	// acknowledged with one explicit credit update (§6.4; default 8).
	CreditBatch int
	// BatchMaxMsgs bounds how many remote requests the coalescing pipeline
	// packs into one network packet (§6.3/§8.5; default 16; 1 disables
	// coalescing, the per-request baseline of the ablation).
	BatchMaxMsgs int
	// BatchMaxBytes bounds the payload of a coalesced request packet
	// (default 4096).
	BatchMaxBytes int
	// QueueDepth is the transport queue depth (default 1024).
	QueueDepth int
	// ReorderDepth, when positive, wraps the fabric in an adversarial
	// shuffle buffer of that depth (UD datagrams are unordered; the
	// protocols must tolerate it). Test/torture use.
	ReorderDepth int
	// ReorderSeed seeds the shuffle for reproducibility.
	ReorderSeed uint64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.NumKeys == 0 {
		c.NumKeys = 1 << 16
	}
	if c.ValueSize == 0 {
		c.ValueSize = 40
	}
	if c.KVSPartitions == 0 {
		c.KVSPartitions = 8
	}
	if c.CreditsPerPeer == 0 {
		c.CreditsPerPeer = 64
	}
	if c.CreditBatch == 0 {
		c.CreditBatch = 8
	}
	if c.BatchMaxMsgs == 0 {
		c.BatchMaxMsgs = 16
	}
	if c.BatchMaxBytes == 0 {
		c.BatchMaxBytes = 4096
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 1 || c.Nodes > 250 {
		return fmt.Errorf("cluster: node count %d out of range [1,250]", c.Nodes)
	}
	if c.System == CCKVS && c.CacheItems <= 0 {
		return errors.New("cluster: ccKVS needs CacheItems > 0")
	}
	if c.System != CCKVS && c.CacheItems > 0 {
		return errors.New("cluster: baselines have no cache; CacheItems must be 0")
	}
	if c.Serialization != SerializationDistributed {
		if c.System != CCKVS || c.Protocol != core.SC {
			return errors.New("cluster: primary/sequencer serialization is implemented for ccKVS-SC only")
		}
	}
	return nil
}

// Cluster is a deployment view. In the in-process form (New,
// NewWithTransport) it holds every node; in member form (NewMember) it holds
// exactly one node of a multi-process deployment and reaches the others over
// the injected transport — same protocol code, same RPCs, different process
// layout.
type Cluster struct {
	cfg       Config
	transport fabric.Transport
	stats     *fabric.Stats
	// nodes is indexed by node id and always cfg.Nodes long; in member form
	// every entry except the local node is nil.
	nodes  []*Node
	member bool
	self   int
	closed bool
	mu     sync.Mutex
	// reconfigMu serializes hot-set reconfigurations (reconfig.go).
	reconfigMu sync.Mutex
}

// Node is one server: a KVS shard plus (for ccKVS) a symmetric cache.
type Node struct {
	id      uint8
	cluster *Cluster
	kvs     *store.Partitioned
	cache   *core.Cache // nil for baselines

	rpc  *rpcClient
	pipe *pipeline // per-destination request coalescing (pipeline.go)

	// Sequencer state (node 0 when SerializationSequencer is selected):
	// per-key clocks handed out to writers.
	seqMu     sync.Mutex
	seqClocks map[uint64]uint32

	// homeMu orders local miss-path puts against a local promotion fetch
	// (reconfig.go): a put whose cache probe predates the promotion's
	// placeholder re-checks the cache under this mutex before touching the
	// local shard, so it either lands before the fetch reads the shard or
	// bounces back through the cache. Remote miss-path puts get the same
	// guarantee for free — they serialize with the fetch on the home's
	// single KVS dispatcher thread.
	homeMu sync.Mutex

	// Lin write completion plumbing: one waiter per key (a node allows a
	// single outstanding Lin write per key, see core.ErrWritePending).
	waitMu  sync.Mutex
	waiters map[uint64]chan core.Update

	credits *fabric.Credits
	cbatch  *fabric.CreditBatcher

	// Counters for the evaluation.
	CacheHits, CacheMisses metrics.Counter
	LocalOps, RemoteOps    metrics.Counter
	InvalidRetries         metrics.Counter
	WritePendingRetries    metrics.Counter
	// FrozenRetries counts writes that found their entry frozen
	// mid-demotion and had to retry until the key left the hot set.
	FrozenRetries metrics.Counter
	// RemoteReqPackets counts request packets the coalescing pipeline sent;
	// RemoteReqMsgs counts the requests they carried. Their ratio is the
	// achieved coalescing factor (§8.5).
	RemoteReqPackets, RemoteReqMsgs metrics.Counter
	// RPCDecodeErrors counts malformed request/response entries that were
	// refused or dropped instead of deadlocking their callers.
	RPCDecodeErrors metrics.Counter
}

// New builds and starts a fully in-process cluster over a ChanTransport —
// the default harness for experiments and tests.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stats := fabric.NewStats()
	var tr fabric.Transport = fabric.NewChanTransport(cfg.QueueDepth, stats)
	if cfg.ReorderDepth > 0 {
		tr = fabric.NewReorder(tr, cfg.ReorderDepth, cfg.ReorderSeed|1)
	}
	return NewWithTransport(cfg, tr, stats)
}

// NewWithTransport builds and starts a cluster whose nodes all live in this
// process but exchange messages over the given transport. stats should be
// the block the transport accounts into (nil allocates an unattached one).
func NewWithTransport(cfg Config, tr fabric.Transport, stats *fabric.Stats) (*Cluster, error) {
	return build(cfg, tr, stats, -1)
}

// NewMember builds and starts ONE node of a multi-process deployment: the
// cluster view holds only node self, and every remote access, consistency
// message and reconfiguration RPC crosses the injected transport (a
// TCPTransport with the peer table filled in, or a ChanTransport shared by
// several members of the same process in tests). All members must run an
// identical Config. The caller populates the local shard (Populate writes
// only locally-homed keys in member form) and bootstraps the hot set with
// ApplyHotSet from any one member once its peers are reachable.
func NewMember(cfg Config, self int, tr fabric.Transport, stats *fabric.Stats) (*Cluster, error) {
	return build(cfg, tr, stats, self)
}

// build assembles the node set: every node for self < 0, exactly one
// otherwise.
func build(cfg Config, tr fabric.Transport, stats *fabric.Stats, self int) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if self >= cfg.Nodes {
		return nil, fmt.Errorf("cluster: member id %d out of range [0,%d)", self, cfg.Nodes)
	}
	if stats == nil {
		stats = fabric.NewStats()
	}
	c := &Cluster{
		cfg:       cfg,
		stats:     stats,
		transport: tr,
		member:    self >= 0,
		self:      self,
	}
	c.nodes = make([]*Node, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		if c.member && i != self {
			continue
		}
		parts := 1
		if cfg.System == BaseEREW {
			parts = cfg.KVSPartitions
		}
		n := &Node{
			id:        uint8(i),
			cluster:   c,
			kvs:       store.NewPartitioned(parts, int(cfg.NumKeys)/cfg.Nodes+16),
			waiters:   map[uint64]chan core.Update{},
			credits:   fabric.NewCredits(),
			seqClocks: map[uint64]uint32{},
		}
		if cfg.System == CCKVS {
			n.cache = core.NewCache(n.id, cfg.Nodes)
		}
		n.rpc = newRPCClient(n)
		n.pipe = newPipeline(n, cfg.Nodes, cfg.QueueDepth, cfg.BatchMaxMsgs, cfg.BatchMaxBytes)
		c.nodes[i] = n
	}
	for _, n := range c.nodes {
		if n != nil {
			n.start()
		}
	}
	return c, nil
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// FabricStats returns the transport counters (traffic breakdown etc.).
func (c *Cluster) FabricStats() *fabric.Stats { return c.stats }

// NumNodes returns the deployment size (including remote members).
func (c *Cluster) NumNodes() int { return c.cfg.Nodes }

// Node returns node i; nil in member form when i is not the local node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// LocalNode returns the member's own node (member form), or node 0.
func (c *Cluster) LocalNode() *Node {
	if c.member {
		return c.nodes[c.self]
	}
	return c.nodes[0]
}

// IsMember reports whether this cluster view holds a single node of a
// multi-process deployment.
func (c *Cluster) IsMember() bool { return c.member }

// HomeNode returns the node owning key's shard. Like the paper we place
// keys by hash, so the hottest keys scatter across shards. Every member of
// a deployment computes the same placement (it depends only on Config.Nodes).
func (c *Cluster) HomeNode(key uint64) int {
	return int(zipf.Mix64(key^0x7f4a7c15) % uint64(c.cfg.Nodes))
}

// PeerDown fails every RPC this process has pending toward peer. Transports
// that can detect a dead peer (TCPTransport.SetPeerDownHandler) call it so
// sessions blocked on a response that can no longer arrive fail immediately
// instead of hanging; new calls toward the peer fail at send time. This
// mirrors the cluster-shutdown guarantee for the remote-access/RPC path
// only: consistency traffic (Lin ack waiters, broadcast credits) assumes
// fixed membership, exactly like the paper's protocols — reconfiguring the
// deployment around a dead member is future work (see ROADMAP).
func (c *Cluster) PeerDown(peer uint8, cause error) {
	err := fmt.Errorf("cluster: peer node %d down: %w", peer, cause)
	for _, n := range c.nodes {
		if n != nil {
			n.rpc.failPeer(peer, err)
		}
	}
}

// Close shuts the cluster down.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	// Drain the request pipelines while the transport is still up: queued
	// requests flush and their responses complete the waiting callers;
	// anything enqueued from here on fails with ErrPipelineClosed instead
	// of waiting on a response that can no longer arrive.
	for _, n := range c.nodes {
		if n != nil {
			n.pipe.close()
		}
	}
	err := c.transport.Close()
	// A response whose send lost the race against the transport close never
	// reached its caller; fail whatever is still pending so no session
	// blocks forever.
	for _, n := range c.nodes {
		if n != nil {
			n.rpc.failAll(ErrPipelineClosed)
		}
	}
	return err
}

// Populate loads the dataset: every key 0..NumKeys-1 is written to its home
// shard with the given value size and a zero timestamp. In member form only
// locally-homed keys are written — each process populates its own shard, and
// the shards together hold the full dataset.
func (c *Cluster) Populate() {
	val := make([]byte, c.cfg.ValueSize)
	for k := uint64(0); k < c.cfg.NumKeys; k++ {
		home := c.nodes[c.HomeNode(k)]
		if home == nil {
			continue
		}
		for i := range val {
			val[i] = byte(k) ^ byte(i)
		}
		home.kvs.Put(k, val, timestamp.TS{})
	}
}

// InstallHotSet fills every node's symmetric cache with the given keys
// (typically ranks 0..CacheItems-1), fetching initial values from the home
// shards, and flushes any dirty evicted items home. It is the *bootstrap*
// (full-reinstall) epoch path of §4: the harness acts as an omniscient
// coordinator that reads peer KVS state directly, bypassing the fabric, and
// it offers no write-ordering guarantees against concurrent traffic. Online
// epoch changes under live traffic use ApplyHotSetDelta (reconfig.go), which
// applies only the delta over the RPC fabric.
func (c *Cluster) InstallHotSet(keys []uint64) error {
	if c.cfg.System != CCKVS {
		return nil
	}
	if c.member {
		// A member cannot read peer KVS state directly; the bootstrap runs
		// as an ordinary online epoch change over the RPC fabric instead —
		// which can fail (the peers must already be reachable), unlike the
		// infallible direct path below.
		_, err := c.ApplyHotSet(c.self, keys)
		return err
	}
	c.reconfigMu.Lock()
	defer c.reconfigMu.Unlock()
	for _, n := range c.nodes {
		wbs := n.cache.Install(keys, func(key uint64) ([]byte, timestamp.TS, bool) {
			home := c.nodes[c.HomeNode(key)]
			v, ts, err := home.kvs.Get(key, nil)
			if err != nil {
				return nil, timestamp.TS{}, false
			}
			return v, ts, true
		})
		for _, wb := range wbs {
			home := c.nodes[c.HomeNode(wb.Key)]
			// PutIfNewer: a peer may already have flushed a newer value.
			_ = home.kvs.PutIfNewer(wb.Key, wb.Value, wb.TS)
		}
	}
	return nil
}

// DefaultHotSet returns the top-k ranks [0, k) — with an unscrambled
// Zipfian workload these are exactly the hottest keys.
func DefaultHotSet(k int) []uint64 {
	keys := make([]uint64, k)
	for i := range keys {
		keys[i] = uint64(i)
	}
	return keys
}

// start registers the node's fabric handlers and initializes credits.
func (n *Node) start() {
	cfg := n.cluster.cfg
	tr := n.cluster.transport

	for peer := 0; peer < cfg.Nodes; peer++ {
		if peer == int(n.id) {
			continue
		}
		// One budget per remote node for each traffic kind.
		n.credits.SetBudget(fabric.Addr{Node: uint8(peer), Thread: threadCache}, cfg.CreditsPerPeer)
		n.credits.SetBudget(fabric.Addr{Node: uint8(peer), Thread: threadKVS}, cfg.CreditsPerPeer)
	}
	n.cbatch = fabric.NewCreditBatcher(cfg.CreditBatch, func(peer fabric.Addr, cnt int) {
		// Header-only credit update (§6.4): the count rides in a 1-byte
		// payload so the receiver can restore that many credits.
		tr.Send(fabric.Packet{
			Src:   fabric.Addr{Node: n.id, Thread: threadFlow},
			Dst:   fabric.Addr{Node: peer.Node, Thread: threadFlow},
			Class: metrics.ClassFlowControl,
			Data:  []byte{byte(cnt)},
		})
	})

	tr.Register(fabric.Addr{Node: n.id, Thread: threadCache}, n.handleConsistency)
	tr.Register(fabric.Addr{Node: n.id, Thread: threadKVS}, n.handleKVSRequest)
	tr.Register(fabric.Addr{Node: n.id, Thread: threadResp}, n.rpc.handleResponse)
	tr.Register(fabric.Addr{Node: n.id, Thread: threadFlow}, n.handleFlowControl)
	tr.Register(fabric.Addr{Node: n.id, Thread: threadSession}, n.handleSession)
}

// handleFlowControl restores credits granted by a peer's credit update.
func (n *Node) handleFlowControl(p fabric.Packet) {
	if len(p.Data) < 1 {
		return
	}
	n.credits.Grant(fabric.Addr{Node: p.Src.Node, Thread: threadCache}, int(p.Data[0]))
}

// handleConsistency processes updates, invalidations and acks addressed to
// this node's cache threads. Consistency messages may arrive coalesced;
// the decode loop walks the whole packet.
func (n *Node) handleConsistency(p fabric.Packet) {
	if n.cache == nil {
		return
	}
	// Consistency messages consume receive buffers; note them toward the
	// sender's batched credit updates.
	n.cbatch.Note(fabric.Addr{Node: p.Src.Node, Thread: threadFlow})

	buf := p.Data
	for len(buf) > 0 {
		msg, consumed, err := core.Decode(buf)
		if err != nil {
			return // malformed tail; drop (datagram semantics)
		}
		buf = buf[consumed:]
		switch m := msg.(type) {
		case core.Update:
			if n.cluster.cfg.Protocol == core.Lin {
				n.cache.ApplyUpdateLin(m)
			} else {
				n.cache.ApplyUpdateSC(m)
			}
		case core.Invalidation:
			ack, _ := n.cache.ApplyInvalidation(m)
			n.sendAck(m.From, ack)
		case core.Ack:
			if upd, done := n.cache.ApplyAck(m); done {
				n.completeLinWrite(m.Key, upd)
			}
		}
	}
}

// sendAck returns an ack to the writer node.
func (n *Node) sendAck(to uint8, ack core.Ack) {
	n.cluster.transport.Send(fabric.Packet{
		Src:   fabric.Addr{Node: n.id, Thread: threadCache},
		Dst:   fabric.Addr{Node: to, Thread: threadCache},
		Class: metrics.ClassAck,
		Data:  ack.Encode(nil),
	})
}

// broadcastConsistency sends one encoded consistency message to every other
// node's cache thread, consuming one credit per destination.
func (n *Node) broadcastConsistency(class metrics.MsgClass, data []byte) {
	for peer := 0; peer < n.cluster.cfg.Nodes; peer++ {
		if peer == int(n.id) {
			continue
		}
		dst := fabric.Addr{Node: uint8(peer), Thread: threadCache}
		n.credits.Acquire(fabric.Addr{Node: uint8(peer), Thread: threadCache})
		n.cluster.transport.Send(fabric.Packet{
			Src:   fabric.Addr{Node: n.id, Thread: threadCache},
			Dst:   dst,
			Class: class,
			Data:  data,
		})
	}
}

// completeLinWrite wakes the session blocked in Put.
func (n *Node) completeLinWrite(key uint64, upd core.Update) {
	n.waitMu.Lock()
	ch := n.waiters[key]
	delete(n.waiters, key)
	n.waitMu.Unlock()
	if ch != nil {
		ch <- upd
	}
}

// tryRegisterLinWaiter installs the completion channel before the
// invalidations are broadcast (the acks may race back immediately). It
// fails if another session on this node already has a write in flight for
// the key.
func (n *Node) tryRegisterLinWaiter(key uint64) (chan core.Update, bool) {
	n.waitMu.Lock()
	defer n.waitMu.Unlock()
	if _, busy := n.waiters[key]; busy {
		return nil, false
	}
	ch := make(chan core.Update, 1)
	n.waiters[key] = ch
	return ch, true
}

// yield lets dispatcher goroutines run on small GOMAXPROCS settings.
func yield() { runtime.Gosched() }
