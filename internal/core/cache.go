package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/seqlock"
	"repro/internal/timestamp"
)

// Errors returned by cache operations.
var (
	// ErrMiss means the key is not in the hot set; the request must go to
	// the (possibly remote) home KVS shard.
	ErrMiss = errors.New("core: cache miss")
	// ErrInvalid means the key is cached but its replica is invalidated by
	// an in-flight Lin write; the read must be retried once the update
	// arrives (a read "may hit in the cache but may not succeed", §6.2).
	ErrInvalid = errors.New("core: entry invalid, update in flight")
	// ErrWritePending means this node already has an outstanding Lin write
	// for the key; the new write must wait for it to complete.
	ErrWritePending = errors.New("core: write already pending for key")
	// ErrFrozen means the key is being demoted from the hot set: new writes
	// must not land in the dying entry (they would race the write-back to
	// the home shard), so the caller retries until the entry is gone and the
	// write misses to the home shard — which by then holds the write-back.
	// Reads keep hitting frozen entries.
	ErrFrozen = errors.New("core: entry frozen for demotion")
)

// State is the consistency state of a cached entry. SC uses only StateValid;
// Lin adds one stable invalid state and one transient write state, exactly
// the state count the paper reports for each protocol (§5.2).
type State uint8

// Cache entry states.
const (
	// StateValid: the entry is readable.
	StateValid State = iota
	// StateInvalid: invalidated by a remote Lin write; reads stall until
	// the matching update arrives.
	StateInvalid
	// StateWrite: transient; this node issued a Lin write and is gathering
	// acknowledgements. Reads return the pre-write value.
	StateWrite
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateValid:
		return "Valid"
	case StateInvalid:
		return "Invalid"
	case StateWrite:
		return "Write"
	default:
		return "State(?)"
	}
}

// entry is one cached object. Its header mirrors the 8-byte ccKVS item
// header: consistency state (1 B, Lin only), version i.e. Lamport clock
// (4 B), last-writer id (1 B), ack counter (1 B, Lin only) and the seqlock
// spinlock byte. The seqlock version doubles as the write-in-progress marker.
type entry struct {
	lock  seqlock.SeqLock
	state State
	ts    timestamp.TS
	vlen  int
	val   []byte // len == cap, mutated in place
	dirty bool   // differs from the home shard (write-back caching, §4)
	// frozen marks an entry mid-demotion: reads still hit and in-flight
	// consistency traffic still applies, but new local writes are refused
	// with ErrFrozen (see Freeze). Entries dropped by Remove stay frozen so
	// writers that resolved the key through a stale table pointer also fail
	// and re-probe.
	frozen bool
	// installing marks a dark entry: reads miss to the home shard while
	// writes are held by frozen. Promotion placeholders (AddPending) are
	// dark until filled — which is what makes the home value stable
	// between the promotion's fetch and its commit (FillAdd) — and
	// demotions darken entries (Retire) before removing them, so no
	// replica serves a cached read after the home shard starts accepting
	// post-demotion writes.
	installing bool

	// Lin per-writer bookkeeping for this node's outstanding write. The ack
	// accounting is set-based, not a counter: pendWait records which peers
	// were counted when the write started (the live view minus this node),
	// ackFrom records which peers have acknowledged. The write completes when
	// ackFrom covers pendWait intersected with the *current* live view — so a
	// counted peer that dies mid-write stops being required (SetLive wakes the
	// writer), a peer that joins mid-write is never required (it got no
	// invalidation), and a duplicated ack cannot double-count.
	pendActive bool
	pendTS     timestamp.TS
	pendVlen   int
	pendVal    []byte
	pendWait   NodeSet
	ackFrom    NodeSet
	// pendSuperseded marks a write that completed conflict-lost: its client
	// was told success, but a concurrent higher-timestamped write won and
	// the staged value was never published — the winner's update carries the
	// final value. Cleared when that update lands or a newer local write
	// starts. If the winner dies unpublished, the healed entry's staged
	// value must be re-published (DiscardOrphanedInvalidations), or an
	// acknowledged write would vanish from every replica.
	pendSuperseded bool
}

// table is an immutable key set with mutable entries. A new table is
// installed wholesale at a full epoch change (Install) and copy-on-write at
// an incremental one (Add/Remove): readers and the consistency protocol keep
// running against whichever table pointer they loaded, entries being shared
// between the old and new tables.
type table struct {
	m map[uint64]*entry
}

// Stats aggregates cache/protocol counters.
type Stats struct {
	Hits, Misses          metrics.Counter
	InvalidStalls         metrics.Counter // reads that found StateInvalid
	UpdatesApplied        metrics.Counter
	UpdatesDiscarded      metrics.Counter
	Invalidations         metrics.Counter
	AcksReceived          metrics.Counter
	WritesSC, WritesLin   metrics.Counter
	WriteConflictsLost    metrics.Counter // Lin writes superseded by a concurrent higher-ts write
	Evictions, WriteBacks metrics.Counter
}

// Cache is one node's instance of the symmetric cache. All cache threads of
// the node share it (CRCW); every node in the deployment holds an identical
// key set, which is what removes the need for a sharer directory (§4).
type Cache struct {
	nodeID   uint8
	numNodes int
	table    atomic.Pointer[table]
	// live is the membership view the protocols count against: Lin writes
	// require acks only from live peers, and SetLive re-examines outstanding
	// writes when the view shrinks. Initially all numNodes nodes are live.
	live  atomic.Pointer[NodeSet]
	stats Stats
	// reconfMu serializes table swaps (Install/Add/Remove). Reads and the
	// protocol paths never take it.
	reconfMu sync.Mutex
}

// NewCache returns an empty cache for node nodeID of a numNodes deployment.
func NewCache(nodeID uint8, numNodes int) *Cache {
	if numNodes < 1 {
		panic("core: deployment needs at least one node")
	}
	c := &Cache{nodeID: nodeID, numNodes: numNodes}
	c.table.Store(&table{m: map[uint64]*entry{}})
	full := FullNodeSet(numNodes)
	c.live.Store(&full)
	return c
}

// NodeID returns this cache's node id.
func (c *Cache) NodeID() uint8 { return c.nodeID }

// NumNodes returns the deployment size.
func (c *Cache) NumNodes() int { return c.numNodes }

// Stats exposes the counter block.
func (c *Cache) Stats() *Stats { return &c.stats }

// Len returns the number of cached keys.
func (c *Cache) Len() int { return len(c.table.Load().m) }

// Contains reports whether key is in the hot set. Because caches are
// symmetric, a local probe answers the global question "which nodes cache
// this item": all of them or none (§4).
func (c *Cache) Contains(key uint64) bool {
	_, ok := c.table.Load().m[key]
	return ok
}

// WriteBack is a dirty item evicted at an epoch change that must be flushed
// to its home shard (symmetric caches are write-back, §4).
type WriteBack struct {
	Key   uint64
	Value []byte
	TS    timestamp.TS
}

// Install replaces the hot set. For every new key, fetch must return the
// value and version from the node's view of the KVS (or ok=false to install
// an empty entry). It returns the dirty evicted entries, which the caller
// flushes to their home shards with PutIfNewer. Concurrent reads continue
// against the old table until the swap.
func (c *Cache) Install(keys []uint64, fetch func(key uint64) ([]byte, timestamp.TS, bool)) []WriteBack {
	c.reconfMu.Lock()
	defer c.reconfMu.Unlock()
	old := c.table.Load()
	next := &table{m: make(map[uint64]*entry, len(keys))}
	for _, k := range keys {
		if e, ok := old.m[k]; ok {
			next.m[k] = e // retained entries keep value, ts and state
			continue
		}
		e := &entry{}
		if v, ts, ok := fetch(k); ok {
			e.val = append(make([]byte, 0, len(v)), v...)
			e.vlen = len(v)
			e.ts = ts
		}
		next.m[k] = e
	}

	var wb []WriteBack
	for k, e := range old.m {
		if _, kept := next.m[k]; kept {
			continue
		}
		c.stats.Evictions.Add(1)
		e.lock.Lock()
		if e.dirty {
			wb = append(wb, WriteBack{
				Key:   k,
				Value: append([]byte(nil), e.val[:e.vlen]...),
				TS:    e.ts,
			})
			c.stats.WriteBacks.Add(1)
		}
		e.lock.Unlock()
	}
	c.table.Store(next)
	return wb
}

// Incremental reconfiguration (§4 under live traffic).
//
// An epoch change rarely moves more than a handful of keys, so instead of
// reinstalling the whole table the cluster applies the delta. Promotions
// run AddPending (a frozen, valueless placeholder: reads miss to the home
// shard, writes spin — which pins the home value for the coordinator's
// fetch), FillAdd (the fetched value becomes readable, writes still held)
// and Unfreeze (once every replica is filled, writes resume); Add installs
// directly when no write barrier is needed. Demotions run a four-step
// dance per key — Freeze (new local writes refused, reads keep hitting,
// protocol traffic keeps draining), CollectFrozen (snapshot the dirty value
// once the entry is quiescent, for the write-back to the home shard),
// Retire (reads go dark once the home is current — removal must not start
// while any replica still serves cached reads), Remove (drop the key; the
// next access misses to the home shard, which by then holds the
// write-back). The freeze step is what makes the transition
// safe under traffic: a write refused with ErrFrozen retries until the key
// is gone and then forwards to the home shard, so it can neither land in a
// dying entry nor overtake the write-back and be clobbered by it.

// Add extends the hot set with keys, copy-on-write: concurrent readers keep
// using the previous table until the atomic swap; existing entries are
// shared, and keys already cached are left untouched. fetch supplies the
// value and version for each new key; ok=false skips the key (unlike
// Install, Add never installs an entry it has no value for — a key that
// cannot be fetched simply keeps missing to its home shard). It returns how
// many keys were installed.
func (c *Cache) Add(keys []uint64, fetch func(key uint64) ([]byte, timestamp.TS, bool)) int {
	c.reconfMu.Lock()
	defer c.reconfMu.Unlock()
	old := c.table.Load()
	fresh := make([]uint64, 0, len(keys))
	for _, k := range keys {
		if _, ok := old.m[k]; !ok {
			fresh = append(fresh, k)
		}
	}
	if len(fresh) == 0 {
		return 0
	}
	next := &table{m: make(map[uint64]*entry, len(old.m)+len(fresh))}
	for k, e := range old.m {
		next.m[k] = e
	}
	installed := 0
	for _, k := range fresh {
		if _, dup := next.m[k]; dup {
			continue // duplicate key in the promotion list
		}
		v, ts, ok := fetch(k)
		if !ok {
			continue
		}
		e := &entry{
			val:  append(make([]byte, 0, len(v)), v...),
			vlen: len(v),
			ts:   ts,
		}
		next.m[k] = e
		installed++
	}
	if installed == 0 {
		return 0
	}
	c.table.Store(next)
	return installed
}

// AddPending installs promotion placeholders for keys, copy-on-write: the
// entries are frozen (writes spin) and valueless (reads miss to the home
// shard). Once every replica holds the placeholder, no client write can
// reach the key's home shard — every write path probes the cache first and
// spins on ErrFrozen — so the value the promotion then fetches from the
// home cannot be overtaken by a racing put. FinishAdd later turns the
// placeholder into a live entry. Keys already cached are skipped; it
// returns how many placeholders were installed.
func (c *Cache) AddPending(keys []uint64) int {
	c.reconfMu.Lock()
	defer c.reconfMu.Unlock()
	old := c.table.Load()
	fresh := make([]uint64, 0, len(keys))
	for _, k := range keys {
		if _, ok := old.m[k]; !ok {
			fresh = append(fresh, k)
		}
	}
	if len(fresh) == 0 {
		return 0
	}
	next := &table{m: make(map[uint64]*entry, len(old.m)+len(fresh))}
	for k, e := range old.m {
		next.m[k] = e
	}
	installed := 0
	for _, k := range fresh {
		if _, dup := next.m[k]; dup {
			continue
		}
		next.m[k] = &entry{frozen: true, installing: true}
		installed++
	}
	c.table.Store(next)
	return installed
}

// FillAdd fills a promotion placeholder with the fetched value and version:
// reads start hitting, but the entry stays frozen — writes may resume only
// once every replica is filled (Unfreeze), otherwise a write completing at
// an early replica would be invisible to readers still missing to the home
// shard. The value is applied only if its version orders after whatever the
// entry holds — stale consistency traffic from an earlier epoch of the same
// key may have landed on the placeholder, and a newer such value must win.
// It reports whether key was a placeholder (false for live or missing
// entries, which are left alone).
func (c *Cache) FillAdd(key uint64, value []byte, ts timestamp.TS) bool {
	e, ok := c.table.Load().m[key]
	if !ok {
		return false
	}
	e.lock.Lock()
	defer e.lock.Unlock()
	if !e.installing {
		return false
	}
	e.installing = false
	// An untouched placeholder carries the zero timestamp; apply the fetch
	// even when the home version is itself zero (a never-written dataset
	// key). Anything a stray update left behind has a non-zero version and
	// wins unless the fetch is newer.
	if ts.After(e.ts) || e.ts == timestamp.Zero {
		e.setValueLocked(value)
		e.ts = ts
	}
	return true
}

// Retire darkens cached keys for the final stretch of a demotion: reads
// miss to the home shard (which, after the write-back, holds exactly the
// cached value) and writes stay frozen. Only once every replica is dark may
// the keys be removed — if replicas were removed one by one while others
// still served reads, a write landing at the home shard the moment its
// cache copy disappeared would be invisible to readers of the remaining
// copies, a stale read past the write-back. It returns how many entries
// this call darkened.
func (c *Cache) Retire(keys []uint64) int {
	t := c.table.Load()
	n := 0
	for _, k := range keys {
		e, ok := t.m[k]
		if !ok {
			continue
		}
		e.lock.Lock()
		if !e.installing {
			e.installing = true
			e.frozen = true
			n++
		}
		e.lock.Unlock()
	}
	return n
}

// Unfreeze lifts the write freeze from cached keys — the final round of a
// promotion (after every replica is filled) and the abort path of a failed
// demotion. Placeholders that were never filled stay frozen (they have no
// value to serve; their writers are released when the placeholder is
// removed). It returns how many entries this call unfroze.
func (c *Cache) Unfreeze(keys []uint64) int {
	t := c.table.Load()
	n := 0
	for _, k := range keys {
		e, ok := t.m[k]
		if !ok {
			continue
		}
		e.lock.Lock()
		if e.frozen && !e.installing {
			e.frozen = false
			n++
		}
		e.lock.Unlock()
	}
	return n
}

// Freeze marks cached keys as demoting. Reads keep hitting (the cached value
// stays the latest committed one until the write-back lands at the home
// shard) and in-flight consistency messages still apply, but new local
// writes are refused with ErrFrozen. It returns how many entries this call
// transitioned to frozen.
func (c *Cache) Freeze(keys []uint64) int {
	t := c.table.Load()
	n := 0
	for _, k := range keys {
		e, ok := t.m[k]
		if !ok {
			continue
		}
		e.lock.Lock()
		if !e.frozen {
			e.frozen = true
			n++
		}
		e.lock.Unlock()
	}
	return n
}

// CollectFrozen snapshots a frozen entry for its demotion write-back once
// the entry is quiescent: no outstanding local Lin write and not Invalid
// awaiting a remote writer's update. ok=false means protocol traffic is
// still draining and the caller must retry once the dispatcher made
// progress. dirty=false with ok=true means the entry matches the home shard
// and needs no write-back. A key that is no longer cached is trivially
// quiescent and clean.
func (c *Cache) CollectFrozen(key uint64) (wb WriteBack, dirty, ok bool) {
	e, present := c.table.Load().m[key]
	if !present {
		return WriteBack{}, false, true
	}
	e.lock.Lock()
	defer e.lock.Unlock()
	if e.pendActive || e.state != StateValid {
		return WriteBack{}, false, false
	}
	if !e.dirty {
		return WriteBack{}, false, true
	}
	return WriteBack{
		Key:   key,
		Value: append([]byte(nil), e.val[:e.vlen]...),
		TS:    e.ts,
	}, true, true
}

// Remove drops keys from the hot set, copy-on-write. Callers are expected to
// have frozen the keys and flushed their write-backs first (Freeze /
// CollectFrozen); Remove marks the dropped entries frozen regardless, so a
// writer that resolved the key through a stale table pointer still fails
// with ErrFrozen, re-probes, and misses to the home shard. It returns how
// many keys were removed (counted as evictions).
func (c *Cache) Remove(keys []uint64) int {
	c.reconfMu.Lock()
	defer c.reconfMu.Unlock()
	old := c.table.Load()
	dropKeys := make(map[uint64]*entry, len(keys))
	for _, k := range keys {
		if e, ok := old.m[k]; ok {
			dropKeys[k] = e
		}
	}
	if len(dropKeys) == 0 {
		return 0
	}
	next := &table{m: make(map[uint64]*entry, len(old.m)-len(dropKeys))}
	for k, e := range old.m {
		if _, gone := dropKeys[k]; !gone {
			next.m[k] = e
		}
	}
	c.table.Store(next)
	for _, e := range dropKeys {
		e.lock.Lock()
		e.frozen = true
		e.lock.Unlock()
		c.stats.Evictions.Add(1)
	}
	return len(dropKeys)
}

// Frozen reports whether key is cached and currently frozen for demotion
// (test hook).
func (c *Cache) Frozen(key uint64) bool {
	e, ok := c.table.Load().m[key]
	if !ok {
		return false
	}
	var f bool
	e.lock.Read(func() { f = e.frozen })
	return f
}

// Read probes the cache. On a hit it copies the value into dst and returns
// it with the entry's timestamp. It returns ErrMiss for uncached keys and
// ErrInvalid when a Lin invalidation is outstanding. Reads are lock-free.
func (c *Cache) Read(key uint64, dst []byte) ([]byte, timestamp.TS, error) {
	e, ok := c.table.Load().m[key]
	if !ok {
		c.stats.Misses.Add(1)
		return dst, timestamp.TS{}, ErrMiss
	}
	for {
		v := e.lock.ReadBegin()
		state := e.state
		ts := e.ts
		vlen := e.vlen
		installing := e.installing
		// A torn length is rejected by the validation below; guard the copy
		// and call ReadRetry exactly once per ReadBegin (the race-build
		// seqlock depends on strict pairing).
		sane := vlen >= 0 && vlen <= len(e.val)
		if sane && state != StateInvalid && !installing {
			if cap(dst) < vlen {
				dst = make([]byte, vlen)
			}
			dst = dst[:vlen]
			copy(dst, e.val[:vlen])
		}
		if e.lock.ReadRetry(v) {
			continue
		}
		if installing {
			// Promotion placeholder: no value yet, the home shard serves.
			c.stats.Misses.Add(1)
			return dst, timestamp.TS{}, ErrMiss
		}
		if state == StateInvalid {
			c.stats.InvalidStalls.Add(1)
			return dst, timestamp.TS{}, ErrInvalid
		}
		if !sane {
			dst = dst[:0] // unreachable on a validated snapshot; defensive
		}
		c.stats.Hits.Add(1)
		return dst, ts, nil
	}
}

// setValueLocked stores value into e under e.lock.
func (e *entry) setValueLocked(value []byte) {
	if len(e.val) < len(value) {
		e.vlen = 0
		e.val = make([]byte, len(value))
	}
	copy(e.val[:len(value)], value)
	e.vlen = len(value)
}

// Keys returns the cached key set (for tests and epoch bookkeeping).
func (c *Cache) Keys() []uint64 {
	t := c.table.Load()
	out := make([]uint64, 0, len(t.m))
	for k := range t.m {
		out = append(out, k)
	}
	return out
}

// EntryState returns the state and timestamp of a cached key (test hook).
func (c *Cache) EntryState(key uint64) (State, timestamp.TS, bool) {
	e, ok := c.table.Load().m[key]
	if !ok {
		return 0, timestamp.TS{}, false
	}
	var st State
	var ts timestamp.TS
	e.lock.Read(func() { st, ts = e.state, e.ts })
	return st, ts, true
}
