// Package core implements the paper's primary contribution: the symmetric
// cache (EuroSys'18, §4) and the two fully-distributed consistency protocols
// that keep all cache replicas strongly consistent (§5) — per-key Sequential
// Consistency (SC, an adaptation of Burckhardt's update protocol) and per-key
// Linearizability (Lin, an adaptation of Guerraoui et al.'s atomic storage
// algorithm).
//
// The package is transport-agnostic: protocol operations return the messages
// that must be broadcast, and the caller (internal/cluster) moves them over
// whatever fabric is in use. This keeps the protocol logic deterministic and
// directly testable, and lets the model checker (internal/mcheck) exercise
// the same state machine.
package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/timestamp"
)

// Protocol selects the consistency model enforced across the caches.
type Protocol uint8

// Supported consistency protocols.
const (
	// SC is per-key Sequential Consistency: non-blocking writes serialized
	// by Lamport timestamps, propagated with a single update broadcast.
	SC Protocol = iota
	// Lin is per-key Linearizability: blocking two-phase writes
	// (invalidate, gather acks, then update).
	Lin
)

// String names the protocol as the paper does.
func (p Protocol) String() string {
	switch p {
	case SC:
		return "SC"
	case Lin:
		return "Lin"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// MsgType tags protocol messages on the wire.
type MsgType uint8

// Message kinds exchanged between cache threads.
const (
	MsgUpdate MsgType = iota + 1
	MsgInvalidation
	MsgAck
)

// String names the message type.
func (m MsgType) String() string {
	switch m {
	case MsgUpdate:
		return "update"
	case MsgInvalidation:
		return "invalidation"
	case MsgAck:
		return "ack"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(m))
	}
}

// Update carries a new value and its timestamp to all replicas. Under SC it
// is the only consistency message; under Lin it is the second phase, sent
// after all acknowledgements are gathered.
type Update struct {
	Key   uint64
	TS    timestamp.TS
	Value []byte
}

// Invalidation is the first phase of a Lin write: it announces the write's
// timestamp so replicas can invalidate and acknowledge.
type Invalidation struct {
	Key  uint64
	TS   timestamp.TS
	From uint8 // writer node, destination for the ack
}

// Ack acknowledges an invalidation back to the writer.
type Ack struct {
	Key  uint64
	TS   timestamp.TS
	From uint8 // acking node
}

// Wire sizes. Header: type(1) + key(8) + clock(4) + writer(1) = 14 bytes;
// updates add a 4-byte length prefix plus the value; invalidations and acks
// add a 1-byte node id.
const (
	headerSize       = 1 + 8 + 4 + 1
	updateOverhead   = headerSize + 4
	invalidationSize = headerSize + 1
	ackSize          = headerSize + 1
)

// EncodedSize returns the wire size of an update with the given value length.
func (u Update) EncodedSize() int { return updateOverhead + len(u.Value) }

// Encode appends the update's wire form to buf.
func (u Update) Encode(buf []byte) []byte {
	return append(u.EncodeHeader(buf), u.Value...)
}

// EncodeHeader appends everything of the update's wire form except the value
// bytes: type, key, timestamp and the value-length prefix. The coalescing
// consistency sender uses it on zero-copy transports to splice the value in
// as its own packet segment instead of re-copying it; EncodeHeader followed
// by the value bytes is exactly Encode.
func (u Update) EncodeHeader(buf []byte) []byte {
	buf = append(buf, byte(MsgUpdate))
	buf = binary.LittleEndian.AppendUint64(buf, u.Key)
	buf = binary.LittleEndian.AppendUint32(buf, u.TS.Clock)
	buf = append(buf, u.TS.Writer)
	return binary.LittleEndian.AppendUint32(buf, uint32(len(u.Value)))
}

// EncodedSize returns the wire size of an invalidation.
func (i Invalidation) EncodedSize() int { return invalidationSize }

// Encode appends the invalidation's wire form to buf.
func (i Invalidation) Encode(buf []byte) []byte {
	buf = append(buf, byte(MsgInvalidation))
	buf = binary.LittleEndian.AppendUint64(buf, i.Key)
	buf = binary.LittleEndian.AppendUint32(buf, i.TS.Clock)
	buf = append(buf, i.TS.Writer)
	return append(buf, i.From)
}

// EncodedSize returns the wire size of an ack.
func (a Ack) EncodedSize() int { return ackSize }

// Encode appends the ack's wire form to buf.
func (a Ack) Encode(buf []byte) []byte {
	buf = append(buf, byte(MsgAck))
	buf = binary.LittleEndian.AppendUint64(buf, a.Key)
	buf = binary.LittleEndian.AppendUint32(buf, a.TS.Clock)
	buf = append(buf, a.TS.Writer)
	return append(buf, a.From)
}

// Decode parses one protocol message from buf, returning the message (one of
// Update, Invalidation, Ack), the number of bytes consumed, and an error on
// malformed input. Decoded updates alias buf's storage; callers that retain
// the value must copy it.
//
// Consistency packets may coalesce many messages back to back; receivers
// decode and apply them in buffer order. That order is the per-key ordering
// invariant the coalescing sender relies on: a worker's messages toward one
// peer travel a single FIFO lane, so an update followed by a later
// invalidation for the same key can never be observed transposed within or
// across packets. Reordering *between* lanes (different workers, hence
// different keys) is harmless, and cross-packet reordering by an adversarial
// transport is tolerated by the timestamp checks in ApplyUpdate*/
// ApplyInvalidation.
func Decode(buf []byte) (any, int, error) {
	if len(buf) < headerSize {
		return nil, 0, fmt.Errorf("core: short message (%d bytes)", len(buf))
	}
	mt := MsgType(buf[0])
	key := binary.LittleEndian.Uint64(buf[1:9])
	ts := timestamp.TS{
		Clock:  binary.LittleEndian.Uint32(buf[9:13]),
		Writer: buf[13],
	}
	switch mt {
	case MsgUpdate:
		if len(buf) < updateOverhead {
			return nil, 0, fmt.Errorf("core: short update")
		}
		vlen := int(binary.LittleEndian.Uint32(buf[14:18]))
		if len(buf) < updateOverhead+vlen {
			return nil, 0, fmt.Errorf("core: truncated update value (%d < %d)", len(buf)-updateOverhead, vlen)
		}
		return Update{Key: key, TS: ts, Value: buf[18 : 18+vlen]}, updateOverhead + vlen, nil
	case MsgInvalidation:
		if len(buf) < invalidationSize {
			return nil, 0, fmt.Errorf("core: short invalidation")
		}
		return Invalidation{Key: key, TS: ts, From: buf[14]}, invalidationSize, nil
	case MsgAck:
		if len(buf) < ackSize {
			return nil, 0, fmt.Errorf("core: short ack")
		}
		return Ack{Key: key, TS: ts, From: buf[14]}, ackSize, nil
	default:
		return nil, 0, fmt.Errorf("core: unknown message type %d", buf[0])
	}
}
