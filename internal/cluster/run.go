package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// RunResult summarizes a measurement run.
type RunResult struct {
	System     string
	Ops        uint64
	Duration   time.Duration
	Throughput float64 // ops per second
	ReadLat    metrics.HistSnapshot
	WriteLat   metrics.HistSnapshot
	CacheHits  uint64
	CacheMiss  uint64
	LocalOps   uint64
	RemoteOps  uint64
	// TrafficShares is the byte share per message class (Figure 11).
	TrafficShares map[metrics.MsgClass]float64
	TotalBytes    uint64
}

// String renders a one-line summary.
func (r RunResult) String() string {
	return fmt.Sprintf("%s: %.0f ops/s (%d ops, hits=%d misses=%d local=%d remote=%d)",
		r.System, r.Throughput, r.Ops, r.CacheHits, r.CacheMiss, r.LocalOps, r.RemoteOps)
}

// HitRate returns the measured cache hit ratio.
func (r RunResult) HitRate() float64 {
	total := r.CacheHits + r.CacheMiss
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// RunOptions controls a measurement run.
type RunOptions struct {
	// Clients is the number of closed-loop client goroutines; each picks
	// servers round-robin starting at a different offset, the load
	// balancing the paper prescribes for the black-box abstraction.
	Clients int
	// OpsPerClient bounds the run by operation count.
	OpsPerClient int
	// BatchSize > 1 drives the cluster through MultiGet/MultiPut in client
	// batches of that many operations — the application-level half of the
	// request coalescing of §6.3 (the pipeline coalesces whatever is
	// concurrently outstanding either way). 0 or 1 issues one op per call.
	BatchSize int
	// Workload generates the request stream (cloned per client).
	Workload workload.Config
	// RefreshEvery, when positive (and OnRefresh is set), runs the epoch
	// refresh loop of §4 in the background for the duration of the run:
	// OnRefresh is invoked every RefreshEvery while the clients are
	// issuing requests — concurrently with them, which is the point (the
	// hot set adapts under live traffic). The loop stops when the last
	// client finishes.
	RefreshEvery time.Duration
	// OnRefresh closes an epoch: typically it asks a topk.Coordinator for
	// the new hot set and applies the delta with Cluster.ApplyHotSetDelta
	// (or reinstalls in full with InstallHotSet, the ablation baseline).
	OnRefresh func()
	// Observe, when set, is called with every generated key before the
	// operation executes — the request-sampling hook that feeds the
	// popularity tracker (§4).
	Observe func(key uint64)
}

// Run drives the cluster with closed-loop clients and returns aggregate
// measurements. The dataset and (for ccKVS) hot set must already be in
// place (Populate / InstallHotSet).
func (c *Cluster) Run(opts RunOptions) (RunResult, error) {
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.OpsPerClient <= 0 {
		opts.OpsPerClient = 1000
	}
	gen, err := workload.New(opts.Workload)
	if err != nil {
		return RunResult{}, err
	}

	readLat := metrics.NewHistogram()
	writeLat := metrics.NewHistogram()
	var firstErr error
	var errMu sync.Mutex

	start := time.Now()

	// Background epoch-refresh loop (§4): reconfigures the hot set while
	// the clients below are in full flight.
	var refreshWG sync.WaitGroup
	refreshStop := make(chan struct{})
	if opts.RefreshEvery > 0 && opts.OnRefresh != nil {
		refreshWG.Add(1)
		go func() {
			defer refreshWG.Done()
			tick := time.NewTicker(opts.RefreshEvery)
			defer tick.Stop()
			for {
				select {
				case <-refreshStop:
					return
				case <-tick.C:
					opts.OnRefresh()
				}
			}
		}()
	}

	// Clients round-robin across the nodes present in this process: every
	// node of an in-process cluster, just the local one in member form (a
	// multi-process deployment is driven per member, or externally through
	// the session layer by cmd/cckvs-load).
	var locals []*Node
	for _, n := range c.nodes {
		if n != nil {
			locals = append(locals, n)
		}
	}

	var wg sync.WaitGroup
	for cl := 0; cl < opts.Clients; cl++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := gen.Clone(uint64(id))
			node := id % len(locals)
			fail := func(i int, op workload.Op, err error) {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("client %d op %d (%s key %d): %w",
						id, i, op.Type, op.Key, err)
				}
				errMu.Unlock()
			}
			// Batched calls cannot name the failing op (MultiGet/MultiPut
			// report only the first error of the batch); attribute the
			// whole batch instead of fabricating an op.
			failBatch := func(i int, kind string, keys []uint64, err error) {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("client %d %s batch of %d keys ending at op %d: %w",
						id, kind, len(keys), i, err)
				}
				errMu.Unlock()
			}
			for i := 0; i < opts.OpsPerClient; {
				n := locals[node]
				node = (node + 1) % len(locals) // round-robin load balance
				if opts.BatchSize <= 1 {
					op := g.Next()
					if opts.Observe != nil {
						opts.Observe(op.Key)
					}
					t0 := time.Now()
					var err error
					if op.Type == workload.Put {
						err = n.Put(op.Key, op.Value)
						writeLat.Record(uint64(time.Since(t0).Nanoseconds()))
					} else {
						_, err = n.Get(op.Key)
						readLat.Record(uint64(time.Since(t0).Nanoseconds()))
					}
					if err != nil {
						fail(i, op, err)
						return
					}
					i++
					continue
				}
				// Batched mode: gather up to BatchSize ops and issue them as
				// one MultiGet plus one MultiPut. Latency is recorded per
				// call, mirroring what a batching client observes.
				var getKeys, putKeys []uint64
				var putVals [][]byte
				for len(getKeys)+len(putKeys) < opts.BatchSize && i < opts.OpsPerClient {
					op := g.Next()
					if opts.Observe != nil {
						opts.Observe(op.Key)
					}
					if op.Type == workload.Put {
						putKeys = append(putKeys, op.Key)
						// The generator reuses its value buffer; copy.
						putVals = append(putVals, append([]byte(nil), op.Value...))
					} else {
						getKeys = append(getKeys, op.Key)
					}
					i++
				}
				if len(putKeys) > 0 {
					t0 := time.Now()
					err := n.MultiPut(putKeys, putVals)
					writeLat.Record(uint64(time.Since(t0).Nanoseconds()))
					if err != nil {
						failBatch(i, "put", putKeys, err)
						return
					}
				}
				if len(getKeys) > 0 {
					t0 := time.Now()
					_, err := n.MultiGet(getKeys)
					readLat.Record(uint64(time.Since(t0).Nanoseconds()))
					if err != nil {
						failBatch(i, "get", getKeys, err)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	close(refreshStop)
	refreshWG.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return RunResult{}, firstErr
	}

	res := RunResult{
		System:        c.systemName(),
		Ops:           uint64(opts.Clients * opts.OpsPerClient),
		Duration:      elapsed,
		ReadLat:       readLat.Snapshot(),
		WriteLat:      writeLat.Snapshot(),
		TrafficShares: c.stats.Traffic.Shares(),
		TotalBytes:    c.stats.Traffic.TotalBytes(),
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		res.CacheHits += n.CacheHits.Load()
		res.CacheMiss += n.CacheMisses.Load()
		res.LocalOps += n.LocalOps.Load()
		res.RemoteOps += n.RemoteOps.Load()
	}
	return res, nil
}

func (c *Cluster) systemName() string {
	if c.cfg.System == CCKVS {
		return "ccKVS-" + c.cfg.Protocol.String()
	}
	return c.cfg.System.String()
}

// CacheStatsWritesSC exposes how many SC cache writes this node executed
// (used by the Figure 4 serialization ablation to show where writes land).
func (n *Node) CacheStatsWritesSC() uint64 {
	if n.cache == nil {
		return 0
	}
	return n.cache.Stats().WritesSC.Load()
}

// VerifyShardIntegrity checks that every key is present on exactly its home
// shard (test support). In member form only locally-homed keys are checked.
func (c *Cluster) VerifyShardIntegrity() error {
	for k := uint64(0); k < c.cfg.NumKeys; k++ {
		home := c.HomeNode(k)
		if c.nodes[home] == nil {
			continue
		}
		if _, _, err := c.nodes[home].kvs.Get(k, nil); err != nil {
			return fmt.Errorf("key %d missing from home node %d: %w", k, home, err)
		}
	}
	return nil
}
