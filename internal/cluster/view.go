package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/timestamp"
)

// Membership views: the cluster-wide answer to "who is alive", threaded
// through every layer that used to assume fixed membership.
//
// A View is an epoch-stamped live-member set. Node failure enters the system
// as a transport-level signal — a broken TCP connection
// (fabric.TCPTransport.SetPeerDownHandler) or ping-based suspicion (the
// prober below, which also covers in-process transports, where nothing
// "breaks" when a member dies) — and PeerDown promotes it into a view
// change:
//
//   - the view's epoch advances and the peer leaves the live set;
//   - every RPC pending toward the peer fails (rpcClient.failPeer), and the
//     requests still queued in the coalescing pipeline fail when their
//     sender finds the credit budget gone;
//   - the per-worker credit budgets toward the peer are dropped
//     (fabric.Credits.Drop) — outstanding credits are destroyed with the
//     budget, blocked senders wake and skip the peer;
//   - the symmetric cache recomputes every outstanding Lin write's required
//     ack set against the new view (core.Cache.SetLive) and the writes whose
//     remaining required acks are already in complete immediately, waking
//     their blocked sessions;
//   - SC/Lin broadcast fan-out shrinks to the live view
//     (broadcastConsistency checks it per peer);
//   - operations on keys homed on the dead node fail fast with ErrHomeDown
//     at the session layer instead of timing out;
//   - the new view is gossiped to the surviving peers (one change packet per
//     live peer, re-forwarded only by receivers whose view it changed), so a
//     failure detected by one survivor reaches all of them.
//
// Rejoin is the mirror image: the prober keeps pinging down peers, and a
// pong from one (a restarted process, or a false suspicion healing) brings
// it back — budgets re-armed, view re-grown, home-down errors clear. The
// rejoined node's shard holds whatever it re-populated and its cache is
// empty until the next hot-set install; see README "Failure model".

// View is one epoch of the membership. Views are immutable; the cluster
// swaps a fresh pointer on every change.
type View struct {
	// Epoch counts local view changes (monotonic per process; epochs are not
	// globally agreed — the live set converges via gossip, the epoch is an
	// observability handle).
	Epoch uint64
	live  core.NodeSet
	n     int
}

// Live reports whether node is in the view's live set.
func (v *View) Live(node int) bool {
	return node >= 0 && node < v.n && v.live.Has(uint8(node))
}

// LiveCount returns the number of live members.
func (v *View) LiveCount() int { return v.live.Count() }

// LiveSet returns the live-member bitset.
func (v *View) LiveSet() core.NodeSet { return v.live }

// Down lists the excised node ids in ascending order.
func (v *View) Down() []int {
	var down []int
	for i := 0; i < v.n; i++ {
		if !v.live.Has(uint8(i)) {
			down = append(down, i)
		}
	}
	return down
}

// View returns the current membership view.
func (c *Cluster) View() *View { return c.view.Load() }

// SetViewHandler installs a callback invoked after every applied view change
// (observability: cckvs-node logs flips). Set before traffic starts.
func (c *Cluster) SetViewHandler(f func(*View)) {
	c.viewMu.Lock()
	c.onView = f
	c.viewMu.Unlock()
}

// errGossipDown is the cause recorded for failures learned from a peer's
// view-change message rather than local detection.
var errGossipDown = errors.New("reported down by peer view change")

// PeerDown promotes a transport-level failure signal into a cluster-wide
// membership view change: peer leaves the live view, every layer holding
// per-peer state is reconfigured — pending AND queued RPCs toward the peer
// fail, its credit budgets are dropped (blocked senders wake), Lin ack
// waiters recompute their required ack set and complete when satisfied,
// session operations on keys homed there start failing fast with ErrHomeDown
// — and the new view is gossiped to the surviving peers. Transports that can
// detect a dead peer (TCPTransport.SetPeerDownHandler) call it directly; the
// ping prober calls it on suspicion timeout. Idempotent: a peer already out
// of the view is a no-op.
func (c *Cluster) PeerDown(peer uint8, cause error) {
	c.applyDown(peer, cause, true)
}

// applyDown performs the view flip and its side effects; gossip controls
// whether the change is forwarded to the live peers (true for local
// detection and for changes that moved our view — dampening comes from the
// idempotence check, so gossip storms die after one round). The side
// effects run under viewMu: two concurrent transitions (prober vs TCP
// handler, down vs up) must apply their SetLive/budget changes in the same
// order they swapped the view pointer, or the consistency layer's live set
// and the budgets drift permanently out of sync with the cluster view.
// Everything done under the lock is non-blocking (buffered completion
// channels, short entry spinlocks); blocking work (the resurrection writes,
// gossip sends) happens after release.
func (c *Cluster) applyDown(peer uint8, cause error, gossip bool) {
	if int(peer) >= c.cfg.Nodes {
		return // ephemeral session clients are not members
	}
	if c.member && int(peer) == c.self {
		return // we are evidently alive
	}
	c.viewMu.Lock()
	v := c.view.Load()
	if !v.Live(int(peer)) {
		c.viewMu.Unlock()
		return
	}
	nv := &View{Epoch: v.Epoch + 1, live: v.live.Without(peer), n: v.n}
	c.view.Store(nv)

	if cause == nil {
		cause = errors.New("unspecified cause")
	}
	err := fmt.Errorf("cluster: peer node %d down (%w): %v", peer, ErrNodeDown, cause)
	var resurrect []resurrectWrite
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		for _, wk := range n.workers {
			// Dropping the budgets first wakes senders blocked on credits the
			// dead peer can never return; failPeer then completes the calls
			// already on the wire.
			wk.credits.Drop(fabric.Addr{Node: peer, Thread: c.cfg.cacheThread(wk.idx)})
			wk.credits.Drop(fabric.Addr{Node: peer, Thread: c.cfg.kvsThread(wk.idx)})
			wk.rpc.failPeer(peer, err)
			// RMW pins whose origin died can never be committed or cleared
			// by it; release them so RMWs on those keys stop bouncing.
			// homeMu is never held across a blocking call, so taking it
			// under viewMu cannot deadlock.
			wk.homeMu.Lock()
			for key, pin := range wk.rmwPins {
				if pin.origin == peer {
					delete(wk.rmwPins, key)
				}
			}
			wk.homeMu.Unlock()
		}
		if n.cache != nil {
			// Lin ack waiters counting the dead peer: complete every write
			// whose remaining required acks are in and wake its session.
			for _, upd := range n.cache.SetLive(nv.live) {
				n.completeLinWrite(upd.Key, upd)
			}
			// Entries the dead peer's own in-flight write left Invalid can
			// never receive their update; re-validate them so readers do not
			// spin on a state only the dead writer could clear. Healed keys
			// holding a local acknowledged-but-superseded write must be
			// re-published — discarding them would lose a write whose client
			// was told it succeeded.
			_, orphans := n.cache.DiscardOrphanedInvalidations(peer)
			for _, u := range orphans {
				resurrect = append(resurrect, resurrectWrite{n: n, key: u.Key, value: u.Value})
			}
		}
	}
	onView := c.onView
	c.viewMu.Unlock()

	for _, r := range resurrect {
		// Full write protocol on its own goroutine (a Lin re-publish blocks
		// on the live replicas' acks): the fresh timestamp dominates the
		// dead winner's, so every replica re-converges on the acknowledged
		// value.
		r := r
		go func() { _ = r.n.Put(r.key, r.value) }()
	}
	// A dead peer can no longer finish a seed stream it started toward this
	// member; release its share of the re-sync gate.
	c.removeSyncSource(peer)
	if gossip {
		c.broadcastView(peer)
	}
	if onView != nil {
		onView(nv)
	}
}

// resurrectWrite is an acknowledged-but-superseded local write whose winner
// died unpublished; it is re-driven through the normal write path.
type resurrectWrite struct {
	n     *Node
	key   uint64
	value []byte
}

// PeerUp returns a previously excised peer to the live view — the rejoin
// path, driven by the prober when a down peer answers a ping again (a
// restarted process, or a false suspicion healing). Credit budgets are
// re-armed and the consistency layer's live set grows; in-flight Lin writes
// are unaffected (a joining peer received no invalidation, so it is never
// added to their requirements). Idempotent.
func (c *Cluster) PeerUp(peer uint8) {
	if int(peer) >= c.cfg.Nodes {
		return
	}
	c.viewMu.Lock()
	v := c.view.Load()
	if v.Live(int(peer)) {
		c.viewMu.Unlock()
		return
	}
	nv := &View{Epoch: v.Epoch + 1, live: v.live.With(peer), n: v.n}
	c.view.Store(nv)
	// Side effects under viewMu, like applyDown: a rejoin racing an excision
	// must not re-arm budgets before (or after) the wrong SetLive.
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		for _, wk := range n.workers {
			wk.credits.SetBudget(fabric.Addr{Node: peer, Thread: c.cfg.cacheThread(wk.idx)}, c.cfg.CreditsPerPeer)
			wk.credits.SetBudget(fabric.Addr{Node: peer, Thread: c.cfg.kvsThread(wk.idx)}, c.cfg.CreditsPerPeer)
		}
		if n.cache != nil {
			n.cache.SetLive(nv.live)
		}
	}
	onView := c.onView
	c.viewMu.Unlock()
	if onView != nil {
		onView(nv)
	}
}

// Kill models this member's process dying abruptly (chaos tests on
// in-process transports, where no connection breaks when a member goes): the
// member stops answering every fabric message — consistency traffic, KVS
// requests, session requests, pings — so its peers' suspicion timers fire.
// Local callers with operations in flight are treated like threads of a dead
// process: pending RPCs fail, but a session blocked mid-protocol may never
// return. Member form only; Close still tears the transport down afterwards.
func (c *Cluster) Kill() {
	if c.killed.Swap(true) {
		return
	}
	c.stopProber()
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		for _, wk := range n.workers {
			// Drop every credit budget FIRST: once killed, the handlers
			// discard the responses and credit updates that would otherwise
			// wake a sender blocked in Acquire — and pipe.close() below
			// waits for exactly those senders, so skipping this deadlocks
			// the kill.
			for peer := 0; peer < c.cfg.Nodes; peer++ {
				if peer == int(n.id) {
					continue
				}
				wk.credits.Drop(fabric.Addr{Node: uint8(peer), Thread: c.cfg.cacheThread(wk.idx)})
				wk.credits.Drop(fabric.Addr{Node: uint8(peer), Thread: c.cfg.kvsThread(wk.idx)})
			}
			wk.pipe.close()
			wk.con.close()
			wk.rpc.failAll(fmt.Errorf("cluster: member killed (%w)", ErrNodeDown))
		}
	}
}

// Killed reports whether Kill was called (test hook).
func (c *Cluster) Killed() bool { return c.killed.Load() }

// The view wire protocol, on the dedicated threadView endpoint:
//
//	ping:   op(1)=0          — answered with a pong (liveness probe)
//	pong:   op(1)=1          — records the sender as alive
//	change: op(1)=2 peer(1)  — one NEWLY-excised member (a delta, not the
//	                           sender's absolute down-set: an absolute set
//	                           would replay stale membership — a survivor
//	                           that had not yet re-admitted a rejoined peer
//	                           would re-excise it cluster-wide with every
//	                           later gossip). Receivers whose view the delta
//	                           moves forward it once; already-known deltas
//	                           are dropped, so storms die after one round.
//
// Two further messages drive the replicated rejoin re-seed (reseed below):
//
//	seed-begin: op(1)=3 — the sender is about to stream shard seeds at the
//	                      receiver; the receiver gates its acting-primary
//	                      serving (stamps, reads, fetches answer Retry)
//	                      until the matching seed-done, so no client
//	                      observes its pre-rejoin state.
//	seed-done:  op(1)=4 — the sender's seed stream has fully settled.
const (
	viewMsgPing      byte = 0
	viewMsgPong      byte = 1
	viewMsgChange    byte = 2
	viewMsgSeedBegin byte = 3
	viewMsgSeedDone  byte = 4
)

// handleView serves the membership endpoint. A killed member drops
// everything — that silence is exactly what its peers' suspicion detects.
func (c *Cluster) handleView(p fabric.Packet) {
	if c.killed.Load() || len(p.Data) < 1 {
		return
	}
	switch p.Data[0] {
	case viewMsgPing:
		_ = c.transport.Send(fabric.Packet{
			Src:   fabric.Addr{Node: c.localID(), Thread: threadView},
			Dst:   fabric.Addr{Node: p.Src.Node, Thread: threadView},
			Class: metrics.ClassFlowControl,
			Data:  []byte{viewMsgPong},
		})
	case viewMsgPong:
		peer := int(p.Src.Node)
		if peer < len(c.lastPong) {
			c.lastPong[peer].Store(time.Now().UnixNano())
			if !c.view.Load().Live(peer) {
				if c.replicated() {
					// Re-seed the rejoiner from this member's shard before
					// re-admitting it (blocking work; own goroutine).
					c.reseedThenAdmit(p.Src.Node)
				} else {
					c.PeerUp(p.Src.Node)
				}
			}
		}
	case viewMsgChange:
		if len(p.Data) < 2 {
			return
		}
		// Forwarding (gossip=true) propagates asymmetric detection;
		// receivers that already knew apply nothing and forward nothing, so
		// the storm dies after one round.
		c.applyDown(p.Data[1], errGossipDown, true)
	case viewMsgSeedBegin:
		c.addSyncSource(p.Src.Node)
	case viewMsgSeedDone:
		c.removeSyncSource(p.Src.Node)
	}
}

// addSyncSource arms the rejoin re-sync gate: a survivor announced a seed
// stream toward this member. While any source is active, the member answers
// acting-primary traffic (reads, put stamps, promotion fetches) with Retry
// and local operations wait — its shard may still hold pre-crash state.
func (c *Cluster) addSyncSource(peer uint8) {
	if !c.replicated() || int(peer) >= c.cfg.Nodes {
		return
	}
	c.syncMu.Lock()
	c.syncSources[peer] = struct{}{}
	c.syncing.Store(true)
	c.syncMu.Unlock()
	// A seed stream means this member was excised and is being re-admitted:
	// every RMW pin predates the excision, and each pin's origin has either
	// committed already or failed against the excised us — none will ever
	// send the clear. Drop them so the re-admitted primary can stamp again.
	if n := c.LocalNode(); n != nil {
		for _, wk := range n.workers {
			wk.homeMu.Lock()
			clear(wk.rmwPins)
			wk.homeMu.Unlock()
		}
	}
}

// removeSyncSource clears one seeder — its seed-done arrived, or it died
// (applyDown calls this so a dead seeder cannot wedge the gate forever).
func (c *Cluster) removeSyncSource(peer uint8) {
	c.syncMu.Lock()
	if _, ok := c.syncSources[peer]; ok {
		delete(c.syncSources, peer)
		if len(c.syncSources) == 0 {
			c.syncing.Store(false)
		}
	}
	c.syncMu.Unlock()
}

// reseedThenAdmit re-seeds a rejoining replica from this member's shard and
// then re-admits it to the view, at most once concurrently per peer. The
// push happens on its own goroutine — it blocks on per-key RPCs, and this
// is called from the view dispatcher.
func (c *Cluster) reseedThenAdmit(peer uint8) {
	c.reseedMu.Lock()
	if c.reseeding[peer] {
		c.reseedMu.Unlock()
		return
	}
	c.reseeding[peer] = true
	c.reseedMu.Unlock()
	c.reseedWG.Add(1)
	go func() {
		defer c.reseedWG.Done()
		defer func() {
			c.reseedMu.Lock()
			delete(c.reseeding, peer)
			c.reseedMu.Unlock()
		}()
		c.reseed(peer)
	}()
}

// seedRecord is one shard entry staged for a re-seed push.
type seedRecord struct {
	key   uint64
	ts    timestamp.TS
	value []byte
}

// reseed pushes every key this member served as acting primary while peer
// was down (and for which peer holds a replica) back at peer, then declares
// the stream settled. The order is what makes it safe:
//
//  1. seed-begin — arms the rejoiner's re-sync gate, so it answers Retry to
//     every acting-primary op (critically including put stamps: a stamp
//     taken against its pre-crash clock could fall below timestamps this
//     member handed out while acting as its stand-in, silently losing the
//     acked write carrying it).
//  2. PeerUp — re-admits the peer locally FIRST, so the credit budgets and
//     pipeline toward it exist for the push itself; the gate, not the view,
//     is what keeps its stale state unobservable. The push set is selected
//     against the pre-rejoin view (this member pushes exactly the shards it
//     was acting primary FOR while the peer was away), but the values are
//     read after the flip, so writes racing the rejoin are included.
//  3. the push — ordinary write-backs (PutIfNewer): a seed never regresses
//     a value the rejoiner obtained more recently through a replicated
//     commit of new traffic.
//  4. seed-done — the gate disarms (this seeder's share of it).
//
// Residual window, documented rather than solved: a peer that flips its own
// view before every OTHER survivor's seed stream lands can route a stamp to
// the rejoiner while a second seeder is still pushing; the gate is per-
// rejoiner (any active source holds it), so this requires the stamp to
// overtake that seeder's seed-begin in flight — possible only on transports
// without cross-thread ordering, and bounded by one queue drain.
func (c *Cluster) reseed(peer uint8) {
	oldView := c.view.Load()
	if oldView.Live(int(peer)) {
		return // raced another admission; nothing was missed
	}
	n := c.LocalNode()
	self := int(c.localID())
	c.sendSeedMark(peer, viewMsgSeedBegin)
	c.PeerUp(peer)
	defer c.sendSeedMark(peer, viewMsgSeedDone)

	var seeds []seedRecord
	for pi := 0; pi < n.kvs.NumPartitions(); pi++ {
		n.kvs.Partition(pi).Range(func(key uint64, value []byte, ts timestamp.TS) bool {
			if c.primaryFor(key, oldView) != self || !c.isReplica(key, int(peer)) {
				return true
			}
			seeds = append(seeds, seedRecord{key: key, ts: ts, value: append([]byte(nil), value...)})
			return true
		})
	}
	// Push through the ordinary coalescing pipeline, a bounded window of
	// calls in flight. Push errors are not retried here: the peer either
	// died again (its own PeerDown clears the rejoiner gate) or the
	// deployment is closing.
	const seedWindow = 128
	chs := make([]chan rpcResult, 0, seedWindow)
	flush := func() {
		for _, ch := range chs {
			_, _ = awaitRPC(ch)
		}
		chs = chs[:0]
	}
	for _, s := range seeds {
		wk := n.workerFor(s.key)
		chs = append(chs, wk.rpc.start(peer, wireReq{op: rpcOpWriteback, key: s.key, ts: s.ts, value: s.value}))
		if len(chs) >= seedWindow {
			flush()
		}
	}
	flush()
}

// sendSeedMark sends one seed-begin/seed-done marker to peer's view thread.
func (c *Cluster) sendSeedMark(peer uint8, msg byte) {
	_ = c.transport.Send(fabric.Packet{
		Src:   fabric.Addr{Node: c.localID(), Thread: threadView},
		Dst:   fabric.Addr{Node: peer, Thread: threadView},
		Class: metrics.ClassFlowControl,
		Data:  []byte{msg},
	})
}

// broadcastView tells every live peer that `downed` just left the view.
func (c *Cluster) broadcastView(downed uint8) {
	v := c.view.Load()
	data := []byte{viewMsgChange, downed}
	self := c.localID()
	for peer := 0; peer < c.cfg.Nodes; peer++ {
		if peer == int(self) || !v.Live(peer) {
			continue
		}
		_ = c.transport.Send(fabric.Packet{
			Src:   fabric.Addr{Node: self, Thread: threadView},
			Dst:   fabric.Addr{Node: uint8(peer), Thread: threadView},
			Class: metrics.ClassFlowControl,
			Data:  data,
		})
	}
}

// localID returns the fabric node id view traffic originates from.
func (c *Cluster) localID() uint8 {
	if c.member {
		return uint8(c.self)
	}
	return 0
}

// startProber launches the ping-based failure detector (member form, when
// Config.PingInterval > 0): every interval it pings each peer — including
// down ones, which is what detects rejoin — and excises any live peer whose
// last pong is older than Config.PingTimeout.
func (c *Cluster) startProber() {
	if !c.member || c.cfg.PingInterval <= 0 {
		return
	}
	now := time.Now().UnixNano()
	for i := range c.lastPong {
		c.lastPong[i].Store(now) // grace period: nobody is suspect at start
	}
	c.probeStop = make(chan struct{})
	c.probeWG.Add(1)
	go func() {
		defer c.probeWG.Done()
		tick := time.NewTicker(c.cfg.PingInterval)
		defer tick.Stop()
		for {
			select {
			case <-c.probeStop:
				return
			case <-tick.C:
			}
			if c.killed.Load() {
				continue
			}
			self := c.localID()
			deadline := time.Now().Add(-c.cfg.PingTimeout).UnixNano()
			for peer := 0; peer < c.cfg.Nodes; peer++ {
				if peer == int(self) {
					continue
				}
				_ = c.transport.Send(fabric.Packet{
					Src:   fabric.Addr{Node: self, Thread: threadView},
					Dst:   fabric.Addr{Node: uint8(peer), Thread: threadView},
					Class: metrics.ClassFlowControl,
					Data:  []byte{viewMsgPing},
				})
				if c.view.Load().Live(peer) && c.lastPong[peer].Load() < deadline {
					c.PeerDown(uint8(peer), fmt.Errorf("no pong for %v (ping suspicion)", c.cfg.PingTimeout))
				}
			}
		}
	}()
}

// stopProber halts the failure detector; safe to call twice.
func (c *Cluster) stopProber() {
	c.probeMu.Lock()
	if c.probeStop != nil && !c.probeStopped {
		c.probeStopped = true
		close(c.probeStop)
	}
	c.probeMu.Unlock()
	c.probeWG.Wait()
}
