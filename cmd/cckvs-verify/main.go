// Command cckvs-verify model-checks the ccKVS consistency protocols,
// reproducing the paper's Murphi verification (§5.2): exhaustive
// exploration of a bounded protocol instance, checking the data-value and
// write-serialization invariants at every state and deadlock freedom at
// quiescence.
//
// Usage:
//
//	cckvs-verify                         # default matrix (Lin + SC)
//	cckvs-verify -protocol lin -procs 3 -clock 2
//	cckvs-verify -fault conditional-ack  # demonstrate bug detection
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mcheck"
)

func main() {
	var (
		protoName = flag.String("protocol", "", "lin or sc (empty: verify both with the default matrix)")
		procs     = flag.Int("procs", 3, "number of replicas")
		addrs     = flag.Int("addrs", 1, "number of keys")
		clock     = flag.Int("clock", 1, "Lamport clock bound")
		faultName = flag.String("fault", "", "inject a protocol bug: conditional-ack | mismatched-update")
	)
	flag.Parse()

	if *protoName == "" && *faultName == "" {
		matrix := []struct {
			p mcheck.Protocol
			b mcheck.Bounds
		}{
			{mcheck.Lin, mcheck.Bounds{Procs: 3, Addrs: 1, MaxClock: 1}},
			{mcheck.Lin, mcheck.Bounds{Procs: 2, Addrs: 1, MaxClock: 3}},
			{mcheck.Lin, mcheck.Bounds{Procs: 2, Addrs: 2, MaxClock: 1}},
			{mcheck.SC, mcheck.Bounds{Procs: 3, Addrs: 2, MaxClock: 1}},
		}
		failed := false
		for _, m := range matrix {
			rep, err := mcheck.Check(m.p, m.b)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(rep.String())
			if !rep.OK() {
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	proto := mcheck.Lin
	if *protoName == "sc" {
		proto = mcheck.SC
	}
	fault := mcheck.FaultNone
	switch *faultName {
	case "":
	case "conditional-ack":
		fault = mcheck.FaultConditionalAck
	case "mismatched-update":
		fault = mcheck.FaultApplyMismatchedUpdate
	default:
		fmt.Fprintf(os.Stderr, "unknown fault %q\n", *faultName)
		os.Exit(2)
	}
	rep, err := mcheck.CheckFault(proto, mcheck.Bounds{
		Procs: *procs, Addrs: *addrs, MaxClock: uint8(*clock),
	}, fault)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(rep.String())
	if !rep.OK() {
		fmt.Println("counterexample trace:")
		for i, step := range rep.Trace {
			fmt.Printf("  %2d. %s\n", i+1, step)
		}
		if fault == mcheck.FaultNone {
			os.Exit(1)
		}
	}
}
