//go:build race

package cluster

// raceBuild reports whether this binary was built with the race detector —
// the build where debug aids (released-buffer poisoning) default on.
const raceBuild = true
