// Scalability study: when does symmetric caching pay off? Reproduces the
// paper's §8.7 analyses — the Figure 14 scale-out projection and the
// Figure 15 break-even write ratios — and answers the capacity-planning
// question for a concrete deployment.
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/model"
)

func main() {
	fmt.Print(experiments.Fig14().Render())
	fmt.Println()
	fmt.Print(experiments.Fig15().Render())
	fmt.Println()

	// Capacity planning: a 20-server deployment serving a workload with
	// 1% writes — is ccKVS worth it, and with which protocol?
	const servers, writeRatio = 20, 0.01
	p := model.Defaults(servers, writeRatio)
	fmt.Printf("planning a %d-server deployment at %.1f%% writes:\n", servers, writeRatio*100)
	fmt.Printf("  Uniform (no caching):  %7.0f MRPS\n", p.ThroughputUniform()/1e6)
	fmt.Printf("  ccKVS-SC:              %7.0f MRPS (%.1fx)\n",
		p.ThroughputSC()/1e6, p.ThroughputSC()/p.ThroughputUniform())
	fmt.Printf("  ccKVS-Lin:             %7.0f MRPS (%.1fx)\n",
		p.ThroughputLin()/1e6, p.ThroughputLin()/p.ThroughputUniform())
	fmt.Printf("  break-even write ratio: %.1f%% (SC), %.1f%% (Lin)\n",
		p.BreakEvenSC()*100, p.BreakEvenLin()*100)
	if writeRatio < p.BreakEvenLin() {
		fmt.Println("  verdict: even full linearizability is a win at this write ratio")
	} else if writeRatio < p.BreakEvenSC() {
		fmt.Println("  verdict: use SC; Lin's two-phase writes would erase the gain")
	} else {
		fmt.Println("  verdict: symmetric caching does not pay off here")
	}
}
