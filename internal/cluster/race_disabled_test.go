//go:build !race

package cluster

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation changes allocation counts.
const raceEnabled = false
