package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestApplyHotSetDeltaMovesKeysEverywhere checks the basic contract: the
// demoted key leaves every cache with its dirty value flushed home, the
// promoted key is installed on every cache with its home value, and the
// stats account for exactly that.
func TestApplyHotSetDeltaMovesKeysEverywhere(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newTestCluster(t, Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 2000, CacheItems: 8,
			})
			dirty := bytes.Repeat([]byte{0xD1}, 40)
			if err := c.Node(1).Put(3, dirty); err != nil {
				t.Fatal(err)
			}
			st, err := c.ApplyHotSetDelta(0, []uint64{100}, []uint64{3})
			if err != nil {
				t.Fatal(err)
			}
			if st.Promoted != 1 || st.Demoted != 1 || st.WriteBacks != 1 {
				t.Fatalf("stats %+v, want 1 promoted / 1 demoted / 1 write-back", st)
			}
			if st.HomeFetches != 1 {
				t.Fatalf("stats %+v: promotion must fetch exactly the delta", st)
			}
			for i := 0; i < c.NumNodes(); i++ {
				if c.Node(i).cache.Contains(3) {
					t.Fatalf("node %d still caches demoted key", i)
				}
				if !c.Node(i).cache.Contains(100) {
					t.Fatalf("node %d missing promoted key", i)
				}
			}
			// The dirty value survived the demotion at its home shard...
			home := c.Node(c.HomeNode(3))
			v, _, err := home.kvs.Get(3, nil)
			if err != nil || !bytes.Equal(v, dirty) {
				t.Fatalf("write-back lost: %v %v", v, err)
			}
			// ...and the promoted key now hits in the cache.
			before := c.Node(2).CacheHits.Load()
			if _, err := c.Node(2).Get(100); err != nil {
				t.Fatal(err)
			}
			if c.Node(2).CacheHits.Load() != before+1 {
				t.Fatal("promoted key still misses")
			}
		})
	}
}

// TestDeltaCostIsODeltaNotOK is the acceptance check for the incremental
// scheme: reconfiguration cost must scale with the number of keys that
// move (Δ), not with the hot-set size (k). It pins both the promotion
// fetch count (== Δ) and the total reconfiguration RPC traffic (a small
// constant times Δ, well under k).
func TestDeltaCostIsODeltaNotOK(t *testing.T) {
	const cacheItems = 64 // k
	c := newTestCluster(t, Config{
		Nodes: 3, System: CCKVS, Protocol: core.SC,
		NumKeys: 4000, CacheItems: cacheItems,
	})
	promote := []uint64{1000, 1001, 1002, 1003}
	demote := []uint64{0, 1, 2, 3}
	delta := len(promote) + len(demote)

	msgsBefore := uint64(0)
	for i := 0; i < c.NumNodes(); i++ {
		msgsBefore += c.Node(i).RemoteReqMsgs.Load()
	}
	st, err := c.ApplyHotSetDelta(0, promote, demote)
	if err != nil {
		t.Fatal(err)
	}
	msgsAfter := uint64(0)
	for i := 0; i < c.NumNodes(); i++ {
		msgsAfter += c.Node(i).RemoteReqMsgs.Load()
	}

	if st.HomeFetches != len(promote) {
		t.Fatalf("HomeFetches = %d, want %d (the promotion delta)", st.HomeFetches, len(promote))
	}
	spent := int(msgsAfter - msgsBefore)
	// Freeze/collect/commit visit every peer per demoted key, promotions
	// install on every peer, write-backs and fetches are per key: all of it
	// O(Δ) with a small constant. A full reinstall would fetch O(k).
	if budget := 12 * delta; spent > budget {
		t.Fatalf("reconfiguration sent %d request messages for Δ=%d (budget %d): not O(Δ)",
			spent, delta, budget)
	}
	if spent >= cacheItems {
		t.Fatalf("reconfiguration sent %d messages, k is only %d: not better than a reinstall",
			spent, cacheItems)
	}
	if st.CollectRetries != 0 {
		t.Fatalf("quiescent cluster needed %d collect retries", st.CollectRetries)
	}
}

// TestSequentialWritesAcrossDemotionNeverLost hammers one hot key from a
// single sequential writer while the key is demoted mid-stream: every write
// observes the previous one, so whatever path each write took (cache write,
// frozen retry, miss to home) the final value must be the last one written.
func TestSequentialWritesAcrossDemotionNeverLost(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newTestCluster(t, Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 500, CacheItems: 4,
			})
			const key = uint64(2)
			const writes = 400
			var last atomic.Uint32
			done := make(chan error, 1)
			go func() {
				val := make([]byte, 8)
				for i := 1; i <= writes; i++ {
					val[0], val[1], val[2] = byte(i), byte(i>>8), 0xAB
					// The session sticks to one node: SC propagates
					// updates asynchronously, so only same-replica writes
					// carry monotonic timestamps (Lin writes are
					// synchronous and would allow rotating).
					if err := c.Node(0).Put(key, val); err != nil {
						done <- fmt.Errorf("write %d: %w", i, err)
						return
					}
					last.Store(uint32(i))
				}
				done <- nil
			}()
			// Demote the key mid-stream, then promote it back, repeatedly.
			for round := 0; round < 6; round++ {
				if _, err := c.ApplyHotSetDelta(round%3, nil, []uint64{key}); err != nil {
					t.Fatal(err)
				}
				if _, err := c.ApplyHotSetDelta(round%3, []uint64{key}, nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			// Final demotion flushes whatever the cache holds; the home
			// shard must then hold the last write.
			if _, err := c.ApplyHotSetDelta(0, nil, []uint64{key}); err != nil {
				t.Fatal(err)
			}
			v, err := c.Node(0).Get(key)
			if err != nil {
				t.Fatal(err)
			}
			n := last.Load()
			if v[0] != byte(n) || v[1] != byte(n>>8) || v[2] != 0xAB {
				t.Fatalf("home holds write %d, want last write %d", uint32(v[0])|uint32(v[1])<<8, n)
			}
		})
	}
}

// TestApplyHotSetDeltaUnderLiveTraffic rolls the hot set across the
// keyspace while client goroutines keep reading and writing — the epoch
// loop and the clients race by design, which is exactly what `go test
// -race` must stay clean on. Reads and writes must never error, and after
// the last epoch every cache must hold exactly the final window.
func TestApplyHotSetDeltaUnderLiveTraffic(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			const (
				cacheItems = 32
				epochs     = 8
				shift      = 8 // keys moved per epoch
				clients    = 6
			)
			c := newTestCluster(t, Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 4000, CacheItems: cacheItems,
			})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for cl := 0; cl < clients; cl++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					val := make([]byte, 16)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						// Mix of keys inside, entering, and leaving the
						// rolling hot window, plus cold traffic.
						key := uint64((id*31 + i) % (cacheItems + epochs*shift + 100))
						n := c.Node((id + i) % c.NumNodes())
						if i%4 == 0 {
							val[0], val[1] = byte(i), byte(id)
							if err := n.Put(key, val); err != nil {
								errs <- fmt.Errorf("client %d put %d: %w", id, key, err)
								return
							}
						} else if _, err := n.Get(key); err != nil {
							errs <- fmt.Errorf("client %d get %d: %w", id, key, err)
							return
						}
					}
				}(cl)
			}
			// Roll the hot window [e*shift, e*shift+cacheItems) while the
			// clients hammer away.
			for e := 1; e <= epochs; e++ {
				promote := make([]uint64, 0, shift)
				demote := make([]uint64, 0, shift)
				for i := 0; i < shift; i++ {
					demote = append(demote, uint64((e-1)*shift+i))
					promote = append(promote, uint64((e-1)*shift+cacheItems+i))
				}
				if _, err := c.ApplyHotSetDelta(e%3, promote, demote); err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			// Every cache converged to the final window.
			want := make(map[uint64]bool, cacheItems)
			for i := 0; i < cacheItems; i++ {
				want[uint64(epochs*shift+i)] = true
			}
			for i := 0; i < c.NumNodes(); i++ {
				keys := c.Node(i).cache.Keys()
				if len(keys) != cacheItems {
					t.Fatalf("node %d holds %d keys, want %d", i, len(keys), cacheItems)
				}
				for _, k := range keys {
					if !want[k] {
						t.Fatalf("node %d caches stray key %d", i, k)
					}
				}
			}
			if err := c.VerifyShardIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
