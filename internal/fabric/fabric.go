// Package fabric is the communication substrate of the ccKVS reproduction.
//
// The paper runs on RDMA: RPCs over Unreliable Datagram sends in the style
// of FaSST, with credit-based flow control, send-side batching of work
// requests, payload inlining below 189 bytes, selective signaling and a
// software broadcast primitive (EuroSys'18, §6.3-6.4). Go has no mature RDMA
// verbs binding, so this package reproduces the *semantics and accounting*
// of that layer over two interchangeable transports:
//
//   - ChanTransport: goroutine/channel message passing inside one process
//     (the default for experiments; deterministic-ish and allocation-light).
//   - TCPTransport: real sockets for multi-process deployments
//     (cmd/cckvs-node), framing the same packets over TCP connections.
//
// Endpoints address (node, thread) pairs — ccKVS deliberately limits which
// threads talk to which (§6.4, "Reducing Connections") and the Addr type
// preserves that structure. Every packet carries a message class so network
// traffic can be broken down exactly as in Figure 11.
package fabric

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// Addr identifies a communication endpoint: a thread on a node. ccKVS binds
// each cache thread to exactly one cache thread and one KVS thread per
// remote machine, which keeps the number of queue pairs (and posted
// receives) linear rather than quadratic in thread count.
type Addr struct {
	Node   uint8
	Thread uint8
}

// String renders the address as "n<node>/t<thread>".
func (a Addr) String() string { return fmt.Sprintf("n%d/t%d", a.Node, a.Thread) }

// Packet is one network datagram. Data may hold several application
// messages coalesced together (§8.5); Class attributes the bytes for the
// Figure 11 traffic breakdown.
//
// A packet carries its payload either flat (Data) or vectored (Segs). When
// Segs is non-nil the wire payload is the in-order concatenation of the
// segments and Data is ignored; senders use this to gather header metadata
// and zero-copy value slices (e.g. store leases) without flattening them
// into one buffer. Every Transport implementation consumes the segments
// before Send returns — by vectored write (TCP) or by flattening into a
// fresh buffer (in-process transports) — so the caller may release or reuse
// the segment memory as soon as Send returns.
// A packet that coalesces messages of several classes (the consistency
// plane mixes updates, invalidations and piggybacked acks in one fan-out
// packet) may carry Spans: per-class message counts and payload bytes for
// the traffic accountant. Spans are sender-side accounting metadata only —
// they never travel on the wire and receivers must not rely on them.
type Packet struct {
	Src   Addr
	Dst   Addr
	Class metrics.MsgClass
	Data  []byte
	Segs  [][]byte
	Spans []ClassSpan
}

// ClassSpan attributes a group of coalesced messages inside one packet to a
// message class, so a mixed consistency packet is broken down exactly in the
// Figure 11 accounting: Msgs messages totalling Bytes payload bytes of
// Class. (The messages themselves stay in queue order on the wire; spans
// only tally them.)
type ClassSpan struct {
	Class metrics.MsgClass
	Msgs  uint32
	Bytes uint32
}

// payloadLen is the wire payload size: Segs when vectored, Data otherwise.
func (p *Packet) payloadLen() int {
	if p.Segs == nil {
		return len(p.Data)
	}
	n := 0
	for _, s := range p.Segs {
		n += len(s)
	}
	return n
}

// flatten materializes a vectored payload into one fresh buffer. The result
// is newly allocated (receiver may retain it); flat packets are returned
// as-is.
func (p *Packet) flatten() Packet {
	if p.Segs == nil {
		return *p
	}
	buf := make([]byte, 0, p.payloadLen())
	for _, s := range p.Segs {
		buf = append(buf, s...)
	}
	return Packet{Src: p.Src, Dst: p.Dst, Class: p.Class, Data: buf}
}

// WireOverhead is the per-packet header cost (transport headers plus the
// UD/GRH-equivalent framing) charged by the traffic accountant. With it, an
// 8-byte-key request plus a 40-byte-value reply cost 113 bytes on the wire,
// matching the B_RR constant of the paper's analytical model (§8.7).
const WireOverhead = 32

// InlineThreshold is the largest payload that would be inlined into the work
// request on real hardware, sparing the NIC a DMA read (§6.4). The transports
// only account for it (see Stats), since host memory makes inlining moot.
const InlineThreshold = 189

// Handler consumes packets delivered to a registered address.
type Handler func(Packet)

// Transport moves packets between addresses.
type Transport interface {
	// Register installs the handler for an address. Packets sent to an
	// unregistered address are dropped (UD semantics: no connection, no
	// error back to the sender).
	Register(addr Addr, h Handler)
	// Send delivers one packet asynchronously. It may block briefly for
	// backpressure but must not wait for the handler to run.
	Send(p Packet) error
	// Close tears the transport down; subsequent Sends fail.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("fabric: transport closed")

// Stats collects transport-level counters: packets/bytes by class plus the
// RDMA-flavored bookkeeping (inlined sends, selective-signal completions,
// doorbell batches).
type Stats struct {
	Traffic     *metrics.Traffic
	Inlined     metrics.Counter
	Signaled    metrics.Counter
	Doorbells   metrics.Counter
	SendsTotal  metrics.Counter
	RecvsTotal  metrics.Counter
	SendBlocked metrics.Counter // sends that found a full queue (backpressure)
	// Vectored/flattened account how segmented payloads (Packet.Segs) left
	// the process: VectoredBytes went to the wire by scatter-gather write
	// (zero copies of the segment memory), FlattenedBytes were copied into
	// one buffer first (in-process transports, which must break aliasing).
	// The zero-copy assertions in internal/cluster read these.
	VectoredBytes  metrics.Counter
	FlattenedBytes metrics.Counter
	// Coalesce holds the messages-per-packet histograms fed by span-carrying
	// packets (the coalesced consistency plane): one histogram per class, so
	// the achieved §6.3 coalescing factor is observable per message class.
	Coalesce *metrics.Coalescing
}

// NewStats returns a zeroed stats block.
func NewStats() *Stats {
	return &Stats{Traffic: metrics.NewTraffic(), Coalesce: metrics.NewCoalescing()}
}

// account records one sent packet. Span-carrying packets charge each span's
// messages and payload bytes to that span's class — Traffic.Packets then
// counts *messages* per class, which keeps the per-class message counts
// exact whether or not coalescing batched them — with the per-packet wire
// overhead going to the packet's nominal class. Flat packets charge one
// message of the packet's class, as before.
func (s *Stats) account(p Packet) {
	if s == nil {
		return
	}
	s.SendsTotal.Add(1)
	n := p.payloadLen()
	if len(p.Spans) == 0 {
		s.Traffic.Add(p.Class, uint64(n)+WireOverhead)
	} else {
		s.Traffic.AddN(p.Class, 0, WireOverhead)
		for _, sp := range p.Spans {
			s.Traffic.AddN(sp.Class, uint64(sp.Msgs), uint64(sp.Bytes))
			if s.Coalesce != nil {
				s.Coalesce.Record(sp.Class, uint64(sp.Msgs))
			}
		}
	}
	if n <= InlineThreshold {
		s.Inlined.Add(1)
	}
}

// ChanTransport delivers packets through per-address buffered channels, one
// dispatcher goroutine per registered address. Sends block when a
// destination queue is full, which stands in for the switch/NIC
// backpressure of the real fabric.
type ChanTransport struct {
	mu     sync.RWMutex
	queues map[Addr]chan Packet
	wg     sync.WaitGroup
	sends  sync.WaitGroup // in-flight Send calls (see Close)
	closed bool
	depth  int
	stats  *Stats
}

// NewChanTransport returns an in-process transport whose per-address queues
// hold depth packets (depth <= 0 selects a default of 1024, roughly the
// posted-receive budget ccKVS provisions per queue pair).
func NewChanTransport(depth int, stats *Stats) *ChanTransport {
	if depth <= 0 {
		depth = 1024
	}
	return &ChanTransport{queues: make(map[Addr]chan Packet), depth: depth, stats: stats}
}

// Register installs h for addr and starts its dispatcher.
func (t *ChanTransport) Register(addr Addr, h Handler) {
	q := make(chan Packet, t.depth)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if _, dup := t.queues[addr]; dup {
		t.mu.Unlock()
		panic(fmt.Sprintf("fabric: duplicate registration for %v", addr))
	}
	t.queues[addr] = q
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for p := range q {
			if t.stats != nil {
				t.stats.RecvsTotal.Add(1)
			}
			h(p)
		}
	}()
}

// Send enqueues p for its destination. Unknown destinations drop the packet
// (datagram semantics). The sender registers itself in t.sends before
// releasing the lock, so Close can wait for every in-flight (possibly
// blocked-on-backpressure) send to land before it closes the queues — a
// send on a closed channel is therefore impossible, and because Close only
// *marks* the transport closed before waiting, nested Sends issued by
// dispatcher handlers fail fast with ErrClosed instead of deadlocking the
// drain.
func (t *ChanTransport) Send(p Packet) error {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return ErrClosed
	}
	q, ok := t.queues[p.Dst]
	t.stats.account(p)
	t.sends.Add(1)
	t.mu.RUnlock()
	defer t.sends.Done()
	if !ok {
		return nil // dropped; segment memory is trivially unreferenced
	}
	// Spans are sender-side accounting metadata (consumed by account above);
	// in-process delivery retains the packet by reference, so strip them
	// rather than let the receiver alias a buffer the sender may reuse.
	p.Spans = nil
	if p.Segs != nil {
		// In-process delivery passes the payload by reference and the
		// receiver may retain it, so a vectored payload must be broken from
		// its segment aliases here — the Segs contract says the caller may
		// reuse/release segment memory the moment Send returns.
		if t.stats != nil {
			t.stats.FlattenedBytes.Add(uint64(p.payloadLen()))
		}
		p = p.flatten()
	}
	select {
	case q <- p:
	default:
		if t.stats != nil {
			t.stats.SendBlocked.Add(1)
		}
		q <- p // block until space frees up; dispatchers keep draining
	}
	return nil
}

// Close stops all dispatchers after draining queued packets. Sends that
// were already in flight complete (the dispatchers are still consuming, so
// even backpressure-blocked senders drain); Sends arriving after Close —
// including ones issued by handlers while the drain runs — fail with
// ErrClosed.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.sends.Wait()
	t.mu.Lock()
	for _, q := range t.queues {
		close(q)
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
