package simnet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Result is the outcome of a flow-model solve.
type Result struct {
	// ThroughputRPS is the saturation throughput in requests/second.
	ThroughputRPS float64
	// HitRatio is the symmetric-cache hit ratio used (0 for baselines).
	HitRatio float64
	// CacheHitRPS and CacheMissRPS split the throughput (Figure 9).
	CacheHitRPS, CacheMissRPS float64
	// Bottleneck names the binding constraint.
	Bottleneck string
	// PerNodeGbps is the busiest node's per-direction network utilization
	// at saturation (Figure 13a).
	PerNodeGbps float64
	// TrafficShares is the fraction of total network bytes per message
	// class (Figure 11).
	TrafficShares map[metrics.MsgClass]float64
	// BytesPerRequest is the cluster-wide wire bytes per request.
	BytesPerRequest float64
}

// String renders the headline number.
func (r Result) String() string {
	return fmt.Sprintf("%.0f MRPS (hit %.0f%%, bottleneck %s, %.1f Gb/s/node)",
		r.ThroughputRPS/1e6, r.HitRatio*100, r.Bottleneck, r.PerNodeGbps)
}

// constraint is one linear resource limit: load*coef <= cap.
type constraint struct {
	name string
	coef float64 // resource units consumed per request/second of load
	cap  float64 // resource capacity
}

// Solve computes the saturation throughput of a configuration by finding
// the most binding resource.
func Solve(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cal := cfg.Cal
	n := float64(cfg.Nodes)
	h := cfg.hitRatio()
	w := cfg.WriteRatio
	fRem := 1 - 1/n // fraction of misses homed remotely

	// Home-shard concentration of miss traffic: baselines inherit the
	// Zipfian skew; ccKVS misses are skew-filtered to ~uniform.
	mHot := cfg.hottestShare()

	// Per-message wire sizes; coalescing amortizes packet headers on the
	// cache-miss class only (§8.5).
	reqB, respB := cfg.reqBytes(), cfg.respBytes()
	missPktDiv := 1.0
	if cfg.Coalesce {
		k := cal.CoalesceFactor
		save := cal.PacketHeader * (1 - 1/k)
		reqB -= save
		respB -= save
		missPktDiv = k
	}

	// Per-R message rates at the busiest node.
	missRemote := (1 - h) * fRem // remote misses per request, cluster-wide fraction
	origShare := missRemote / n  // this node as originator
	homeShare := (1 - h) * mHot * fRem

	consist := h * w * (n - 1) / n // broadcast messages per request per node
	updates, invs, acks := consist, 0.0, 0.0
	if cfg.System == CCKVS && cfg.Protocol == core.Lin {
		invs, acks = consist, consist
	}
	if cfg.System != CCKVS {
		updates = 0
	}
	consistMsgs := updates + invs + acks
	fcMsgs := consistMsgs / cal.CreditBatch

	// Per-direction byte and packet coefficients at the busiest node.
	rxBytes := origShare*respB + homeShare*reqB +
		updates*cfg.updBytes() + invs*cfg.invBytes() + acks*cfg.ackBytes() +
		fcMsgs*cfg.creditBytes()
	txBytes := origShare*reqB + homeShare*respB +
		updates*cfg.updBytes() + invs*cfg.invBytes() + acks*cfg.ackBytes() +
		fcMsgs*cfg.creditBytes()
	rxPkts := (origShare+homeShare)/missPktDiv + consistMsgs + fcMsgs
	txPkts := rxPkts // symmetric message counts

	dirBytes := rxBytes
	if txBytes > dirBytes {
		dirBytes = txBytes
	}
	dirPkts := rxPkts
	if txPkts > dirPkts {
		dirPkts = txPkts
	}

	cons := []constraint{
		{"switch packet rate", dirPkts, cal.PacketRatePPS},
		{"link bandwidth", dirBytes * 8, cal.LinkBandwidthBits},
	}
	// CPU constraints.
	kvsLoad := (1 - h) * mHot // all misses land on their home node's KVS
	cons = append(cons, constraint{"KVS CPU", kvsLoad, cal.NodeKVSOps})
	if cfg.System == CCKVS {
		cons = append(cons, constraint{"cache CPU", 1 / n, cal.NodeCacheOps})
	}
	if cfg.System == BaseEREW {
		cons = append(cons, constraint{"hottest EREW core", cfg.hottestCoreShare(), cal.EREWCoreOps})
	}

	best := constraint{}
	limit := 0.0
	for _, c := range cons {
		if c.coef <= 0 {
			continue
		}
		r := c.cap / c.coef
		if limit == 0 || r < limit {
			limit = r
			best = c
		}
	}

	// Cluster-wide traffic mix (Figure 11), per request.
	missBytes := (1 - h) * fRem * (reqB + respB)
	updBytesTot := h * w * (n - 1) * cfg.updBytes()
	invBytesTot := 0.0
	ackBytesTot := 0.0
	if cfg.System != CCKVS {
		updBytesTot = 0
	} else if cfg.Protocol == core.Lin {
		invBytesTot = h * w * (n - 1) * cfg.invBytes()
		ackBytesTot = h * w * (n - 1) * cfg.ackBytes()
	}
	fcBytesTot := (updBytesTot/cfg.updBytes() + invBytesTot/cfg.invBytes() + ackBytesTot/cfg.ackBytes()) /
		cal.CreditBatch * cfg.creditBytes()
	if cfg.System != CCKVS {
		fcBytesTot = 0
	}
	total := missBytes + updBytesTot + invBytesTot + ackBytesTot + fcBytesTot
	shares := map[metrics.MsgClass]float64{}
	if total > 0 {
		shares[metrics.ClassCacheMiss] = missBytes / total
		shares[metrics.ClassUpdate] = updBytesTot / total
		shares[metrics.ClassInvalidate] = invBytesTot / total
		shares[metrics.ClassAck] = ackBytesTot / total
		shares[metrics.ClassFlowControl] = fcBytesTot / total
	}

	return Result{
		ThroughputRPS:   limit,
		HitRatio:        h,
		CacheHitRPS:     limit * h,
		CacheMissRPS:    limit * (1 - h),
		Bottleneck:      best.name,
		PerNodeGbps:     limit * dirBytes * 8 / 1e9,
		TrafficShares:   shares,
		BytesPerRequest: total,
	}, nil
}

// MustSolve is Solve panicking on error, for tables and examples.
func MustSolve(cfg Config) Result {
	r, err := Solve(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
