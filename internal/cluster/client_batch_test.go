package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/store"
)

// The client edge: batched session frames (wire format v2), the pipelined
// client, auto-batching, and their failure semantics. The harness is the
// member form over a shared ChanTransport — the client attaches to the same
// transport with a node id outside the server range, exactly how a load
// generator attaches over TCP.

// newChanClient builds a member-form deployment plus a Client on the shared
// transport.
func newChanClient(t *testing.T, cfg Config) ([]*Cluster, *Client) {
	t.Helper()
	stats := fabric.NewStats()
	tr := fabric.NewChanTransport(cfg.QueueDepth, stats)
	members := make([]*Cluster, cfg.Nodes)
	for i := range members {
		m, err := NewMember(cfg, i, tr, stats)
		if err != nil {
			t.Fatal(err)
		}
		m.Populate()
		members[i] = m
	}
	cl := NewClient(200, cfg.Nodes, tr)
	t.Cleanup(func() {
		cl.Close()
		for _, m := range members {
			m.Close() // the shared transport closes with the first member
		}
	})
	return members, cl
}

func TestClientBatchRoundTrip(t *testing.T) {
	cfg := Config{Nodes: 3, System: Base, NumKeys: 1024}
	_, cl := newChanClient(t, cfg)

	keys := []uint64{1, 2, 3, 500, 900}
	vals := make([][]byte, len(keys))
	for i := range keys {
		vals[i] = []byte(fmt.Sprintf("batched-%d", keys[i]))
	}
	if err := cl.MultiPut(1, keys, vals); err != nil {
		t.Fatalf("MultiPut: %v", err)
	}

	// Read the batch back through a different node, plus one absent key.
	probe := append(append([]uint64(nil), keys...), cfg.NumKeys+7)
	out, err := cl.MultiGet(2, probe)
	if err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	for i := range keys {
		if string(out[i]) != string(vals[i]) {
			t.Fatalf("key %d: got %q want %q", keys[i], out[i], vals[i])
		}
	}
	if out[len(keys)] != nil {
		t.Fatalf("absent key returned %q, want nil", out[len(keys)])
	}
}

func TestClientBatchSplitsOversizeBatches(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 2048}
	_, cl := newChanClient(t, cfg)

	// More ops than one frame may carry: Batch must chunk transparently.
	n := sessBatchMaxOps + 5
	ops := make([]BatchOp, n)
	for i := range ops {
		ops[i].Key = uint64(i % int(cfg.NumKeys))
	}
	rs, err := cl.Batch(0, ops)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(rs) != n {
		t.Fatalf("got %d results, want %d", len(rs), n)
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
		if len(r.Value) == 0 {
			t.Fatalf("op %d: empty value", i)
		}
	}
}

func TestClientEmptyBatch(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 256}
	_, cl := newChanClient(t, cfg)

	// Client-side: a zero-op Batch performs no wire traffic.
	rs, err := cl.Batch(0, nil)
	if err != nil || rs != nil {
		t.Fatalf("empty Batch: got (%v, %v), want (nil, nil)", rs, err)
	}

	// Wire-level: a hand-built count=0 frame answers OK with zero entries.
	res, err := cl.call(0, sessOpBatch, []byte{0, 0, 0, 0})
	if err != nil {
		t.Fatalf("count=0 frame: %v", err)
	}
	if res.status != sessStatusOK || len(res.payload) != 4 {
		t.Fatalf("count=0 frame: status %d payload %d bytes, want OK with bare count", res.status, len(res.payload))
	}
}

func TestClientOversizeBatchFrameRejected(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 256}
	_, cl := newChanClient(t, cfg)

	// A frame claiming more ops than the server's limit is refused whole
	// with the bad-request status, not served partially.
	body := binary.LittleEndian.AppendUint32(nil, sessBatchMaxOps+1)
	_, err := cl.call(0, sessOpBatch, body)
	if err == nil || !strings.Contains(err.Error(), "bad request") {
		t.Fatalf("oversize frame: got %v, want bad-request rejection", err)
	}
}

func TestClientBatchMixedStatusesWithHomeDown(t *testing.T) {
	cfg := Config{Nodes: 3, System: Base, NumKeys: 1024, QueueDepth: 256}
	members, cl := newChanClient(t, cfg)

	// Excise node 2 from the view: its cold-homed keys must fail fast with
	// the home-down status — inside the batch, without failing its siblings.
	members[0].PeerDown(2, errors.New("test: node 2 excised"))

	liveKey := coldKeyHomedOn(t, members[0], 0, cfg.NumKeys)
	deadKey := coldKeyHomedOn(t, members[0], 2, cfg.NumKeys)
	var absentKey uint64
	for k := cfg.NumKeys; ; k++ {
		if HomeOf(k, cfg.Nodes) != 2 {
			absentKey = k
			break
		}
	}

	ops := []BatchOp{
		{Key: liveKey},
		{Key: deadKey},
		{Put: true, Key: liveKey, Value: []byte("still-served")},
		{Key: absentKey},
	}
	rs, err := cl.Batch(0, ops)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if rs[0].Err != nil || len(rs[0].Value) == 0 {
		t.Fatalf("live get: (%q, %v), want a value", rs[0].Value, rs[0].Err)
	}
	if !errors.Is(rs[1].Err, ErrHomeDown) {
		t.Fatalf("dead-homed get: %v, want ErrHomeDown", rs[1].Err)
	}
	if rs[2].Err != nil {
		t.Fatalf("live put: %v", rs[2].Err)
	}
	if !errors.Is(rs[3].Err, store.ErrNotFound) {
		t.Fatalf("absent get: %v, want store.ErrNotFound", rs[3].Err)
	}

	// The batch's put landed despite the dead-homed sibling.
	v, err := cl.Get(1, liveKey)
	if err != nil || string(v) != "still-served" {
		t.Fatalf("after batch: (%q, %v), want still-served", v, err)
	}
}

func TestClientAutoBatchFlushBySize(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 512}
	_, cl := newChanClient(t, cfg)

	// With a far-future timer, only the size trigger can flush: two
	// concurrent gets fill a maxOps=2 batch and both complete.
	cl.SetAutoBatch(2, time.Minute)
	done := make(chan error, 2)
	for g := 0; g < 2; g++ {
		key := uint64(g + 1)
		go func() {
			v, err := cl.Get(0, key)
			if err == nil && len(v) == 0 {
				err = errors.New("empty value")
			}
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("auto-batched get: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("size-triggered flush never fired")
		}
	}
}

func TestClientAutoBatchFlushByTimer(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 512}
	_, cl := newChanClient(t, cfg)

	// A lone op can only flush on the timer.
	cl.SetAutoBatch(64, 20*time.Millisecond)
	start := time.Now()
	v, err := cl.Get(0, 3)
	if err != nil || len(v) == 0 {
		t.Fatalf("timer-flushed get: (%q, %v)", v, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timer flush took %v", elapsed)
	}
}

func TestClientAutoBatchHalfFlushedOnPeerDeath(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 512, QueueDepth: 64}
	members, addrs := newTCPMembers(t, cfg)
	cl, err := DialTCP(201, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTimeout(2 * time.Second)
	if err := cl.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill node 1 and wait until the client has positively observed it.
	members[1].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := cl.Ping(1); errors.Is(err, ErrNodeUnreachable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never observed the dead server")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Two ops fill half of a maxOps=4 batch toward the dead node; the timer
	// flush must fail them per-op with the typed unreachable error instead
	// of stranding the batch.
	cl.SetAutoBatch(4, 50*time.Millisecond)
	done := make(chan error, 2)
	go func() { _, err := cl.Get(1, 1); done <- err }()
	go func() { done <- cl.Put(1, 2, []byte("lost")) }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, ErrNodeUnreachable) && !errors.Is(err, ErrSessionTimeout) {
				t.Fatalf("half-flushed op: %v, want ErrNodeUnreachable", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("half-flushed batch never completed")
		}
	}
}

// The client edge's allocation diet: a single-op get through the session
// layer reuses its completion channel, timeout timer and (on copying
// transports) its encode buffer, leaving only the response copy and the
// frame itself. Batched ops amortize even those across the whole frame.
func TestClientGetAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	cfg := Config{Nodes: 2, System: Base, NumKeys: 1024}
	_, cl := newChanClient(t, cfg)
	key := uint64(0)
	for k := uint64(0); k < cfg.NumKeys; k++ {
		if HomeOf(k, cfg.Nodes) == 0 {
			key = k
			break
		}
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if _, err := cl.Get(0, key); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("client get: %.1f allocs/op (seed: 7.0)", allocs)
	if allocs > 4.5 {
		t.Fatalf("client get costs %.1f allocs/op, want <= 4.5 (seed was 7.0)", allocs)
	}
}

func TestClientBatchAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	cfg := Config{Nodes: 2, System: Base, NumKeys: 1024}
	_, cl := newChanClient(t, cfg)
	const batch = 64
	keys := make([]uint64, 0, batch)
	for k := uint64(0); len(keys) < batch; k++ {
		if HomeOf(k, cfg.Nodes) == 0 {
			keys = append(keys, k)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		out, err := cl.MultiGet(0, keys)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != batch {
			t.Fatal("short batch")
		}
	}) / batch
	t.Logf("batched client get: %.2f allocs/op at batch=%d", allocs, batch)
	if allocs > 1.0 {
		t.Fatalf("batched client get costs %.2f allocs/op, want <= 1.0", allocs)
	}
}

func TestClientBatchPutAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	cfg := Config{Nodes: 2, System: Base, NumKeys: 1024}
	_, cl := newChanClient(t, cfg)
	const batch = 64
	keys := make([]uint64, 0, batch)
	for k := uint64(0); len(keys) < batch; k++ {
		if HomeOf(k, cfg.Nodes) == 0 {
			keys = append(keys, k)
		}
	}
	vals := make([][]byte, batch)
	for i := range vals {
		vals[i] = []byte("batched-put-value")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := cl.MultiPut(0, keys, vals); err != nil {
			t.Fatal(err)
		}
	}) / batch
	t.Logf("batched client put: %.2f allocs/op at batch=%d", allocs, batch)
	if allocs > 1.5 {
		t.Fatalf("batched client put costs %.2f allocs/op, want <= 1.5", allocs)
	}
}

// Release/poison semantics on a copying transport: a batch Result's Value
// aliases a pooled buffer, Release returns it, and — with poisoning on (the
// -race default) — any alias kept past the last Release reads poison instead
// of silently-recycled bytes. ValueCopy is the sanctioned way to keep data.
func TestClientBatchResultReleasePoisons(t *testing.T) {
	old := poisonReleasedBufs
	poisonReleasedBufs = true
	defer func() { poisonReleasedBufs = old }()

	cfg := Config{Nodes: 2, System: Base, NumKeys: 512}
	_, addrs := newTCPMembers(t, cfg)
	cl, err := DialTCP(204, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	want := []byte("lease-backed-value")
	if err := cl.Put(0, 7, want); err != nil {
		t.Fatal(err)
	}
	rs, err := cl.Batch(0, []BatchOp{{Key: 7}, {Key: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != nil || !bytes.Equal(rs[0].Value, want) {
		t.Fatalf("batch get: (%q, %v), want %q", rs[0].Value, rs[0].Err, want)
	}
	stale := rs[0].Value      // alias kept past Release — the bug under test
	keep := rs[0].ValueCopy() // the sanctioned copy
	rs[0].Release()
	rs[0].Release() // idempotent
	if rs[0].Value != nil {
		t.Fatal("Release must nil Value")
	}
	rs[1].Release() // last reference: the shared buffer is poisoned + pooled
	for i, b := range stale {
		if b != 0xDD {
			t.Fatalf("released buffer byte %d = %#x, want poison 0xDD", i, b)
		}
	}
	if !bytes.Equal(keep, want) {
		t.Fatalf("ValueCopy = %q after Release, want %q", keep, want)
	}
}

// Leases must survive a mid-batch home-down: ops whose home left the view
// fail per-op while their value-bearing siblings still carry correct,
// releasable leases — over TCP, where the response buffer is pooled and
// refcounted across exactly the value-bearing subset.
func TestClientBatchLeasesSurviveHomeDown(t *testing.T) {
	old := poisonReleasedBufs
	poisonReleasedBufs = true
	defer func() { poisonReleasedBufs = old }()

	cfg := Config{Nodes: 3, System: Base, NumKeys: 1024, QueueDepth: 256}
	members, addrs := newTCPMembers(t, cfg)
	cl, err := DialTCP(205, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	members[0].PeerDown(2, errors.New("test: node 2 excised"))

	liveA := coldKeyHomedOn(t, members[0], 0, cfg.NumKeys)
	liveB := coldKeyHomedOn(t, members[0], 1, cfg.NumKeys)
	deadKey := coldKeyHomedOn(t, members[0], 2, cfg.NumKeys)

	rs, err := cl.Batch(0, []BatchOp{{Key: liveA}, {Key: deadKey}, {Key: liveB}})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if rs[0].Err != nil || len(rs[0].Value) == 0 {
		t.Fatalf("live get before home-down sibling: (%q, %v)", rs[0].Value, rs[0].Err)
	}
	if !errors.Is(rs[1].Err, ErrHomeDown) {
		t.Fatalf("dead-homed get: %v, want ErrHomeDown", rs[1].Err)
	}
	if rs[2].Err != nil || len(rs[2].Value) == 0 {
		t.Fatalf("live get after home-down sibling: (%q, %v)", rs[2].Value, rs[2].Err)
	}
	wantA, wantB := rs[0].ValueCopy(), rs[2].ValueCopy()
	staleA := rs[0].Value
	for i := range rs {
		rs[i].Release() // releasing an error Result (no lease) must be safe
	}
	for i, b := range staleA {
		if b != 0xDD {
			t.Fatalf("released buffer byte %d = %#x, want poison 0xDD", i, b)
		}
	}
	// The copies — and a fresh read — still see the stored values.
	if v, err := cl.Get(1, liveA); err != nil || !bytes.Equal(v, wantA) {
		t.Fatalf("re-read liveA: (%q, %v), want %q", v, err, wantA)
	}
	if v, err := cl.Get(1, liveB); err != nil || !bytes.Equal(v, wantB) {
		t.Fatalf("re-read liveB: (%q, %v), want %q", v, err, wantB)
	}
}

// On a by-reference transport the payload buffer is fresh per response, so
// Results carry no lease: Release is a cheap no-op and aliases stay valid
// forever — the documented safe default.
func TestClientBatchReleaseNoopOnByRefTransport(t *testing.T) {
	old := poisonReleasedBufs
	poisonReleasedBufs = true
	defer func() { poisonReleasedBufs = old }()

	cfg := Config{Nodes: 2, System: Base, NumKeys: 512}
	_, cl := newChanClient(t, cfg)
	want := []byte("by-ref-value")
	if err := cl.Put(0, 9, want); err != nil {
		t.Fatal(err)
	}
	rs, err := cl.Batch(0, []BatchOp{{Key: 9}})
	if err != nil {
		t.Fatal(err)
	}
	stale := rs[0].Value
	rs[0].Release()
	if !bytes.Equal(stale, want) {
		t.Fatalf("by-ref alias after Release = %q, want %q (no pool, no poison)", stale, want)
	}
}

// The adaptive delay mechanics, deterministically: an idle batcher arms the
// floor; a run of full flushes widens the delay toward the configured
// ceiling; a run of near-empty flushes collapses it back.
func TestAutoBatchAdaptiveDelayTracksFill(t *testing.T) {
	a := &autoBatch{maxOps: 64, delay: 160 * time.Microsecond, floor: 10 * time.Microsecond}
	if d := a.armDelay(); d != a.floor {
		t.Fatalf("idle armDelay = %v, want floor %v", d, a.floor)
	}
	for i := 0; i < 64; i++ {
		a.noteFill(64)
	}
	if d := a.armDelay(); d < a.delay*9/10 {
		t.Fatalf("after full flushes armDelay = %v, want >= %v (ceiling %v)", d, a.delay*9/10, a.delay)
	}
	for i := 0; i < 64; i++ {
		a.noteFill(1)
	}
	if d := a.armDelay(); d > a.floor+(a.delay-a.floor)/8 {
		t.Fatalf("after near-empty flushes armDelay = %v, want <= %v (floor %v)", d, a.floor+(a.delay-a.floor)/8, a.floor)
	}
}

// Under heavy concurrency the adaptive delay must not cost throughput
// against the old fixed-at-ceiling behavior (emulated by pinning the floor
// to the ceiling). Generous tolerance: this guards against gross regression,
// not noise.
func TestClientAutoBatchAdaptiveThroughput(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 1024}
	_, cl := newChanClient(t, cfg)

	const callers = 64
	const opsPerCaller = 50
	run := func() time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < opsPerCaller; i++ {
					key := uint64((g*opsPerCaller + i) % int(cfg.NumKeys))
					if _, err := cl.Get(0, key); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		return time.Since(start)
	}

	// Scheduling noise swamps single samples; best-of-3 per configuration.
	best := func() time.Duration {
		d := run()
		for i := 0; i < 2; i++ {
			if r := run(); r < d {
				d = r
			}
		}
		return d
	}

	cl.SetAutoBatch(callers, 2*time.Millisecond)
	// Pin the armed delay at the ceiling: the pre-adaptive fixed behavior.
	for _, a := range cl.ab.Load().per {
		a.floor = a.delay
	}
	fixed := best()

	cl.SetAutoBatch(callers, 2*time.Millisecond) // fresh, adaptive batchers
	adaptive := best()

	t.Logf("64-caller throughput: adaptive %v, fixed-delay %v (best of 3)", adaptive, fixed)
	if adaptive > fixed*2 {
		t.Fatalf("adaptive batching is slower than fixed-delay under load: %v vs %v", adaptive, fixed)
	}
}

// A lone caller must not pay for batching it cannot get: tail latency with
// the auto-batcher on stays within a small multiple of immediate flush. A
// broken lone-caller fast path parks every op on the armed delay
// (>= 1.25ms here), far past this bound.
func TestClientAutoBatchSoloLatency(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 512}
	_, cl := newChanClient(t, cfg)

	const ops = 1000
	measure := func() time.Duration {
		lat := make([]time.Duration, ops)
		for i := 0; i < ops; i++ {
			start := time.Now()
			if _, err := cl.Get(0, uint64(i%int(cfg.NumKeys))); err != nil {
				t.Fatal(err)
			}
			lat[i] = time.Since(start)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[ops*99/100]
	}

	immediate := measure() // no auto-batching: every op flushes inline
	cl.SetAutoBatch(64, 20*time.Millisecond)
	solo := measure()
	t.Logf("solo p99: immediate %v, auto-batched %v", immediate, solo)
	if solo > immediate*3+100*time.Microsecond {
		t.Fatalf("solo caller p99 %v with auto-batching, %v without — lone-caller fast path broken?", solo, immediate)
	}
}
