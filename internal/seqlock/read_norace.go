//go:build !race

package seqlock

import "runtime"

// RaceEnabled reports whether this build runs under the race detector, in
// which case the reader side of the seqlock is mutual exclusion rather than
// the optimistic version protocol (see the package comment).
const RaceEnabled = false

// ReadBegin returns a version snapshot to be validated with ReadRetry. It
// spins until the version is even, i.e. until no write is in progress.
func (s *SeqLock) ReadBegin() uint64 {
	for {
		v := s.version.Load()
		if v&1 == 0 {
			return v
		}
		runtime.Gosched()
	}
}

// ReadRetry reports whether a read section that started at version v must be
// retried because a writer intervened. It must be called exactly once per
// ReadBegin (the race-build variant releases a lock here).
func (s *SeqLock) ReadRetry(v uint64) bool {
	return s.version.Load() != v
}
