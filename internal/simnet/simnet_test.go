package simnet

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// within asserts got is inside [want*(1-tol), want*(1+tol)].
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > want*tol {
		t.Errorf("%s = %.1f, want %.1f ±%.0f%%", name, got, want, tol*100)
	}
}

func solveMRPS(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestValidation(t *testing.T) {
	if _, err := Solve(Config{Nodes: 1}); err == nil {
		t.Error("1 node must be rejected")
	}
	if _, err := Solve(Config{Nodes: 9, WriteRatio: 2}); err == nil {
		t.Error("write ratio 2 must be rejected")
	}
	if _, err := Solve(Config{Nodes: 9, System: CCKVS, CacheFrac: 3}); err == nil {
		t.Error("cache fraction 3 must be rejected")
	}
}

func TestSystemString(t *testing.T) {
	for s, want := range map[System]string{
		Uniform: "Uniform", BaseEREW: "Base-EREW", Base: "Base", CCKVS: "ccKVS",
	} {
		if s.String() != want {
			t.Errorf("%d: %q", int(s), s.String())
		}
	}
	if System(9).String() == "" {
		t.Error("unknown system must render")
	}
}

// §8.1 anchors: the read-only throughputs of Figure 8 at alpha = 0.99.
// Paper: Uniform 240, Base 215, Base-EREW 95, ccKVS 690 MRPS.
func TestFigure8Anchors(t *testing.T) {
	uniform := solveMRPS(t, Config{System: Uniform})
	within(t, "Uniform", uniform.ThroughputRPS/1e6, 240, 0.10)

	base := solveMRPS(t, Config{System: Base, Alpha: 0.99})
	within(t, "Base", base.ThroughputRPS/1e6, 215, 0.12)

	erew := solveMRPS(t, Config{System: BaseEREW, Alpha: 0.99})
	within(t, "Base-EREW", erew.ThroughputRPS/1e6, 95, 0.12)

	cckvs := solveMRPS(t, Config{System: CCKVS, Protocol: core.SC, Alpha: 0.99})
	within(t, "ccKVS", cckvs.ThroughputRPS/1e6, 690, 0.10)

	// Ordering and ratios of §8.1: ccKVS ~3.2x Base, ~2.85x Uniform.
	if !(cckvs.ThroughputRPS > uniform.ThroughputRPS &&
		uniform.ThroughputRPS > base.ThroughputRPS &&
		base.ThroughputRPS > erew.ThroughputRPS) {
		t.Errorf("ordering broken: ccKVS=%v Uniform=%v Base=%v EREW=%v",
			cckvs.ThroughputRPS, uniform.ThroughputRPS, base.ThroughputRPS, erew.ThroughputRPS)
	}
	within(t, "ccKVS/Base ratio", cckvs.ThroughputRPS/base.ThroughputRPS, 3.2, 0.15)
}

// §7.1 hit-rate expectations: 46%, 65%, 69% for alpha 0.90/0.99/1.01.
func TestHitRatios(t *testing.T) {
	for _, c := range []struct {
		alpha, want float64
	}{{0.90, 0.46}, {0.99, 0.65}, {1.01, 0.69}} {
		r := solveMRPS(t, Config{System: CCKVS, Protocol: core.SC, Alpha: c.alpha})
		if math.Abs(r.HitRatio-c.want) > 0.04 {
			t.Errorf("alpha %.2f: hit ratio %.3f want %.2f", c.alpha, r.HitRatio, c.want)
		}
	}
}

// Figure 9: the cache-miss throughput of ccKVS approximately equals the
// entire throughput of Uniform, independent of skew — both are bound by the
// same network resource.
func TestFigure9MissThroughputEqualsUniform(t *testing.T) {
	uniform := solveMRPS(t, Config{System: Uniform}).ThroughputRPS
	for _, alpha := range []float64{0.90, 0.99, 1.01} {
		r := solveMRPS(t, Config{System: CCKVS, Protocol: core.SC, Alpha: alpha})
		if math.Abs(r.CacheMissRPS-uniform) > uniform*0.15 {
			t.Errorf("alpha %.2f: miss throughput %.0fM vs uniform %.0fM",
				alpha, r.CacheMissRPS/1e6, uniform/1e6)
		}
		// Hit throughput grows with skew.
		if r.CacheHitRPS <= 0 {
			t.Errorf("alpha %.2f: no hit throughput", alpha)
		}
	}
}

// §8.2 anchors: 1% writes give ~639 (SC) and ~554 (Lin) MRPS; ccKVS beats
// Base up to 5% writes; baselines are write-ratio insensitive.
func TestFigure10WriteRatios(t *testing.T) {
	sc := solveMRPS(t, Config{System: CCKVS, Protocol: core.SC, Alpha: 0.99, WriteRatio: 0.01})
	within(t, "ccKVS-SC @1%", sc.ThroughputRPS/1e6, 639, 0.10)

	lin := solveMRPS(t, Config{System: CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: 0.01})
	within(t, "ccKVS-Lin @1%", lin.ThroughputRPS/1e6, 554, 0.10)

	base := solveMRPS(t, Config{System: Base, Alpha: 0.99, WriteRatio: 0.05})
	base0 := solveMRPS(t, Config{System: Base, Alpha: 0.99})
	if math.Abs(base.ThroughputRPS-base0.ThroughputRPS) > 1e-3*base0.ThroughputRPS {
		t.Errorf("Base must be write-insensitive: %v vs %v", base.ThroughputRPS, base0.ThroughputRPS)
	}

	lin5 := solveMRPS(t, Config{System: CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: 0.05})
	if lin5.ThroughputRPS <= base.ThroughputRPS {
		t.Errorf("ccKVS-Lin @5%% (%0.fM) should still beat Base (%.0fM)",
			lin5.ThroughputRPS/1e6, base.ThroughputRPS/1e6)
	}

	// Headline: 2.5x (SC) and 2.2x (Lin) over Base at 1% writes.
	within(t, "SC/Base @1%", sc.ThroughputRPS/base.ThroughputRPS, 3.0, 0.25)
	if ratio := lin.ThroughputRPS / base.ThroughputRPS; ratio < 2.0 {
		t.Errorf("Lin/Base @1%% = %.2f, want >= 2.0", ratio)
	}

	// Facebook's 0.2% write ratio costs ccKVS at most ~3% of read-only.
	fb := solveMRPS(t, Config{System: CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: 0.002})
	ro := solveMRPS(t, Config{System: CCKVS, Protocol: core.Lin, Alpha: 0.99})
	if drop := 1 - fb.ThroughputRPS/ro.ThroughputRPS; drop > 0.05 {
		t.Errorf("0.2%% writes cost %.1f%%, paper reports <3%%", drop*100)
	}
}

// Figure 11: with rising write ratio, consistency actions claim a growing
// share of bytes; flow control stays negligible; Lin spends more on
// invalidations+acks than SC.
func TestFigure11TrafficBreakdown(t *testing.T) {
	for _, w := range []float64{0.01, 0.05} {
		sc := solveMRPS(t, Config{System: CCKVS, Protocol: core.SC, Alpha: 0.99, WriteRatio: w})
		lin := solveMRPS(t, Config{System: CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: w})

		if sc.TrafficShares[metrics.ClassInvalidate] != 0 || sc.TrafficShares[metrics.ClassAck] != 0 {
			t.Errorf("SC must have no invalidation/ack traffic")
		}
		if lin.TrafficShares[metrics.ClassInvalidate] <= 0 || lin.TrafficShares[metrics.ClassAck] <= 0 {
			t.Errorf("Lin must spend bytes on invalidations and acks")
		}
		if fc := lin.TrafficShares[metrics.ClassFlowControl]; fc > 0.02 {
			t.Errorf("flow control share %.3f, should be negligible (§6.4)", fc)
		}
		sum := 0.0
		for _, s := range lin.TrafficShares {
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("w=%v: shares sum to %v", w, sum)
		}
	}
	// Consistency share grows with write ratio.
	s1 := solveMRPS(t, Config{System: CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: 0.01})
	s5 := solveMRPS(t, Config{System: CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: 0.05})
	if s5.TrafficShares[metrics.ClassUpdate] <= s1.TrafficShares[metrics.ClassUpdate] {
		t.Errorf("update share must grow with write ratio")
	}
	if s5.ThroughputRPS >= s1.ThroughputRPS {
		t.Errorf("throughput must fall with write ratio")
	}
}

// Figure 12: the SC-vs-Lin gap narrows as objects grow, because data
// payloads dwarf the fixed-size invalidations and acks.
func TestFigure12ObjectSizeGap(t *testing.T) {
	gap := func(size int) float64 {
		sc := solveMRPS(t, Config{System: CCKVS, Protocol: core.SC, Alpha: 0.99, WriteRatio: 0.01, ValueSize: size})
		lin := solveMRPS(t, Config{System: CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: 0.01, ValueSize: size})
		return sc.ThroughputRPS/lin.ThroughputRPS - 1
	}
	g40, g256, g1k := gap(40), gap(256), gap(1024)
	if !(g40 > g256 && g256 > g1k) {
		t.Errorf("SC/Lin gap must shrink with object size: %.3f %.3f %.3f", g40, g256, g1k)
	}
	// Read-only: ccKVS > 3x Base at every size.
	for _, size := range []int{40, 256, 1024} {
		cc := solveMRPS(t, Config{System: CCKVS, Protocol: core.SC, Alpha: 0.99, ValueSize: size})
		ba := solveMRPS(t, Config{System: Base, Alpha: 0.99, ValueSize: size})
		if ratio := cc.ThroughputRPS / ba.ThroughputRPS; ratio < 2.8 {
			t.Errorf("size %d: ccKVS/Base = %.2f, want > 2.8", size, ratio)
		}
	}
}

// Figure 13a/b: coalescing shifts the bottleneck from the switch packet
// rate to link bandwidth and multiplies throughput; ccKVS with coalescing
// exceeds 2 BRPS and stays >2x Base.
func TestFigure13Coalescing(t *testing.T) {
	cc := solveMRPS(t, Config{System: CCKVS, Protocol: core.SC, Alpha: 0.99})
	ccCoal := solveMRPS(t, Config{System: CCKVS, Protocol: core.SC, Alpha: 0.99, Coalesce: true})
	if gain := ccCoal.ThroughputRPS / cc.ThroughputRPS; gain < 2.5 {
		t.Errorf("ccKVS coalescing gain %.2f, want ~3x", gain)
	}
	if ccCoal.ThroughputRPS < 2.0e9 {
		t.Errorf("ccKVS with coalescing = %.2f BRPS, paper reports over 2", ccCoal.ThroughputRPS/1e9)
	}

	base := solveMRPS(t, Config{System: Base, Alpha: 0.99})
	baseCoal := solveMRPS(t, Config{System: Base, Alpha: 0.99, Coalesce: true})
	if gain := baseCoal.ThroughputRPS / base.ThroughputRPS; gain < 3.0 {
		t.Errorf("Base coalescing gain %.2f, want >4x-ish", gain)
	}
	if ccCoal.ThroughputRPS < 2*baseCoal.ThroughputRPS {
		t.Errorf("coalesced ccKVS (%.0fM) must stay >2x coalesced Base (%.0fM)",
			ccCoal.ThroughputRPS/1e6, baseCoal.ThroughputRPS/1e6)
	}

	// Bottleneck shift: packet rate before, bandwidth/CPU after.
	if cc.Bottleneck != "switch packet rate" {
		t.Errorf("uncoalesced bottleneck = %s", cc.Bottleneck)
	}
	if ccCoal.Bottleneck == "switch packet rate" {
		t.Errorf("coalesced ccKVS still packet-rate bound")
	}
	// Per-node utilization rises toward the link limit for Base.
	if baseCoal.PerNodeGbps <= base.PerNodeGbps {
		t.Errorf("coalescing must raise network utilization: %.1f vs %.1f",
			baseCoal.PerNodeGbps, base.PerNodeGbps)
	}
}

// Larger objects are bandwidth-bound even without coalescing (§8.4).
func TestLargeObjectsBandwidthBound(t *testing.T) {
	r := solveMRPS(t, Config{System: CCKVS, Protocol: core.SC, Alpha: 0.99, ValueSize: 1024})
	if r.Bottleneck != "link bandwidth" {
		t.Errorf("1KB objects: bottleneck = %s, want link bandwidth", r.Bottleneck)
	}
}

// Figure 13c: latency is flat and far below 1 ms at moderate load, rises
// near saturation, and Lin's p95 visibly exceeds its average at high load.
func TestFigure13cLatency(t *testing.T) {
	ro := Config{System: CCKVS, Protocol: core.SC, Alpha: 0.99, Coalesce: true}
	low, err := SimulateLatency(ro, 500e6, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	high, err := SimulateLatency(ro, 2000e6, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if low.AvgUs <= 0 || low.AvgUs > 100 {
		t.Errorf("low-load avg %.1fus implausible", low.AvgUs)
	}
	if high.P95Us > 1000 {
		t.Errorf("p95 %.1fus exceeds the 1ms SLO the paper undercuts by 10x", high.P95Us)
	}
	if high.AvgUs < low.AvgUs {
		t.Errorf("latency must rise with load: %.1f -> %.1f", low.AvgUs, high.AvgUs)
	}

	lin := Config{System: CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: 0.01, Coalesce: true}
	linHigh, err := SimulateLatency(lin, 1800e6, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if linHigh.P95Us < linHigh.AvgUs*1.3 {
		t.Errorf("Lin p95 (%.1f) should clearly exceed avg (%.1f) at high load",
			linHigh.P95Us, linHigh.AvgUs)
	}
}

func TestSimulateLatencyValidation(t *testing.T) {
	if _, err := SimulateLatency(Config{Nodes: 9}, 0, 100); err == nil {
		t.Error("zero load must error")
	}
	if _, err := SimulateLatency(Config{Nodes: 1}, 1e6, 100); err == nil {
		t.Error("bad config must error")
	}
}

// Figure 14 shape: Uniform scales ~linearly; ccKVS-SC sublinearly; Lin
// worst; all monotone increasing in N.
func TestFigure14ScalingShape(t *testing.T) {
	perServer := func(sys System, proto core.Protocol, n int) float64 {
		r := solveMRPS(t, Config{System: sys, Protocol: proto, Nodes: n, Alpha: 0.99, WriteRatio: 0.01})
		return r.ThroughputRPS / float64(n)
	}
	// Per-server Uniform throughput is ~flat from 5 to 40 nodes.
	u5, u40 := perServer(Uniform, core.SC, 5), perServer(Uniform, core.SC, 40)
	if math.Abs(u5-u40)/u5 > 0.25 {
		t.Errorf("Uniform per-server throughput not flat: %.1fM vs %.1fM", u5/1e6, u40/1e6)
	}
	// ccKVS per-server throughput degrades with N (consistency traffic).
	s5, s40 := perServer(CCKVS, core.SC, 5), perServer(CCKVS, core.SC, 40)
	if s40 >= s5 {
		t.Errorf("ccKVS-SC must scale sublinearly: %.1fM@5 vs %.1fM@40", s5/1e6, s40/1e6)
	}
	l5, l40 := perServer(CCKVS, core.Lin, 5), perServer(CCKVS, core.Lin, 40)
	if l40 >= l5 || l40 >= s40 {
		t.Errorf("Lin must degrade faster than SC: SC40=%.1fM Lin40=%.1fM", s40/1e6, l40/1e6)
	}
	// Totals still increase with N.
	tot5 := solveMRPS(t, Config{System: CCKVS, Protocol: core.Lin, Nodes: 5, Alpha: 0.99, WriteRatio: 0.01})
	tot40 := solveMRPS(t, Config{System: CCKVS, Protocol: core.Lin, Nodes: 40, Alpha: 0.99, WriteRatio: 0.01})
	if tot40.ThroughputRPS <= tot5.ThroughputRPS {
		t.Errorf("total throughput must grow with N")
	}
}

// Figure 15 shape: the measured (flow-model) break-even write ratio
// decreases with N and is lower for Lin than SC.
func TestFigure15BreakEvenShape(t *testing.T) {
	breakEven := func(proto core.Protocol, n int) float64 {
		uni := solveMRPS(t, Config{System: Uniform, Nodes: n}).ThroughputRPS
		lo, hi := 0.0, 1.0
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			r := solveMRPS(t, Config{System: CCKVS, Protocol: proto, Nodes: n, Alpha: 0.99, WriteRatio: mid})
			if r.ThroughputRPS > uni {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}
	sc10, sc40 := breakEven(core.SC, 10), breakEven(core.SC, 40)
	lin10, lin40 := breakEven(core.Lin, 10), breakEven(core.Lin, 40)
	if !(sc10 > sc40 && lin10 > lin40) {
		t.Errorf("break-even must fall with N: SC %.3f->%.3f Lin %.3f->%.3f", sc10, sc40, lin10, lin40)
	}
	if !(sc10 > lin10 && sc40 > lin40) {
		t.Errorf("SC break-even must exceed Lin's: SC %.3f/%.3f Lin %.3f/%.3f", sc10, sc40, lin10, lin40)
	}
	// Paper's 40-server numbers: ~4% SC, ~1.7% Lin.
	if sc40 < 0.02 || sc40 > 0.08 {
		t.Errorf("SC break-even @40 = %.3f, want ~0.04", sc40)
	}
	if lin40 < 0.008 || lin40 > 0.035 {
		t.Errorf("Lin break-even @40 = %.3f, want ~0.017", lin40)
	}
}

func TestResultString(t *testing.T) {
	r := solveMRPS(t, Config{System: Uniform})
	if r.String() == "" {
		t.Error("empty result summary")
	}
}

func TestMustSolvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustSolve(Config{Nodes: 1})
}

func BenchmarkSolve(b *testing.B) {
	cfg := Config{System: CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: 0.01}
	for i := 0; i < b.N; i++ {
		if _, err := Solve(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
