package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mcheck"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/zipf"
)

// paperKeys is the dataset size of §7.2.
const paperKeys = 250_000_000

// Fig1 regenerates Figure 1: normalized per-server load for 128 servers
// under alpha = 0.99.
func Fig1() Table {
	const servers = 128
	loads := zipf.ShardLoads(paperKeys, 0.99, servers, func(rank uint64) int {
		return int(zipf.Mix64(rank) % servers)
	})
	mean := 0.0
	for _, l := range loads {
		mean += l
	}
	mean /= float64(len(loads))

	// Sort descending for the paper's presentation.
	sorted := append([]float64(nil), loads...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	t := Table{
		ID:      "fig1",
		Title:   "Load imbalance across 128 servers (alpha=0.99, normalized to average)",
		Columns: []string{"server (by load rank)", "normalized load"},
	}
	for _, idx := range []int{0, 1, 2, 3, 7, 15, 31, 63, 127} {
		t.AddRow(fmt.Sprintf("#%d", idx+1), sorted[idx]/mean)
	}
	t.AddRow("imbalance (max/avg)", zipf.Imbalance(loads))
	t.Notes = append(t.Notes, "paper: hottest server receives over 7x the average load")
	return t
}

// Fig3 regenerates Figure 3: cache hit rate versus cache size for three
// Zipfian exponents.
func Fig3() Table {
	t := Table{
		ID:      "fig3",
		Title:   "Hit rate vs cache size (% of dataset)",
		Columns: []string{"cache size %", "alpha=1.01", "alpha=0.99", "alpha=0.90"},
	}
	for _, pct := range []float64{0.01, 0.02, 0.05, 0.10, 0.15, 0.20} {
		frac := pct / 100
		t.AddRow(fmt.Sprintf("%.2f", pct),
			zipf.HitRate(frac, paperKeys, 1.01)*100,
			zipf.HitRate(frac, paperKeys, 0.99)*100,
			zipf.HitRate(frac, paperKeys, 0.90)*100)
	}
	t.Notes = append(t.Notes, "paper anchors at 0.1%: 69% / 65% / 46%")
	return t
}

// Fig8 regenerates Figure 8: read-only throughput under varying skew.
func Fig8() Table {
	t := Table{
		ID:      "fig8",
		Title:   "Read-only throughput (MRPS) with varying skew [9 nodes]",
		Columns: []string{"system", "alpha=0.90", "alpha=0.99", "alpha=1.01"},
	}
	uniform := simnet.MustSolve(simnet.Config{System: simnet.Uniform}).ThroughputRPS / 1e6
	row := func(name string, sys simnet.System) {
		var vals []any
		vals = append(vals, name)
		for _, a := range []float64{0.90, 0.99, 1.01} {
			r := simnet.MustSolve(simnet.Config{System: sys, Protocol: core.SC, Alpha: a})
			vals = append(vals, r.ThroughputRPS/1e6)
		}
		t.AddRow(vals...)
	}
	t.AddRow("Uniform", uniform, uniform, uniform)
	row("Base-EREW", simnet.BaseEREW)
	row("Base", simnet.Base)
	row("ccKVS", simnet.CCKVS)
	t.Notes = append(t.Notes, "paper at alpha=0.99: Uniform 240, Base-EREW 95, Base 215, ccKVS 690")
	return t
}

// Fig9 regenerates Figure 9: ccKVS throughput split into cache hits and
// misses per skew.
func Fig9() Table {
	t := Table{
		ID:      "fig9",
		Title:   "ccKVS request breakdown, read-only (MRPS) [9 nodes]",
		Columns: []string{"alpha", "cache hits", "cache misses", "total", "Uniform"},
	}
	uniform := simnet.MustSolve(simnet.Config{System: simnet.Uniform}).ThroughputRPS / 1e6
	for _, a := range []float64{0.90, 0.99, 1.01} {
		r := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: core.SC, Alpha: a})
		t.AddRow(fmt.Sprintf("%.2f", a), r.CacheHitRPS/1e6, r.CacheMissRPS/1e6,
			r.ThroughputRPS/1e6, uniform)
	}
	t.Notes = append(t.Notes, "cache-miss throughput ~= Uniform's entire throughput (both network-bound)")
	return t
}

// Fig10 regenerates Figure 10: throughput vs write ratio.
func Fig10() Table {
	t := Table{
		ID:      "fig10",
		Title:   "Sensitivity to write ratio (MRPS) [9 nodes, alpha=0.99]",
		Columns: []string{"write %", "Uniform", "ccKVS-SC", "ccKVS-Lin", "Base", "Base-EREW"},
	}
	uniform := simnet.MustSolve(simnet.Config{System: simnet.Uniform}).ThroughputRPS / 1e6
	base := simnet.MustSolve(simnet.Config{System: simnet.Base, Alpha: 0.99}).ThroughputRPS / 1e6
	erew := simnet.MustSolve(simnet.Config{System: simnet.BaseEREW, Alpha: 0.99}).ThroughputRPS / 1e6
	for _, w := range []float64{0, 0.002, 0.01, 0.02, 0.03, 0.04, 0.05} {
		sc := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: core.SC, Alpha: 0.99, WriteRatio: w})
		lin := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: w})
		t.AddRow(fmt.Sprintf("%.1f", w*100), uniform, sc.ThroughputRPS/1e6, lin.ThroughputRPS/1e6, base, erew)
	}
	t.Notes = append(t.Notes,
		"0.2% is Facebook's reported write ratio; paper headline: 2.5x/2.2x over Base at 1%")
	return t
}

// Fig11 regenerates Figure 11: network traffic breakdown by message class.
func Fig11() Table {
	t := Table{
		ID:      "fig11",
		Title:   "Network traffic breakdown (%) [9 nodes, alpha=0.99]",
		Columns: []string{"system", "write %", "cache misses", "updates", "invalidates", "acks", "flow control"},
	}
	for _, w := range []float64{0.01, 0.05} {
		for _, proto := range []core.Protocol{core.SC, core.Lin} {
			r := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: proto, Alpha: 0.99, WriteRatio: w})
			t.AddRow("ccKVS-"+proto.String(), fmt.Sprintf("%.0f", w*100),
				r.TrafficShares[metrics.ClassCacheMiss]*100,
				r.TrafficShares[metrics.ClassUpdate]*100,
				r.TrafficShares[metrics.ClassInvalidate]*100,
				r.TrafficShares[metrics.ClassAck]*100,
				r.TrafficShares[metrics.ClassFlowControl]*100)
		}
	}
	return t
}

// Fig12 regenerates Figure 12: throughput vs object size, read-only and 1%
// writes.
func Fig12() Table {
	t := Table{
		ID:      "fig12",
		Title:   "Object-size sensitivity (MRPS) [9 nodes, alpha=0.99]",
		Columns: []string{"workload", "size", "Base", "ccKVS-Lin", "ccKVS-SC"},
	}
	for _, w := range []float64{0, 0.01} {
		label := "read-only"
		if w > 0 {
			label = "1% writes"
		}
		for _, size := range []int{40, 256, 1024} {
			base := simnet.MustSolve(simnet.Config{System: simnet.Base, Alpha: 0.99, ValueSize: size})
			lin := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: w, ValueSize: size})
			sc := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: core.SC, Alpha: 0.99, WriteRatio: w, ValueSize: size})
			t.AddRow(label, fmt.Sprintf("%dB", size),
				base.ThroughputRPS/1e6, lin.ThroughputRPS/1e6, sc.ThroughputRPS/1e6)
		}
	}
	t.Notes = append(t.Notes, "SC-vs-Lin gap narrows with object size (§8.3)")
	return t
}

// Fig13a regenerates Figure 13a: per-node network utilization with and
// without request coalescing.
func Fig13a() Table {
	t := Table{
		ID:      "fig13a",
		Title:   "Per-node network utilization, read-only (Gb/s) [9 nodes, alpha=0.99]",
		Columns: []string{"size", "w/o coalescing", "w/ coalescing", "bottleneck w/o", "bottleneck w/"},
	}
	for _, size := range []int{40, 256, 1024} {
		plain := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: core.SC, Alpha: 0.99, ValueSize: size})
		coal := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: core.SC, Alpha: 0.99, ValueSize: size, Coalesce: true})
		t.AddRow(fmt.Sprintf("%dB", size), plain.PerNodeGbps, coal.PerNodeGbps, plain.Bottleneck, coal.Bottleneck)
	}
	cal := simnet.DefaultCalibration()
	t.Notes = append(t.Notes, fmt.Sprintf("link limit %.1f Gb/s per direction", cal.LinkBandwidthBits/1e9))
	return t
}

// Fig13b regenerates Figure 13b: throughput with coalescing enabled.
func Fig13b() Table {
	t := Table{
		ID:      "fig13b",
		Title:   "Throughput with request coalescing (MRPS) [9 nodes, alpha=0.99]",
		Columns: []string{"workload", "size", "Base", "ccKVS-Lin", "ccKVS-SC"},
	}
	for _, w := range []float64{0, 0.01} {
		label := "read-only"
		if w > 0 {
			label = "1% writes"
		}
		for _, size := range []int{40, 256, 1024} {
			base := simnet.MustSolve(simnet.Config{System: simnet.Base, Alpha: 0.99, ValueSize: size, Coalesce: true})
			lin := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: w, ValueSize: size, Coalesce: true})
			sc := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: core.SC, Alpha: 0.99, WriteRatio: w, ValueSize: size, Coalesce: true})
			t.AddRow(label, fmt.Sprintf("%dB", size),
				base.ThroughputRPS/1e6, lin.ThroughputRPS/1e6, sc.ThroughputRPS/1e6)
		}
	}
	t.Notes = append(t.Notes, "paper at 40B: Base ~950 MRPS, ccKVS > 2 BRPS")
	return t
}

// Fig13c regenerates Figure 13c: average and 95th-percentile latency vs
// load for read-only and 1%-write workloads with coalescing.
func Fig13c(requests int) Table {
	if requests <= 0 {
		requests = 60_000
	}
	t := Table{
		ID:      "fig13c",
		Title:   "Latency vs load (us) [9 nodes, alpha=0.99, 40B, coalescing]",
		Columns: []string{"load MRPS", "ccKVS avg", "ccKVS 95th", "SC-1% avg", "SC-1% 95th", "Lin-1% avg", "Lin-1% 95th"},
	}
	ro := simnet.Config{System: simnet.CCKVS, Protocol: core.SC, Alpha: 0.99, Coalesce: true}
	sc := simnet.Config{System: simnet.CCKVS, Protocol: core.SC, Alpha: 0.99, WriteRatio: 0.01, Coalesce: true}
	lin := simnet.Config{System: simnet.CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: 0.01, Coalesce: true}
	for _, mrps := range []float64{250, 500, 1000, 1500, 1800, 2000} {
		pro, err := simnet.SimulateLatency(ro, mrps*1e6, requests)
		if err != nil {
			panic(err)
		}
		psc, err := simnet.SimulateLatency(sc, mrps*1e6, requests)
		if err != nil {
			panic(err)
		}
		plin, err := simnet.SimulateLatency(lin, mrps*1e6, requests)
		if err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprintf("%.0f", mrps),
			pro.AvgUs, pro.P95Us, psc.AvgUs, psc.P95Us, plin.AvgUs, plin.P95Us)
	}
	t.Notes = append(t.Notes, "paper: tail latency an order of magnitude under the 1ms SLO; Lin 95th > avg at high load")
	return t
}

// Fig14 regenerates Figure 14: the scalability study — the paper's
// analytical model (dashed lines) plus this reproduction's simulated
// system (solid points up to 9 nodes).
func Fig14() Table {
	t := Table{
		ID:      "fig14",
		Title:   "Scalability study (MRPS) [1% writes, alpha=0.99]",
		Columns: []string{"servers", "Uniform model", "SC model", "Lin model", "Uniform sim", "SC sim", "Lin sim"},
	}
	for _, n := range []int{5, 9, 10, 15, 20, 25, 30, 35, 40} {
		p := model.Defaults(n, 0.01)
		var simU, simSC, simLin string
		if n <= 9 {
			u := simnet.MustSolve(simnet.Config{System: simnet.Uniform, Nodes: n})
			s := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: core.SC, Nodes: n, Alpha: 0.99, WriteRatio: 0.01})
			l := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: core.Lin, Nodes: n, Alpha: 0.99, WriteRatio: 0.01})
			simU = formatFloat(u.ThroughputRPS / 1e6)
			simSC = formatFloat(s.ThroughputRPS / 1e6)
			simLin = formatFloat(l.ThroughputRPS / 1e6)
		} else {
			simU, simSC, simLin = "-", "-", "-"
		}
		t.AddRow(n, p.ThroughputUniform()/1e6, p.ThroughputSC()/1e6, p.ThroughputLin()/1e6,
			simU, simSC, simLin)
	}
	t.Notes = append(t.Notes, "paper: model within 2% of measured at 9 nodes (628 SC / 554 Lin)")
	return t
}

// Fig15 regenerates Figure 15: break-even write ratios vs deployment size,
// model and simulated system.
func Fig15() Table {
	t := Table{
		ID:      "fig15",
		Title:   "Break-even write ratio (%) [alpha=0.99]",
		Columns: []string{"servers", "SC model", "Lin model", "SC sim", "Lin sim"},
	}
	breakEven := func(proto core.Protocol, n int) float64 {
		uni := simnet.MustSolve(simnet.Config{System: simnet.Uniform, Nodes: n}).ThroughputRPS
		lo, hi := 0.0, 1.0
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			r := simnet.MustSolve(simnet.Config{System: simnet.CCKVS, Protocol: proto, Nodes: n, Alpha: 0.99, WriteRatio: mid})
			if r.ThroughputRPS > uni {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo * 100
	}
	for _, n := range []int{5, 9, 10, 15, 20, 25, 30, 35, 40} {
		p := model.Defaults(n, 0)
		var simSC, simLin string
		if n <= 9 {
			simSC = formatFloat(breakEven(core.SC, n))
			simLin = formatFloat(breakEven(core.Lin, n))
		} else {
			simSC, simLin = formatFloat(breakEven(core.SC, n)), formatFloat(breakEven(core.Lin, n))
		}
		t.AddRow(n, p.BreakEvenSC()*100, p.BreakEvenLin()*100, simSC, simLin)
	}
	t.Notes = append(t.Notes, "paper at 40 servers: ~4% SC, ~1.7% Lin; measured slightly above model")
	return t
}

// Verification regenerates the §5.2 verification result via the Go model
// checker standing in for Murphi.
func Verification() Table {
	t := Table{
		ID:      "verify",
		Title:   "Protocol verification (explicit-state model checking, Murphi substitute)",
		Columns: []string{"protocol", "procs", "addrs", "clock bound", "states", "result"},
	}
	configs := []struct {
		proto mcheck.Protocol
		b     mcheck.Bounds
	}{
		{mcheck.Lin, mcheck.Bounds{Procs: 3, Addrs: 1, MaxClock: 1}},
		{mcheck.Lin, mcheck.Bounds{Procs: 2, Addrs: 1, MaxClock: 3}},
		{mcheck.Lin, mcheck.Bounds{Procs: 2, Addrs: 2, MaxClock: 1}},
		{mcheck.SC, mcheck.Bounds{Procs: 3, Addrs: 2, MaxClock: 1}},
	}
	for _, c := range configs {
		rep, err := mcheck.Check(c.proto, c.b)
		status := "verified"
		if err != nil {
			status = "error: " + err.Error()
		} else if !rep.OK() {
			status = "VIOLATION: " + rep.Violation
		}
		t.AddRow(c.proto.String(), c.b.Procs, c.b.Addrs, int(c.b.MaxClock), rep.States, status)
	}
	t.Notes = append(t.Notes,
		"addresses are independent under per-key protocols, so single-address instances cover the behaviour; the paper's Murphi run used 3 procs / 2 addrs / 2-bit timestamps with symmetry reduction")
	return t
}

// All returns every figure runner keyed by id (Fig13c with default length).
func All() map[string]func() Table {
	return map[string]func() Table{
		"fig1":                   Fig1,
		"fig3":                   Fig3,
		"fig8":                   Fig8,
		"fig9":                   Fig9,
		"fig10":                  Fig10,
		"fig11":                  Fig11,
		"fig12":                  Fig12,
		"fig13a":                 Fig13a,
		"fig13b":                 Fig13b,
		"fig13c":                 func() Table { return Fig13c(0) },
		"fig14":                  Fig14,
		"fig15":                  Fig15,
		"verify":                 Verification,
		"ablation-serialization": AblationWriteSerialization,
		"ablation-coalesce":      AblationCoalesceFactor,
		"ablation-credits":       AblationCreditBatch,
		"ablation-cache-size":    AblationCacheSize,
	}
}
