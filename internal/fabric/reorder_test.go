package fabric

import (
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestReorderDeliversEverything(t *testing.T) {
	inner := NewChanTransport(256, NewStats())
	tr := NewReorder(inner, 8, 42)

	var mu sync.Mutex
	got := map[byte]bool{}
	dst := Addr{Node: 1}
	tr.Register(dst, func(p Packet) {
		mu.Lock()
		got[p.Data[0]] = true
		mu.Unlock()
	})
	for i := 0; i < 100; i++ {
		if err := tr.Send(Packet{Dst: dst, Class: metrics.ClassUpdate, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/100 delivered", n)
		}
		time.Sleep(time.Millisecond)
	}
	tr.Close()
}

func TestReorderActuallyReorders(t *testing.T) {
	inner := NewChanTransport(512, NewStats())
	tr := NewReorder(inner, 16, 7)
	defer tr.Close()

	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	dst := Addr{Node: 2}
	tr.Register(dst, func(p Packet) {
		mu.Lock()
		order = append(order, int(p.Data[0]))
		if len(order) == 200 {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < 200; i++ {
		tr.Send(Packet{Dst: dst, Data: []byte{byte(i)}})
	}
	tr.Flush()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatalf("delivery incomplete: %d", len(order))
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no reordering observed; the adversary is a no-op")
	}
	t.Logf("inversions: %d/199", inversions)
}

func TestReorderFlusherDrainsQuietBuffer(t *testing.T) {
	inner := NewChanTransport(64, NewStats())
	tr := NewReorder(inner, 32, 3)
	defer tr.Close()

	got := make(chan struct{}, 4)
	dst := Addr{Node: 3}
	tr.Register(dst, func(Packet) { got <- struct{}{} })
	// Fewer packets than the buffer depth: only the ticker can release them.
	for i := 0; i < 4; i++ {
		tr.Send(Packet{Dst: dst, Data: []byte{byte(i)}})
	}
	for i := 0; i < 4; i++ {
		select {
		case <-got:
		case <-time.After(3 * time.Second):
			t.Fatalf("packet %d stuck in the reorder buffer", i)
		}
	}
}

func TestReorderCloseFlushesAndRejects(t *testing.T) {
	inner := NewChanTransport(64, NewStats())
	tr := NewReorder(inner, 8, 9)
	var count int
	var mu sync.Mutex
	dst := Addr{Node: 4}
	tr.Register(dst, func(Packet) { mu.Lock(); count++; mu.Unlock() })
	for i := 0; i < 5; i++ {
		tr.Send(Packet{Dst: dst, Data: []byte{byte(i)}})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Packet{Dst: dst}); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 5 {
		t.Fatalf("close dropped packets: %d/5", count)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
