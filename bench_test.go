// Benchmarks regenerating every table and figure of the paper's evaluation
// (EuroSys'18, §8). Each benchmark runs the corresponding experiment and
// reports its headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as the full reproduction harness. cmd/cckvs-bench renders the
// same experiments as human-readable tables.
package cckvs

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/mcheck"
	"repro/internal/model"
	"repro/internal/workload"
	"repro/internal/zipf"
)

// cell extracts a numeric cell from a rendered experiment table row.
func cell(b *testing.B, tab experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.Fields(tab.Rows[row][col])[0], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

// BenchmarkFig01LoadImbalance regenerates Figure 1 (hottest of 128 servers
// vs average, alpha = 0.99).
func BenchmarkFig01LoadImbalance(b *testing.B) {
	var imb float64
	for i := 0; i < b.N; i++ {
		loads := zipf.ShardLoads(250_000_000, 0.99, 128, func(rank uint64) int {
			return int(zipf.Mix64(rank) % 128)
		})
		imb = zipf.Imbalance(loads)
	}
	b.ReportMetric(imb, "max/avg")
}

// BenchmarkFig03HitRate regenerates Figure 3's 0.1% anchor points.
func BenchmarkFig03HitRate(b *testing.B) {
	var h90, h99, h101 float64
	for i := 0; i < b.N; i++ {
		h90 = zipf.HitRate(0.001, 250_000_000, 0.90)
		h99 = zipf.HitRate(0.001, 250_000_000, 0.99)
		h101 = zipf.HitRate(0.001, 250_000_000, 1.01)
	}
	b.ReportMetric(h90*100, "%hit@0.90")
	b.ReportMetric(h99*100, "%hit@0.99")
	b.ReportMetric(h101*100, "%hit@1.01")
}

// BenchmarkFig08ReadOnly regenerates Figure 8 at alpha = 0.99.
func BenchmarkFig08ReadOnly(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Fig8()
	}
	b.ReportMetric(cell(b, tab, 0, 2), "Uniform_MRPS")
	b.ReportMetric(cell(b, tab, 1, 2), "BaseEREW_MRPS")
	b.ReportMetric(cell(b, tab, 2, 2), "Base_MRPS")
	b.ReportMetric(cell(b, tab, 3, 2), "ccKVS_MRPS")
}

// BenchmarkFig09Breakdown regenerates Figure 9 (hit/miss split).
func BenchmarkFig09Breakdown(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Fig9()
	}
	b.ReportMetric(cell(b, tab, 1, 1), "hits_MRPS@0.99")
	b.ReportMetric(cell(b, tab, 1, 2), "misses_MRPS@0.99")
}

// BenchmarkFig10WriteRatio regenerates Figure 10 and reports the paper's
// headline 1%-write numbers.
func BenchmarkFig10WriteRatio(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Fig10()
	}
	// Row 2 is the 1% write ratio.
	b.ReportMetric(cell(b, tab, 2, 2), "SC_MRPS@1%")
	b.ReportMetric(cell(b, tab, 2, 3), "Lin_MRPS@1%")
	b.ReportMetric(cell(b, tab, 2, 2)/cell(b, tab, 2, 4), "SC/Base")
	b.ReportMetric(cell(b, tab, 2, 3)/cell(b, tab, 2, 4), "Lin/Base")
}

// BenchmarkFig11Traffic regenerates Figure 11's traffic shares.
func BenchmarkFig11Traffic(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Fig11()
	}
	// Last row: Lin at 5% writes.
	last := len(tab.Rows) - 1
	b.ReportMetric(cell(b, tab, last, 2), "%miss_Lin@5%")
	b.ReportMetric(cell(b, tab, last, 3), "%upd_Lin@5%")
	b.ReportMetric(cell(b, tab, last, 6), "%flowctl_Lin@5%")
}

// BenchmarkFig12ObjectSize regenerates Figure 12 and reports the SC/Lin gap
// at 40B and 1KB (1% writes).
func BenchmarkFig12ObjectSize(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Fig12()
	}
	// Rows 3..5 are the 1%-write rows (40B, 256B, 1KB).
	gap40 := cell(b, tab, 3, 4) / cell(b, tab, 3, 3)
	gap1k := cell(b, tab, 5, 4) / cell(b, tab, 5, 3)
	b.ReportMetric(gap40, "SC/Lin@40B")
	b.ReportMetric(gap1k, "SC/Lin@1KB")
}

// BenchmarkFig13aCoalescingUtil regenerates Figure 13a.
func BenchmarkFig13aCoalescingUtil(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Fig13a()
	}
	b.ReportMetric(cell(b, tab, 0, 1), "Gbps@40B_plain")
	b.ReportMetric(cell(b, tab, 0, 2), "Gbps@40B_coalesced")
}

// BenchmarkFig13bCoalescingPerf regenerates Figure 13b.
func BenchmarkFig13bCoalescingPerf(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Fig13b()
	}
	b.ReportMetric(cell(b, tab, 0, 2), "Base_MRPS@40B")
	b.ReportMetric(cell(b, tab, 0, 4), "ccKVS_SC_MRPS@40B")
}

// BenchmarkFig13cLatency regenerates Figure 13c (queueing simulation).
func BenchmarkFig13cLatency(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Fig13c(30_000)
	}
	last := len(tab.Rows) - 1
	b.ReportMetric(cell(b, tab, last, 1), "ccKVS_avg_us@peak")
	b.ReportMetric(cell(b, tab, last, 2), "ccKVS_p95_us@peak")
	b.ReportMetric(cell(b, tab, last, 6), "Lin_p95_us@peak")
}

// BenchmarkFig14Scalability regenerates Figure 14's analytical study.
func BenchmarkFig14Scalability(b *testing.B) {
	var pts []model.ScalePoint
	for i := 0; i < b.N; i++ {
		pts = model.ScalabilityStudy(5, 40, 0.01)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.UniformMRPS, "Uniform_MRPS@40")
	b.ReportMetric(last.SCMRPS, "SC_MRPS@40")
	b.ReportMetric(last.LinMRPS, "Lin_MRPS@40")
}

// BenchmarkFig15BreakEven regenerates Figure 15's break-even study.
func BenchmarkFig15BreakEven(b *testing.B) {
	var pts []model.BreakEvenPoint
	for i := 0; i < b.N; i++ {
		pts = model.BreakEvenStudy(5, 40)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.SCPct, "%SC@40")
	b.ReportMetric(last.LinPct, "%Lin@40")
}

// BenchmarkModelChecker reproduces the §5.2 verification (Murphi
// substitute) on a small Lin instance.
func BenchmarkModelChecker(b *testing.B) {
	var rep mcheck.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = mcheck.Check(mcheck.Lin, mcheck.Bounds{Procs: 3, Addrs: 1, MaxClock: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("violation: %s", rep.Violation)
		}
	}
	b.ReportMetric(float64(rep.States), "states")
}

// BenchmarkAblationSerialization reports the Figure 4 design-space ablation
// at 5% writes.
func BenchmarkAblationSerialization(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.AblationWriteSerialization()
	}
	b.ReportMetric(cell(b, tab, 1, 1), "distributed_MRPS@5%")
	b.ReportMetric(cell(b, tab, 1, 3), "primary_MRPS@5%")
}

// BenchmarkAblationCoalesce reports the coalescing-factor sweep endpoints.
func BenchmarkAblationCoalesce(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.AblationCoalesceFactor()
	}
	b.ReportMetric(cell(b, tab, 0, 1), "MRPS@k=1")
	b.ReportMetric(cell(b, tab, len(tab.Rows)-1, 1), "MRPS@k=32")
}

// BenchmarkAblationCredits reports the credit-batching sweep endpoints.
func BenchmarkAblationCredits(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.AblationCreditBatch()
	}
	b.ReportMetric(cell(b, tab, 0, 1), "%flowctl@batch1")
	b.ReportMetric(cell(b, tab, len(tab.Rows)-1, 1), "%flowctl@batch32")
}

// BenchmarkAblationCacheSize reports throughput at the paper's 0.1% cache
// operating point.
func BenchmarkAblationCacheSize(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.AblationCacheSize()
	}
	// Row 2 is 0.10%.
	b.ReportMetric(cell(b, tab, 2, 1), "%hit@0.1%cache")
	b.ReportMetric(cell(b, tab, 2, 2), "MRPS@0.1%cache")
}

// BenchmarkLocalClusterEndToEnd measures the real in-process cluster (the
// functional prototype) under the paper's default workload shape.
func BenchmarkLocalClusterEndToEnd(b *testing.B) {
	kv, err := Open(Options{Nodes: 3, Consistency: SC, NumKeys: 1 << 14, CacheItems: 160})
	if err != nil {
		b.Fatal(err)
	}
	defer kv.Close()
	g, err := zipf.NewGenerator(1<<14, 0.99, 1)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := g.Next()
		if i%100 == 0 {
			if err := kv.Put(key, val); err != nil {
				b.Fatal(err)
			}
		} else if _, err := kv.Get(key); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(kv.Stats().HitRate()*100, "%hit")
}

// BenchmarkCoalescingRemoteOps is the tentpole measurement of the request
// coalescing pipeline (§6.3/§8.5): remote-op throughput under a uniform
// (low-skew) workload, where misses dominate and nearly (N-1)/N of requests
// travel to a remote home shard. "per-request" caps the pipeline at one
// request per packet and issues one blocking Get per op — the pre-pipeline
// wire behaviour; "batched-64" issues MultiGet batches of 64, which the
// pipeline coalesces into multi-request packets. reqs/pkt reports the
// achieved coalescing factor.
func BenchmarkCoalescingRemoteOps(b *testing.B) {
	const numKeys = 1 << 14
	run := func(b *testing.B, maxMsgs, batch int) {
		c, err := cluster.New(cluster.Config{
			Nodes: 3, System: cluster.Base, NumKeys: numKeys, BatchMaxMsgs: maxMsgs,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		c.Populate()
		keys := zipf.NewUniform(numKeys, 1)
		b.ResetTimer()
		if batch <= 1 {
			for i := 0; i < b.N; i++ {
				if _, err := c.Node(i % 3).Get(keys.Next()); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			buf := make([]uint64, batch)
			for i := 0; i < b.N; i += batch {
				n := batch
				if rem := b.N - i; rem < n {
					n = rem
				}
				for j := 0; j < n; j++ {
					buf[j] = keys.Next()
				}
				if _, err := c.Node(i % 3).MultiGet(buf[:n]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		var msgs, pkts uint64
		for i := 0; i < 3; i++ {
			msgs += c.Node(i).RemoteReqMsgs.Load()
			pkts += c.Node(i).RemoteReqPackets.Load()
		}
		if pkts > 0 {
			b.ReportMetric(float64(msgs)/float64(pkts), "reqs/pkt")
		}
	}
	b.Run("per-request", func(b *testing.B) { run(b, 1, 1) })
	b.Run("batched-64", func(b *testing.B) { run(b, 0, 64) })
}

// BenchmarkWorkerScaling measures the multi-worker node (§6.2) on the
// remote-access hot path: a 2-node Base cluster where every measured op is
// issued at node 0 for a key homed on node 1 under the paper's Zipfian
// preset, so the whole load funnels through node 1's KVS worker bank (and
// node 0's per-worker pipelines). With 1 worker per node every remote
// access serializes through a single dispatcher goroutine; W workers serve
// W disjoint key stripes in parallel. Run with -cpu 4,8 on multi-core
// hardware to see the banks scale; ns/op here is per *remote* op.
func BenchmarkWorkerScaling(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			const numKeys = 1 << 15
			c, err := cluster.New(cluster.Config{
				Nodes: 2, System: cluster.Base, NumKeys: numKeys, WorkersPerNode: w,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			c.Populate()
			// Rank-preserving remap of the Zipfian key stream onto the keys
			// homed at node 1: the popularity shape survives, and every op
			// is a remote access from node 0's point of view.
			var remote []uint64
			for k := uint64(0); k < numKeys; k++ {
				if c.HomeNode(k) == 1 {
					remote = append(remote, k)
				}
			}
			wl, _ := workload.Preset(workload.PaperDefault, numKeys)
			gen, err := workload.New(wl)
			if err != nil {
				b.Fatal(err)
			}
			n0 := c.Node(0)
			var clientSeed atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := gen.Clone(clientSeed.Add(1))
				for pb.Next() {
					op := g.Next()
					key := remote[op.Key%uint64(len(remote))]
					// b.Error, not b.Fatal: FailNow must not be called from
					// RunParallel worker goroutines.
					if op.Type == workload.Put {
						if err := n0.Put(key, op.Value); err != nil {
							b.Error(err)
							return
						}
					} else if _, err := n0.Get(key); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "remote_ops/s")
		})
	}
}
