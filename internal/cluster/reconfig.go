package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/timestamp"
)

// Incremental online hot-set reconfiguration (§4 under live traffic).
//
// The bootstrap path (Cluster.InstallHotSet) replaces every cache's table
// wholesale with the harness acting as an omniscient coordinator that reads
// peer state directly — fine before traffic starts, useless for adapting to
// shifting popularity while serving requests. ApplyHotSetDelta is the online
// path: it applies only the epoch delta, entirely over the RPC fabric, while
// client traffic keeps flowing.
//
// Demotions run a write-safe, read-safe dance per key:
//
//  1. freeze on every node — reads keep hitting (the cached value remains
//     the latest committed one), in-flight consistency traffic keeps
//     draining, but new writes are refused and their sessions retry;
//  2. collect — once a node's entry is quiescent (no outstanding Lin write,
//     not Invalid) its dirty value is snapshotted; the coordinator keeps the
//     highest-versioned one and flushes it to the key's home shard with
//     PutIfNewer semantics (rpcOpWriteback);
//  3. retire — every replica goes dark: reads miss to the home shard, which
//     now holds exactly the cached value. Only then may replicas drop their
//     copies — removing them one by one while others still served reads
//     would let a post-removal write at the home shard go unseen by the
//     remaining copies;
//  4. commit — the key is dropped from every cache; retrying writers now
//     miss and forward to the home shard, which already holds the
//     write-back, so a transition can neither lose a write nor let a stale
//     write-back clobber a post-demotion one.
//
// Promotions run the mirror-image dance: a frozen, valueless *placeholder*
// is installed on every node first (reads miss to the home shard, writes
// spin), which pins the home value — no client put can reach the home shard
// past the placeholders, and a put whose cache probe predates them bounces
// off the home and re-executes — so the subsequent fetch of value+version
// cannot be overtaken by a racing write. The commit is two rounds: the
// fetched value is *filled* into every placeholder (readable, writes still
// held) and only then does every replica *unfreeze* — a write completing
// before global visibility would be lost on replicas still reading the home
// shard. The fetches are the only remote *data* transfers of an epoch
// change, O(Δ) of them instead of the O(k) a full reinstall would need.

// DeltaStats summarizes one incremental epoch change.
type DeltaStats struct {
	// Promoted counts keys newly installed in the caches; Demoted counts
	// keys dropped.
	Promoted, Demoted int
	// WriteBacks counts demoted keys whose dirty value was flushed home.
	WriteBacks int
	// HomeFetches counts per-key value fetches from home shards for
	// promotions — the O(Δ) remote cost of the incremental scheme (a full
	// reinstall pays O(k)). RemoteFetches is the subset that crossed the
	// fabric (keys not homed on the coordinating node).
	HomeFetches, RemoteFetches int
	// CollectRetries counts demotion collect probes that found an entry
	// still draining protocol traffic.
	CollectRetries int
}

// ApplyHotSetDelta applies an epoch delta to the symmetric caches while the
// cluster keeps serving requests: demote keys leave every cache (dirty
// values written back to their home shards first), then promote keys are
// fetched from their home shards and installed everywhere. The node with id
// via drives the change over the RPC fabric (any node can; the caller's
// load balancer picks). Baselines without caches return zero stats.
func (c *Cluster) ApplyHotSetDelta(via int, promote, demote []uint64) (DeltaStats, error) {
	// One reconfiguration at a time: overlapping freezes of intersecting
	// key sets would deadlock each other's collect phases.
	c.reconfigMu.Lock()
	defer c.reconfigMu.Unlock()
	return c.applyDelta(via, promote, demote)
}

// ApplyHotSet reconfigures the caches to hold exactly target: the delta
// against the currently installed key set is computed under the
// reconfiguration lock (so concurrent callers cannot apply stale deltas)
// and applied incrementally. This is the one-call epoch change both
// KV.RefreshHotSet and the churn ablation drive. In member form, via must be
// the local node (any member can drive an epoch change, but only from
// itself); outside transitions the caches are symmetric, so the local view
// of the installed set is the deployment's view.
func (c *Cluster) ApplyHotSet(via int, target []uint64) (DeltaStats, error) {
	if c.cfg.System != CCKVS {
		return DeltaStats{}, nil
	}
	c.reconfigMu.Lock()
	defer c.reconfigMu.Unlock()
	n, err := c.viaNode(via)
	if err != nil {
		return DeltaStats{}, err
	}
	next := make(map[uint64]struct{}, len(target))
	var promote []uint64
	for _, k := range target {
		if _, dup := next[k]; dup {
			continue
		}
		next[k] = struct{}{}
		if !n.cache.Contains(k) {
			promote = append(promote, k)
		}
	}
	var demote []uint64
	for _, k := range n.cache.Keys() {
		if _, keep := next[k]; !keep {
			demote = append(demote, k)
		}
	}
	return c.applyDelta(via, promote, demote)
}

// viaNode resolves the node driving a reconfiguration; in member form only
// the local node can drive.
func (c *Cluster) viaNode(via int) (*Node, error) {
	n := c.nodes[via%c.cfg.Nodes]
	if n == nil {
		return nil, fmt.Errorf("cluster: node %d is not local to this member (only node %d can drive from here)", via, c.self)
	}
	return n, nil
}

// applyDelta runs the demotion then promotion phases; the caller holds
// reconfigMu. Keys homed on a node outside the membership view are dropped
// from the delta: a dead home can neither serve a promotion's fetch nor
// accept a demotion's write-back, so such keys keep their current placement
// — notably, hot keys homed on a dead node stay cached and keep serving —
// until the node rejoins.
func (c *Cluster) applyDelta(via int, promote, demote []uint64) (DeltaStats, error) {
	var st DeltaStats
	if c.cfg.System != CCKVS || (len(promote) == 0 && len(demote) == 0) {
		return st, nil
	}
	n, err := c.viaNode(via)
	if err != nil {
		return st, err
	}
	view := c.view.Load()
	if view.LiveCount() < c.cfg.Nodes {
		promote = c.liveHomedKeys(view, promote)
		demote = c.liveHomedKeys(view, demote)
	}
	if err := n.demoteKeys(demote, &st); err != nil {
		return st, err
	}
	if err := n.promoteKeys(promote, &st); err != nil {
		return st, err
	}
	return st, nil
}

// liveHomedKeys filters keys down to those with a live shard replica — the
// home node itself when unreplicated, any replica otherwise (a demotion can
// flush to, and a promotion can fetch from, the key's acting primary).
func (c *Cluster) liveHomedKeys(view *View, keys []uint64) []uint64 {
	kept := make([]uint64, 0, len(keys))
	for _, k := range keys {
		if c.primaryFor(k, view) >= 0 {
			kept = append(kept, k)
		}
	}
	return kept
}

// HotKeys returns the currently installed hot-set keys (the local node's
// view; caches are symmetric outside of transitions). Baselines return nil.
func (c *Cluster) HotKeys() []uint64 {
	if c.cfg.System != CCKVS {
		return nil
	}
	return c.LocalNode().cache.Keys()
}

// peerIDs lists every other *live* node of the deployment (present or
// remote): reconfiguration phases run against the membership view, so an
// epoch change completes even while a member is down — its cache rejoins
// empty and is reinstalled by the next hot-set install (README "Failure
// model").
func (n *Node) peerIDs() []uint8 {
	view := n.cluster.view.Load()
	peers := make([]uint8, 0, n.cluster.cfg.Nodes-1)
	for i := 0; i < n.cluster.cfg.Nodes; i++ {
		if uint8(i) != n.id && view.Live(i) {
			peers = append(peers, uint8(i))
		}
	}
	return peers
}

// controlCall is one in-flight reconfiguration call awaiting its response.
type controlCall struct {
	peer uint8
	key  uint64
	ch   chan rpcResult
}

// controlAll sends one key-only control entry per (peer, key) — every call
// in flight at once, coalesced per destination by the pipeline, so a phase
// costs one overlapped round instead of one round-trip per peer (the freeze
// window client writes spin in must not grow with the node count) — and
// verifies every answer is OK. All responses are awaited even after a
// failure; the first error is returned.
func (n *Node) controlAll(peers []uint8, op byte, keys []uint64) error {
	calls := make([]controlCall, 0, len(peers)*len(keys))
	for _, peer := range peers {
		for _, k := range keys {
			ch := n.workerFor(k).rpc.start(peer, wireReq{op: op, key: k})
			calls = append(calls, controlCall{peer: peer, key: k, ch: ch})
		}
	}
	var firstErr error
	for _, c := range calls {
		res, err := awaitRPC(c.ch)
		if err == nil && res.status != rpcStatusOK {
			err = fmt.Errorf("cluster: control op %d refused by node %d (status %d)", op, c.peer, res.status)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// demoteKeys runs the freeze → collect → write-back → retire → commit
// demotion for keys, driven from this node. A failure before the write-back
// aborts the demotion by unfreezing the keys everywhere; after it, the data
// is durable at the homes and the demotion rolls forward by dropping the
// keys (both best-effort on peers — the transport may be the reason for the
// failure; writers additionally bound their ErrFrozen spins, so even a
// stranded freeze cannot hang them).
func (n *Node) demoteKeys(keys []uint64, st *DeltaStats) (err error) {
	if len(keys) == 0 {
		return nil
	}
	peers := n.peerIDs()
	wroteBack := false
	defer func() {
		if err == nil {
			return
		}
		if wroteBack {
			// The dirty values are durable at the home shards: roll the
			// demotion forward by dropping the keys (best-effort on peers).
			n.cache.Remove(keys)
			_ = n.controlAll(peers, rpcOpDemoteCommit, keys)
			return
		}
		// Nothing flushed yet: abort by unfreezing everywhere; the hot set
		// stays as it was.
		n.cache.Unfreeze(keys)
		_ = n.controlAll(peers, rpcOpUnfreeze, keys)
	}()

	// Phase 1: freeze everywhere. Only once every node refuses new writes
	// for these keys is the set of in-flight writes finite, which is what
	// makes the collect phase terminate.
	n.cache.Freeze(keys)
	if err := n.controlAll(peers, rpcOpDemoteFreeze, keys); err != nil {
		return fmt.Errorf("demote freeze: %w", err)
	}

	// Phase 2: collect each node's dirty value once its entry drained. The
	// highest version per key wins; every value a client ever saw as
	// committed is dirty at the node that applied it, so the winner is
	// always collected somewhere.
	best := make(map[uint64]core.WriteBack, len(keys))
	merge := func(wb core.WriteBack) {
		if cur, ok := best[wb.Key]; !ok || wb.TS.After(cur.TS) {
			best[wb.Key] = wb
		}
	}
	for _, k := range keys {
		for {
			wb, dirty, quiescent := n.cache.CollectFrozen(k)
			if quiescent {
				if dirty {
					merge(wb)
				}
				break
			}
			st.CollectRetries++
			yield()
		}
	}
	// Remote collects run in overlapped rounds: every still-draining
	// (peer, key) pair is re-probed together.
	pending := make([]controlCall, 0, len(peers)*len(keys))
	for _, peer := range peers {
		for _, k := range keys {
			pending = append(pending, controlCall{peer: peer, key: k})
		}
	}
	for len(pending) > 0 {
		for i := range pending {
			pending[i].ch = n.workerFor(pending[i].key).rpc.start(
				pending[i].peer, wireReq{op: rpcOpDemoteCollect, key: pending[i].key})
		}
		retry := pending[:0]
		var firstErr error
		for _, c := range pending {
			res, cerr := awaitRPC(c.ch)
			if cerr != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("demote collect: %w", cerr)
				}
				continue
			}
			switch res.status {
			case rpcStatusOK:
				merge(core.WriteBack{Key: c.key, Value: res.value, TS: res.ts})
			case rpcStatusNotFound:
				// Clean entry: nothing to flush.
			case rpcStatusRetry:
				retry = append(retry, c)
			default:
				if firstErr == nil {
					firstErr = fmt.Errorf("cluster: demote collect refused by node %d (status %d)", c.peer, res.status)
				}
			}
		}
		if firstErr != nil {
			return firstErr
		}
		if len(retry) > 0 {
			st.CollectRetries += len(retry)
			yield()
		}
		pending = retry
	}

	// Phase 3: flush the winning dirty values to every live shard replica
	// before any cache drops the keys — a post-demotion miss routes to the
	// key's acting primary, which must hold a copy at least as new as
	// anything the caches ever committed (with replication, so must the
	// backups, or the next promotion would resurrect the pre-cache value).
	wbCalls := make([]controlCall, 0, len(best))
	view := n.cluster.view.Load()
	for _, wb := range best {
		for _, node := range ReplicasOf(wb.Key, n.cluster.cfg.Nodes, n.cluster.cfg.ReplicasPerShard) {
			if node == int(n.id) {
				// ErrStale means a peer's flush or client write was newer.
				_ = n.kvs.PutIfNewer(wb.Key, wb.Value, wb.TS)
				continue
			}
			if !view.Live(node) {
				continue // a dead replica is re-seeded on rejoin
			}
			ch := n.workerFor(wb.Key).rpc.start(uint8(node), wireReq{op: rpcOpWriteback, key: wb.Key, ts: wb.TS, value: wb.Value})
			wbCalls = append(wbCalls, controlCall{peer: uint8(node), key: wb.Key, ch: ch})
		}
	}
	var wbErr error
	for _, c := range wbCalls {
		res, cerr := awaitRPC(c.ch)
		if cerr != nil && !n.cluster.view.Load().Live(int(c.peer)) {
			continue // the replica died mid-flush; excised, re-seeded on rejoin
		}
		if cerr == nil && res.status != rpcStatusOK {
			cerr = fmt.Errorf("cluster: writeback refused by node %d (status %d)", c.peer, res.status)
		}
		if cerr != nil && wbErr == nil {
			wbErr = cerr
		}
	}
	if wbErr != nil {
		return fmt.Errorf("demote writeback: %w", wbErr)
	}
	st.WriteBacks += len(best)
	wroteBack = true

	// Phase 4: retire — every replica goes dark (reads miss to the home
	// shard, which now holds exactly the cached value; writes stay frozen)
	// before any replica drops its copy. Without this barrier a write
	// landing at the home shard right after the home's own removal would be
	// invisible to readers of the remaining cached copies — a stale read
	// past the write-back.
	n.cache.Retire(keys)
	if err := n.controlAll(peers, rpcOpDemoteRetire, keys); err != nil {
		return fmt.Errorf("demote retire: %w", err)
	}

	// Phase 5: commit — drop the keys everywhere. Writers spinning on
	// ErrFrozen now miss and forward to the home shards.
	if err := n.controlAll(peers, rpcOpDemoteCommit, keys); err != nil {
		return fmt.Errorf("demote commit: %w", err)
	}
	st.Demoted += n.cache.Remove(keys)
	return nil
}

// promoteKeys runs the prepare → fetch → commit promotion for keys, driven
// from this node: placeholders freeze the keys' write paths everywhere,
// then each key's value+version is fetched from its now-stable home shard
// (the O(Δ) remote fetches of the epoch change), then the placeholders
// commit to live entries. Placeholders that cannot be filled — the key does
// not exist, or the transport failed mid-flight — are rolled back so no
// key is left permanently frozen.
func (n *Node) promoteKeys(keys []uint64, st *DeltaStats) (err error) {
	if len(keys) == 0 {
		return nil
	}
	peers := n.peerIDs()

	// Phase 1: placeholders everywhere. After this barrier every write to a
	// promoted key spins (reads miss to the home shard as before), so the
	// home values are stable until the commit.
	n.cache.AddPending(keys)
	if perr := n.controlAll(peers, rpcOpPromotePrepare, keys); perr != nil {
		err = fmt.Errorf("promote prepare: %w", perr)
	}
	committed := make(map[uint64]struct{}, len(keys))
	defer func() {
		// Roll back whatever did not fully commit — a leftover placeholder
		// would freeze the key's writers forever, and a key committed on
		// only a subset of nodes would break cache symmetry. The rollback
		// is the demotion dance itself: a no-op for placeholders, a
		// write-back-preserving removal for entries some nodes (and their
		// clients) already started using. Best-effort — the transport may
		// be the reason we are rolling back.
		var abort []uint64
		for _, k := range keys {
			if _, ok := committed[k]; !ok {
				abort = append(abort, k)
			}
		}
		if len(abort) == 0 {
			return
		}
		var rollback DeltaStats
		_ = n.demoteKeys(abort, &rollback)
	}()
	if err != nil {
		return err
	}

	// Phase 2: fetch value+version from each key's acting primary (the home
	// shard itself when unreplicated).
	type fetched struct {
		val []byte
		ts  timestamp.TS
	}
	vals := make(map[uint64]fetched, len(keys))
	view := n.cluster.view.Load()
	pending := make([]controlCall, 0, len(keys))
	var local []uint64
	for _, k := range keys {
		primary := n.cluster.primaryFor(k, view)
		if primary < 0 {
			continue // lost its last replica mid-delta; the placeholder rolls back
		}
		if primary == int(n.id) {
			local = append(local, k)
			continue
		}
		st.HomeFetches++
		st.RemoteFetches++
		pending = append(pending, controlCall{peer: uint8(primary), key: k})
	}
	// The key's worker homeMu orders each local fetch against local
	// miss-path puts whose cache probe predates the placeholders (see
	// localHomePut); remote puts serialize with the rpcOpPromoteFetch
	// handler under the same mutex on their home nodes.
	for _, k := range local {
		st.HomeFetches++
		wk := n.workerFor(k)
		wk.homeMu.Lock()
		v, ts, gerr := n.kvs.Get(k, nil)
		if gerr == nil && n.cluster.replicated() {
			// Lift the fetched version above every stamp handed out for the
			// key, mirroring the rpcOpPromoteFetch handler: orphaned backup
			// commits from a bounced stamped put must lose to this entry's
			// demotion write-backs.
			wk.seqMu.Lock()
			if clk := wk.seqClocks[k]; clk > ts.Clock {
				ts = timestamp.TS{Clock: clk, Writer: n.id}
			}
			wk.seqMu.Unlock()
		}
		wk.homeMu.Unlock()
		if gerr == nil {
			vals[k] = fetched{val: v, ts: ts}
		}
	}
	// Remote fetches run in overlapped rounds: a Retry answer means the
	// primary is still re-syncing after a rejoin (its seed streams settle,
	// then its gate clears — or it dies and the view moves on).
	var fetchErr error
	for len(pending) > 0 {
		for i := range pending {
			pending[i].ch = n.workerFor(pending[i].key).rpc.start(
				pending[i].peer, wireReq{op: rpcOpPromoteFetch, key: pending[i].key})
		}
		retry := pending[:0]
		for _, c := range pending {
			res, ferr := awaitRPC(c.ch)
			if ferr != nil {
				if fetchErr == nil {
					fetchErr = ferr
				}
				continue
			}
			switch res.status {
			case rpcStatusOK:
				vals[c.key] = fetched{val: res.value, ts: res.ts}
			case rpcStatusRetry:
				retry = append(retry, c)
			}
			// NotFound: the key does not exist at its home; its placeholder is
			// rolled back — an uncached nonexistent key behaves identically
			// either way.
		}
		if fetchErr != nil {
			return fmt.Errorf("promotion fetch: %w", fetchErr)
		}
		if len(retry) > 0 {
			yield()
		}
		pending = retry
	}

	// Phase 3: fill the placeholders everywhere — reads start hitting the
	// fetched value, but writes stay frozen: a write completing at an
	// early-filled replica would be invisible to readers on replicas still
	// missing to the home shard.
	install := make([]uint64, 0, len(keys))
	for _, k := range keys {
		if _, ok := vals[k]; ok {
			install = append(install, k)
		}
	}
	if len(install) == 0 {
		return nil
	}
	fillCalls := make([]controlCall, 0, len(peers)*len(install))
	for _, peer := range peers {
		for _, k := range install {
			f := vals[k]
			ch := n.workerFor(k).rpc.start(peer, wireReq{op: rpcOpPromote, key: k, ts: f.ts, value: f.val})
			fillCalls = append(fillCalls, controlCall{peer: peer, key: k, ch: ch})
		}
	}
	var fillErr error
	for _, c := range fillCalls {
		res, cerr := awaitRPC(c.ch)
		if cerr == nil && res.status != rpcStatusOK {
			cerr = fmt.Errorf("cluster: promotion refused by node %d (status %d)", c.peer, res.status)
		}
		if cerr != nil && fillErr == nil {
			fillErr = cerr
		}
	}
	if fillErr != nil {
		return fmt.Errorf("promotion install: %w", fillErr)
	}
	for _, k := range install {
		f := vals[k]
		if n.cache.FillAdd(k, f.val, f.ts) {
			st.Promoted++
		} else {
			// The key was already live locally (promotion of a cached key
			// is a no-op elsewhere too).
			st.Promoted += n.cache.Add([]uint64{k}, func(uint64) ([]byte, timestamp.TS, bool) {
				return f.val, f.ts, true
			})
		}
	}

	// Phase 4: unfreeze everywhere — every replica serves the value now, so
	// writes may resume.
	if uerr := n.controlAll(peers, rpcOpUnfreeze, install); uerr != nil {
		return fmt.Errorf("promotion unfreeze: %w", uerr)
	}
	n.cache.Unfreeze(install)
	for _, k := range install {
		committed[k] = struct{}{}
	}
	return nil
}
