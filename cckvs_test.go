package cckvs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/store"
)

func TestOpenDefaults(t *testing.T) {
	kv, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if kv.NumNodes() != 3 {
		t.Fatalf("nodes = %d", kv.NumNodes())
	}
	if kv.Cluster() == nil {
		t.Fatal("cluster accessor broken")
	}
}

func TestPutGetThroughFacade(t *testing.T) {
	for _, cons := range []Consistency{SC, Lin} {
		kv, err := Open(Options{Nodes: 3, Consistency: cons, NumKeys: 1000, CacheItems: 32})
		if err != nil {
			t.Fatal(err)
		}
		want := []byte("facade-value-000000000000000000000000000")
		if err := kv.Put(5, want); err != nil {
			t.Fatal(err)
		}
		// Under Lin the new value is immediately visible everywhere; under
		// SC the writing client sees it via any node only after the async
		// update lands, so retry briefly.
		ok := false
		for i := 0; i < 10000 && !ok; i++ {
			v, err := kv.Get(5)
			if err != nil {
				t.Fatal(err)
			}
			ok = bytes.Equal(v, want)
		}
		if !ok {
			t.Fatalf("%v: replicas never served the written value", cons)
		}
		kv.Close()
	}
}

func TestStatsAccumulate(t *testing.T) {
	kv, err := Open(Options{Nodes: 2, NumKeys: 1000, CacheItems: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	for k := uint64(0); k < 100; k++ {
		if _, err := kv.Get(k % 20); err != nil {
			t.Fatal(err)
		}
	}
	s := kv.Stats()
	if s.CacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
	if s.HitRate() <= 0 || s.HitRate() > 1 {
		t.Fatalf("hit rate %v", s.HitRate())
	}
}

func TestRefreshHotSetAdaptsToPopularity(t *testing.T) {
	kv, err := Open(Options{
		Nodes: 3, NumKeys: 10000, CacheItems: 8, SampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	// Hammer keys 5000..5007, which are outside the initial hot set
	// (keys 0..7).
	for i := 0; i < 400; i++ {
		if _, err := kv.Get(5000 + uint64(i%8)); err != nil {
			t.Fatal(err)
		}
	}
	added, removed := kv.RefreshHotSet()
	if added == 0 || removed == 0 {
		t.Fatalf("hot set did not adapt: added=%d removed=%d", added, removed)
	}
	before := kv.Stats().CacheHits
	if _, err := kv.Get(5000); err != nil {
		t.Fatal(err)
	}
	if kv.Stats().CacheHits != before+1 {
		t.Fatal("newly hot key still misses the cache")
	}
	if kv.Stats().HotSetEpoch != 1 || kv.Stats().HotSetSize == 0 {
		t.Fatalf("stats: %+v", kv.Stats())
	}
}

func TestRefreshHotSetEmptyEpochIsNoop(t *testing.T) {
	kv, err := Open(Options{Nodes: 2, NumKeys: 100, CacheItems: 4, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	// No observations: the refresh must not clear the cache.
	kv.RefreshHotSet()
	if _, err := kv.Get(0); err != nil {
		t.Fatal(err)
	}
	if kv.Stats().CacheHits == 0 {
		t.Fatal("initial hot set lost on empty refresh")
	}
}

// MultiPut/MultiGet through the public facade must round-trip batches under
// both consistency levels (the acceptance check of the coalescing pipeline).
func TestMultiGetMultiPutFacade(t *testing.T) {
	for _, cons := range []Consistency{SC, Lin} {
		kv, err := Open(Options{Nodes: 3, Consistency: cons, NumKeys: 2000, CacheItems: 32})
		if err != nil {
			t.Fatal(err)
		}
		// Batch spans hot (cached) and cold keys.
		keys := []uint64{1, 3, 700, 1100, 1500, 1999}
		pairs := make([]Pair, len(keys))
		for i, k := range keys {
			pairs[i] = Pair{Key: k, Value: bytes.Repeat([]byte{byte(0xA0 + i)}, 40)}
		}
		if err := kv.MultiPut(pairs); err != nil {
			t.Fatal(err)
		}
		// Under Lin the batch is immediately visible; under SC hot-key
		// updates propagate asynchronously, so retry until convergence.
		ok := false
		for attempt := 0; attempt < 100000 && !ok; attempt++ {
			got, err := kv.MultiGet(keys)
			if err != nil {
				t.Fatal(err)
			}
			ok = true
			for i := range keys {
				if !bytes.Equal(got[i], pairs[i].Value) {
					ok = false
					break
				}
			}
		}
		if !ok {
			t.Fatalf("%v: batch never converged", cons)
		}
		kv.Close()
	}
}

// Batched reads must feed the popularity observer exactly like single reads,
// so a hot batch shifts the next epoch's hot set.
func TestMultiGetFeedsTopK(t *testing.T) {
	kv, err := Open(Options{Nodes: 3, NumKeys: 10000, CacheItems: 8, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	batch := make([]uint64, 8)
	for i := range batch {
		batch[i] = 5000 + uint64(i) // outside the initial hot set (0..7)
	}
	for r := 0; r < 50; r++ {
		if _, err := kv.MultiGet(batch); err != nil {
			t.Fatal(err)
		}
	}
	added, removed := kv.RefreshHotSet()
	if added == 0 || removed == 0 {
		t.Fatalf("hot set ignored batched reads: added=%d removed=%d", added, removed)
	}
}

// Empty batches are no-ops.
func TestMultiEmptyBatch(t *testing.T) {
	kv, err := Open(Options{Nodes: 2, NumKeys: 100, CacheItems: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if vs, err := kv.MultiGet(nil); err != nil || len(vs) != 0 {
		t.Fatalf("MultiGet(nil) = %v, %v", vs, err)
	}
	if err := kv.MultiPut(nil); err != nil {
		t.Fatalf("MultiPut(nil) = %v", err)
	}
}

// The redesigned op surface through the facade: one Batch call carrying
// gets, puts, CAS and FAA, with every op's outcome reported per-op — a
// missing key or a lost CAS surfaces on ITS result without failing its
// batch-mates (the partial-failure contract MultiGet/MultiPut used to
// collapse into one error).
func TestFacadeBatchPerOpOutcomes(t *testing.T) {
	kv, err := Open(Options{Nodes: 3, NumKeys: 1000, CacheItems: 16, ValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	// Cold keys only (>= CacheItems): outcomes are home-direct and
	// deterministic; ops within one Batch are not ordered across stripes.
	a, err := kv.Get(21)
	if err != nil {
		t.Fatal(err)
	}
	b, err := kv.Get(22)
	if err != nil {
		t.Fatal(err)
	}
	c, err := kv.Get(23)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := cluster.DecodeCounter(c)
	if err != nil {
		t.Fatal(err)
	}

	ops := []cluster.Op{
		{Kind: cluster.OpGet, Key: 1500},                                           // absent: per-op ErrNotFound
		{Kind: cluster.OpCAS, Key: 21, Expect: []byte("nope"), Value: []byte("x")}, // loses
		{Kind: cluster.OpCAS, Key: 22, Expect: b, Value: []byte("swapped!")},       // wins
		{Kind: cluster.OpFAA, Key: 23, Delta: 2},
		{Kind: cluster.OpPut, Key: 24, Value: []byte("fresh")},
		{Kind: cluster.OpGet, Key: 25}, // unaffected sibling
	}
	rs, err := kv.Batch(ops)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if !errors.Is(rs[0].Err, store.ErrNotFound) {
		t.Fatalf("absent get: %v, want per-op ErrNotFound", rs[0].Err)
	}
	if !errors.Is(rs[1].Err, cluster.ErrCASMismatch) || !bytes.Equal(rs[1].Value, a) {
		t.Fatalf("losing CAS: (%q, %v), want witness %q with ErrCASMismatch", rs[1].Value, rs[1].Err, a)
	}
	if rs[2].Err != nil || !bytes.Equal(rs[2].Value, b) {
		t.Fatalf("winning CAS: (%q, %v), want witness %q", rs[2].Value, rs[2].Err, b)
	}
	if rs[3].Err != nil || !bytes.Equal(rs[3].Value, cluster.EncodeCounter(cv)) {
		t.Fatalf("FAA: (%x, %v), want old value %d", rs[3].Value, rs[3].Err, cv)
	}
	if rs[4].Err != nil || rs[5].Err != nil {
		t.Fatalf("siblings of the failed ops: put %v, get %v", rs[4].Err, rs[5].Err)
	}

	// The mutations landed.
	if v, err := kv.Get(22); err != nil || string(v) != "swapped!" {
		t.Fatalf("key 22 after CAS: %q %v", v, err)
	}
	if v, err := kv.Get(24); err != nil || string(v) != "fresh" {
		t.Fatalf("key 24 after put: %q %v", v, err)
	}
	if got, err := kv.Get(23); err != nil || !bytes.Equal(got, cluster.EncodeCounter(cv+2)) {
		t.Fatalf("key 23 after FAA: %x %v, want %d", got, err, cv+2)
	}

	// The direct RMW facade calls share the same semantics.
	w, swapped, err := kv.CompareAndSwap(23, cluster.EncodeCounter(cv+2), cluster.EncodeCounter(100))
	if err != nil || !swapped {
		t.Fatalf("facade CAS: (%x, %v, %v)", w, swapped, err)
	}
	if old, err := kv.FetchAndAdd(23, 5); err != nil || old != 100 {
		t.Fatalf("facade FAA: (%d, %v), want (100, nil)", old, err)
	}
}
