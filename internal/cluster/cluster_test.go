package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// newTestCluster builds, populates and (for ccKVS) warms a small cluster.
func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.Populate()
	if cfg.System == CCKVS {
		c.InstallHotSet(DefaultHotSet(cfg.CacheItems))
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, System: CCKVS}); err == nil {
		t.Fatal("ccKVS without cache must be rejected")
	}
	if _, err := New(Config{Nodes: 3, System: Base, CacheItems: 10}); err == nil {
		t.Fatal("baseline with cache must be rejected")
	}
	if _, err := New(Config{Nodes: 9999}); err == nil {
		t.Fatal("absurd node count must be rejected")
	}
}

func TestSystemString(t *testing.T) {
	if BaseEREW.String() != "Base-EREW" || Base.String() != "Base" || CCKVS.String() != "ccKVS" {
		t.Fatal("system names wrong")
	}
	if System(9).String() == "" {
		t.Fatal("unknown system must render")
	}
}

func TestPopulateAndShardIntegrity(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 3, System: Base, NumKeys: 2000})
	if err := c.VerifyShardIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Keys must spread over all shards.
	for i := 0; i < 3; i++ {
		if c.Node(i).kvs.Len() == 0 {
			t.Fatalf("node %d owns no keys", i)
		}
	}
}

func TestBaseLocalAndRemoteGet(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 3, System: Base, NumKeys: 300})
	// Every key must be readable from every node (local or via RPC).
	for key := uint64(0); key < 300; key += 17 {
		for n := 0; n < 3; n++ {
			v, err := c.Node(n).Get(key)
			if err != nil {
				t.Fatalf("node %d key %d: %v", n, key, err)
			}
			if len(v) != 40 {
				t.Fatalf("value size %d", len(v))
			}
		}
	}
	// Both local and remote paths must have been exercised.
	var local, remote uint64
	for i := 0; i < 3; i++ {
		local += c.Node(i).LocalOps.Load()
		remote += c.Node(i).RemoteOps.Load()
	}
	if local == 0 || remote == 0 {
		t.Fatalf("local=%d remote=%d; both paths must be hit", local, remote)
	}
}

func TestBasePutVisibleEverywhere(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 3, System: Base, NumKeys: 100})
	want := bytes.Repeat([]byte{0xAB}, 40)
	if err := c.Node(1).Put(5, want); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		v, err := c.Node(n).Get(5)
		if err != nil || !bytes.Equal(v, want) {
			t.Fatalf("node %d: %v %v", n, v, err)
		}
	}
}

func TestBaseEREWPartitions(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 2, System: BaseEREW, NumKeys: 500, KVSPartitions: 4})
	for i := 0; i < 2; i++ {
		if c.Node(i).kvs.NumPartitions() != 4 {
			t.Fatalf("node %d partitions = %d", i, c.Node(i).kvs.NumPartitions())
		}
	}
	v, err := c.Node(0).Get(123)
	if err != nil || len(v) != 40 {
		t.Fatalf("get through EREW: %v %v", v, err)
	}
}

func TestCCKVSReadsHitCache(t *testing.T) {
	c := newTestCluster(t, Config{
		Nodes: 3, System: CCKVS, Protocol: core.SC,
		NumKeys: 1000, CacheItems: 50,
	})
	// Hot keys (rank < 50) must be cache hits on every node.
	for n := 0; n < 3; n++ {
		if _, err := c.Node(n).Get(7); err != nil {
			t.Fatal(err)
		}
		if c.Node(n).CacheHits.Load() == 0 {
			t.Fatalf("node %d: hot read did not hit the cache", n)
		}
	}
	// Cold keys miss.
	before := c.Node(0).CacheMisses.Load()
	if _, err := c.Node(0).Get(999); err != nil {
		t.Fatal(err)
	}
	if c.Node(0).CacheMisses.Load() != before+1 {
		t.Fatal("cold read did not miss")
	}
}

func TestCCKVSSCWritePropagates(t *testing.T) {
	c := newTestCluster(t, Config{
		Nodes: 3, System: CCKVS, Protocol: core.SC,
		NumKeys: 1000, CacheItems: 50,
	})
	want := bytes.Repeat([]byte{0x5C}, 40)
	if err := c.Node(2).Put(3, want); err != nil {
		t.Fatal(err)
	}
	// SC propagation is asynchronous: poll each replica until convergence.
	for n := 0; n < 3; n++ {
		deadline := time.Now().Add(5 * time.Second)
		for {
			v, err := c.Node(n).Get(3)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(v, want) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never converged: %v", n, v)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Update traffic must have been generated (2 updates, one per peer).
	if got := c.FabricStats().Traffic.Packets(metrics.ClassUpdate); got != 2 {
		t.Fatalf("update packets = %d, want 2", got)
	}
}

func TestCCKVSLinWriteSynchronous(t *testing.T) {
	c := newTestCluster(t, Config{
		Nodes: 4, System: CCKVS, Protocol: core.Lin,
		NumKeys: 1000, CacheItems: 20,
	})
	want := bytes.Repeat([]byte{0x11}, 40)
	if err := c.Node(0).Put(2, want); err != nil {
		t.Fatal(err)
	}
	// Lin: the moment Put returns, no node may serve the old value; reads
	// either return the new value or stall internally until the update
	// lands — Get handles the stall, so every Get must return the new
	// value immediately.
	for n := 0; n < 4; n++ {
		v, err := c.Node(n).Get(2)
		if err != nil || !bytes.Equal(v, want) {
			t.Fatalf("node %d after Lin put: %v %v", n, v, err)
		}
	}
	st := c.FabricStats().Traffic
	if st.Packets(metrics.ClassInvalidate) != 3 {
		t.Fatalf("invalidations = %d, want 3", st.Packets(metrics.ClassInvalidate))
	}
	if st.Packets(metrics.ClassAck) != 3 {
		t.Fatalf("acks = %d, want 3", st.Packets(metrics.ClassAck))
	}
	if st.Packets(metrics.ClassUpdate) != 3 {
		t.Fatalf("updates = %d, want 3", st.Packets(metrics.ClassUpdate))
	}
}

func TestCCKVSWriteMissForwardsHome(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newTestCluster(t, Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 500, CacheItems: 10,
			})
			want := bytes.Repeat([]byte{0x77}, 40)
			cold := uint64(400) // rank 400 is not in the 10-item hot set
			if err := c.Node(0).Put(cold, want); err != nil {
				t.Fatal(err)
			}
			v, err := c.Node(1).Get(cold)
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("cold write lost: %v %v", v, err)
			}
		})
	}
}

func TestCCKVSConcurrentWritersConverge(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newTestCluster(t, Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 500, CacheItems: 5,
			})
			const key = 1
			done := make(chan error, 3)
			for n := 0; n < 3; n++ {
				go func(n int) {
					var err error
					for i := 0; i < 20 && err == nil; i++ {
						val := bytes.Repeat([]byte{byte(n*32 + i)}, 40)
						err = c.Node(n).Put(key, val)
					}
					done <- err
				}(n)
			}
			for i := 0; i < 3; i++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			// After quiescence all replicas agree.
			deadline := time.Now().Add(5 * time.Second)
			for {
				v0, err := c.Node(0).Get(key)
				if err != nil {
					t.Fatal(err)
				}
				agree := true
				for n := 1; n < 3; n++ {
					v, err := c.Node(n).Get(key)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(v, v0) {
						agree = false
					}
				}
				if agree {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("replicas never converged")
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

func TestRunMixedWorkload(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"Base", Config{Nodes: 3, System: Base, NumKeys: 2000}},
		{"BaseEREW", Config{Nodes: 3, System: BaseEREW, NumKeys: 2000}},
		{"ccKVS-SC", Config{Nodes: 3, System: CCKVS, Protocol: core.SC, NumKeys: 2000, CacheItems: 64}},
		{"ccKVS-Lin", Config{Nodes: 3, System: CCKVS, Protocol: core.Lin, NumKeys: 2000, CacheItems: 64}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCluster(t, tc.cfg)
			res, err := c.Run(RunOptions{
				Clients:      6,
				OpsPerClient: 400,
				Workload: workload.Config{
					NumKeys: 2000, Alpha: 0.99, WriteRatio: 0.05, ValueSize: 40, Seed: 42,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 2400 || res.Throughput <= 0 {
				t.Fatalf("result: %+v", res)
			}
			if res.ReadLat.Count == 0 || res.WriteLat.Count == 0 {
				t.Fatal("latency histograms empty")
			}
			if tc.cfg.System == CCKVS && res.HitRate() < 0.3 {
				// Top-64 of 2000 keys at alpha=.99 carries ~45% of accesses.
				t.Fatalf("hit rate %.3f implausibly low", res.HitRate())
			}
			t.Log(res.String())
		})
	}
}

func TestRunPropagatesWorkloadError(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 2, System: Base, NumKeys: 100})
	if _, err := c.Run(RunOptions{Workload: workload.Config{WriteRatio: 2}}); err == nil {
		t.Fatal("invalid workload must error")
	}
}

func TestLinTrafficHasAllClasses(t *testing.T) {
	c := newTestCluster(t, Config{
		Nodes: 3, System: CCKVS, Protocol: core.Lin,
		NumKeys: 1000, CacheItems: 32, CreditBatch: 2,
	})
	_, err := c.Run(RunOptions{
		Clients:      4,
		OpsPerClient: 300,
		Workload:     workload.Config{NumKeys: 1000, Alpha: 0.99, WriteRatio: 0.2, ValueSize: 40, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := c.FabricStats().Traffic
	for _, class := range []metrics.MsgClass{
		metrics.ClassCacheMiss, metrics.ClassUpdate,
		metrics.ClassInvalidate, metrics.ClassAck, metrics.ClassFlowControl,
	} {
		if tr.Bytes(class) == 0 {
			t.Fatalf("no traffic recorded for %v", class)
		}
	}
	// The Figure 11 sanity: invalidations and acks are header-only and
	// must cost less than the value-carrying updates.
	if tr.Bytes(metrics.ClassAck) >= tr.Bytes(metrics.ClassUpdate) {
		t.Fatalf("acks (%d B) should be cheaper than updates (%d B)",
			tr.Bytes(metrics.ClassAck), tr.Bytes(metrics.ClassUpdate))
	}
}

func TestEpochChangeWritesBackDirtyItems(t *testing.T) {
	c := newTestCluster(t, Config{
		Nodes: 3, System: CCKVS, Protocol: core.SC,
		NumKeys: 500, CacheItems: 8,
	})
	want := bytes.Repeat([]byte{0xEE}, 40)
	if err := c.Node(0).Put(3, want); err != nil {
		t.Fatal(err)
	}
	// New epoch evicts key 3 (hot set shifts to ranks 100..107).
	newHot := make([]uint64, 8)
	for i := range newHot {
		newHot[i] = uint64(100 + i)
	}
	c.InstallHotSet(newHot)
	// The dirty value must have been flushed to the home shard.
	home := c.Node(c.HomeNode(3))
	v, _, err := home.kvs.Get(3, nil)
	if err != nil || !bytes.Equal(v, want) {
		t.Fatalf("write-back lost: %v %v", v, err)
	}
	// And the key now misses in every cache.
	if c.Node(0).cache.Contains(3) {
		t.Fatal("evicted key still cached")
	}
}

func TestHomeNodeStableAndSpread(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 5, System: Base, NumKeys: 100})
	counts := make([]int, 5)
	for k := uint64(0); k < 1000; k++ {
		h := c.HomeNode(k)
		if h != c.HomeNode(k) {
			t.Fatal("home assignment unstable")
		}
		counts[h]++
	}
	for n, cnt := range counts {
		if cnt < 100 {
			t.Fatalf("node %d owns only %d/1000 keys", n, cnt)
		}
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 2, System: Base, NumKeys: 50})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultHotSet(t *testing.T) {
	hs := DefaultHotSet(4)
	for i, k := range hs {
		if k != uint64(i) {
			t.Fatalf("hot set = %v", hs)
		}
	}
}

func TestRunResultString(t *testing.T) {
	r := RunResult{System: "Base", Throughput: 123.4}
	if r.String() == "" {
		t.Fatal("empty summary")
	}
	if r.HitRate() != 0 {
		t.Fatal("hit rate of no ops must be 0")
	}
}

// Session-order smoke test at cluster level: a session's own writes must be
// immediately visible to itself under both protocols (read-your-writes
// within the per-key session order of §5.1).
func TestReadYourWrites(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newTestCluster(t, Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 200, CacheItems: 16,
			})
			for i := 0; i < 10; i++ {
				want := bytes.Repeat([]byte{byte(0x40 + i)}, 40)
				if err := c.Node(1).Put(0, want); err != nil {
					t.Fatal(err)
				}
				v, err := c.Node(1).Get(0)
				if err != nil || !bytes.Equal(v, want) {
					t.Fatalf("iteration %d: read-your-write failed: %v %v", i, v, err)
				}
			}
		})
	}
}

func BenchmarkClusterGetHot(b *testing.B) {
	c, err := New(Config{Nodes: 3, System: CCKVS, Protocol: core.SC, NumKeys: 10000, CacheItems: 100})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.Populate()
	c.InstallHotSet(DefaultHotSet(100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Node(i % 3).Get(uint64(i % 100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterPutLin(b *testing.B) {
	c, err := New(Config{Nodes: 3, System: CCKVS, Protocol: core.Lin, NumKeys: 10000, CacheItems: 100})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.Populate()
	c.InstallHotSet(DefaultHotSet(100))
	val := make([]byte, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Node(i%3).Put(uint64(i%100), val); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf // keep fmt for future debug use

// UD datagrams are unordered; the protocols must tolerate arbitrary message
// reordering on real executions, not just in the model checker. These runs
// route every packet through an adversarial shuffle buffer.
func TestProtocolsTolerateReordering(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newTestCluster(t, Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 1000, CacheItems: 32,
				ReorderDepth: 12, ReorderSeed: 99,
			})
			res, err := c.Run(RunOptions{
				Clients:      6,
				OpsPerClient: 300,
				Workload: workload.Config{
					NumKeys: 1000, Alpha: 0.99, WriteRatio: 0.1, ValueSize: 40, Seed: 5,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 1800 {
				t.Fatalf("ops = %d", res.Ops)
			}
			// After quiescence all replicas must converge on hot keys.
			deadline := time.Now().Add(10 * time.Second)
			for key := uint64(0); key < 8; key++ {
				for {
					ref, err := c.Node(0).Get(key)
					if err != nil {
						t.Fatal(err)
					}
					agree := true
					for n := 1; n < 3; n++ {
						v, err := c.Node(n).Get(key)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(v, ref) {
							agree = false
						}
					}
					if agree {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("key %d never converged under reordering", key)
					}
					time.Sleep(time.Millisecond)
				}
			}
		})
	}
}

// Lin's guarantee must hold even with the adversarial transport: after Put
// returns, no node serves the old value.
func TestLinSynchronousUnderReordering(t *testing.T) {
	c := newTestCluster(t, Config{
		Nodes: 4, System: CCKVS, Protocol: core.Lin,
		NumKeys: 500, CacheItems: 16,
		ReorderDepth: 8, ReorderSeed: 3,
	})
	for i := 0; i < 30; i++ {
		want := bytes.Repeat([]byte{byte(0x80 + i)}, 40)
		if err := c.Node(i%4).Put(2, want); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 4; n++ {
			v, err := c.Node(n).Get(2)
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("round %d node %d: %v %v", i, n, v, err)
			}
		}
	}
}

// Figure 4 design space: primary- and sequencer-based write serialization
// must preserve SC semantics (convergence, read-your-writes at the primary
// path) while funneling serialization through node 0.
func TestSerializationDesignSpace(t *testing.T) {
	for _, ser := range []Serialization{SerializationPrimary, SerializationSequencer} {
		t.Run(ser.String(), func(t *testing.T) {
			c := newTestCluster(t, Config{
				Nodes: 3, System: CCKVS, Protocol: core.SC,
				NumKeys: 500, CacheItems: 16, Serialization: ser,
			})
			// Concurrent writers from all nodes to one hot key.
			done := make(chan error, 3)
			for n := 0; n < 3; n++ {
				go func(n int) {
					var err error
					for i := 0; i < 15 && err == nil; i++ {
						err = c.Node(n).Put(1, bytes.Repeat([]byte{byte(n*16 + i)}, 40))
					}
					done <- err
				}(n)
			}
			for i := 0; i < 3; i++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			// Convergence at quiescence.
			deadline := time.Now().Add(5 * time.Second)
			for {
				ref, err := c.Node(0).Get(1)
				if err != nil {
					t.Fatal(err)
				}
				agree := true
				for n := 1; n < 3; n++ {
					v, err := c.Node(n).Get(1)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(v, ref) {
						agree = false
					}
				}
				if agree {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("replicas never converged")
				}
				time.Sleep(time.Millisecond)
			}
			// Cold keys still forward to their home shards.
			want := bytes.Repeat([]byte{0x3A}, 40)
			if err := c.Node(1).Put(400, want); err != nil {
				t.Fatal(err)
			}
			v, err := c.Node(2).Get(400)
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("cold write lost: %v %v", v, err)
			}
		})
	}
}

// Under primary serialization, every hot write executes on node 0's cache.
func TestPrimarySerializesAtNodeZero(t *testing.T) {
	c := newTestCluster(t, Config{
		Nodes: 3, System: CCKVS, Protocol: core.SC,
		NumKeys: 500, CacheItems: 16, Serialization: SerializationPrimary,
	})
	for n := 0; n < 3; n++ {
		for i := 0; i < 5; i++ {
			if err := c.Node(n).Put(2, bytes.Repeat([]byte{byte(n + i)}, 40)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// All 15 SC cache writes happened on the primary's cache.
	if got := c.Node(0).cache.Stats().WritesSC.Load(); got != 15 {
		t.Fatalf("primary executed %d writes, want 15", got)
	}
	for n := 1; n < 3; n++ {
		if got := c.Node(n).cache.Stats().WritesSC.Load(); got != 0 {
			t.Fatalf("node %d executed %d writes, want 0", n, got)
		}
	}
}

// The sequencer hands out strictly increasing per-key timestamps, so
// sequenced writes serialize even when issued concurrently.
func TestSequencerTimestampsMonotone(t *testing.T) {
	c := newTestCluster(t, Config{
		Nodes: 3, System: CCKVS, Protocol: core.SC,
		NumKeys: 500, CacheItems: 16, Serialization: SerializationSequencer,
	})
	var prev uint32
	for i := 0; i < 10; i++ {
		ts, err := c.Node(1).SeqTS(0, 7)
		if err != nil {
			t.Fatal(err)
		}
		if ts.Clock <= prev {
			t.Fatalf("sequencer clock not monotone: %d then %d", prev, ts.Clock)
		}
		prev = ts.Clock
	}
	// Independent keys have independent clocks.
	ts2, err := c.Node(1).SeqTS(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ts2.Clock != 1 {
		t.Fatalf("fresh key clock = %d, want 1", ts2.Clock)
	}
}

func TestSerializationValidation(t *testing.T) {
	if _, err := New(Config{
		Nodes: 3, System: Base, Serialization: SerializationPrimary,
	}); err == nil {
		t.Fatal("primary serialization without ccKVS-SC must be rejected")
	}
	if _, err := New(Config{
		Nodes: 3, System: CCKVS, Protocol: core.Lin, CacheItems: 8,
		Serialization: SerializationSequencer,
	}); err == nil {
		t.Fatal("sequencer with Lin must be rejected")
	}
}

func TestSerializationString(t *testing.T) {
	if SerializationDistributed.String() != "distributed" ||
		SerializationPrimary.String() != "primary" ||
		SerializationSequencer.String() != "sequencer" {
		t.Fatal("serialization names wrong")
	}
}

// MultiGet must agree with per-key Get across cached, local and remote
// paths, under both protocols.
func TestMultiGetMatchesGet(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newTestCluster(t, Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 600, CacheItems: 16,
			})
			// Mix of hot (cached), and cold keys scattered over all homes.
			keys := []uint64{0, 1, 7, 15, 100, 101, 250, 333, 420, 599}
			for n := 0; n < 3; n++ {
				got, err := c.Node(n).MultiGet(keys)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(keys) {
					t.Fatalf("got %d values for %d keys", len(got), len(keys))
				}
				for i, key := range keys {
					want, err := c.Node(n).Get(key)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got[i], want) {
						t.Fatalf("node %d key %d: MultiGet=%v Get=%v", n, key, got[i], want)
					}
				}
			}
		})
	}
}

// A batch spanning hot and cold keys must write through the protocol for the
// hot ones and through coalesced home-shard forwards for the cold ones, and
// every value must be visible cluster-wide afterwards.
func TestMultiPutVisibleEverywhere(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newTestCluster(t, Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 600, CacheItems: 16,
			})
			keys := []uint64{2, 5, 150, 300, 450, 599} // 2,5 hot; rest cold
			values := make([][]byte, len(keys))
			for i := range keys {
				values[i] = bytes.Repeat([]byte{byte(0xC0 + i)}, 40)
			}
			if err := c.Node(1).MultiPut(keys, values); err != nil {
				t.Fatal(err)
			}
			for i, key := range keys {
				for n := 0; n < 3; n++ {
					// SC propagates hot writes asynchronously; poll briefly.
					deadline := time.Now().Add(5 * time.Second)
					for {
						v, err := c.Node(n).Get(key)
						if err != nil {
							t.Fatal(err)
						}
						if bytes.Equal(v, values[i]) {
							break
						}
						if time.Now().After(deadline) {
							t.Fatalf("node %d key %d never saw batch value", n, key)
						}
						time.Sleep(time.Millisecond)
					}
				}
			}
		})
	}
}

// MultiGet on a missing key yields a nil value, not an error.
func TestMultiGetMissingKeyIsNil(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 2, System: Base, NumKeys: 100})
	got, err := c.Node(0).MultiGet([]uint64{5, 5000, 7, 6000})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == nil || got[2] == nil {
		t.Fatal("present keys came back nil")
	}
	if got[1] != nil || got[3] != nil {
		t.Fatal("absent keys came back non-nil")
	}
}

// The batched run harness must drive the same number of ops and leave the
// cluster consistent; large uniform batches must coalesce remote requests
// into visibly fewer packets.
func TestRunBatchedWorkload(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 3, System: Base, NumKeys: 2000})
	res, err := c.Run(RunOptions{
		Clients:      4,
		OpsPerClient: 400,
		BatchSize:    32,
		Workload: workload.Config{
			NumKeys: 2000, Alpha: 0, WriteRatio: 0.05, ValueSize: 40, Seed: 11,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1600 || res.Throughput <= 0 {
		t.Fatalf("result: %+v", res)
	}
	var msgs, pkts uint64
	for i := 0; i < 3; i++ {
		msgs += c.Node(i).RemoteReqMsgs.Load()
		pkts += c.Node(i).RemoteReqPackets.Load()
	}
	if msgs == 0 || pkts == 0 {
		t.Fatalf("no remote traffic recorded (msgs=%d pkts=%d)", msgs, pkts)
	}
	if float64(msgs)/float64(pkts) < 2 {
		t.Fatalf("uniform batched run coalesced only %.2f reqs/packet (msgs=%d pkts=%d)",
			float64(msgs)/float64(pkts), msgs, pkts)
	}
	t.Logf("coalescing factor: %.1f reqs/packet", float64(msgs)/float64(pkts))
}
