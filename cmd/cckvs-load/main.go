// Command cckvs-load drives a multi-process cckvs-node deployment through
// the session layer: it bootstraps the hot set, runs a YCSB-style Zipfian
// workload against every node (the paper's black-box load balancing),
// optionally applies an online hot-set refresh in the middle of the run,
// and can finish with a consistency check that fails on any stale or lost
// read — the multi-process counterpart of cmd/cckvs-verify.
//
// Example (after starting three cckvs-node processes):
//
//	cckvs-load -nodes 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//	           -keys 16384 -hotset 64 -alpha 0.99 -writes 0.05 \
//	           -ops 5000 -clients 4 -refresh-at 0.5 -verify -min-hit-rate 0.2
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and drives the deployment end to end, returning the
// process exit code (factored out of main so the CLI is testable).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cckvs-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodeList   = fs.String("nodes", "127.0.0.1:7000", "comma-separated node addresses, ordered by node id")
		keys       = fs.Uint64("keys", 16384, "keyspace size (must match the nodes' -keys)")
		alpha      = fs.Float64("alpha", 0.99, "zipfian exponent (0 = uniform)")
		writes     = fs.Float64("writes", 0.05, "write ratio")
		putFrac    = fs.Float64("put-frac", -1, "put fraction of the workload (overrides -writes when >= 0; e.g. 0.5 drives the write-heavy consistency-plane mix)")
		rmwFrac    = fs.Float64("rmw-frac", 0, "fraction of ops issued as atomic fetch-and-adds (start the nodes with -value 8 so populated values decode as counters; forces -value 8 here)")
		ops        = fs.Int("ops", 5000, "operations per client")
		clients    = fs.Int("clients", 4, "concurrent clients")
		batch      = fs.Int("batch", 1, "operations per session frame (>1 drives the batched v2 wire format)")
		valSize    = fs.Int("value", 40, "value size in bytes")
		hotset     = fs.Int("hotset", 0, "install ranks [0,hotset) as the hot set before the run (0 = skip)")
		refreshAt  = fs.Float64("refresh-at", 0, "apply an online hot-set refresh after this fraction of ops (0 = never)")
		refShift   = fs.Int("refresh-shift", 0, "ranks to shift the hot window at the mid-run refresh (default hotset/4)")
		verify     = fs.Bool("verify", false, "run the consistency check after the workload")
		verKeys    = fs.Int("verify-keys", 12, "keys exercised by the consistency check")
		verRounds  = fs.Int("verify-rounds", 25, "sequential writes per key in the consistency check")
		minHitRate = fs.Float64("min-hit-rate", 0, "fail unless the aggregate cache hit rate reaches this")
		waitReady  = fs.Duration("wait", 15*time.Second, "how long to wait for all nodes to answer pings")
		timeout    = fs.Duration("timeout", 10*time.Second, "per-request timeout")
		chaosDown  = fs.Int("chaos-down", -1, "chaos mode: node id that dies mid-run; the workload reroutes around it, tolerates its failure window, and the checker verifies the survivors (-1 = off)")
		chaosPid   = fs.Int("chaos-kill-pid", 0, "chaos mode: OS pid to SIGKILL once chaos-at of the ops executed (0 = the node was/will be killed externally; tolerance starts at workload start)")
		chaosAt    = fs.Float64("chaos-at", 0.5, "chaos mode: fraction of total ops after which chaos-kill-pid is killed")
		replicas   = fs.Int("replicas", 1, "shard replicas per key (must match the nodes' -replicas); with >1 a single node death must never answer home-down — the promoted backup serves")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *rmwFrac > 0 {
		if *chaosDown >= 0 {
			// Chaos retries re-run failed ops/frames whole, which is safe for
			// last-write-wins puts but would double-apply a fetch-and-add.
			fmt.Fprintln(stderr, "-rmw-frac cannot be combined with -chaos-down (retrying an RMW could apply it twice)")
			return 2
		}
		if *valSize != 8 {
			fmt.Fprintf(stdout, "rmw-frac > 0: forcing -value 8 (the counter encoding)\n")
			*valSize = 8
		}
	}

	addrs := strings.Split(*nodeList, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	nodes := len(addrs)

	cl, err := cluster.DialTCP(250, addrs)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer cl.Close()
	cl.SetTimeout(*timeout)
	if err := cl.WaitReady(*waitReady); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "deployment ready: %d nodes\n", nodes)

	if *hotset > 0 {
		promoted, demoted, err := cl.Refresh(0, hotWindow(0, *hotset))
		if err != nil {
			fmt.Fprintf(stderr, "hot-set install: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "hot set installed: %d keys (promoted=%d demoted=%d)\n", *hotset, promoted, demoted)
	}

	if *chaosDown >= nodes {
		fmt.Fprintf(stderr, "-chaos-down %d out of range for %d nodes\n", *chaosDown, nodes)
		return 2
	}
	if *putFrac >= 0 {
		*writes = *putFrac
	}
	shifted, code := runWorkload(cl, workloadOpts{
		nodes: nodes, keys: *keys, alpha: *alpha, writes: *writes, rmwFrac: *rmwFrac,
		ops: *ops, clients: *clients, batch: *batch, valSize: *valSize,
		hotset: *hotset, refreshAt: *refreshAt, refShift: *refShift,
		chaosDown: *chaosDown, chaosPid: *chaosPid, chaosAt: *chaosAt,
		replicas: *replicas,
	}, stdout, stderr)
	if code != 0 {
		return code
	}

	if *verify {
		shift := *refShift
		if shift == 0 {
			shift = *hotset / 4
		}
		if *chaosDown >= 0 {
			// Chaos runs exercise the view-change concurrency, not the epoch
			// change; a refresh mid-check would also try to move dead-homed
			// keys (a no-op by design, but it muddies the assertion).
			shift = 0
		}
		if err := runVerify(cl, verifyOpts{
			nodes: nodes, keys: *keys, verifyKeys: *verKeys, rounds: *verRounds,
			hotset: *hotset, shift: shift, workloadShifted: shifted,
			chaosDown: *chaosDown, replicas: *replicas,
		}, stdout); err != nil {
			fmt.Fprintf(stderr, "consistency check FAILED: %v\n", err)
			return 1
		}
	}

	return reportStats(cl, nodes, *hotset, *minHitRate, *chaosDown, stdout, stderr)
}

// hotWindow returns ranks [from, from+n).
func hotWindow(from, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = uint64(from + i)
	}
	return w
}

type workloadOpts struct {
	nodes     int
	keys      uint64
	alpha     float64
	writes    float64
	rmwFrac   float64 // fraction of ops issued as atomic fetch-and-adds
	ops       int
	clients   int
	batch     int // ops per session frame; > 1 uses the batched wire format
	valSize   int
	hotset    int
	refreshAt float64
	refShift  int
	// Chaos orchestration: chaosDown is the node that dies mid-run (-1 =
	// off); chaosPid, when non-zero, is SIGKILLed once chaosAt of the total
	// ops executed. See chaosState.
	chaosDown int
	chaosPid  int
	chaosAt   float64
	// replicas mirrors the deployment's -replicas; it flips the chaos
	// checker's failure model (see chaosState.replicated).
	replicas int
}

// chaosState tracks the kill: clients reroute around the downed node and
// retry failures within a bounded grace window after it — the deployment
// must converge to clean survivor-side service within it. The unreplicated
// failure model additionally tolerates ErrHomeDown outright (fail-fast on
// dead-homed keys IS the correct post-kill behavior); with shard replication
// a single node death must never answer home-down — ops on keys homed at
// the victim must succeed via the promoted backup, so ErrHomeDown falls
// through to the grace-window retry and fails the run if it persists.
type chaosState struct {
	node       int
	replicated bool         // shard replication on: home-down is a failure, not a fact of life
	killedAt   atomic.Int64 // unixnano; 0 = not yet killed
	down       []atomic.Bool
	homeDown   atomic.Uint64 // ops answered with the home-down status
	retried    atomic.Uint64 // ops retried within the grace window
}

const chaosGrace = 10 * time.Second

// kill SIGKILLs the victim (if a pid was given) and flips the routing mask.
func (c *chaosState) kill(pid int, stdout io.Writer) {
	if pid > 0 {
		if p, err := os.FindProcess(pid); err == nil {
			_ = p.Kill()
		}
	}
	c.killedAt.Store(time.Now().UnixNano())
	c.down[c.node].Store(true)
	fmt.Fprintf(stdout, "chaos: killed node %d (pid %d)\n", c.node, pid)
}

// withinGrace reports whether the post-kill tolerance window is open.
func (c *chaosState) withinGrace() bool {
	at := c.killedAt.Load()
	return at != 0 && time.Since(time.Unix(0, at)) < chaosGrace
}

// route returns the first non-down node at or after start (round-robin load
// balancing that skips excised members).
func (c *chaosState) route(start, nodes int) int {
	for j := 0; j < nodes; j++ {
		n := (start + j) % nodes
		if !c.down[n].Load() {
			return n
		}
	}
	return start % nodes
}

// runWorkload drives the Zipfian phase, optionally applying one online
// hot-set refresh once the deployment has executed refreshAt of the total
// operations — while the clients keep hammering it. shifted reports whether
// that refresh actually ran (the verifier picks its own refresh target so
// the epoch change always has a real delta).
func runWorkload(cl *cluster.Client, o workloadOpts, stdout, stderr io.Writer) (shifted bool, code int) {
	gen, err := workload.New(workload.Config{
		NumKeys: o.keys, Alpha: o.alpha, WriteRatio: o.writes, RMWFrac: o.rmwFrac,
		ValueSize: o.valSize, Seed: 42,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return false, 1
	}

	lat := metrics.NewHistogram()
	var done atomic.Uint64
	var firstErr error
	var errMu sync.Mutex
	fail := func(client int, err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("client %d: %w", client, err)
		}
		errMu.Unlock()
	}

	total := uint64(o.clients * o.ops)
	refreshTrigger := make(chan struct{}, 1)
	threshold := uint64(float64(total) * o.refreshAt)

	var chaos *chaosState
	var chaosThreshold uint64
	var killOnce sync.Once
	if o.chaosDown >= 0 {
		chaos = &chaosState{node: o.chaosDown, replicated: o.replicas > 1, down: make([]atomic.Bool, o.nodes)}
		if o.chaosPid > 0 {
			chaosThreshold = uint64(float64(total) * o.chaosAt)
			if chaosThreshold == 0 {
				chaosThreshold = 1
			}
		} else {
			// External kill (the script owns the SIGKILL): the tolerance
			// window opens at workload start, as the flag documents, and
			// re-opens whenever an op fails on the victim (a kill later than
			// the initial grace is learned from its first failure).
			chaos.killedAt.Store(time.Now().UnixNano())
		}
	}

	// progress advances the shared op counter by a whole frame and fires the
	// crossing-triggered events. The crossing tests (n >= t && n-m < t) fire
	// exactly once however many ops a frame carries; the checks stay
	// independent — folding them into if/else would silently skip the kill
	// whenever the two thresholds land in the same frame.
	progress := func(m uint64) {
		n := done.Add(m)
		if threshold > 0 && n >= threshold && n-m < threshold {
			select {
			case refreshTrigger <- struct{}{}:
			default:
			}
		}
		if chaosThreshold > 0 && n >= chaosThreshold && n-m < chaosThreshold {
			killOnce.Do(func() { chaos.kill(o.chaosPid, stdout) })
		}
	}
	// retry decides what to do with a failed op or frame routed to node:
	// reroute-and-retry in chaos mode (marking an observed victim death,
	// tolerating survivor hiccups inside the grace window), give up
	// otherwise.
	retry := func(node, attempt int) bool {
		if chaos == nil {
			return false
		}
		// An op routed to the victim: note the death (external kills are
		// learned here — the grace window slides to the observed failure),
		// reroute, retry.
		if node == o.chaosDown {
			chaos.down[node].Store(true)
			chaos.killedAt.Store(time.Now().UnixNano())
			chaos.retried.Add(1)
			return true
		}
		// Collateral failure on a survivor (a server-side RPC caught
		// mid-flip, a Lin write racing the excision): tolerated within the
		// grace window — the deployment must converge to clean service
		// inside it.
		if chaos.withinGrace() && attempt < 1000 {
			chaos.retried.Add(1)
			time.Sleep(10 * time.Millisecond)
			return true
		}
		return false
	}

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := gen.Clone(uint64(id))
			if o.batch > 1 {
				runBatchedClient(cl, g, o, id, lat, chaos, progress, retry, fail)
				return
			}
			for i := 0; i < o.ops; i++ {
				op := g.Next()
				for attempt := 0; ; attempt++ {
					// Round-robin load balancing; chaos mode skips downed nodes.
					node := (id + i + attempt) % o.nodes
					if chaos != nil {
						node = chaos.route(node, o.nodes)
					}
					t0 := time.Now()
					var err error
					switch op.Type {
					case workload.Put:
						err = cl.Put(node, op.Key, op.Value)
					case workload.FAA:
						// A missing key reads as counter 0, so no NotFound
						// tolerance is needed on the RMW path.
						_, err = cl.FetchAndAdd(node, op.Key, op.Delta)
					default:
						_, err = cl.Get(node, op.Key)
						if errors.Is(err, store.ErrNotFound) {
							err = nil // keyspace mismatch tolerance on cold reads
						}
					}
					lat.Record(uint64(time.Since(t0).Nanoseconds()))
					if err == nil {
						break
					}
					if chaos != nil && !chaos.replicated && errors.Is(err, cluster.ErrHomeDown) {
						// A dead-homed key answering home-down IS the correct
						// post-kill behavior when unreplicated: count it and
						// move on. (Replicated: fall through to the grace
						// retry — the promoted backup must serve.)
						chaos.homeDown.Add(1)
						break
					}
					if retry(node, attempt) {
						continue
					}
					fail(id, err)
					return
				}
				progress(1)
			}
		}(c)
	}

	// Online refresh under full client load: shift the hot window by
	// refShift ranks through an arbitrary node, exactly the §4 epoch change.
	// workloadDone aborts the refresher when the threshold was never reached
	// (a client failed, or refresh-at is past the end) — it must not run a
	// pointless epoch change after the workload.
	var refreshErr error
	var didRefresh atomic.Bool
	refreshed := make(chan struct{})
	workloadDone := make(chan struct{})
	if threshold > 0 && o.hotset > 0 {
		go func() {
			defer close(refreshed)
			select {
			case <-workloadDone:
				// The workload may have reached the threshold in its final
				// ops, leaving both channels ready; honor a fired trigger
				// with priority so a short run cannot randomly skip the
				// refresh it earned.
				select {
				case <-refreshTrigger:
				default:
					return
				}
			case <-refreshTrigger:
			}
			shift := o.refShift
			if shift == 0 {
				shift = o.hotset / 4
			}
			promoted, demoted, err := cl.Refresh(1%o.nodes, hotWindow(shift, o.hotset))
			if err != nil {
				refreshErr = err
				return
			}
			didRefresh.Store(true)
			fmt.Fprintf(stdout, "mid-run refresh: shifted hot window by %d (promoted=%d demoted=%d)\n",
				shift, promoted, demoted)
		}()
	} else {
		close(refreshed)
	}

	wg.Wait()
	close(workloadDone)
	elapsed := time.Since(start)
	<-refreshed
	if firstErr != nil {
		fmt.Fprintln(stderr, firstErr)
		return didRefresh.Load(), 1
	}
	if refreshErr != nil {
		fmt.Fprintf(stderr, "mid-run refresh: %v\n", refreshErr)
		return didRefresh.Load(), 1
	}

	snap := lat.Snapshot()
	fmt.Fprintf(stdout, "%d nodes, %d clients, %d ops in %v\n", o.nodes, o.clients, total, elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "throughput: %.0f ops/s\n", float64(total)/elapsed.Seconds())
	fmt.Fprintf(stdout, "latency:    avg %.1fus  p50 %.1fus  p95 %.1fus  p99 %.1fus\n",
		snap.Mean/1000, float64(snap.P50)/1000, float64(snap.P95)/1000, float64(snap.P99)/1000)
	if chaos != nil {
		if chaos.killedAt.Load() == 0 && o.chaosPid > 0 {
			fmt.Fprintln(stderr, "chaos: the kill never triggered (run too short for -chaos-at?)")
			return didRefresh.Load(), 1
		}
		fmt.Fprintf(stdout, "chaos: survivors served through the kill (%d home-down fast-fails, %d ops retried in the failure window)\n",
			chaos.homeDown.Load(), chaos.retried.Load())
	}
	return didRefresh.Load(), 0
}

// runBatchedClient is one client goroutine's loop in batched mode: every
// frame packs up to o.batch consecutive operations of this client's stream
// into one v2 session frame. A failed frame is retried whole after
// rerouting — re-running it is safe (puts are last-write-wins re-executions
// of the same values, gets are read-only; frames never carry RMWs in chaos
// mode, the only mode that retries, because -rmw-frac rejects -chaos-down).
func runBatchedClient(cl *cluster.Client, g *workload.Generator, o workloadOpts, id int,
	lat *metrics.Histogram, chaos *chaosState,
	progress func(uint64), retry func(int, int) bool, fail func(int, error)) {
	buf := make([]cluster.Op, 0, o.batch)
	for i := 0; i < o.ops; {
		m := min(o.batch, o.ops-i)
		buf = buf[:0]
		for j := 0; j < m; j++ {
			op := g.Next()
			b := cluster.Op{Key: op.Key}
			switch op.Type {
			case workload.Put:
				b.Kind = cluster.OpPut
				// The generator reuses its value buffer across Next calls;
				// the frame holds all m values at once.
				b.Value = append([]byte(nil), op.Value...)
			case workload.FAA:
				b.Kind = cluster.OpFAA
				b.Delta = op.Delta
			}
			buf = append(buf, b)
		}
		for attempt := 0; ; attempt++ {
			node := (id + i + attempt) % o.nodes
			if chaos != nil {
				node = chaos.route(node, o.nodes)
			}
			t0 := time.Now()
			rs, err := cl.Batch(node, buf)
			lat.Record(uint64(time.Since(t0).Nanoseconds()))
			if err == nil {
				err = batchOutcome(buf, rs, chaos)
			}
			if err == nil {
				break
			}
			if retry(node, attempt) {
				continue
			}
			fail(id, err)
			return
		}
		progress(uint64(m))
		i += m
	}
}

// batchOutcome scans a settled frame's per-op results: absent keys on the
// read path are tolerated (keyspace mismatch on cold reads, like the
// single-op loop), home-down fast-fails are counted and tolerated in chaos
// mode (they ARE the correct post-kill behavior), anything else is the
// frame's failure.
func batchOutcome(ops []cluster.Op, rs []cluster.Result, chaos *chaosState) error {
	for i := range rs {
		err := rs[i].Err
		if err == nil {
			continue
		}
		if ops[i].EffectiveKind() == cluster.OpGet && errors.Is(err, store.ErrNotFound) {
			continue
		}
		if chaos != nil && !chaos.replicated && errors.Is(err, cluster.ErrHomeDown) {
			chaos.homeDown.Add(1)
			continue
		}
		return err
	}
	return nil
}

type verifyOpts struct {
	nodes      int
	keys       uint64
	verifyKeys int
	rounds     int
	hotset     int
	shift      int
	// workloadShifted records whether the workload's mid-run refresh moved
	// the hot window to [shift, shift+hotset); the verifier's own refresh
	// targets the *other* window so its epoch change always has a delta.
	workloadShifted bool
	// chaosDown, when >= 0, restricts the check to the survivors: writers
	// and readers use only live nodes, cold checked keys must keep a live
	// shard replica (dead-homed HOT keys stay in the set on purpose — they
	// must keep serving from the symmetric cache), and convergence is
	// asserted on the survivors only. With replicas > 1 a single death
	// leaves every key a live replica, so dead-homed COLD keys stay in the
	// set too — the promoted backup must serve them.
	chaosDown int
	replicas  int
}

// hasLiveReplica reports whether key keeps a shard replica after down died.
func hasLiveReplica(key uint64, nodes, replicas, down int) bool {
	for _, r := range cluster.ReplicasOf(key, nodes, replicas) {
		if r != down {
			return true
		}
	}
	return false
}

// liveNodes lists the check's usable nodes.
func (o verifyOpts) liveNodes() []int {
	var live []int
	for n := 0; n < o.nodes; n++ {
		if n != o.chaosDown {
			live = append(live, n)
		}
	}
	return live
}

// runVerify is the lost/stale-read detector: one writer per key issues a
// strictly increasing sequence of tagged values through a fixed node while
// one reader per node concurrently checks that the sequence it observes
// never goes backwards; half-way through, an online hot-set refresh runs
// under the checked traffic. Afterwards every node must converge to every
// key's final value. Any regression, mismatch, non-convergence or lost
// final write fails the run.
func runVerify(cl *cluster.Client, o verifyOpts, stdout io.Writer) error {
	// Half the checked keys from the hot window (cache protocol paths), half
	// cold (remote-access paths). With no (or a small) hot set the cold side
	// takes up the slack — the keys must be distinct, or two writers would
	// race one key and fake a stale read. In chaos mode the cold keys must be
	// homed on survivors (dead-homed cold keys correctly fail fast and cannot
	// be checked); dead-homed HOT keys stay in — the symmetric cache serves
	// them through the node death, and that is exactly what gets verified.
	live := o.liveNodes()
	var keys []uint64
	hot := min(o.verifyKeys/2, o.hotset)
	for i := 0; i < hot; i++ {
		keys = append(keys, uint64(i))
	}
	for k := o.keys / 2; len(keys) < o.verifyKeys && k < o.keys; k++ {
		if o.chaosDown >= 0 && !hasLiveReplica(k, o.nodes, max(o.replicas, 1), o.chaosDown) {
			continue
		}
		keys = append(keys, k)
	}

	var (
		halfway      = make(chan struct{})
		halfwayOnce  sync.Once
		halfProgress = atomic.Int64{}
		errMu        sync.Mutex
		firstErr     error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			// The halfway barrier must always fall, even when a writer fails
			// or rounds is tiny — otherwise the refresh select below would
			// stall for its full timeout on an already-doomed run.
			marked := false
			mark := func() {
				if !marked {
					marked = true
					if halfProgress.Add(1) == int64(len(keys)) {
						halfwayOnce.Do(func() { close(halfway) })
					}
				}
			}
			defer mark()
			node := live[int(key)%len(live)] // writer affinity: per-key writes serialize
			for seq := 1; seq <= o.rounds; seq++ {
				if err := cl.Put(node, key, encodeVerify(key, uint64(seq))); err != nil {
					fail(fmt.Errorf("writer key %d seq %d: %w", key, seq, err))
					return
				}
				if seq == (o.rounds+1)/2 {
					mark()
				}
			}
		}(k)
	}

	// Readers: per-node monotonicity. A fixed replica may only ever move
	// forward through a key's write sequence.
	readerStop := make(chan struct{})
	var readers sync.WaitGroup
	for _, node := range live {
		readers.Add(1)
		go func(node int) {
			defer readers.Done()
			last := make(map[uint64]uint64, len(keys))
			for {
				select {
				case <-readerStop:
					return
				default:
				}
				for _, k := range keys {
					v, err := cl.Get(node, k)
					if err != nil {
						if errors.Is(err, store.ErrNotFound) {
							continue
						}
						fail(fmt.Errorf("reader node %d key %d: %w", node, k, err))
						return
					}
					seq, ok := decodeVerify(k, v)
					if !ok {
						continue // pre-check populate value
					}
					if seq > uint64(o.rounds) {
						fail(fmt.Errorf("reader node %d key %d: impossible seq %d > %d", node, k, seq, o.rounds))
						return
					}
					if seq < last[k] {
						fail(fmt.Errorf("STALE READ: node %d key %d went backwards: %d after %d", node, k, seq, last[k]))
						return
					}
					last[k] = seq
				}
			}
		}(node)
	}

	// The online refresh under checked traffic: shift the hot window once
	// every writer is half done. The target is whichever window is NOT
	// currently installed — [shift,·) if the workload never refreshed,
	// back to [0,·) if it did — so the epoch change always moves real keys
	// (including checked hot keys, when shift reaches into them). A
	// zero-delta refresh would silently skip the very reconfiguration
	// concurrency this phase exists to exercise, hence the tripwire.
	var refreshErr error
	if o.hotset > 0 && o.shift > 0 {
		target := hotWindow(o.shift, o.hotset)
		if o.workloadShifted {
			target = hotWindow(0, o.hotset)
		}
		select {
		case <-halfway:
			promoted, demoted, err := cl.Refresh(live[0], target)
			switch {
			case err != nil:
				refreshErr = fmt.Errorf("refresh during check: %w", err)
			case promoted == 0 && demoted == 0:
				refreshErr = errors.New("refresh during check moved no keys (zero delta: reconfiguration concurrency not exercised)")
			default:
				fmt.Fprintf(stdout, "consistency check: hot window shifted under checked traffic (promoted=%d demoted=%d)\n",
					promoted, demoted)
			}
		case <-time.After(2 * time.Minute):
			refreshErr = errors.New("writers never reached the refresh point")
		}
	}

	wg.Wait()
	close(readerStop)
	readers.Wait()
	if firstErr != nil {
		return firstErr
	}
	if refreshErr != nil {
		return refreshErr
	}

	// Convergence: every node must serve every key's final write. A node
	// stuck below it has lost the write or serves a stale replica.
	deadline := time.Now().Add(15 * time.Second)
	for _, k := range keys {
		for _, node := range live {
			for {
				v, err := cl.Get(node, k)
				if err == nil {
					if seq, ok := decodeVerify(k, v); ok && seq == uint64(o.rounds) {
						break
					}
				}
				if time.Now().After(deadline) {
					seq := uint64(0)
					if err == nil {
						seq, _ = decodeVerify(k, v)
					}
					return fmt.Errorf("LOST/STALE: node %d key %d stuck at seq %d, want %d (err=%v)",
						node, k, seq, o.rounds, err)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	fmt.Fprintf(stdout, "consistency check passed: %d keys x %d writes, %d readers, all live nodes converged\n",
		len(keys), o.rounds, len(live))
	return nil
}

// encodeVerify tags a checker value with its key and sequence number.
func encodeVerify(key, seq uint64) []byte {
	v := make([]byte, 16)
	binary.LittleEndian.PutUint64(v[:8], key)
	binary.LittleEndian.PutUint64(v[8:], seq)
	return v
}

// decodeVerify recovers the sequence number of a checker value; ok=false
// for anything else (e.g. the populate-time value before the first write).
func decodeVerify(key uint64, v []byte) (uint64, bool) {
	if len(v) != 16 || binary.LittleEndian.Uint64(v[:8]) != key {
		return 0, false
	}
	return binary.LittleEndian.Uint64(v[8:]), true
}

// reportStats prints per-node counters and enforces the hit-rate floor. In
// chaos mode the dead node is skipped: it cannot answer, and the floor is a
// survivors' property.
func reportStats(cl *cluster.Client, nodes, hotset int, minHitRate float64, chaosDown int, stdout, stderr io.Writer) int {
	var agg cluster.SessionStats
	for node := 0; node < nodes; node++ {
		if node == chaosDown {
			continue
		}
		st, err := cl.Stats(node)
		if err != nil {
			fmt.Fprintf(stderr, "stats node %d: %v\n", node, err)
			return 1
		}
		fmt.Fprintf(stdout, "node %d: hits=%d misses=%d local=%d remote=%d hot=%d hit-rate=%.3f\n",
			node, st.CacheHits, st.CacheMisses, st.LocalOps, st.RemoteOps, st.HotKeys, st.HitRate())
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		agg.LocalOps += st.LocalOps
		agg.RemoteOps += st.RemoteOps
	}
	fmt.Fprintf(stdout, "aggregate hit rate: %.3f\n", agg.HitRate())
	if hotset > 0 && agg.CacheHits == 0 {
		fmt.Fprintln(stderr, "no cache hits despite an installed hot set")
		return 1
	}
	if minHitRate > 0 && agg.HitRate() < minHitRate {
		fmt.Fprintf(stderr, "aggregate hit rate %.3f below required %.3f\n", agg.HitRate(), minHitRate)
		return 1
	}
	return 0
}
