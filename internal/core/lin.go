package core

import "repro/internal/timestamp"

// Lin protocol (per-key Linearizability, §5.2).
//
// Lin writes are synchronous: a put may return only after its value has
// become visible to all replicas. The protocol is two-phase, adapted from
// Guerraoui et al.'s high-throughput atomic storage algorithm:
//
//  1. The writer moves the entry to the transient Write state, tags the
//     write with a fresh Lamport timestamp and broadcasts invalidations.
//  2. Every replica that receives an invalidation with a timestamp greater
//     than its stored one transitions the entry to Invalid (reads stall)
//     and always acknowledges — acks are unconditional so that concurrent
//     writers can never starve each other (deadlock freedom).
//  3. When the writer has gathered N-1 acks it applies the value locally
//     (if no higher-timestamped write intervened), transitions the entry
//     back to Valid and broadcasts the update; replicas in Invalid state
//     apply an update exactly when its timestamp matches the invalidation
//     they observed last, otherwise the update is discarded.
//
// Writes are fully distributed: any replica can initiate a write for any
// cached key; serialization comes from the timestamps alone.

// WriteLinStart begins a Lin write. On a cache hit it stages the value,
// moves the entry to the Write state and returns the Invalidation to
// broadcast. The write completes when ApplyAck reports done; until then
// reads on this node return the pre-write value (the put has not returned,
// so that is linearizable), and further local writes to the key are refused
// with ErrWritePending.
func (c *Cache) WriteLinStart(key uint64, value []byte) (Invalidation, error) {
	e, ok := c.table.Load().m[key]
	if !ok {
		c.stats.Misses.Add(1)
		return Invalidation{}, ErrMiss
	}
	var inv Invalidation
	e.lock.Lock()
	if e.frozen {
		// The key is being demoted; the caller retries until the entry is
		// removed and the write misses to the home shard (which by then
		// holds the demotion's write-back).
		e.lock.Unlock()
		return Invalidation{}, ErrFrozen
	}
	if e.pendActive {
		e.lock.Unlock()
		return Invalidation{}, ErrWritePending
	}
	// The new timestamp must dominate everything this replica has seen,
	// including a concurrent writer's invalidation timestamp. The writer
	// stamps its own copy too: at completion, e.ts == pendTS tells it that
	// no higher-timestamped write intervened.
	e.pendTS = e.ts.Next(c.nodeID)
	e.ts = e.pendTS
	if len(e.pendVal) < len(value) {
		e.pendVal = make([]byte, len(value))
	}
	copy(e.pendVal[:len(value)], value)
	e.pendVlen = len(value)
	e.pendActive = true
	e.pendSuperseded = false // the new write supersedes any lost predecessor
	// Count only the peers live right now: the invalidation broadcast that
	// follows reaches exactly those, so they are exactly the acks to wait for.
	e.pendWait = c.live.Load().Without(c.nodeID)
	e.ackFrom = NodeSet{}
	if e.state == StateValid {
		e.state = StateWrite
	}
	inv = Invalidation{Key: key, TS: e.pendTS, From: c.nodeID}
	e.lock.Unlock()

	c.stats.Hits.Add(1)
	c.stats.WritesLin.Add(1)
	return inv, nil
}

// RMWLinStart begins a Lin read-modify-write: under the entry lock it reads
// the current value, hands a copy to compute, and — when compute elects to
// write — stages the returned value exactly like WriteLinStart (fresh
// dominating timestamp, Write state, Invalidation to broadcast). The lock
// is what makes the read-to-publish window atomic against every other local
// mutation of the entry; remote writers are ordered by the timestamp the RMW
// claims before releasing it. witness is the value compute observed (always
// a fresh copy), applied reports whether compute chose to write (a CAS whose
// expectation failed returns applied=false with no protocol action — the
// witness is the answer). Unlike a blind write, an RMW cannot proceed on an
// Invalid entry: the current value is unreadable until the in-flight
// update lands, so ErrInvalid is returned and the caller spins like a read.
func (c *Cache) RMWLinStart(key uint64, compute func(cur []byte) ([]byte, bool)) (inv Invalidation, witness []byte, applied bool, err error) {
	e, ok := c.table.Load().m[key]
	if !ok {
		c.stats.Misses.Add(1)
		return Invalidation{}, nil, false, ErrMiss
	}
	e.lock.Lock()
	if e.frozen {
		e.lock.Unlock()
		return Invalidation{}, nil, false, ErrFrozen
	}
	if e.installing {
		// Promotion placeholder: no value to read; the home shard serves.
		e.lock.Unlock()
		c.stats.Misses.Add(1)
		return Invalidation{}, nil, false, ErrMiss
	}
	if e.state == StateInvalid {
		e.lock.Unlock()
		c.stats.InvalidStalls.Add(1)
		return Invalidation{}, nil, false, ErrInvalid
	}
	if e.pendActive {
		e.lock.Unlock()
		return Invalidation{}, nil, false, ErrWritePending
	}
	witness = append([]byte(nil), e.val[:e.vlen]...)
	value, ok := compute(witness)
	if !ok {
		e.lock.Unlock()
		c.stats.Hits.Add(1)
		return Invalidation{}, witness, false, nil
	}
	e.pendTS = e.ts.Next(c.nodeID)
	e.ts = e.pendTS
	if len(e.pendVal) < len(value) {
		e.pendVal = make([]byte, len(value))
	}
	copy(e.pendVal[:len(value)], value)
	e.pendVlen = len(value)
	e.pendActive = true
	e.pendSuperseded = false
	e.pendWait = c.live.Load().Without(c.nodeID)
	e.ackFrom = NodeSet{}
	if e.state == StateValid {
		e.state = StateWrite
	}
	inv = Invalidation{Key: key, TS: e.pendTS, From: c.nodeID}
	e.lock.Unlock()

	c.stats.Hits.Add(1)
	c.stats.WritesLin.Add(1)
	return inv, witness, true, nil
}

// ApplyInvalidation processes a received invalidation and returns the Ack to
// send back to the writer. Acks are always produced; the entry is
// invalidated only when the incoming timestamp orders after the stored one.
// A replica that is itself in the Write state can thus lose the race: its
// entry becomes Invalid and its own completion will not publish its value.
func (c *Cache) ApplyInvalidation(inv Invalidation) (Ack, bool) {
	c.stats.Invalidations.Add(1)
	e, ok := c.table.Load().m[inv.Key]
	if !ok {
		// Not cached this epoch: nothing to invalidate, but still ack so
		// the writer can make progress.
		return Ack{Key: inv.Key, TS: inv.TS, From: c.nodeID}, false
	}
	invalidated := false
	e.lock.Lock()
	// The dead-writer check runs under e.lock, AFTER the lock is acquired:
	// a writer outside our membership view can never publish its update
	// (broadcasts exclude it both ways), so invalidating would wedge local
	// readers on a state only that update could clear — an in-flight
	// invalidation racing the writer's excision must not re-open the window
	// DiscardOrphanedInvalidations closed. The excision scan takes this same
	// entry lock after storing the shrunken live set, so whichever side runs
	// second sees the other's effect: the scan heals an already-applied
	// invalidation, and a post-scan invalidation sees the writer dead and
	// skips. Still acked either way, in case the suspicion was false and the
	// writer is counting.
	if c.live.Load().Has(inv.From) && inv.TS.After(e.ts) {
		e.ts = inv.TS
		e.state = StateInvalid
		invalidated = true
	}
	e.lock.Unlock()
	return Ack{Key: inv.Key, TS: inv.TS, From: c.nodeID}, invalidated
}

// ApplyAck records an acknowledgement for this node's outstanding write.
// When acks cover every counted peer still in the live view, the write
// completes: the staged value is applied locally if its timestamp is still
// the highest observed (otherwise a concurrent writer won the race and its
// update will carry the final value), the entry returns to Valid when
// appropriate, and the Update to broadcast is returned with done=true.
func (c *Cache) ApplyAck(a Ack) (Update, bool) {
	e, ok := c.table.Load().m[a.Key]
	if !ok {
		return Update{}, false
	}
	c.stats.AcksReceived.Add(1)

	var out Update
	done := false
	e.lock.Lock()
	if e.pendActive && a.TS == e.pendTS {
		e.ackFrom = e.ackFrom.With(a.From)
		if c.pendingSatisfiedLocked(e) {
			done = true
			out = c.finishPendingLocked(e, a.Key)
		}
	}
	e.lock.Unlock()
	return out, done
}

// pendingSatisfiedLocked reports whether e's outstanding write has gathered
// acks from every still-required peer. The requirement prunes *permanently*:
// a counted peer found outside the live view at any evaluation is removed
// from pendWait and never re-required — even if it later rejoins, it
// received no invalidation, so re-requiring its ack would deadlock the
// writer across an excise/rejoin flap. (SetLive evaluates every outstanding
// write when the view shrinks, so the prune always happens while the peer is
// out.) Called with e.lock held.
func (c *Cache) pendingSatisfiedLocked(e *entry) bool {
	e.pendWait = e.pendWait.Intersect(*c.live.Load())
	return e.ackFrom.Contains(e.pendWait)
}

// finishPendingLocked completes e's outstanding write and returns the Update
// to broadcast. Called with e.lock held and pendActive true.
func (c *Cache) finishPendingLocked(e *entry, key uint64) Update {
	e.pendActive = false
	if e.ts == e.pendTS {
		// Our write is still the latest this replica has seen: perform it
		// locally and publish.
		e.setValueLocked(e.pendVal[:e.pendVlen])
		e.dirty = true
		e.state = StateValid
	} else {
		// A concurrent write with a higher timestamp invalidated us; our
		// value is superseded before ever becoming visible. The entry stays
		// Invalid awaiting the winner's update — but the client is told
		// success, so the staged value must survive until that update lands
		// (pendSuperseded: if the winner dies unpublished, it re-publishes).
		e.pendSuperseded = true
		c.stats.WriteConflictsLost.Add(1)
	}
	return Update{
		Key:   key,
		TS:    e.pendTS,
		Value: append([]byte(nil), e.pendVal[:e.pendVlen]...),
	}
}

// RecheckPending re-runs the completion check for key's outstanding write
// against the current live view, as if a (virtual) ack had arrived. Writers
// call it after broadcasting their invalidations: if the live view shrank
// between the write's start and its broadcast — or the writer is the only
// live member — no further ack may ever arrive, and this is what completes
// the write instead.
func (c *Cache) RecheckPending(key uint64) (Update, bool) {
	e, ok := c.table.Load().m[key]
	if !ok {
		return Update{}, false
	}
	var out Update
	done := false
	e.lock.Lock()
	if e.pendActive && c.pendingSatisfiedLocked(e) {
		done = true
		out = c.finishPendingLocked(e, key)
	}
	e.lock.Unlock()
	return out, done
}

// SetLive installs a new membership view and re-examines every outstanding
// Lin write against it: a write that was waiting on a peer no longer in the
// view completes the moment its remaining required acks are all in. The
// completed updates are returned so the caller can wake the blocked writers
// and broadcast — exactly what ApplyAck's done=true hands it on the normal
// path. Growing the view never completes anything (a joining peer was not
// counted by in-flight writes and is not added to their requirements).
func (c *Cache) SetLive(live NodeSet) []Update {
	c.live.Store(&live)
	var completed []Update
	for key, e := range c.table.Load().m {
		e.lock.Lock()
		if e.pendActive && c.pendingSatisfiedLocked(e) {
			completed = append(completed, c.finishPendingLocked(e, key))
		}
		e.lock.Unlock()
	}
	return completed
}

// Live returns the membership view the protocols currently count against.
func (c *Cache) Live() NodeSet { return *c.live.Load() }

// TakeOrphanedLoserWrite returns the staged value of a completed
// conflict-lost write whose superseding winner has left the live view: the
// winner can never publish the update that was supposed to carry the final
// value, so the caller must re-drive this acknowledged value through a
// fresh write. Completion paths call it after every conflict-capable
// completion — DiscardOrphanedInvalidations only covers writes that were
// already conflict-lost when the view flipped; a write whose final ack
// lands after the flip reaches this instead. The flag clears so the value
// is taken exactly once; a live winner (flag kept) means the update is
// still coming and nothing is taken.
func (c *Cache) TakeOrphanedLoserWrite(key uint64) (Update, bool) {
	e, ok := c.table.Load().m[key]
	if !ok {
		return Update{}, false
	}
	e.lock.Lock()
	defer e.lock.Unlock()
	if e.pendActive || !e.pendSuperseded || c.live.Load().Has(e.ts.Writer) {
		return Update{}, false
	}
	e.pendSuperseded = false
	// The dead winner's invalidation can no longer be cleared by its
	// update; re-validate so the re-publish (and readers) are not wedged.
	if e.state == StateInvalid {
		e.state = StateValid
	}
	return Update{
		Key:   key,
		TS:    e.pendTS,
		Value: append([]byte(nil), e.pendVal[:e.pendVlen]...),
	}, true
}

// DiscardOrphanedInvalidations re-validates every entry left Invalid by an
// in-flight write of the given (newly excised) writer: the matching update
// can never arrive — the writer is gone and broadcasts exclude it — so
// without this, readers of those hot keys would spin on ErrInvalid until
// some client happened to rewrite the key. The pre-invalidation value
// becomes readable again: the orphaned write was never acknowledged to the
// dead writer's client, so discarding it is within the Lin contract.
//
// Healed entries holding a conflict-lost local write (pendSuperseded: this
// node's client WAS told success, and the dead winner was supposed to carry
// the final value) are returned in resurrect — the caller must re-drive each
// through the full write protocol so the acknowledged value reaches every
// replica with a fresh dominating timestamp. If the orphan's update reached
// a subset of replicas before the death, replicas diverge on that key until
// the next write (whose strictly higher timestamp re-converges every copy)
// — an accepted recovery window; see ROADMAP for the full per-key recovery
// round.
func (c *Cache) DiscardOrphanedInvalidations(writer uint8) (healed int, resurrect []Update) {
	for key, e := range c.table.Load().m {
		e.lock.Lock()
		if e.state == StateInvalid && e.ts.Writer == writer {
			e.state = StateValid
			healed++
			if e.pendSuperseded {
				e.pendSuperseded = false
				resurrect = append(resurrect, Update{
					Key:   key,
					TS:    e.pendTS,
					Value: append([]byte(nil), e.pendVal[:e.pendVlen]...),
				})
			}
		}
		e.lock.Unlock()
	}
	return healed, resurrect
}

// ApplyUpdateLin applies a received Lin update: the value is installed only
// when the entry is Invalid and the update's timestamp matches the
// invalidation's, i.e. this is exactly the update the replica is waiting
// for; stale updates (superseded by a higher-timestamped invalidation) are
// discarded. It reports whether the update was applied.
func (c *Cache) ApplyUpdateLin(u Update) bool {
	e, ok := c.table.Load().m[u.Key]
	if !ok {
		c.stats.UpdatesDiscarded.Add(1)
		return false
	}
	applied := false
	e.lock.Lock()
	if e.state == StateInvalid && u.TS == e.ts {
		e.setValueLocked(u.Value)
		e.dirty = true
		e.state = StateValid
		// The winner published: a conflict-lost local write is now correctly
		// "applied then overwritten" — nothing left to resurrect.
		e.pendSuperseded = false
		applied = true
	}
	e.lock.Unlock()
	if applied {
		c.stats.UpdatesApplied.Add(1)
	} else {
		c.stats.UpdatesDiscarded.Add(1)
	}
	return applied
}

// PendingWrite reports whether this node has an outstanding Lin write for
// key (test hook).
func (c *Cache) PendingWrite(key uint64) bool {
	_, p := c.PendingWriteTS(key)
	return p
}

// PendingWriteTS returns the timestamp of key's outstanding Lin write, if
// any. RMW completion polling matches it against the stamp the poller was
// handed, so a later writer's pending write never reads as "still mine".
func (c *Cache) PendingWriteTS(key uint64) (timestamp.TS, bool) {
	e, ok := c.table.Load().m[key]
	if !ok {
		return timestamp.TS{}, false
	}
	var (
		ts timestamp.TS
		p  bool
	)
	e.lock.Read(func() { p = e.pendActive; ts = e.pendTS })
	return ts, p
}
