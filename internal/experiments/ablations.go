package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/zipf"
)

// Ablations for the design decisions the paper motivates qualitatively:
// the write-serialization design space of Figure 4, the request-coalescing
// factor of §8.5, the credit-batching optimization of §6.4, and the
// symmetric cache sizing of §4/§7.1.

// AblationWriteSerialization quantifies Figure 4's design space: executing
// hot writes through a designated primary or through a sequencer
// concentrates consistency traffic on one node, which becomes the
// bottleneck under skewed writes — the motivation for the fully
// distributed protocols.
//
// Per hot write the primary design moves 1 forwarded write in and N-1
// updates out of the primary; the sequencer design moves a
// timestamp-request/response pair through the sequencer while data still
// broadcasts from the writer. Adding those flows as extra constraints on
// one node yields the saturation throughput of each design.
func AblationWriteSerialization() Table {
	t := Table{
		ID:      "ablation-serialization",
		Title:   "Write serialization design space (MRPS) [9 nodes, alpha=0.99, SC updates]",
		Columns: []string{"write %", "fully distributed", "sequencer", "primary"},
	}
	cal := simnet.DefaultCalibration()
	for _, w := range []float64{0.01, 0.05, 0.20} {
		dist := simnet.MustSolve(simnet.Config{
			System: simnet.CCKVS, Protocol: core.SC, Alpha: 0.99, WriteRatio: w,
		})
		// h*w writes/request concentrate on the special node.
		h := dist.HitRatio
		n := 9.0
		upd := 83.0 // B_SC wire bytes
		// Primary: receives every hot write (1 msg) and emits N-1 updates.
		primaryPktsPerReq := h * w * (1 + (n - 1))
		primaryBytesPerReq := h * w * (upd + (n-1)*upd)
		// Sequencer: one timestamp request + response per hot write
		// (header-only messages), data broadcast stays at the writer.
		seqPktsPerReq := h * w * 2
		seqBytesPerReq := h * w * 2 * 50

		limit := func(pktsPerReq, bytesPerReq float64) float64 {
			r := dist.ThroughputRPS
			if pktsPerReq > 0 {
				if lim := cal.PacketRatePPS / pktsPerReq; lim < r {
					r = lim
				}
			}
			if bytesPerReq > 0 {
				if lim := cal.LinkBandwidthBits / 8 / bytesPerReq; lim < r {
					r = lim
				}
			}
			return r
		}
		t.AddRow(fmt.Sprintf("%.0f", w*100),
			dist.ThroughputRPS/1e6,
			limit(seqPktsPerReq, seqBytesPerReq)/1e6,
			limit(primaryPktsPerReq, primaryBytesPerReq)/1e6)
	}
	t.Notes = append(t.Notes,
		"primary/sequencer serialize consistency actions through one node (Figure 4a/4b); fully distributed writes avoid the hotspot (Figure 4c)")
	return t
}

// AblationCoalesceFactor sweeps the request-coalescing factor (§8.5).
func AblationCoalesceFactor() Table {
	t := Table{
		ID:      "ablation-coalesce",
		Title:   "Coalescing factor sweep, ccKVS-SC read-only (MRPS) [9 nodes, alpha=0.99]",
		Columns: []string{"messages per packet", "throughput", "per-node Gb/s", "bottleneck"},
	}
	for _, k := range []float64{1, 2, 4, 8, 16, 32} {
		cal := simnet.DefaultCalibration()
		cal.CoalesceFactor = k
		cfg := simnet.Config{System: simnet.CCKVS, Protocol: core.SC, Alpha: 0.99, Coalesce: k > 1, Cal: cal}
		r := simnet.MustSolve(cfg)
		t.AddRow(fmt.Sprintf("%.0f", k), r.ThroughputRPS/1e6, r.PerNodeGbps, r.Bottleneck)
	}
	t.Notes = append(t.Notes, "gains flatten once the bottleneck shifts off the switch packet rate")
	return t
}

// AblationCreditBatch sweeps how many consistency messages one explicit
// credit update covers (§6.4).
func AblationCreditBatch() Table {
	t := Table{
		ID:      "ablation-credits",
		Title:   "Credit-update batching, ccKVS-Lin 5% writes [9 nodes, alpha=0.99]",
		Columns: []string{"msgs per credit update", "flow-control traffic %", "throughput MRPS"},
	}
	for _, b := range []float64{1, 2, 4, 8, 16, 32} {
		cal := simnet.DefaultCalibration()
		cal.CreditBatch = b
		r := simnet.MustSolve(simnet.Config{
			System: simnet.CCKVS, Protocol: core.Lin, Alpha: 0.99, WriteRatio: 0.05, Cal: cal,
		})
		t.AddRow(fmt.Sprintf("%.0f", b),
			r.TrafficShares[metrics.ClassFlowControl]*100, r.ThroughputRPS/1e6)
	}
	t.Notes = append(t.Notes, "batched credits make flow control negligible (Figure 11 shows a sliver)")
	return t
}

// AblationCacheSize sweeps the symmetric cache size around the paper's
// 0.1% operating point.
func AblationCacheSize() Table {
	t := Table{
		ID:      "ablation-cache-size",
		Title:   "Symmetric cache sizing, read-only (MRPS) [9 nodes, alpha=0.99]",
		Columns: []string{"cache % of dataset", "hit rate %", "throughput", "memory/node (40B vals)"},
	}
	for _, frac := range []float64{0.0001, 0.0005, 0.001, 0.002, 0.005, 0.01} {
		r := simnet.MustSolve(simnet.Config{
			System: simnet.CCKVS, Protocol: core.SC, Alpha: 0.99, CacheFrac: frac,
		})
		items := frac * 250e6
		memMB := items * (8 + 8 + 40) / 1e6 // header + key + value
		t.AddRow(fmt.Sprintf("%.2f", frac*100), r.HitRatio*100,
			r.ThroughputRPS/1e6, fmt.Sprintf("%.0f MB", memMB))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("hit rate beyond 0.1%% grows slowly (zipf tail): 1%% cache hits %.0f%%",
			zipf.HitRate(0.01, 250_000_000, 0.99)*100))
	return t
}
