package cluster

import (
	"encoding/binary"
	"errors"

	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/store"
)

// The session layer: client-facing RPC served by every node on
// threadSession. It is how external processes (cmd/cckvs-load, or any
// Client) drive a deployment — a session request executes the *full*
// protocol at the receiving node (symmetric-cache probe, Lin/SC write
// protocol, remote access to the home shard on a miss), exactly as if the
// request had arrived at one of the paper's worker threads. This is the
// black-box load-balancer abstraction of §3: a client may send any request
// to any node.
//
// Wire formats (little endian). Unlike the inter-node KVS RPC, session
// packets carry exactly one request and receive exactly one response —
// clients provide concurrency by keeping many requests outstanding, and the
// per-connection TCP framing already amortizes syscall costs. Session
// requests may block (a Lin write waits for acks; a cache miss crosses the
// fabric), so each one is served on its own goroutine rather than on the
// transport's dispatcher.
//
//	request:  op(1) reqID(8) rest
//	  get:     key(8)
//	  put:     key(8) vlen(4) value
//	  ping:    -
//	  refresh: count(4) key(8)*count     — ApplyHotSet(target) at this node
//	  stats:   -
//	response: reqID(8) status(1) payload
//	  ok get:     vlen(4) value
//	  ok refresh: promoted(4) demoted(4) writebacks(4)
//	  ok stats:   hits(8) misses(8) local(8) remote(8) hot(8) frozenRetries(8)
//	  error:      vlen(4) message
//	  home-down:  -                 — the key's home node left the membership
//	                                  view; fail fast, retry after rejoin
const (
	sessOpGet     byte = 0
	sessOpPut     byte = 1
	sessOpPing    byte = 2
	sessOpRefresh byte = 3
	sessOpStats   byte = 4

	sessStatusOK       byte = 0
	sessStatusNotFound byte = 1
	sessStatusBad      byte = 2
	sessStatusErr      byte = 3
	// sessStatusHomeDown answers operations on keys whose home node is
	// outside the current membership view: the client surfaces it as the
	// typed ErrHomeDown (fail fast, retry after the node rejoins) instead of
	// a generic error string.
	sessStatusHomeDown byte = 4
)

const sessHeader = 1 + 8

// handleSession dispatches one client request. The handler goroutine per
// request is what lets a single client connection keep many blocking
// operations in flight.
func (n *Node) handleSession(p fabric.Packet) {
	if n.cluster.killed.Load() {
		return // a dead process answers nothing; the client's timeout cleans up
	}
	if len(p.Data) < sessHeader {
		return // not even a request id to answer; drop (datagram semantics)
	}
	// The goroutine outlives this handler, and the TCP transport reuses its
	// receive buffer the moment the handler returns — the request must be
	// copied out of the packet before it escapes.
	p.Data = append([]byte(nil), p.Data...)
	go n.serveSession(p)
}

func (n *Node) serveSession(p fabric.Packet) {
	op := p.Data[0]
	reqID := binary.LittleEndian.Uint64(p.Data[1:9])
	body := p.Data[sessHeader:]

	resp := binary.LittleEndian.AppendUint64(make([]byte, 0, 64), reqID)
	switch op {
	case sessOpGet:
		if len(body) < 8 {
			resp = append(resp, sessStatusBad)
			break
		}
		key := binary.LittleEndian.Uint64(body[:8])
		v, err := n.Get(key)
		switch {
		case err == nil:
			resp = append(resp, sessStatusOK)
			resp = binary.LittleEndian.AppendUint32(resp, uint32(len(v)))
			resp = append(resp, v...)
		case errors.Is(err, store.ErrNotFound):
			resp = append(resp, sessStatusNotFound)
		case errors.Is(err, ErrHomeDown):
			resp = append(resp, sessStatusHomeDown)
		default:
			resp = appendSessError(resp, err)
		}
	case sessOpPut:
		if len(body) < 12 {
			resp = append(resp, sessStatusBad)
			break
		}
		key := binary.LittleEndian.Uint64(body[:8])
		vlen := int(binary.LittleEndian.Uint32(body[8:12]))
		if vlen < 0 || len(body) < 12+vlen {
			resp = append(resp, sessStatusBad)
			break
		}
		// The value aliases the packet buffer; copy before it escapes into
		// the store or the consistency broadcast.
		val := append([]byte(nil), body[12:12+vlen]...)
		switch err := n.Put(key, val); {
		case err == nil:
			resp = append(resp, sessStatusOK)
		case errors.Is(err, ErrHomeDown):
			resp = append(resp, sessStatusHomeDown)
		default:
			resp = appendSessError(resp, err)
		}
	case sessOpPing:
		resp = append(resp, sessStatusOK)
	case sessOpRefresh:
		if len(body) < 4 {
			resp = append(resp, sessStatusBad)
			break
		}
		count := int(binary.LittleEndian.Uint32(body[:4]))
		if count < 0 || len(body) < 4+8*count {
			resp = append(resp, sessStatusBad)
			break
		}
		target := make([]uint64, count)
		for i := range target {
			target[i] = binary.LittleEndian.Uint64(body[4+8*i:])
		}
		st, err := n.cluster.ApplyHotSet(int(n.id), target)
		if err != nil {
			resp = appendSessError(resp, err)
			break
		}
		resp = append(resp, sessStatusOK)
		resp = binary.LittleEndian.AppendUint32(resp, uint32(st.Promoted))
		resp = binary.LittleEndian.AppendUint32(resp, uint32(st.Demoted))
		resp = binary.LittleEndian.AppendUint32(resp, uint32(st.WriteBacks))
	case sessOpStats:
		resp = append(resp, sessStatusOK)
		resp = binary.LittleEndian.AppendUint64(resp, n.CacheHits.Load())
		resp = binary.LittleEndian.AppendUint64(resp, n.CacheMisses.Load())
		resp = binary.LittleEndian.AppendUint64(resp, n.LocalOps.Load())
		resp = binary.LittleEndian.AppendUint64(resp, n.RemoteOps.Load())
		var hot uint64
		if n.cache != nil {
			hot = uint64(len(n.cache.Keys()))
		}
		resp = binary.LittleEndian.AppendUint64(resp, hot)
		resp = binary.LittleEndian.AppendUint64(resp, n.FrozenRetries.Load())
	default:
		resp = append(resp, sessStatusBad)
	}

	// Reply to wherever the request came from; the TCP transport learned the
	// return route from the inbound connection, so ephemeral clients outside
	// the peer table still get their answer. A failed send means the client
	// is gone (its timeout or peer-down handler cleans up).
	_ = n.cluster.transport.Send(fabric.Packet{
		Src:   fabric.Addr{Node: n.id, Thread: threadSession},
		Dst:   p.Src,
		Class: metrics.ClassCacheMiss,
		Data:  resp,
	})
}

// appendSessError encodes a failed operation: the error text travels to the
// client so a CI failure names the real cause.
func appendSessError(resp []byte, err error) []byte {
	msg := err.Error()
	resp = append(resp, sessStatusErr)
	resp = binary.LittleEndian.AppendUint32(resp, uint32(len(msg)))
	return append(resp, msg...)
}
