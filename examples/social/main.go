// Social-feed scenario: the workload class that motivates the paper
// (§1: social networking, e-commerce). Profiles of a few celebrity
// accounts dominate the read traffic; posts are rare writes. The example
// runs the scenario against an embedded ccKVS deployment and shows the
// symmetric cache adapting when a previously unknown account goes viral.
package main

import (
	"fmt"
	"log"

	cckvs "repro"
	"repro/internal/zipf"
)

const (
	accounts   = 50_000
	nodes      = 5
	cacheSlots = 500
)

func main() {
	kv, err := cckvs.Open(cckvs.Options{
		Nodes:       nodes,
		Consistency: cckvs.Lin, // reads must never see a deleted/old post
		NumKeys:     accounts,
		CacheItems:  cacheSlots,
		SampleRate:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer kv.Close()

	// Phase 1: organic traffic. Account popularity is Zipfian; 2% of
	// requests are posts (profile updates).
	fmt.Println("phase 1: organic zipfian traffic (alpha=0.99, 2% posts)")
	popularity, err := zipf.NewGenerator(accounts, 0.99, 42)
	if err != nil {
		log.Fatal(err)
	}
	serve(kv, 30_000, func(i int) (uint64, bool) {
		return popularity.Next(), i%50 == 0
	})
	report(kv)

	// Phase 2: account #48271 goes viral — a flash crowd the initial hot
	// set knows nothing about.
	fmt.Println("\nphase 2: account 48271 goes viral (60% of traffic)")
	viral := uint64(48271)
	hitsBefore := kv.Stats().CacheHits
	serve(kv, 20_000, func(i int) (uint64, bool) {
		if i%5 < 3 {
			return viral, i%200 == 0
		}
		return popularity.Next(), false
	})
	missRateDuring := 1 - float64(kv.Stats().CacheHits-hitsBefore)/20_000
	fmt.Printf("  miss rate during flash crowd: %.1f%%\n", missRateDuring*100)

	// The coordinator's epoch ends: the viral account enters every cache.
	added, removed := kv.RefreshHotSet()
	fmt.Printf("  hot set refresh: +%d/-%d keys\n", added, removed)

	hitsBefore = kv.Stats().CacheHits
	serve(kv, 20_000, func(i int) (uint64, bool) {
		if i%5 < 3 {
			return viral, false
		}
		return popularity.Next(), false
	})
	missRateAfter := 1 - float64(kv.Stats().CacheHits-hitsBefore)/20_000
	fmt.Printf("  miss rate after refresh:      %.1f%%\n", missRateAfter*100)
	report(kv)
}

// serve issues n requests; pick returns the account and whether this
// request is a post (write).
func serve(kv *cckvs.KV, n int, pick func(i int) (uint64, bool)) {
	post := make([]byte, 40)
	for i := 0; i < n; i++ {
		account, isPost := pick(i)
		if isPost {
			copy(post, fmt.Sprintf("post #%d by %d", i, account))
			if err := kv.Put(account, post); err != nil {
				log.Fatal(err)
			}
			continue
		}
		if _, err := kv.Get(account); err != nil {
			log.Fatal(err)
		}
	}
}

func report(kv *cckvs.KV) {
	s := kv.Stats()
	fmt.Printf("  totals: %.1f%% hit rate, %d remote accesses, epoch %d\n",
		s.HitRate()*100, s.RemoteOps, s.HotSetEpoch)
}
