package cluster

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// The allocation diet of the multi-worker PR: a remote get on the in-process
// transport costs a bounded, small number of heap allocations per op. The
// seed measured 7.0 allocs/op on this exact scenario; encode-at-send (no
// per-request scratch buffer), pooled completion channels and the pooled
// server-side read staging bring it to 3 — the remaining ones are the
// per-packet buffers a reference-passing transport cannot recycle plus the
// one unavoidable copy that hands the value to the caller. The assertion
// leaves half an alloc of headroom for map-rehash noise but fails well
// before the seed's count, so a regression that reintroduces per-call
// garbage is caught.
func TestRemoteGetAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	for _, w := range []int{1, 4} {
		c, err := New(Config{Nodes: 2, System: Base, NumKeys: 1024, WorkersPerNode: w})
		if err != nil {
			t.Fatal(err)
		}
		c.Populate()
		n := c.Node(0)
		key := uint64(0)
		for k := uint64(0); k < 1024; k++ {
			if c.HomeNode(k) == 1 {
				key = k
				break
			}
		}
		allocs := testing.AllocsPerRun(2000, func() {
			if _, err := n.Get(key); err != nil {
				t.Fatal(err)
			}
		})
		c.Close()
		t.Logf("workers=%d: remote get %.1f allocs/op (seed: 7.0)", w, allocs)
		if allocs > 4.5 {
			t.Fatalf("workers=%d: remote get costs %.1f allocs/op, want <= 4.5 (seed was 7.0)", w, allocs)
		}
	}
}

// The consistency-plane counterpart: a hot Lin put fans out an invalidation
// broadcast, gathers acks and broadcasts the update — before the coalescing
// plane that was three Encode(nil) allocations per peer per write on top of
// the protocol's own bookkeeping. Encode-at-flush writes every message
// straight into the lane's packet buffer, so the steady-state cost is the
// durable per-write state (the immutable value copy, the waiter channel,
// per-packet buffers the reference-passing transport cannot recycle), not
// per-message garbage. Measured 19 allocs/op at the time the gate was set;
// the bound fails a reintroduction of per-message encode allocations (two
// peers x three messages would add ~6).
func TestLinPutAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	for _, w := range []int{1, 4} {
		c, err := New(Config{
			Nodes: 3, System: CCKVS, Protocol: core.Lin,
			NumKeys: 1024, CacheItems: 16, WorkersPerNode: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Populate()
		if err := c.InstallHotSet(DefaultHotSet(16)); err != nil {
			t.Fatal(err)
		}
		n := c.Node(0)
		val := bytes.Repeat([]byte{0xAB}, 40)
		allocs := testing.AllocsPerRun(2000, func() {
			if err := n.Put(0, val); err != nil {
				t.Fatal(err)
			}
		})
		c.Close()
		t.Logf("workers=%d: lin put %.1f allocs/op (gate set at 19.0)", w, allocs)
		if allocs > 20.5 {
			t.Fatalf("workers=%d: lin put costs %.1f allocs/op, want <= 20.5 (was 19.0 when gated)", w, allocs)
		}
	}
}
