package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/timestamp"
)

// The remote-access RPC of the NUMA abstraction (§6.1): on a cache miss for
// a remotely-homed key, the handling server issues a get (or forwards a put)
// to the key's home node over two-sided sends, FaSST-style. Requests are
// coalesced per destination by the pipeline (pipeline.go): one network
// packet carries up to Config.BatchMaxMsgs requests, the server answers each
// packet with exactly one batched response packet, and a request packet
// costs one credit that the response packet restores (§6.3).
//
// Wire formats (little endian). A packet holds one or more back-to-back
// entries; each entry is self-framing:
//
//	request:  op(1) reqID(8) key(8) [vlen(4) value]      op: 0=get 1=put 2=primary-write 3=seq-ts
//	          op(1) reqID(8) key(8) clock(4) writer(1) vlen(4) value
//	                                                     op: 4=promote 8=writeback
//	          op(1) reqID(8) key(8)                      op: 5/6/7=demote freeze/collect/commit, 9/10=promote prepare/fetch, 11=unfreeze, 12=demote-retire
//	response: reqID(8) status(1) [clock(4) writer(1) vlen(4) value]
//
// The response payload (timestamp + value) is present only when status is
// rpcStatusOK. rpcStatusNotFound answers gets for absent keys;
// rpcStatusBadRequest answers requests the server could identify (it parsed
// op+reqID) but could not serve — a truncated value, an unknown op, a
// primary write on a cache-less node — so the caller fails loudly instead of
// deadlocking on a response that will never come. rpcStatusRetry is a
// backpressure answer: the server cannot serve the request *yet* (a frozen
// entry still has protocol traffic in flight, a primary write hit a frozen
// entry) and the caller should re-issue it after yielding.
//
// Ops 4..8 are the incremental hot-set reconfiguration protocol (§4 under
// live traffic, see reconfig.go): promote installs a fetched value on a
// node's cache; demote-freeze/collect/commit run the three-step demotion;
// writeback applies a demoted dirty value to its home shard with
// PutIfNewer semantics (the version travels with the value, unlike op 1
// puts, which re-stamp against the stored clock).
const (
	rpcOpGet byte = 0
	rpcOpPut byte = 1
	// rpcOpPrimaryWrite executes a hot write on the primary's cache
	// (Figure 4a design; the primary broadcasts the resulting update).
	rpcOpPrimaryWrite byte = 2
	// rpcOpSeqTS fetches the next per-key serialization timestamp from
	// the sequencer (Figure 4b design).
	rpcOpSeqTS byte = 3
	// rpcOpPromote commits a promotion: the carried value+version turn the
	// key's placeholder (rpcOpPromotePrepare) into a live cache entry.
	// Without a placeholder it installs directly (no-op if already live).
	rpcOpPromote byte = 4
	// rpcOpDemoteFreeze marks key frozen in the receiving node's cache:
	// reads keep hitting, new writes are refused and retried by their
	// sessions until the key is gone.
	rpcOpDemoteFreeze byte = 5
	// rpcOpDemoteCollect snapshots the frozen entry for write-back; the
	// server answers Retry while the entry still has consistency traffic
	// in flight, NotFound when clean, OK(ts, value) when dirty.
	rpcOpDemoteCollect byte = 6
	// rpcOpDemoteCommit removes key from the receiving node's cache.
	rpcOpDemoteCommit byte = 7
	// rpcOpWriteback applies a demoted dirty value at its home shard iff
	// the carried version is newer than the stored one.
	rpcOpWriteback byte = 8
	// rpcOpPromotePrepare installs a frozen, valueless placeholder for key
	// in the receiving node's cache: reads miss to the home shard, writes
	// spin. Once every node holds it, the home value is stable and the
	// coordinator can fetch it without racing client puts.
	rpcOpPromotePrepare byte = 9
	// rpcOpPromoteFetch reads key's value+version for a promotion. Unlike
	// a plain get it takes the home's homeMu, so it serializes with local
	// miss-path puts whose cache probe predates the placeholders (remote
	// puts already serialize on this dispatcher thread).
	rpcOpPromoteFetch byte = 10
	// rpcOpUnfreeze lifts the write freeze from key in the receiving
	// node's cache: the final round of a promotion (only once every
	// replica is filled may writes resume, or a write completing early
	// would be invisible to readers still missing to the home shard) and
	// the abort path of a failed demotion.
	rpcOpUnfreeze byte = 11
	// rpcOpDemoteRetire darkens key in the receiving node's cache: reads
	// miss to the home shard (current since the write-back), writes stay
	// frozen. Only once every replica is dark may the commits remove the
	// key — otherwise a write landing at the home shard after the home's
	// own removal would be invisible to readers of the remaining copies.
	rpcOpDemoteRetire byte = 12
	// rpcOpPutStamp reserves a replicated put's write timestamp at the
	// key's acting primary (phase 1 of the replicated miss-path put,
	// ops.go): strictly above both the shard's stored version and every
	// previously stamped write, so the commits that follow can use
	// PutIfNewer everywhere without an acked write ever losing to the
	// stored value. Answers Retry when the key is cached (stale probe, as
	// for rpcOpPut) or while the node is re-syncing after a rejoin.
	rpcOpPutStamp byte = 13
	// rpcOpPutCommit applies a stamped replicated put at one replica
	// (phases 2-3): the carried version travels with the value and the
	// shard applies it with PutIfNewer semantics. Bounces with Retry when
	// the key is cached — the origin re-probes and re-executes through the
	// cache protocol.
	rpcOpPutCommit byte = 14
	// rpcOpCAS / rpcOpFAA execute an atomic read-modify-write at the key's
	// serialization point (rmw.go): the acting primary for a cold replicated
	// key, the home for a cold unreplicated one, or the RMW coordinator's
	// cache for a hot key. CAS carries expect+new, FAA carries a delta; both
	// answer with the witnessed value. A hot Lin RMW answers
	// rpcStatusRMWStarted (the coordinator's write protocol is still
	// collecting acks; the origin polls rpcOpRMWWait), a cold replicated one
	// answers rpcStatusRMWStamped (the origin drives the replicated commit of
	// the computed value), and a failed CAS answers rpcStatusCASFail with the
	// witness. Anything that must serialize elsewhere answers Retry.
	rpcOpCAS byte = 15
	rpcOpFAA byte = 16
	// rpcOpRMWClear releases an RMW pin the origin can no longer commit
	// (bounced or abandoned replicated commit); best-effort — a dead origin's
	// pins are cleared by the view change instead.
	rpcOpRMWClear byte = 17
	// rpcOpRMWWait polls a hot Lin RMW for completion: Retry while the
	// stamped write is still pending, OK once it committed (or was excised by
	// a view change). The poll keeps the request/response credit symmetry —
	// the server never holds a response back.
	rpcOpRMWWait byte = 18

	rpcStatusOK         byte = 0
	rpcStatusNotFound   byte = 1
	rpcStatusBadRequest byte = 2
	rpcStatusRetry      byte = 3
	// rpcStatusCASFail answers a CAS whose expectation did not match: the
	// payload (OK-shaped: ts + value) carries the witnessed value, so the
	// caller learns the current value without another round trip.
	rpcStatusCASFail byte = 4
	// rpcStatusRMWStamped answers a cold replicated RMW: the server applied
	// nothing yet — it stamped the op, pinned the key, and the payload
	// carries the stamp + witness; the origin computes the new value and
	// drives the replicated commit (stamp → backups → primary last).
	rpcStatusRMWStamped byte = 5
	// rpcStatusRMWStarted answers a hot Lin RMW: the coordinator staged the
	// write and broadcast its invalidation; the payload carries the pending
	// stamp + witness and the origin polls rpcOpRMWWait until it commits.
	rpcStatusRMWStarted byte = 6
)

// rpcStatusHasPayload reports whether a response status carries the OK-shaped
// payload (clock+writer+vlen+value) behind it.
func rpcStatusHasPayload(status byte) bool {
	switch status {
	case rpcStatusOK, rpcStatusCASFail, rpcStatusRMWStamped, rpcStatusRMWStarted:
		return true
	}
	return false
}

// rpcClient matches responses to outstanding requests for one worker. Every
// worker has its own completion table (and its own id space — ids only need
// to be unique per worker, since a response always returns to the resp
// thread of the worker that issued the request).
type rpcClient struct {
	w    *worker
	mu   sync.Mutex
	next uint64
	pend map[uint64]rpcPending
}

// rpcPending is one outstanding call: its completion channel plus the peer
// it targets, so a detected peer failure can fail exactly its calls.
type rpcPending struct {
	ch   chan rpcResult
	peer uint8
}

type rpcResult struct {
	status byte
	ts     timestamp.TS
	value  []byte
	err    error
}

// resChPool recycles completion channels: every call uses its channel for
// exactly one send and one receive, so awaitRPC can return it to the pool
// the moment the result is out.
var resChPool = sync.Pool{New: func() any { return make(chan rpcResult, 1) }}

func newRPCClient(w *worker) *rpcClient {
	return &rpcClient{w: w, pend: map[uint64]rpcPending{}}
}

// register installs a pending-completion channel for a fresh request id
// targeting peer.
func (r *rpcClient) register(peer uint8, id uint64) chan rpcResult {
	ch := resChPool.Get().(chan rpcResult)
	r.mu.Lock()
	r.pend[id] = rpcPending{ch: ch, peer: peer}
	r.mu.Unlock()
	return ch
}

// complete finishes the pending call id, if still registered.
func (r *rpcClient) complete(id uint64, res rpcResult) {
	r.mu.Lock()
	p, ok := r.pend[id]
	delete(r.pend, id)
	r.mu.Unlock()
	if ok {
		p.ch <- res
	}
}

// fail completes pending calls with an explicit error (transport failure,
// malformed response). Callers blocked in call/callMulti always wake up.
func (r *rpcClient) fail(ids []uint64, err error) {
	for _, id := range ids {
		r.complete(id, rpcResult{err: err})
	}
}

// failAll fails every pending call. Used at cluster shutdown: a response
// whose Send lost the race against transport close would otherwise leave
// its caller blocked forever.
func (r *rpcClient) failAll(err error) {
	r.mu.Lock()
	pend := r.pend
	r.pend = map[uint64]rpcPending{}
	r.mu.Unlock()
	for _, p := range pend {
		p.ch <- rpcResult{err: err}
	}
}

// failPeer fails every pending call targeting peer — the mirror of failAll
// for a single dead destination (Cluster.PeerDown). Calls to live peers keep
// waiting for their responses.
func (r *rpcClient) failPeer(peer uint8, err error) {
	r.mu.Lock()
	var chs []chan rpcResult
	for id, p := range r.pend {
		if p.peer == peer {
			delete(r.pend, id)
			chs = append(chs, p.ch)
		}
	}
	r.mu.Unlock()
	for _, ch := range chs {
		ch <- rpcResult{err: err}
	}
}

// wireReq is one not-yet-encoded request entry. The pipeline sender encodes
// it straight into the outgoing packet buffer (encode-at-send), so issuing
// a call allocates no per-request scratch. value (put/primary/promote/
// writeback) aliases caller memory and must stay stable until the call
// completes — trivially true, the caller blocks on the response.
type wireReq struct {
	op     byte
	id     uint64
	key    uint64
	ts     timestamp.TS // promote/writeback/rmw-wait/rmw-clear: the version
	value  []byte
	expect []byte // cas only: the expected value
	delta  uint64 // faa only: the addend
}

// encodedSize returns the entry's wire length.
func (q wireReq) encodedSize() int {
	switch q.op {
	case rpcOpPut, rpcOpPrimaryWrite:
		return 21 + len(q.value)
	case rpcOpPromote, rpcOpWriteback, rpcOpPutCommit:
		return 26 + len(q.value)
	case rpcOpCAS:
		return 25 + len(q.expect) + len(q.value)
	case rpcOpFAA:
		return 25
	case rpcOpRMWWait, rpcOpRMWClear:
		return 22
	default:
		return 17
	}
}

// appendTo encodes the entry onto buf.
func (q wireReq) appendTo(buf []byte) []byte {
	switch q.op {
	case rpcOpPut, rpcOpPrimaryWrite:
		return appendPutReq(buf, q.op, q.id, q.key, q.value)
	case rpcOpPromote, rpcOpWriteback, rpcOpPutCommit:
		return appendVersionedReq(buf, q.op, q.id, q.key, q.ts, q.value)
	case rpcOpCAS:
		buf = append(buf, q.op)
		buf = binary.LittleEndian.AppendUint64(buf, q.id)
		buf = binary.LittleEndian.AppendUint64(buf, q.key)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(q.expect)))
		buf = append(buf, q.expect...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(q.value)))
		return append(buf, q.value...)
	case rpcOpFAA:
		buf = append(buf, q.op)
		buf = binary.LittleEndian.AppendUint64(buf, q.id)
		buf = binary.LittleEndian.AppendUint64(buf, q.key)
		return binary.LittleEndian.AppendUint64(buf, q.delta)
	case rpcOpRMWWait, rpcOpRMWClear:
		buf = append(buf, q.op)
		buf = binary.LittleEndian.AppendUint64(buf, q.id)
		buf = binary.LittleEndian.AppendUint64(buf, q.key)
		buf = binary.LittleEndian.AppendUint32(buf, q.ts.Clock)
		return append(buf, q.ts.Writer)
	default:
		return appendGetReq(buf, q.op, q.id, q.key)
	}
}

// start registers a fresh request id for q and hands it to the coalescing
// pipeline without waiting — callers start any number of calls (across any
// set of home nodes), letting the per-destination senders pack them into
// multi-request packets, then collect the completions from the returned
// channels. No goroutines are needed to overlap remote accesses.
func (r *rpcClient) start(home uint8, q wireReq) chan rpcResult {
	q.id = r.newReqID()
	ch := r.register(home, q.id)
	r.w.pipe.enqueue(home, q)
	return ch
}

// awaitRPC blocks for one started call and normalizes transport errors and
// server refusals. The completion channel goes back to the pool — callers
// must not receive from it again.
func awaitRPC(ch chan rpcResult) (rpcResult, error) {
	res := <-ch
	resChPool.Put(ch)
	if res.err != nil {
		return rpcResult{}, res.err
	}
	if res.status == rpcStatusBadRequest {
		return rpcResult{}, fmt.Errorf("cluster: rpc rejected (bad request)")
	}
	return res, nil
}

// call runs one blocking request/response exchange.
func (r *rpcClient) call(home uint8, q wireReq) (rpcResult, error) {
	return awaitRPC(r.start(home, q))
}

func (r *rpcClient) newReqID() uint64 {
	r.mu.Lock()
	r.next++
	id := r.next
	r.mu.Unlock()
	return id
}

// handleResponse walks a batched response packet and completes every
// matching pending call. A truncated entry fails its call with an explicit
// error (instead of silently deadlocking it); once framing is lost the rest
// of the packet is undecodable — entries behind the truncation cannot even
// be identified, so their calls stay pending. Entries are self-framing with
// no packet-level manifest, which makes intra-packet integrity the
// transport's job (trivially true in-process and over TCP framing); the
// explicit-failure path exists for defense, not as a recovery protocol.
func (r *rpcClient) handleResponse(p fabric.Packet) {
	// One response packet answers exactly one request packet, so its arrival
	// is the implicit per-packet credit update (§6.3), no matter how many
	// responses it coalesces. The credit belongs to this worker's budget
	// toward the answering peer's KVS thread.
	n := r.w.node
	if n.cluster.killed.Load() {
		return
	}
	n.cluster.cfg.grantKVS(r.w, p.Src.Node)
	buf := p.Data
	for len(buf) >= 9 {
		reqID := binary.LittleEndian.Uint64(buf[:8])
		status := buf[8]
		buf = buf[9:]
		res := rpcResult{status: status}
		if rpcStatusHasPayload(status) {
			if len(buf) < 9 {
				n.RPCDecodeErrors.Add(1)
				r.complete(reqID, rpcResult{err: fmt.Errorf("cluster: truncated response header for req %d", reqID)})
				return
			}
			res.ts = timestamp.TS{
				Clock:  binary.LittleEndian.Uint32(buf[:4]),
				Writer: buf[4],
			}
			vlen := int(binary.LittleEndian.Uint32(buf[5:9]))
			buf = buf[9:]
			if len(buf) < vlen {
				n.RPCDecodeErrors.Add(1)
				r.complete(reqID, rpcResult{err: fmt.Errorf("cluster: truncated response value for req %d", reqID)})
				return
			}
			res.value = append([]byte(nil), buf[:vlen]...)
			buf = buf[vlen:]
		}
		r.complete(reqID, res)
	}
	if len(buf) > 0 {
		// Trailing garbage too short to name a request id; nothing to fail.
		n.RPCDecodeErrors.Add(1)
	}
}

// grantKVS restores one request-packet credit to wk's budget toward peer.
func (c Config) grantKVS(wk *worker, peer uint8) {
	wk.credits.Grant(fabric.Addr{Node: peer, Thread: c.kvsThread(wk.idx)}, 1)
}

// appendGetReq encodes a get (or seq-ts) request entry.
func appendGetReq(buf []byte, op byte, id, key uint64) []byte {
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	return binary.LittleEndian.AppendUint64(buf, key)
}

// appendPutReq encodes a put (or primary-write) request entry.
func appendPutReq(buf []byte, op byte, id, key uint64, value []byte) []byte {
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint64(buf, key)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(value)))
	return append(buf, value...)
}

// appendVersionedReq encodes a promote or writeback request entry, which
// carries the value's version alongside the value.
func appendVersionedReq(buf []byte, op byte, id, key uint64, ts timestamp.TS, value []byte) []byte {
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint64(buf, key)
	buf = binary.LittleEndian.AppendUint32(buf, ts.Clock)
	buf = append(buf, ts.Writer)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(value)))
	return append(buf, value...)
}

// RemoteGet fetches key from its home node over the fabric. A Retry answer
// (the server is re-syncing its shard after a rejoin) re-issues the call,
// bounded like every other protocol spin.
func (n *Node) RemoteGet(home uint8, key uint64) ([]byte, timestamp.TS, error) {
	for attempt := 0; ; attempt++ {
		res, err := n.workerFor(key).rpc.call(home, wireReq{op: rpcOpGet, key: key})
		if err != nil {
			return nil, timestamp.TS{}, err
		}
		switch res.status {
		case rpcStatusOK:
			return res.value, res.ts, nil
		case rpcStatusRetry:
			if attempt > frozenRetryLimit {
				return nil, timestamp.TS{}, ErrFrozenRetriesExhausted
			}
			yield()
		default:
			return nil, timestamp.TS{}, store.ErrNotFound
		}
	}
}

// remoteStamp reserves a replicated put's write timestamp at the key's
// acting primary (phase 1, ops.go replicatedPut). errPutBounced reports the
// primary caches the key or is re-syncing; the origin re-probes and
// re-executes.
func (n *Node) remoteStamp(primary uint8, key uint64) (timestamp.TS, error) {
	res, err := n.workerFor(key).rpc.call(primary, wireReq{op: rpcOpPutStamp, key: key})
	if err != nil {
		return timestamp.TS{}, err
	}
	switch res.status {
	case rpcStatusOK:
		return res.ts, nil
	case rpcStatusRetry:
		return timestamp.TS{}, errPutBounced
	default:
		return timestamp.TS{}, fmt.Errorf("cluster: put stamp failed (status %d)", res.status)
	}
}

// remoteMultiGet fetches a batch of keys homed on one node with a single
// pipelined exchange (few multi-request packets instead of len(keys)
// round-trips). values[i] is nil when keys[i] is absent; a non-nil error
// reports the first transport or protocol failure. It exists to exercise
// the coalescing pipeline in isolation (tests); production batch reads go
// through Node.MultiGet, which interleaves cache probes with the remote
// fan-out.
func (n *Node) remoteMultiGet(home uint8, keys []uint64) ([][]byte, []timestamp.TS, error) {
	chs := make([]chan rpcResult, len(keys))
	for i, key := range keys {
		chs[i] = n.workerFor(key).rpc.start(home, wireReq{op: rpcOpGet, key: key})
	}
	values := make([][]byte, len(keys))
	tss := make([]timestamp.TS, len(keys))
	var firstErr error
	for i, ch := range chs {
		res, err := awaitRPC(ch)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if res.status == rpcStatusOK {
			values[i] = res.value
			tss[i] = res.ts
		}
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return values, tss, nil
}

// errPutBounced reports that the home node refused a miss-path put because
// it currently caches the key (the probe was stale); the origin re-probes
// its own cache and re-executes the write.
var errPutBounced = errors.New("cluster: put bounced by home (key is hot)")

// RemotePut forwards a put for key to its home node.
func (n *Node) RemotePut(home uint8, key uint64, value []byte) error {
	res, err := n.workerFor(key).rpc.call(home, wireReq{op: rpcOpPut, key: key, value: value})
	if err != nil {
		return err
	}
	switch res.status {
	case rpcStatusOK:
		return nil
	case rpcStatusRetry:
		return errPutBounced
	default:
		return fmt.Errorf("cluster: remote put failed (status %d)", res.status)
	}
}

// remoteMultiPut forwards a batch of puts homed on one node with a single
// pipelined exchange. Like remoteMultiGet it exists to exercise the
// pipeline in isolation; production batch writes go through Node.MultiPut,
// which owns the bounce-and-re-execute handling for keys that went hot
// mid-flight (a bounce here, on the cache-less clusters the tests drive,
// would be a protocol error).
func (n *Node) remoteMultiPut(home uint8, keys []uint64, values [][]byte) error {
	chs := make([]chan rpcResult, len(keys))
	for i, key := range keys {
		chs[i] = n.workerFor(key).rpc.start(home, wireReq{op: rpcOpPut, key: key, value: values[i]})
	}
	var firstErr error
	for _, ch := range chs {
		res, err := awaitRPC(ch)
		if err == nil && res.status != rpcStatusOK {
			err = fmt.Errorf("cluster: remote put failed (status %d)", res.status)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// errPrimaryMiss reports that the primary no longer caches the key (the hot
// set shifted); the origin re-probes its own cache and falls back to the
// home shard.
var errPrimaryMiss = errors.New("cluster: primary missed the key")

// PrimaryWrite forwards a hot write to the primary node's cache (Figure 4a).
// A Retry answer means the primary's entry is frozen mid-demotion; the write
// is re-issued until the key either writes through or leaves the primary's
// hot set (errPrimaryMiss). The retries are bounded like every other frozen
// spin, so a freeze stranded by a failed reconfiguration fails loudly.
func (n *Node) PrimaryWrite(primary uint8, key uint64, value []byte) error {
	for attempt := 0; ; attempt++ {
		if attempt > frozenRetryLimit {
			return ErrFrozenRetriesExhausted
		}
		res, err := n.workerFor(key).rpc.call(primary, wireReq{op: rpcOpPrimaryWrite, key: key, value: value})
		if err != nil {
			return err
		}
		switch res.status {
		case rpcStatusOK:
			return nil
		case rpcStatusRetry:
			n.FrozenRetries.Add(1)
			yield()
		case rpcStatusNotFound:
			return errPrimaryMiss
		default:
			return fmt.Errorf("cluster: primary write failed (status %d)", res.status)
		}
	}
}

// SeqTS fetches the next serialization timestamp for key from the
// sequencer node (Figure 4b).
func (n *Node) SeqTS(sequencer uint8, key uint64) (timestamp.TS, error) {
	res, err := n.workerFor(key).rpc.call(sequencer, wireReq{op: rpcOpSeqTS, key: key})
	if err != nil {
		return timestamp.TS{}, err
	}
	if res.status != rpcStatusOK {
		return timestamp.TS{}, fmt.Errorf("cluster: sequencer failed (status %d)", res.status)
	}
	return res.ts, nil
}

// rpcRequest is one decoded request entry.
type rpcRequest struct {
	op     byte
	reqID  uint64
	key    uint64
	ts     timestamp.TS // promote/writeback/rmw-wait/rmw-clear: the version
	value  []byte       // nil for get/seq-ts/demote; aliases the packet buffer
	expect []byte       // cas only; aliases the packet buffer
	delta  uint64       // faa only
}

// errBadRequest distinguishes identifiable-but-unservable requests (the
// parser recovered op+reqID) from undecodable ones.
var errBadRequest = fmt.Errorf("cluster: malformed rpc request")

// parseRequest decodes the next request entry of a packet. When it returns
// an error with req.reqID != 0, the entry's header was intact and the server
// answers it with rpcStatusBadRequest; with reqID == 0 the framing is gone.
func parseRequest(buf []byte) (req rpcRequest, consumed int, err error) {
	if len(buf) < 9 {
		return rpcRequest{}, 0, errBadRequest
	}
	req.op = buf[0]
	req.reqID = binary.LittleEndian.Uint64(buf[1:9])
	switch req.op {
	case rpcOpGet, rpcOpSeqTS:
		if len(buf) < 17 {
			return req, 0, errBadRequest
		}
		req.key = binary.LittleEndian.Uint64(buf[9:17])
		return req, 17, nil
	case rpcOpPut, rpcOpPrimaryWrite:
		if len(buf) < 21 {
			return req, 0, errBadRequest
		}
		req.key = binary.LittleEndian.Uint64(buf[9:17])
		vlen := int(binary.LittleEndian.Uint32(buf[17:21]))
		if vlen < 0 || len(buf) < 21+vlen {
			return req, 0, errBadRequest
		}
		req.value = buf[21 : 21+vlen]
		return req, 21 + vlen, nil
	case rpcOpDemoteFreeze, rpcOpDemoteCollect, rpcOpDemoteCommit, rpcOpPromotePrepare, rpcOpPromoteFetch, rpcOpUnfreeze, rpcOpDemoteRetire, rpcOpPutStamp:
		if len(buf) < 17 {
			return req, 0, errBadRequest
		}
		req.key = binary.LittleEndian.Uint64(buf[9:17])
		return req, 17, nil
	case rpcOpPromote, rpcOpWriteback, rpcOpPutCommit:
		if len(buf) < 26 {
			return req, 0, errBadRequest
		}
		req.key = binary.LittleEndian.Uint64(buf[9:17])
		req.ts = timestamp.TS{
			Clock:  binary.LittleEndian.Uint32(buf[17:21]),
			Writer: buf[21],
		}
		vlen := int(binary.LittleEndian.Uint32(buf[22:26]))
		if vlen < 0 || len(buf) < 26+vlen {
			return req, 0, errBadRequest
		}
		req.value = buf[26 : 26+vlen]
		return req, 26 + vlen, nil
	case rpcOpCAS:
		if len(buf) < 21 {
			return req, 0, errBadRequest
		}
		req.key = binary.LittleEndian.Uint64(buf[9:17])
		elen := int(binary.LittleEndian.Uint32(buf[17:21]))
		if elen < 0 || len(buf) < 25+elen {
			return req, 0, errBadRequest
		}
		req.expect = buf[21 : 21+elen]
		vlen := int(binary.LittleEndian.Uint32(buf[21+elen : 25+elen]))
		if vlen < 0 || len(buf) < 25+elen+vlen {
			return req, 0, errBadRequest
		}
		req.value = buf[25+elen : 25+elen+vlen]
		return req, 25 + elen + vlen, nil
	case rpcOpFAA:
		if len(buf) < 25 {
			return req, 0, errBadRequest
		}
		req.key = binary.LittleEndian.Uint64(buf[9:17])
		req.delta = binary.LittleEndian.Uint64(buf[17:25])
		return req, 25, nil
	case rpcOpRMWWait, rpcOpRMWClear:
		if len(buf) < 22 {
			return req, 0, errBadRequest
		}
		req.key = binary.LittleEndian.Uint64(buf[9:17])
		req.ts = timestamp.TS{
			Clock:  binary.LittleEndian.Uint32(buf[17:21]),
			Writer: buf[21],
		}
		return req, 22, nil
	default:
		return req, 0, errBadRequest
	}
}

// appendStatusOnly encodes a payload-less response entry.
func appendStatusOnly(buf []byte, reqID uint64, status byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, reqID)
	return append(buf, status)
}

// appendOKResponse encodes a response entry carrying a timestamp and value.
func appendOKResponse(buf []byte, reqID uint64, ts timestamp.TS, value []byte) []byte {
	return appendPayloadResponse(buf, reqID, rpcStatusOK, ts, value)
}

// appendPayloadResponse encodes a response entry with the OK-shaped payload
// under an arbitrary payload-bearing status (rpcStatusHasPayload).
func appendPayloadResponse(buf []byte, reqID uint64, status byte, ts timestamp.TS, value []byte) []byte {
	buf = appendPayloadHeader(buf, reqID, status, ts, len(value))
	return append(buf, value...)
}

// appendPayloadHeader encodes everything of a payload-bearing response entry
// except the value bytes themselves — the zero-copy path splices the value
// in as its own wire segment right after this header.
func appendPayloadHeader(buf []byte, reqID uint64, status byte, ts timestamp.TS, vlen int) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, reqID)
	buf = append(buf, status)
	buf = binary.LittleEndian.AppendUint32(buf, ts.Clock)
	buf = append(buf, ts.Writer)
	return binary.LittleEndian.AppendUint32(buf, uint32(vlen))
}

// srvBuf is a pooled server-side scratch buffer (response packets, KVS read
// staging).
type srvBuf struct{ b []byte }

var (
	respBufPool = sync.Pool{New: func() any { return &srvBuf{b: make([]byte, 0, 256)} }}
	scratchPool = sync.Pool{New: func() any { return new(srvBuf) }}
)

// respCut marks a zero-copy value spliced into a response packet: the value
// of a store lease, inserted at metadata offset off. Offsets (not slices)
// are recorded because the metadata buffer may reallocate as it grows.
type respCut struct {
	off   int
	lease store.Lease
}

// respAssembly collects the zero-copy splices of one response packet and the
// scratch used to materialize them into a vectored payload. Pooled; used
// only on transports that consume segments during Send (trCopies).
type respAssembly struct {
	cuts []respCut
	segs [][]byte
}

var respAsmPool = sync.Pool{New: func() any { return new(respAssembly) }}

// splice records lease's value for zero-copy insertion at the current end of
// meta and returns meta unchanged (the value travels as its own segment).
func (ra *respAssembly) splice(meta []byte, lease store.Lease) {
	ra.cuts = append(ra.cuts, respCut{off: len(meta), lease: lease})
}

// vector interleaves meta spans and spliced values, in order, into a
// segment list backed by ra's pooled scratch.
func (ra *respAssembly) vector(meta []byte) [][]byte {
	segs := ra.segs[:0]
	prev := 0
	for _, c := range ra.cuts {
		if c.off > prev {
			segs = append(segs, meta[prev:c.off])
		}
		segs = append(segs, c.lease.Value())
		prev = c.off
	}
	if prev < len(meta) {
		segs = append(segs, meta[prev:])
	}
	ra.segs = segs
	return segs
}

// release drops every spliced lease and clears retained slices so the pool
// holds no value memory. Call after the transport consumed the segments.
func (ra *respAssembly) release() {
	for i := range ra.cuts {
		ra.cuts[i].lease.Release()
	}
	ra.cuts = ra.cuts[:0]
	for i := range ra.segs {
		ra.segs[i] = nil
	}
	ra.segs = ra.segs[:0]
}

// handleKVSRequest serves every request of a (possibly multi-request) packet
// against the local shard and answers with exactly one batched response
// packet — the request/response symmetry the per-packet credit accounting
// relies on. It runs on a KVS-bank dispatcher; KVS threads never talk to
// each other (§6.2), they only answer cache threads. The response returns
// to the requesting worker's resp thread (the packet's source address), so
// a request served by bank member w completes on the requester's bank
// member w — the two sides' stripes stay aligned.
func (n *Node) handleKVSRequest(p fabric.Packet) {
	if n.cluster.killed.Load() {
		return // a dead process answers nothing; the sender's view change fails the call
	}
	buf := p.Data
	scratch := scratchPool.Get().(*srvBuf)
	var pooled *srvBuf
	var ra *respAssembly
	var resp []byte
	if n.cluster.trCopies {
		// The transport serializes the packet during Send, so the response
		// buffer can be recycled — and store leases released — the moment
		// Send returns. Gets answer zero-copy: their values ride as leased
		// segments of a vectored payload instead of being copied into resp.
		pooled = respBufPool.Get().(*srvBuf)
		resp = pooled.b[:0]
		ra = respAsmPool.Get().(*respAssembly)
	} else {
		resp = make([]byte, 0, 64)
	}
	for len(buf) > 0 {
		req, consumed, err := parseRequest(buf)
		if err != nil {
			// An identifiable entry gets an explicit refusal so its caller
			// fails instead of waiting forever; either way the rest of the
			// packet has lost framing and cannot be decoded.
			if req.reqID != 0 {
				resp = appendStatusOnly(resp, req.reqID, rpcStatusBadRequest)
			}
			n.RPCDecodeErrors.Add(1)
			break
		}
		buf = buf[consumed:]
		resp = n.serveRequest(p.Src.Node, req, resp, scratch, ra)
	}
	// Always answer, even when nothing was decodable (resp may be empty):
	// the sender charged one credit for this packet and only the response
	// packet restores it — swallowing a malformed packet would leak the
	// credit and eventually wedge all remote traffic from that peer.
	out := fabric.Packet{
		Src:   fabric.Addr{Node: n.id, Thread: p.Dst.Thread},
		Dst:   p.Src,
		Class: metrics.ClassCacheMiss,
	}
	if ra != nil && len(ra.cuts) > 0 {
		out.Segs = ra.vector(resp)
	} else {
		out.Data = resp
	}
	n.cluster.transport.Send(out)
	if ra != nil {
		ra.release() // the transport consumed the segments during Send
		respAsmPool.Put(ra)
	}
	scratchPool.Put(scratch)
	if pooled != nil {
		pooled.b = resp
		respBufPool.Put(pooled)
	}
}

// serveRequest executes one decoded request and appends its response entry.
// scratch stages KVS reads so a get copies once (shard into scratch, scratch
// into resp) without allocating. When ra is non-nil (transports that consume
// segments during Send), gets skip even that copy: the value is leased from
// the store and spliced into the packet as its own wire segment.
func (n *Node) serveRequest(src uint8, req rpcRequest, resp []byte, scratch *srvBuf, ra *respAssembly) []byte {
	switch req.op {
	case rpcOpGet:
		if n.cluster.syncing.Load() {
			// Re-syncing after a rejoin: the shard may still hold pre-crash
			// state; readers wait for the seed stream (RemoteGet re-issues).
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		if ra != nil {
			lease, ts, err := n.kvs.GetLease(req.key)
			if err != nil {
				return appendStatusOnly(resp, req.reqID, rpcStatusNotFound)
			}
			resp = appendPayloadHeader(resp, req.reqID, rpcStatusOK, ts, len(lease.Value()))
			ra.splice(resp, lease)
			return resp
		}
		v, ts, err := n.kvs.Get(req.key, scratch.b[:0])
		if err != nil {
			return appendStatusOnly(resp, req.reqID, rpcStatusNotFound)
		}
		scratch.b = v
		return appendOKResponse(resp, req.reqID, ts, v)
	case rpcOpPut:
		if n.cluster.syncing.Load() {
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		// Puts that miss the cache go to the home shard; they carry no
		// protocol timestamp, so advance the stored clock to serialize
		// (home-node writes are trivially serialized per key).
		//
		// A put for a key this node currently caches is a stale probe: the
		// key (re)entered the hot set between the origin's cache miss and
		// this packet's arrival. Bounce it — the origin re-probes and the
		// write re-executes through the cache protocol. The check and the
		// shard write run under the key's worker homeMu, the mutex a
		// promotion fetch holds while reading this shard (whether served by
		// rpcOpPromoteFetch or read directly by a coordinator homed here),
		// so a miss-path put can never slip into the home shard between the
		// placeholder barrier and the fetch — on any transport, however its
		// dispatch threads are laid out.
		wk := n.workerFor(req.key)
		wk.homeMu.Lock()
		if n.cache != nil && n.cache.Contains(req.key) {
			wk.homeMu.Unlock()
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		v, ts, err := n.kvs.Get(req.key, scratch.b[:0])
		if err != nil {
			ts = timestamp.TS{}
		} else {
			scratch.b = v
		}
		n.kvs.Put(req.key, req.value, ts.Next(n.id))
		wk.homeMu.Unlock()
		return appendOKResponse(resp, req.reqID, timestamp.TS{}, nil)
	case rpcOpPrimaryWrite:
		if n.cache == nil {
			return appendStatusOnly(resp, req.reqID, rpcStatusBadRequest)
		}
		// All hot writes serialize through this node's cache; the update
		// broadcast reaches every other node, including the origin.
		upd, err := n.cache.WriteSC(req.key, req.value)
		if err == core.ErrFrozen {
			// Mid-demotion: the origin retries until the key leaves the
			// hot set and the write goes to the home shard instead.
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		if err != nil {
			return appendStatusOnly(resp, req.reqID, rpcStatusNotFound)
		}
		n.broadcastUpdate(upd)
		return appendOKResponse(resp, req.reqID, upd.TS, nil)
	case rpcOpSeqTS:
		wk := n.workerFor(req.key)
		wk.seqMu.Lock()
		wk.seqClocks[req.key]++
		clock := wk.seqClocks[req.key]
		wk.seqMu.Unlock()
		// Writer id: the requesting node.
		return appendOKResponse(resp, req.reqID, timestamp.TS{Clock: clock, Writer: src}, nil)
	case rpcOpPromotePrepare:
		if n.cache == nil {
			return appendStatusOnly(resp, req.reqID, rpcStatusBadRequest)
		}
		n.cache.AddPending([]uint64{req.key})
		return appendOKResponse(resp, req.reqID, timestamp.TS{}, nil)
	case rpcOpPromoteFetch:
		if n.cluster.syncing.Load() {
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		wk := n.workerFor(req.key)
		wk.homeMu.Lock()
		v, ts, err := n.kvs.Get(req.key, scratch.b[:0])
		if err == nil && n.cluster.replicated() {
			// Lift the fetched version above every stamp handed out for the
			// key (rpcOpPutStamp): a stamped put that bounces off the fresh
			// cache entry re-executes through the cache protocol, and its
			// orphaned backup commits must lose to the cache's subsequent
			// demotion write-backs, not outlive them.
			wk.seqMu.Lock()
			if c := wk.seqClocks[req.key]; c > ts.Clock {
				ts = timestamp.TS{Clock: c, Writer: n.id}
			}
			wk.seqMu.Unlock()
		}
		wk.homeMu.Unlock()
		if err != nil {
			return appendStatusOnly(resp, req.reqID, rpcStatusNotFound)
		}
		scratch.b = v
		return appendOKResponse(resp, req.reqID, ts, v)
	case rpcOpUnfreeze:
		if n.cache == nil {
			return appendStatusOnly(resp, req.reqID, rpcStatusBadRequest)
		}
		n.cache.Unfreeze([]uint64{req.key})
		return appendOKResponse(resp, req.reqID, timestamp.TS{}, nil)
	case rpcOpDemoteRetire:
		if n.cache == nil {
			return appendStatusOnly(resp, req.reqID, rpcStatusBadRequest)
		}
		n.cache.Retire([]uint64{req.key})
		return appendOKResponse(resp, req.reqID, timestamp.TS{}, nil)
	case rpcOpPromote:
		if n.cache == nil {
			return appendStatusOnly(resp, req.reqID, rpcStatusBadRequest)
		}
		if !n.cache.FillAdd(req.key, req.value, req.ts) {
			// No placeholder (e.g. a prepare raced an overlapping epoch):
			// install directly; an already-live entry is left alone.
			val, ts := req.value, req.ts
			n.cache.Add([]uint64{req.key}, func(uint64) ([]byte, timestamp.TS, bool) {
				return val, ts, true
			})
		}
		return appendOKResponse(resp, req.reqID, timestamp.TS{}, nil)
	case rpcOpDemoteFreeze:
		if n.cache == nil {
			return appendStatusOnly(resp, req.reqID, rpcStatusBadRequest)
		}
		n.cache.Freeze([]uint64{req.key})
		return appendOKResponse(resp, req.reqID, timestamp.TS{}, nil)
	case rpcOpDemoteCollect:
		if n.cache == nil {
			return appendStatusOnly(resp, req.reqID, rpcStatusBadRequest)
		}
		wb, dirty, quiescent := n.cache.CollectFrozen(req.key)
		if !quiescent {
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		if !dirty {
			return appendStatusOnly(resp, req.reqID, rpcStatusNotFound)
		}
		return appendOKResponse(resp, req.reqID, wb.TS, wb.Value)
	case rpcOpDemoteCommit:
		if n.cache == nil {
			return appendStatusOnly(resp, req.reqID, rpcStatusBadRequest)
		}
		n.cache.Remove([]uint64{req.key})
		return appendOKResponse(resp, req.reqID, timestamp.TS{}, nil)
	case rpcOpWriteback:
		// A stale write-back (the home already holds something newer, e.g.
		// a post-demotion client put) loses quietly — exactly the
		// PutIfNewer contract the epoch change relies on.
		_ = n.kvs.PutIfNewer(req.key, req.value, req.ts)
		return appendOKResponse(resp, req.reqID, timestamp.TS{}, nil)
	case rpcOpPutStamp:
		if n.cluster.syncing.Load() {
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		wk := n.workerFor(req.key)
		wk.homeMu.Lock()
		if n.cache != nil && n.cache.Contains(req.key) {
			wk.homeMu.Unlock()
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		_, ts, err := n.kvs.Get(req.key, scratch.b[:0])
		if err != nil {
			ts = timestamp.TS{}
		}
		wk.seqMu.Lock()
		clock := wk.seqClocks[req.key]
		if ts.Clock > clock {
			clock = ts.Clock
		}
		clock++
		wk.seqClocks[req.key] = clock
		wk.seqMu.Unlock()
		wk.homeMu.Unlock()
		return appendOKResponse(resp, req.reqID, timestamp.TS{Clock: clock, Writer: n.id}, nil)
	case rpcOpPutCommit:
		// Applying a stamped put at a replica: the bounce check mirrors
		// rpcOpPut (the key went hot between the stamp and this commit; the
		// origin re-executes through the cache protocol), the write itself
		// is PutIfNewer — a commit racing a newer stamp's commit loses
		// quietly, exactly the order the stamps define.
		wk := n.workerFor(req.key)
		wk.homeMu.Lock()
		if n.cache != nil && n.cache.Contains(req.key) {
			wk.homeMu.Unlock()
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		_ = n.kvs.PutIfNewer(req.key, req.value, req.ts)
		// A commit carrying an RMW pin's stamp IS that RMW landing at its
		// serialization point; the pin has done its job.
		if pin, ok := wk.rmwPins[req.key]; ok && pin.ts == req.ts {
			delete(wk.rmwPins, req.key)
		}
		wk.homeMu.Unlock()
		return appendOKResponse(resp, req.reqID, timestamp.TS{}, nil)
	case rpcOpCAS, rpcOpFAA:
		return n.serveRMW(src, req, resp)
	case rpcOpRMWWait:
		return n.serveRMWWait(req, resp)
	case rpcOpRMWClear:
		wk := n.workerFor(req.key)
		wk.homeMu.Lock()
		if pin, ok := wk.rmwPins[req.key]; ok && pin.origin == src && pin.ts == req.ts {
			delete(wk.rmwPins, req.key)
		}
		wk.homeMu.Unlock()
		return appendOKResponse(resp, req.reqID, timestamp.TS{}, nil)
	default:
		// Unreachable today — parseRequest rejects unknown ops — but kept so
		// the two dispatch tables cannot drift apart silently.
		return appendStatusOnly(resp, req.reqID, rpcStatusBadRequest)
	}
}
