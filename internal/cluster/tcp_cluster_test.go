package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
)

// The full ccKVS protocol stack over real sockets: one member per
// TCPTransport on loopback — the same deployment shape as three cckvs-node
// processes, minus the process boundary.

// newTCPMembers builds cfg.Nodes members, each with its own TCP transport on
// an ephemeral loopback port, wires the peer tables and peer-down handlers,
// and populates the shards. It returns the members and their listen
// addresses (for session clients).
func newTCPMembers(t *testing.T, cfg Config) ([]*Cluster, []string) {
	t.Helper()
	members, addrs, _ := newTCPMembersStats(t, cfg)
	return members, addrs
}

// newTCPMembersStats is newTCPMembers exposing each node's transport stats
// (the zero-copy assertions read the vectored/flattened counters).
func newTCPMembersStats(t *testing.T, cfg Config) ([]*Cluster, []string, []*fabric.Stats) {
	t.Helper()
	n := cfg.Nodes
	trs := make([]*fabric.TCPTransport, n)
	addrs := make([]string, n)
	allStats := make([]*fabric.Stats, n)
	for i := 0; i < n; i++ {
		stats := fabric.NewStats()
		allStats[i] = stats
		tr, err := fabric.NewTCPTransport(uint8(i), "127.0.0.1:0", stats)
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		addrs[i] = tr.ListenAddr()
	}
	members := make([]*Cluster, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i {
				trs[i].AddPeer(uint8(j), addrs[j])
			}
		}
		m, err := NewMember(cfg, i, trs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		trs[i].SetPeerDownHandler(m.PeerDown)
		m.Populate()
		members[i] = m
	}
	t.Cleanup(func() {
		for _, m := range members {
			m.Close()
		}
	})
	return members, addrs, allStats
}

// The end-to-end zero-copy acceptance check: a session get served over TCP
// must leave the server by scatter-gather write, with the value segment
// aliasing store memory under a lease — zero flattening copies anywhere on
// the node's send path. Both the single-op and the batched reply shapes are
// exercised.
func TestTCPSessionGetZeroCopyVectored(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 1024}
	members, addrs, stats := newTCPMembersStats(t, cfg)
	cl, err := DialTCP(203, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	key := coldKeyHomedOn(t, members[0], 0, cfg.NumKeys)
	v, err := cl.Get(0, key)
	if err != nil || len(v) == 0 {
		t.Fatalf("get over TCP: (%q, %v)", v, err)
	}
	single := stats[0].VectoredBytes.Load()
	if single == 0 {
		t.Fatal("single-op get reply was not vectored: VectoredBytes = 0")
	}

	keys := make([]uint64, 0, 16)
	for k := uint64(0); len(keys) < 16; k++ {
		if HomeOf(k, cfg.Nodes) == 0 {
			keys = append(keys, k)
		}
	}
	out, err := cl.MultiGet(0, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, val := range out {
		if len(val) == 0 {
			t.Fatalf("batched get %d: empty value", i)
		}
	}
	if grew := stats[0].VectoredBytes.Load(); grew <= single {
		t.Fatalf("batched get reply was not vectored: VectoredBytes %d -> %d", single, grew)
	}
	if f := stats[0].FlattenedBytes.Load(); f != 0 {
		t.Fatalf("FlattenedBytes = %d, want 0 — some reply copied its value segments", f)
	}
}

func TestTCPMemberFullProtocol(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			cfg := Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 1024, CacheItems: 16, ValueSize: 16,
			}
			members, addrs := newTCPMembers(t, cfg)

			cl, err := DialTCP(200, addrs)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			if err := cl.WaitReady(10 * time.Second); err != nil {
				t.Fatal(err)
			}

			// Bootstrap the hot set over sockets.
			hot := DefaultHotSet(cfg.CacheItems)
			if p, _, err := cl.Refresh(0, hot); err != nil || p != cfg.CacheItems {
				t.Fatalf("refresh: promoted=%d err=%v", p, err)
			}

			// Hot write through one node, read through the others.
			want := bytes.Repeat([]byte{0x7}, 16)
			if err := cl.Put(1, hot[2], want); err != nil {
				t.Fatal(err)
			}
			for node := 0; node < cfg.Nodes; node++ {
				node := node
				waitForValue(t, "tcp node", want, func() ([]byte, error) {
					return cl.Get(node, hot[2])
				})
			}

			// Cold keys cross the socket fabric between members.
			cold := coldKeyHomedOn(t, members[0], 2, cfg.NumKeys)
			if err := cl.Put(0, cold, []byte("tcp-cold")); err != nil {
				t.Fatal(err)
			}
			got, err := cl.Get(1, cold)
			if err != nil || !bytes.Equal(got, []byte("tcp-cold")) {
				t.Fatalf("cold read: %q, %v", got, err)
			}

			// Online refresh while clients keep issuing traffic.
			stop := make(chan struct{})
			trafficErr := make(chan error, 1)
			go func() {
				defer close(trafficErr)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := hot[i%len(hot)]
					if err := cl.Put(i%cfg.Nodes, k, want); err != nil {
						trafficErr <- err
						return
					}
					if _, err := cl.Get((i+1)%cfg.Nodes, k); err != nil {
						trafficErr <- err
						return
					}
				}
			}()
			shifted := make([]uint64, cfg.CacheItems)
			for i := range shifted {
				shifted[i] = uint64(cfg.CacheItems/2 + i)
			}
			_, _, rerr := cl.Refresh(2, shifted)
			close(stop)
			if err := <-trafficErr; err != nil {
				t.Fatalf("traffic during refresh: %v", err)
			}
			if rerr != nil {
				t.Fatalf("refresh under load: %v", rerr)
			}

			// Hits must have accrued on the symmetric caches.
			var hits uint64
			for node := 0; node < cfg.Nodes; node++ {
				st, err := cl.Stats(node)
				if err != nil {
					t.Fatal(err)
				}
				hits += st.CacheHits
			}
			if hits == 0 {
				t.Fatal("no cache hits over TCP deployment")
			}
		})
	}
}

// Killing a member must fail the RPCs other members have pending toward it —
// the cluster-shutdown guarantee extended to peer failure. Without the
// peer-down hook, callers blocked on a response from the dead node would
// hang forever.
func TestTCPPeerDisconnectFailsPendingRPCs(t *testing.T) {
	cfg := Config{Nodes: 3, System: Base, NumKeys: 1024}
	members, _ := newTCPMembers(t, cfg)

	// Warm the connection so the failure path is a broken established
	// stream, not a refused dial.
	k := coldKeyHomedOn(t, members[0], 2, cfg.NumKeys)
	if _, _, err := members[0].Node(0).RemoteGet(2, k); err != nil {
		t.Fatalf("warm-up remote get: %v", err)
	}

	// Kill member 2 abruptly (transport teardown, not a graceful protocol
	// exit), then hammer it with remote accesses. Every call must complete
	// with an error — whether it raced onto the broken stream (failed by the
	// peer-down handler) or found the connection gone (failed at send).
	if err := members[2].Close(); err != nil {
		t.Fatal(err)
	}
	const calls = 16
	done := make(chan error, calls)
	for i := 0; i < calls; i++ {
		go func() {
			_, _, err := members[0].Node(0).RemoteGet(2, k)
			done <- err
		}()
	}
	for i := 0; i < calls; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("remote get to killed node succeeded")
			}
		case <-time.After(15 * time.Second):
			t.Fatal("remote get to killed node hung (peer-down never failed the pending call)")
		}
	}

	// The two survivors keep serving each other.
	k01 := coldKeyHomedOn(t, members[0], 1, cfg.NumKeys)
	if _, _, err := members[0].Node(0).RemoteGet(1, k01); err != nil {
		t.Fatalf("survivor remote get: %v", err)
	}
}

// A session client must also fail fast when its server dies mid-call.
func TestTCPClientFailsOnServerDeath(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 256}
	members, addrs := newTCPMembers(t, cfg)
	cl, err := DialTCP(200, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(1, 1); err != nil && !errors.Is(err, ErrSessionTimeout) {
		// Key 1 may be homed anywhere; only transport-level failure matters.
		t.Fatalf("warm-up get: %v", err)
	}
	if err := members[1].Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := cl.Get(1, 1)
		if err != nil && !errors.Is(err, ErrSessionTimeout) {
			break // failed fast with a transport error, as required
		}
		if time.Now().After(deadline) {
			t.Fatal("client never observed the server death")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
