package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/workload"
)

// LocalClientEdgeAblation measures the client-facing session layer on the
// real in-process cluster: the same total operation count driven through
// single-op frames (the pre-batching client), through a wide pipelining
// window, and through v2 batch frames of growing size — plus the opt-in
// auto-batcher that coalesces concurrent single-op callers transparently.
// Batching amortizes the per-frame costs (request-id matching, dispatcher
// handoffs, response assembly) across many operations, the client-edge
// mirror of the fabric's request coalescing (§6.3/§8.5); unlike worker
// scaling it does not need parallel hardware, so the CI gate (batch-32 must
// reach 1.5x the single-op row) holds on a single hardware thread too.
func LocalClientEdgeAblation(opsPerClient int, requireEdge bool) (Table, error) {
	if opsPerClient <= 0 {
		opsPerClient = 3000
	}
	t := Table{
		ID:      "client-edge",
		Title:   "Client-edge session framing on the live cluster [3 nodes, Base, alpha=0.99, 5% writes]",
		Columns: []string{"mode", "clients", "throughput ops/s", "speedup", "p95 frame us", "allocs/op"},
	}
	const (
		nodes       = 3
		numKeys     = 16384
		baseClients = 8
	)
	totalOps := baseClients * opsPerClient
	wl := workload.Config{NumKeys: numKeys, Alpha: 0.99, WriteRatio: 0.05, ValueSize: 40, Seed: 42}

	modes := []struct {
		label   string
		clients int
		batch   int // ops per frame; 0 = single-op frames
		auto    bool
	}{
		{"single-op", baseClients, 0, false},
		{"pipelined", 64, 0, false},
		{"batched 8", baseClients, 8, false},
		{"batched 32", baseClients, 32, false},
		{"batched 64", baseClients, 64, false},
		{"auto-batch 32", 64, 32, true},
	}

	tput := map[string]float64{}
	var baseline float64
	for _, m := range modes {
		ops, lat, dur, allocs, err := runEdgeMode(nodes, numKeys, totalOps, m.clients, m.batch, m.auto, wl)
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", m.label, err)
		}
		rate := float64(ops) / dur.Seconds()
		tput[m.label] = rate
		if baseline == 0 {
			baseline = rate
		}
		allocCell := any(allocs)
		if m.auto {
			// The adaptive batcher's framing depends on how much the
			// callers actually overlap — a host that serializes them takes
			// the inline-flush path per op and allocates several times more
			// than one that coalesces. The count is informative but not a
			// property of the code alone, so the "~" keeps it out of the
			// absolute allocs regression gate (unparseable by design).
			allocCell = fmt.Sprintf("~%.1f", allocs)
		}
		t.AddRow(m.label, m.clients, rate,
			fmt.Sprintf("%.2fx", rate/baseline), float64(lat.Percentile(0.95))/1000, allocCell)
	}
	t.Notes = append(t.Notes,
		"row 1 is the pre-batching client: one wire frame and one request-id round trip per op",
		"frame latency covers a whole frame — a batched row's p95 spans every op the frame carries",
		"allocs/op is the whole-process heap allocation count over the run divided by ops: client framing, servers, protocol engines and background work together — the number the zero-copy value path drives down",
		"the auto-batch allocs/op is ~approximate: it tracks caller overlap (scheduling), so the regression gate skips it")

	if requireEdge {
		if tput["batched 32"] < 1.5*tput["single-op"] {
			return t, fmt.Errorf("client-edge regression: batch-32 throughput %.0f ops/s is below 1.5x the single-op %.0f ops/s",
				tput["batched 32"], tput["single-op"])
		}
	}
	return t, nil
}

// runEdgeMode drives totalOps through a fresh deployment in one framing mode
// and reports the ops completed, the per-frame latency histogram, the wall
// time and the whole-process allocations per op over the timed section.
func runEdgeMode(nodes, numKeys, totalOps, clients, batch int, auto bool, wl workload.Config) (int, *metrics.Histogram, time.Duration, float64, error) {
	stats := fabric.NewStats()
	tr := fabric.NewChanTransport(512, stats)
	c, err := cluster.NewWithTransport(cluster.Config{
		Nodes: nodes, System: cluster.Base, NumKeys: uint64(numKeys), QueueDepth: 512,
	}, tr, stats)
	if err != nil {
		return 0, nil, 0, 0, err
	}
	defer c.Close()
	c.Populate()
	cl := cluster.NewClient(200, nodes, tr)
	defer cl.Close()
	if auto {
		cl.SetAutoBatch(batch, 200*time.Microsecond)
	}

	gen, err := workload.New(wl)
	if err != nil {
		return 0, nil, 0, 0, err
	}
	lat := metrics.NewHistogram()
	perClient := totalOps / clients
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errCh <- edgeClient(cl, gen.Clone(uint64(id)), id, nodes, perClient, batch, auto, lat)
		}(id)
	}
	wg.Wait()
	dur := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return 0, nil, 0, 0, err
		}
	}
	ops := perClient * clients
	allocs := float64(msAfter.Mallocs-msBefore.Mallocs) / float64(ops)
	return ops, lat, dur, allocs, nil
}

// edgeClient issues one client goroutine's share of the workload. Batched
// modes pack consecutive operations into Batch frames; single-op and
// auto-batch modes call Get/Put per op (the auto-batcher coalesces across
// goroutines underneath).
func edgeClient(cl *cluster.Client, g *workload.Generator, id, nodes, ops, batch int, auto bool, lat *metrics.Histogram) error {
	tolerate := func(err error) error {
		if err == nil || errors.Is(err, store.ErrNotFound) {
			return nil
		}
		return err
	}
	if batch <= 0 || auto {
		for i := 0; i < ops; i++ {
			op := g.Next()
			node := (id + i) % nodes
			t0 := time.Now()
			var err error
			if op.Type == workload.Put {
				// The generator reuses its value buffer; the auto-batcher
				// may hold the op past this call, so hand it a copy.
				err = cl.Put(node, op.Key, append([]byte(nil), op.Value...))
			} else {
				_, err = cl.Get(node, op.Key)
			}
			lat.Record(uint64(time.Since(t0).Nanoseconds()))
			if err := tolerate(err); err != nil {
				return err
			}
		}
		return nil
	}
	buf := make([]cluster.BatchOp, 0, batch)
	for done := 0; done < ops; {
		buf = buf[:0]
		for len(buf) < batch && done+len(buf) < ops {
			op := g.Next()
			b := cluster.BatchOp{Key: op.Key}
			if op.Type == workload.Put {
				b.Put = true
				b.Value = append([]byte(nil), op.Value...)
			}
			buf = append(buf, b)
		}
		node := (id + done) % nodes
		t0 := time.Now()
		rs, err := cl.Batch(node, buf)
		lat.Record(uint64(time.Since(t0).Nanoseconds()))
		if err != nil {
			return err
		}
		for _, r := range rs {
			if err := tolerate(r.Err); err != nil {
				return err
			}
		}
		done += len(buf)
	}
	return nil
}
