#!/usr/bin/env bash
# API compatibility gate: diff the module's importable surface against a
# previous commit with apidiff (golang.org/x/exp/cmd/apidiff) and fail on
# incompatible changes. The importable surface is the root package alone —
# everything under internal/ is compiler-enforced private, so renames there
# are refactors, not breakage.
#
# Deliberate API breaks do happen; when one is intended, point APIDIFF_BASE
# at the commit that introduced it (or re-run after it merges). The gate's
# job is making breaks *loud*, not impossible.
#
# The repo's go.mod is dependency-free on purpose, so apidiff is never a
# module dependency: the script uses a tool already on PATH (or in
# GOPATH/bin), falls back to `go install`, and self-skips cleanly when
# neither works (offline sandboxes) or when the base commit is absent
# (shallow clones need fetch-depth >= 2).
#
# Usage: scripts/apidiff_gate.sh
# Env:   APIDIFF_BASE (commit to diff against, default HEAD~1)
set -euo pipefail
cd "$(dirname "$0")/.."

BASE="${APIDIFF_BASE:-HEAD~1}"

APIDIFF="$(command -v apidiff || true)"
if [ -z "$APIDIFF" ] && [ -x "$(go env GOPATH)/bin/apidiff" ]; then
    APIDIFF="$(go env GOPATH)/bin/apidiff"
fi
if [ -z "$APIDIFF" ]; then
    if ! go install golang.org/x/exp/cmd/apidiff@latest >/dev/null 2>&1; then
        echo "apidiff gate: SKIPPED (apidiff not installed and go install failed; offline?)"
        exit 0
    fi
    APIDIFF="$(go env GOPATH)/bin/apidiff"
fi

if ! git rev-parse --verify --quiet "${BASE}^{commit}" >/dev/null; then
    echo "apidiff gate: SKIPPED (base commit $BASE unavailable; shallow clone needs fetch-depth >= 2)"
    exit 0
fi

OLD=$(mktemp -d)
cleanup() {
    git worktree remove --force "$OLD" >/dev/null 2>&1 || true
    rm -rf "$OLD"
}
trap cleanup EXIT
git worktree add --detach "$OLD" "$BASE" >/dev/null 2>&1

# Export data for the root package at both commits; "." resolves to the
# module root package in each working tree.
(cd "$OLD" && "$APIDIFF" -w "$OLD/api.export" .)
NEW_EXPORT=$(mktemp)
trap 'rm -f "$NEW_EXPORT"; cleanup' EXIT
"$APIDIFF" -w "$NEW_EXPORT" .

echo "=== apidiff vs $BASE (root package) ==="
"$APIDIFF" "$OLD/api.export" "$NEW_EXPORT" || true

incompatible=$("$APIDIFF" -incompatible "$OLD/api.export" "$NEW_EXPORT")
if [ -n "$incompatible" ]; then
    echo "apidiff gate: FAILED — incompatible API changes vs $BASE:" >&2
    echo "$incompatible" >&2
    exit 1
fi
echo "apidiff gate: OK (no incompatible changes vs $BASE)"
