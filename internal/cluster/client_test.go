package cluster

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// Client failure paths: every way a server can vanish must surface a typed
// error the caller can branch on — never a hang, never an untyped string.

// A dial failure (nothing listening at the peer address) must surface
// ErrNodeUnreachable on the first call, not a timeout.
func TestClientDialFailureIsTyped(t *testing.T) {
	// Grab an address that is certainly not listening: bind, note, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cl, err := DialTCP(200, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	cl.SetTimeout(5 * time.Second)

	start := time.Now()
	_, gerr := cl.Get(0, 1)
	if !errors.Is(gerr, ErrNodeUnreachable) {
		t.Fatalf("dial failure: err = %v, want ErrNodeUnreachable", gerr)
	}
	if errors.Is(gerr, ErrSessionTimeout) || time.Since(start) > 3*time.Second {
		t.Fatalf("dial failure burned the timeout instead of failing fast (%v after %v)", gerr, time.Since(start))
	}
}

// A server that closes the connection mid-request must fail the pending call
// through the peer-down path with ErrNodeUnreachable — the client must not
// sit out its full timeout waiting for a response that can never arrive.
func TestClientServerClosesConnectionMidRequest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan struct{})
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		// Swallow the request frame, then slam the connection shut without
		// answering.
		buf := make([]byte, 64)
		_, _ = c.Read(buf)
		c.Close()
		close(accepted)
	}()

	cl, err := DialTCP(201, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	cl.SetTimeout(10 * time.Second)

	start := time.Now()
	_, gerr := cl.Get(0, 7)
	if !errors.Is(gerr, ErrNodeUnreachable) {
		t.Fatalf("mid-request close: err = %v, want ErrNodeUnreachable", gerr)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("mid-request close took %v (timeout-bound, not event-bound)", time.Since(start))
	}
	<-accepted
}

// A server that accepts and reads but never answers must trip the
// per-request timeout with ErrSessionTimeout.
func TestClientTimeoutOnSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		go func() { _, _ = io.Copy(io.Discard, c) }() // keep reading, never answer
		<-stop
	}()

	cl, err := DialTCP(202, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	cl.SetTimeout(200 * time.Millisecond)

	if _, gerr := cl.Get(0, 7); !errors.Is(gerr, ErrSessionTimeout) {
		t.Fatalf("silent server: err = %v, want ErrSessionTimeout", gerr)
	}
	// The client stays usable after a timed-out call (the pending entry was
	// dropped, not leaked).
	if _, gerr := cl.Get(0, 8); !errors.Is(gerr, ErrSessionTimeout) {
		t.Fatalf("second call after timeout: err = %v, want ErrSessionTimeout", gerr)
	}
}

// A server death after connect fails calls to that node and keeps the
// client usable against the survivors ("reconnect" at the orchestration
// level: the caller reroutes).
func TestClientReroutesAfterServerDeath(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 256}
	members, addrs := newTCPMembers(t, cfg)
	cl, err := DialTCP(203, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := members[1].Close(); err != nil {
		t.Fatal(err)
	}
	// Node 1 now fails (typed, eventually without consuming the timeout);
	// node 0 keeps serving survivor-homed keys.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, gerr := cl.Get(1, 1)
		if errors.Is(gerr, ErrNodeUnreachable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("death of node 1 never surfaced as ErrNodeUnreachable (last err %v)", gerr)
		}
		time.Sleep(10 * time.Millisecond)
	}
	k := coldKeyHomedOn(t, members[0], 0, cfg.NumKeys)
	if err := cl.Put(0, k, []byte("still-serving")); err != nil {
		t.Fatalf("survivor put: %v", err)
	}
	if v, err := cl.Get(0, k); err != nil || string(v) != "still-serving" {
		t.Fatalf("survivor get: %q %v", v, err)
	}
}
