package core

import (
	"bytes"
	"testing"

	"repro/internal/timestamp"
)

func newCacheWith(t *testing.T, nodeID uint8, nodes int, keys ...uint64) *Cache {
	t.Helper()
	c := NewCache(nodeID, nodes)
	c.Install(keys, func(key uint64) ([]byte, timestamp.TS, bool) {
		return []byte{byte(key)}, timestamp.TS{}, true
	})
	return c
}

func TestNewCachePanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewCache(0, 0)
}

func TestReadMiss(t *testing.T) {
	c := newCacheWith(t, 0, 3, 1, 2)
	if _, _, err := c.Read(99, nil); err != ErrMiss {
		t.Fatalf("err = %v", err)
	}
	if c.Stats().Misses.Load() != 1 {
		t.Fatalf("miss not counted")
	}
}

func TestReadHit(t *testing.T) {
	c := newCacheWith(t, 0, 3, 7)
	v, _, err := c.Read(7, nil)
	if err != nil || !bytes.Equal(v, []byte{7}) {
		t.Fatalf("read: %v %v", v, err)
	}
	if c.Stats().Hits.Load() != 1 {
		t.Fatalf("hit not counted")
	}
}

func TestContainsAndLen(t *testing.T) {
	c := newCacheWith(t, 0, 3, 1, 2, 3)
	if !c.Contains(2) || c.Contains(9) {
		t.Fatalf("Contains wrong")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	keys := c.Keys()
	if len(keys) != 3 {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestInstallFetchMissingKey(t *testing.T) {
	c := NewCache(0, 2)
	c.Install([]uint64{5}, func(uint64) ([]byte, timestamp.TS, bool) {
		return nil, timestamp.TS{}, false
	})
	v, ts, err := c.Read(5, nil)
	if err != nil || len(v) != 0 || ts != timestamp.Zero {
		t.Fatalf("empty entry expected: %v %v %v", v, ts, err)
	}
}

func TestInstallRetainsEntries(t *testing.T) {
	c := newCacheWith(t, 0, 3, 1, 2)
	if _, err := c.WriteSC(1, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	// Reinstall keeping key 1: its written value must survive.
	wb := c.Install([]uint64{1, 3}, func(key uint64) ([]byte, timestamp.TS, bool) {
		return []byte{byte(key)}, timestamp.TS{}, true
	})
	v, _, err := c.Read(1, nil)
	if err != nil || string(v) != "dirty" {
		t.Fatalf("retained entry lost data: %q %v", v, err)
	}
	// Key 2 was clean, so no write-back expected.
	if len(wb) != 0 {
		t.Fatalf("unexpected write-backs: %v", wb)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	c := newCacheWith(t, 1, 3, 1, 2)
	if _, err := c.WriteSC(2, []byte("mod")); err != nil {
		t.Fatal(err)
	}
	wb := c.Install([]uint64{1}, func(key uint64) ([]byte, timestamp.TS, bool) {
		return nil, timestamp.TS{}, false
	})
	if len(wb) != 1 || wb[0].Key != 2 || string(wb[0].Value) != "mod" {
		t.Fatalf("write-back = %+v", wb)
	}
	if wb[0].TS.Writer != 1 || wb[0].TS.Clock != 1 {
		t.Fatalf("write-back ts = %v", wb[0].TS)
	}
	if c.Stats().Evictions.Load() != 1 || c.Stats().WriteBacks.Load() != 1 {
		t.Fatalf("eviction counters wrong")
	}
	if c.Contains(2) {
		t.Fatalf("evicted key still cached")
	}
}

func TestReadIntoProvidedBuffer(t *testing.T) {
	c := newCacheWith(t, 0, 2, 4)
	buf := make([]byte, 0, 32)
	v, _, err := c.Read(4, buf)
	if err != nil || len(v) != 1 {
		t.Fatalf("%v %v", v, err)
	}
	if &v[0] != &buf[:1][0] {
		t.Fatalf("buffer not reused")
	}
}

func TestEntryStateHook(t *testing.T) {
	c := newCacheWith(t, 0, 2, 1)
	st, ts, ok := c.EntryState(1)
	if !ok || st != StateValid || ts != timestamp.Zero {
		t.Fatalf("state=%v ts=%v ok=%v", st, ts, ok)
	}
	if _, _, ok := c.EntryState(42); ok {
		t.Fatalf("missing key reported present")
	}
}

func TestStateString(t *testing.T) {
	if StateValid.String() != "Valid" || StateInvalid.String() != "Invalid" || StateWrite.String() != "Write" {
		t.Fatalf("state names wrong")
	}
	if State(9).String() == "" {
		t.Fatalf("unknown state must render")
	}
}
