// Package simnet is the calibrated performance simulator that regenerates
// the paper's measured results at rack scale (Figures 8-15).
//
// The real testbed — 9 machines, 56 Gb InfiniBand, a 12-port switch — is not
// available (and Go has no mature RDMA verbs binding), so simnet substitutes
// a first-principles resource model of that rack, calibrated with the
// constants the paper itself reports:
//
//   - a per-node, per-direction switch packet-processing budget, the
//     dominant bottleneck for small packets (§8.4: effective bandwidth for
//     small packets is 21.5 Gb/s while the NIC nominally does 54 Gb/s);
//   - a per-node, per-direction link bandwidth, the bottleneck once request
//     coalescing grows packets (§8.5, Figure 13a);
//   - per-node CPU service budgets for cache threads and KVS threads, and a
//     per-core budget for the EREW baseline whose hottest core saturates
//     first (§8.1);
//   - per-message wire sizes matching §8.7's B_RR = 113 B, B_SC = 83 B and
//     B_Lin = 183 B for 40-byte values.
//
// Throughput is obtained by a flow model: every resource constraint is
// linear in the offered load R, so the saturation throughput is the minimum
// over constraints of capacity/coefficient (flow.go). Latency under load
// (Figure 13c) comes from a discrete-event queueing simulation over the same
// resources (des.go).
package simnet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/zipf"
)

// System mirrors cluster.System for the simulated designs, adding Uniform
// explicitly (in the real cluster Uniform is Base under a uniform workload).
type System int

// Simulated systems.
const (
	Uniform System = iota
	BaseEREW
	Base
	CCKVS
)

// String names the system as the paper's figures do.
func (s System) String() string {
	switch s {
	case Uniform:
		return "Uniform"
	case BaseEREW:
		return "Base-EREW"
	case Base:
		return "Base"
	case CCKVS:
		return "ccKVS"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Calibration holds the rack's resource constants. The defaults reproduce
// the paper's testbed; tests may scale them down.
type Calibration struct {
	// PacketRatePPS is the per-node, per-direction packet budget through
	// the switch. Calibrated so a read-only Uniform run saturates at
	// 240 MRPS on 9 nodes (§8.1), equivalent to the 21.5 Gb/s effective
	// small-packet bandwidth of §8.4.
	PacketRatePPS float64
	// LinkBandwidthBits is the per-node, per-direction bandwidth in
	// bits/s; binding only for large or coalesced packets (Figure 13a's
	// "Net B/W Limit" line).
	LinkBandwidthBits float64
	// NodeKVSOps is a node's KVS service capacity (CRCW: all cores pool).
	NodeKVSOps float64
	// NodeCacheOps is a node's symmetric-cache service capacity.
	NodeCacheOps float64
	// EREWCoreOps is a single core's service rate when the KVS is
	// partitioned per core; the hottest core saturates first. It is lower
	// than NodeKVSOps/EREWCores because a dedicated-partition core cannot
	// batch across partitions.
	EREWCoreOps float64
	// EREWCores is the per-node core count for the EREW partitioning.
	EREWCores int
	// PacketHeader is the per-packet wire overhead in bytes; coalescing
	// amortizes it (§8.5).
	PacketHeader float64
	// CoalesceFactor is the average number of messages per packet when
	// request coalescing is enabled.
	CoalesceFactor float64
	// CreditBatch is how many consistency messages one explicit credit
	// update covers (§6.4); credit updates are header-only.
	CreditBatch float64
}

// DefaultCalibration returns the constants that reproduce the paper's rack.
func DefaultCalibration() Calibration {
	return Calibration{
		PacketRatePPS:     47.5e6,
		LinkBandwidthBits: 42.6e9,
		NodeKVSOps:        220e6,
		NodeCacheOps:      260e6,
		EREWCoreOps:       4.8e6,
		EREWCores:         20,
		PacketHeader:      32,
		CoalesceFactor:    8,
		CreditBatch:       16,
	}
}

// Config describes one simulated experiment.
type Config struct {
	System   System
	Protocol core.Protocol // CCKVS only
	// Nodes is the deployment size.
	Nodes int
	// Alpha is the Zipfian exponent of the workload (ignored for Uniform).
	Alpha float64
	// NumKeys is the dataset size (paper: 250M).
	NumKeys uint64
	// CacheFrac is the symmetric cache size as a fraction of the dataset
	// (paper: 0.001). Ignored for baselines.
	CacheFrac float64
	// WriteRatio is the put fraction.
	WriteRatio float64
	// ValueSize is the object size in bytes (default 40).
	ValueSize int
	// Coalesce enables request coalescing on cache-miss traffic (§8.5;
	// consistency messages are never coalesced, as in the paper).
	Coalesce bool
	// Cal overrides the calibration; zero value selects defaults.
	Cal Calibration
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 9
	}
	if c.NumKeys == 0 {
		c.NumKeys = 250_000_000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 40
	}
	if c.Alpha == 0 && c.System != Uniform {
		c.Alpha = 0.99
	}
	if c.System == CCKVS && c.CacheFrac == 0 {
		c.CacheFrac = 0.001
	}
	if c.Cal == (Calibration{}) {
		c.Cal = DefaultCalibration()
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("simnet: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.WriteRatio < 0 || c.WriteRatio > 1 {
		return fmt.Errorf("simnet: write ratio %v out of [0,1]", c.WriteRatio)
	}
	if c.System == CCKVS && (c.CacheFrac <= 0 || c.CacheFrac > 1) {
		return fmt.Errorf("simnet: cache fraction %v out of (0,1]", c.CacheFrac)
	}
	return nil
}

// Wire sizes. For 40-byte values these yield the paper's §8.7 constants:
// request+response = 113 B, update = 83 B, invalidation+ack = 100 B
// (B_Lin = 183 B total).
func (c Config) reqBytes() float64    { return 57 }                        // hdr + key + rpc envelope
func (c Config) respBytes() float64   { return float64(c.ValueSize) + 16 } // hdr + value
func (c Config) updBytes() float64    { return float64(c.ValueSize) + 43 } // hdr + key + ts + value
func (c Config) invBytes() float64    { return 50 }
func (c Config) ackBytes() float64    { return 50 }
func (c Config) creditBytes() float64 { return 34 } // header-only

// hitRatio returns the symmetric-cache hit ratio for the configured skew
// and cache size (Figure 3's analytic curve).
func (c Config) hitRatio() float64 {
	if c.System != CCKVS {
		return 0
	}
	if c.Alpha == 0 {
		return c.CacheFrac // uniform workload: hit rate = cache coverage
	}
	return zipf.HitRate(c.CacheFrac, c.NumKeys, c.Alpha)
}

// hottestShare returns the busiest node's share of home-shard load. ccKVS
// misses are skew-filtered and effectively uniform; baselines inherit the
// Zipfian imbalance (Figure 1).
func (c Config) hottestShare() float64 {
	if c.System == Uniform || c.System == CCKVS || c.Alpha == 0 {
		return 1 / float64(c.Nodes)
	}
	loads := zipf.ShardLoads(c.NumKeys, c.Alpha, c.Nodes, func(rank uint64) int {
		return int(zipf.Mix64(rank) % uint64(c.Nodes))
	})
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// hottestCoreShare returns the busiest EREW core's share of total load:
// the core owning the hottest key plus its slice of its node's remainder.
func (c Config) hottestCoreShare() float64 {
	p1 := zipf.Prob(1, c.NumKeys, c.Alpha)
	if c.Alpha == 0 {
		p1 = 1 / float64(c.NumKeys)
	}
	nodeShare := c.hottestShare()
	return p1 + (nodeShare-p1)/float64(c.Cal.EREWCores)
}
