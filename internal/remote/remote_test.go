package remote

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/timestamp"
)

// startDeployment launches n nodes on loopback and a connected client.
func startDeployment(t *testing.T, n int) ([]*Node, *Client) {
	t.Helper()
	nodes := make([]*Node, n)
	peers := map[uint8]string{}
	for i := 0; i < n; i++ {
		node, err := StartNode(uint8(i), "127.0.0.1:0", 1024)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		peers[uint8(i)] = node.Addr()
	}
	client, err := DialCluster(uint8(n+10), peers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes, client
}

func TestHomeNodeStable(t *testing.T) {
	counts := make([]int, 4)
	for k := uint64(0); k < 4000; k++ {
		h := HomeNode(k, 4)
		if h != HomeNode(k, 4) {
			t.Fatal("unstable placement")
		}
		counts[h]++
	}
	for i, c := range counts {
		if c < 500 {
			t.Fatalf("node %d owns %d/4000", i, c)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	_, client := startDeployment(t, 3)
	want := []byte("over the wire")
	if err := client.Put(42, want); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(42)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("%q %v", got, err)
	}
}

func TestGetMissing(t *testing.T) {
	_, client := startDeployment(t, 2)
	if _, err := client.Get(7); err != ErrNotFound {
		t.Fatalf("err = %v", err)
	}
}

func TestKeysSpreadAcrossNodes(t *testing.T) {
	nodes, client := startDeployment(t, 3)
	for k := uint64(0); k < 300; k++ {
		if err := client.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range nodes {
		if n.Store().Len() == 0 {
			t.Fatalf("node %d stored nothing", i)
		}
		if n.Served.Load() == 0 {
			t.Fatalf("node %d served nothing", i)
		}
	}
	// Shard integrity: each key lives on exactly its home node.
	for k := uint64(0); k < 300; k += 13 {
		home := HomeNode(k, 3)
		if _, _, err := nodes[home].Store().Get(k, nil); err != nil {
			t.Fatalf("key %d missing from home %d", k, home)
		}
		for i, n := range nodes {
			if uint8(i) == home {
				continue
			}
			if _, _, err := n.Store().Get(k, nil); err == nil {
				t.Fatalf("key %d duplicated on node %d", k, i)
			}
		}
	}
}

func TestOverwrite(t *testing.T) {
	_, client := startDeployment(t, 2)
	client.Put(1, []byte("a"))
	client.Put(1, []byte("bb"))
	v, err := client.Get(1)
	if err != nil || string(v) != "bb" {
		t.Fatalf("%q %v", v, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	nodes, _ := startDeployment(t, 2)
	peers := map[uint8]string{0: nodes[0].Addr(), 1: nodes[1].Addr()}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			cl, err := DialCluster(uint8(20+cid), peers)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for k := uint64(0); k < 50; k++ {
				key := uint64(cid)*1000 + k
				if err := cl.Put(key, []byte(fmt.Sprintf("c%d-%d", cid, k))); err != nil {
					errs <- err
					return
				}
				v, err := cl.Get(key)
				if err != nil || string(v) != fmt.Sprintf("c%d-%d", cid, k) {
					errs <- fmt.Errorf("client %d key %d: %q %v", cid, key, v, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPreloadedStore(t *testing.T) {
	nodes, client := startDeployment(t, 2)
	// Preload directly into the shard, as cmd/cckvs-node does at startup.
	for k := uint64(0); k < 100; k++ {
		home := HomeNode(k, 2)
		nodes[home].Store().Put(k, []byte{byte(k)}, timestamp.TS{})
	}
	v, err := client.Get(55)
	if err != nil || v[0] != 55 {
		t.Fatalf("%v %v", v, err)
	}
}

func TestClientTimeout(t *testing.T) {
	nodes, client := startDeployment(t, 2)
	client.Timeout = 100 * time.Millisecond
	// Kill the home node of key 0 and expect a timeout (or send error on
	// the broken connection).
	home := HomeNode(0, 2)
	nodes[home].Close()
	time.Sleep(20 * time.Millisecond)
	if _, err := client.Get(0); err == nil {
		t.Fatal("expected an error after node death")
	}
}
