package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
)

// LocalWriteFanoutAblation measures the coalescing consistency plane
// (§6.3 applied to the write fan-out) on the real in-process cluster in the
// regime Figure 11 says it matters: a write-heavy stream of hot-key puts,
// where every put broadcasts updates (SC) or invalidations+acks+updates
// (Lin) to all peers and consistency messages dwarf the request traffic.
// Each writer goroutine owns a distinct hot key, so writes never contend on
// the per-key write order and the fan-out lanes — not key serialization —
// carry the load; all keys steer through one worker per node
// (WorkersPerNode=1), the single-hardware-thread configuration of the CI
// gate. Per protocol the first row pins BatchMaxMsgs to 1 — one message per
// packet, one credit acquire and one send apiece, the pre-coalescing wire
// behavior — and the following rows let the consistency lanes pack the
// concurrent fan-out into multi-message packets. Per-packet costs (credit
// acquires, transport sends, dispatches) amortize across the batch, so
// throughput must rise and the achieved messages-per-packet must climb well
// above 1 while single-write latency stays at the doorbell-flush floor.
//
// With requireFanout set the run doubles as the CI regression gate: Lin at
// batch 32 must reach 1.4x its own uncoalesced row, and its consistency
// coalescing factor must exceed 1.5 msgs/pkt.
func LocalWriteFanoutAblation(opsPerClient int, requireFanout bool) (Table, error) {
	if opsPerClient <= 0 {
		opsPerClient = 2000
	}
	t := Table{
		ID:      "write-fanout",
		Title:   "Consistency-plane coalescing on the live cluster [3 nodes, ccKVS, all-put distinct hot keys, 1 worker/node]",
		Columns: []string{"protocol/batch", "throughput ops/s", "speedup", "con msgs/pkt", "p99 put us"},
	}
	type cell struct{ tput, factor float64 }
	results := map[string]cell{}
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		var baseline float64
		for _, batch := range []int{1, 8, 32} {
			tput, factor, p99, err := runFanoutMode(proto, batch, opsPerClient)
			if err != nil {
				return Table{}, fmt.Errorf("%s batch %d: %w", proto, batch, err)
			}
			if batch == 1 {
				baseline = tput
			}
			label := fmt.Sprintf("%s/%d", proto, batch)
			results[label] = cell{tput, factor}
			t.AddRow(label, tput, fmt.Sprintf("%.2fx", tput/baseline), factor, p99/1000)
		}
	}
	t.Notes = append(t.Notes,
		"batch-1 rows are the pre-coalescing consistency plane: every update/invalidation/ack ships as its own packet with its own credit acquire",
		"con msgs/pkt is the achieved consistency coalescing factor (sum ConMsgs / sum ConPackets over all nodes); doorbell batching means concurrency, not waiting, produces it",
		"every writer owns its own hot key: per-key write serialization never throttles the run, the fan-out lanes do",
	)

	if requireFanout {
		base, coal := results[fmt.Sprintf("%s/1", core.Lin)], results[fmt.Sprintf("%s/32", core.Lin)]
		if coal.tput < 1.4*base.tput {
			return t, fmt.Errorf("write-fanout regression: Lin batch-32 throughput %.0f ops/s is below 1.4x the uncoalesced %.0f ops/s",
				coal.tput, base.tput)
		}
		if coal.factor < 1.5 {
			return t, fmt.Errorf("write-fanout regression: Lin batch-32 coalescing factor %.2f msgs/pkt, want > 1.5",
				coal.factor)
		}
	}
	return t, nil
}

// runFanoutMode drives one ablation cell: `writers` goroutines, each putting
// its own hot key opsPerWriter times through a node picked round-robin, on a
// fresh cluster with the given consistency packet cap. Returns ops/s, the
// achieved consistency msgs/pkt, and the p99 put latency in ns.
func runFanoutMode(proto core.Protocol, batch, opsPerWriter int) (tput, factor, p99 float64, err error) {
	const (
		nodes    = 3
		numKeys  = 16384
		hotItems = 64
		writers  = 64
	)
	cl, err := cluster.New(cluster.Config{
		Nodes: nodes, System: cluster.CCKVS, Protocol: proto,
		NumKeys: numKeys, CacheItems: hotItems, WorkersPerNode: 1,
		BatchMaxMsgs: batch,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer cl.Close()
	cl.Populate()
	if err := cl.InstallHotSet(cluster.DefaultHotSet(hotItems)); err != nil {
		return 0, 0, 0, err
	}

	lat := metrics.NewHistogram()
	errCh := make(chan error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			n := cl.Node(wi % nodes)
			key := uint64(wi) // distinct hot keys: no per-key write contention
			val := bytes.Repeat([]byte{byte(wi)}, 40)
			for i := 0; i < opsPerWriter; i++ {
				t0 := time.Now()
				if err := n.Put(key, val); err != nil {
					errCh <- fmt.Errorf("writer %d op %d: %w", wi, i, err)
					return
				}
				lat.Record(uint64(time.Since(t0).Nanoseconds()))
			}
			errCh <- nil
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for e := range errCh {
		if e != nil {
			return 0, 0, 0, e
		}
	}
	var msgs, pkts uint64
	for i := 0; i < nodes; i++ {
		msgs += cl.Node(i).ConMsgs.Load()
		pkts += cl.Node(i).ConPackets.Load()
	}
	if pkts > 0 {
		factor = float64(msgs) / float64(pkts)
	}
	tput = float64(writers*opsPerWriter) / elapsed.Seconds()
	return tput, factor, float64(lat.Percentile(0.99)), nil
}
