package cluster

import (
	"errors"
	"fmt"
)

// Typed errors of the cluster package's public surface, gathered in one
// place so callers can build an errors.Is ladder without hunting through the
// files that produce them. Each comment states when the error fires under a
// replicated deployment (ReplicasPerShard > 1), where the answer differs
// most from the single-copy reading.

// ErrNodeDown reports that an operation's target node is outside the current
// membership view (or was excised while the operation was in flight).
var ErrNodeDown = errors.New("cluster: node outside the membership view")

// ErrHomeDown reports that a key cannot be served by any node: its home is
// outside the membership view and — under replication — so is every backup
// in its replica set (one live replica suffices to mask the home's death;
// the error fires only when the whole set is down). It wraps ErrNodeDown.
// The session layer gives it a dedicated wire status so cluster.Client
// surfaces it typed.
var ErrHomeDown = fmt.Errorf("key's home %w", ErrNodeDown)

// ErrClientClosed fails calls issued against (or pending on) a closed Client.
var ErrClientClosed = errors.New("cluster: client closed")

// ErrSessionTimeout is returned when a response does not arrive in time.
// Under replication a view change mid-op is absorbed server-side (the op
// chases the promoted backup), so a timeout usually means a slow or wedged
// server rather than a failed one.
var ErrSessionTimeout = errors.New("cluster: session request timed out")

// ErrNodeUnreachable is returned when the transport cannot carry the request
// to the server or the server's connection dropped mid-call: the dial
// failed, or the established connection closed before the response arrived.
// Unlike ErrSessionTimeout (which may hide a merely slow server) it is a
// positive signal that the node is gone. Under replication the client can
// re-issue the op against any other node — every server routes to the key's
// acting primary.
var ErrNodeUnreachable = errors.New("cluster: node unreachable")

// ErrCASMismatch reports a failed compare-and-swap: the stored value did not
// equal the expectation. The Result carrying it holds the witnessed value,
// so a retry loop needs no extra read. Purely semantic — the op executed
// exactly once at the key's serialization point.
var ErrCASMismatch = errors.New("cluster: compare-and-swap expectation mismatch")

// ErrRMWUnknown reports an RMW whose outcome is unknowable: the transport
// failed after the op may have reached its serialization point. It is the
// one error this package refuses to hide behind a retry — re-running a CAS
// or FAA that already applied would apply it twice. Callers that must
// resolve the ambiguity can read the key (e.g. CAS with a unique value and
// check for it). Fires mostly when the acting primary or RMW coordinator
// dies mid-op; an explicit Retry bounce (which proves the op did not run) is
// always re-issued internally and never surfaces this way.
var ErrRMWUnknown = errors.New("cluster: rmw outcome unknown (transport failed mid-operation)")
