package fabric

import (
	"sync"
	"time"
)

// ReorderTransport is an adversarial decorator: it buffers and shuffles
// packets before handing them to the inner transport. RDMA Unreliable
// Datagrams promise no ordering, and the ccKVS consistency protocols must
// tolerate arbitrary interleavings (§5.2, the situation the Murphi model
// explores); wrapping the cluster's transport in a ReorderTransport
// exercises that tolerance on real executions instead of only in the model
// checker.
//
// Packets are held in a bounded buffer; each incoming packet lands at a
// pseudo-random position and evicts the packet it displaces, so delivery
// order is a deterministic (seeded) permutation of send order with
// displacement up to the buffer depth. A background ticker drains the
// buffer during quiet periods so blocked protocol phases (a writer waiting
// for its last ack) always make progress.
type ReorderTransport struct {
	inner Transport
	depth int

	mu     sync.Mutex
	held   []Packet
	rng    uint64
	closed bool

	stopFlush chan struct{}
	wg        sync.WaitGroup
}

// NewReorder wraps inner with a shuffle buffer of the given depth
// (clamped to >=1). The seed makes runs reproducible.
func NewReorder(inner Transport, depth int, seed uint64) *ReorderTransport {
	if depth < 1 {
		depth = 1
	}
	t := &ReorderTransport{
		inner:     inner,
		depth:     depth,
		rng:       seed | 1,
		stopFlush: make(chan struct{}),
	}
	t.wg.Add(1)
	go t.flusher()
	return t
}

// Register passes through to the inner transport.
func (t *ReorderTransport) Register(addr Addr, h Handler) { t.inner.Register(addr, h) }

// Send buffers p; a random previously-held packet may be released instead.
func (t *ReorderTransport) Send(p Packet) error {
	// A held packet outlives this call, so a vectored payload must be
	// materialized now — the Packet.Segs contract lets the caller release
	// the segment memory the moment Send returns.
	p = p.flatten()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if len(t.held) < t.depth {
		t.held = append(t.held, p)
		t.mu.Unlock()
		return nil
	}
	// Swap p into a random slot and release the displaced packet.
	i := int(t.next() % uint64(len(t.held)))
	out := t.held[i]
	t.held[i] = p
	t.mu.Unlock()
	return t.inner.Send(out)
}

// next advances the xorshift state; callers hold t.mu.
func (t *ReorderTransport) next() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

// flusher periodically releases one held packet so the buffer cannot stall
// a quiescing protocol.
func (t *ReorderTransport) flusher() {
	defer t.wg.Done()
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
	for {
		select {
		case <-t.stopFlush:
			return
		case <-tick.C:
			t.mu.Lock()
			if t.closed || len(t.held) == 0 {
				t.mu.Unlock()
				continue
			}
			i := int(t.next() % uint64(len(t.held)))
			out := t.held[i]
			t.held[i] = t.held[len(t.held)-1]
			t.held = t.held[:len(t.held)-1]
			t.mu.Unlock()
			t.inner.Send(out)
		}
	}
}

// Flush releases every held packet (in shuffled order).
func (t *ReorderTransport) Flush() {
	t.mu.Lock()
	drain := t.held
	t.held = nil
	t.mu.Unlock()
	for _, p := range drain {
		t.inner.Send(p)
	}
}

// Close flushes and closes the inner transport.
func (t *ReorderTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	drain := t.held
	t.held = nil
	t.mu.Unlock()
	close(t.stopFlush)
	t.wg.Wait()
	for _, p := range drain {
		t.inner.Send(p)
	}
	return t.inner.Close()
}
