package cluster

import (
	"errors"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/timestamp"
)

// ErrRetriesExhausted is returned when a read stalled on an invalidated
// entry for an implausibly long time — it indicates a protocol bug (the
// matching update never arrived) and exists so tests fail loudly instead of
// hanging.
var ErrRetriesExhausted = errors.New("cluster: read retries exhausted on invalid entry")

// invalidRetryLimit bounds the Read retry loop on Lin-invalidated entries.
const invalidRetryLimit = 10_000_000

// Get serves a client read arriving at this node (§6.1, "Reads"): probe the
// symmetric cache; on a miss, access the local shard or issue a remote
// access to the home node.
func (n *Node) Get(key uint64) ([]byte, error) {
	if n.cache != nil {
		for attempt := 0; ; attempt++ {
			v, _, err := n.cache.Read(key, nil)
			switch err {
			case nil:
				n.CacheHits.Add(1)
				return v, nil
			case core.ErrInvalid:
				// An update is in flight; spin until it lands. The paper's
				// cache threads keep polling their receive queues here; our
				// dispatcher goroutine applies the update concurrently.
				n.InvalidRetries.Add(1)
				if attempt > invalidRetryLimit {
					return nil, ErrRetriesExhausted
				}
				yield()
				continue
			case core.ErrMiss:
				n.CacheMisses.Add(1)
			}
			break
		}
	}
	home := n.cluster.HomeNode(key)
	if home == int(n.id) {
		n.LocalOps.Add(1)
		v, _, err := n.kvs.Get(key, nil)
		return v, err
	}
	n.RemoteOps.Add(1)
	v, _, err := n.RemoteGet(uint8(home), key)
	return v, err
}

// Put serves a client write arriving at this node (§6.1, "Writes"): a cache
// hit runs the configured consistency protocol; a miss forwards the write
// to the home node.
func (n *Node) Put(key uint64, value []byte) error {
	if n.cache != nil {
		if n.cluster.cfg.Protocol == core.Lin {
			done, err := n.putLin(key, value)
			if err == nil && done {
				return nil
			}
			if err != nil {
				return err
			}
			// fall through on miss
		} else {
			done, err := n.putSC(key, value)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
		}
		n.CacheMisses.Add(1)
	}
	home := n.cluster.HomeNode(key)
	if home == int(n.id) {
		n.LocalOps.Add(1)
		n.localKVSPut(key, value)
		return nil
	}
	n.RemoteOps.Add(1)
	return n.RemotePut(uint8(home), key, value)
}

// putSC runs an SC cache write under the configured Figure 4 serialization
// design. done=false with nil error means the key missed the cache.
func (n *Node) putSC(key uint64, value []byte) (bool, error) {
	const coordinator = 0 // primary/sequencer node when selected
	switch n.cluster.cfg.Serialization {
	case SerializationPrimary:
		if !n.cache.Contains(key) {
			return false, nil // Put counts the miss
		}
		n.CacheHits.Add(1)
		if n.id == coordinator {
			upd, err := n.cache.WriteSC(key, value)
			if err != nil {
				return false, err
			}
			n.broadcastConsistency(metrics.ClassUpdate, upd.Encode(nil))
			return true, nil
		}
		// All writes serialize at the primary (Figure 4a): forward and
		// wait for its ack; the update reaches us via broadcast.
		return true, n.PrimaryWrite(coordinator, key, value)
	case SerializationSequencer:
		if !n.cache.Contains(key) {
			return false, nil // Put counts the miss
		}
		n.CacheHits.Add(1)
		var ts timestamp.TS
		var err error
		if n.id == coordinator {
			// The sequencer's own writes take the timestamp locally.
			n.seqMu.Lock()
			n.seqClocks[key]++
			ts = timestamp.TS{Clock: n.seqClocks[key], Writer: n.id}
			n.seqMu.Unlock()
		} else if ts, err = n.SeqTS(coordinator, key); err != nil {
			return false, err
		}
		upd, err := n.cache.WriteSCWithTS(key, value, ts)
		if err != nil {
			return false, err
		}
		n.broadcastConsistency(metrics.ClassUpdate, upd.Encode(nil))
		return true, nil
	default:
		upd, err := n.cache.WriteSC(key, value)
		if err == core.ErrMiss {
			return false, nil // Put counts the miss
		}
		if err != nil {
			return false, err
		}
		n.CacheHits.Add(1)
		// Non-blocking: the local write is already visible; propagate
		// asynchronously to all replicas (§5.2).
		n.broadcastConsistency(metrics.ClassUpdate, upd.Encode(nil))
		return true, nil
	}
}

// putLin runs the blocking two-phase Lin write. done=false with nil error
// means the key missed the cache.
func (n *Node) putLin(key uint64, value []byte) (bool, error) {
	for {
		// Register the waiter first: acks can arrive the moment the
		// invalidations hit the wire. Registration doubles as the
		// node-local write mutex for the key: if a waiter exists, another
		// session's write is in flight.
		ch, ok := n.tryRegisterLinWaiter(key)
		if !ok {
			n.WritePendingRetries.Add(1)
			yield()
			continue
		}
		inv, err := n.cache.WriteLinStart(key, value)
		switch err {
		case nil:
			n.CacheHits.Add(1)
			n.broadcastConsistency(metrics.ClassInvalidate, inv.Encode(nil))
			// Block until the last ack completes the write (§5.2: "writes
			// are synchronous").
			upd := <-ch
			n.broadcastConsistency(metrics.ClassUpdate, upd.Encode(nil))
			return true, nil
		case core.ErrWritePending:
			// Another session on this node is writing the key; wait for
			// it and retry — writes must serialize.
			n.unregisterLinWaiter(key, ch)
			n.WritePendingRetries.Add(1)
			yield()
			continue
		case core.ErrMiss:
			n.unregisterLinWaiter(key, ch)
			return false, nil
		default:
			n.unregisterLinWaiter(key, ch)
			return false, err
		}
	}
}

// unregisterLinWaiter removes a waiter that never armed (write refused).
func (n *Node) unregisterLinWaiter(key uint64, ch chan core.Update) {
	n.waitMu.Lock()
	if n.waiters[key] == ch {
		delete(n.waiters, key)
	}
	n.waitMu.Unlock()
}

// localKVSPut writes a cache-missing key to the local shard with a fresh
// serialization timestamp.
func (n *Node) localKVSPut(key uint64, value []byte) {
	_, ts, err := n.kvs.Get(key, nil)
	if err != nil {
		n.kvs.Put(key, value, ts.Next(n.id))
		return
	}
	n.kvs.Put(key, value, ts.Next(n.id))
}
