package main

import (
	"bytes"
	"strings"
	"testing"
)

// exec runs the CLI with args and returns exit code, stdout and stderr.
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestSmallBoundsVerifyOK(t *testing.T) {
	code, out, errb := exec(t, "-protocol", "sc", "-procs", "2", "-addrs", "1", "-clock", "1")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errb)
	}
	if !strings.Contains(out, "verified") {
		t.Fatalf("missing verification verdict:\n%s", out)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := exec(t, "-definitely-not-a-flag"); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code, _, _ := exec(t, "-h"); code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
}

func TestUnknownFaultExitsTwo(t *testing.T) {
	code, _, errb := exec(t, "-fault", "no-such-fault")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown fault") {
		t.Fatalf("missing diagnostic:\n%s", errb)
	}
}

// Injected protocol bugs must be *detected* (violation + counterexample)
// and exit zero: finding the planted bug is the success condition.
func TestInjectedFaultProducesCounterexample(t *testing.T) {
	code, out, errb := exec(t, "-fault", "conditional-ack", "-procs", "2", "-addrs", "1", "-clock", "2")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errb)
	}
	if !strings.Contains(out, "VIOLATION") || !strings.Contains(out, "counterexample") {
		t.Fatalf("fault not detected:\n%s", out)
	}
}

// The default matrix is the paper's verification table; keep it passing.
func TestDefaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slower")
	}
	code, out, errb := exec(t)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s\nstdout:\n%s", code, errb, out)
	}
	if strings.Count(out, "verified") != 4 {
		t.Fatalf("expected 4 verified rows:\n%s", out)
	}
}
