// Package remote is retired. It used to hold a shard-only smoke deployment
// (TCP get/put against bare shards, no caching, no consistency protocol)
// that existed solely to exercise the socket transport end to end.
//
// Its replacement is the transport-pluggable cluster: internal/cluster now
// runs the complete ccKVS protocol stack — symmetric hot-set caches, the
// Lin and SC write protocols, coalesced remote accesses and online hot-set
// reconfiguration — over any fabric.Transport. cluster.NewMember builds one
// node of a multi-process deployment over a fabric.TCPTransport (see
// cmd/cckvs-node), cluster.DialTCP connects a session client to it (see
// cmd/cckvs-load), and the in-process harness keeps using the same protocol
// code over a fabric.ChanTransport. There is one protocol codebase with two
// transports, which is why this package no longer carries an implementation.
package remote
