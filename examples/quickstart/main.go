// Quickstart: open an embedded ccKVS deployment, write and read through the
// black-box abstraction, and let the popularity tracker refresh the hot set.
package main

import (
	"fmt"
	"log"

	cckvs "repro"
)

func main() {
	// A 5-node deployment with per-key linearizability. Every node holds a
	// shard of the 64K-key dataset and a symmetric cache of the hottest
	// 640 keys.
	kv, err := cckvs.Open(cckvs.Options{
		Nodes:       5,
		Consistency: cckvs.Lin,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer kv.Close()

	// Puts go to any node; the consistency protocol keeps every cache
	// replica coherent. Under Lin, once Put returns the value is visible
	// from every node.
	if err := kv.Put(7, []byte("hello scale-out ccNUMA")); err != nil {
		log.Fatal(err)
	}
	v, err := kv.Get(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key 7 = %q\n", v)

	// Hammer a skewed key set, then refresh the hot set: the Space-Saving
	// tracker promotes what clients actually touch.
	for i := 0; i < 5000; i++ {
		if _, err := kv.Get(uint64(40000 + i%50)); err != nil {
			log.Fatal(err)
		}
	}
	added, removed := kv.RefreshHotSet()
	fmt.Printf("hot set refreshed: +%d keys, -%d keys\n", added, removed)

	s := kv.Stats()
	fmt.Printf("stats: hits=%d misses=%d hit-rate=%.1f%% remote=%d epoch=%d\n",
		s.CacheHits, s.CacheMisses, s.HitRate()*100, s.RemoteOps, s.HotSetEpoch)
}
