package cluster

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/timestamp"
)

// The coalescing consistency plane: §6.3/§8.5 applied to the write fan-out.
// Figure 11 shows that for write-heavy skewed workloads the message *count*
// is dominated by header-only invalidations and acks, so sending each
// update/invalidation/ack as its own packet — one credit acquire, one
// transport send, one receive apiece — makes per-message overhead the write
// path's bottleneck long before bandwidth. Like the request pipeline
// (pipeline.go), every worker runs one consistency sender per peer: callers
// enqueue decoded messages, the sender drains whatever is pending into
// multi-message packets (up to Config.BatchMaxMsgs / BatchMaxBytes),
// encodes each message straight into the packet buffer, and flushes
// immediately when the lane runs dry so an isolated write's latency is
// untouched (doorbell batching: concurrency is the only source of
// coalescing).
//
// Flow control is charged per *packet*, not per message — the receiving
// side already notes one credit per consistency packet
// (worker.handleConsistency → CreditBatcher.Note), so charging the sender
// per packet keeps the ledger symmetric and is exactly the paper's
// credits-per-packet economy.
//
// Acks piggyback for free: sendAck enqueues onto the same per-worker lane
// toward the writer, so an ack shares its packet with whatever updates or
// invalidations are already headed there. Key steering makes the lane
// well-defined — a key's messages always travel worker(key)'s lane — and
// per-lane channel FIFO plus in-packet decode order preserves the per-key
// ordering invariant (see core.Decode).
//
// Ordering across a view flip: messages queued toward an excised peer are
// dropped at the credit acquire, exactly like pipeline senders fail queued
// requests — the view change dropped the peer's budget, Acquire returns
// false, and the whole batch toward the dead peer is discarded (consistency
// traffic is fire-and-forget; Lin writers waiting on the dead peer's acks
// are completed by the view change itself, Cache.SetLive).

// conMsg is one queued consistency message in decoded form. Encoding
// happens at flush time, straight into the packet buffer, so enqueuing
// allocates nothing and a batch shares one buffer instead of paying one
// Encode(nil) allocation per message. Update values are immutable copies
// (core returns freshly-copied values from WriteSC/finishPendingLocked), so
// one value slice is safely shared by every peer lane holding it.
type conMsg struct {
	kind  core.MsgType
	key   uint64
	ts    timestamp.TS
	from  uint8  // invalidation: writer node (ack destination); ack: acking node
	value []byte // update payload; read-only
}

// classOf maps a message kind to its Figure 11 traffic class.
func classOf(k core.MsgType) metrics.MsgClass {
	switch k {
	case core.MsgUpdate:
		return metrics.ClassUpdate
	case core.MsgInvalidation:
		return metrics.ClassInvalidate
	default:
		return metrics.ClassAck
	}
}

// encodedSize returns the message's wire size.
func (m *conMsg) encodedSize() int {
	switch m.kind {
	case core.MsgUpdate:
		return core.Update{Value: m.value}.EncodedSize()
	case core.MsgInvalidation:
		return core.Invalidation{}.EncodedSize()
	default:
		return core.Ack{}.EncodedSize()
	}
}

// conCut marks where an update's value bytes splice into the header buffer
// on the vectored path. Offsets (not slices) are recorded because the
// buffer may reallocate as later message headers append.
type conCut struct {
	off int
	val []byte
}

// conPlane aggregates outbound consistency messages per destination node
// for one worker.
type conPlane struct {
	w        *worker
	maxMsgs  int
	maxBytes int

	mu     sync.RWMutex
	queues map[uint8]chan conMsg
	closed bool
	wg     sync.WaitGroup
}

// newConPlane starts one consistency sender goroutine per remote peer.
func newConPlane(w *worker, peers, depth, maxMsgs, maxBytes int) *conPlane {
	cp := &conPlane{
		w:        w,
		maxMsgs:  maxMsgs,
		maxBytes: maxBytes,
		queues:   make(map[uint8]chan conMsg, peers),
	}
	for peer := 0; peer < peers; peer++ {
		if peer == int(w.node.id) {
			continue
		}
		q := make(chan conMsg, depth)
		cp.queues[uint8(peer)] = q
		cp.wg.Add(1)
		go cp.sender(uint8(peer), q)
	}
	return cp
}

// enqueue hands one message to peer's lane, blocking when the lane is full
// (backpressure on the writer). A closed plane or unknown peer drops the
// message — consistency traffic is fire-and-forget, matching how a closed
// transport dropped these sends before.
func (cp *conPlane) enqueue(peer uint8, m conMsg) {
	cp.mu.RLock()
	ch := cp.queues[peer]
	if cp.closed || ch == nil {
		cp.mu.RUnlock()
		return
	}
	// The channel send stays under the read lock so close() cannot close the
	// queue between the check and the send.
	ch <- m
	cp.mu.RUnlock()
}

// tryEnqueue is enqueue minus the blocking: it reports false when the lane
// is full instead of waiting. Receive dispatchers use it for acks — a
// dispatcher that blocked on a full lane would stop noting received packets
// toward credit updates, and two nodes doing that to each other would
// starve both senders for good.
func (cp *conPlane) tryEnqueue(peer uint8, m conMsg) bool {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	ch := cp.queues[peer]
	if cp.closed || ch == nil {
		return true // dropped, but disposed of: nothing more to do
	}
	select {
	case ch <- m:
		return true
	default:
		return false
	}
}

// sender drains peer's queue into multi-message consistency packets. Each
// iteration takes one message (blocking) and then opportunistically
// coalesces whatever else is already pending, up to the packet limits; a
// message that would push the packet past maxBytes is carried into the next
// packet (a single oversized message still ships alone).
func (cp *conPlane) sender(peer uint8, q chan conMsg) {
	defer cp.wg.Done()
	w := cp.w
	n := w.node
	cfg := n.cluster.cfg
	th := cfg.cacheThread(w.idx)
	dst := fabric.Addr{Node: peer, Thread: th}
	src := fabric.Addr{Node: n.id, Thread: th}
	// When the transport serializes packets during Send (TCP), the packet
	// buffer, scatter list and span list are all reused across iterations —
	// the consistency hot path then allocates nothing per packet, and update
	// values go to the wire as their own segments (Packet.Segs) without ever
	// being re-copied. Reference-passing transports get a fresh flat buffer
	// per packet with the values copied in (they must break aliasing anyway).
	vectored := n.cluster.trCopies
	batch := make([]conMsg, 0, cp.maxMsgs)
	cuts := make([]conCut, 0, cp.maxMsgs)
	segs := make([][]byte, 0, 2*cp.maxMsgs+1)
	var buf []byte
	var spans []fabric.ClassSpan
	var carry *conMsg
	for {
		var first conMsg
		if carry != nil {
			first, carry = *carry, nil
		} else {
			var ok bool
			if first, ok = <-q; !ok {
				return
			}
		}
		batch = append(batch[:0], first)
		size := first.encodedSize()
		batch, size = cp.drain(q, batch, size, &carry)
		if len(batch) > 1 && len(batch) < cp.maxMsgs && carry == nil {
			// The doorbell pause: the first drain found company, so writers
			// are actively ringing. One yield lets them enqueue what they are
			// blocked on right now, deepening the packet without ever holding
			// up an isolated write (a batch of one flushes immediately above).
			runtime.Gosched()
			batch, size = cp.drain(q, batch, size, &carry)
		}
		// One credit per consistency packet (§6.3), restored by the
		// receiver's batched credit updates. A failed acquire means peer left
		// the membership view (its budget was dropped by the view change):
		// discard the whole batch — consistency messages toward a dead peer
		// are moot, and any Lin writer counting on its acks is completed by
		// the view change (Cache.SetLive) — and keep draining; the queue may
		// still hold messages enqueued before the flip.
		if !w.credits.Acquire(dst) {
			continue
		}
		if vectored {
			buf = buf[:0]
			spans = spans[:0]
		} else {
			buf = make([]byte, 0, size)
			spans = make([]fabric.ClassSpan, 0, 3)
		}
		cuts = cuts[:0]
		var msgs, bytes [4]uint32 // indexed by core.MsgType (1..3)
		for i := range batch {
			m := &batch[i]
			msgs[m.kind]++
			bytes[m.kind] += uint32(m.encodedSize())
			switch m.kind {
			case core.MsgUpdate:
				buf = core.Update{Key: m.key, TS: m.ts, Value: m.value}.EncodeHeader(buf)
				if vectored {
					cuts = append(cuts, conCut{off: len(buf), val: m.value})
				} else {
					buf = append(buf, m.value...)
				}
			case core.MsgInvalidation:
				buf = core.Invalidation{Key: m.key, TS: m.ts, From: m.from}.Encode(buf)
			default:
				buf = core.Ack{Key: m.key, TS: m.ts, From: m.from}.Encode(buf)
			}
		}
		for _, k := range [...]core.MsgType{core.MsgUpdate, core.MsgInvalidation, core.MsgAck} {
			if msgs[k] > 0 {
				spans = append(spans, fabric.ClassSpan{Class: classOf(k), Msgs: msgs[k], Bytes: bytes[k]})
			}
		}
		p := fabric.Packet{Src: src, Dst: dst, Class: classOf(batch[0].kind), Spans: spans}
		if len(cuts) > 0 {
			segs = segs[:0]
			prev := 0
			for _, c := range cuts {
				segs = append(segs, buf[prev:c.off], c.val)
				prev = c.off
			}
			if prev < len(buf) {
				segs = append(segs, buf[prev:])
			}
			p.Segs = segs
		} else {
			p.Data = buf
		}
		if err := n.cluster.transport.Send(p); err != nil {
			// The receiver will never note this packet toward a credit
			// update; put the credit back so a closing drain cannot starve.
			w.credits.Grant(dst, 1)
			continue
		}
		n.ConPackets.Add(1)
		n.ConMsgs.Add(uint64(len(batch)))
	}
}

// drain opportunistically moves whatever is already pending on q into batch,
// up to the packet's message and byte bounds; it never waits. A message that
// would push the packet past maxBytes is parked in carry for the next packet.
func (cp *conPlane) drain(q chan conMsg, batch []conMsg, size int, carry **conMsg) ([]conMsg, int) {
	for len(batch) < cp.maxMsgs && size < cp.maxBytes {
		select {
		case it, ok := <-q:
			if !ok {
				return batch, size
			}
			if size+it.encodedSize() > cp.maxBytes {
				*carry = &it // would bust the byte bound: next packet
				return batch, size
			}
			batch = append(batch, it)
			size += it.encodedSize()
		default:
			return batch, size // lane drained: flush now, never wait
		}
	}
	return batch, size
}

// close stops accepting messages and waits for the senders to drain: queued
// messages still go out (call this while the transport is up, like
// pipeline.close) or are discarded when the transport refuses the send.
// Messages enqueued after close are dropped.
func (cp *conPlane) close() {
	cp.mu.Lock()
	if cp.closed {
		cp.mu.Unlock()
		return
	}
	cp.closed = true
	for _, q := range cp.queues {
		close(q)
	}
	cp.mu.Unlock()
	cp.wg.Wait()
}
