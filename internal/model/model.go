// Package model implements the paper's analytical performance model
// (EuroSys'18, §8.7) verbatim. The model rests on the empirical finding that
// ccKVS and the baselines are network-bound (§8.4): throughput is the
// available per-node network bandwidth divided by the bytes each request
// moves, summed over request classes.
//
// Per request, with hit ratio h, write ratio w and N servers:
//
//	TR_CM  = (1-h) · (1-1/N) · B_RR          (cache-miss remote traffic)
//	TR_SC  = h · w · (N-1) · B_SC            (SC consistency traffic)
//	TR_Lin = h · w · (N-1) · B_Lin           (Lin consistency traffic)
//	TR_U   = (1-1/N) · B_RR                  (Uniform remote traffic)
//
// and the system throughputs:
//
//	T_SC  = N · BW / (TR_CM + TR_SC)         (equation 5)
//	T_Lin = N · BW / (TR_CM + TR_Lin)        (equation 3)
//	T_U   = N · BW / TR_U                    (equation 7)
//
// The package also provides the break-even write ratio of §8.7.2: the write
// ratio at which ccKVS throughput equals Uniform's.
package model

import "fmt"

// Params are the model inputs with the paper's measured constants as
// defaults (§8.7: message sizes include network headers; BW is the
// effective bandwidth observed for small packets).
type Params struct {
	// N is the number of servers.
	N int
	// HitRatio h of the symmetric cache (0.65 for alpha=0.99 and a 0.1%
	// cache).
	HitRatio float64
	// WriteRatio w.
	WriteRatio float64
	// BRR is the bytes of a remote request + reply pair (113).
	BRR float64
	// BSC is the bytes of one SC update (83).
	BSC float64
	// BLin is the bytes of one Lin invalidation + ack + update (183).
	BLin float64
	// BW is the available per-node network bandwidth in bytes/second
	// (21.5 Gb/s / 8).
	BW float64
}

// Paper-measured defaults (§8.7).
const (
	DefaultBRR    = 113.0
	DefaultBSC    = 83.0
	DefaultBLin   = 183.0
	DefaultBWGbps = 21.5
	DefaultHit099 = 0.65 // alpha = 0.99, cache = 0.1% of dataset
)

// Defaults returns the paper's validation configuration for N servers with
// the given write ratio.
func Defaults(n int, writeRatio float64) Params {
	return Params{
		N:          n,
		HitRatio:   DefaultHit099,
		WriteRatio: writeRatio,
		BRR:        DefaultBRR,
		BSC:        DefaultBSC,
		BLin:       DefaultBLin,
		BW:         DefaultBWGbps * 1e9 / 8,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("model: need at least 2 servers, got %d", p.N)
	}
	if p.HitRatio < 0 || p.HitRatio > 1 {
		return fmt.Errorf("model: hit ratio %v out of [0,1]", p.HitRatio)
	}
	if p.WriteRatio < 0 || p.WriteRatio > 1 {
		return fmt.Errorf("model: write ratio %v out of [0,1]", p.WriteRatio)
	}
	if p.BW <= 0 || p.BRR <= 0 {
		return fmt.Errorf("model: bandwidth and message sizes must be positive")
	}
	return nil
}

// n and inverse helpers.
func (p Params) remoteFrac() float64 { return 1 - 1/float64(p.N) }

// TRCM returns the per-request cache-miss traffic in bytes (equation 1).
func (p Params) TRCM() float64 {
	return (1 - p.HitRatio) * p.remoteFrac() * p.BRR
}

// TRSC returns the per-request SC consistency traffic (equation 4).
func (p Params) TRSC() float64 {
	return p.HitRatio * p.WriteRatio * float64(p.N-1) * p.BSC
}

// TRLin returns the per-request Lin consistency traffic (equation 2).
func (p Params) TRLin() float64 {
	return p.HitRatio * p.WriteRatio * float64(p.N-1) * p.BLin
}

// TRU returns the per-request traffic of the Uniform baseline (equation 6).
func (p Params) TRU() float64 { return p.remoteFrac() * p.BRR }

// ThroughputSC returns ccKVS-SC requests/second (equation 5).
func (p Params) ThroughputSC() float64 {
	return float64(p.N) * p.BW / (p.TRCM() + p.TRSC())
}

// ThroughputLin returns ccKVS-Lin requests/second (equation 3).
func (p Params) ThroughputLin() float64 {
	return float64(p.N) * p.BW / (p.TRCM() + p.TRLin())
}

// ThroughputUniform returns the Uniform baseline requests/second
// (equation 7).
func (p Params) ThroughputUniform() float64 {
	return float64(p.N) * p.BW / p.TRU()
}

// BreakEvenSC returns the write ratio at which ccKVS-SC and Uniform deliver
// equal throughput (§8.7.2). Setting TR_U = TR_CM + TR_SC and solving for w
// gives w = B_RR / (N · B_SC) — independent of the hit ratio.
func (p Params) BreakEvenSC() float64 {
	return p.BRR / (float64(p.N) * p.BSC)
}

// BreakEvenLin is the Lin break-even write ratio, B_RR / (N · B_Lin).
func (p Params) BreakEvenLin() float64 {
	return p.BRR / (float64(p.N) * p.BLin)
}

// ScalePoint is one row of the Figure 14 scalability study.
type ScalePoint struct {
	N               int
	UniformMRPS     float64
	SCMRPS, LinMRPS float64
}

// ScalabilityStudy evaluates the model from minN to maxN servers at the
// given write ratio (Figure 14 uses 5..40 at w=1%).
func ScalabilityStudy(minN, maxN int, writeRatio float64) []ScalePoint {
	var out []ScalePoint
	for n := minN; n <= maxN; n++ {
		p := Defaults(n, writeRatio)
		out = append(out, ScalePoint{
			N:           n,
			UniformMRPS: p.ThroughputUniform() / 1e6,
			SCMRPS:      p.ThroughputSC() / 1e6,
			LinMRPS:     p.ThroughputLin() / 1e6,
		})
	}
	return out
}

// BreakEvenPoint is one row of the Figure 15 study.
type BreakEvenPoint struct {
	N             int
	SCPct, LinPct float64 // break-even write ratios in percent
}

// BreakEvenStudy evaluates break-even write ratios for deployments of minN
// to maxN servers (Figure 15 uses 5..40).
func BreakEvenStudy(minN, maxN int) []BreakEvenPoint {
	var out []BreakEvenPoint
	for n := minN; n <= maxN; n++ {
		p := Defaults(n, 0)
		out = append(out, BreakEvenPoint{
			N:      n,
			SCPct:  p.BreakEvenSC() * 100,
			LinPct: p.BreakEvenLin() * 100,
		})
	}
	return out
}
