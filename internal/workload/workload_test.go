package workload

import (
	"math"
	"testing"
)

func TestDefaults(t *testing.T) {
	g := MustNew(Config{})
	cfg := g.Config()
	if cfg.ValueSize != DefaultValueSize || cfg.NumKeys == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{WriteRatio: -0.1},
		{WriteRatio: 1.5},
		{Alpha: 1.0},
		{Alpha: -1},
		{ValueSize: -4},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestWriteRatioObserved(t *testing.T) {
	g := MustNew(Config{NumKeys: 1000, Alpha: 0.99, WriteRatio: 0.05, Seed: 1})
	puts := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Next().Type == Put {
			puts++
		}
	}
	got := float64(puts) / n
	if math.Abs(got-0.05) > 0.005 {
		t.Fatalf("observed write ratio %.4f, want 0.05", got)
	}
}

func TestReadOnlyNeverPuts(t *testing.T) {
	g := MustNew(Config{NumKeys: 100, Alpha: 0.99, Seed: 2})
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Type != Get || op.Value != nil {
			t.Fatalf("read-only workload produced %v", op)
		}
	}
}

func TestPutsCarryValueOfConfiguredSize(t *testing.T) {
	g := MustNew(Config{NumKeys: 10, Alpha: 0.99, WriteRatio: 1, ValueSize: 256, Seed: 3})
	op := g.Next()
	if op.Type != Put || len(op.Value) != 256 {
		t.Fatalf("op = %v len=%d", op.Type, len(op.Value))
	}
}

func TestUniformWorkload(t *testing.T) {
	g := MustNew(Config{NumKeys: 16, Alpha: 0, Seed: 4})
	counts := make([]int, 16)
	for i := 0; i < 32000; i++ {
		counts[g.Next().Key]++
	}
	for k, c := range counts {
		if c < 1500 || c > 2500 {
			t.Fatalf("uniform key %d drawn %d times", k, c)
		}
	}
}

func TestZipfWorkloadIsSkewed(t *testing.T) {
	g := MustNew(Config{NumKeys: 10000, Alpha: 0.99, Seed: 5})
	hot := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Key < 10 {
			hot++
		}
	}
	// Top-10 of 10k keys at alpha=.99 carry ~30% of accesses.
	if float64(hot)/n < 0.15 {
		t.Fatalf("hottest 10 keys got only %.3f of accesses", float64(hot)/n)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustNew(Config{NumKeys: 100, Alpha: 0.99, WriteRatio: 0.1, Seed: 6})
	b := MustNew(Config{NumKeys: 100, Alpha: 0.99, WriteRatio: 0.1, Seed: 6})
	for i := 0; i < 5000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Type != ob.Type || oa.Key != ob.Key {
			t.Fatalf("streams diverged at %d: %v vs %v", i, oa, ob)
		}
	}
}

func TestCloneDecorrelates(t *testing.T) {
	g := MustNew(Config{NumKeys: 1000, Alpha: 0.99, Seed: 7})
	c1 := g.Clone(1)
	c2 := g.Clone(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Next().Key == c2.Next().Key {
			same++
		}
	}
	// Zipfian streams share hot keys so some collisions are expected, but
	// identical streams would collide on every draw.
	if same > 900 {
		t.Fatalf("clones look identical: %d/1000 equal draws", same)
	}
}

func TestScrambleOption(t *testing.T) {
	g := MustNew(Config{NumKeys: 1 << 20, Alpha: 0.99, Scramble: true, Seed: 8})
	low := 0
	for i := 0; i < 10000; i++ {
		if g.Next().Key < 1024 {
			low++
		}
	}
	if low > 500 {
		t.Fatalf("scrambled workload clusters at low keys: %d", low)
	}
}

func TestOpTypeString(t *testing.T) {
	if Get.String() != "get" || Put.String() != "put" {
		t.Fatalf("op names wrong")
	}
}

func TestValuePatternVaries(t *testing.T) {
	g := MustNew(Config{NumKeys: 10, Alpha: 0.99, WriteRatio: 1, ValueSize: 16, Seed: 9})
	v1 := append([]byte(nil), g.Next().Value...)
	v2 := append([]byte(nil), g.Next().Value...)
	equal := true
	for i := range v1 {
		if v1[i] != v2[i] {
			equal = false
			break
		}
	}
	if equal {
		t.Fatalf("consecutive put payloads identical; writes would be indistinguishable")
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := MustNew(Config{NumKeys: 1 << 24, Alpha: 0.99, WriteRatio: 0.01, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

func TestPresets(t *testing.T) {
	for _, name := range Presets() {
		cfg, ok := Preset(name, 5000)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if cfg.NumKeys != 5000 {
			t.Fatalf("preset %q config: %+v", name, cfg)
		}
		// ContendedCounter dials the paper's most skewed setting on purpose;
		// everyone else inherits the default.
		if name != ContendedCounter && cfg.Alpha != DefaultAlpha {
			t.Fatalf("preset %q config: %+v", name, cfg)
		}
		if _, err := New(cfg); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
	}
	a, _ := Preset(YCSBA, 100)
	c, _ := Preset(YCSBC, 100)
	if a.WriteRatio != 0.5 || c.WriteRatio != 0 {
		t.Fatalf("mix ratios wrong: %v %v", a.WriteRatio, c.WriteRatio)
	}
	if _, ok := Preset("nope", 100); ok {
		t.Fatal("unknown preset accepted")
	}
}

// RMWFrac draws from its own coin stream: the observed FAA fraction tracks
// the config, and dialing it up must not change WHICH ops the write coin
// turns into puts (only FAAs mask some of them).
func TestRMWFracObservedAndNonPerturbing(t *testing.T) {
	const n = 20000
	g := MustNew(Config{NumKeys: 1 << 16, Alpha: 0, WriteRatio: 0.1, RMWFrac: 0.3, Seed: 9})
	faa, put := 0, 0
	for i := 0; i < n; i++ {
		op := g.Next()
		switch op.Type {
		case FAA:
			faa++
			if op.Delta != 1 || op.Value != nil {
				t.Fatalf("FAA op carries delta %d value %v", op.Delta, op.Value)
			}
		case Put:
			put++
		}
	}
	if got := float64(faa) / n; got < 0.27 || got > 0.33 {
		t.Fatalf("observed FAA fraction %.3f, want ~0.3", got)
	}
	// 10% writes, of which ~30% are masked by the RMW coin: ~7% puts.
	if got := float64(put) / n; got < 0.05 || got > 0.09 {
		t.Fatalf("observed put fraction %.3f, want ~0.07", got)
	}

	// Non-perturbation: with RMWFrac 0 vs 0.5, every op that is a put in the
	// second stream is a put on the same index with the same key in the first.
	a := MustNew(Config{NumKeys: 1 << 16, Alpha: 0, WriteRatio: 0.1, Seed: 42})
	b := MustNew(Config{NumKeys: 1 << 16, Alpha: 0, WriteRatio: 0.1, RMWFrac: 0.5, Seed: 42})
	for i := 0; i < n; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Key != ob.Key {
			t.Fatalf("op %d: keys diverged (%d vs %d)", i, oa.Key, ob.Key)
		}
		if ob.Type == Put && oa.Type != Put {
			t.Fatalf("op %d: put in the rmw stream but %v without", i, oa.Type)
		}
		if ob.Type == Get && oa.Type == Put {
			t.Fatalf("op %d: rmw coin perturbed the write coin (put became get)", i)
		}
	}
}

// The contended-counter preset is tuned for the RMW path: extreme skew,
// counter-sized values, a real RMW fraction.
func TestContendedCounterPreset(t *testing.T) {
	cfg, ok := Preset(ContendedCounter, 1024)
	if !ok {
		t.Fatal("preset missing")
	}
	if cfg.RMWFrac <= 0 || cfg.ValueSize != 8 || cfg.Alpha <= 1 {
		t.Fatalf("unexpected preset shape: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range Presets() {
		if name == ContendedCounter {
			found = true
		}
	}
	if !found {
		t.Fatal("preset not listed")
	}
}
