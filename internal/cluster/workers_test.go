package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// Tests for the multi-worker node: key steering, per-worker isolation, and
// full-stack correctness of concurrent remote traffic spanning every worker
// bank while an online epoch change rewires the hot set underneath it
// (run with -race in CI).

// TestWorkerSteeringCoversAllBanks pins the steering contract: workerOf is a
// pure function of (key, WorkersPerNode), spreads keys across all banks, and
// the thread banks do not overlap.
func TestWorkerSteeringCoversAllBanks(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, MaxWorkersPerNode} {
		cfg := Config{WorkersPerNode: w}
		seen := make(map[int]bool)
		threads := make(map[uint8]string)
		claim := func(th uint8, role string) {
			if prev, dup := threads[th]; dup {
				t.Fatalf("workers=%d: thread %d assigned to both %s and %s", w, th, prev, role)
			}
			threads[th] = role
		}
		claim(threadFlow, "flow")
		claim(threadSession, "session")
		for i := 0; i < w; i++ {
			claim(cfg.cacheThread(i), fmt.Sprintf("cache[%d]", i))
			claim(cfg.kvsThread(i), fmt.Sprintf("kvs[%d]", i))
			claim(cfg.respThread(i), fmt.Sprintf("resp[%d]", i))
		}
		for k := uint64(0); k < 4096; k++ {
			idx := cfg.workerOf(k)
			if idx < 0 || idx >= w {
				t.Fatalf("workers=%d: key %d steered to worker %d", w, k, idx)
			}
			seen[idx] = true
			if again := cfg.workerOf(k); again != idx {
				t.Fatalf("workers=%d: steering not stable for key %d", w, k)
			}
		}
		if len(seen) != w {
			t.Fatalf("workers=%d: only %d banks hit by 4096 keys", w, len(seen))
		}
	}
}

// TestWorkersPerNodeValidation rejects bank widths outside the thread
// address space.
func TestWorkersPerNodeValidation(t *testing.T) {
	if err := (Config{Nodes: 2, WorkersPerNode: MaxWorkersPerNode + 1}).Validate(); err == nil {
		t.Fatal("oversized WorkersPerNode accepted")
	}
	if _, err := New(Config{Nodes: 2, System: Base, NumKeys: 64, WorkersPerNode: MaxWorkersPerNode + 1}); err == nil {
		t.Fatal("New accepted oversized WorkersPerNode")
	}
}

// TestMultiWorkerRemoteOps drives gets and puts through every worker bank of
// a multi-worker Base cluster and checks plain read-your-writes.
func TestMultiWorkerRemoteOps(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 3, System: Base, NumKeys: 2048, WorkersPerNode: 4})
	n := c.Node(0)
	cfg := c.Config()
	perWorker := make(map[int]int)
	for k := uint64(0); k < 256; k++ {
		perWorker[cfg.workerOf(k)]++
		want := []byte(fmt.Sprintf("v-%d", k))
		if err := n.Put(k, want); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
		got, err := n.Get(k)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if string(got) != string(want) {
			t.Fatalf("key %d: got %q want %q", k, got, want)
		}
	}
	for w := 0; w < 4; w++ {
		if perWorker[w] == 0 {
			t.Fatalf("worker %d served no keys", w)
		}
	}
}

// verifyMagic tags checker values so readers can tell them apart from the
// Populate fill.
const verifyMagic = uint64(0xccddee0011223344)

func encodeSeq(key, seq uint64) []byte {
	b := make([]byte, 24)
	binary.LittleEndian.PutUint64(b[0:8], verifyMagic)
	binary.LittleEndian.PutUint64(b[8:16], key)
	binary.LittleEndian.PutUint64(b[16:24], seq)
	return b
}

func decodeSeq(key uint64, v []byte) (uint64, bool) {
	if len(v) < 24 || binary.LittleEndian.Uint64(v[0:8]) != verifyMagic ||
		binary.LittleEndian.Uint64(v[8:16]) != key {
		return 0, false
	}
	return binary.LittleEndian.Uint64(v[16:24]), true
}

// testWorkersAcrossEpochChange hammers ONE node with concurrent gets and
// puts whose keys span every worker bank while the hot set is repeatedly
// reconfigured online underneath them — the cluster-level analogue of the
// mcheck reconfiguration conformance schedules (no lost writes, no stale
// reads), executed for real across all worker banks under the race
// detector. Each key has one writer issuing a strictly increasing tagged
// sequence through node 0 and a reader asserting the observed sequence
// never goes backwards; at the end every node must converge on each key's
// final write.
func testWorkersAcrossEpochChange(t *testing.T, proto core.Protocol) {
	const (
		nodes   = 3
		workers = 4
		numKeys = 1024
		rounds  = 60
		flips   = 6
	)
	c := newTestCluster(t, Config{
		Nodes: nodes, System: CCKVS, Protocol: proto,
		NumKeys: numKeys, CacheItems: 16, WorkersPerNode: workers,
	})
	c.Populate()
	cfg := c.Config()

	// Two disjoint hot-set windows; the epoch changes flip between them, so
	// every flip demotes one window and promotes the other.
	setA := make([]uint64, 0, 16)
	setB := make([]uint64, 0, 16)
	for k := uint64(0); len(setA) < 16; k++ {
		setA = append(setA, k)
	}
	for k := uint64(16); len(setB) < 16; k++ {
		setB = append(setB, k)
	}
	if err := c.InstallHotSet(setA); err != nil {
		t.Fatal(err)
	}

	// Hammered keys: from both windows plus always-cold ones, covering every
	// worker bank in each class.
	var keys []uint64
	coveredHot := make(map[int]bool)
	coveredCold := make(map[int]bool)
	for k := uint64(0); k < 32; k++ { // window keys (hot in A or B)
		if !coveredHot[cfg.workerOf(k)] || len(keys) < 12 {
			coveredHot[cfg.workerOf(k)] = true
			keys = append(keys, k)
		}
	}
	for k := uint64(100); k < 200 && len(coveredCold) < workers; k++ {
		if !coveredCold[cfg.workerOf(k)] {
			coveredCold[cfg.workerOf(k)] = true
			keys = append(keys, k)
		}
	}
	if len(coveredHot) != workers || len(coveredCold) != workers {
		t.Fatalf("key choice misses banks: hot=%d cold=%d", len(coveredHot), len(coveredCold))
	}

	n0 := c.Node(0) // the hammered node
	var writerWG, flipperWG, readerWG sync.WaitGroup
	var failed atomic.Bool
	fatal := make(chan error, 1)
	fail := func(err error) {
		if !failed.Swap(true) {
			fatal <- err
		}
	}

	// One writer per key: a strictly increasing sequence through node 0.
	for _, key := range keys {
		writerWG.Add(1)
		go func(key uint64) {
			defer writerWG.Done()
			for seq := uint64(1); seq <= rounds; seq++ {
				if failed.Load() {
					return
				}
				if err := n0.Put(key, encodeSeq(key, seq)); err != nil {
					fail(fmt.Errorf("writer key %d seq %d: %w", key, seq, err))
					return
				}
			}
		}(key)
	}
	// One reader per key: observed sequence must be monotone (a decrease is
	// a stale read — e.g. a read served from a cache replica after the home
	// shard accepted a newer post-demotion write).
	readerStop := make(chan struct{})
	for _, key := range keys {
		readerWG.Add(1)
		go func(key uint64) {
			defer readerWG.Done()
			var last uint64
			for {
				select {
				case <-readerStop:
					return
				default:
				}
				v, err := n0.Get(key)
				if err != nil {
					fail(fmt.Errorf("reader key %d: %w", key, err))
					return
				}
				if seq, ok := decodeSeq(key, v); ok {
					if seq < last {
						fail(fmt.Errorf("stale read: key %d went %d -> %d", key, last, seq))
						return
					}
					last = seq
				}
			}
		}(key)
	}

	// The epoch changer: flip the hot set while the traffic is in flight.
	flipperWG.Add(1)
	go func() {
		defer flipperWG.Done()
		for i := 0; i < flips && !failed.Load(); i++ {
			target := setA
			if i%2 == 0 {
				target = setB
			}
			if _, err := c.ApplyHotSet(0, target); err != nil {
				fail(fmt.Errorf("epoch flip %d: %w", i, err))
				return
			}
		}
	}()

	writerWG.Wait()
	flipperWG.Wait()
	close(readerStop)
	readerWG.Wait()
	select {
	case err := <-fatal:
		t.Fatal(err)
	default:
	}

	// Convergence: every node must come to see each key's final write (no
	// lost writes across the demotion write-backs and promotion fetches).
	// SC propagates asynchronously, so poll briefly before declaring a
	// write lost.
	deadline := time.Now().Add(20 * time.Second)
	for _, key := range keys {
		for i := 0; i < nodes; i++ {
			for {
				v, err := c.Node(i).Get(key)
				if err != nil {
					t.Fatalf("final get key %d via node %d: %v", key, i, err)
				}
				seq, ok := decodeSeq(key, v)
				if ok && seq == rounds {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("lost write: key %d via node %d stuck at seq %d (ok=%v), want %d", key, i, seq, ok, rounds)
				}
				yield()
			}
		}
	}
}

func TestWorkersAcrossEpochChangeSC(t *testing.T) {
	testWorkersAcrossEpochChange(t, core.SC)
}

func TestWorkersAcrossEpochChangeLin(t *testing.T) {
	testWorkersAcrossEpochChange(t, core.Lin)
}
