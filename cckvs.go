// Package cckvs is the public API of the Scale-Out ccNUMA / ccKVS
// reproduction (Gavrielatos et al., EuroSys'18): a distributed in-memory
// key-value store that exploits popularity skew by replicating the hottest
// items in a strongly consistent symmetric cache on every node.
//
// The package embeds a full multi-node deployment in the current process —
// every node runs a KVS shard, a symmetric cache, and the consistency
// protocol engines, exchanging real messages over the fabric transport.
// Clients load-balance requests across nodes exactly as the paper's
// black-box abstraction prescribes:
//
//	kv, err := cckvs.Open(cckvs.Options{Nodes: 5, Consistency: cckvs.Lin})
//	...
//	err = kv.Put(42, []byte("value"))
//	v, err := kv.Get(42)
//
// Hot-set management uses the paper's §4 machinery: accesses are sampled
// into a Space-Saving top-k summary and RefreshHotSet closes the epoch,
// installing the current top keys into every node's cache and flushing
// dirty evicted items to their home shards.
//
// The reproduction's experiment harness lives in internal/experiments and
// is exposed through cmd/cckvs-bench; the analytical model and the
// calibrated rack simulator used for the paper's figures are
// internal/model and internal/simnet.
package cckvs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/topk"
)

// Consistency selects the cache consistency protocol.
type Consistency = core.Protocol

// Consistency levels, per §5 of the paper.
const (
	// SC is per-key Sequential Consistency: non-blocking writes,
	// asynchronous propagation, total per-key write order.
	SC = core.SC
	// Lin is per-key Linearizability: blocking two-phase writes; a put
	// returns only once its value is visible (or stalls readers) on every
	// replica.
	Lin = core.Lin
)

// Options configures an embedded deployment.
type Options struct {
	// Nodes is the number of server nodes (paper: 9; default 3).
	Nodes int
	// Consistency picks SC or Lin (default SC).
	Consistency Consistency
	// NumKeys is the keyspace size; keys are uint64 in [0, NumKeys).
	// Default 1<<16.
	NumKeys uint64
	// CacheItems is the per-node symmetric cache capacity (default 1% of
	// NumKeys, mirroring the paper's 0.1% at 250M scaled to small
	// keyspaces).
	CacheItems int
	// ValueSize is the default object size used by Populate (default 40,
	// as in the paper's evaluation).
	ValueSize int
	// SampleRate is the request-sampling rate feeding the top-k hot-key
	// tracker (§4; default 16: one in 16 requests is recorded).
	SampleRate uint64
	// WorkersPerNode is the width of every node's worker banks (the
	// paper's cache/KVS threads, §6.2): requests are steered to workers by
	// key hash and each worker runs its own dispatchers, RPC pipeline and
	// flow-control budget. Default: GOMAXPROCS, capped at
	// cluster.MaxWorkersPerNode.
	WorkersPerNode int
}

// KV is an embedded ccKVS deployment with a client-side load balancer.
type KV struct {
	c     *cluster.Cluster
	coord *topk.Coordinator
	rr    atomic.Uint64
	items int
}

// ErrClosed is returned by operations on a closed KV.
var ErrClosed = errors.New("cckvs: closed")

// Open builds and starts an embedded deployment, populates the dataset
// (every key holds a zero value of ValueSize bytes) and installs the
// initial hot set (the lowest-numbered keys, pending popularity feedback).
func Open(opts Options) (*KV, error) {
	if opts.Nodes == 0 {
		opts.Nodes = 3
	}
	if opts.NumKeys == 0 {
		opts.NumKeys = 1 << 16
	}
	if opts.CacheItems == 0 {
		opts.CacheItems = int(opts.NumKeys / 100)
		if opts.CacheItems == 0 {
			opts.CacheItems = 1
		}
	}
	if opts.SampleRate == 0 {
		opts.SampleRate = 16
	}
	c, err := cluster.New(cluster.Config{
		Nodes:          opts.Nodes,
		System:         cluster.CCKVS,
		Protocol:       opts.Consistency,
		NumKeys:        opts.NumKeys,
		CacheItems:     opts.CacheItems,
		ValueSize:      opts.ValueSize,
		WorkersPerNode: opts.WorkersPerNode,
	})
	if err != nil {
		return nil, fmt.Errorf("cckvs: %w", err)
	}
	c.Populate()
	initial := cluster.DefaultHotSet(opts.CacheItems)
	if err := c.InstallHotSet(initial); err != nil {
		c.Close()
		return nil, fmt.Errorf("cckvs: install hot set: %w", err)
	}
	kv := &KV{
		c:     c,
		coord: topk.NewCoordinator(opts.CacheItems, opts.CacheItems*4, opts.SampleRate),
		items: opts.CacheItems,
	}
	kv.coord.Seed(initial)
	return kv, nil
}

// pick load-balances requests round-robin across nodes, as ccKVS clients do.
func (kv *KV) pick() int {
	return int(kv.rr.Add(1) % uint64(kv.c.NumNodes()))
}

// Get reads key through a randomly rotating server node. The returned slice
// is private to the caller.
func (kv *KV) Get(key uint64) ([]byte, error) {
	kv.coord.Observe(key)
	return kv.c.Node(kv.pick()).Get(key)
}

// Put writes key through a rotating server node under the configured
// consistency model.
func (kv *KV) Put(key uint64, value []byte) error {
	kv.coord.Observe(key)
	return kv.c.Node(kv.pick()).Put(key, value)
}

// CompareAndSwap atomically replaces key's value with newVal iff the stored
// value equals expect (nil/empty expect matches a missing key). The op
// executes exactly once at the key's serialization point under the
// configured consistency model; witness is the value the comparison
// observed, so a failed CAS needs no extra read before retrying.
func (kv *KV) CompareAndSwap(key uint64, expect, newVal []byte) (witness []byte, swapped bool, err error) {
	kv.coord.Observe(key)
	return kv.c.Node(kv.pick()).CompareAndSwap(key, expect, newVal)
}

// FetchAndAdd atomically adds delta to the 8-byte big-endian counter stored
// under key (a missing key counts from 0 — see cluster.EncodeCounter) and
// returns the pre-add value. The addition runs server-side at the key's
// serialization point, so a hot contended counter never turns into a
// client-visible CAS retry loop.
func (kv *KV) FetchAndAdd(key uint64, delta uint64) (old uint64, err error) {
	kv.coord.Observe(key)
	return kv.c.Node(kv.pick()).FetchAndAdd(key, delta)
}

// Pair is one key/value of a MultiPut batch.
type Pair struct {
	Key   uint64
	Value []byte
}

// The facade re-exports the op model: internal/cluster is compiler-private
// outside this module, so these aliases are the only way an external
// importer can construct a Batch. They are aliases, not copies — a cckvs.Op
// IS a cluster.Op, and the error variables errors.Is-match values returned
// from every layer.
type (
	// Op is one operation of a Batch: its Kind, Key, and the kind's
	// payload (Value for puts and CAS, Expect for CAS, Delta for FAA).
	Op = cluster.Op
	// Result is one op's outcome — its value and ITS error; a missing key
	// or a lost CAS fails its own slot, never its batch-mates.
	Result = cluster.Result
	// OpKind selects what an Op does.
	OpKind = cluster.OpKind
)

// Op kinds accepted by Batch.
const (
	OpGet = cluster.OpGet
	OpPut = cluster.OpPut
	OpCAS = cluster.OpCAS
	OpFAA = cluster.OpFAA
)

// Typed errors surfaced through the facade, for errors.Is.
var (
	// ErrNotFound reports a get of an absent key.
	ErrNotFound = store.ErrNotFound
	// ErrCASMismatch reports a CAS whose expectation lost; the witnessed
	// value rides alongside it (Result.Value, or CompareAndSwap's witness).
	ErrCASMismatch = cluster.ErrCASMismatch
	// ErrRMWUnknown reports an RMW whose fate a failure hid. It is never
	// retried internally — re-running it could apply it twice; read the
	// key to resolve, or abandon the attempt.
	ErrRMWUnknown = cluster.ErrRMWUnknown
)

// EncodeCounter renders v in the 8-byte big-endian format FetchAndAdd
// operates on — use it to seed or CAS counter values.
func EncodeCounter(v uint64) []byte { return cluster.EncodeCounter(v) }

// DecodeCounter is EncodeCounter's inverse; nil/empty decodes as 0.
func DecodeCounter(b []byte) (uint64, error) { return cluster.DecodeCounter(b) }

// Batch executes a mixed batch of operations (get, put, CAS, FAA) against
// the deployment, fanned out round-robin across the server nodes, and
// reports every op's outcome individually — results[i] is ops[i]'s value
// and error (ErrNotFound for an absent get, ErrCASMismatch plus the
// witness for a failed CAS). Gets and puts of a stripe travel coalesced
// (§6.3) and fall back to per-op execution only when the coalesced call
// fails, so one bad key no longer hides its stripe-mates' outcomes. Every
// access feeds the top-k popularity observer.
func (kv *KV) Batch(ops []Op) ([]Result, error) {
	rs := make([]Result, len(ops))
	err := kv.fanOut(len(ops), func(i int) { kv.coord.Observe(ops[i].Key) },
		func(node int, idxs []int) error {
			kv.batchStripe(node, ops, rs, idxs)
			return nil
		})
	return rs, err
}

// batchStripe serves one node's share of a Batch: gets and puts ride the
// coalesced multi-op paths, RMWs execute per op (each is a blocking
// multi-phase protocol of its own).
func (kv *KV) batchStripe(node int, ops []cluster.Op, rs []cluster.Result, idxs []int) {
	n := kv.c.Node(node)
	var gets, puts []int
	for _, i := range idxs {
		switch ops[i].EffectiveKind() {
		case cluster.OpPut:
			puts = append(puts, i)
		case cluster.OpCAS:
			w, swapped, err := n.CompareAndSwap(ops[i].Key, ops[i].Expect, ops[i].Value)
			rs[i] = cluster.Result{Value: w, Err: err}
			if err == nil && !swapped {
				rs[i].Err = cluster.ErrCASMismatch
			}
		case cluster.OpFAA:
			old, err := n.FetchAndAdd(ops[i].Key, ops[i].Delta)
			if err != nil {
				rs[i] = cluster.Result{Err: err}
			} else {
				rs[i] = cluster.Result{Value: cluster.EncodeCounter(old)}
			}
		default:
			gets = append(gets, i)
		}
	}
	if len(gets) > 0 {
		sub := make([]uint64, len(gets))
		for j, i := range gets {
			sub[j] = ops[i].Key
		}
		values, err := n.MultiGet(sub)
		if err == nil {
			for j, i := range gets {
				rs[i].Value = values[j]
				if values[j] == nil {
					rs[i].Err = store.ErrNotFound
				}
			}
		} else {
			// The coalesced call cannot name the failing key; re-resolve per
			// op so its stripe-mates still report their own outcomes.
			for _, i := range gets {
				rs[i].Value, rs[i].Err = n.Get(ops[i].Key)
			}
		}
	}
	if len(puts) > 0 {
		ks := make([]uint64, len(puts))
		vs := make([][]byte, len(puts))
		for j, i := range puts {
			ks[j] = ops[i].Key
			vs[j] = ops[i].Value
		}
		if err := n.MultiPut(ks, vs); err != nil {
			for _, i := range puts {
				rs[i].Err = n.Put(ops[i].Key, ops[i].Value)
			}
		}
	}
}

// MultiGet reads a batch of keys in one operation. The batch is fanned out
// round-robin across the server nodes; each node probes its cache and issues
// one coalesced remote access per home shard for the misses (§6.3), so a
// large uniform batch costs a small number of network packets instead of one
// round-trip per key. values[i] is nil when keys[i] does not exist. The
// returned error is the first per-op failure after the whole batch settled —
// keys that served successfully keep their values regardless (use Batch for
// full per-op outcomes). Every access feeds the top-k popularity observer
// like Get does.
//
// Ownership: the values are private to the caller, but several entries of
// one call may share a single backing array — locally served keys are
// pinned under store leases and copied once into a batch-shared buffer on
// the way out (the zero-copy value path's facade end). The slices are
// disjoint and capacity-clipped: reading and overwriting in place are safe,
// appending to one is not. Copy an entry to detach it.
func (kv *KV) MultiGet(keys []uint64) ([][]byte, error) {
	ops := make([]cluster.Op, len(keys))
	for i, k := range keys {
		ops[i].Key = k
	}
	rs, firstErr := kv.Batch(ops)
	out := make([][]byte, len(keys))
	for i := range rs {
		switch {
		case rs[i].Err == nil:
			out[i] = rs[i].Value
		case errors.Is(rs[i].Err, store.ErrNotFound):
			// absent: out[i] stays nil
		default:
			if firstErr == nil {
				firstErr = rs[i].Err
			}
		}
	}
	return out, firstErr
}

// MultiPut writes a batch of pairs in one operation, fanned out round-robin
// across the server nodes; cache-hot keys run the configured consistency
// protocol, misses travel to their home shards in coalesced packets. The
// returned error is the first per-op failure after the whole batch settled
// (use Batch for full per-op outcomes).
func (kv *KV) MultiPut(pairs []Pair) error {
	ops := make([]cluster.Op, len(pairs))
	for i, p := range pairs {
		ops[i] = cluster.Op{Kind: cluster.OpPut, Key: p.Key, Value: p.Value}
	}
	rs, firstErr := kv.Batch(ops)
	for i := range rs {
		if rs[i].Err != nil && firstErr == nil {
			firstErr = rs[i].Err
		}
	}
	return firstErr
}

// fanOut observes every batch index, stripes the indices round-robin across
// the nodes and runs one do() per node concurrently, returning the first
// error once all stripes finished.
func (kv *KV) fanOut(n int, observe func(i int), do func(node int, idxs []int) error) error {
	if n == 0 {
		return nil
	}
	nodes := kv.c.NumNodes()
	start := kv.pick()
	groups := make([][]int, nodes)
	for i := 0; i < n; i++ {
		observe(i)
		g := start
		if n >= 2*nodes {
			// Large batches stripe across all servers; small ones go to one
			// rotating node whole — its pipeline coalesces them anyway, and
			// splitting hair-thin stripes only adds fan-out overhead.
			g = (start + i) % nodes
		}
		groups[g] = append(groups[g], i)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// Run the first non-empty stripe inline: small batches land on one node
	// and pay no spawn cost.
	inline := -1
	for node, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		if inline < 0 {
			inline = node
			continue
		}
		wg.Add(1)
		go func(node int, idxs []int) {
			defer wg.Done()
			record(do(node, idxs))
		}(node, idxs)
	}
	if inline >= 0 {
		record(do(inline, groups[inline]))
	}
	wg.Wait()
	return firstErr
}

// RefreshHotSet ends the popularity epoch: the top-k keys observed since the
// previous refresh become the new symmetric cache content on every node. The
// change is applied *incrementally and online* (cluster.ApplyHotSet): only
// the epoch delta moves — demoted keys have their dirty values written
// back to their home shards over RPC before leaving every cache, promoted
// keys are fetched from their (placeholder-pinned) home shards over the
// coalescing pipeline and installed everywhere — while client traffic
// keeps flowing; a key mid-transition misses to its home shard, and writes
// briefly spin at phase boundaries. The epoch always rolls,
// even when the interval observed nothing (the coordinator then republishes
// the incumbent set), and the returned counts are exactly the promotions and
// demotions applied to the caches.
func (kv *KV) RefreshHotSet() (added, removed int) {
	hs, _, _ := kv.coord.EndEpoch()
	// Best-effort: the delta can only fail when the deployment is closing
	// mid-refresh; the stats still report what did apply. The delta against
	// the installed set is computed inside ApplyHotSet, under the cluster's
	// reconfiguration lock.
	st, _ := kv.c.ApplyHotSet(kv.pick(), hs.Keys)
	return st.Promoted, st.Demoted
}

// Stats summarizes cache behaviour since Open.
type Stats struct {
	CacheHits, CacheMisses uint64
	LocalOps, RemoteOps    uint64
	HotSetEpoch            uint64
	HotSetSize             int
}

// Stats returns aggregate counters across all nodes.
func (kv *KV) Stats() Stats {
	var s Stats
	for i := 0; i < kv.c.NumNodes(); i++ {
		n := kv.c.Node(i)
		s.CacheHits += n.CacheHits.Load()
		s.CacheMisses += n.CacheMisses.Load()
		s.LocalOps += n.LocalOps.Load()
		s.RemoteOps += n.RemoteOps.Load()
	}
	cur := kv.coord.Current()
	s.HotSetEpoch = cur.Epoch
	s.HotSetSize = cur.Size()
	return s
}

// HitRate returns the cache hit ratio observed so far.
func (s Stats) HitRate() float64 {
	t := s.CacheHits + s.CacheMisses
	if t == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(t)
}

// NumNodes returns the deployment size.
func (kv *KV) NumNodes() int { return kv.c.NumNodes() }

// Cluster exposes the underlying deployment for advanced use (experiment
// harnesses, tests).
func (kv *KV) Cluster() *cluster.Cluster { return kv.c }

// Close shuts the deployment down.
func (kv *KV) Close() error { return kv.c.Close() }
