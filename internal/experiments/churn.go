package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/topk"
	"repro/internal/workload"
)

// LocalChurnAblation runs the real in-process cluster under the
// shifting-hotspot workload — the popularity distribution rotates to a
// fresh keyspace region several times during the run — and compares three
// hot-set management policies while client traffic is in full flight:
//
//   - none: the bootstrap hot set is never refreshed; the hit rate decays
//     as the hotspot walks away from it (the system the paper's §4
//     machinery exists to avoid);
//   - full reinstall: a background epoch loop reinstalls the entire top-k
//     via Cluster.InstallHotSet — the legacy stop-the-world path that
//     rebuilds every node's table (O(k) keys moved per epoch) by reaching
//     into peer state directly;
//   - incremental: the same epoch loop applies only the delta with
//     Cluster.ApplyHotSetDelta — O(Δ) home-shard fetches over the RPC
//     fabric, demotion write-backs included, safe under concurrent writes.
func LocalChurnAblation(opsPerClient int) (Table, error) {
	if opsPerClient <= 0 {
		opsPerClient = 2000
	}
	t := Table{
		ID:      "local-churn",
		Title:   "Hot-set reconfiguration under a moving hotspot [4 nodes, alpha=0.99, 5% writes]",
		Columns: []string{"refresh", "throughput ops/s", "hit rate %", "epochs", "keys moved/epoch", "fetches/epoch", "frozen retries"},
	}
	const (
		nodes   = 4
		numKeys = 8192
		cacheSz = 96
		clients = 8
	)
	wl, _ := workload.Preset(workload.ShiftingHotspot, numKeys)
	wl.Seed = 42
	// A handful of hotspot moves within each client's stream, however long
	// the run is.
	wl.ShiftEvery = uint64(opsPerClient/6 + 1)

	for _, mode := range []string{"none", "full reinstall", "incremental"} {
		cl, err := cluster.New(cluster.Config{
			Nodes: nodes, System: cluster.CCKVS, Protocol: core.SC,
			NumKeys: numKeys, CacheItems: cacheSz,
		})
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", mode, err)
		}
		cl.Populate()
		cl.InstallHotSet(cluster.DefaultHotSet(cacheSz))

		opts := cluster.RunOptions{
			Clients:      clients,
			OpsPerClient: opsPerClient,
			Workload:     wl,
		}
		var epochs, moved, fetches int
		if mode != "none" {
			coord := topk.NewCoordinator(cacheSz, cacheSz*4, 1)
			coord.Seed(cluster.DefaultHotSet(cacheSz))
			opts.Observe = coord.Observe
			// Long enough that an epoch samples a few thousand operations;
			// much shorter and the tail of the top-k is singleton noise.
			opts.RefreshEvery = 5 * time.Millisecond
			full := mode == "full reinstall"
			opts.OnRefresh = func() {
				hs, _, _ := coord.EndEpoch()
				epochs++
				if full {
					cl.InstallHotSet(hs.Keys)
					moved += len(hs.Keys)
					return
				}
				st, err := cl.ApplyHotSet(0, hs.Keys)
				if err != nil {
					return // deployment closing; nothing to account
				}
				moved += st.Promoted + st.Demoted
				fetches += st.HomeFetches
			}
		}

		res, err := cl.Run(opts)
		if err != nil {
			cl.Close()
			return Table{}, fmt.Errorf("%s: %w", mode, err)
		}
		var frozen uint64
		for i := 0; i < cl.NumNodes(); i++ {
			frozen += cl.Node(i).FrozenRetries.Load()
		}
		cl.Close()

		perEpoch := func(total int) float64 {
			if epochs == 0 {
				return 0
			}
			return float64(total) / float64(epochs)
		}
		t.AddRow(mode, res.Throughput, res.HitRate()*100,
			epochs, perEpoch(moved), perEpoch(fetches), int(frozen))
	}
	t.Notes = append(t.Notes,
		"the hotspot rotates ~6x per client stream; 'none' decays toward zero hits",
		"full reinstall rebuilds all k cache entries per epoch outside the fabric; incremental moves only the delta over RPC (fetches/epoch ~ churn)",
	)
	return t, nil
}
