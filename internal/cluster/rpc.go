package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/timestamp"
)

// The remote-access RPC of the NUMA abstraction (§6.1): on a cache miss for
// a remotely-homed key, the handling server issues a get (or forwards a put)
// to the key's home node over two-sided sends, FaSST-style. A request always
// receives a response, so flow control is implicit: the response doubles as
// the credit update (§6.3).
//
// Wire formats (little endian):
//
//	request:  op(1) reqID(8) key(8) [vlen(4) value]      op: 0=get 1=put
//	response: reqID(8) status(1) [clock(4) writer(1) vlen(4) value]
const (
	rpcOpGet byte = 0
	rpcOpPut byte = 1
	// rpcOpPrimaryWrite executes a hot write on the primary's cache
	// (Figure 4a design; the primary broadcasts the resulting update).
	rpcOpPrimaryWrite byte = 2
	// rpcOpSeqTS fetches the next per-key serialization timestamp from
	// the sequencer (Figure 4b design).
	rpcOpSeqTS byte = 3

	rpcStatusOK       byte = 0
	rpcStatusNotFound byte = 1
)

// rpcClient matches responses to outstanding requests for one node.
type rpcClient struct {
	node *Node
	mu   sync.Mutex
	next uint64
	pend map[uint64]chan rpcResult
}

type rpcResult struct {
	status byte
	ts     timestamp.TS
	value  []byte
}

func newRPCClient(n *Node) *rpcClient {
	return &rpcClient{node: n, pend: map[uint64]chan rpcResult{}}
}

// call sends a request to home's KVS thread and blocks for the response.
func (r *rpcClient) call(home uint8, req []byte, reqID uint64) rpcResult {
	ch := make(chan rpcResult, 1)
	r.mu.Lock()
	r.pend[reqID] = ch
	r.mu.Unlock()

	kvsAddr := fabric.Addr{Node: home, Thread: threadKVS}
	r.node.credits.Acquire(kvsAddr)
	r.node.cluster.transport.Send(fabric.Packet{
		Src:   fabric.Addr{Node: r.node.id, Thread: threadResp},
		Dst:   kvsAddr,
		Class: metrics.ClassCacheMiss,
		Data:  req,
	})
	res := <-ch
	// The response is the implicit credit update.
	r.node.credits.Grant(kvsAddr, 1)
	return res
}

func (r *rpcClient) newReqID() uint64 {
	r.mu.Lock()
	r.next++
	id := r.next
	r.mu.Unlock()
	return id
}

// handleResponse completes the matching pending call.
func (r *rpcClient) handleResponse(p fabric.Packet) {
	buf := p.Data
	for len(buf) >= 9 {
		reqID := binary.LittleEndian.Uint64(buf[:8])
		status := buf[8]
		buf = buf[9:]
		res := rpcResult{status: status}
		if status == rpcStatusOK {
			if len(buf) < 9 {
				return
			}
			res.ts = timestamp.TS{
				Clock:  binary.LittleEndian.Uint32(buf[:4]),
				Writer: buf[4],
			}
			vlen := int(binary.LittleEndian.Uint32(buf[5:9]))
			buf = buf[9:]
			if len(buf) < vlen {
				return
			}
			res.value = append([]byte(nil), buf[:vlen]...)
			buf = buf[vlen:]
		}
		r.mu.Lock()
		ch := r.pend[reqID]
		delete(r.pend, reqID)
		r.mu.Unlock()
		if ch != nil {
			ch <- res
		}
	}
}

// RemoteGet fetches key from its home node over the fabric.
func (n *Node) RemoteGet(home uint8, key uint64) ([]byte, timestamp.TS, error) {
	id := n.rpc.newReqID()
	req := make([]byte, 0, 17)
	req = append(req, rpcOpGet)
	req = binary.LittleEndian.AppendUint64(req, id)
	req = binary.LittleEndian.AppendUint64(req, key)
	res := n.rpc.call(home, req, id)
	if res.status != rpcStatusOK {
		return nil, timestamp.TS{}, store.ErrNotFound
	}
	return res.value, res.ts, nil
}

// RemotePut forwards a put for key to its home node.
func (n *Node) RemotePut(home uint8, key uint64, value []byte) error {
	id := n.rpc.newReqID()
	req := make([]byte, 0, 21+len(value))
	req = append(req, rpcOpPut)
	req = binary.LittleEndian.AppendUint64(req, id)
	req = binary.LittleEndian.AppendUint64(req, key)
	req = binary.LittleEndian.AppendUint32(req, uint32(len(value)))
	req = append(req, value...)
	res := n.rpc.call(home, req, id)
	if res.status != rpcStatusOK {
		return fmt.Errorf("cluster: remote put failed (status %d)", res.status)
	}
	return nil
}

// PrimaryWrite forwards a hot write to the primary node's cache (Figure 4a).
func (n *Node) PrimaryWrite(primary uint8, key uint64, value []byte) error {
	id := n.rpc.newReqID()
	req := make([]byte, 0, 21+len(value))
	req = append(req, rpcOpPrimaryWrite)
	req = binary.LittleEndian.AppendUint64(req, id)
	req = binary.LittleEndian.AppendUint64(req, key)
	req = binary.LittleEndian.AppendUint32(req, uint32(len(value)))
	req = append(req, value...)
	res := n.rpc.call(primary, req, id)
	if res.status != rpcStatusOK {
		return fmt.Errorf("cluster: primary write failed (status %d)", res.status)
	}
	return nil
}

// SeqTS fetches the next serialization timestamp for key from the
// sequencer node (Figure 4b).
func (n *Node) SeqTS(sequencer uint8, key uint64) (timestamp.TS, error) {
	id := n.rpc.newReqID()
	req := make([]byte, 0, 17)
	req = append(req, rpcOpSeqTS)
	req = binary.LittleEndian.AppendUint64(req, id)
	req = binary.LittleEndian.AppendUint64(req, key)
	res := n.rpc.call(sequencer, req, id)
	if res.status != rpcStatusOK {
		return timestamp.TS{}, fmt.Errorf("cluster: sequencer failed (status %d)", res.status)
	}
	return res.ts, nil
}

// handleKVSRequest serves remote gets/puts against the local shard. It runs
// on the KVS-thread dispatcher; KVS threads never talk to each other (§6.2),
// they only answer cache threads.
func (n *Node) handleKVSRequest(p fabric.Packet) {
	buf := p.Data
	if len(buf) < 17 {
		return
	}
	op := buf[0]
	reqID := binary.LittleEndian.Uint64(buf[1:9])
	key := binary.LittleEndian.Uint64(buf[9:17])

	resp := make([]byte, 0, 64)
	resp = binary.LittleEndian.AppendUint64(resp, reqID)
	switch op {
	case rpcOpGet:
		v, ts, err := n.kvs.Get(key, nil)
		if err != nil {
			resp = append(resp, rpcStatusNotFound)
		} else {
			resp = append(resp, rpcStatusOK)
			resp = binary.LittleEndian.AppendUint32(resp, ts.Clock)
			resp = append(resp, ts.Writer)
			resp = binary.LittleEndian.AppendUint32(resp, uint32(len(v)))
			resp = append(resp, v...)
		}
	case rpcOpPut:
		if len(buf) < 21 {
			return
		}
		vlen := int(binary.LittleEndian.Uint32(buf[17:21]))
		if len(buf) < 21+vlen {
			return
		}
		// Puts that miss the cache go to the home shard; they carry no
		// protocol timestamp, so advance the stored clock to serialize
		// (home-node writes are trivially serialized per key).
		_, ts, err := n.kvs.Get(key, nil)
		if err != nil {
			ts = timestamp.TS{}
		}
		n.kvs.Put(key, buf[21:21+vlen], ts.Next(n.id))
		resp = append(resp, rpcStatusOK)
		resp = binary.LittleEndian.AppendUint32(resp, 0)
		resp = append(resp, 0)
		resp = binary.LittleEndian.AppendUint32(resp, 0)
	case rpcOpPrimaryWrite:
		if len(buf) < 21 {
			return
		}
		vlen := int(binary.LittleEndian.Uint32(buf[17:21]))
		if len(buf) < 21+vlen || n.cache == nil {
			return
		}
		// All hot writes serialize through this node's cache; the update
		// broadcast reaches every other node, including the origin.
		upd, err := n.cache.WriteSC(key, buf[21:21+vlen])
		if err != nil {
			resp = append(resp, rpcStatusNotFound)
		} else {
			n.broadcastConsistency(metrics.ClassUpdate, upd.Encode(nil))
			resp = append(resp, rpcStatusOK)
			resp = binary.LittleEndian.AppendUint32(resp, upd.TS.Clock)
			resp = append(resp, upd.TS.Writer)
			resp = binary.LittleEndian.AppendUint32(resp, 0)
		}
	case rpcOpSeqTS:
		n.seqMu.Lock()
		n.seqClocks[key]++
		clock := n.seqClocks[key]
		n.seqMu.Unlock()
		resp = append(resp, rpcStatusOK)
		resp = binary.LittleEndian.AppendUint32(resp, clock)
		resp = append(resp, p.Src.Node) // writer id: the requesting node
		resp = binary.LittleEndian.AppendUint32(resp, 0)
	default:
		return
	}
	n.cluster.transport.Send(fabric.Packet{
		Src:   fabric.Addr{Node: n.id, Thread: threadKVS},
		Dst:   fabric.Addr{Node: p.Src.Node, Thread: threadResp},
		Class: metrics.ClassCacheMiss,
		Data:  resp,
	})
}
