package mcheck

import (
	"strings"
	"testing"
)

func TestBoundsValidate(t *testing.T) {
	bad := []Bounds{
		{Procs: 1, Addrs: 1, MaxClock: 1},
		{Procs: 5, Addrs: 1, MaxClock: 1},
		{Procs: 3, Addrs: 0, MaxClock: 1},
		{Procs: 3, Addrs: 3, MaxClock: 1},
		{Procs: 3, Addrs: 1, MaxClock: 0},
		{Procs: 3, Addrs: 1, MaxClock: 9},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d must fail: %+v", i, b)
		}
	}
	if err := DefaultBounds().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTSAfter(t *testing.T) {
	if !(TS{C: 2, W: 0}).after(TS{C: 1, W: 3}) {
		t.Error("clock must dominate")
	}
	if !(TS{C: 1, W: 2}).after(TS{C: 1, W: 1}) {
		t.Error("writer must break ties")
	}
	if (TS{C: 1, W: 1}).after(TS{C: 1, W: 1}) {
		t.Error("equal timestamps do not order")
	}
}

func TestStateKeyCanonicalizesMessageOrder(t *testing.T) {
	b := Bounds{Procs: 2, Addrs: 1, MaxClock: 2}
	s1 := initial(b)
	s1.Msgs = []Msg{
		{Kind: MInv, Addr: 0, TS: TS{1, 0}, To: 1, From: 0},
		{Kind: MUpd, Addr: 0, TS: TS{1, 1}, To: 0, From: 1, Val: TS{1, 1}},
	}
	s2 := s1.clone()
	s2.Msgs[0], s2.Msgs[1] = s2.Msgs[1], s2.Msgs[0]
	if s1.key(b) != s2.key(b) {
		t.Error("message permutations must hash identically")
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := Bounds{Procs: 2, Addrs: 1, MaxClock: 2}
	s := initial(b)
	s.Msgs = append(s.Msgs, Msg{Kind: MInv})
	c := s.clone()
	c.Lines[0].TS = TS{1, 1}
	c.Msgs[0].Kind = MUpd
	if s.Lines[0].TS != (TS{}) || s.Msgs[0].Kind != MInv {
		t.Error("clone aliases the original")
	}
}

// The heart of the reproduction of §5.2's verification: the Lin protocol is
// safe and deadlock-free across a matrix of bounded instances.
func TestLinVerifiedSmallInstances(t *testing.T) {
	for _, b := range []Bounds{
		{Procs: 2, Addrs: 1, MaxClock: 2},
		{Procs: 2, Addrs: 1, MaxClock: 3},
		{Procs: 2, Addrs: 2, MaxClock: 1},
		{Procs: 3, Addrs: 1, MaxClock: 1},
	} {
		rep, err := Check(Lin, b)
		if err != nil {
			t.Fatalf("%+v: %v", b, err)
		}
		if !rep.OK() {
			t.Errorf("%+v: %s\ntrace: %v", b, rep.Violation, rep.Trace)
		}
		if rep.States < 10 || rep.Quiescent == 0 {
			t.Errorf("%+v: implausible exploration: %+v", b, rep)
		}
		t.Log(rep.String())
	}
}

// Paper-size instance (3 procs, 2-bit timestamps). ~1.8M states; kept out
// of -short runs.
func TestLinVerifiedPaperDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("1.8M-state exhaustive check; run without -short")
	}
	rep, err := Check(Lin, Bounds{Procs: 3, Addrs: 1, MaxClock: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violation: %s\ntrace: %v", rep.Violation, rep.Trace)
	}
	if rep.States < 1_000_000 {
		t.Fatalf("expected deep exploration, got %d states", rep.States)
	}
	t.Log(rep.String())
}

// The SC protocol (one stable state, no transients) has a much smaller
// space and must also verify.
func TestSCVerified(t *testing.T) {
	for _, b := range []Bounds{
		{Procs: 3, Addrs: 1, MaxClock: 2},
		{Procs: 3, Addrs: 2, MaxClock: 1},
		{Procs: 2, Addrs: 2, MaxClock: 3},
	} {
		rep, err := Check(SC, b)
		if err != nil {
			t.Fatalf("%+v: %v", b, err)
		}
		if !rep.OK() {
			t.Errorf("%+v: %s\ntrace: %v", b, rep.Violation, rep.Trace)
		}
	}
}

// Fault injection: dropping the unconditional ack must be caught as a
// deadlock — a pending write that can never gather its acknowledgements.
func TestCheckerCatchesConditionalAckDeadlock(t *testing.T) {
	rep, err := CheckFault(Lin, Bounds{Procs: 2, Addrs: 1, MaxClock: 2}, FaultConditionalAck)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("checker missed the conditional-ack deadlock")
	}
	if !strings.Contains(rep.Violation, "deadlock") {
		t.Fatalf("expected a deadlock violation, got: %s", rep.Violation)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("no counterexample trace")
	}
	t.Logf("counterexample (%d steps): %v", len(rep.Trace), rep.Trace)
}

// Fault injection: applying timestamp-mismatched updates must be caught as
// a data-value violation.
func TestCheckerCatchesMismatchedUpdate(t *testing.T) {
	rep, err := CheckFault(Lin, Bounds{Procs: 3, Addrs: 1, MaxClock: 1}, FaultApplyMismatchedUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("checker missed the mismatched-update bug")
	}
	if !strings.Contains(rep.Violation, "data-value") && !strings.Contains(rep.Violation, "quiescence") {
		t.Fatalf("unexpected violation class: %s", rep.Violation)
	}
	t.Logf("violation: %s", rep.Violation)
}

func TestFaultString(t *testing.T) {
	if FaultNone.String() != "none" || FaultConditionalAck.String() != "conditional-ack" ||
		FaultApplyMismatchedUpdate.String() != "apply-mismatched-update" {
		t.Error("fault names wrong")
	}
}

func TestProtocolString(t *testing.T) {
	if Lin.String() != "Lin" || SC.String() != "SC" {
		t.Error("protocol names wrong")
	}
}

func TestReportString(t *testing.T) {
	rep, err := Check(SC, Bounds{Procs: 2, Addrs: 1, MaxClock: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.String(); !strings.Contains(s, "verified") {
		t.Errorf("report: %s", s)
	}
}

func TestCheckRejectsBadBounds(t *testing.T) {
	if _, err := Check(Lin, Bounds{}); err == nil {
		t.Fatal("zero bounds must be rejected")
	}
}

func BenchmarkCheckLinSmall(b *testing.B) {
	bounds := Bounds{Procs: 3, Addrs: 1, MaxClock: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Check(Lin, bounds); err != nil {
			b.Fatal(err)
		}
	}
}
