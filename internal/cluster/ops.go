package cluster

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/timestamp"
)

// ErrRetriesExhausted is returned when a read stalled on an invalidated
// entry for an implausibly long time — it indicates a protocol bug (the
// matching update never arrived) and exists so tests fail loudly instead of
// hanging.
var ErrRetriesExhausted = errors.New("cluster: read retries exhausted on invalid entry")

// invalidRetryLimit bounds the Read retry loop on Lin-invalidated entries.
const invalidRetryLimit = 10_000_000

// cacheRead probes the symmetric cache, spinning while an entry is
// invalidated by an in-flight Lin write. hit=false reports a clean miss.
func (n *Node) cacheRead(key uint64) (value []byte, hit bool, err error) {
	for attempt := 0; ; attempt++ {
		v, _, err := n.cache.Read(key, nil)
		switch err {
		case nil:
			return v, true, nil
		case core.ErrInvalid:
			// An update is in flight; spin until it lands. The paper's
			// cache threads keep polling their receive queues here; our
			// dispatcher goroutine applies the update concurrently.
			n.InvalidRetries.Add(1)
			if attempt > invalidRetryLimit {
				return nil, false, ErrRetriesExhausted
			}
			yield()
		case core.ErrMiss:
			return nil, false, nil
		default:
			return nil, false, err
		}
	}
}

// Get serves a client read arriving at this node (§6.1, "Reads"): probe the
// symmetric cache; on a miss, access the local shard or issue a remote
// access to the home node.
func (n *Node) Get(key uint64) ([]byte, error) {
	if n.cache != nil {
		v, hit, err := n.cacheRead(key)
		if err != nil {
			return nil, err
		}
		if hit {
			n.CacheHits.Add(1)
			return v, nil
		}
		n.CacheMisses.Add(1)
	}
	home := n.cluster.HomeNode(key)
	if home == int(n.id) {
		n.LocalOps.Add(1)
		v, _, err := n.kvs.Get(key, nil)
		return v, err
	}
	n.RemoteOps.Add(1)
	v, _, err := n.RemoteGet(uint8(home), key)
	return v, err
}

// pendingOp tracks one started remote call of a batch operation.
type pendingOp struct {
	idx int
	ch  chan rpcResult
}

// MultiGet serves a batch of reads in one call: every key is probed in the
// cache (or the local shard) as it is scanned, while misses for remote homes
// are started on the coalescing pipeline immediately and collected at the
// end — the client side of the request coalescing of §6.3. All remote
// accesses of a batch are therefore in flight at once (one round-trip for
// the whole batch, few multi-request packets per home) without spawning any
// goroutines. values[i] is nil when keys[i] is absent; the first hard
// failure is returned after the whole batch settled.
func (n *Node) MultiGet(keys []uint64) ([][]byte, error) {
	out := make([][]byte, len(keys))
	var pend []pendingOp
	for i, key := range keys {
		if n.cache != nil {
			v, hit, err := n.cacheRead(key)
			if err != nil {
				return nil, err
			}
			if hit {
				n.CacheHits.Add(1)
				out[i] = v
				continue
			}
			n.CacheMisses.Add(1)
		}
		home := n.cluster.HomeNode(key)
		if home == int(n.id) {
			n.LocalOps.Add(1)
			v, _, err := n.kvs.Get(key, nil)
			if err == nil {
				out[i] = v
			} else if err != store.ErrNotFound {
				return nil, err
			}
			continue
		}
		n.RemoteOps.Add(1)
		id := n.rpc.newReqID()
		req := appendGetReq(make([]byte, 0, 17), rpcOpGet, id, key)
		pend = append(pend, pendingOp{idx: i, ch: n.rpc.startCall(uint8(home), id, req)})
	}
	var firstErr error
	for _, p := range pend {
		res, err := n.rpc.await(p.ch)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if res.status == rpcStatusOK {
			out[p.idx] = res.value
		}
	}
	return out, firstErr
}

// Put serves a client write arriving at this node (§6.1, "Writes"): a cache
// hit runs the configured consistency protocol; a miss forwards the write
// to the home node.
func (n *Node) Put(key uint64, value []byte) error {
	done, err := n.putCached(key, value)
	if err != nil || done {
		return err
	}
	home := n.cluster.HomeNode(key)
	if home == int(n.id) {
		n.LocalOps.Add(1)
		n.localKVSPut(key, value)
		return nil
	}
	n.RemoteOps.Add(1)
	return n.RemotePut(uint8(home), key, value)
}

// MultiPut serves a batch of writes in one call: hot keys run the
// configured consistency protocol as usual, while cache misses for remote
// homes are started on the coalescing pipeline immediately and their acks
// collected at the end, so the whole batch's forwards overlap. The first
// failure is returned after the batch settled.
func (n *Node) MultiPut(keys []uint64, values [][]byte) error {
	var pend []pendingOp
	for i, key := range keys {
		done, err := n.putCached(key, values[i])
		if err != nil {
			return err
		}
		if done {
			continue
		}
		home := n.cluster.HomeNode(key)
		if home == int(n.id) {
			n.LocalOps.Add(1)
			n.localKVSPut(key, values[i])
			continue
		}
		n.RemoteOps.Add(1)
		id := n.rpc.newReqID()
		req := appendPutReq(make([]byte, 0, 21+len(values[i])), rpcOpPut, id, key, values[i])
		pend = append(pend, pendingOp{idx: i, ch: n.rpc.startCall(uint8(home), id, req)})
	}
	var firstErr error
	for _, p := range pend {
		res, err := n.rpc.await(p.ch)
		if err == nil && res.status != rpcStatusOK {
			err = fmt.Errorf("cluster: remote put failed (status %d)", res.status)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// putCached attempts the write through the symmetric cache under the
// configured protocol. done=false with nil error means the key missed the
// cache (the caller forwards to the home shard); the miss is already
// counted.
func (n *Node) putCached(key uint64, value []byte) (done bool, err error) {
	if n.cache == nil {
		return false, nil
	}
	if n.cluster.cfg.Protocol == core.Lin {
		done, err = n.putLin(key, value)
	} else {
		done, err = n.putSC(key, value)
	}
	if err != nil || done {
		return done, err
	}
	n.CacheMisses.Add(1)
	return false, nil
}

// putSC runs an SC cache write under the configured Figure 4 serialization
// design. done=false with nil error means the key missed the cache.
func (n *Node) putSC(key uint64, value []byte) (bool, error) {
	const coordinator = 0 // primary/sequencer node when selected
	switch n.cluster.cfg.Serialization {
	case SerializationPrimary:
		if !n.cache.Contains(key) {
			return false, nil // putCached counts the miss
		}
		n.CacheHits.Add(1)
		if n.id == coordinator {
			upd, err := n.cache.WriteSC(key, value)
			if err != nil {
				return false, err
			}
			n.broadcastConsistency(metrics.ClassUpdate, upd.Encode(nil))
			return true, nil
		}
		// All writes serialize at the primary (Figure 4a): forward and
		// wait for its ack; the update reaches us via broadcast.
		return true, n.PrimaryWrite(coordinator, key, value)
	case SerializationSequencer:
		if !n.cache.Contains(key) {
			return false, nil // putCached counts the miss
		}
		n.CacheHits.Add(1)
		var ts timestamp.TS
		var err error
		if n.id == coordinator {
			// The sequencer's own writes take the timestamp locally.
			n.seqMu.Lock()
			n.seqClocks[key]++
			ts = timestamp.TS{Clock: n.seqClocks[key], Writer: n.id}
			n.seqMu.Unlock()
		} else if ts, err = n.SeqTS(coordinator, key); err != nil {
			return false, err
		}
		upd, err := n.cache.WriteSCWithTS(key, value, ts)
		if err != nil {
			return false, err
		}
		n.broadcastConsistency(metrics.ClassUpdate, upd.Encode(nil))
		return true, nil
	default:
		upd, err := n.cache.WriteSC(key, value)
		if err == core.ErrMiss {
			return false, nil // putCached counts the miss
		}
		if err != nil {
			return false, err
		}
		n.CacheHits.Add(1)
		// Non-blocking: the local write is already visible; propagate
		// asynchronously to all replicas (§5.2).
		n.broadcastConsistency(metrics.ClassUpdate, upd.Encode(nil))
		return true, nil
	}
}

// putLin runs the blocking two-phase Lin write. done=false with nil error
// means the key missed the cache.
func (n *Node) putLin(key uint64, value []byte) (bool, error) {
	for {
		// Register the waiter first: acks can arrive the moment the
		// invalidations hit the wire. Registration doubles as the
		// node-local write mutex for the key: if a waiter exists, another
		// session's write is in flight.
		ch, ok := n.tryRegisterLinWaiter(key)
		if !ok {
			n.WritePendingRetries.Add(1)
			yield()
			continue
		}
		inv, err := n.cache.WriteLinStart(key, value)
		switch err {
		case nil:
			n.CacheHits.Add(1)
			n.broadcastConsistency(metrics.ClassInvalidate, inv.Encode(nil))
			// Block until the last ack completes the write (§5.2: "writes
			// are synchronous").
			upd := <-ch
			n.broadcastConsistency(metrics.ClassUpdate, upd.Encode(nil))
			return true, nil
		case core.ErrWritePending:
			// Another session on this node is writing the key; wait for
			// it and retry — writes must serialize.
			n.unregisterLinWaiter(key, ch)
			n.WritePendingRetries.Add(1)
			yield()
			continue
		case core.ErrMiss:
			n.unregisterLinWaiter(key, ch)
			return false, nil
		default:
			n.unregisterLinWaiter(key, ch)
			return false, err
		}
	}
}

// unregisterLinWaiter removes a waiter that never armed (write refused).
func (n *Node) unregisterLinWaiter(key uint64, ch chan core.Update) {
	n.waitMu.Lock()
	if n.waiters[key] == ch {
		delete(n.waiters, key)
	}
	n.waitMu.Unlock()
}

// localKVSPut writes a cache-missing key to the local shard with a fresh
// serialization timestamp (a missing key advances from the zero timestamp).
func (n *Node) localKVSPut(key uint64, value []byte) {
	_, ts, _ := n.kvs.Get(key, nil)
	n.kvs.Put(key, value, ts.Next(n.id))
}
