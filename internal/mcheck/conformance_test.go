package mcheck

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/timestamp"
)

// The model checker verifies the *model*; this conformance test ties the
// model to the *implementation*: random schedules are executed step by step
// against both the mcheck state machine and real core.Cache replicas, and
// the externally observable state (entry state, timestamp, pending flag)
// must match after every step. A drift between lin.go and model.go fails
// here.
func TestLinModelMatchesImplementation(t *testing.T) {
	const procs = 3
	b := Bounds{Procs: procs, Addrs: 1, MaxClock: 3}
	const key = uint64(0)

	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))

		// Model side.
		ms := initial(b)
		// Implementation side.
		caches := make([]*core.Cache, procs)
		for i := range caches {
			caches[i] = core.NewCache(uint8(i), procs)
			caches[i].Install([]uint64{key}, func(uint64) ([]byte, timestamp.TS, bool) {
				return []byte{0, 0}, timestamp.TS{}, true
			})
		}
		// In-flight implementation messages mirror ms.Msgs index for index.
		var implMsgs []any

		syncCheck := func(step string) {
			t.Helper()
			for p := 0; p < procs; p++ {
				l := ms.line(b, p, 0)
				st, ts, ok := caches[p].EntryState(key)
				if !ok {
					t.Fatalf("trial %d %s: impl lost the key", trial, step)
				}
				if uint8(st) != l.St {
					t.Fatalf("trial %d %s: p%d state impl=%v model=%d", trial, step, p, st, l.St)
				}
				if ts.Clock != uint32(l.TS.C) || ts.Writer != l.TS.W {
					t.Fatalf("trial %d %s: p%d ts impl=%v model=%d.%d", trial, step, p, ts, l.TS.C, l.TS.W)
				}
				if caches[p].PendingWrite(key) != l.Pend {
					t.Fatalf("trial %d %s: p%d pend impl=%v model=%v",
						trial, step, p, caches[p].PendingWrite(key), l.Pend)
				}
			}
		}

		for step := 0; step < 120; step++ {
			// Pick: start a write at a random proc, or deliver a random
			// in-flight message — keeping model and impl in lockstep.
			if len(ms.Msgs) == 0 || rng.Intn(3) == 0 {
				p := rng.Intn(procs)
				next := ms.clone()
				if !startWriteLin(b, &next, p, 0) {
					continue
				}
				inv, err := caches[p].WriteLinStart(key, []byte{next.line(b, p, 0).PTS.C, next.line(b, p, 0).PTS.W})
				if err == core.ErrWritePending {
					t.Fatalf("trial %d: impl refused a write the model allowed", trial)
				}
				if err != nil {
					t.Fatal(err)
				}
				ms = next
				for q := 0; q < procs; q++ {
					if q != p {
						implMsgs = append(implMsgs, inv)
					}
				}
				if len(implMsgs) != len(ms.Msgs) {
					t.Fatalf("trial %d: message count drift %d vs %d", trial, len(implMsgs), len(ms.Msgs))
				}
				syncCheck("write")
				continue
			}
			i := rng.Intn(len(ms.Msgs))
			m := ms.Msgs[i]
			next := ms.clone()
			deliverLin(b, &next, i, FaultNone)

			// Mirror onto the implementation. The model's removeMsg swaps
			// with the tail; replicate exactly.
			impl := implMsgs[i]
			implMsgs[i] = implMsgs[len(implMsgs)-1]
			implMsgs = implMsgs[:len(implMsgs)-1]
			switch m.Kind {
			case MInv:
				inv := impl.(core.Invalidation)
				ack, _ := caches[m.To].ApplyInvalidation(inv)
				implMsgs = append(implMsgs, ack)
			case MAck:
				ack := impl.(core.Ack)
				if upd, done := caches[m.To].ApplyAck(ack); done {
					for q := 0; q < procs; q++ {
						if q != int(m.To) {
							implMsgs = append(implMsgs, upd)
						}
					}
				}
			case MUpd:
				upd := impl.(core.Update)
				caches[m.To].ApplyUpdateLin(upd)
			}
			ms = next
			if len(implMsgs) != len(ms.Msgs) {
				t.Fatalf("trial %d: message count drift after deliver: %d vs %d",
					trial, len(implMsgs), len(ms.Msgs))
			}
			syncCheck("deliver")
		}

		// Drain everything and require convergence on both sides.
		for len(ms.Msgs) > 0 {
			i := len(ms.Msgs) - 1
			m := ms.Msgs[i]
			next := ms.clone()
			deliverLin(b, &next, i, FaultNone)
			impl := implMsgs[i]
			implMsgs = implMsgs[:i]
			switch m.Kind {
			case MInv:
				ack, _ := caches[m.To].ApplyInvalidation(impl.(core.Invalidation))
				implMsgs = append(implMsgs, ack)
			case MAck:
				if upd, done := caches[m.To].ApplyAck(impl.(core.Ack)); done {
					for q := 0; q < procs; q++ {
						if q != int(m.To) {
							implMsgs = append(implMsgs, upd)
						}
					}
				}
			case MUpd:
				caches[m.To].ApplyUpdateLin(impl.(core.Update))
			}
			ms = next
			syncCheck("drain")
		}
		// Model quiescence check must pass on the final state.
		if v := checkQuiescent(b, &ms); v != "" {
			t.Fatalf("trial %d: %s", trial, v)
		}
	}
}

// The model's value identity (Val == TS of the producing write) must hold
// for the implementation too: after a drained run, every replica's value
// bytes encode the entry timestamp.
func TestImplementationDataValueInvariant(t *testing.T) {
	const procs = 3
	const key = uint64(0)
	rng := rand.New(rand.NewSource(99))
	caches := make([]*core.Cache, procs)
	for i := range caches {
		caches[i] = core.NewCache(uint8(i), procs)
		caches[i].Install([]uint64{key}, func(uint64) ([]byte, timestamp.TS, bool) {
			return []byte{0, 0}, timestamp.TS{}, true
		})
	}
	var msgs []any
	tos := []int{}
	push := func(m any, to int) { msgs = append(msgs, m); tos = append(tos, to) }
	pop := func(i int) (any, int) {
		m, to := msgs[i], tos[i]
		msgs[i] = msgs[len(msgs)-1]
		msgs = msgs[:len(msgs)-1]
		tos[i] = tos[len(tos)-1]
		tos = tos[:len(tos)-1]
		return m, to
	}

	writes := 0
	for steps := 0; steps < 4000 && (writes < 30 || len(msgs) > 0); steps++ {
		if writes < 30 && (len(msgs) == 0 || rng.Intn(4) == 0) {
			p := rng.Intn(procs)
			_, curTS, _ := caches[p].EntryState(key)
			val := []byte{byte(curTS.Clock + 1), byte(p)}
			inv, err := caches[p].WriteLinStart(key, val)
			if err != nil {
				continue
			}
			writes++
			for q := 0; q < procs; q++ {
				if q != p {
					push(inv, q)
				}
			}
			continue
		}
		i := rng.Intn(len(msgs))
		m, to := pop(i)
		switch mm := m.(type) {
		case core.Invalidation:
			ack, _ := caches[to].ApplyInvalidation(mm)
			push(ack, int(mm.From))
		case core.Ack:
			if upd, done := caches[to].ApplyAck(mm); done {
				for q := 0; q < procs; q++ {
					if q != to {
						push(upd, q)
					}
				}
			}
		case core.Update:
			caches[to].ApplyUpdateLin(mm)
		}
	}
	if len(msgs) != 0 {
		t.Fatalf("messages never drained: %d", len(msgs))
	}
	for p := 0; p < procs; p++ {
		st, ts, _ := caches[p].EntryState(key)
		if st != core.StateValid {
			t.Fatalf("p%d not Valid at quiescence: %v", p, st)
		}
		v, _, err := caches[p].Read(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ts.Clock != 0 && (v[0] != byte(ts.Clock) || v[1] != ts.Writer) {
			t.Fatalf("p%d data-value violated: value %v does not encode ts %v", p, v, ts)
		}
	}
}
