package fabric

import (
	"testing"
	"time"
)

// sumAvail totals the available credits across peers.
func sumAvail(c *Credits, peers ...Addr) int {
	n := 0
	for _, p := range peers {
		n += c.Available(p)
	}
	return n
}

// Removing a peer mid-flight must conserve the surviving budgets exactly:
// credits outstanding toward the dropped peer are destroyed with its budget,
// never credited to another peer, and the dropped budget cannot be
// resurrected by straggler grants.
func TestCreditsDropConservesBudgets(t *testing.T) {
	c := NewCredits()
	a := Addr{Node: 1, Thread: 2}
	b := Addr{Node: 2, Thread: 2}
	c.SetBudget(a, 4)
	c.SetBudget(b, 4)

	// Two packets in flight toward a, one toward b.
	for i := 0; i < 2; i++ {
		if !c.Acquire(a) {
			t.Fatal("acquire on a live budget failed")
		}
	}
	if !c.Acquire(b) {
		t.Fatal("acquire on a live budget failed")
	}
	if got := sumAvail(c, a, b); got != 5 {
		t.Fatalf("pre-flip avail sum = %d, want 5", got)
	}

	// View flip: a's node dies with 2 credits outstanding.
	if out := c.Drop(a); out != 2 {
		t.Fatalf("Drop reported %d outstanding, want 2", out)
	}
	// b's budget is untouched — nothing leaked out of a's accounting into it.
	if got := c.Available(b); got != 3 {
		t.Fatalf("survivor budget = %d, want 3", got)
	}
	if got := c.Available(a); got != 0 {
		t.Fatalf("dropped budget = %d, want 0", got)
	}

	// A straggler response (implicit credit update) for the dropped peer is
	// discarded, not leaked.
	c.Grant(a, 2)
	if got := c.Available(a); got != 0 {
		t.Fatalf("grant resurrected a dropped budget: %d", got)
	}
	// The survivor's response restores its credit, capped at its own max.
	c.Grant(b, 1)
	c.Grant(b, 100)
	if got := c.Available(b); got != 4 {
		t.Fatalf("survivor budget after grants = %d, want 4 (capped)", got)
	}

	// Rejoin re-arms the peer with a fresh budget.
	c.SetBudget(a, 4)
	if !c.Acquire(a) || c.Available(a) != 3 {
		t.Fatalf("rejoined budget unusable (avail %d)", c.Available(a))
	}
	if got := sumAvail(c, a, b); got != 7 {
		t.Fatalf("post-rejoin avail sum = %d, want 7", got)
	}
}

// A sender blocked on an exhausted budget must wake — with Acquire
// reporting failure — when the peer is dropped, instead of waiting forever
// for a credit update a dead peer can never send.
func TestCreditsDropReleasesBlockedAcquirer(t *testing.T) {
	c := NewCredits()
	peer := Addr{Node: 3, Thread: 5}
	c.SetBudget(peer, 1)
	if !c.Acquire(peer) {
		t.Fatal("drain failed")
	}
	got := make(chan bool, 1)
	go func() { got <- c.Acquire(peer) }()
	select {
	case ok := <-got:
		t.Fatalf("Acquire returned %v before the drop", ok)
	case <-time.After(20 * time.Millisecond):
	}
	c.Drop(peer)
	select {
	case ok := <-got:
		if ok {
			t.Fatal("Acquire succeeded against a dropped budget")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked acquirer never released by Drop")
	}
	// Subsequent acquires fail fast.
	if c.Acquire(peer) {
		t.Fatal("Acquire succeeded on a dropped peer")
	}
}

// TryAcquire must also refuse dropped peers without blocking.
func TestCreditsTryAcquireAfterDrop(t *testing.T) {
	c := NewCredits()
	peer := Addr{Node: 9, Thread: 1}
	c.SetBudget(peer, 2)
	if !c.TryAcquire(peer) {
		t.Fatal("TryAcquire on live budget failed")
	}
	c.Drop(peer)
	if c.TryAcquire(peer) {
		t.Fatal("TryAcquire succeeded on dropped peer")
	}
}
