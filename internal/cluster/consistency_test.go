package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// The packets-per-write half of the Figure 11 argument: N concurrent Lin
// writes steered through one worker must generate EXACTLY N*(nodes-1)
// invalidation, ack and update messages (the protocol's fan-out is fixed),
// but measurably fewer consistency packets — the coalescing plane packs
// concurrent messages sharing a lane into multi-message packets, so the
// per-packet costs (credit acquire, send, receive) amortize while the
// message counts the traffic table reports stay exact.
func TestWriteFanoutCoalescesPackets(t *testing.T) {
	const (
		nodes   = 3
		writers = 16
		perKey  = 25
	)
	c := newTestCluster(t, Config{
		Nodes: nodes, System: CCKVS, Protocol: core.Lin,
		NumKeys: 1000, CacheItems: 64, WorkersPerNode: 1,
	})
	// One writer goroutine per key, all keys hot and all — WorkersPerNode=1 —
	// owned by the same worker, so every message rides that worker's lanes.
	// Distinct keys keep the counts exact: no write ever conflicts, so no
	// retry can broadcast twice.
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := uint64(g)
			for i := 0; i < perKey; i++ {
				if err := c.Node(0).Put(key, bytes.Repeat([]byte{byte(g<<4 | i&0xF)}, 40)); err != nil {
					errs <- fmt.Errorf("writer %d put %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Exactly N writes * (nodes-1) peers messages per class. Invalidations
	// and acks complete before each Put returns; the update broadcast is
	// asynchronous (enqueued, then Put returns), so poll it to quiescence.
	const want = uint64(writers * perKey * (nodes - 1))
	tr := c.FabricStats().Traffic
	deadline := time.Now().Add(5 * time.Second)
	for tr.Packets(metrics.ClassUpdate) < want {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, cl := range []metrics.MsgClass{metrics.ClassInvalidate, metrics.ClassAck, metrics.ClassUpdate} {
		if got := tr.Packets(cl); got != want {
			t.Fatalf("%v messages = %d, want exactly %d (N writes * (nodes-1))", cl, got, want)
		}
	}

	// The whole point: far fewer packets than messages. ConMsgs/ConPackets
	// aggregates every coalesced consistency packet actually sent.
	var pkts, msgs uint64
	for i := 0; i < nodes; i++ {
		pkts += c.Node(i).ConPackets.Load()
		msgs += c.Node(i).ConMsgs.Load()
	}
	if pkts == 0 || msgs == 0 {
		t.Fatalf("no coalesced consistency traffic recorded (pkts=%d msgs=%d)", pkts, msgs)
	}
	factor := float64(msgs) / float64(pkts)
	if factor < 1.5 {
		t.Fatalf("consistency coalescing factor %.2f msgs/pkt (msgs=%d pkts=%d); concurrent fan-out must coalesce",
			factor, msgs, pkts)
	}
	// The per-class histogram agrees (it records span sizes per packet).
	co := c.FabricStats().Coalesce
	if co.Hist(metrics.ClassInvalidate).Count() == 0 {
		t.Fatal("coalescing histogram recorded no invalidation packets")
	}
	t.Logf("fan-out coalescing: %.2f msgs/pkt overall (%s)", factor, co)
}

// Per-key ordering under coalesced flushes and a mid-flight view flip: one
// writer per key drives monotonically increasing sequence values through
// both survivors while node 2 is manually excised and re-admitted; readers
// on every live member must never observe a key's sequence go backwards.
// Under -race this also shakes out data races between the lane senders, the
// budget drop in the view change, and the rejoin's budget restore.
func TestConsistencyOrderingAcrossViewFlip(t *testing.T) {
	const down = 2
	cfg := Config{
		Nodes: 3, System: CCKVS, Protocol: core.Lin,
		// ValueSize 16: seed values must not decode as 8-byte sequences.
		NumKeys: 1024, CacheItems: 16, ValueSize: 16, WorkersPerNode: 1,
	}
	members := newChanMembers(t, cfg)
	hot := DefaultHotSet(cfg.CacheItems)
	if _, err := members[0].ApplyHotSet(0, hot); err != nil {
		t.Fatal(err)
	}
	keys := hot[:6]
	survivors := []*Cluster{members[0], members[1]}

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	// Writers: per-key sequences through a fixed survivor (Lin writes to the
	// same key from one node serialize, so the sequence is the write order).
	for ki, k := range keys {
		wg.Add(1)
		go func(ki int, key uint64) {
			defer wg.Done()
			n := survivors[ki%len(survivors)].LocalNode()
			for seq := uint64(1); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := n.Put(key, encodeChaosSeq(seq)); err != nil {
					fail(fmt.Errorf("writer key %d seq %d: %w", key, seq, err))
					return
				}
			}
		}(ki, k)
	}
	// Readers: per-member monotonicity. A coalesced update applied after a
	// newer invalidation+update pair (an ordering bug in the lane or the
	// flush) would show up as a sequence moving backwards.
	for _, m := range survivors {
		wg.Add(1)
		go func(m *Cluster) {
			defer wg.Done()
			last := make(map[uint64]uint64, len(keys))
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, k := range keys {
					v, err := m.LocalNode().Get(k)
					if err != nil {
						fail(fmt.Errorf("reader member %d key %d: %w", m.self, k, err))
						return
					}
					if seq, ok := decodeChaosSeq(v); ok {
						if seq < last[k] {
							fail(fmt.Errorf("STALE READ member %d key %d: seq %d after %d", m.self, k, seq, last[k]))
							return
						}
						last[k] = seq
					}
				}
			}
		}(m)
	}

	// Flip the view mid-flight, twice: the excision drops node 2's budgets
	// while its lanes hold queued batches (they are discarded at the credit
	// acquire), the rejoin restores budgets under live enqueue traffic.
	for round := 0; round < 2; round++ {
		time.Sleep(50 * time.Millisecond)
		members[0].PeerDown(down, fmt.Errorf("flip %d", round))
		waitViewDown(t, survivors, down, 5*time.Second)
		time.Sleep(50 * time.Millisecond)
		members[0].PeerUp(down)
		members[1].PeerUp(down)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// After quiescence every member (including the re-admitted one) agrees
	// on every key.
	deadline := time.Now().Add(5 * time.Second)
	for _, k := range keys {
		for {
			v0, err := members[0].LocalNode().Get(k)
			if err != nil {
				t.Fatal(err)
			}
			agree := true
			for _, m := range members[1:] {
				v, err := m.LocalNode().Get(k)
				if err != nil || !bytes.Equal(v, v0) {
					agree = false
				}
			}
			if agree {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %d never converged after view flips", k)
			}
			time.Sleep(time.Millisecond)
		}
	}
}
