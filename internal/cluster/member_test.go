package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/store"
)

// Member-form deployments: the same protocol stack, but each node built as
// its own Cluster view over a shared transport — the in-process twin of the
// multi-process cckvs-node deployment. Everything the full in-process
// cluster can do (remote accesses, Lin/SC consistency, online hot-set
// reconfiguration) must work when no member can see any other member's
// memory.

// newChanMembers builds one member per node over a single shared
// ChanTransport and populates every shard.
func newChanMembers(t *testing.T, cfg Config) []*Cluster {
	t.Helper()
	stats := fabric.NewStats()
	tr := fabric.NewChanTransport(cfg.QueueDepth, stats)
	members := make([]*Cluster, cfg.Nodes)
	for i := range members {
		m, err := NewMember(cfg, i, tr, stats)
		if err != nil {
			t.Fatal(err)
		}
		m.Populate()
		members[i] = m
	}
	t.Cleanup(func() {
		for _, m := range members {
			m.Close() // the shared transport closes with the first member
		}
	})
	return members
}

func TestMemberPopulateCoversEveryShardOnce(t *testing.T) {
	cfg := Config{Nodes: 3, System: Base, NumKeys: 512}
	members := newChanMembers(t, cfg)
	for k := uint64(0); k < cfg.NumKeys; k++ {
		holders := 0
		for _, m := range members {
			if n := m.LocalNode(); n != nil {
				if _, _, err := n.kvs.Get(k, nil); err == nil {
					holders++
				}
			}
		}
		if holders != 1 {
			t.Fatalf("key %d present on %d shards, want exactly 1", k, holders)
		}
	}
}

func TestMemberRemoteAccessAndProtocols(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			cfg := Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 2048, CacheItems: 32, ValueSize: 24,
			}
			members := newChanMembers(t, cfg)

			// Bootstrap the hot set from member 0, entirely over the fabric.
			hot := DefaultHotSet(cfg.CacheItems)
			st, err := members[0].ApplyHotSet(0, hot)
			if err != nil {
				t.Fatal(err)
			}
			if st.Promoted != cfg.CacheItems {
				t.Fatalf("promoted %d keys, want %d", st.Promoted, cfg.CacheItems)
			}
			for i, m := range members {
				if got := len(m.HotKeys()); got != cfg.CacheItems {
					t.Fatalf("member %d caches %d keys, want %d", i, got, cfg.CacheItems)
				}
			}

			// A hot write through one member must become visible to reads at
			// every other member (SC propagates asynchronously; poll).
			want := bytes.Repeat([]byte{0x42}, 24)
			if err := members[1].LocalNode().Put(hot[3], want); err != nil {
				t.Fatal(err)
			}
			for i, m := range members {
				waitForValue(t, fmt.Sprintf("member %d", i), want, func() ([]byte, error) {
					return m.LocalNode().Get(hot[3])
				})
			}

			// A cold key homed on a remote member crosses the fabric.
			cold := coldKeyHomedOn(t, members[0], 2, cfg.NumKeys)
			want2 := []byte("cold-value")
			if err := members[0].LocalNode().Put(cold, want2); err != nil {
				t.Fatal(err)
			}
			got, err := members[1].LocalNode().Get(cold)
			if err != nil || !bytes.Equal(got, want2) {
				t.Fatalf("cold read via member 1: %q, %v", got, err)
			}

			// Online epoch change driven from a *different* member: shift the
			// hot window; caches stay symmetric.
			shifted := make([]uint64, cfg.CacheItems)
			for i := range shifted {
				shifted[i] = uint64(cfg.CacheItems/2 + i)
			}
			if _, err := members[2].ApplyHotSet(2, shifted); err != nil {
				t.Fatal(err)
			}
			for i, m := range members {
				if !m.LocalNode().cache.Contains(shifted[len(shifted)-1]) {
					t.Fatalf("member %d missing promoted key after shift", i)
				}
				if m.LocalNode().cache.Contains(hot[0]) {
					t.Fatalf("member %d still caches demoted key", i)
				}
			}
		})
	}
}

// waitForValue polls read until it returns want (asynchronous SC update
// propagation) or a deadline.
func waitForValue(t *testing.T, who string, want []byte, read func() ([]byte, error)) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := read()
		if err == nil && bytes.Equal(got, want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: value never converged: got %q err %v", who, got, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// coldKeyHomedOn finds a key outside the default hot set homed on node.
func coldKeyHomedOn(t *testing.T, c *Cluster, node int, numKeys uint64) uint64 {
	t.Helper()
	for k := numKeys / 2; k < numKeys; k++ {
		if c.HomeNode(k) == node {
			return k
		}
	}
	t.Fatal("no cold key homed on node")
	return 0
}

// A member cannot drive a reconfiguration through a node it does not hold.
func TestMemberRejectsRemoteVia(t *testing.T) {
	cfg := Config{Nodes: 3, System: CCKVS, Protocol: core.SC, NumKeys: 256, CacheItems: 8}
	members := newChanMembers(t, cfg)
	if _, err := members[1].ApplyHotSet(0, DefaultHotSet(8)); err == nil {
		t.Fatal("ApplyHotSet via a remote node succeeded, want error")
	}
}

// The session layer end to end over a shared transport: an external client
// (its own fabric id, no access to any member's memory) drives the full
// protocol, triggers an online refresh, and reads node counters.
func TestSessionClientDrivesMemberDeployment(t *testing.T) {
	cfg := Config{
		Nodes: 3, System: CCKVS, Protocol: core.Lin,
		NumKeys: 2048, CacheItems: 16, ValueSize: 16,
	}
	members := newChanMembers(t, cfg)
	cl := NewClient(200, cfg.Nodes, members[0].transport)
	t.Cleanup(func() { cl.Close() })

	if err := cl.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p, _, err := cl.Refresh(0, DefaultHotSet(cfg.CacheItems)); err != nil || p != cfg.CacheItems {
		t.Fatalf("refresh: promoted=%d err=%v", p, err)
	}

	// Writes through one node's session read back through every node. Lin
	// writes are synchronous, so the new value is globally visible at return.
	want := []byte("session-value")
	if err := cl.Put(1, 5, want); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < cfg.Nodes; node++ {
		got, err := cl.Get(node, 5)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("get via node %d: %q, %v", node, got, err)
		}
	}
	if _, err := cl.Get(0, cfg.NumKeys+99); err != store.ErrNotFound {
		t.Fatalf("absent key: err=%v, want store.ErrNotFound", err)
	}

	// The hot reads above hit the symmetric caches; stats must show it.
	var hits uint64
	for node := 0; node < cfg.Nodes; node++ {
		st, err := cl.Stats(node)
		if err != nil {
			t.Fatal(err)
		}
		if st.HotKeys != uint64(cfg.CacheItems) {
			t.Fatalf("node %d reports %d hot keys, want %d", node, st.HotKeys, cfg.CacheItems)
		}
		hits += st.CacheHits
	}
	if hits == 0 {
		t.Fatal("no cache hits recorded across the deployment")
	}

	// An online refresh through the session layer, then traffic continues.
	shifted := make([]uint64, cfg.CacheItems)
	for i := range shifted {
		shifted[i] = uint64(8 + i)
	}
	if _, _, err := cl.Refresh(2, shifted); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(0, shifted[0], []byte("after-refresh")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(2, shifted[0])
	if err != nil || !bytes.Equal(got, []byte("after-refresh")) {
		t.Fatalf("post-refresh read: %q, %v", got, err)
	}
}
