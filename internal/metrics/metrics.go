// Package metrics provides the measurement primitives used by the ccKVS
// reproduction: sharded counters for hot-path statistics, log-bucketed
// latency histograms with percentile queries (Figure 13c), and per-message
// class network traffic accounting (Figure 11).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter safe for concurrent use.
// It is padded to a cache line: counters are laid out adjacently in hot
// structs (cluster.Node, fabric.Stats), and without the padding every
// increment invalidates its neighbours' lines on other cores — measurable
// false sharing once a node runs many workers.
type Counter struct {
	v atomic.Uint64
	_ [cacheLineSize - 8]byte
}

// cacheLineSize is the coherence granularity the padding targets (64 B on
// every platform this runs on; ARM big cores use 128 B but 64 B still
// removes same-word sharing).
const cacheLineSize = 64

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter and returns the previous value.
func (c *Counter) Reset() uint64 { return c.v.Swap(0) }

// Histogram is a fixed-layout latency histogram with logarithmically sized
// buckets. It records values in nanoseconds (or any other unit; percentiles
// come back in the same unit). Recording is lock-free. The three hot
// atomics every Record touches (count, sum, max) each sit on their own
// cache line so concurrent recorders do not false-share them.
type Histogram struct {
	count   Counter
	sum     Counter
	max     atomic.Uint64
	_       [cacheLineSize - 8]byte
	buckets []atomic.Uint64
}

// numBuckets covers values up to ~2^48 with ~4% relative resolution:
// 48 octaves x 16 sub-buckets.
const (
	histOctaves = 48
	histSub     = 16
	numBuckets  = histOctaves * histSub
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Uint64, numBuckets)}
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := 63 - leadingZeros(v)
	sub := (v >> (uint(exp) - 4)) & (histSub - 1)
	idx := (exp-3)*histSub + int(sub)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

func leadingZeros(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// bucketMid returns a representative value for bucket idx (its lower bound).
func bucketMid(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	exp := idx/histSub + 3
	sub := idx % histSub
	return (1 << uint(exp)) | uint64(sub)<<(uint(exp)-4)
}

// Record adds a single observation.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Max returns the largest recorded observation.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Percentile returns the value at quantile q in [0, 1], e.g. 0.95 for the
// 95th percentile reported in Figure 13c.
func (h *Histogram) Percentile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketMid(i)
		}
	}
	return h.max.Load()
}

// Snapshot returns a point-in-time copy usable without further
// synchronization.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(0.50),
		P95:   h.Percentile(0.95),
		P99:   h.Percentile(0.99),
		Max:   h.Max(),
	}
}

// HistSnapshot is a summarized histogram.
type HistSnapshot struct {
	Count         uint64
	Mean          float64
	P50, P95, P99 uint64
	Max           uint64
}

// String renders the snapshot compactly.
func (s HistSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// MsgClass labels the message classes whose bandwidth shares Figure 11
// breaks down.
type MsgClass int

// Message classes in the order the paper's Figure 11 stacks them.
const (
	ClassCacheMiss   MsgClass = iota // remote KVS requests + responses
	ClassUpdate                      // SC/Lin value broadcasts
	ClassInvalidate                  // Lin invalidations
	ClassAck                         // Lin acknowledgements
	ClassFlowControl                 // explicit credit updates
	numClasses
)

// String returns the class label used in tables.
func (c MsgClass) String() string {
	switch c {
	case ClassCacheMiss:
		return "cache misses"
	case ClassUpdate:
		return "updates"
	case ClassInvalidate:
		return "invalidates"
	case ClassAck:
		return "acks"
	case ClassFlowControl:
		return "flow control"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classes lists all message classes in display order.
func Classes() []MsgClass {
	return []MsgClass{ClassCacheMiss, ClassUpdate, ClassInvalidate, ClassAck, ClassFlowControl}
}

// Traffic accumulates bytes and packets per message class. All methods are
// safe for concurrent use.
type Traffic struct {
	bytes   [numClasses]atomic.Uint64
	packets [numClasses]atomic.Uint64
}

// NewTraffic returns an empty traffic accountant.
func NewTraffic() *Traffic { return &Traffic{} }

// Add records a message of the given class.
func (t *Traffic) Add(c MsgClass, bytes uint64) {
	t.bytes[c].Add(bytes)
	t.packets[c].Add(1)
}

// AddN records n messages totalling the given bytes.
func (t *Traffic) AddN(c MsgClass, packets, bytes uint64) {
	t.bytes[c].Add(bytes)
	t.packets[c].Add(packets)
}

// Bytes returns the bytes recorded for a class.
func (t *Traffic) Bytes(c MsgClass) uint64 { return t.bytes[c].Load() }

// Packets returns the packets recorded for a class.
func (t *Traffic) Packets(c MsgClass) uint64 { return t.packets[c].Load() }

// TotalBytes sums bytes across all classes.
func (t *Traffic) TotalBytes() uint64 {
	var s uint64
	for i := range t.bytes {
		s += t.bytes[i].Load()
	}
	return s
}

// Shares returns each class's fraction of total bytes, in Classes() order.
// It is the quantity plotted in Figure 11.
func (t *Traffic) Shares() map[MsgClass]float64 {
	total := t.TotalBytes()
	out := make(map[MsgClass]float64, numClasses)
	for _, c := range Classes() {
		if total == 0 {
			out[c] = 0
		} else {
			out[c] = float64(t.bytes[c].Load()) / float64(total)
		}
	}
	return out
}

// String renders the traffic shares as a one-line breakdown.
func (t *Traffic) String() string {
	shares := t.Shares()
	parts := make([]string, 0, numClasses)
	for _, c := range Classes() {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", c, shares[c]*100))
	}
	return strings.Join(parts, ", ")
}

// Coalescing tracks how many messages of each class ride in each sent
// packet — the achieved coalescing factor of the multi-message fan-out path
// (§6.3: header-only invalidations and acks dominate message count under
// write-heavy skew, so packing several per packet is where the fan-out
// savings come from). One histogram per class; a mean near 1 means the lane
// was idle and every message flushed alone (doorbell mode), a mean well
// above 1 means batching engaged under load.
type Coalescing struct {
	hists [numClasses]*Histogram
}

// NewCoalescing returns an empty coalescing tracker.
func NewCoalescing() *Coalescing {
	c := &Coalescing{}
	for i := range c.hists {
		c.hists[i] = NewHistogram()
	}
	return c
}

// Record notes that msgs messages of class c travelled in one packet.
func (c *Coalescing) Record(cl MsgClass, msgs uint64) {
	c.hists[cl].Record(msgs)
}

// Hist returns the messages-per-packet histogram for a class.
func (c *Coalescing) Hist(cl MsgClass) *Histogram { return c.hists[cl] }

// Factor returns the mean messages per packet for a class (0 when no packet
// of that class was sent).
func (c *Coalescing) Factor(cl MsgClass) float64 { return c.hists[cl].Mean() }

// String renders the nonzero per-class coalescing factors.
func (c *Coalescing) String() string {
	parts := make([]string, 0, numClasses)
	for _, cl := range Classes() {
		if h := c.hists[cl]; h.Count() > 0 {
			parts = append(parts, fmt.Sprintf("%s %.2f msgs/pkt", cl, h.Mean()))
		}
	}
	if len(parts) == 0 {
		return "no coalesced packets"
	}
	return strings.Join(parts, ", ")
}

// Registry is a small named-counter registry for ad-hoc instrumentation of
// subsystems (used by the fabric and cluster packages for busy-wait and
// batching statistics, mirroring the paper's §8.4 methodology).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{counters: map[string]*Counter{}} }

// Counter returns (creating if needed) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Dump returns all counters sorted by name, for test assertions and debug
// output.
func (r *Registry) Dump() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s=%d", n, r.counters[n].Load())
	}
	return out
}
