package fabric

import (
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// newTCPPair starts two TCP transports on loopback and wires them together.
func newTCPPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	a, err := NewTCPTransport(0, "127.0.0.1:0", NewStats())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPTransport(1, "127.0.0.1:0", NewStats())
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.AddPeer(1, b.ListenAddr())
	b.AddPeer(0, a.ListenAddr())
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := newTCPPair(t)

	got := make(chan Packet, 1)
	b.Register(Addr{Node: 1, Thread: 3}, func(p Packet) { got <- p })

	p := Packet{
		Src:   Addr{Node: 0, Thread: 2},
		Dst:   Addr{Node: 1, Thread: 3},
		Class: metrics.ClassUpdate,
		Data:  []byte("over tcp"),
	}
	if err := a.Send(p); err != nil {
		t.Fatal(err)
	}
	select {
	case rp := <-got:
		if string(rp.Data) != "over tcp" {
			t.Fatalf("data = %q", rp.Data)
		}
		if rp.Src != p.Src || rp.Dst != p.Dst || rp.Class != p.Class {
			t.Fatalf("envelope mangled: %+v", rp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("packet never arrived")
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := newTCPPair(t)
	fromA := make(chan struct{}, 1)
	fromB := make(chan struct{}, 1)
	a.Register(Addr{Node: 0}, func(Packet) { fromB <- struct{}{} })
	b.Register(Addr{Node: 1}, func(Packet) { fromA <- struct{}{} })

	if err := a.Send(Packet{Src: Addr{Node: 0}, Dst: Addr{Node: 1}, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(Packet{Src: Addr{Node: 1}, Dst: Addr{Node: 0}, Data: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	for i, ch := range []chan struct{}{fromA, fromB} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("direction %d starved", i)
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send(Packet{Dst: Addr{Node: 42}}); err == nil {
		t.Fatal("send to unknown peer must error")
	}
}

func TestTCPUnknownThreadDropped(t *testing.T) {
	a, b := newTCPPair(t)
	got := make(chan Packet, 1)
	b.Register(Addr{Node: 1, Thread: 0}, func(p Packet) { got <- p })
	// Thread 9 is not registered: frame is read and silently dropped.
	if err := a.Send(Packet{Src: Addr{Node: 0}, Dst: Addr{Node: 1, Thread: 9}, Data: []byte("z")}); err != nil {
		t.Fatal(err)
	}
	// A follow-up to a registered thread still arrives (stream intact).
	if err := a.Send(Packet{Src: Addr{Node: 0}, Dst: Addr{Node: 1, Thread: 0}, Data: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p.Data) != "ok" {
			t.Fatalf("data = %q", p.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream broken after dropped frame")
	}
}

func TestTCPManyMessagesInOrderPerConnection(t *testing.T) {
	a, b := newTCPPair(t)
	var mu sync.Mutex
	var seq []byte
	done := make(chan struct{})
	b.Register(Addr{Node: 1}, func(p Packet) {
		mu.Lock()
		seq = append(seq, p.Data[0])
		n := len(seq)
		mu.Unlock()
		if n == 100 {
			close(done)
		}
	})
	for i := 0; i < 100; i++ {
		if err := a.Send(Packet{Src: Addr{Node: 0}, Dst: Addr{Node: 1}, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/100 arrived", len(seq))
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range seq {
		if int(v) != i {
			t.Fatalf("reordered at %d: %d", i, v)
		}
	}
}

// The peer-down handler must fire when an established peer's transport goes
// away — and must NOT fire on local Close.
func TestTCPPeerDownHandlerFiresOnPeerClose(t *testing.T) {
	a, b := newTCPPair(t)
	down := make(chan uint8, 4)
	a.SetPeerDownHandler(func(node uint8, cause error) {
		if cause == nil {
			t.Error("peer-down fired with nil cause")
		}
		down <- node
	})
	b.Register(Addr{Node: 1}, func(Packet) {})
	// Establish the route a→b.
	if err := a.Send(Packet{Src: Addr{Node: 0}, Dst: Addr{Node: 1}, Data: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	select {
	case node := <-down:
		if node != 1 {
			t.Fatalf("peer-down for node %d, want 1", node)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer-down handler never fired")
	}
}

func TestTCPPeerDownHandlerSilentOnLocalClose(t *testing.T) {
	a, b := newTCPPair(t)
	fired := make(chan uint8, 4)
	a.SetPeerDownHandler(func(node uint8, _ error) { fired <- node })
	b.Register(Addr{Node: 1}, func(Packet) {})
	if err := a.Send(Packet{Src: Addr{Node: 0}, Dst: Addr{Node: 1}, Data: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	select {
	case node := <-fired:
		t.Fatalf("peer-down fired for node %d on local close", node)
	case <-time.After(200 * time.Millisecond):
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, _ := newTCPPair(t)
	a.Close()
	if err := a.Send(Packet{Dst: Addr{Node: 1}}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// A vectored payload (Packet.Segs) must reach the peer as the in-order
// concatenation of its segments without ever being flattened into an
// intermediate buffer: the zero-copy value path's wire contract. The
// VectoredBytes/FlattenedBytes counters are the proof — a copy anywhere on
// the TCP send path shows up as FlattenedBytes.
func TestTCPVectoredSendZeroCopy(t *testing.T) {
	sa := NewStats()
	a, err := NewTCPTransport(0, "127.0.0.1:0", sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPTransport(1, "127.0.0.1:0", NewStats())
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.AddPeer(1, b.ListenAddr())
	t.Cleanup(func() { a.Close(); b.Close() })

	got := make(chan Packet, 1)
	b.Register(Addr{Node: 1, Thread: 3}, func(p Packet) {
		got <- Packet{Data: append([]byte(nil), p.Data...)}
	})

	segs := [][]byte{[]byte("meta|"), []byte("leased-value-bytes"), []byte("|tail")}
	want := "meta|leased-value-bytes|tail"
	if err := a.Send(Packet{
		Src:  Addr{Node: 0, Thread: 2},
		Dst:  Addr{Node: 1, Thread: 3},
		Segs: segs,
	}); err != nil {
		t.Fatal(err)
	}
	// The Segs contract: segment memory is consumed during Send, so the
	// sender may scribble over it the moment Send returns.
	for _, s := range segs {
		for i := range s {
			s[i] = 0xEE
		}
	}
	select {
	case p := <-got:
		if string(p.Data) != want {
			t.Fatalf("vectored payload = %q, want %q", p.Data, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("vectored packet never arrived")
	}
	if v := sa.VectoredBytes.Load(); v != uint64(len(want)) {
		t.Fatalf("VectoredBytes = %d, want %d", v, len(want))
	}
	if f := sa.FlattenedBytes.Load(); f != 0 {
		t.Fatalf("FlattenedBytes = %d, want 0 — the TCP path must never copy segment memory", f)
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, b := newTCPPair(t)
	got := make(chan Packet, 1)
	b.Register(Addr{Node: 1}, func(p Packet) { got <- p })
	big := make([]byte, 1<<16)
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Send(Packet{Src: Addr{Node: 0}, Dst: Addr{Node: 1}, Data: big}); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if len(p.Data) != len(big) || p.Data[12345] != big[12345] {
			t.Fatalf("large payload corrupted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("large payload never arrived")
	}
}
