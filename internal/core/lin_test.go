package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/timestamp"
)

// deliverLinWrite runs one complete, uncontended Lin write through the
// two-phase protocol and returns the update that was broadcast.
func deliverLinWrite(t *testing.T, caches []*Cache, writer int, key uint64, val []byte) Update {
	t.Helper()
	inv, err := caches[writer].WriteLinStart(key, val)
	if err != nil {
		t.Fatal(err)
	}
	var upd Update
	done := false
	for i, c := range caches {
		if i == writer {
			continue
		}
		ack, _ := c.ApplyInvalidation(inv)
		if upd2, d := caches[writer].ApplyAck(ack); d {
			upd, done = upd2, true
		}
	}
	if !done {
		t.Fatalf("write did not complete after %d acks", len(caches)-1)
	}
	for i, c := range caches {
		if i == writer {
			continue
		}
		c.ApplyUpdateLin(upd)
	}
	return upd
}

func TestLinMiss(t *testing.T) {
	c := newCacheWith(t, 0, 3, 1)
	if _, err := c.WriteLinStart(9, []byte("x")); err != ErrMiss {
		t.Fatalf("err = %v", err)
	}
}

func TestLinTwoPhaseBasic(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	upd := deliverLinWrite(t, caches, 0, 1, []byte("lin"))
	if upd.TS.Writer != 0 || upd.TS.Clock != 1 {
		t.Fatalf("update ts = %v", upd.TS)
	}
	for i, c := range caches {
		v, ts, err := c.Read(1, nil)
		if err != nil || string(v) != "lin" || ts != upd.TS {
			t.Fatalf("replica %d: %q %v %v", i, v, ts, err)
		}
		st, _, _ := c.EntryState(1)
		if st != StateValid {
			t.Fatalf("replica %d state %v", i, st)
		}
	}
}

func TestLinWriterServesOldValueWhilePending(t *testing.T) {
	caches := newReplicaGroup(t, 3, 7)
	if _, err := caches[0].WriteLinStart(7, []byte("new")); err != nil {
		t.Fatal(err)
	}
	// The put has not returned; a read at the writer must return the old
	// value (returning the new one would violate Lin's "a get may return a
	// value only after the put has returned" for remote sessions).
	v, _, err := caches[0].Read(7, nil)
	if err != nil || !bytes.Equal(v, []byte{7}) {
		t.Fatalf("pending read: %v %v", v, err)
	}
	st, _, _ := caches[0].EntryState(7)
	if st != StateWrite {
		t.Fatalf("state = %v, want Write", st)
	}
	if !caches[0].PendingWrite(7) {
		t.Fatalf("pending write not reported")
	}
}

func TestLinInvalidatedReplicaStallsReads(t *testing.T) {
	caches := newReplicaGroup(t, 3, 7)
	inv, err := caches[0].WriteLinStart(7, []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	ack, invalidated := caches[1].ApplyInvalidation(inv)
	if !invalidated {
		t.Fatalf("replica must invalidate on a newer timestamp")
	}
	if ack.TS != inv.TS || ack.From != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if _, _, err := caches[1].Read(7, nil); err != ErrInvalid {
		t.Fatalf("read on Invalid entry: err = %v, want ErrInvalid", err)
	}
	if caches[1].Stats().InvalidStalls.Load() != 1 {
		t.Fatalf("stall not counted")
	}

	// Completing the protocol unblocks the reader with the new value.
	if _, done := caches[0].ApplyAck(ack); done {
		t.Fatalf("write must need N-1=2 acks, completed after 1")
	}
	ack2, _ := caches[2].ApplyInvalidation(inv)
	upd, done := caches[0].ApplyAck(ack2)
	if !done {
		t.Fatalf("write must complete after 2 acks")
	}
	if !caches[1].ApplyUpdateLin(upd) {
		t.Fatalf("matching update must apply")
	}
	v, _, err := caches[1].Read(7, nil)
	if err != nil || string(v) != "new" {
		t.Fatalf("after update: %q %v", v, err)
	}
}

func TestLinSecondLocalWriteRefused(t *testing.T) {
	caches := newReplicaGroup(t, 2, 1)
	if _, err := caches[0].WriteLinStart(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := caches[0].WriteLinStart(1, []byte("b")); err != ErrWritePending {
		t.Fatalf("err = %v, want ErrWritePending", err)
	}
}

func TestLinAckAlwaysSentEvenWhenStale(t *testing.T) {
	caches := newReplicaGroup(t, 2, 1)
	// Pre-advance replica 1 far ahead.
	deliverLinWrite(t, caches, 1, 1, []byte("x"))
	deliverLinWrite(t, caches, 1, 1, []byte("y"))

	// A writer stuck with an older view still gets acks (no deadlock) even
	// though its invalidation does not invalidate anyone. To build the
	// scenario, craft a stale invalidation directly.
	stale := Invalidation{Key: 1, TS: timestamp.TS{Clock: 1, Writer: 0}, From: 0}
	ack, invalidated := caches[1].ApplyInvalidation(stale)
	if invalidated {
		t.Fatalf("stale invalidation must not invalidate")
	}
	if ack.TS != stale.TS {
		t.Fatalf("ack must echo the invalidation timestamp")
	}
}

func TestLinStaleUpdateDiscarded(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	invA, _ := caches[0].WriteLinStart(1, []byte("A")) // ts 1.0
	invB, _ := caches[1].WriteLinStart(1, []byte("B")) // ts 1.1, wins tie

	// Replica 2 sees both invalidations; B's timestamp is higher.
	caches[2].ApplyInvalidation(invA)
	caches[2].ApplyInvalidation(invB)

	// A's update (would carry ts 1.0) must be discarded at replica 2.
	if caches[2].ApplyUpdateLin(Update{Key: 1, TS: invA.TS, Value: []byte("A")}) {
		t.Fatalf("stale update applied")
	}
	// B's matching update applies.
	if !caches[2].ApplyUpdateLin(Update{Key: 1, TS: invB.TS, Value: []byte("B")}) {
		t.Fatalf("winning update discarded")
	}
	v, _, _ := caches[2].Read(1, nil)
	if string(v) != "B" {
		t.Fatalf("value = %q", v)
	}
}

// Two concurrent writers: the higher (clock, writer) timestamp must win on
// every replica, the loser must detect the conflict, and everyone converges
// Valid. This is the scenario that makes the Lin protocol "more complex than
// the SC protocol" (§5.2) and is the core of its Murφ verification.
func TestLinConcurrentWritersConverge(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	invA, _ := caches[0].WriteLinStart(1, []byte("A")) // 1.0
	invB, _ := caches[1].WriteLinStart(1, []byte("B")) // 1.1

	// Cross-deliver invalidations (each writer also receives the other's).
	ackB0, _ := caches[0].ApplyInvalidation(invB) // invalidates A's entry (1.1 > 1.0)
	ackA1, _ := caches[1].ApplyInvalidation(invA) // stale at B (1.0 < 1.1), still acked
	ackA2, _ := caches[2].ApplyInvalidation(invA)
	ackB2, _ := caches[2].ApplyInvalidation(invB)

	updA, doneA := caches[0].ApplyAck(ackA1)
	if _, d := caches[0].ApplyAck(ackA2); !d && !doneA {
		t.Fatalf("A never completed")
	} else if d {
		updA = Update{Key: 1, TS: invA.TS, Value: []byte("A")}
		_ = updA
	}
	updA = Update{Key: 1, TS: invA.TS, Value: []byte("A")}

	updB, doneB := caches[1].ApplyAck(ackB0)
	if !doneB {
		if updB, doneB = caches[1].ApplyAck(ackB2); !doneB {
			t.Fatalf("B never completed")
		}
	} else {
		caches[1].ApplyAck(ackB2)
	}

	// The loser (A) must have recorded the conflict.
	if caches[0].Stats().WriteConflictsLost.Load() != 1 {
		t.Fatalf("A should have lost the race")
	}

	// Deliver updates everywhere, in the adversarial order (loser last).
	caches[1].ApplyUpdateLin(updB)
	caches[2].ApplyUpdateLin(updB)
	caches[1].ApplyUpdateLin(updA)
	caches[2].ApplyUpdateLin(updA)
	caches[0].ApplyUpdateLin(updB)
	caches[0].ApplyUpdateLin(updA)

	for i, c := range caches {
		v, ts, err := c.Read(1, nil)
		if err != nil || string(v) != "B" || ts != invB.TS {
			t.Fatalf("replica %d: %q %v %v (want B @ %v)", i, v, ts, err, invB.TS)
		}
		st, _, _ := c.EntryState(1)
		if st != StateValid {
			t.Fatalf("replica %d not Valid: %v", i, st)
		}
	}
}

// Randomized whole-protocol soup: many writes from random nodes with
// arbitrarily interleaved message delivery must always quiesce with all
// replicas Valid (deadlock freedom) and identical (safety/convergence).
func TestLinRandomizedSoup(t *testing.T) {
	type envelope struct {
		to  int
		msg any
	}
	const nodes = 4
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		caches := newReplicaGroup(t, nodes, 1, 2)
		var inflight []envelope
		writesLeft := 30
		writersBusy := map[string]bool{}

		step := func() {
			// Either start a new write or deliver a random message.
			if writesLeft > 0 && (len(inflight) == 0 || rng.Intn(3) == 0) {
				w := rng.Intn(nodes)
				key := uint64(1 + rng.Intn(2))
				tag := fmt.Sprintf("%d/%d", w, key)
				if writersBusy[tag] {
					return
				}
				val := []byte(fmt.Sprintf("w%d-%d", w, writesLeft))
				inv, err := caches[w].WriteLinStart(key, val)
				if err == ErrWritePending {
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				writersBusy[tag] = true
				writesLeft--
				for to := 0; to < nodes; to++ {
					if to != w {
						inflight = append(inflight, envelope{to, inv})
					}
				}
				return
			}
			if len(inflight) == 0 {
				return
			}
			i := rng.Intn(len(inflight))
			env := inflight[i]
			inflight[i] = inflight[len(inflight)-1]
			inflight = inflight[:len(inflight)-1]
			switch m := env.msg.(type) {
			case Invalidation:
				ack, _ := caches[env.to].ApplyInvalidation(m)
				inflight = append(inflight, envelope{int(m.From), ack})
			case Ack:
				if upd, done := caches[env.to].ApplyAck(m); done {
					writersBusy[fmt.Sprintf("%d/%d", env.to, m.Key)] = false
					for to := 0; to < nodes; to++ {
						if to != env.to {
							inflight = append(inflight, envelope{to, upd})
						}
					}
				}
			case Update:
				caches[env.to].ApplyUpdateLin(m)
			}
		}

		for iter := 0; iter < 100000 && (writesLeft > 0 || len(inflight) > 0); iter++ {
			step()
		}
		if len(inflight) != 0 {
			t.Fatalf("trial %d: %d messages never drained (deadlock?)", trial, len(inflight))
		}

		for _, key := range []uint64{1, 2} {
			ref, refTS, err := caches[0].Read(key, nil)
			if err != nil {
				t.Fatalf("trial %d: replica 0 not readable: %v", trial, err)
			}
			for i := 1; i < nodes; i++ {
				v, ts, err := caches[i].Read(key, nil)
				if err != nil {
					t.Fatalf("trial %d key %d: replica %d unreadable at quiescence: %v", trial, key, i, err)
				}
				if !bytes.Equal(v, ref) || ts != refTS {
					t.Fatalf("trial %d key %d: replica %d diverged: %q@%v vs %q@%v",
						trial, key, i, v, ts, ref, refTS)
				}
				st, _, _ := caches[i].EntryState(key)
				if st != StateValid {
					t.Fatalf("trial %d key %d: replica %d stuck in %v", trial, key, i, st)
				}
			}
		}
	}
}

func TestLinWriteToInvalidEntry(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	invA, _ := caches[0].WriteLinStart(1, []byte("A")) // 1.0

	// Replica 1 is invalidated, then starts its own write on the Invalid
	// entry. Its timestamp must dominate A's.
	caches[1].ApplyInvalidation(invA)
	invB, err := caches[1].WriteLinStart(1, []byte("B"))
	if err != nil {
		t.Fatal(err)
	}
	if !invB.TS.After(invA.TS) {
		t.Fatalf("B's write must dominate the seen invalidation: %v !> %v", invB.TS, invA.TS)
	}
	// The entry stays Invalid (pre-write value is stale); it becomes Valid
	// when B's own write completes.
	st, _, _ := caches[1].EntryState(1)
	if st != StateInvalid {
		t.Fatalf("state = %v, want Invalid", st)
	}
}

func TestLinUpdateForUncachedKeyDropped(t *testing.T) {
	c := newCacheWith(t, 0, 2, 1)
	if c.ApplyUpdateLin(Update{Key: 99, TS: timestamp.TS{Clock: 1}}) {
		t.Fatalf("uncached update applied")
	}
	// Invalidation for uncached key still acked (writer progress).
	ack, invalidated := c.ApplyInvalidation(Invalidation{Key: 99, TS: timestamp.TS{Clock: 1}, From: 1})
	if invalidated || ack.Key != 99 {
		t.Fatalf("uncached invalidation: %v %v", ack, invalidated)
	}
}

func BenchmarkLinFullWrite(b *testing.B) {
	const nodes = 9
	caches := make([]*Cache, nodes)
	for i := range caches {
		caches[i] = NewCache(uint8(i), nodes)
		caches[i].Install([]uint64{1}, func(uint64) ([]byte, timestamp.TS, bool) {
			return make([]byte, 40), timestamp.TS{}, true
		})
	}
	val := make([]byte, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := i % nodes
		inv, err := caches[w].WriteLinStart(1, val)
		if err != nil {
			b.Fatal(err)
		}
		var upd Update
		for j := range caches {
			if j == w {
				continue
			}
			ack, _ := caches[j].ApplyInvalidation(inv)
			if u, done := caches[w].ApplyAck(ack); done {
				upd = u
			}
		}
		for j := range caches {
			if j != w {
				caches[j].ApplyUpdateLin(upd)
			}
		}
	}
}

// Duplicate delivery: unreliable datagrams may duplicate as well as
// reorder. Replaying invalidations, acks and updates must not double-apply
// or double-complete anything.
func TestLinDuplicateDeliveryIdempotent(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	inv, err := caches[0].WriteLinStart(1, []byte("dup"))
	if err != nil {
		t.Fatal(err)
	}
	ack1, _ := caches[1].ApplyInvalidation(inv)
	// Duplicate invalidation: acked again (idempotent), state unchanged.
	ack1b, invalidated := caches[1].ApplyInvalidation(inv)
	if invalidated {
		t.Fatal("duplicate invalidation re-invalidated")
	}
	if ack1b.TS != ack1.TS {
		t.Fatal("duplicate ack differs")
	}
	ack2, _ := caches[2].ApplyInvalidation(inv)

	if _, done := caches[0].ApplyAck(ack1); done {
		t.Fatal("completed after one ack")
	}
	upd, done := caches[0].ApplyAck(ack2)
	if !done {
		t.Fatal("never completed")
	}
	// Duplicate ack after completion: must not re-complete.
	if _, d := caches[0].ApplyAck(ack1b); d {
		t.Fatal("duplicate ack re-completed the write")
	}
	if !caches[1].ApplyUpdateLin(upd) {
		t.Fatal("update rejected")
	}
	// Duplicate update: discarded (entry already Valid).
	if caches[1].ApplyUpdateLin(upd) {
		t.Fatal("duplicate update applied twice")
	}
	v, _, err := caches[1].Read(1, nil)
	if err != nil || string(v) != "dup" {
		t.Fatalf("%q %v", v, err)
	}
}

// A second write by the same node must be able to start immediately after
// completion (pending bookkeeping is fully reset).
func TestLinBackToBackWrites(t *testing.T) {
	caches := newReplicaGroup(t, 2, 1)
	for i := 0; i < 10; i++ {
		val := []byte{byte(i)}
		upd := deliverLinWrite(t, caches, i%2, 1, val)
		if upd.TS.Clock != uint32(i+1) {
			t.Fatalf("write %d: clock %d", i, upd.TS.Clock)
		}
	}
	v, ts, _ := caches[0].Read(1, nil)
	if v[0] != 9 || ts.Clock != 10 {
		t.Fatalf("final state %v @ %v", v, ts)
	}
}
