package cluster

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/timestamp"
)

// Wire-format round trips for the coalesced RPC framing: multi-request and
// multi-response packets must decode back to what was encoded, and truncated
// or garbage inputs must fail the affected calls explicitly instead of
// silently dropping them (the pre-pipeline code path deadlocked the caller).

func TestParseRequestRoundTripMulti(t *testing.T) {
	val := bytes.Repeat([]byte{0xAB}, 40)
	var pkt []byte
	pkt = appendGetReq(pkt, rpcOpGet, 1, 100)
	pkt = appendPutReq(pkt, rpcOpPut, 2, 200, val)
	pkt = appendPutReq(pkt, rpcOpPrimaryWrite, 3, 300, val[:7])
	pkt = appendGetReq(pkt, rpcOpSeqTS, 4, 400)

	want := []rpcRequest{
		{op: rpcOpGet, reqID: 1, key: 100},
		{op: rpcOpPut, reqID: 2, key: 200, value: val},
		{op: rpcOpPrimaryWrite, reqID: 3, key: 300, value: val[:7]},
		{op: rpcOpSeqTS, reqID: 4, key: 400},
	}
	for i, w := range want {
		req, consumed, err := parseRequest(pkt)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if req.op != w.op || req.reqID != w.reqID || req.key != w.key || !bytes.Equal(req.value, w.value) {
			t.Fatalf("entry %d: got %+v want %+v", i, req, w)
		}
		pkt = pkt[consumed:]
	}
	if len(pkt) != 0 {
		t.Fatalf("%d trailing bytes after last entry", len(pkt))
	}
}

func TestParseRequestRejectsMalformed(t *testing.T) {
	val := bytes.Repeat([]byte{1}, 16)
	full := appendPutReq(nil, rpcOpPut, 7, 9, val)
	cases := map[string][]byte{
		"empty":            nil,
		"header only":      full[:9],
		"no key":           full[:12],
		"no vlen":          full[:19],
		"truncated value":  full[:len(full)-3],
		"unknown op":       appendGetReq(nil, 99, 7, 9),
		"short get":        appendGetReq(nil, rpcOpGet, 7, 9)[:16],
		"garbage":          {0xde, 0xad, 0xbe, 0xef},
		"vlen past buffer": append(appendPutReq(nil, rpcOpPut, 7, 9, nil)[:17], 0xff, 0xff, 0xff, 0x7f),
	}
	for name, buf := range cases {
		if _, _, err := parseRequest(buf); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
	// Entries whose 9-byte header survived must surface the request id so
	// the server can refuse them explicitly.
	req, _, err := parseRequest(full[:12])
	if err == nil || req.reqID != 7 {
		t.Fatalf("truncated entry: id=%d err=%v, want id=7 and error", req.reqID, err)
	}
}

// respTestClient builds a bare client whose worker has just enough state
// for handleResponse (credits only).
func respTestClient() *rpcClient {
	n := &Node{cluster: &Cluster{cfg: Config{WorkersPerNode: 1}}}
	wk := &worker{node: n, credits: fabric.NewCredits()}
	wk.rpc = newRPCClient(wk)
	n.workers = []*worker{wk}
	return wk.rpc
}

func TestHandleResponseMultiCompletesAll(t *testing.T) {
	r := respTestClient()
	ch1 := r.register(1, 1)
	ch2 := r.register(1, 2)
	ch3 := r.register(1, 3)

	val := bytes.Repeat([]byte{0x5A}, 24)
	var pkt []byte
	pkt = appendOKResponse(pkt, 1, timestamp.TS{Clock: 9, Writer: 2}, val)
	pkt = appendStatusOnly(pkt, 2, rpcStatusNotFound)
	pkt = appendOKResponse(pkt, 3, timestamp.TS{}, nil)
	r.handleResponse(fabric.Packet{Data: pkt})

	res1 := <-ch1
	if res1.err != nil || res1.status != rpcStatusOK || !bytes.Equal(res1.value, val) ||
		res1.ts != (timestamp.TS{Clock: 9, Writer: 2}) {
		t.Fatalf("res1 = %+v", res1)
	}
	if res2 := <-ch2; res2.err != nil || res2.status != rpcStatusNotFound {
		t.Fatalf("res2 = %+v", res2)
	}
	if res3 := <-ch3; res3.err != nil || res3.status != rpcStatusOK || len(res3.value) != 0 {
		t.Fatalf("res3 = %+v", res3)
	}
	if len(r.pend) != 0 {
		t.Fatalf("%d pending calls left", len(r.pend))
	}
}

// A truncated response must fail the pending call with an explicit error —
// this is the silent-drop deadlock fix.
func TestHandleResponseTruncatedFailsPending(t *testing.T) {
	val := bytes.Repeat([]byte{0x77}, 40)
	for _, tc := range []struct {
		name string
		cut  int // bytes to strip from the full entry
	}{
		{"value cut", 10},
		{"payload header cut", 41}, // leaves reqID+status+partial ts
	} {
		r := respTestClient()
		ch := r.register(1, 5)
		full := appendOKResponse(nil, 5, timestamp.TS{Clock: 1}, val)
		r.handleResponse(fabric.Packet{Data: full[:len(full)-tc.cut]})
		select {
		case res := <-ch:
			if res.err == nil {
				t.Fatalf("%s: completed without error: %+v", tc.name, res)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: pending call never completed (deadlock)", tc.name)
		}
		if r.w.node.RPCDecodeErrors.Load() == 0 {
			t.Fatalf("%s: decode error not counted", tc.name)
		}
	}
}

func TestHandleResponseGarbageTailIgnored(t *testing.T) {
	r := respTestClient()
	ch := r.register(1, 8)
	pkt := appendStatusOnly(nil, 8, rpcStatusNotFound) // valid entry...
	pkt = append(pkt, 0xBA, 0xD1)                      // ...plus a tail too short to name an id
	r.handleResponse(fabric.Packet{Data: pkt})
	if res := <-ch; res.err != nil || res.status != rpcStatusNotFound {
		t.Fatalf("res = %+v", res)
	}
	if r.w.node.RPCDecodeErrors.Load() != 1 {
		t.Fatal("garbage tail not counted")
	}
}

// A malformed or unservable request must come back as an explicit rpc error
// through the live stack, not hang the caller. The encode-at-send pipeline
// can no longer emit malformed bytes itself, so the raw packets are injected
// straight into the transport, as a buggy or hostile peer would.
func TestServerRefusesBadRequests(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 2, System: Base, NumKeys: 100})
	n := c.Node(0)
	cfg := c.Config()
	wk := n.workers[0]
	for name, req := range map[string][]byte{
		"unknown op":       appendGetReq(nil, 42, 0, 5),
		"truncated put":    appendPutReq(nil, rpcOpPut, 0, 5, bytes.Repeat([]byte{1}, 16))[:15],
		"primary no cache": appendPutReq(nil, rpcOpPrimaryWrite, 0, 5, []byte("v")),
	} {
		id := wk.rpc.newReqID()
		// Stamp the fresh id into the encoded entry (offset 1, little endian).
		if len(req) >= 9 {
			binary.LittleEndian.PutUint64(req[1:9], id)
		}
		ch := wk.rpc.register(1, id)
		if err := c.transport.Send(fabric.Packet{
			Src:   fabric.Addr{Node: 0, Thread: cfg.respThread(0)},
			Dst:   fabric.Addr{Node: 1, Thread: cfg.kvsThread(0)},
			Class: metrics.ClassCacheMiss,
			Data:  req,
		}); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := awaitRPC(ch)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("%s: call succeeded, want refusal", name)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: call deadlocked", name)
		}
	}
}

// The server must answer one request packet with exactly one response packet
// no matter how many requests it coalesces — the invariant behind charging
// credits per packet.
func TestBatchedRequestOneResponsePacket(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 2, System: Base, NumKeys: 1000})
	n := c.Node(0)
	// Collect keys homed on node 1.
	var keys []uint64
	for k := uint64(0); len(keys) < 10 && k < 1000; k++ {
		if c.HomeNode(k) == 1 {
			keys = append(keys, k)
		}
	}
	want := make([][]byte, len(keys))
	for i := range keys {
		want[i] = bytes.Repeat([]byte{byte(0x10 + i)}, 40)
	}
	if err := n.remoteMultiPut(1, keys, want); err != nil {
		t.Fatal(err)
	}
	values, _, err := n.remoteMultiGet(1, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if !bytes.Equal(v, want[i]) {
			t.Fatalf("key %d: got %v want %v", keys[i], v, want[i])
		}
	}
	if got := n.RemoteReqMsgs.Load(); got != uint64(2*len(keys)) {
		t.Fatalf("request messages = %d, want %d", got, 2*len(keys))
	}
	pkts := n.RemoteReqPackets.Load()
	if pkts == 0 || pkts > uint64(2*len(keys)) {
		t.Fatalf("request packets = %d for %d requests", pkts, 2*len(keys))
	}
	t.Logf("coalescing: %d requests in %d packets", 2*len(keys), pkts)
}

// Calls issued against a closed cluster must fail, not hang.
func TestCallAfterCloseFails(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 2, System: Base, NumKeys: 100})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Node(0).RemoteGet(1, 5)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("remote get on closed cluster succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("remote get on closed cluster deadlocked")
	}
}

// Even a fully undecodable request packet must be answered (with an empty
// response packet): the sender charged a credit for it, and only the
// response restores that credit — otherwise malformed packets would wedge
// all remote traffic toward that home node.
func TestUndecodablePacketStillRestoresCredit(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 2, System: Base, NumKeys: 100, CreditsPerPeer: 4})
	n := c.Node(0)
	cfg := c.Config()
	wk := n.workers[0]
	kvs := fabric.Addr{Node: 1, Thread: cfg.kvsThread(0)}
	for i := 0; i < 4; i++ {
		wk.credits.Acquire(kvs) // drain the budget
	}
	// Inject a garbage packet as if node 0's worker-0 pipeline had sent it.
	if err := c.transport.Send(fabric.Packet{
		Src:   fabric.Addr{Node: 0, Thread: cfg.respThread(0)},
		Dst:   kvs,
		Class: metrics.ClassCacheMiss,
		Data:  []byte{0xde, 0xad},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for wk.credits.Available(kvs) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("credit never restored after undecodable packet")
		}
		time.Sleep(time.Millisecond)
	}
}

// The coalescer must never exceed BatchMaxBytes: a request that would bust
// the bound rides in the next packet instead.
func TestPipelineRespectsByteBound(t *testing.T) {
	c := newTestCluster(t, Config{
		Nodes: 2, System: Base, NumKeys: 1000,
		BatchMaxBytes: 100, BatchMaxMsgs: 64, ValueSize: 60,
	})
	n := c.Node(0)
	var keys []uint64
	var vals [][]byte
	for k := uint64(0); len(keys) < 8 && k < 1000; k++ {
		if c.HomeNode(k) == 1 {
			keys = append(keys, k)
			vals = append(vals, bytes.Repeat([]byte{byte(k)}, 60))
		}
	}
	// Each put request is 21+60 = 81 bytes; two would exceed the 100-byte
	// bound, so every packet must carry exactly one request.
	if err := n.remoteMultiPut(1, keys, vals); err != nil {
		t.Fatal(err)
	}
	if msgs, pkts := n.RemoteReqMsgs.Load(), n.RemoteReqPackets.Load(); pkts != msgs {
		t.Fatalf("byte bound violated: %d requests in %d packets", msgs, pkts)
	}
}
