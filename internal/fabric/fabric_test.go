package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestAddrString(t *testing.T) {
	if (Addr{Node: 2, Thread: 5}).String() != "n2/t5" {
		t.Fatalf("addr rendering wrong")
	}
}

func TestChanTransportDelivery(t *testing.T) {
	stats := NewStats()
	tr := NewChanTransport(8, stats)
	defer tr.Close()

	got := make(chan Packet, 1)
	dst := Addr{Node: 1, Thread: 0}
	tr.Register(dst, func(p Packet) { got <- p })

	want := Packet{Src: Addr{Node: 0}, Dst: dst, Class: metrics.ClassCacheMiss, Data: []byte("hi")}
	if err := tr.Send(want); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p.Data) != "hi" || p.Src != want.Src {
			t.Fatalf("got %+v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet not delivered")
	}
	if stats.SendsTotal.Load() != 1 || stats.RecvsTotal.Load() != 1 {
		t.Fatalf("stats: sends=%d recvs=%d", stats.SendsTotal.Load(), stats.RecvsTotal.Load())
	}
}

// An in-process transport passes payloads by reference, so it must break a
// vectored payload's aliases at Send time (the sender releases segment
// memory the moment Send returns) — counted as FlattenedBytes, the copy the
// TCP path proves it never makes.
func TestChanTransportFlattensVectoredPayloads(t *testing.T) {
	stats := NewStats()
	tr := NewChanTransport(8, stats)
	defer tr.Close()

	got := make(chan Packet, 1)
	dst := Addr{Node: 1, Thread: 0}
	tr.Register(dst, func(p Packet) { got <- p })

	segs := [][]byte{[]byte("abc"), []byte("def")}
	if err := tr.Send(Packet{Src: Addr{Node: 0}, Dst: dst, Segs: segs}); err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		for i := range s {
			s[i] = 0xEE
		}
	}
	select {
	case p := <-got:
		if string(p.Data) != "abcdef" {
			t.Fatalf("flattened payload = %q, want %q (aliases not broken?)", p.Data, "abcdef")
		}
		if p.Segs != nil {
			t.Fatalf("delivered packet still carries Segs")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("vectored packet never delivered")
	}
	if f := stats.FlattenedBytes.Load(); f != 6 {
		t.Fatalf("FlattenedBytes = %d, want 6", f)
	}
}

func TestChanTransportUnknownDstDropped(t *testing.T) {
	tr := NewChanTransport(8, NewStats())
	defer tr.Close()
	// UD semantics: no error, silently dropped.
	if err := tr.Send(Packet{Dst: Addr{Node: 9}}); err != nil {
		t.Fatalf("drop must not error: %v", err)
	}
}

func TestChanTransportClose(t *testing.T) {
	tr := NewChanTransport(8, NewStats())
	tr.Register(Addr{Node: 1}, func(Packet) {})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Packet{Dst: Addr{Node: 1}}); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestChanTransportDuplicateRegistrationPanics(t *testing.T) {
	tr := NewChanTransport(8, NewStats())
	defer tr.Close()
	tr.Register(Addr{Node: 1}, func(Packet) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Register(Addr{Node: 1}, func(Packet) {})
}

func TestChanTransportBackpressure(t *testing.T) {
	stats := NewStats()
	tr := NewChanTransport(1, stats)
	defer tr.Close()

	release := make(chan struct{})
	var delivered atomic.Int32
	dst := Addr{Node: 1}
	tr.Register(dst, func(Packet) {
		<-release
		delivered.Add(1)
	})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Send(Packet{Dst: dst, Class: metrics.ClassUpdate})
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for delivered.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	if stats.SendBlocked.Load() == 0 {
		t.Fatalf("expected at least one blocked send under backpressure")
	}
}

func TestStatsAccounting(t *testing.T) {
	stats := NewStats()
	tr := NewChanTransport(8, stats)
	defer tr.Close()
	tr.Register(Addr{Node: 1}, func(Packet) {})

	data := make([]byte, 100)
	tr.Send(Packet{Dst: Addr{Node: 1}, Class: metrics.ClassUpdate, Data: data})
	if got := stats.Traffic.Bytes(metrics.ClassUpdate); got != 100+WireOverhead {
		t.Fatalf("bytes = %d, want %d", got, 100+WireOverhead)
	}
	if stats.Inlined.Load() != 1 {
		t.Fatalf("100B payload must count as inlined")
	}
	big := make([]byte, InlineThreshold+1)
	tr.Send(Packet{Dst: Addr{Node: 1}, Class: metrics.ClassUpdate, Data: big})
	if stats.Inlined.Load() != 1 {
		t.Fatalf("big payload must not count as inlined")
	}
}

func TestCreditsAcquireGrant(t *testing.T) {
	c := NewCredits()
	peer := Addr{Node: 1}
	c.SetBudget(peer, 2)
	if c.Available(peer) != 2 {
		t.Fatalf("budget not set")
	}
	c.Acquire(peer)
	c.Acquire(peer)
	if c.TryAcquire(peer) {
		t.Fatalf("third acquire must fail")
	}
	c.Grant(peer, 1)
	if !c.TryAcquire(peer) {
		t.Fatalf("granted credit not usable")
	}
}

func TestCreditsGrantClampedToBudget(t *testing.T) {
	c := NewCredits()
	peer := Addr{Node: 1}
	c.SetBudget(peer, 3)
	c.Grant(peer, 100)
	if got := c.Available(peer); got != 3 {
		t.Fatalf("credits overflowed budget: %d", got)
	}
}

func TestCreditsBlockingAcquire(t *testing.T) {
	c := NewCredits()
	peer := Addr{Node: 1}
	c.SetBudget(peer, 1)
	c.Acquire(peer) // drain the budget

	done := make(chan struct{})
	go func() {
		c.Acquire(peer) // must block until the grant below
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("acquire returned without credits")
	case <-time.After(20 * time.Millisecond):
	}
	c.Grant(peer, 1)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("acquire never woke up")
	}
}

func TestCreditBatcherEmitsEveryN(t *testing.T) {
	var mu sync.Mutex
	emitted := map[Addr]int{}
	b := NewCreditBatcher(3, func(p Addr, n int) {
		mu.Lock()
		emitted[p] += n
		mu.Unlock()
	})
	peer := Addr{Node: 2}
	for i := 0; i < 7; i++ {
		b.Note(peer)
	}
	mu.Lock()
	if emitted[peer] != 6 {
		t.Fatalf("emitted %d, want 6 (two batches of 3)", emitted[peer])
	}
	mu.Unlock()
	b.Flush()
	mu.Lock()
	if emitted[peer] != 7 {
		t.Fatalf("flush must drain the remainder: %d", emitted[peer])
	}
	mu.Unlock()
}

func TestCreditBatcherZeroEvery(t *testing.T) {
	n := 0
	b := NewCreditBatcher(0, func(Addr, int) { n++ })
	b.Note(Addr{})
	if n != 1 {
		t.Fatalf("every<=0 must emit per message")
	}
}

func TestBatcherFlushOnMaxMsgs(t *testing.T) {
	stats := NewStats()
	tr := NewChanTransport(16, stats)
	defer tr.Close()
	var pkts []Packet
	var mu sync.Mutex
	recvd := make(chan struct{}, 16)
	dst := Addr{Node: 1}
	tr.Register(dst, func(p Packet) {
		mu.Lock()
		pkts = append(pkts, p)
		mu.Unlock()
		recvd <- struct{}{}
	})

	b := NewBatcher(tr, BatcherConfig{Src: Addr{Node: 0}, Class: metrics.ClassCacheMiss, MaxMsgs: 3, MaxBytes: 1 << 20}, stats)
	for i := 0; i < 3; i++ {
		if err := b.Add(dst, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	<-recvd
	mu.Lock()
	if len(pkts) != 1 || len(pkts[0].Data) != 3 {
		t.Fatalf("coalescing failed: %d packets, data %v", len(pkts), pkts)
	}
	mu.Unlock()
	if stats.Doorbells.Load() != 1 {
		t.Fatalf("doorbells = %d", stats.Doorbells.Load())
	}
}

func TestBatcherFlushOnMaxBytes(t *testing.T) {
	tr := NewChanTransport(16, NewStats())
	defer tr.Close()
	var count atomic.Int32
	dst := Addr{Node: 1}
	tr.Register(dst, func(p Packet) { count.Add(1) })

	b := NewBatcher(tr, BatcherConfig{Src: Addr{Node: 0}, MaxMsgs: 1000, MaxBytes: 10}, nil)
	b.Add(dst, make([]byte, 6))
	b.Add(dst, make([]byte, 6)) // 12 > 10: first batch flushes alone
	b.FlushAll()
	deadline := time.Now().Add(2 * time.Second)
	for count.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if count.Load() != 2 {
		t.Fatalf("packets = %d, want 2", count.Load())
	}
}

func TestBatcherExplicitFlush(t *testing.T) {
	tr := NewChanTransport(16, NewStats())
	defer tr.Close()
	got := make(chan Packet, 1)
	dst := Addr{Node: 1}
	tr.Register(dst, func(p Packet) { got <- p })

	b := NewBatcher(tr, BatcherConfig{Src: Addr{Node: 0}}, nil)
	b.Add(dst, []byte("x"))
	select {
	case <-got:
		t.Fatal("message sent before flush")
	case <-time.After(20 * time.Millisecond):
	}
	if err := b.Flush(dst); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p.Data) != "x" {
			t.Fatalf("data = %q", p.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("flush did not send")
	}
	// Flushing an address with nothing pending is a no-op.
	if err := b.Flush(Addr{Node: 9}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastSkipsSelf(t *testing.T) {
	stats := NewStats()
	tr := NewChanTransport(16, stats)
	defer tr.Close()
	var count atomic.Int32
	for n := uint8(0); n < 3; n++ {
		tr.Register(Addr{Node: n}, func(Packet) { count.Add(1) })
	}
	self := Addr{Node: 0}
	dsts := []Addr{{Node: 0}, {Node: 1}, {Node: 2}}
	if err := Broadcast(tr, self, dsts, metrics.ClassUpdate, []byte("u"), stats); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for count.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if count.Load() != 2 {
		t.Fatalf("broadcast delivered %d, want 2 (self excluded)", count.Load())
	}
	if stats.Doorbells.Load() != 1 {
		t.Fatalf("broadcast must cost one doorbell, got %d", stats.Doorbells.Load())
	}
}

func TestSelectiveSignaling(t *testing.T) {
	stats := NewStats()
	tr := NewChanTransport(64, stats)
	defer tr.Close()
	dst := Addr{Node: 1}
	tr.Register(dst, func(Packet) {})
	b := NewBatcher(tr, BatcherConfig{Src: Addr{Node: 0}, MaxMsgs: 1, SignalEvery: 4}, stats)
	for i := 0; i < 8; i++ {
		b.Add(dst, []byte{1})
	}
	if got := stats.Signaled.Load(); got != 2 {
		t.Fatalf("signaled completions = %d, want 2 (8 sends / batch of 4)", got)
	}
}
