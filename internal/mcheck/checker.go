package mcheck

import (
	"fmt"
	"strings"
)

// Report is the outcome of an exhaustive check.
type Report struct {
	Protocol    Protocol
	Bounds      Bounds
	States      int // distinct states explored
	Transitions int // transitions taken
	Depth       int // BFS depth (protocol diameter within bounds)
	Quiescent   int // quiescent states encountered
	// Violation is empty when the protocol is safe and deadlock-free;
	// otherwise it describes the failed invariant and Trace holds the
	// action sequence reaching it.
	Violation string
	Trace     []string
}

// OK reports whether the check passed.
func (r Report) OK() bool { return r.Violation == "" }

// String summarizes the report.
func (r Report) String() string {
	status := "verified: safety + deadlock freedom hold"
	if !r.OK() {
		status = "VIOLATION: " + r.Violation
	}
	return fmt.Sprintf("%s protocol, %d procs / %d addrs / clock<=%d: %d states, %d transitions, depth %d — %s",
		r.Protocol, r.Bounds.Procs, r.Bounds.Addrs, r.Bounds.MaxClock,
		r.States, r.Transitions, r.Depth, status)
}

// maxStates bounds exploration as a safety valve; the paper-size instance
// fits comfortably.
const maxStates = 6_000_000

// Check exhaustively explores the protocol's state space by breadth-first
// search, verifying at every state:
//
//   - data-value invariant: a Valid line holds exactly the value written by
//     the write whose timestamp it carries (§5.2's "if an object is in a
//     valid state, it must hold the most recent value written");
//   - write-transient sanity: a line in the Write state has a pending write;
//   - unique write serialization: every update in flight carries a value
//     equal to its timestamp, so two distinct writes can never be confused
//     (the SWMR invariant in its logical-time form);
//
// and at every *quiescent* state (no messages in flight, no pending writes):
//
//   - convergence: all replicas of every address are Valid and identical —
//     a non-Valid or divergent quiescent state would mean a replica is
//     stuck waiting forever, i.e. a deadlock.
//
// Deadlock freedom overall follows from BFS exhaustiveness: every reachable
// non-quiescent state has at least one enabled delivery transition (checked
// structurally), and quiescent states are converged.
func Check(proto Protocol, b Bounds) (Report, error) {
	return CheckFault(proto, b, FaultNone)
}

// CheckFault is Check with an injected protocol fault; it exists to
// demonstrate that the checker finds the bug class each fault introduces.
func CheckFault(proto Protocol, b Bounds, fault Fault) (Report, error) {
	if err := b.Validate(); err != nil {
		return Report{}, err
	}
	type node struct {
		state  State
		depth  int
		parent string // key of predecessor
		action string
	}
	rep := Report{Protocol: proto, Bounds: b}

	init := initial(b)
	visited := map[string]struct{ parent, action string }{}
	initKey := init.key(b)
	visited[initKey] = struct{ parent, action string }{"", "init"}
	queue := []node{{state: init, depth: 0}}

	fail := func(n node, violation string) Report {
		rep.Violation = violation
		// Reconstruct the action trace through parent links.
		var trace []string
		trace = append(trace, n.action)
		key := n.parent
		for key != "" {
			meta := visited[key]
			if meta.action != "init" {
				trace = append(trace, meta.action)
			}
			key = meta.parent
		}
		// Reverse into chronological order.
		for i, j := 0, len(trace)-1; i < j; i, j = i+1, j-1 {
			trace[i], trace[j] = trace[j], trace[i]
		}
		rep.Trace = trace
		return rep
	}

	expand := func(cur node, next State, action string) (node, bool) {
		key := next.key(b)
		if _, seen := visited[key]; seen {
			return node{}, false
		}
		curKey := cur.state.key(b)
		visited[key] = struct{ parent, action string }{curKey, action}
		return node{state: next, depth: cur.depth + 1, parent: curKey, action: action}, true
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth > rep.Depth {
			rep.Depth = cur.depth
		}
		if v := checkInvariants(proto, b, &cur.state); v != "" {
			return fail(node{parent: cur.parent, action: cur.action}, v), nil
		}
		if len(cur.state.Msgs) == 0 {
			rep.Quiescent++
			if v := checkQuiescent(b, &cur.state); v != "" {
				return fail(node{parent: cur.parent, action: cur.action}, v), nil
			}
		}
		if rep.States >= maxStates {
			return rep, fmt.Errorf("mcheck: state budget exceeded (%d); tighten bounds", maxStates)
		}

		// Transitions: start a write at any (proc, addr)...
		for p := 0; p < b.Procs; p++ {
			for a := 0; a < b.Addrs; a++ {
				next := cur.state.clone()
				var ok bool
				if proto == Lin {
					ok = startWriteLin(b, &next, p, a)
				} else {
					ok = startWriteSC(b, &next, p, a)
				}
				if !ok {
					continue
				}
				rep.Transitions++
				if n, fresh := expand(cur, next, fmt.Sprintf("write(p%d,a%d)", p, a)); fresh {
					rep.States++
					queue = append(queue, n)
				}
			}
		}
		// ...or deliver any in-flight message (arbitrary reordering).
		for i := range cur.state.Msgs {
			next := cur.state.clone()
			m := next.Msgs[i]
			if proto == Lin {
				deliverLin(b, &next, i, fault)
			} else {
				deliverSC(b, &next, i)
			}
			rep.Transitions++
			action := fmt.Sprintf("deliver(%s,a%d,ts%d.%d,to p%d)", msgName(m.Kind), m.Addr, m.TS.C, m.TS.W, m.To)
			if n, fresh := expand(cur, next, action); fresh {
				rep.States++
				queue = append(queue, n)
			}
		}
	}
	rep.States++ // count the initial state
	return rep, nil
}

func msgName(kind uint8) string {
	switch kind {
	case MInv:
		return "inv"
	case MAck:
		return "ack"
	default:
		return "upd"
	}
}

// checkInvariants verifies the per-state safety properties, returning a
// description of the first violation.
func checkInvariants(proto Protocol, b Bounds, s *State) string {
	for p := 0; p < b.Procs; p++ {
		for a := 0; a < b.Addrs; a++ {
			l := s.line(b, p, a)
			if l.St == StValid && l.Val != l.TS {
				return fmt.Sprintf("data-value: p%d a%d Valid with val %d.%d != ts %d.%d",
					p, a, l.Val.C, l.Val.W, l.TS.C, l.TS.W)
			}
			if l.St == StWrite && !l.Pend {
				return fmt.Sprintf("transient: p%d a%d in Write state with no pending write", p, a)
			}
			if proto == Lin && l.Pend && l.PTS.after(l.TS) {
				return fmt.Sprintf("timestamp: p%d a%d pending ts %d.%d above line ts %d.%d",
					p, a, l.PTS.C, l.PTS.W, l.TS.C, l.TS.W)
			}
		}
	}
	for _, m := range s.Msgs {
		if m.Kind == MUpd && m.Val != m.TS {
			return fmt.Sprintf("serialization: update for a%d carries val %d.%d != ts %d.%d",
				m.Addr, m.Val.C, m.Val.W, m.TS.C, m.TS.W)
		}
	}
	return ""
}

// checkQuiescent verifies that with no messages in flight and no pending
// writes, every replica is Valid and all replicas agree — the liveness side
// of the verification (a stuck Invalid replica would wait forever).
func checkQuiescent(b Bounds, s *State) string {
	for p := 0; p < b.Procs; p++ {
		for a := 0; a < b.Addrs; a++ {
			if l := s.line(b, p, a); l.Pend {
				// No messages in flight yet a write is still waiting for
				// acknowledgements: nothing can ever complete it.
				return fmt.Sprintf("deadlock: p%d a%d pending write can never gather its acks", p, a)
			}
		}
	}
	var issues []string
	for a := 0; a < b.Addrs; a++ {
		ref := s.line(b, 0, a)
		for p := 0; p < b.Procs; p++ {
			l := s.line(b, p, a)
			if l.St != StValid {
				issues = append(issues, fmt.Sprintf("p%d a%d stuck in state %d", p, a, l.St))
			}
			if l.TS != ref.TS || l.Val != ref.Val {
				issues = append(issues, fmt.Sprintf("p%d a%d diverged from p0", p, a))
			}
		}
	}
	if len(issues) > 0 {
		return "quiescence: " + strings.Join(issues, "; ")
	}
	return ""
}
