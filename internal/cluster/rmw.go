package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/timestamp"
)

// Atomic read-modify-writes (CAS, FAA) over the existing consistency
// machinery. The protocol rests on one rule: every RMW for a key executes at
// that key's single serialization point, under a lock that makes the
// read-compute-publish window atomic against every other mutation there.
// What the serialization point is depends on where the key lives:
//
//   - HOT key: the RMW coordinator — the first live node scanning the ring
//     upward from the key's home (rmwCoordinator; with every replica live
//     this is the home itself). Every node caches a hot key, so any one
//     could run the protocol; what matters is that all origins agree on ONE,
//     making RMW-vs-RMW races impossible by construction. Under Lin the
//     coordinator runs the ordinary blocking write protocol with the
//     read-compute step fused in under the entry lock (core.RMWLinStart):
//     stamp, stage, broadcast invalidations, collect acks, publish the
//     update. Under SC it applies locally at once (core.RMWSC) and
//     broadcasts the update — replica convergence by timestamp order carries
//     the RMW's atomicity cluster-wide.
//   - COLD replicated key: the acting primary. It reads the stored value,
//     runs compute, stamps the result (same clock lift as rpcOpPutStamp) and
//     *pins* the key (worker.rmwPins) — but applies nothing: the origin
//     drives the ordinary three-phase replicated commit with the computed
//     value (stamp → backups → primary last), so an acked RMW survives
//     primary death exactly like an acked put. The pin makes the primary
//     answer Retry to competing RMW stamps until the commit lands (the
//     commit carrying the pin's stamp clears it), serializing RMWs without
//     ever holding homeMu across the blocking fan-out.
//   - COLD unreplicated key: the home shard, whole op under homeMu.
//
// Semantics: CAS returns the witnessed value on failure (no extra round
// trip); FAA is computed at the serialization point, so contention never
// crosses the wire twice. A CAS expectation of nil/empty matches a missing
// or empty value.
//
// Exactly-once: an RMW rpc is NEVER retried after a transport error — the op
// may or may not have executed, and re-running it could apply it twice.
// Such failures surface as ErrRMWUnknown; only an explicit Retry answer
// (which proves the op did not execute) re-issues it. Two residuals are
// inherited from the layers below, documented rather than solved: during a
// false-suspicion window two origins can disagree on the coordinator or
// acting primary and run concurrent RMWs (the same honesty clause as the
// membership layer), and a replicated RMW abandoned between its stamp and a
// minority of its commits can, with R>=3, leave a backup's value ahead (the
// abandoned-put residual of replicate.go). One semantic asymmetry is load
// bearing: an RMW superseded by a concurrent higher-timestamp blind put is
// still linearizable (the RMW's value reigned for a zero-length interval at
// the serialization point), so no supersession retry exists — whereas the
// blind put losing to the RMW is exactly the non-linearizable interleaving
// blind SC puts already accept.

// rmwPin records a stamped-but-uncommitted cold replicated RMW at the acting
// primary: origin is the node driving the commit, ts the stamp it must
// carry. Guarded by the key's worker homeMu (see worker.rmwPins).
type rmwPin struct {
	origin uint8
	ts     timestamp.TS
}

// EncodeCounter encodes a fetch-and-add counter value (8-byte big-endian).
func EncodeCounter(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// DecodeCounter decodes a counter value: a missing/empty value reads as 0,
// anything other than 8 bytes is not a counter.
func DecodeCounter(b []byte) (uint64, error) {
	switch len(b) {
	case 0:
		return 0, nil
	case 8:
		return binary.BigEndian.Uint64(b), nil
	default:
		return 0, fmt.Errorf("cluster: value is not a counter (len %d)", len(b))
	}
}

// rmwCoordinator returns the node every RMW for key serializes at while the
// key is hot: the first live node scanning the ring upward from the key's
// home (the home itself when it is live, so the hot and cold targets
// coincide in the common case). -1 when no node is live.
func (c *Cluster) rmwCoordinator(key uint64, v *View) int {
	home := c.HomeNode(key)
	for i := 0; i < c.cfg.Nodes; i++ {
		node := home + i
		if node >= c.cfg.Nodes {
			node -= c.cfg.Nodes
		}
		if v.Live(node) {
			return node
		}
	}
	return -1
}

// CompareAndSwap atomically replaces key's value with newVal iff the current
// value equals expect (nil/empty expect matches a missing or empty value).
// witness is the value the comparison observed — on failure it is the answer
// a retry loop needs, saving the read round trip.
func (n *Node) CompareAndSwap(key uint64, expect, newVal []byte) (witness []byte, swapped bool, err error) {
	expectC := expect
	newC := newVal
	compute := func(cur []byte) ([]byte, bool) {
		if !bytes.Equal(cur, expectC) {
			return nil, false
		}
		return newC, true
	}
	return n.rmw(key, wireReq{op: rpcOpCAS, key: key, expect: expect, value: newVal}, compute)
}

// FetchAndAdd atomically adds delta to the counter stored under key (8-byte
// big-endian; a missing value counts from 0) and returns the previous value.
// The addition happens at the key's serialization point, so hot contended
// counters cost one exchange per op, not a CAS retry loop over the wire.
func (n *Node) FetchAndAdd(key uint64, delta uint64) (old uint64, err error) {
	var decErr error
	compute := func(cur []byte) ([]byte, bool) {
		v, derr := DecodeCounter(cur)
		if derr != nil {
			decErr = derr
			return nil, false
		}
		return EncodeCounter(v + delta), true
	}
	w, applied, err := n.rmw(key, wireReq{op: rpcOpFAA, key: key, delta: delta}, compute)
	if err != nil {
		return 0, err
	}
	if !applied {
		// compute declined — the stored value is not a counter. A local
		// decline recorded the decode error; a remote one answered with the
		// witness, which reproduces it.
		if decErr != nil {
			return 0, decErr
		}
		if _, derr := DecodeCounter(w); derr != nil {
			return 0, derr
		}
		return 0, fmt.Errorf("cluster: fetch-and-add declined unexpectedly (key %d)", key)
	}
	return DecodeCounter(w)
}

// rmw routes one read-modify-write to key's serialization point and executes
// it there, retrying only on answers that prove the op did not run (Retry
// bounces, local refusals). req names the op for remote execution; compute
// is its local form (also used origin-side to build the committed value of a
// stamped replicated RMW).
func (n *Node) rmw(key uint64, req wireReq, compute func([]byte) ([]byte, bool)) (witness []byte, applied bool, err error) {
	c := n.cluster
	for attempt := 0; ; attempt++ {
		if attempt > frozenRetryLimit {
			return nil, false, ErrFrozenRetriesExhausted
		}
		view := c.view.Load()
		if n.cache != nil && n.cache.Contains(key) {
			coord := c.rmwCoordinator(key, view)
			if coord < 0 {
				return nil, false, homeDownErr(c.HomeNode(key), key)
			}
			var retry bool
			if coord == int(n.id) {
				witness, applied, retry, err = n.rmwLocalHot(key, compute)
			} else {
				n.RemoteOps.Add(1)
				witness, applied, retry, err = n.rmwRemote(uint8(coord), key, req, compute)
			}
			if err != nil || !retry {
				return witness, applied, err
			}
			yield()
			continue
		}
		if n.cache != nil {
			n.CacheMisses.Add(1)
		}
		if c.replicated() {
			primary := c.primaryFor(key, view)
			if primary < 0 {
				return nil, false, homeDownErr(c.HomeNode(key), key)
			}
			var retry bool
			if primary == int(n.id) {
				witness, applied, retry, err = n.rmwLocalReplicated(key, compute, view)
			} else {
				n.RemoteOps.Add(1)
				witness, applied, retry, err = n.rmwRemote(uint8(primary), key, req, compute)
			}
			if err != nil || !retry {
				return witness, applied, err
			}
			yield()
			continue
		}
		home := c.HomeNode(key)
		if home == int(n.id) {
			w, a, retry := n.rmwLocalCold(key, compute)
			if !retry {
				return w, a, nil
			}
			yield()
			continue
		}
		if !view.Live(home) {
			return nil, false, homeDownErr(home, key)
		}
		n.RemoteOps.Add(1)
		witness, applied, retry, err := n.rmwRemote(uint8(home), key, req, compute)
		if err != nil || !retry {
			return witness, applied, err
		}
		yield()
	}
}

// rmwLocalHot executes an RMW at this node's own cache — this node is the
// key's RMW coordinator. retry=true means the attempt proves nothing (entry
// frozen, invalid, write-pending, or the key left the hot set) and the
// caller re-dispatches.
func (n *Node) rmwLocalHot(key uint64, compute func([]byte) ([]byte, bool)) (witness []byte, applied, retry bool, err error) {
	if n.cluster.cfg.Protocol != core.Lin {
		upd, w, applied, err := n.cache.RMWSC(key, compute)
		switch err {
		case nil:
			n.CacheHits.Add(1)
			if applied {
				n.broadcastUpdate(upd)
			}
			return w, applied, false, nil
		case core.ErrFrozen:
			n.FrozenRetries.Add(1)
			return nil, false, true, nil
		case core.ErrMiss:
			return nil, false, true, nil
		default:
			return nil, false, false, err
		}
	}
	// Lin: the ordinary blocking write protocol with the read-compute step
	// fused in under the entry lock (putLin with RMWLinStart for
	// WriteLinStart); a declined compute (failed CAS) stages nothing and
	// answers immediately.
	ch, ok := n.tryRegisterLinWaiter(key)
	if !ok {
		n.WritePendingRetries.Add(1)
		return nil, false, true, nil
	}
	inv, w, applied, err := n.cache.RMWLinStart(key, compute)
	switch err {
	case nil:
		n.CacheHits.Add(1)
		if !applied {
			n.unregisterLinWaiter(key, ch)
			return w, false, false, nil
		}
		n.broadcastInvalidation(inv)
		if v := n.cluster.view.Load(); v.LiveCount() < n.cluster.cfg.Nodes {
			if upd, done := n.cache.RecheckPending(key); done {
				n.completeLinWrite(key, upd)
			}
		}
		upd := <-ch
		n.broadcastUpdate(upd)
		return w, true, false, nil
	case core.ErrInvalid:
		n.unregisterLinWaiter(key, ch)
		n.InvalidRetries.Add(1)
		return nil, false, true, nil
	case core.ErrWritePending:
		n.unregisterLinWaiter(key, ch)
		n.WritePendingRetries.Add(1)
		return nil, false, true, nil
	case core.ErrFrozen:
		n.unregisterLinWaiter(key, ch)
		n.FrozenRetries.Add(1)
		return nil, false, true, nil
	case core.ErrMiss:
		n.unregisterLinWaiter(key, ch)
		return nil, false, true, nil
	default:
		n.unregisterLinWaiter(key, ch)
		return nil, false, false, err
	}
}

// rmwLocalCold executes an RMW against this node's own unreplicated shard,
// whole op under homeMu. retry=true reports the key (re)entered the hot set.
func (n *Node) rmwLocalCold(key uint64, compute func([]byte) ([]byte, bool)) (witness []byte, applied, retry bool) {
	wk := n.workerFor(key)
	wk.homeMu.Lock()
	if n.cache != nil && n.cache.Contains(key) {
		wk.homeMu.Unlock()
		n.FrozenRetries.Add(1)
		return nil, false, true
	}
	witness, ts, err := n.kvs.Get(key, nil)
	if err != nil {
		witness, ts = nil, timestamp.TS{}
	}
	newVal, ok := compute(witness)
	if !ok {
		wk.homeMu.Unlock()
		n.LocalOps.Add(1)
		return witness, false, false
	}
	n.kvs.Put(key, newVal, ts.Next(n.id))
	wk.homeMu.Unlock()
	n.LocalOps.Add(1)
	return witness, true, false
}

// rmwLocalReplicated executes an RMW with this node as the key's acting
// primary: read + compute + stamp + pin under homeMu, then drive the
// replicated commit of the computed value origin-side (never holding homeMu
// across the fan-out). retry=true reports a bounce (key went hot, pin held,
// still re-syncing) — the op provably did not run.
func (n *Node) rmwLocalReplicated(key uint64, compute func([]byte) ([]byte, bool), view *View) (witness []byte, applied, retry bool, err error) {
	if n.cluster.syncing.Load() {
		return nil, false, true, nil
	}
	wk := n.workerFor(key)
	wk.homeMu.Lock()
	if n.cache != nil && n.cache.Contains(key) {
		wk.homeMu.Unlock()
		n.FrozenRetries.Add(1)
		return nil, false, true, nil
	}
	if _, pinned := wk.rmwPins[key]; pinned {
		wk.homeMu.Unlock()
		n.WritePendingRetries.Add(1)
		return nil, false, true, nil
	}
	witness, ts, gerr := n.kvs.Get(key, nil)
	if gerr != nil {
		witness, ts = nil, timestamp.TS{}
	}
	newVal, ok := compute(witness)
	if !ok {
		wk.homeMu.Unlock()
		n.LocalOps.Add(1)
		return witness, false, false, nil
	}
	wk.seqMu.Lock()
	clock := wk.seqClocks[key]
	if ts.Clock > clock {
		clock = ts.Clock
	}
	clock++
	wk.seqClocks[key] = clock
	wk.seqMu.Unlock()
	stamp := timestamp.TS{Clock: clock, Writer: n.id}
	wk.rmwPins[key] = rmwPin{origin: n.id, ts: stamp}
	wk.homeMu.Unlock()

	bounced, cerr := n.commitReplicated(key, newVal, stamp, int(n.id), view)
	if bounced {
		// Key went hot mid-commit; the successful local apply never ran, so
		// the pin is still armed — release it and re-execute via the cache.
		n.clearRMWPin(key, stamp)
		n.FrozenRetries.Add(1)
		return nil, false, true, nil
	}
	if cerr != nil {
		// A live backup failed its commit: the value may sit on a minority
		// of replicas. The outcome is unknowable to the caller — surface it,
		// never silently re-run.
		n.clearRMWPin(key, stamp)
		return nil, false, false, fmt.Errorf("%w: replicated commit failed for key %d: %v", ErrRMWUnknown, key, cerr)
	}
	return witness, true, false, nil
}

// clearRMWPin releases key's pin if it still carries ts.
func (n *Node) clearRMWPin(key uint64, ts timestamp.TS) {
	wk := n.workerFor(key)
	wk.homeMu.Lock()
	if pin, ok := wk.rmwPins[key]; ok && pin.ts == ts {
		delete(wk.rmwPins, key)
	}
	wk.homeMu.Unlock()
}

// sendRMWClear releases a pin held at target for an RMW this origin can no
// longer commit. Best-effort: a dead target's pins die with it, a dead
// origin's are cleared by the view change (view.go applyDown).
func (n *Node) sendRMWClear(target uint8, key uint64, ts timestamp.TS) {
	if int(target) == int(n.id) {
		n.clearRMWPin(key, ts)
		return
	}
	_, _ = awaitRPC(n.workerFor(key).rpc.start(target, wireReq{op: rpcOpRMWClear, key: key, ts: ts}))
}

// rmwRemote executes one RMW exchange against target and settles whatever
// protocol continuation the answer names: a stamped replicated RMW commits
// origin-side, a started hot Lin RMW is polled to completion. retry=true
// only for answers proving the op did not run.
func (n *Node) rmwRemote(target uint8, key uint64, req wireReq, compute func([]byte) ([]byte, bool)) (witness []byte, applied, retry bool, err error) {
	c := n.cluster
	res, err := n.workerFor(key).rpc.call(target, req)
	if err != nil {
		// Transport failure mid-exchange: the op may or may not have
		// executed at target. Re-running it could double-apply; surface the
		// uncertainty instead.
		return nil, false, false, fmt.Errorf("%w: key %d at node %d: %v", ErrRMWUnknown, key, target, err)
	}
	switch res.status {
	case rpcStatusOK:
		return res.value, true, false, nil
	case rpcStatusCASFail:
		return res.value, false, false, nil
	case rpcStatusRetry:
		return nil, false, true, nil
	case rpcStatusRMWStamped:
		newVal, ok := compute(res.value)
		if !ok {
			// The server's compute accepted this witness; ours must too —
			// unless the two disagree (a protocol bug). Release the pin and
			// report the witness as a decline.
			n.sendRMWClear(target, key, res.ts)
			return res.value, false, false, nil
		}
		bounced, cerr := n.commitReplicated(key, newVal, res.ts, int(target), c.view.Load())
		if bounced {
			n.sendRMWClear(target, key, res.ts)
			n.FrozenRetries.Add(1)
			return nil, false, true, nil
		}
		if cerr != nil {
			// errReplicaMoved (the stamping primary died) or a live
			// replica's failure: the computed value may already sit on some
			// replicas and win promotion later. Unknown outcome — do NOT
			// restamp and re-run.
			n.sendRMWClear(target, key, res.ts)
			return nil, false, false, fmt.Errorf("%w: replicated commit failed for key %d: %v", ErrRMWUnknown, key, cerr)
		}
		return res.value, true, false, nil
	case rpcStatusRMWStarted:
		// Hot Lin RMW staged at the coordinator: poll until its stamped
		// write is no longer pending — the Lin contract (a write returns
		// only once visible everywhere) stretched over the wire without the
		// server ever holding a response back (credit symmetry).
		for spin := 0; ; spin++ {
			if spin > invalidRetryLimit {
				return nil, false, false, ErrRetriesExhausted
			}
			wres, werr := n.workerFor(key).rpc.call(target, wireReq{op: rpcOpRMWWait, key: key, ts: res.ts})
			if werr != nil {
				// The coordinator died after staging: its invalidations may
				// have landed, the surviving replicas' view change will
				// settle the entry, but whether the RMW's value won is
				// unknowable here.
				return nil, false, false, fmt.Errorf("%w: coordinator %d died mid-rmw for key %d: %v", ErrRMWUnknown, target, key, werr)
			}
			if wres.status == rpcStatusRetry {
				yield()
				continue
			}
			return res.value, true, false, nil
		}
	default:
		return nil, false, false, fmt.Errorf("cluster: rmw failed at node %d (status %d)", target, res.status)
	}
}

// rmwComputeFor builds the server-side compute closure for a decoded RMW
// request. The closure's inputs alias the packet buffer, which is only valid
// while the handler runs — every path below either copies (the cache stages
// and the shard stores by copy) or finishes before returning.
func rmwComputeFor(req rpcRequest) func([]byte) ([]byte, bool) {
	if req.op == rpcOpCAS {
		expect, newVal := req.expect, req.value
		return func(cur []byte) ([]byte, bool) {
			if !bytes.Equal(cur, expect) {
				return nil, false
			}
			return newVal, true
		}
	}
	delta := req.delta
	return func(cur []byte) ([]byte, bool) {
		v, err := DecodeCounter(cur)
		if err != nil {
			return nil, false // origin decodes the witness and surfaces it
		}
		return EncodeCounter(v + delta), true
	}
}

// serveRMW serves one remote CAS/FAA at this node (rpc.go dispatch). Every
// refusal that must re-route (not the serialization point, mid-transition
// entry, pinned key) answers Retry — the one status that proves the op did
// not run, which is what licenses the origin's re-issue.
func (n *Node) serveRMW(src uint8, req rpcRequest, resp []byte) []byte {
	if n.cluster.syncing.Load() {
		return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
	}
	compute := rmwComputeFor(req)
	view := n.cluster.view.Load()
	if n.cache != nil && n.cache.Contains(req.key) {
		if n.cluster.rmwCoordinator(req.key, view) != int(n.id) {
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		if n.cluster.cfg.Protocol == core.Lin {
			return n.serveRMWLin(req, resp, compute)
		}
		upd, w, applied, err := n.cache.RMWSC(req.key, compute)
		if err != nil {
			// Frozen mid-demotion or the key just left the hot set: bounce.
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		if !applied {
			return appendPayloadResponse(resp, req.reqID, rpcStatusCASFail, timestamp.TS{}, w)
		}
		n.broadcastUpdate(upd)
		return appendPayloadResponse(resp, req.reqID, rpcStatusOK, upd.TS, w)
	}
	if n.cluster.replicated() {
		if n.cluster.primaryFor(req.key, view) != int(n.id) {
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		wk := n.workerFor(req.key)
		wk.homeMu.Lock()
		if n.cache != nil && n.cache.Contains(req.key) {
			wk.homeMu.Unlock()
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		if _, pinned := wk.rmwPins[req.key]; pinned {
			wk.homeMu.Unlock()
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
		witness, ts, err := n.kvs.Get(req.key, nil)
		if err != nil {
			witness, ts = nil, timestamp.TS{}
		}
		if _, ok := compute(witness); !ok {
			wk.homeMu.Unlock()
			return appendPayloadResponse(resp, req.reqID, rpcStatusCASFail, timestamp.TS{}, witness)
		}
		wk.seqMu.Lock()
		clock := wk.seqClocks[req.key]
		if ts.Clock > clock {
			clock = ts.Clock
		}
		clock++
		wk.seqClocks[req.key] = clock
		wk.seqMu.Unlock()
		stamp := timestamp.TS{Clock: clock, Writer: n.id}
		wk.rmwPins[req.key] = rmwPin{origin: src, ts: stamp}
		wk.homeMu.Unlock()
		// Nothing applied here: the origin recomputes the value from the
		// witness and drives the three-phase commit; this node applies in
		// phase 3 (primary last), which also clears the pin.
		return appendPayloadResponse(resp, req.reqID, rpcStatusRMWStamped, stamp, witness)
	}
	if n.cluster.HomeNode(req.key) != int(n.id) {
		return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
	}
	wk := n.workerFor(req.key)
	wk.homeMu.Lock()
	if n.cache != nil && n.cache.Contains(req.key) {
		wk.homeMu.Unlock()
		return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
	}
	witness, ts, err := n.kvs.Get(req.key, nil)
	if err != nil {
		witness, ts = nil, timestamp.TS{}
	}
	newVal, ok := compute(witness)
	if !ok {
		wk.homeMu.Unlock()
		return appendPayloadResponse(resp, req.reqID, rpcStatusCASFail, timestamp.TS{}, witness)
	}
	n.kvs.Put(req.key, newVal, ts.Next(n.id))
	wk.homeMu.Unlock()
	return appendPayloadResponse(resp, req.reqID, rpcStatusOK, timestamp.TS{}, witness)
}

// serveRMWLin serves a remote hot Lin RMW at the coordinator: stage the
// write under the entry lock, broadcast its invalidation, answer
// rpcStatusRMWStarted immediately (the response cannot wait for acks —
// request/response credit symmetry forbids holding it back), and finish the
// protocol on a goroutine when the last ack lands. The waiter registration
// is what keeps a concurrent local putLin from registering an orphan waiter
// that would steal this write's completion.
func (n *Node) serveRMWLin(req rpcRequest, resp []byte, compute func([]byte) ([]byte, bool)) []byte {
	ch, ok := n.tryRegisterLinWaiter(req.key)
	if !ok {
		return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
	}
	inv, w, applied, err := n.cache.RMWLinStart(req.key, compute)
	if err != nil {
		// Invalid, write-pending, frozen, or the key left the hot set —
		// every case bounces; the origin re-dispatches.
		n.unregisterLinWaiter(req.key, ch)
		return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
	}
	if !applied {
		n.unregisterLinWaiter(req.key, ch)
		return appendPayloadResponse(resp, req.reqID, rpcStatusCASFail, timestamp.TS{}, w)
	}
	go func() {
		upd := <-ch
		n.broadcastUpdate(upd)
	}()
	n.broadcastInvalidation(inv)
	if v := n.cluster.view.Load(); v.LiveCount() < n.cluster.cfg.Nodes {
		if upd, done := n.cache.RecheckPending(req.key); done {
			n.completeLinWrite(req.key, upd)
		}
	}
	return appendPayloadResponse(resp, req.reqID, rpcStatusRMWStarted, inv.TS, w)
}

// serveRMWWait answers a hot Lin RMW completion poll: Retry while the write
// stamped req.ts is still pending at this coordinator, OK once it finished
// (committed, superseded with its update out, or excised with the entry).
func (n *Node) serveRMWWait(req rpcRequest, resp []byte) []byte {
	if n.cache != nil {
		if ts, pending := n.cache.PendingWriteTS(req.key); pending && ts == req.ts {
			return appendStatusOnly(resp, req.reqID, rpcStatusRetry)
		}
	}
	return appendOKResponse(resp, req.reqID, timestamp.TS{}, nil)
}
