// Command cckvs-node runs ONE member of a multi-process ccKVS deployment
// over TCP: a full cluster node — KVS shard, symmetric hot-set cache, the
// Lin/SC consistency protocols, coalesced remote accesses and online
// hot-set reconfiguration — exactly the protocol stack the in-process
// evaluation cluster runs, deployed as a real OS process per node.
//
// Start one process per node with identical -peers/-keys/-cache/-protocol
// settings, then drive the deployment with cmd/cckvs-load (which also
// bootstraps the hot set and can trigger online refreshes):
//
//	cckvs-node -id 0 -listen 127.0.0.1:7000 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	cckvs-node -id 1 -listen 127.0.0.1:7001 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	cckvs-node -id 2 -listen 127.0.0.1:7002 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	cckvs-load -nodes 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -hotset 64 -verify
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig, nil))
}

// run starts one cluster member and serves until stop fires. onReady, when
// non-nil, receives the bound listen address once the node is serving
// (tests start nodes on ephemeral ports and need the real address); it is
// factored out of main so the CLI is testable end to end.
func run(args []string, stdout, stderr io.Writer, stop <-chan os.Signal, onReady func(addr string)) int {
	fs := flag.NewFlagSet("cckvs-node", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id       = fs.Int("id", 0, "node id (0-based, indexes -peers)")
		listen   = fs.String("listen", "", "listen address (default: this node's -peers entry)")
		peerList = fs.String("peers", "127.0.0.1:7000", "comma-separated node addresses for the whole deployment, ordered by node id")
		system   = fs.String("system", "cckvs", "system flavour: cckvs, base, base-erew")
		protocol = fs.String("protocol", "sc", "cache consistency protocol for cckvs: sc or lin")
		keys     = fs.Uint64("keys", 16384, "keyspace size (identical on every node)")
		cache    = fs.Int("cache", 0, "symmetric cache capacity in objects (cckvs; default keys/100)")
		value    = fs.Int("value", 40, "populated value size in bytes")
		workers  = fs.Int("workers", 4, "worker threads per node (cache/KVS/resp banks); MUST be identical on every node — it fixes the fabric thread layout")
		pingIvl  = fs.Duration("ping-interval", 250*time.Millisecond, "membership ping interval (0 disables ping suspicion; broken TCP connections still trigger view changes)")
		pingTo   = fs.Duration("ping-timeout", 0, "silence after which a peer is excised from the membership view (default 6x ping-interval)")
		replicas = fs.Int("replicas", 1, "shard replicas per key (home + ring successors); MUST be identical on every node; 1 = unreplicated")
		pprofAt  = fs.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *workers < 1 || *workers > cluster.MaxWorkersPerNode {
		// A machine-derived default would silently diverge across
		// heterogeneous nodes and hang every cross-node RPC (frames to
		// unregistered threads are dropped); demand an explicit match.
		fmt.Fprintf(stderr, "-workers %d out of range [1,%d]; every node must pass the same value\n",
			*workers, cluster.MaxWorkersPerNode)
		return 2
	}

	peers := strings.Split(*peerList, ",")
	for i := range peers {
		peers[i] = strings.TrimSpace(peers[i])
	}
	if *id < 0 || *id >= len(peers) {
		fmt.Fprintf(stderr, "node id %d out of range for %d peers\n", *id, len(peers))
		return 2
	}

	if *replicas < 1 || *replicas > len(peers) {
		fmt.Fprintf(stderr, "-replicas %d out of range [1,%d]; every node must pass the same value\n",
			*replicas, len(peers))
		return 2
	}

	if *pprofAt != "" {
		srv, addr, err := servePprof(*pprofAt)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "node %d: pprof on http://%s/debug/pprof/\n", *id, addr)
	}

	cfg := cluster.Config{
		Nodes:            len(peers),
		NumKeys:          *keys,
		ValueSize:        *value,
		WorkersPerNode:   *workers,
		PingInterval:     *pingIvl,
		PingTimeout:      *pingTo,
		ReplicasPerShard: *replicas,
	}
	switch *system {
	case "cckvs":
		cfg.System = cluster.CCKVS
		cfg.CacheItems = *cache
		if cfg.CacheItems == 0 {
			cfg.CacheItems = int(*keys / 100)
			if cfg.CacheItems == 0 {
				cfg.CacheItems = 1
			}
		}
		switch *protocol {
		case "sc":
			cfg.Protocol = core.SC
		case "lin":
			cfg.Protocol = core.Lin
		default:
			fmt.Fprintf(stderr, "unknown protocol %q (want sc or lin)\n", *protocol)
			return 2
		}
	case "base":
		cfg.System = cluster.Base
	case "base-erew":
		cfg.System = cluster.BaseEREW
	default:
		fmt.Fprintf(stderr, "unknown system %q (want cckvs, base or base-erew)\n", *system)
		return 2
	}

	bind := *listen
	if bind == "" {
		bind = peers[*id]
	}
	tr, err := fabric.NewTCPTransport(uint8(*id), bind, fabric.NewStats())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	for i, addr := range peers {
		if i != *id {
			tr.AddPeer(uint8(i), addr)
		}
	}
	member, err := cluster.NewMember(cfg, *id, tr, nil)
	if err != nil {
		tr.Close()
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Observability: log every membership view change (node deaths AND
	// rejoins) so a deployment's failure timeline is reconstructible from
	// the logs.
	member.SetViewHandler(func(v *cluster.View) {
		fmt.Fprintf(stderr, "node %d: view epoch %d: %d/%d live (down: %v)\n",
			*id, v.Epoch, v.LiveCount(), len(peers), v.Down())
	})
	// A broken connection to a peer promotes straight to a membership view
	// change: pending and queued RPCs fail, credit budgets shrink, Lin ack
	// waiters recompute and wake, dead-homed keys fail fast. Ping suspicion
	// (-ping-interval) covers hangs TCP cannot see and detects rejoins.
	// Fabric ids past the member range are ephemeral session clients
	// (cckvs-load) — their disconnects are routine, never RPC targets.
	tr.SetPeerDownHandler(func(peer uint8, cause error) {
		if int(peer) >= len(peers) {
			return
		}
		fmt.Fprintf(stderr, "node %d: peer %d down: %v\n", *id, peer, cause)
		member.PeerDown(peer, cause)
	})
	member.Populate()

	fmt.Fprintf(stdout, "node %d/%d: %s serving %d keys (cache %d, workers %d) on %s\n",
		*id, len(peers), systemLabel(cfg), *keys, cfg.CacheItems, member.Config().WorkersPerNode, tr.ListenAddr())
	if onReady != nil {
		onReady(tr.ListenAddr())
	}

	<-stop

	n := member.LocalNode()
	fmt.Fprintf(stdout, "node %d: hits=%d misses=%d local=%d remote=%d\n",
		*id, n.CacheHits.Load(), n.CacheMisses.Load(), n.LocalOps.Load(), n.RemoteOps.Load())
	if err := member.Close(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// servePprof starts the net/http/pprof endpoints on addr in a background
// goroutine and returns the server (Close to stop) and the bound address.
// Profiles expose heap contents and running code, so the listener is
// restricted to loopback — a non-loopback bind is refused, not warned about.
func servePprof(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("-pprof: %w", err)
	}
	if tcp, ok := ln.Addr().(*net.TCPAddr); !ok || !tcp.IP.IsLoopback() {
		ln.Close()
		return nil, "", fmt.Errorf("-pprof %s binds a non-loopback interface; profiles are loopback-only", addr)
	}
	// An explicit mux keeps the profile routes off http.DefaultServeMux —
	// nothing else this process might register can leak onto this port.
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

func systemLabel(cfg cluster.Config) string {
	if cfg.System == cluster.CCKVS {
		return "ccKVS-" + cfg.Protocol.String()
	}
	return cfg.System.String()
}
