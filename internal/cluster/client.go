package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/store"
)

// Client drives a deployment through the session layer: it holds a fabric
// endpoint of its own (a node id outside the server range) and may send any
// request to any node — the black-box abstraction's client. One Client is
// safe for concurrent use by many goroutines; each in-flight request is
// matched to its caller by request id, so a single TCP connection per server
// carries the whole process's traffic.
//
// The connection is pipelined: up to SetPipelineWindow in-flight requests per
// server ride the wire concurrently (callers block for a window slot beyond
// that). Batch/MultiGet/MultiPut pack many operations into one v2 frame, and
// SetAutoBatch transparently coalesces concurrent Get/Put callers into such
// frames — the client edge's version of the fabric's request coalescing.
type Client struct {
	id      uint8
	tr      fabric.Transport
	owns    bool
	nodes   int
	timeout time.Duration
	// trCopies mirrors Cluster.trCopies: the transport serializes packet
	// data during Send, so encode buffers can be pooled and reused.
	trCopies bool

	// winCh[node] is the pipelining window: one slot per in-flight request
	// toward that server. A slot is acquired before a request registers and
	// released exactly once, when its pending entry is removed.
	winCh []chan struct{}

	nextID atomic.Uint64
	// ab, when non-nil, routes Get/Put through per-node auto-batchers.
	ab atomic.Pointer[autoBatchState]

	mu     sync.Mutex
	closed bool
	pend   map[uint64]sessPending
}

type sessPending struct {
	ch   chan sessResult
	node uint8
	// lease marks a batch request: the response payload is staged in a
	// pooled, refcounted buffer that the decoded Results can hand back via
	// Release instead of leaving it to the garbage collector.
	lease bool
}

type sessResult struct {
	status  byte
	payload []byte
	lease   *respLease
	err     error
}

// respLease refcounts one pooled response-payload buffer. Every Result
// decoded out of the buffer holds one reference; the exchange that received
// it holds one more until decoding finishes. When the last reference drops
// the buffer returns to the pool for the next response — so a released
// Result's Value must never be read again (enable poisonReleasedBufs to make
// that bug deterministic instead of a silent corruption).
type respLease struct {
	refs atomic.Int32
	buf  []byte
}

var respLeasePool = sync.Pool{New: func() any { return new(respLease) }}

// poisonReleasedBufs scribbles 0xDD over a response buffer the moment its
// last reference drops, turning any use-after-Release into a loud,
// deterministic failure. On by default in -race builds (the debug
// configuration); tests may force it on.
var poisonReleasedBufs = raceBuild

// release drops one reference; nil leases (by-reference transports, where
// the payload needs no pooling) are a no-op.
func (l *respLease) release() {
	if l == nil {
		return
	}
	if l.refs.Add(-1) == 0 {
		if poisonReleasedBufs {
			for i := range l.buf {
				l.buf[i] = 0xDD
			}
		}
		respLeasePool.Put(l)
	}
}

// defaultPipelineWindow bounds in-flight requests per server connection.
const defaultPipelineWindow = 256

// sessChPool recycles completion channels across calls (buffered so a
// completer never blocks on an abandoned call).
var sessChPool = sync.Pool{New: func() any { return make(chan sessResult, 1) }}

// abChPool recycles the auto-batcher's per-op completion channels.
var abChPool = sync.Pool{New: func() any { return make(chan BatchResult, 1) }}

// timerPool recycles timeout timers across calls; pooled timers are always
// stopped and drained.
var timerPool = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return t
}}

// ClientOption configures a Client at construction (NewClient, DialTCP).
type ClientOption func(*Client)

// WithPipelineWindow bounds the in-flight requests per server connection
// (default 256): callers beyond the window block until a slot frees.
func WithPipelineWindow(w int) ClientOption {
	return func(cl *Client) { cl.setPipelineWindow(w) }
}

// WithAutoBatch routes the client's Get/Put calls through per-node
// auto-batchers: concurrent operations are coalesced into one batch frame,
// flushed when maxOps accumulate or the armed delay passes since the batch
// opened, whichever comes first — the client edge's version of the fabric's
// request coalescing. maxDelay (default 200µs) is a ceiling, not a fixed
// delay: the armed delay adapts to load, collapsing toward maxDelay/16 when
// recent batches ran near empty and widening back as they fill (a lone
// caller skips the timer entirely). Callers still observe per-op results
// and errors; batching only changes the framing.
func WithAutoBatch(maxOps int, maxDelay time.Duration) ClientOption {
	return func(cl *Client) { cl.setAutoBatch(maxOps, maxDelay) }
}

// WithTimeout bounds each call (default 10s).
func WithTimeout(d time.Duration) ClientOption {
	return func(cl *Client) { cl.timeout = d }
}

// NewClient attaches a client with fabric id to an existing transport —
// typically the ChanTransport of an in-process cluster (tests) — serving a
// deployment of nodes servers. id must not collide with any server node id.
func NewClient(id uint8, nodes int, tr fabric.Transport, opts ...ClientOption) *Client {
	cl := &Client{
		id:      id,
		tr:      tr,
		nodes:   nodes,
		timeout: 10 * time.Second,
		pend:    map[uint64]sessPending{},
	}
	if ct, ok := tr.(interface{ SendCopiesData() bool }); ok {
		cl.trCopies = ct.SendCopiesData()
	}
	cl.winCh = make([]chan struct{}, nodes)
	for i := range cl.winCh {
		cl.winCh[i] = make(chan struct{}, defaultPipelineWindow)
	}
	for _, opt := range opts {
		opt(cl)
	}
	tr.Register(fabric.Addr{Node: id, Thread: threadSession}, cl.onResponse)
	return cl
}

// DialTCP connects a client to a multi-process deployment: peers lists the
// server listen addresses indexed by node id. The client owns its transport
// (an ephemeral loopback listener for the return route) and fails pending
// calls to a server the moment its connection drops.
func DialTCP(id uint8, peers []string, opts ...ClientOption) (*Client, error) {
	tr, err := fabric.NewTCPTransport(id, "127.0.0.1:0", fabric.NewStats())
	if err != nil {
		return nil, err
	}
	cl := NewClient(id, len(peers), tr, opts...)
	cl.owns = true
	for i, addr := range peers {
		tr.AddPeer(uint8(i), addr)
	}
	tr.SetPeerDownHandler(func(node uint8, cause error) {
		cl.failNode(node, fmt.Errorf("%w: server node %d connection lost: %v", ErrNodeUnreachable, node, cause))
	})
	return cl, nil
}

// SetTimeout bounds each call (default 10s).
func (cl *Client) SetTimeout(d time.Duration) { cl.timeout = d }

// SetPipelineWindow resizes the pipelining window after construction.
//
// Deprecated: pass WithPipelineWindow to NewClient/DialTCP — resizing a live
// client does not migrate slots held by in-flight requests.
func (cl *Client) SetPipelineWindow(w int) { cl.setPipelineWindow(w) }

func (cl *Client) setPipelineWindow(w int) {
	if w < 1 {
		w = 1
	}
	for i := range cl.winCh {
		cl.winCh[i] = make(chan struct{}, w)
	}
}

// SetAutoBatch reconfigures auto-batching after construction. maxOps <= 1
// disables it (any buffered operations are flushed).
//
// Deprecated: pass WithAutoBatch to NewClient/DialTCP; keep SetAutoBatch for
// the disable case or mid-life reconfiguration.
func (cl *Client) SetAutoBatch(maxOps int, maxDelay time.Duration) {
	cl.setAutoBatch(maxOps, maxDelay)
}

func (cl *Client) setAutoBatch(maxOps int, maxDelay time.Duration) {
	var next *autoBatchState
	if maxOps > 1 {
		if maxDelay <= 0 {
			maxDelay = 200 * time.Microsecond
		}
		if maxOps > sessBatchMaxOps {
			maxOps = sessBatchMaxOps
		}
		floor := maxDelay / 16
		if floor < time.Microsecond {
			floor = time.Microsecond
		}
		if floor > maxDelay {
			floor = maxDelay
		}
		next = &autoBatchState{per: make([]*autoBatch, cl.nodes)}
		for i := range next.per {
			a := &autoBatch{cl: cl, node: uint8(i), maxOps: maxOps, delay: maxDelay, floor: floor}
			a.timer = time.AfterFunc(time.Hour, a.flushTimed)
			a.timer.Stop()
			next.per[i] = a
		}
	}
	if old := cl.ab.Swap(next); old != nil {
		old.flush()
	}
}

// NumNodes returns the deployment size the client was built for.
func (cl *Client) NumNodes() int { return cl.nodes }

// Close fails every pending call and, if the client owns its transport,
// closes it. Operations buffered in an auto-batcher complete with
// ErrClientClosed.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	pend := cl.pend
	cl.pend = map[uint64]sessPending{}
	cl.mu.Unlock()
	for _, p := range pend {
		p.ch <- sessResult{err: ErrClientClosed}
		cl.releaseSlot(p.node)
	}
	// Flush after the closed flag is visible: the flush's batch calls fail
	// fast with ErrClientClosed, completing every buffered operation.
	if st := cl.ab.Load(); st != nil {
		st.flush()
	}
	if cl.owns {
		return cl.tr.Close()
	}
	return nil
}

// onResponse completes the pending call named by the response's request id.
func (cl *Client) onResponse(p fabric.Packet) {
	if len(p.Data) < 9 {
		return
	}
	id := binary.LittleEndian.Uint64(p.Data[:8])
	cl.mu.Lock()
	pd, ok := cl.pend[id]
	if ok {
		delete(cl.pend, id)
	}
	cl.mu.Unlock()
	if !ok {
		return // abandoned (timed out) or duplicate; nothing waits
	}
	res := sessResult{status: p.Data[8]}
	switch {
	case !cl.trCopies:
		// By-reference transport: the server builds a fresh response buffer
		// per reply (it only pools encode buffers on copying transports), so
		// the payload is ours to alias — the zero-copy receive path.
		res.payload = p.Data[9:]
	case pd.lease:
		// Copying transport, batch request: stage the payload in a pooled
		// refcounted buffer. The decoded Results inherit references and the
		// caller returns the buffer via Release.
		l := respLeasePool.Get().(*respLease)
		l.refs.Store(1)
		l.buf = append(l.buf[:0], p.Data[9:]...)
		res.payload = l.buf
		res.lease = l
	default:
		// Copying transport, point op: the packet buffer is reused after
		// this handler and the caller may hold the value forever, so copy
		// into a buffer the garbage collector owns.
		res.payload = append([]byte(nil), p.Data[9:]...)
	}
	pd.ch <- res
	cl.releaseSlot(pd.node)
}

// failNode fails every pending call addressed to node (peer-down handling).
func (cl *Client) failNode(node uint8, err error) {
	cl.mu.Lock()
	var chs []chan sessResult
	for id, p := range cl.pend {
		if p.node == node {
			delete(cl.pend, id)
			chs = append(chs, p.ch)
		}
	}
	cl.mu.Unlock()
	for _, ch := range chs {
		ch <- sessResult{err: err}
		cl.releaseSlot(node)
	}
}

// acquireSlot blocks until the node's pipelining window has room.
func (cl *Client) acquireSlot(node uint8) {
	if int(node) < len(cl.winCh) {
		cl.winCh[node] <- struct{}{}
	}
}

// releaseSlot returns a window slot; called exactly once per removed pending
// entry (completion, node failure, timeout, close).
func (cl *Client) releaseSlot(node uint8) {
	if int(node) < len(cl.winCh) {
		<-cl.winCh[node]
	}
}

// take removes a pending call (send failure or timeout), reporting whether
// this caller won the race against a concurrent completer. The winner owns
// the completion channel.
func (cl *Client) take(id uint64) bool {
	cl.mu.Lock()
	p, ok := cl.pend[id]
	if ok {
		delete(cl.pend, id)
	}
	cl.mu.Unlock()
	if ok {
		cl.releaseSlot(p.node)
	}
	return ok
}

// newFrame returns an encode buffer for one request frame: pooled when the
// transport copies on send, fresh otherwise (a by-reference transport keeps
// the buffer alive past Send).
func (cl *Client) newFrame(capHint int) ([]byte, *srvBuf) {
	if cl.trCopies {
		p := respBufPool.Get().(*srvBuf)
		return p.b[:0], p
	}
	return make([]byte, 0, capHint), nil
}

// exchange sends one encoded request frame to node and waits for its
// response or the timeout. It owns the frame: pooled buffers are recycled
// once the transport is done with them. wantLease asks onResponse to stage
// the payload in a pooled refcounted buffer (batch path); a timed-out
// exchange abandons its channel, so a lease parked there falls to the
// garbage collector rather than the pool — safe, just unrecycled.
func (cl *Client) exchange(node uint8, id uint64, frame []byte, pooled *srvBuf, timeout time.Duration, wantLease bool) (sessResult, error) {
	cl.acquireSlot(node)
	ch := sessChPool.Get().(chan sessResult)
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		cl.releaseSlot(node)
		sessChPool.Put(ch)
		if pooled != nil {
			pooled.b = frame
			respBufPool.Put(pooled)
		}
		return sessResult{}, ErrClientClosed
	}
	cl.pend[id] = sessPending{ch: ch, node: node, lease: wantLease}
	cl.mu.Unlock()

	err := cl.tr.Send(fabric.Packet{
		Src:   fabric.Addr{Node: cl.id, Thread: threadSession},
		Dst:   fabric.Addr{Node: node, Thread: threadSession},
		Class: metrics.ClassCacheMiss,
		Data:  frame,
	})
	if pooled != nil {
		pooled.b = frame
		respBufPool.Put(pooled)
	}
	if err != nil {
		if cl.take(id) {
			sessChPool.Put(ch)
		}
		return sessResult{}, fmt.Errorf("%w: node %d: %v", ErrNodeUnreachable, node, err)
	}
	t := timerPool.Get().(*time.Timer)
	t.Reset(timeout)
	select {
	case res := <-ch:
		if !t.Stop() {
			<-t.C
		}
		timerPool.Put(t)
		sessChPool.Put(ch)
		if res.err != nil {
			return sessResult{}, res.err
		}
		return res, nil
	case <-t.C:
		timerPool.Put(t)
		if cl.take(id) {
			sessChPool.Put(ch)
		}
		// Losing the take race means a completer owns ch; it is buffered, so
		// the completer never blocks — the channel is simply abandoned.
		return sessResult{}, fmt.Errorf("%w (node %d)", ErrSessionTimeout, node)
	}
}

// mapStatus converts a frame-level response status into its typed error.
func (cl *Client) mapStatus(node uint8, res sessResult) error {
	switch res.status {
	case sessStatusErr:
		return fmt.Errorf("cluster: node %d: %s", node, sessErrorText(res.payload))
	case sessStatusBad:
		return fmt.Errorf("cluster: node %d rejected session request (bad request)", node)
	case sessStatusHomeDown:
		return fmt.Errorf("node %d reports %w", node, ErrHomeDown)
	}
	return nil
}

// call sends one framed session request to node and waits for its response
// or the default timeout.
func (cl *Client) call(node uint8, op byte, body []byte) (sessResult, error) {
	return cl.callT(node, op, body, cl.timeout)
}

// callT is call with an explicit per-request timeout (ready probes poll
// fast; epoch changes get extra room).
func (cl *Client) callT(node uint8, op byte, body []byte, timeout time.Duration) (sessResult, error) {
	id := cl.nextID.Add(1)
	frame, pooled := cl.newFrame(sessHeader + len(body))
	frame = append(frame, op)
	frame = binary.LittleEndian.AppendUint64(frame, id)
	frame = append(frame, body...)
	res, err := cl.exchange(node, id, frame, pooled, timeout, false)
	if err != nil {
		return sessResult{}, err
	}
	if err := cl.mapStatus(node, res); err != nil {
		return sessResult{}, err
	}
	return res, nil
}

// sessErrorText decodes the message of a sessStatusErr payload.
func sessErrorText(payload []byte) string {
	if len(payload) < 4 {
		return "(no message)"
	}
	n := int(binary.LittleEndian.Uint32(payload[:4]))
	if n < 0 || len(payload) < 4+n {
		return "(truncated message)"
	}
	return string(payload[4 : 4+n])
}

// Ping checks that node answers session requests.
func (cl *Client) Ping(node int) error {
	_, err := cl.call(uint8(node), sessOpPing, nil)
	return err
}

// WaitReady pings every node until all answer or the deadline passes — the
// barrier a load generator runs before traffic, so racing a deployment's
// startup cannot be mistaken for a protocol failure.
func (cl *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for node := 0; node < cl.nodes; node++ {
		for {
			_, err := cl.callT(uint8(node), sessOpPing, nil, 500*time.Millisecond)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster: node %d not ready after %v: %w", node, timeout, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

// Get reads key through node's session layer (any node serves any key).
// Absent keys return store.ErrNotFound. With auto-batching enabled the
// operation rides a shared batch frame.
func (cl *Client) Get(node int, key uint64) ([]byte, error) {
	if st := cl.ab.Load(); st != nil && node >= 0 && node < len(st.per) {
		r := st.per[node].do(BatchOp{Key: key})
		return r.Value, r.Err
	}
	id := cl.nextID.Add(1)
	frame, pooled := cl.newFrame(sessHeader + 8)
	frame = append(frame, sessOpGet)
	frame = binary.LittleEndian.AppendUint64(frame, id)
	frame = binary.LittleEndian.AppendUint64(frame, key)
	res, err := cl.exchange(uint8(node), id, frame, pooled, cl.timeout, false)
	if err != nil {
		return nil, err
	}
	if res.status == sessStatusNotFound {
		return nil, store.ErrNotFound
	}
	if err := cl.mapStatus(uint8(node), res); err != nil {
		return nil, err
	}
	return decodeGetValue(node, res.payload)
}

// decodeGetValue unwraps a served get's vlen-framed payload.
func decodeGetValue(node int, payload []byte) ([]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("cluster: malformed get response from node %d", node)
	}
	vlen := int(binary.LittleEndian.Uint32(payload[:4]))
	if vlen < 0 || len(payload) < 4+vlen {
		return nil, fmt.Errorf("cluster: truncated get response from node %d", node)
	}
	return payload[4 : 4+vlen], nil
}

// Put writes key through node's session layer. With auto-batching enabled
// the operation rides a shared batch frame.
func (cl *Client) Put(node int, key uint64, value []byte) error {
	if st := cl.ab.Load(); st != nil && node >= 0 && node < len(st.per) {
		return st.per[node].do(BatchOp{Put: true, Key: key, Value: value}).Err
	}
	id := cl.nextID.Add(1)
	frame, pooled := cl.newFrame(sessHeader + 12 + len(value))
	frame = append(frame, sessOpPut)
	frame = binary.LittleEndian.AppendUint64(frame, id)
	frame = binary.LittleEndian.AppendUint64(frame, key)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(value)))
	frame = append(frame, value...)
	res, err := cl.exchange(uint8(node), id, frame, pooled, cl.timeout, false)
	if err != nil {
		return err
	}
	return cl.mapStatus(uint8(node), res)
}

// CompareAndSwap atomically replaces key's value with newVal iff the stored
// value equals expect (nil/empty expect matches a missing key). It executes
// exactly once at the key's serialization point in the cluster; witness is
// the value the comparison observed, so a failed CAS needs no extra read
// before retrying. A transport failure mid-op server-side surfaces as an
// error naming the unknown outcome (ErrRMWUnknown at the node API) — the op
// may or may not have applied, and neither the server nor this client will
// guess by re-running it.
func (cl *Client) CompareAndSwap(node int, key uint64, expect, newVal []byte) (witness []byte, swapped bool, err error) {
	if st := cl.ab.Load(); st != nil && node >= 0 && node < len(st.per) {
		r := st.per[node].do(Op{Kind: OpCAS, Key: key, Expect: expect, Value: newVal})
		if errors.Is(r.Err, ErrCASMismatch) {
			return r.Value, false, nil
		}
		return r.Value, r.Err == nil, r.Err
	}
	id := cl.nextID.Add(1)
	frame, pooled := cl.newFrame(sessHeader + 16 + len(expect) + len(newVal))
	frame = append(frame, sessOpCAS)
	frame = binary.LittleEndian.AppendUint64(frame, id)
	frame = binary.LittleEndian.AppendUint64(frame, key)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(expect)))
	frame = append(frame, expect...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(newVal)))
	frame = append(frame, newVal...)
	res, err := cl.exchange(uint8(node), id, frame, pooled, cl.timeout, false)
	if err != nil {
		return nil, false, err
	}
	if res.status == sessStatusCASFail {
		w, derr := decodeGetValue(node, res.payload)
		return w, false, derr
	}
	if err := cl.mapStatus(uint8(node), res); err != nil {
		return nil, false, err
	}
	w, derr := decodeGetValue(node, res.payload)
	return w, derr == nil, derr
}

// FetchAndAdd atomically adds delta to the 8-byte big-endian counter stored
// under key (a missing key counts from 0 — see EncodeCounter) and returns
// the pre-add value. The addition happens server-side at the key's
// serialization point: a hot contended counter costs one exchange per op
// instead of a CAS retry loop over the wire.
func (cl *Client) FetchAndAdd(node int, key uint64, delta uint64) (old uint64, err error) {
	if st := cl.ab.Load(); st != nil && node >= 0 && node < len(st.per) {
		r := st.per[node].do(Op{Kind: OpFAA, Key: key, Delta: delta})
		if r.Err != nil {
			return 0, r.Err
		}
		return DecodeCounter(r.Value)
	}
	id := cl.nextID.Add(1)
	frame, pooled := cl.newFrame(sessHeader + 16)
	frame = append(frame, sessOpFAA)
	frame = binary.LittleEndian.AppendUint64(frame, id)
	frame = binary.LittleEndian.AppendUint64(frame, key)
	frame = binary.LittleEndian.AppendUint64(frame, delta)
	res, err := cl.exchange(uint8(node), id, frame, pooled, cl.timeout, false)
	if err != nil {
		return 0, err
	}
	if err := cl.mapStatus(uint8(node), res); err != nil {
		return 0, err
	}
	v, derr := decodeGetValue(node, res.payload)
	if derr != nil {
		return 0, derr
	}
	return DecodeCounter(v)
}

// OpKind names one of the session layer's operations.
type OpKind uint8

const (
	OpGet OpKind = iota
	OpPut
	// OpCAS compares the stored value to Expect and, on a match, atomically
	// replaces it with Value. nil/empty Expect matches a missing key.
	OpCAS
	// OpFAA atomically adds Delta to the 8-byte big-endian counter stored
	// under Key (a missing key counts from 0) — see EncodeCounter.
	OpFAA
)

// Op is one operation of the unified client surface: Batch, MultiGet,
// MultiPut, the RMW calls and the auto-batcher all speak it. Zero value is a
// get of Key. The legacy Put flag (from the original get/put-only BatchOp)
// is honored when Kind is OpGet — existing callers keep compiling and
// working unchanged.
type Op struct {
	Kind OpKind
	// Put is the deprecated pre-Kind way to mark a put.
	//
	// Deprecated: set Kind to OpPut instead.
	Put    bool
	Key    uint64
	Value  []byte // put/cas: the (replacement) value
	Expect []byte // cas only: the expected current value
	Delta  uint64 // faa only
}

// EffectiveKind returns the op's kind with the legacy Put flag honored —
// what the op will execute as.
func (o *Op) EffectiveKind() OpKind {
	if o.Kind == OpGet && o.Put {
		return OpPut
	}
	return o.Kind
}

func (o *Op) kind() OpKind { return o.EffectiveKind() }

// Result is one operation's outcome. Value carries the read value (get), the
// witnessed value (cas — on both success and ErrCASMismatch), or the 8-byte
// pre-add counter (faa). Err is the per-op error: store.ErrNotFound for
// absent keys, ErrCASMismatch for a failed comparison, a wrapped ErrHomeDown
// when the key's home left the view, ErrNodeUnreachable / ErrSessionTimeout /
// ErrClientClosed when the op's frame failed.
//
// Value ownership: on a copying transport (TCP), a batch Result's Value
// aliases a pooled response buffer shared by the whole frame. Callers that
// are done with Value should call Release so the buffer can be recycled;
// callers that keep values past the batch must take ValueCopy first. Never
// calling Release is always safe — the buffer just falls to the garbage
// collector instead of the pool.
type Result struct {
	Value []byte
	Err   error

	lease    *respLease
	released bool
}

// Release hands Value's backing buffer back to the client's response pool
// (once every Result of the same batch released) and nils Value. Idempotent.
// Reading a previously-taken alias of Value after Release is a
// use-after-free against the pool; -race builds poison the buffer to make
// that deterministic.
func (r *Result) Release() {
	if r.released {
		return
	}
	r.released = true
	l := r.lease
	r.lease = nil
	r.Value = nil
	l.release()
}

// ValueCopy returns a copy of Value that survives Release — the safe default
// for callers that hold values past the batch.
func (r *Result) ValueCopy() []byte {
	if r.Value == nil {
		return nil
	}
	return append([]byte(nil), r.Value...)
}

// BatchOp is the unified Op type's original name.
//
// Deprecated: use Op. The alias keeps existing callers compiling (and costs
// nothing — it is the identical type).
type BatchOp = Op

// BatchResult is the unified Result type's original name.
//
// Deprecated: use Result.
type BatchResult = Result

// opWireSize returns an op's encoded size as a batch entry.
func opWireSize(o *Op) int {
	switch o.kind() {
	case OpPut:
		return 13 + len(o.Value)
	case OpCAS:
		return 17 + len(o.Expect) + len(o.Value)
	case OpFAA:
		return 17
	default:
		return 9
	}
}

// appendBatchEntry encodes one op as a batch entry.
func appendBatchEntry(frame []byte, o *Op) []byte {
	switch o.kind() {
	case OpPut:
		frame = append(frame, sessOpPut)
		frame = binary.LittleEndian.AppendUint64(frame, o.Key)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(o.Value)))
		return append(frame, o.Value...)
	case OpCAS:
		frame = append(frame, sessOpCAS)
		frame = binary.LittleEndian.AppendUint64(frame, o.Key)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(o.Expect)))
		frame = append(frame, o.Expect...)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(o.Value)))
		return append(frame, o.Value...)
	case OpFAA:
		frame = append(frame, sessOpFAA)
		frame = binary.LittleEndian.AppendUint64(frame, o.Key)
		return binary.LittleEndian.AppendUint64(frame, o.Delta)
	default:
		frame = append(frame, sessOpGet)
		return binary.LittleEndian.AppendUint64(frame, o.Key)
	}
}

// Batch executes ops against node in one round trip (chunked transparently
// when a frame would exceed the server's batch limits). The result slice
// always has len(ops), in request order, with per-op outcomes; the error
// return reports the first frame-level failure (unreachable node, timeout) —
// per-op statuses such as an absent key never raise it.
func (cl *Client) Batch(node int, ops []BatchOp) ([]BatchResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	rs := make([]BatchResult, len(ops))
	var firstErr error
	dead := false
	start := 0
	bytes := 4
	for i := 0; i <= len(ops); i++ {
		need := 0
		if i < len(ops) {
			need = opWireSize(&ops[i])
		}
		full := i-start >= sessBatchMaxOps || (i > start && bytes+need > sessBatchMaxBytes)
		if i == len(ops) || full {
			if dead {
				// An earlier chunk of this call already proved the node
				// unreachable (or timed out waiting on it): fail the rest
				// immediately instead of burning one full timeout per
				// remaining chunk against the same dead connection.
				for j := start; j < i; j++ {
					rs[j] = BatchResult{Err: firstErr}
				}
			} else if err := cl.batchChunk(node, ops[start:i], rs[start:i]); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				if errors.Is(err, ErrNodeUnreachable) || errors.Is(err, ErrSessionTimeout) {
					dead = true
				}
			}
			start = i
			bytes = 4
		}
		bytes += need
	}
	return rs, firstErr
}

// batchChunk sends one batch frame and decodes its results in place. A
// frame-level failure is both returned and fanned out to every op of the
// chunk, so callers that only look at per-op results still observe it.
func (cl *Client) batchChunk(node int, ops []BatchOp, rs []BatchResult) error {
	id := cl.nextID.Add(1)
	size := sessHeader + 4
	for i := range ops {
		size += opWireSize(&ops[i])
	}
	frame, pooled := cl.newFrame(size)
	frame = append(frame, sessOpBatch)
	frame = binary.LittleEndian.AppendUint64(frame, id)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(ops)))
	for i := range ops {
		frame = appendBatchEntry(frame, &ops[i])
	}
	res, err := cl.exchange(uint8(node), id, frame, pooled, cl.timeout, true)
	if err == nil {
		err = cl.mapStatus(uint8(node), res)
	}
	if err == nil {
		err = cl.decodeBatch(node, ops, rs, res.payload, res.lease)
		res.lease.release() // value-bearing Results hold their own refs now
		if err == nil {
			return nil
		}
	} else {
		res.lease.release()
	}
	for i := range rs {
		rs[i] = BatchResult{Err: err}
	}
	return err
}

// decodeBatch unpacks a batch response's per-op entries into rs. The request
// ops disambiguate bare-OK puts from value-framed gets/RMWs. lease, when
// non-nil, is the pooled buffer backing payload: every value-bearing Result
// takes one reference on it (released by the caller via Result.Release).
func (cl *Client) decodeBatch(node int, ops []Op, rs []Result, payload []byte, lease *respLease) error {
	malformed := func() error {
		// Unwind the references handed to already-decoded Results: the caller
		// overwrites rs wholesale on a decode error.
		for j := range rs {
			if rs[j].lease != nil {
				rs[j].lease.release()
				rs[j].lease = nil
				rs[j].Value = nil
			}
		}
		return fmt.Errorf("cluster: malformed batch response from node %d", node)
	}
	if len(payload) < 4 || int(binary.LittleEndian.Uint32(payload[:4])) != len(ops) {
		return malformed()
	}
	buf := payload[4:]
	for i := range ops {
		if len(buf) < 1 {
			return malformed()
		}
		status := buf[0]
		buf = buf[1:]
		switch status {
		case sessStatusOK, sessStatusCASFail:
			if ops[i].kind() == OpPut {
				break // bare status, no payload
			}
			if len(buf) < 4 {
				return malformed()
			}
			vlen := int(binary.LittleEndian.Uint32(buf[:4]))
			if vlen < 0 || len(buf) < 4+vlen {
				return malformed()
			}
			rs[i].Value = buf[4 : 4+vlen]
			if lease != nil {
				lease.refs.Add(1)
				rs[i].lease = lease
			}
			buf = buf[4+vlen:]
			if status == sessStatusCASFail {
				rs[i].Err = ErrCASMismatch
			}
		case sessStatusNotFound:
			rs[i].Err = store.ErrNotFound
		case sessStatusHomeDown:
			rs[i].Err = fmt.Errorf("node %d reports %w", node, ErrHomeDown)
		case sessStatusErr:
			if len(buf) < 4 {
				return malformed()
			}
			mlen := int(binary.LittleEndian.Uint32(buf[:4]))
			if mlen < 0 || len(buf) < 4+mlen {
				return malformed()
			}
			rs[i].Err = fmt.Errorf("cluster: node %d: %s", node, string(buf[4:4+mlen]))
			buf = buf[4+mlen:]
		default:
			rs[i].Err = fmt.Errorf("cluster: node %d: unexpected batch op status %d", node, status)
		}
	}
	return nil
}

// MultiGet reads keys through node in one batched round trip. values[i] is
// nil when keys[i] is absent; the first hard failure is returned after the
// whole batch settled — same contract as Node.MultiGet.
func (cl *Client) MultiGet(node int, keys []uint64) ([][]byte, error) {
	ops := make([]BatchOp, len(keys))
	for i, k := range keys {
		ops[i].Key = k
	}
	rs, firstErr := cl.Batch(node, ops)
	out := make([][]byte, len(keys))
	for i := range rs {
		switch {
		case rs[i].Err == nil:
			out[i] = rs[i].Value
		case errors.Is(rs[i].Err, store.ErrNotFound):
			// absent: out[i] stays nil
		default:
			if firstErr == nil {
				firstErr = rs[i].Err
			}
		}
	}
	return out, firstErr
}

// MultiPut writes keys[i]=values[i] through node in one batched round trip,
// returning the first failure after the whole batch settled.
func (cl *Client) MultiPut(node int, keys []uint64, values [][]byte) error {
	ops := make([]BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = BatchOp{Put: true, Key: k, Value: values[i]}
	}
	rs, firstErr := cl.Batch(node, ops)
	for i := range rs {
		if rs[i].Err != nil && firstErr == nil {
			firstErr = rs[i].Err
		}
	}
	return firstErr
}

// autoBatchState is one SetAutoBatch configuration: a batcher per server.
type autoBatchState struct {
	per []*autoBatch
}

// flush forces out whatever every batcher buffered.
func (st *autoBatchState) flush() {
	for _, a := range st.per {
		a.flushTimed()
	}
}

// autoBatch coalesces concurrent Get/Put callers toward one server into
// batch frames: the first op of a batch arms the flush timer, the maxOps-th
// flushes inline on its caller.
//
// The flush delay is load-adaptive. Arming the configured maximum delay
// regardless of load taxes light traffic with latency it gets nothing for,
// while a tiny fixed delay starves heavy traffic of coalescing. Instead the
// batcher tracks an EWMA of how full recent flushes ran (fill, per-mille of
// maxOps) and arms delay = floor + fill·(max−floor)/1000: near-empty flushes
// collapse the delay to floor (≈max/16), well-fed flushes widen it back
// toward the configured maximum. A lone caller still flushes inline —
// no timer at all — so sequential workloads pay nothing.
type autoBatch struct {
	cl     *Client
	node   uint8
	maxOps int
	delay  time.Duration // configured ceiling (WithAutoBatch maxDelay)
	floor  time.Duration // minimum armed delay (delay/16, at least 1µs)

	// inflight counts callers currently inside do() toward this node. A lone
	// caller (inflight == 1) flushes inline instead of arming the delay: with
	// nobody else around to join the batch, the timer bought no coalescing —
	// it just taxed every sequential op with the full flush delay.
	inflight atomic.Int32

	// fill is the EWMA of flush fill ratio in per-mille of maxOps,
	// fill ← 7/8·fill + 1/8·latest, updated at every flush.
	fill atomic.Int32

	mu    sync.Mutex
	ops   []BatchOp
	chs   []chan BatchResult
	timer *time.Timer
}

// armDelay returns the load-adaptive flush delay to arm for a new batch:
// the larger of the fill EWMA (how full recent batches ran) and the
// instantaneous caller pressure (how many callers are in do() right now)
// scales the delay between floor and ceiling. The pressure term matters on
// the first batches of a burst, before the EWMA has learned anything —
// without it a cold batcher arms the floor, fragments the burst into
// partial flushes, and pays per-frame overhead exactly when coalescing
// is worth the most.
func (a *autoBatch) armDelay() time.Duration {
	f := int32(int(a.inflight.Load()) * 1000 / a.maxOps)
	if ew := a.fill.Load(); ew > f {
		f = ew
	}
	if f > 1000 {
		f = 1000
	}
	return a.floor + time.Duration(f)*(a.delay-a.floor)/1000
}

// noteFill folds one flush's fill ratio into the EWMA.
func (a *autoBatch) noteFill(n int) {
	fill := int32(n * 1000 / a.maxOps)
	if fill > 1000 {
		fill = 1000
	}
	f := a.fill.Load()
	a.fill.Store(f - f/8 + fill/8)
}

// do enqueues one operation and blocks for its result.
func (a *autoBatch) do(op BatchOp) BatchResult {
	ch := abChPool.Get().(chan BatchResult)
	alone := a.inflight.Add(1) == 1
	a.mu.Lock()
	a.ops = append(a.ops, op)
	a.chs = append(a.chs, ch)
	if len(a.ops) >= a.maxOps || (alone && len(a.ops) == 1) {
		ops, chs := a.takeLocked()
		a.mu.Unlock()
		a.run(ops, chs)
	} else {
		if len(a.ops) == 1 {
			a.timer.Reset(a.armDelay())
		}
		a.mu.Unlock()
	}
	r := <-ch
	if a.inflight.Add(-1) > 0 {
		a.flushIfStranded()
	}
	abChPool.Put(ch)
	return r
}

// flushIfStranded flushes the buffered batch when every remaining in-flight
// caller is already parked in it: nobody is left to grow the batch toward
// maxOps, so whatever delay is armed buys no coalescing — it is pure added
// latency. Called by each caller as it finishes; callers still between
// their inflight increment and their enqueue make the count exceed the
// buffer and correctly defer the decision to their own flush checks.
func (a *autoBatch) flushIfStranded() {
	a.mu.Lock()
	if len(a.ops) == 0 || int(a.inflight.Load()) > len(a.ops) {
		a.mu.Unlock()
		return
	}
	ops, chs := a.takeLocked()
	a.mu.Unlock()
	a.run(ops, chs)
}

// takeLocked claims the buffered batch; the caller holds a.mu.
func (a *autoBatch) takeLocked() ([]BatchOp, []chan BatchResult) {
	ops, chs := a.ops, a.chs
	a.ops, a.chs = nil, nil
	a.timer.Stop()
	return ops, chs
}

// flushTimed flushes on the timer (or on reconfiguration/close).
func (a *autoBatch) flushTimed() {
	a.mu.Lock()
	ops, chs := a.takeLocked()
	a.mu.Unlock()
	a.run(ops, chs)
}

// run executes one claimed batch and distributes the per-op results.
func (a *autoBatch) run(ops []BatchOp, chs []chan BatchResult) {
	if len(ops) == 0 {
		return
	}
	a.noteFill(len(ops))
	rs, _ := a.cl.Batch(int(a.node), ops)
	for i, ch := range chs {
		ch <- rs[i]
	}
}

// refreshPerKeyT is the per-key deadline slack of a Refresh call: each key
// of the target may be individually frozen, collected, fetched and filled
// across every node of the deployment.
const refreshPerKeyT = 5 * time.Millisecond

// Refresh asks node to reconfigure the deployment's hot set to exactly
// target (an online epoch change driven over the RPC fabric) and reports
// how many keys were promoted and demoted. The deadline scales with the
// size of the requested set: a point-op timeout is far too tight for a
// large epoch change, and a flat multiple of it makes a tiny change wait
// multiples of the base timeout just to report an unreachable node. Use
// RefreshT to bound a call explicitly.
func (cl *Client) Refresh(node int, target []uint64) (promoted, demoted int, err error) {
	return cl.RefreshT(node, target, cl.timeout+time.Duration(len(target))*refreshPerKeyT)
}

// RefreshT is Refresh with an explicit per-call deadline.
func (cl *Client) RefreshT(node int, target []uint64, timeout time.Duration) (promoted, demoted int, err error) {
	body := binary.LittleEndian.AppendUint32(make([]byte, 0, 4+8*len(target)), uint32(len(target)))
	for _, k := range target {
		body = binary.LittleEndian.AppendUint64(body, k)
	}
	res, err := cl.callT(uint8(node), sessOpRefresh, body, timeout)
	if err != nil {
		return 0, 0, err
	}
	if len(res.payload) < 12 {
		return 0, 0, fmt.Errorf("cluster: malformed refresh response from node %d", node)
	}
	return int(binary.LittleEndian.Uint32(res.payload[:4])),
		int(binary.LittleEndian.Uint32(res.payload[4:8])), nil
}

// SessionStats is one node's counters as reported over the session layer.
type SessionStats struct {
	CacheHits, CacheMisses uint64
	LocalOps, RemoteOps    uint64
	HotKeys                uint64
	FrozenRetries          uint64
}

// HitRate returns the node's cache hit ratio.
func (s SessionStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Stats fetches node's operation counters.
func (cl *Client) Stats(node int) (SessionStats, error) {
	res, err := cl.call(uint8(node), sessOpStats, nil)
	if err != nil {
		return SessionStats{}, err
	}
	if len(res.payload) < 48 {
		return SessionStats{}, fmt.Errorf("cluster: malformed stats response from node %d", node)
	}
	return SessionStats{
		CacheHits:     binary.LittleEndian.Uint64(res.payload[0:8]),
		CacheMisses:   binary.LittleEndian.Uint64(res.payload[8:16]),
		LocalOps:      binary.LittleEndian.Uint64(res.payload[16:24]),
		RemoteOps:     binary.LittleEndian.Uint64(res.payload[24:32]),
		HotKeys:       binary.LittleEndian.Uint64(res.payload[32:40]),
		FrozenRetries: binary.LittleEndian.Uint64(res.payload[40:48]),
	}, nil
}
