package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
)

// LocalRMWAblation drives the contended-counter mix's essence — every client
// hammering the same few hot counters with atomic increments — through the
// live cluster's client edge, comparing the two ways to build an increment:
// a client-side CAS loop (read once, then compare-and-swap retrying on the
// witnessed value) against the server-side fetch-and-add, under both cache
// protocols. The server-side op crosses the wire once per increment however
// contended the counter is; the CAS loop pays one extra round trip per lost
// race, so its throughput collapses as contention grows — the gap is the
// table's point. Every row also asserts exact-count convergence: the
// counters must sum to precisely clients x increments on every node, so a
// lost or doubled RMW fails the run rather than skewing a number.
func LocalRMWAblation(incrementsPerClient int) (Table, error) {
	if incrementsPerClient <= 0 {
		incrementsPerClient = 1500
	}
	t := Table{
		ID:      "rmw",
		Title:   "Atomic RMW on the live cluster [3 nodes, ccKVS, 8 clients on 4 hot counters]",
		Columns: []string{"mode", "clients", "throughput incr/s", "speedup", "cas retries"},
	}
	modes := []struct {
		label    string
		protocol core.Protocol
		faa      bool
	}{
		{"cas-loop SC", core.SC, false},
		{"faa SC", core.SC, true},
		{"cas-loop Lin", core.Lin, false},
		{"faa Lin", core.Lin, true},
	}
	var baseline float64
	for _, m := range modes {
		rate, retries, err := runRMWMode(m.protocol, m.faa, incrementsPerClient)
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", m.label, err)
		}
		if baseline == 0 {
			baseline = rate
		}
		t.AddRow(m.label, rmwClients, rate, fmt.Sprintf("%.2fx", rate/baseline), int(retries))
	}
	t.Notes = append(t.Notes,
		"every row verifies exact-count convergence: counters sum to clients x increments on every node",
		"cas retries counts lost races; the witness returned on failure saves the re-read round trip")
	return t, nil
}

const (
	rmwNodes    = 3
	rmwClients  = 8
	rmwCounters = 4
	rmwNumKeys  = 4096
	rmwCacheSz  = 64
)

// runRMWMode stands up a fresh deployment, runs the increment storm in one
// mode and returns the increment rate and the CAS retry count (0 for faa).
func runRMWMode(protocol core.Protocol, faa bool, perClient int) (float64, uint64, error) {
	stats := fabric.NewStats()
	tr := fabric.NewChanTransport(512, stats)
	c, err := cluster.NewWithTransport(cluster.Config{
		Nodes: rmwNodes, System: cluster.CCKVS, Protocol: protocol,
		NumKeys: rmwNumKeys, CacheItems: rmwCacheSz, QueueDepth: 512,
	}, tr, stats)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	c.Populate()
	cl := cluster.NewClient(200, rmwNodes, tr)
	defer cl.Close()

	// Zero the counters (populate wrote 40-byte filler, which is not a
	// counter encoding) and promote them so the RMWs ride the cache path.
	for k := uint64(0); k < rmwCounters; k++ {
		if err := cl.Put(0, k, cluster.EncodeCounter(0)); err != nil {
			return 0, 0, err
		}
	}
	if err := c.InstallHotSet(cluster.DefaultHotSet(rmwCacheSz)); err != nil {
		return 0, 0, err
	}

	var retries atomic.Uint64
	errCh := make(chan error, rmwClients)
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < rmwClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errCh <- rmwClient(cl, id, perClient, faa, &retries)
		}(id)
	}
	wg.Wait()
	dur := time.Since(start)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return 0, 0, err
		}
	}

	want := uint64(rmwClients * perClient)
	if err := awaitCounterTotal(cl, want); err != nil {
		return 0, 0, err
	}
	return float64(want) / dur.Seconds(), retries.Load(), nil
}

// rmwClient issues one goroutine's share of increments, spread round-robin
// over the counters and the nodes (so every serialization role — local
// coordinator, remote origin — is exercised).
func rmwClient(cl *cluster.Client, id, ops int, faa bool, retries *atomic.Uint64) error {
	for i := 0; i < ops; i++ {
		key := uint64((id + i) % rmwCounters)
		node := (id + i) % rmwNodes
		if faa {
			if _, err := cl.FetchAndAdd(node, key, 1); err != nil {
				return err
			}
			continue
		}
		cur, err := cl.Get(node, key)
		if err != nil {
			return err
		}
		for {
			v, err := cluster.DecodeCounter(cur)
			if err != nil {
				return err
			}
			witness, swapped, err := cl.CompareAndSwap(node, key, cur, cluster.EncodeCounter(v+1))
			if err != nil {
				return err
			}
			if swapped {
				break
			}
			retries.Add(1)
			cur = witness // the failure already carried the fresh value
		}
	}
	return nil
}

// awaitCounterTotal polls until every node serves counters summing to want
// (update broadcasts land asynchronously) — the exact-count linearizability
// assertion behind every table row.
func awaitCounterTotal(cl *cluster.Client, want uint64) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		total, err := counterTotal(cl, rmwNodes-1)
		if err == nil && total == want {
			// Every replica, not just one, must have converged.
			for node := 0; node < rmwNodes; node++ {
				if nt, nerr := counterTotal(cl, node); nerr != nil || nt != total {
					err = fmt.Errorf("node %d serves total %d, want %d", node, nt, total)
					break
				}
			}
			if err == nil {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("exact-count check: %w", err)
			}
			return fmt.Errorf("exact-count check: counters sum to %d, want %d (lost or doubled RMW)", total, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// counterTotal sums the counters as served by one node.
func counterTotal(cl *cluster.Client, node int) (uint64, error) {
	var total uint64
	for k := uint64(0); k < rmwCounters; k++ {
		buf, err := cl.Get(node, k)
		if err != nil {
			return 0, err
		}
		v, err := cluster.DecodeCounter(buf)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}
