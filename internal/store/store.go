// Package store implements the MICA-derived in-memory key-value store that
// serves as ccKVS's back-end (EuroSys'18, §6.2).
//
// Data lives in a bucket-chained hash index. Each bucket is protected by a
// seqlock: writers serialize on the bucket spinlock while readers validate a
// version snapshot and retry on interference, so gets are lock-free and never
// starve puts — the concurrency design the paper adopts ("seqlocks allow
// lock-free reads without starving the writes").
//
// The store supports MICA's two thread-partitioning disciplines:
//
//   - CRCW (Concurrent Read Concurrent Write): a single Store shared by all
//     threads; the seqlocks carry the synchronization. ccKVS chooses this
//     mode because it minimizes cross-node connections (§6.2, §6.4).
//   - EREW (Exclusive Read Exclusive Write): a Partitioned store with one
//     partition per thread; each partition is only ever touched by its owner
//     so the seqlocks are uncontended. This is the Base-EREW baseline.
//
// Items carry a version stamped by the caller (the protocol Lamport clock),
// enabling conditional "apply only if newer" writes used when dirty cache
// items are written back to their home shard.
package store

import (
	"errors"
	"sync"

	"repro/internal/seqlock"
	"repro/internal/timestamp"
	"repro/internal/zipf"
)

// Common errors.
var (
	// ErrNotFound is returned by Get for absent keys.
	ErrNotFound = errors.New("store: key not found")
	// ErrStale is returned by PutIfNewer when the stored version is not
	// older than the offered one.
	ErrStale = errors.New("store: stored version is newer")
)

// item is a stored object. The value buffer is allocated per item and only
// mutated in place (never re-sliced) so optimistic readers can copy it and
// rely on seqlock validation to reject torn snapshots.
type item struct {
	key  uint64
	ts   timestamp.TS
	vlen int
	val  []byte
}

// bucket is one hash chain protected by a seqlock.
type bucket struct {
	lock  seqlock.SeqLock
	items []*item
}

// Store is a single KVS partition. The zero value is not usable; call New.
type Store struct {
	buckets []bucket
	mask    uint64
	// count tracks the number of keys; guarded by countMu since it is off
	// the hot path (insertions only).
	countMu sync.Mutex
	count   int
}

// New returns a store sized for roughly expectedKeys items.
func New(expectedKeys int) *Store {
	nb := 16
	for nb < expectedKeys/4 {
		nb <<= 1
	}
	return &Store{buckets: make([]bucket, nb), mask: uint64(nb - 1)}
}

func (s *Store) bucketFor(key uint64) *bucket {
	return &s.buckets[zipf.Mix64(key)&s.mask]
}

// Get copies the value for key into dst (growing it as needed) and returns
// the value, its version timestamp, and nil; or ErrNotFound. The read is
// lock-free: it validates the bucket seqlock and retries on writer
// interference.
func (s *Store) Get(key uint64, dst []byte) ([]byte, timestamp.TS, error) {
	b := s.bucketFor(key)
	for {
		v := b.lock.ReadBegin()
		var found *item
		for _, it := range b.items {
			if it.key == key {
				found = it
				break
			}
		}
		if found == nil {
			if !b.lock.ReadRetry(v) {
				return nil, timestamp.TS{}, ErrNotFound
			}
			continue
		}
		vlen := found.vlen
		ts := found.ts
		// A torn length can only be observed mid-write; the validation
		// below rejects the snapshot. Guard the copy, and call ReadRetry
		// exactly once per ReadBegin (the race-build seqlock depends on
		// strict pairing).
		sane := vlen >= 0 && vlen <= len(found.val)
		if sane {
			if cap(dst) < vlen {
				dst = make([]byte, vlen)
			}
			dst = dst[:vlen]
			copy(dst, found.val[:vlen])
		}
		if b.lock.ReadRetry(v) {
			continue
		}
		if !sane {
			return nil, timestamp.TS{}, ErrNotFound
		}
		return dst, ts, nil
	}
}

// Put stores value under key with the given version timestamp,
// unconditionally overwriting any previous value.
func (s *Store) Put(key uint64, value []byte, ts timestamp.TS) {
	s.put(key, value, ts, false)
}

// PutIfNewer stores value only if ts orders after the stored version; it
// returns ErrStale otherwise. Used for write-backs of evicted cache items,
// where a slower replica's flush must not clobber a newer value.
func (s *Store) PutIfNewer(key uint64, value []byte, ts timestamp.TS) error {
	if s.put(key, value, ts, true) {
		return nil
	}
	return ErrStale
}

func (s *Store) put(key uint64, value []byte, ts timestamp.TS, onlyNewer bool) bool {
	b := s.bucketFor(key)
	b.lock.Lock()
	for _, it := range b.items {
		if it.key == key {
			if onlyNewer && !ts.After(it.ts) {
				b.lock.Unlock()
				return false
			}
			if len(it.val) < len(value) {
				// Mark shrunk length first so readers never see a length
				// beyond the old buffer, then swap buffers. it.val always
				// has len == cap so readers can bound-check against len.
				it.vlen = 0
				it.val = make([]byte, len(value))
			}
			copy(it.val[:len(value)], value)
			it.vlen = len(value)
			it.ts = ts
			b.lock.Unlock()
			return true
		}
	}
	buf := make([]byte, len(value))
	copy(buf, value)
	ni := &item{key: key, ts: ts, vlen: len(value), val: buf}
	b.items = append(b.items, ni)
	b.lock.Unlock()

	s.countMu.Lock()
	s.count++
	s.countMu.Unlock()
	return true
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key uint64) bool {
	b := s.bucketFor(key)
	b.lock.Lock()
	for i, it := range b.items {
		if it.key == key {
			b.items[i] = b.items[len(b.items)-1]
			b.items = b.items[:len(b.items)-1]
			b.lock.Unlock()
			s.countMu.Lock()
			s.count--
			s.countMu.Unlock()
			return true
		}
	}
	b.lock.Unlock()
	return false
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	s.countMu.Lock()
	defer s.countMu.Unlock()
	return s.count
}

// Range calls fn for every key with a private copy of its value, stopping if
// fn returns false. It takes bucket locks briefly and must not be called
// from fn itself.
func (s *Store) Range(fn func(key uint64, value []byte, ts timestamp.TS) bool) {
	for i := range s.buckets {
		b := &s.buckets[i]
		b.lock.Lock()
		// Copy out under the lock, invoke callbacks after releasing it.
		type kv struct {
			key uint64
			val []byte
			ts  timestamp.TS
		}
		snap := make([]kv, 0, len(b.items))
		for _, it := range b.items {
			snap = append(snap, kv{it.key, append([]byte(nil), it.val[:it.vlen]...), it.ts})
		}
		b.lock.Unlock()
		for _, e := range snap {
			if !fn(e.key, e.val, e.ts) {
				return
			}
		}
	}
}

// Partitioned composes multiple Store partitions, mapping keys to partitions
// by hash — MICA's EREW organization when each partition is owned by one
// thread, or a striped CRCW store otherwise.
type Partitioned struct {
	parts []*Store
}

// NewPartitioned returns a store with n partitions sized for expectedKeys
// total items.
func NewPartitioned(n, expectedKeys int) *Partitioned {
	if n <= 0 {
		n = 1
	}
	parts := make([]*Store, n)
	for i := range parts {
		parts[i] = New(expectedKeys / n)
	}
	return &Partitioned{parts: parts}
}

// NumPartitions returns the partition count.
func (p *Partitioned) NumPartitions() int { return len(p.parts) }

// PartitionOf returns the partition index owning key.
func (p *Partitioned) PartitionOf(key uint64) int {
	return int(zipf.Mix64(key^0x5bd1e995) % uint64(len(p.parts)))
}

// Partition returns partition i for direct (EREW owner-thread) access.
func (p *Partitioned) Partition(i int) *Store { return p.parts[i] }

// Get routes to the owning partition.
func (p *Partitioned) Get(key uint64, dst []byte) ([]byte, timestamp.TS, error) {
	return p.parts[p.PartitionOf(key)].Get(key, dst)
}

// Put routes to the owning partition.
func (p *Partitioned) Put(key uint64, value []byte, ts timestamp.TS) {
	p.parts[p.PartitionOf(key)].Put(key, value, ts)
}

// PutIfNewer routes to the owning partition.
func (p *Partitioned) PutIfNewer(key uint64, value []byte, ts timestamp.TS) error {
	return p.parts[p.PartitionOf(key)].PutIfNewer(key, value, ts)
}

// Len sums partition sizes.
func (p *Partitioned) Len() int {
	n := 0
	for _, s := range p.parts {
		n += s.Len()
	}
	return n
}
