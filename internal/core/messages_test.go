package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/timestamp"
)

func TestProtocolString(t *testing.T) {
	if SC.String() != "SC" || Lin.String() != "Lin" {
		t.Fatalf("protocol names wrong")
	}
	if Protocol(9).String() == "" {
		t.Fatalf("unknown protocol must render")
	}
}

func TestMsgTypeString(t *testing.T) {
	for mt, want := range map[MsgType]string{
		MsgUpdate: "update", MsgInvalidation: "invalidation", MsgAck: "ack",
	} {
		if mt.String() != want {
			t.Fatalf("%v != %s", mt, want)
		}
	}
	if MsgType(0).String() == "" {
		t.Fatalf("unknown type must render")
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := Update{Key: 0xdeadbeef, TS: timestamp.TS{Clock: 77, Writer: 3}, Value: []byte("payload")}
	buf := u.Encode(nil)
	if len(buf) != u.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), u.EncodedSize())
	}
	got, n, err := Decode(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v n=%d", err, n)
	}
	du, ok := got.(Update)
	if !ok || du.Key != u.Key || du.TS != u.TS || !bytes.Equal(du.Value, u.Value) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestInvalidationRoundTrip(t *testing.T) {
	i := Invalidation{Key: 42, TS: timestamp.TS{Clock: 1, Writer: 2}, From: 7}
	buf := i.Encode(nil)
	if len(buf) != i.EncodedSize() {
		t.Fatalf("size mismatch")
	}
	got, n, err := Decode(buf)
	if err != nil || n != len(buf) || got.(Invalidation) != i {
		t.Fatalf("round trip: %+v %d %v", got, n, err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	a := Ack{Key: 9, TS: timestamp.TS{Clock: 5, Writer: 1}, From: 4}
	buf := a.Encode(nil)
	got, n, err := Decode(buf)
	if err != nil || n != len(buf) || got.(Ack) != a {
		t.Fatalf("round trip: %+v %d %v", got, n, err)
	}
}

func TestDecodeStream(t *testing.T) {
	// Multiple messages back to back must decode in sequence.
	var buf []byte
	buf = Update{Key: 1, TS: timestamp.TS{Clock: 1}, Value: []byte("ab")}.Encode(buf)
	buf = Invalidation{Key: 2, TS: timestamp.TS{Clock: 2}, From: 1}.Encode(buf)
	buf = Ack{Key: 3, TS: timestamp.TS{Clock: 3}, From: 2}.Encode(buf)

	kinds := []MsgType{}
	for len(buf) > 0 {
		m, n, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		switch m.(type) {
		case Update:
			kinds = append(kinds, MsgUpdate)
		case Invalidation:
			kinds = append(kinds, MsgInvalidation)
		case Ack:
			kinds = append(kinds, MsgAck)
		}
		buf = buf[n:]
	}
	if len(kinds) != 3 || kinds[0] != MsgUpdate || kinds[1] != MsgInvalidation || kinds[2] != MsgAck {
		t.Fatalf("stream decode order: %v", kinds)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(MsgUpdate)},
		{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown type
	}
	for i, c := range cases {
		if _, _, err := Decode(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Truncated update value.
	u := Update{Key: 1, TS: timestamp.TS{Clock: 1}, Value: []byte("abcdef")}
	buf := u.Encode(nil)
	if _, _, err := Decode(buf[:len(buf)-2]); err == nil {
		t.Errorf("truncated update must fail")
	}
}

func TestEmptyValueUpdate(t *testing.T) {
	u := Update{Key: 1, TS: timestamp.TS{Clock: 1, Writer: 0}}
	got, n, err := Decode(u.Encode(nil))
	if err != nil || n != u.EncodedSize() || len(got.(Update).Value) != 0 {
		t.Fatalf("empty value round trip failed: %v %d", err, n)
	}
}

// Property: encode→decode is the identity for arbitrary updates.
func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(key uint64, clock uint32, writer uint8, value []byte) bool {
		u := Update{Key: key, TS: timestamp.TS{Clock: clock, Writer: writer}, Value: value}
		got, n, err := Decode(u.Encode(nil))
		if err != nil || n != u.EncodedSize() {
			return false
		}
		du := got.(Update)
		return du.Key == key && du.TS == u.TS && bytes.Equal(du.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
