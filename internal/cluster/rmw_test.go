package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/store"
)

// Atomic RMWs: the counter codec, CAS/FAA semantics on the node API and
// through the session layer (single-op and batched frames), exact-count
// linearizability under contention for both protocols, and the replicated
// chaos criterion — an acked RMW is applied exactly once across the acting
// primary's death.

func TestCounterCodec(t *testing.T) {
	if v, err := DecodeCounter(nil); err != nil || v != 0 {
		t.Fatalf("nil: (%d, %v), want (0, nil)", v, err)
	}
	for _, want := range []uint64{0, 1, 1<<63 + 7} {
		got, err := DecodeCounter(EncodeCounter(want))
		if err != nil || got != want {
			t.Fatalf("roundtrip %d: (%d, %v)", want, got, err)
		}
	}
	if _, err := DecodeCounter([]byte("short")); err == nil {
		t.Fatal("5-byte value decoded as a counter")
	}
}

// rmwTestMembers builds a member deployment with an installed hot set and a
// zeroed hot counter plus a zeroed cold key, returning both keys.
func rmwTestMembers(t *testing.T, proto core.Protocol) (members []*Cluster, hotKey, coldKey uint64) {
	t.Helper()
	cfg := Config{
		Nodes: 3, System: CCKVS, Protocol: proto,
		NumKeys: 2048, CacheItems: 32, ValueSize: 8, WorkersPerNode: 2,
	}
	members = newChanMembers(t, cfg)
	hot := DefaultHotSet(cfg.CacheItems)
	if _, err := members[0].ApplyHotSet(0, hot); err != nil {
		t.Fatal(err)
	}
	hotKey = hot[0]
	coldKey = coldKeyHomedOnCfg(t, cfg, 1)
	for _, k := range []uint64{hotKey, coldKey} {
		if err := members[0].LocalNode().Put(k, EncodeCounter(0)); err != nil {
			t.Fatal(err)
		}
		for i, m := range members {
			m := m
			waitForValue(t, fmt.Sprintf("member %d key %d", i, k), EncodeCounter(0), func() ([]byte, error) {
				return m.LocalNode().Get(k)
			})
		}
	}
	return members, hotKey, coldKey
}

func TestCASWitnessAndFAASemantics(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			members, hotKey, coldKey := rmwTestMembers(t, proto)
			for name, key := range map[string]uint64{"hot": hotKey, "cold": coldKey} {
				// Failed CAS: not applied, and the witness carries the value
				// the comparison saw — no re-read round trip needed.
				n := members[2].LocalNode() // remote origin for both keys
				w, swapped, err := n.CompareAndSwap(key, []byte("never-stored"), EncodeCounter(9))
				if err != nil || swapped {
					t.Fatalf("%s mismatched CAS: swapped=%v err=%v", name, swapped, err)
				}
				if !bytes.Equal(w, EncodeCounter(0)) {
					t.Fatalf("%s witness = %x, want the stored counter 0", name, w)
				}
				// CAS from the witness succeeds.
				w, swapped, err = n.CompareAndSwap(key, w, EncodeCounter(7))
				if err != nil || !swapped {
					t.Fatalf("%s CAS from witness: swapped=%v err=%v (witness %x)", name, swapped, err, w)
				}
				// FAA returns the pre-add value and adds server-side.
				old, err := n.FetchAndAdd(key, 3)
				if err != nil || old != 7 {
					t.Fatalf("%s FAA: (%d, %v), want (7, nil)", name, old, err)
				}
				old, err = n.FetchAndAdd(key, 1)
				if err != nil || old != 10 {
					t.Fatalf("%s second FAA: (%d, %v), want (10, nil)", name, old, err)
				}
			}
			// FAA against a non-counter value is refused, not mangled —
			// whether the origin is local or remote to the serialization
			// point (the remote decline travels back as a witness).
			junk := []byte("forty-byte-ish non counter value")
			// Let the last RMW's update land at member 0 first: a blind SC put
			// stamped before that would lose to the RMW by timestamp (the
			// documented blind-put residual) and the junk would never stick.
			waitForValue(t, "member 0 pre-junk", EncodeCounter(11), func() ([]byte, error) {
				return members[0].LocalNode().Get(hotKey)
			})
			if err := members[0].LocalNode().Put(hotKey, junk); err != nil {
				t.Fatal(err)
			}
			// SC updates land asynchronously; the refusal is only guaranteed
			// once the serialization point has seen the junk value.
			for i, m := range members {
				m := m
				waitForValue(t, fmt.Sprintf("member %d junk", i), junk, func() ([]byte, error) {
					return m.LocalNode().Get(hotKey)
				})
			}
			for i, m := range members {
				if _, err := m.LocalNode().FetchAndAdd(hotKey, 1); err == nil {
					t.Fatalf("member %d: FAA on a non-counter value succeeded", i)
				}
			}
		})
	}
}

// TestRMWContentionExactCount is the linearizability criterion: goroutines
// hammering ONE hot key with increments must land exactly all of them —
// under both protocols, for both the client-side CAS loop and the
// server-side FAA. Runs under -race in CI.
func TestRMWContentionExactCount(t *testing.T) {
	const (
		workers = 6
		perW    = 150
	)
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		for _, method := range []string{"cas", "faa"} {
			t.Run(proto.String()+"/"+method, func(t *testing.T) {
				members, hotKey, _ := rmwTestMembers(t, proto)
				var wg sync.WaitGroup
				errCh := make(chan error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						n := members[w%len(members)].LocalNode()
						if method == "faa" {
							for i := 0; i < perW; i++ {
								if _, err := n.FetchAndAdd(hotKey, 1); err != nil {
									errCh <- err
									return
								}
							}
							errCh <- nil
							return
						}
						cur, err := n.Get(hotKey)
						if err != nil {
							errCh <- err
							return
						}
						for i := 0; i < perW; i++ {
							for {
								v, err := DecodeCounter(cur)
								if err != nil {
									errCh <- err
									return
								}
								next := EncodeCounter(v + 1)
								wit, swapped, err := n.CompareAndSwap(hotKey, cur, next)
								if err != nil {
									errCh <- err
									return
								}
								if swapped {
									cur = next
									break
								}
								cur = wit // retry from the witnessed value
							}
						}
						errCh <- nil
					}(w)
				}
				wg.Wait()
				close(errCh)
				for err := range errCh {
					if err != nil {
						t.Fatal(err)
					}
				}
				// Exactly workers x perW increments, on every member. Updates
				// propagate asynchronously under SC; overshoot at any point is
				// a doubled RMW and fails immediately.
				want := uint64(workers * perW)
				for i, m := range members {
					m := m
					deadline := time.Now().Add(5 * time.Second)
					for {
						buf, err := m.LocalNode().Get(hotKey)
						if err != nil {
							t.Fatal(err)
						}
						got, err := DecodeCounter(buf)
						if err != nil {
							t.Fatal(err)
						}
						if got > want {
							t.Fatalf("member %d: counter %d exceeds %d increments (doubled RMW)", i, got, want)
						}
						if got == want {
							break
						}
						if time.Now().After(deadline) {
							t.Fatalf("member %d: counter stuck at %d, want %d (lost RMW)", i, got, want)
						}
						time.Sleep(time.Millisecond)
					}
				}
			})
		}
	}
}

// The session layer end to end: single-op RMW frames (v1), the same calls
// routed through the auto-batcher, and v2 batch frames carrying CAS/FAA
// alongside gets and puts with mixed statuses.
func TestClientRMWSingleOpAndAutoBatch(t *testing.T) {
	for _, auto := range []bool{false, true} {
		t.Run(map[bool]string{false: "v1", true: "auto-batch"}[auto], func(t *testing.T) {
			cfg := Config{Nodes: 3, System: Base, NumKeys: 1024, ValueSize: 8}
			_, cl := newChanClient(t, cfg)
			if auto {
				cl.SetAutoBatch(8, 100*time.Microsecond)
			}
			const key = 77
			if err := cl.Put(0, key, EncodeCounter(5)); err != nil {
				t.Fatal(err)
			}
			w, swapped, err := cl.CompareAndSwap(1, key, []byte("wrong"), EncodeCounter(1))
			if err != nil || swapped || !bytes.Equal(w, EncodeCounter(5)) {
				t.Fatalf("mismatched CAS: (%x, %v, %v), want witness 5, false, nil", w, swapped, err)
			}
			w, swapped, err = cl.CompareAndSwap(2, key, EncodeCounter(5), EncodeCounter(6))
			if err != nil || !swapped {
				t.Fatalf("matched CAS: (%x, %v, %v)", w, swapped, err)
			}
			old, err := cl.FetchAndAdd(0, key, 4)
			if err != nil || old != 6 {
				t.Fatalf("FAA: (%d, %v), want (6, nil)", old, err)
			}
			got, err := cl.Get(1, key)
			if err != nil || !bytes.Equal(got, EncodeCounter(10)) {
				t.Fatalf("final value %x, %v, want counter 10", got, err)
			}
		})
	}
}

func TestClientBatchRMWMixedStatuses(t *testing.T) {
	cfg := Config{Nodes: 3, System: Base, NumKeys: 1024, ValueSize: 8}
	_, cl := newChanClient(t, cfg)

	if err := cl.Put(0, 10, EncodeCounter(3)); err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		{Kind: OpGet, Key: 10},
		{Kind: OpCAS, Key: 10, Expect: EncodeCounter(3), Value: EncodeCounter(4)}, // succeeds
		{Kind: OpCAS, Key: 10, Expect: EncodeCounter(3), Value: EncodeCounter(9)}, // loses: value is 4 now
		{Kind: OpFAA, Key: 10, Delta: 5},                                          // 4 -> 9, returns 4
		{Kind: OpPut, Key: 11, Value: EncodeCounter(42)},
		{Kind: OpGet, Key: cfg.NumKeys + 99},           // absent (populate covers [0, NumKeys))
		{Kind: OpFAA, Key: cfg.NumKeys + 50, Delta: 7}, // absent key: counts from 0
	}
	rs, err := cl.Batch(1, ops)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if rs[0].Err != nil || !bytes.Equal(rs[0].Value, EncodeCounter(3)) {
		t.Fatalf("op0 get: %x, %v", rs[0].Value, rs[0].Err)
	}
	if rs[1].Err != nil || !bytes.Equal(rs[1].Value, EncodeCounter(3)) {
		t.Fatalf("op1 winning CAS: %x, %v, want witness 3", rs[1].Value, rs[1].Err)
	}
	if !errors.Is(rs[2].Err, ErrCASMismatch) || !bytes.Equal(rs[2].Value, EncodeCounter(4)) {
		t.Fatalf("op2 losing CAS: %x, %v, want witness 4 with ErrCASMismatch", rs[2].Value, rs[2].Err)
	}
	if rs[3].Err != nil || !bytes.Equal(rs[3].Value, EncodeCounter(4)) {
		t.Fatalf("op3 FAA: %x, %v, want old value 4", rs[3].Value, rs[3].Err)
	}
	if rs[4].Err != nil {
		t.Fatalf("op4 put: %v", rs[4].Err)
	}
	if !errors.Is(rs[5].Err, store.ErrNotFound) {
		t.Fatalf("op5 absent get: %v, want ErrNotFound", rs[5].Err)
	}
	if rs[6].Err != nil || !bytes.Equal(rs[6].Value, EncodeCounter(0)) {
		t.Fatalf("op6 FAA on absent key: %x, %v, want old value 0", rs[6].Value, rs[6].Err)
	}
	if v, err := cl.Get(2, 10); err != nil || !bytes.Equal(v, EncodeCounter(9)) {
		t.Fatalf("final counter: %x, %v, want 9", v, err)
	}
}

// TestChaosReplicatedKillPrimaryMidRMW is the replicated RMW chaos
// criterion: a storm of CAS-loop and FAA increments against a cold key homed
// at the doomed node, the acting primary SIGKILL-equivalent mid-storm. An
// increment whose outcome the origin could not learn surfaces as
// ErrRMWUnknown and is abandoned, never retried — so the final counter must
// land in [acked, acked+unknown]: below is a LOST acked RMW, above a
// DOUBLED one. Service must resume definitively via the promoted backup.
func TestChaosReplicatedKillPrimaryMidRMW(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			const doomed = 2
			cfg := Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 2048, CacheItems: 32, ValueSize: 8, WorkersPerNode: 2,
				ReplicasPerShard: 2,
				PingInterval:     5 * time.Millisecond, PingTimeout: chaosSuspicion(60 * time.Millisecond),
			}
			members := newChanMembers(t, cfg)
			key := coldKeyHomedOnCfg(t, cfg, doomed)
			survivors := []*Cluster{members[0], members[1]}
			if err := members[0].LocalNode().Put(key, EncodeCounter(0)); err != nil {
				t.Fatal(err)
			}

			var (
				acked   atomic.Uint64
				unknown atomic.Uint64
				stop    = make(chan struct{})
				wg      sync.WaitGroup
			)
			errCh := make(chan error, 4)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					n := survivors[w%2].LocalNode()
					useCAS := w >= 2
					var cur []byte
					for {
						select {
						case <-stop:
							errCh <- nil
							return
						default:
						}
						if !useCAS {
							_, err := n.FetchAndAdd(key, 1)
							switch {
							case err == nil:
								acked.Add(1)
							case errors.Is(err, ErrRMWUnknown):
								unknown.Add(1) // may or may not have landed; never retried
							default:
								errCh <- fmt.Errorf("faa worker %d: %w", w, err)
								return
							}
							continue
						}
						if cur == nil {
							v, err := n.Get(key)
							if err != nil {
								errCh <- fmt.Errorf("cas worker %d read: %w", w, err)
								return
							}
							cur = v
						}
						v, err := DecodeCounter(cur)
						if err != nil {
							errCh <- fmt.Errorf("cas worker %d: %w", w, err)
							return
						}
						witness, swapped, err := n.CompareAndSwap(key, cur, EncodeCounter(v+1))
						switch {
						case errors.Is(err, ErrRMWUnknown):
							unknown.Add(1)
							cur = nil // abandon the attempt, re-read fresh
						case err != nil:
							errCh <- fmt.Errorf("cas worker %d: %w", w, err)
							return
						case swapped:
							acked.Add(1)
							cur = EncodeCounter(v + 1)
						default:
							cur = witness
						}
					}
				}(w)
			}

			time.Sleep(50 * time.Millisecond)
			members[doomed].Kill() // the acting primary dies mid-storm
			waitViewDown(t, survivors, doomed, 5*time.Second)
			time.Sleep(100 * time.Millisecond) // RMWs through the promoted backup
			close(stop)
			wg.Wait()
			close(errCh)
			for err := range errCh {
				if err != nil {
					t.Fatal(err)
				}
			}

			// Post-kill the outcome must be definite again: the promoted
			// backup serializes, no unknown window remains.
			if _, err := survivors[0].LocalNode().FetchAndAdd(key, 1); err != nil {
				t.Fatalf("post-kill FAA via promoted backup: %v", err)
			}
			acked.Add(1)

			lo, hi := acked.Load(), acked.Load()+unknown.Load()
			if lo == 0 {
				t.Fatal("no RMW was ever acked; the storm never ran")
			}
			for i, m := range survivors {
				buf, err := m.LocalNode().Get(key)
				if err != nil {
					t.Fatalf("survivor %d read: %v", i, err)
				}
				got, err := DecodeCounter(buf)
				if err != nil {
					t.Fatalf("survivor %d: %v", i, err)
				}
				if got < lo || got > hi {
					t.Fatalf("survivor %d: counter %d outside [acked=%d, acked+unknown=%d] — lost or doubled RMW", i, got, lo, hi)
				}
			}
		})
	}
}

// The redesigned construction surface: functional options must configure
// exactly what the deprecated setters do.
func TestClientOptionsMatchDeprecatedSetters(t *testing.T) {
	cfg := Config{Nodes: 2, System: Base, NumKeys: 256}
	stats := fabric.NewStats()
	tr := fabric.NewChanTransport(cfg.QueueDepth, stats)
	members := make([]*Cluster, cfg.Nodes)
	for i := range members {
		m, err := NewMember(cfg, i, tr, stats)
		if err != nil {
			t.Fatal(err)
		}
		m.Populate()
		members[i] = m
	}
	viaSetters := NewClient(200, cfg.Nodes, tr)
	viaSetters.SetPipelineWindow(7)
	viaSetters.SetAutoBatch(16, time.Millisecond)
	viaSetters.SetTimeout(3 * time.Second)

	viaOpts := NewClient(201, cfg.Nodes, tr,
		WithPipelineWindow(7), WithAutoBatch(16, time.Millisecond), WithTimeout(3*time.Second))
	t.Cleanup(func() {
		viaSetters.Close()
		viaOpts.Close()
		for _, m := range members {
			m.Close()
		}
	})

	for name, cl := range map[string]*Client{"setters": viaSetters, "options": viaOpts} {
		if got := cap(cl.winCh[0]); got != 7 {
			t.Fatalf("%s: pipeline window %d, want 7", name, got)
		}
		if cl.ab.Load() == nil {
			t.Fatalf("%s: auto-batcher not armed", name)
		}
		if cl.timeout != 3*time.Second {
			t.Fatalf("%s: timeout %v", name, cl.timeout)
		}
	}
	// The optioned client is live, not just configured.
	if err := viaOpts.Put(0, 9, []byte("via-options")); err != nil {
		t.Fatal(err)
	}
	if v, err := viaOpts.Get(1, 9); err != nil || string(v) != "via-options" {
		t.Fatalf("get through optioned client: %q %v", v, err)
	}
}

// Every typed client error must be matchable with errors.Is, including
// through wrapping.
func TestTypedErrorsSupportErrorsIs(t *testing.T) {
	if !errors.Is(ErrHomeDown, ErrNodeDown) {
		t.Fatal("ErrHomeDown must wrap ErrNodeDown")
	}
	wrapped := fmt.Errorf("context: %w", ErrCASMismatch)
	if !errors.Is(wrapped, ErrCASMismatch) {
		t.Fatal("wrapped ErrCASMismatch not matchable")
	}
	if !errors.Is(fmt.Errorf("op: %w", ErrRMWUnknown), ErrRMWUnknown) {
		t.Fatal("wrapped ErrRMWUnknown not matchable")
	}
	for _, err := range []error{ErrNodeDown, ErrHomeDown, ErrClientClosed, ErrSessionTimeout, ErrNodeUnreachable, ErrCASMismatch, ErrRMWUnknown} {
		if err.Error() == "" {
			t.Fatal("typed error with empty message")
		}
	}
}
