package core

import (
	"bytes"
	"testing"

	"repro/internal/timestamp"
)

// A Lin write counting a peer that is excised from the live view must
// complete the moment its remaining required acks are in — the consistency
// layer's half of surviving a node failure.
func TestLinViewShrinkCompletesPendingWrite(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	inv, err := caches[0].WriteLinStart(1, []byte("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 acks; node 2 dies before acking.
	ack1, _ := caches[1].ApplyInvalidation(inv)
	if _, done := caches[0].ApplyAck(ack1); done {
		t.Fatal("write completed before the view changed (node 2 never acked)")
	}
	upds := caches[0].SetLive(FullNodeSet(3).Without(2))
	if len(upds) != 1 || upds[0].Key != 1 || string(upds[0].Value) != "survivor" {
		t.Fatalf("view shrink completed %v, want the pending write for key 1", upds)
	}
	v, _, err := caches[0].Read(1, nil)
	if err != nil || string(v) != "survivor" {
		t.Fatalf("writer replica after completion: %q %v", v, err)
	}
	// A late ack from the excised node (it was in flight when the peer was
	// declared dead, or the suspicion was false) must be a no-op.
	if _, done := caches[0].ApplyAck(Ack{Key: 1, TS: inv.TS, From: 2}); done {
		t.Fatal("late ack from an excised peer re-completed the write")
	}
}

// Shrinking the view before the missing ack is in must NOT complete the
// write: a live counted peer is still required.
func TestLinViewShrinkStillRequiresLivePeers(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	inv, err := caches[0].WriteLinStart(1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if upds := caches[0].SetLive(FullNodeSet(3).Without(2)); len(upds) != 0 {
		t.Fatalf("view shrink completed %v with node 1's ack missing", upds)
	}
	ack1, _ := caches[1].ApplyInvalidation(inv)
	if _, done := caches[0].ApplyAck(ack1); !done {
		t.Fatal("write must complete once the last live peer acked")
	}
}

// A write started when the writer is the only live member completes on the
// post-broadcast recheck — no ack will ever arrive.
func TestLinRecheckCompletesSoloWriter(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	caches[0].SetLive(FullNodeSet(3).Without(1).Without(2))
	if _, err := caches[0].WriteLinStart(1, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	upd, done := caches[0].RecheckPending(1)
	if !done || string(upd.Value) != "solo" {
		t.Fatalf("solo write: done=%v upd=%v", done, upd)
	}
	// Re-running the check must not double-complete.
	if _, again := caches[0].RecheckPending(1); again {
		t.Fatal("recheck completed the same write twice")
	}
	v, _, err := caches[0].Read(1, nil)
	if err != nil || string(v) != "solo" {
		t.Fatalf("read after solo write: %q %v", v, err)
	}
}

// A peer that joins mid-write is never required: it received no invalidation,
// so adding it to the requirement would deadlock the writer.
func TestLinViewGrowDoesNotExtendInFlightWrites(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	caches[0].SetLive(FullNodeSet(3).Without(2)) // node 2 down at write start
	inv, err := caches[0].WriteLinStart(1, []byte("grow"))
	if err != nil {
		t.Fatal(err)
	}
	caches[0].SetLive(FullNodeSet(3)) // node 2 rejoins mid-write
	ack1, _ := caches[1].ApplyInvalidation(inv)
	if _, done := caches[0].ApplyAck(ack1); !done {
		t.Fatal("write must complete with the acks of the peers counted at start")
	}
}

// An excise/rejoin flap must not re-require the flapped peer's ack: it was
// pruned from the requirement while out of the view (it never received the
// invalidation), so the write completes on the remaining peers' acks even
// after the peer returns.
func TestLinExciseRejoinFlapDoesNotReRequireAck(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	inv, err := caches[0].WriteLinStart(1, []byte("flap"))
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 flaps: out (the scan prunes it from the requirement), then back.
	if upds := caches[0].SetLive(FullNodeSet(3).Without(2)); len(upds) != 0 {
		t.Fatalf("flap down completed %v with node 1's ack missing", upds)
	}
	caches[0].SetLive(FullNodeSet(3))
	// Node 1's ack alone must now complete the write; without the permanent
	// prune the rejoin would re-require node 2's ack and the writer would
	// hang forever.
	ack1, _ := caches[1].ApplyInvalidation(inv)
	if _, done := caches[0].ApplyAck(ack1); !done {
		t.Fatal("write stalled across an excise/rejoin flap")
	}
}

// An entry left Invalid by an excised writer's in-flight write must be
// re-validated when the writer leaves the view — the matching update can
// never arrive, and readers must not spin on it. A straggler invalidation
// from the excised writer must not re-open the window (still acked, though).
func TestLinOrphanedInvalidationHealedOnExcision(t *testing.T) {
	caches := newReplicaGroup(t, 3, 7)
	inv, err := caches[2].WriteLinStart(7, []byte("orphan"))
	if err != nil {
		t.Fatal(err)
	}
	caches[0].ApplyInvalidation(inv)
	if _, _, err := caches[0].Read(7, nil); err != ErrInvalid {
		t.Fatalf("pre-heal read: %v, want ErrInvalid", err)
	}
	// Writer 2 dies: excise it and heal its orphans.
	caches[0].SetLive(FullNodeSet(3).Without(2))
	healed, resurrect := caches[0].DiscardOrphanedInvalidations(2)
	if healed != 1 || len(resurrect) != 0 {
		t.Fatalf("healed %d entries (resurrect %v), want 1 with nothing to resurrect", healed, resurrect)
	}
	v, _, err := caches[0].Read(7, nil)
	if err != nil || !bytes.Equal(v, []byte{7}) {
		t.Fatalf("post-heal read: %q %v, want the pre-invalidation value", v, err)
	}
	// A straggler invalidation from the dead writer (it was in flight at the
	// kill) is acked but NOT applied — it must not re-wedge the entry.
	ack, invalidated := caches[0].ApplyInvalidation(inv)
	if invalidated {
		t.Fatal("straggler invalidation from an excised writer re-applied")
	}
	if ack.From != 0 || ack.TS != inv.TS {
		t.Fatalf("straggler must still be acked, got %+v", ack)
	}
	if _, _, err := caches[0].Read(7, nil); err != nil {
		t.Fatalf("read after straggler: %v", err)
	}
}

// A conflict-lost write was acknowledged to its client; if the winning
// writer dies before publishing, healing must hand the loser's staged value
// back for re-publication — silently reverting to the pre-write value would
// lose an acknowledged write on every replica.
func TestLinOrphanHealResurrectsAcknowledgedLoserWrite(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	invA, err := caches[0].WriteLinStart(1, []byte("loser"))
	if err != nil {
		t.Fatal(err)
	}
	invC, err := caches[2].WriteLinStart(1, []byte("winner")) // ties break by writer id: C wins
	if err != nil {
		t.Fatal(err)
	}
	if !invC.TS.After(invA.TS) {
		t.Fatalf("expected C's write to win: %v vs %v", invC.TS, invA.TS)
	}
	// A observes C's winning invalidation, then gathers its own acks: its
	// write completes conflict-lost, but its client is told success.
	caches[0].ApplyInvalidation(invC)
	ack1, _ := caches[1].ApplyInvalidation(invA)
	ack2, _ := caches[2].ApplyInvalidation(invA)
	caches[0].ApplyAck(ack1)
	if _, done := caches[0].ApplyAck(ack2); !done {
		t.Fatal("A's write never completed")
	}
	if caches[0].Stats().WriteConflictsLost.Load() != 1 {
		t.Fatal("A should have recorded the lost conflict")
	}
	// C dies before publishing its update. The heal at A must surface A's
	// acknowledged value for re-publication.
	caches[0].SetLive(FullNodeSet(3).Without(2))
	healed, resurrect := caches[0].DiscardOrphanedInvalidations(2)
	if healed != 1 || len(resurrect) != 1 {
		t.Fatalf("healed=%d resurrect=%v, want 1 entry with A's write to resurrect", healed, resurrect)
	}
	if resurrect[0].Key != 1 || string(resurrect[0].Value) != "loser" {
		t.Fatalf("resurrect = %+v, want A's acknowledged value", resurrect[0])
	}
	// Had the winner's update landed first, nothing would need resurrection.
	if _, r := caches[0].DiscardOrphanedInvalidations(2); len(r) != 0 {
		t.Fatal("second heal resurrected the same write twice")
	}
}

// The mirror race: the conflict-lost write completes only AFTER the winner
// was excised (its final ack was still in flight at the view flip), so the
// flip-time heal saw pendSuperseded unset. The post-completion check must
// surface the acknowledged value instead.
func TestLinLoserCompletingAfterWinnerExcisionIsResurrected(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	invA, err := caches[0].WriteLinStart(1, []byte("late-loser"))
	if err != nil {
		t.Fatal(err)
	}
	invC, _ := caches[2].WriteLinStart(1, []byte("winner"))
	caches[0].ApplyInvalidation(invC) // A goes Invalid at C's winning TS
	ack1, _ := caches[1].ApplyInvalidation(invA)

	// C dies BEFORE A's write completes (node 1's ack still in flight): the
	// flip-time heal finds nothing to resurrect — the write is still
	// pending, so pendSuperseded is not yet set.
	caches[0].SetLive(FullNodeSet(3).Without(2))
	if _, r := caches[0].DiscardOrphanedInvalidations(2); len(r) != 0 {
		t.Fatalf("flip-time heal resurrected a still-pending write: %v", r)
	}
	// Nothing to take yet either — the write has not completed.
	if _, ok := caches[0].TakeOrphanedLoserWrite(1); ok {
		t.Fatal("took a loser write before its completion")
	}

	// Node 1's ack (sent before the flip) now lands: the requirement is down
	// to {1}, so the write completes — conflict-lost against a winner that
	// can never publish.
	if _, done := caches[0].ApplyAck(ack1); !done {
		t.Fatal("A's write never completed")
	}
	u, ok := caches[0].TakeOrphanedLoserWrite(1)
	if !ok || string(u.Value) != "late-loser" {
		t.Fatalf("post-completion orphan check: ok=%v u=%+v, want A's acknowledged value", ok, u)
	}
	// Taken exactly once; the entry is readable again.
	if _, again := caches[0].TakeOrphanedLoserWrite(1); again {
		t.Fatal("orphaned loser write taken twice")
	}
	if _, _, err := caches[0].Read(1, nil); err != nil {
		t.Fatalf("read after orphan take: %v", err)
	}
}

// Duplicate acks from the same peer must not fake coverage of another peer.
func TestLinDuplicateAckDoesNotDoubleCount(t *testing.T) {
	caches := newReplicaGroup(t, 3, 1)
	inv, err := caches[0].WriteLinStart(1, []byte("d"))
	if err != nil {
		t.Fatal(err)
	}
	ack1, _ := caches[1].ApplyInvalidation(inv)
	if _, done := caches[0].ApplyAck(ack1); done {
		t.Fatal("one ack completed a 3-node write")
	}
	if _, done := caches[0].ApplyAck(ack1); done {
		t.Fatal("replayed ack completed a 3-node write")
	}
	ack2, _ := caches[2].ApplyInvalidation(inv)
	if _, done := caches[0].ApplyAck(ack2); !done {
		t.Fatal("write never completed")
	}
}

func TestNodeSetBasics(t *testing.T) {
	s := FullNodeSet(5)
	if s.Count() != 5 || !s.Has(4) || s.Has(5) {
		t.Fatalf("FullNodeSet(5) = %v", s)
	}
	s = s.Without(2)
	if s.Has(2) || s.Count() != 4 {
		t.Fatalf("Without: %v", s)
	}
	s = s.With(2)
	if !s.Has(2) || s.Count() != 5 {
		t.Fatalf("With: %v", s)
	}
	a, b := FullNodeSet(3), FullNodeSet(5)
	if !b.Contains(a) || a.Contains(b) {
		t.Fatal("Contains asymmetry broken")
	}
	if got := b.Intersect(a); got != a {
		t.Fatalf("Intersect = %v", got)
	}
	if !(NodeSet{}).Empty() || a.Empty() {
		t.Fatal("Empty broken")
	}
	// Ids above 63 exercise the multi-word path.
	hi := (NodeSet{}).With(200)
	if !hi.Has(200) || hi.Count() != 1 || hi.Has(72) {
		t.Fatalf("high-id set: %v", hi)
	}
	if ts := (timestamp.TS{}); ts != timestamp.Zero {
		t.Fatal("sanity")
	}
}
