package zipf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZetaSmallExact(t *testing.T) {
	// H_{4,1} computed by hand with alpha=2: 1 + 1/4 + 1/9 + 1/16.
	want := 1 + 0.25 + 1.0/9 + 1.0/16
	if got := Zeta(4, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Zeta(4,2) = %v want %v", got, want)
	}
	if Zeta(0, 0.99) != 0 {
		t.Fatalf("Zeta(0) must be 0")
	}
	if Zeta(1, 0.99) != 1 {
		t.Fatalf("Zeta(1) must be 1")
	}
}

func TestZetaApproximationMatchesExact(t *testing.T) {
	// Force the approximation path by comparing a direct sum to Zeta on a
	// value above the exact limit.
	n := uint64(exactZetaLimit * 4)
	alpha := 0.99
	sum := 0.0
	for r := uint64(1); r <= n; r++ {
		sum += math.Pow(float64(r), -alpha)
	}
	got := Zeta(n, alpha)
	if rel := math.Abs(got-sum) / sum; rel > 1e-6 {
		t.Fatalf("approx zeta off by %v (got %v want %v)", rel, got, sum)
	}
}

func TestZetaMonotonicInN(t *testing.T) {
	prev := 0.0
	for _, n := range []uint64{1, 10, 100, 1000, 10000} {
		z := Zeta(n, 0.99)
		if z <= prev {
			t.Fatalf("zeta must increase with n: Zeta(%d)=%v prev=%v", n, z, prev)
		}
		prev = z
	}
}

func TestProbSumsToOne(t *testing.T) {
	n := uint64(1000)
	sum := 0.0
	for r := uint64(1); r <= n; r++ {
		sum += Prob(r, n, 0.99)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if Prob(0, n, 0.99) != 0 || Prob(n+1, n, 0.99) != 0 {
		t.Fatalf("out-of-range ranks must have zero probability")
	}
}

// Figure 3 anchor points from the paper (§7.1): a cache of 0.1% of the
// dataset yields hit ratios of ~46%, ~65% and ~69% for alpha = 0.90, 0.99
// and 1.01 respectively. Dataset is 250M keys.
func TestFigure3HitRateAnchors(t *testing.T) {
	const n = 250_000_000
	cases := []struct {
		alpha float64
		want  float64
		tol   float64
	}{
		{0.90, 0.46, 0.04},
		{0.99, 0.65, 0.04},
		{1.01, 0.69, 0.04},
	}
	for _, c := range cases {
		got := HitRate(0.001, n, c.alpha)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("hit rate alpha=%v: got %.3f want %.2f±%.2f", c.alpha, got, c.want, c.tol)
		}
	}
}

func TestHitRateEdges(t *testing.T) {
	if HitRate(0, 1000, 0.99) != 0 {
		t.Fatalf("zero cache must have zero hit rate")
	}
	if HitRate(1.0, 1000, 0.99) != 1 {
		t.Fatalf("full cache must have hit rate 1")
	}
	// A tiny positive fraction still caches at least one key.
	if HitRate(1e-9, 1000, 0.99) <= 0 {
		t.Fatalf("tiny cache must still hold the hottest key")
	}
}

func TestHitRateMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		fa := float64(a) / 65536
		fb := float64(b) / 65536
		if fa > fb {
			fa, fb = fb, fa
		}
		return HitRate(fa, 100000, 0.99) <= HitRate(fb, 100000, 0.99)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Figure 1 anchor: with 128 servers, 250M keys and alpha=0.99 the hottest
// shard receives over 7x the average load.
func TestFigure1Imbalance(t *testing.T) {
	const n = 250_000_000
	loads := ShardLoads(n, 0.99, 128, func(rank uint64) int {
		return int(Mix64(rank) % 128)
	})
	imb := Imbalance(loads)
	if imb < 5.5 || imb > 9.5 {
		t.Fatalf("128-server imbalance = %.2f, want ~7", imb)
	}
	sum := 0.0
	for _, l := range loads {
		sum += l
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("shard loads must sum to 1, got %v", sum)
	}
}

func TestImbalanceEdge(t *testing.T) {
	if Imbalance(nil) != 0 {
		t.Fatalf("empty loads")
	}
	if got := Imbalance([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("uniform loads must have imbalance 1, got %v", got)
	}
	if Imbalance([]float64{0, 0}) != 0 {
		t.Fatalf("all-zero loads")
	}
}

func TestGeneratorRejectsBadParams(t *testing.T) {
	if _, err := NewGenerator(0, 0.99, 1); err == nil {
		t.Fatalf("n=0 must error")
	}
	if _, err := NewGenerator(10, 1.0, 1); err == nil {
		t.Fatalf("alpha=1 must error")
	}
	if _, err := NewGenerator(10, 0, 1); err == nil {
		t.Fatalf("alpha=0 must error")
	}
}

func TestGeneratorInRange(t *testing.T) {
	g, err := NewGenerator(1000, 0.99, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		r := g.Next()
		if r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

// The empirical frequency of the hottest ranks must track the analytic pmf.
func TestGeneratorMatchesPMF(t *testing.T) {
	const n, draws = 10000, 400000
	g, err := NewGenerator(n, 0.99, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Next()]++
	}
	// Gray's method is an approximation that is exact for ranks 0 and 1 and
	// slightly distorts the next few ranks, so allow a generous tolerance.
	for _, rank := range []uint64{0, 1, 2, 9} {
		want := Prob(rank+1, n, 0.99)
		got := float64(counts[rank]) / draws
		if math.Abs(got-want)/want > 0.30 {
			t.Errorf("rank %d: empirical %.4f analytic %.4f", rank, got, want)
		}
	}
	// Skew sanity: rank 0 far more popular than rank 100.
	if counts[0] < counts[100]*10 {
		t.Errorf("rank 0 (%d) should dwarf rank 100 (%d)", counts[0], counts[100])
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, _ := NewGenerator(500, 0.99, 99)
	b, _ := NewGenerator(500, 0.99, 99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed must produce identical streams")
		}
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	g, err := NewScrambled(1_000_000, 0.99, 11)
	if err != nil {
		t.Fatal(err)
	}
	low := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if g.Next() < 1000 {
			low++
		}
	}
	// Unscrambled, ~most draws land in the lowest 1000 ranks; scrambled they
	// must not cluster there.
	if frac := float64(low) / draws; frac > 0.05 {
		t.Fatalf("scrambled keys cluster at low ids: %.3f", frac)
	}
}

func TestUniformGenerator(t *testing.T) {
	u := NewUniform(10, 3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[u.Next()]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("uniform bucket %d has %d draws", i, c)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g, _ := NewGenerator(250_000_000, 0.99, 1)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = g.Next()
	}
	_ = sink
}
