package workload

import "testing"

// mostFrequent returns the key generated most often over n ops.
func mostFrequent(g *Generator, n int) uint64 {
	counts := map[uint64]int{}
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	var best uint64
	bestN := -1
	for k, c := range counts {
		if c > bestN || (c == bestN && k < best) {
			best, bestN = k, c
		}
	}
	return best
}

func TestShiftingHotspotMovesTheHotKey(t *testing.T) {
	const numKeys = 1 << 12
	const every = 3000
	g := MustNew(Config{
		NumKeys: numKeys, Alpha: 0.99, ShiftEvery: every, ShiftStride: 1000, Seed: 7,
	})
	first := mostFrequent(g, every)
	second := mostFrequent(g, every)
	if first == second {
		t.Fatalf("hotspot did not move: %d in both windows", first)
	}
	if want := (first + 1000) % numKeys; second != want {
		t.Fatalf("hotspot moved to %d, want %d (stride 1000)", second, want)
	}
}

func TestShiftStrideDefaultsAndBounds(t *testing.T) {
	g := MustNew(Config{NumKeys: 100, Alpha: 0.99, ShiftEvery: 5, Seed: 3})
	if s := g.Config().ShiftStride; s == 0 {
		t.Fatal("ShiftEvery without ShiftStride must pick a default")
	}
	for i := 0; i < 500; i++ {
		if k := g.Next().Key; k >= 100 {
			t.Fatalf("key %d out of keyspace", k)
		}
	}
	// Static configs stay static.
	if s := MustNew(Config{NumKeys: 100, Alpha: 0.99}).Config().ShiftStride; s != 0 {
		t.Fatalf("static config grew a stride: %d", s)
	}
}

func TestShiftingHotspotPreset(t *testing.T) {
	cfg, ok := Preset(ShiftingHotspot, 5000)
	if !ok {
		t.Fatal("preset missing")
	}
	if cfg.ShiftEvery == 0 || cfg.WriteRatio == 0 || cfg.Alpha == 0 {
		t.Fatalf("preset underspecified: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range Presets() {
		if name == ShiftingHotspot {
			found = true
		}
	}
	if !found {
		t.Fatal("preset not listed")
	}
	// Clones keep the churn behaviour (per-client streams shift too).
	g := MustNew(cfg).Clone(3)
	if g.Config().ShiftEvery != cfg.ShiftEvery {
		t.Fatal("clone lost the shift cadence")
	}
}
