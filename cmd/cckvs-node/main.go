// Command cckvs-node runs one standalone KVS shard server over TCP: the
// remote-access (NUMA abstraction) layer of the reproduction deployed
// across real processes. Start one process per node, then drive the
// deployment with cmd/cckvs-load.
//
// Example (two nodes on one machine):
//
//	cckvs-node -id 0 -listen 127.0.0.1:7000 -nodes 2 -preload 10000 &
//	cckvs-node -id 1 -listen 127.0.0.1:7001 -nodes 2 -preload 10000 &
//	cckvs-load -nodes 127.0.0.1:7000,127.0.0.1:7001 -ops 100000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/remote"
	"repro/internal/timestamp"
)

func main() {
	var (
		id      = flag.Int("id", 0, "node id (0-based)")
		listen  = flag.String("listen", "127.0.0.1:7000", "listen address")
		nodes   = flag.Int("nodes", 1, "total nodes in the deployment")
		preload = flag.Int("preload", 0, "preload this many keys (those homed here) with 40B values")
	)
	flag.Parse()

	node, err := remote.StartNode(uint8(*id), *listen, *preload+1024)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer node.Close()

	if *preload > 0 {
		val := make([]byte, 40)
		loaded := 0
		for k := uint64(0); k < uint64(*preload); k++ {
			if remote.HomeNode(k, *nodes) != uint8(*id) {
				continue
			}
			for i := range val {
				val[i] = byte(k) ^ byte(i)
			}
			node.Store().Put(k, val, timestamp.TS{})
			loaded++
		}
		fmt.Printf("node %d: preloaded %d/%d keys\n", *id, loaded, *preload)
	}
	fmt.Printf("node %d: serving on %s (ctrl-c to stop)\n", *id, node.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Printf("node %d: served %d requests\n", *id, node.Served.Load())
}
