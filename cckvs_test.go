package cckvs

import (
	"bytes"
	"testing"
)

func TestOpenDefaults(t *testing.T) {
	kv, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if kv.NumNodes() != 3 {
		t.Fatalf("nodes = %d", kv.NumNodes())
	}
	if kv.Cluster() == nil {
		t.Fatal("cluster accessor broken")
	}
}

func TestPutGetThroughFacade(t *testing.T) {
	for _, cons := range []Consistency{SC, Lin} {
		kv, err := Open(Options{Nodes: 3, Consistency: cons, NumKeys: 1000, CacheItems: 32})
		if err != nil {
			t.Fatal(err)
		}
		want := []byte("facade-value-000000000000000000000000000")
		if err := kv.Put(5, want); err != nil {
			t.Fatal(err)
		}
		// Under Lin the new value is immediately visible everywhere; under
		// SC the writing client sees it via any node only after the async
		// update lands, so retry briefly.
		ok := false
		for i := 0; i < 10000 && !ok; i++ {
			v, err := kv.Get(5)
			if err != nil {
				t.Fatal(err)
			}
			ok = bytes.Equal(v, want)
		}
		if !ok {
			t.Fatalf("%v: replicas never served the written value", cons)
		}
		kv.Close()
	}
}

func TestStatsAccumulate(t *testing.T) {
	kv, err := Open(Options{Nodes: 2, NumKeys: 1000, CacheItems: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	for k := uint64(0); k < 100; k++ {
		if _, err := kv.Get(k % 20); err != nil {
			t.Fatal(err)
		}
	}
	s := kv.Stats()
	if s.CacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
	if s.HitRate() <= 0 || s.HitRate() > 1 {
		t.Fatalf("hit rate %v", s.HitRate())
	}
}

func TestRefreshHotSetAdaptsToPopularity(t *testing.T) {
	kv, err := Open(Options{
		Nodes: 3, NumKeys: 10000, CacheItems: 8, SampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	// Hammer keys 5000..5007, which are outside the initial hot set
	// (keys 0..7).
	for i := 0; i < 400; i++ {
		if _, err := kv.Get(5000 + uint64(i%8)); err != nil {
			t.Fatal(err)
		}
	}
	added, removed := kv.RefreshHotSet()
	if added == 0 || removed == 0 {
		t.Fatalf("hot set did not adapt: added=%d removed=%d", added, removed)
	}
	before := kv.Stats().CacheHits
	if _, err := kv.Get(5000); err != nil {
		t.Fatal(err)
	}
	if kv.Stats().CacheHits != before+1 {
		t.Fatal("newly hot key still misses the cache")
	}
	if kv.Stats().HotSetEpoch != 1 || kv.Stats().HotSetSize == 0 {
		t.Fatalf("stats: %+v", kv.Stats())
	}
}

func TestRefreshHotSetEmptyEpochIsNoop(t *testing.T) {
	kv, err := Open(Options{Nodes: 2, NumKeys: 100, CacheItems: 4, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	// No observations: the refresh must not clear the cache.
	kv.RefreshHotSet()
	if _, err := kv.Get(0); err != nil {
		t.Fatal(err)
	}
	if kv.Stats().CacheHits == 0 {
		t.Fatal("initial hot set lost on empty refresh")
	}
}
