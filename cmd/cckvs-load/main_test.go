package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
)

func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := exec(t, "-definitely-not-a-flag"); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code, _, _ := exec(t, "-h"); code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
}

func TestUnreachableDeploymentExitsOne(t *testing.T) {
	code, _, errb := exec(t, "-nodes", "127.0.0.1:1", "-wait", "300ms", "-timeout", "200ms")
	if code != 1 {
		t.Fatalf("exit code %d, want 1; stderr:\n%s", code, errb)
	}
}

// startDeployment builds a live multi-member TCP deployment inside the test
// process (same topology as three cckvs-node processes) for the CLI to
// drive.
func startDeployment(t *testing.T, proto core.Protocol, nodes int, numKeys uint64, cacheItems int) []string {
	t.Helper()
	cfg := cluster.Config{
		Nodes: nodes, System: cluster.CCKVS, Protocol: proto,
		NumKeys: numKeys, CacheItems: cacheItems, ValueSize: 16,
	}
	trs := make([]*fabric.TCPTransport, nodes)
	addrs := make([]string, nodes)
	for i := range trs {
		tr, err := fabric.NewTCPTransport(uint8(i), "127.0.0.1:0", fabric.NewStats())
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		addrs[i] = tr.ListenAddr()
	}
	for i, tr := range trs {
		for j, addr := range addrs {
			if j != i {
				tr.AddPeer(uint8(j), addr)
			}
		}
		m, err := cluster.NewMember(cfg, i, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr.SetPeerDownHandler(m.PeerDown)
		m.Populate()
		t.Cleanup(func() { m.Close() })
	}
	return addrs
}

// The full CLI pipeline against a live deployment: hot-set bootstrap, skewed
// workload, mid-run online refresh, consistency check, hit-rate floor.
func TestLoadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live deployment run")
	}
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			addrs := startDeployment(t, proto, 3, 4096, 32)
			code, out, errb := exec(t,
				"-nodes", strings.Join(addrs, ","),
				"-keys", "4096", "-hotset", "32", "-alpha", "0.99", "-writes", "0.1",
				"-ops", "400", "-clients", "4", "-value", "16",
				"-refresh-at", "0.5", "-refresh-shift", "8",
				"-verify", "-verify-keys", "8", "-verify-rounds", "10",
				"-min-hit-rate", "0.05",
			)
			if code != 0 {
				t.Fatalf("exit code %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
			}
			for _, want := range []string{
				"deployment ready: 3 nodes",
				"hot set installed: 32 keys",
				"mid-run refresh",
				"consistency check passed",
				"aggregate hit rate",
			} {
				if !strings.Contains(out, want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// A hot set smaller than the checked-key budget must not duplicate verify
// keys (two writers racing one key would fake a stale read), and a 1-round
// check must not stall on the halfway barrier.
func TestLoadVerifySmallHotsetAndShortRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("live deployment run")
	}
	addrs := startDeployment(t, core.SC, 2, 1024, 2)
	code, out, errb := exec(t,
		"-nodes", strings.Join(addrs, ","),
		"-keys", "1024", "-hotset", "2", "-ops", "50", "-clients", "2",
		"-verify", "-verify-keys", "8", "-verify-rounds", "1",
	)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "consistency check passed") {
		t.Fatalf("check did not pass:\n%s", out)
	}
}

// An impossible hit-rate floor must fail the run — this is the CI tripwire
// that proves the floor is actually enforced.
func TestLoadHitRateFloorEnforced(t *testing.T) {
	if testing.Short() {
		t.Skip("live deployment run")
	}
	addrs := startDeployment(t, core.SC, 2, 1024, 8)
	code, _, errb := exec(t,
		"-nodes", strings.Join(addrs, ","),
		"-keys", "1024", "-hotset", "8", "-ops", "100", "-clients", "2",
		"-min-hit-rate", "1.1", // unattainable
	)
	if code != 1 || !strings.Contains(errb, "below required") {
		t.Fatalf("code=%d stderr=%q, want floor violation", code, errb)
	}
}
