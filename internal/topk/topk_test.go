package topk

import (
	"testing"

	"repro/internal/zipf"
)

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s := NewSpaceSaving(10)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Observe(uint64(i))
		}
	}
	top := s.Top(5)
	if len(top) != 5 {
		t.Fatalf("len=%d", len(top))
	}
	if top[0].Key != 4 || top[0].Count != 5 || top[0].Err != 0 {
		t.Fatalf("top entry = %+v", top[0])
	}
	e, ok := s.Estimate(0)
	if !ok || e.Count != 1 {
		t.Fatalf("estimate(0) = %+v %v", e, ok)
	}
}

func TestSpaceSavingGuarantee(t *testing.T) {
	// Space-Saving guarantees items with frequency > n/k are tracked.
	s := NewSpaceSaving(20)
	n := 0
	// Heavy hitters 0..4 with 1000 hits each interleaved with noise keys.
	for i := 0; i < 1000; i++ {
		for h := uint64(0); h < 5; h++ {
			s.Observe(h)
			n++
		}
		for j := 0; j < 3; j++ {
			s.Observe(uint64(1000 + i*3 + j))
			n++
		}
	}
	for h := uint64(0); h < 5; h++ {
		e, ok := s.Estimate(h)
		if !ok {
			t.Fatalf("heavy hitter %d evicted", h)
		}
		if e.Count < 1000 {
			t.Fatalf("heavy hitter %d count=%d < true 1000", h, e.Count)
		}
	}
	top := s.Top(5)
	seen := map[uint64]bool{}
	for _, e := range top {
		seen[e.Key] = true
	}
	for h := uint64(0); h < 5; h++ {
		if !seen[h] {
			t.Fatalf("heavy hitter %d missing from top-5 %v", h, top)
		}
	}
}

func TestSpaceSavingOverestimationBound(t *testing.T) {
	s := NewSpaceSaving(4)
	for i := uint64(0); i < 100; i++ {
		s.Observe(i % 8)
	}
	for _, e := range s.Top(4) {
		// Count overestimates true frequency by at most Err.
		if e.Err > e.Count {
			t.Fatalf("error exceeds count: %+v", e)
		}
	}
}

func TestSpaceSavingReset(t *testing.T) {
	s := NewSpaceSaving(4)
	s.Observe(1)
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("len after reset = %d", s.Len())
	}
	if _, ok := s.Estimate(1); ok {
		t.Fatalf("key survived reset")
	}
}

func TestSpaceSavingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewSpaceSaving(0)
}

func TestZipfTopKRecovery(t *testing.T) {
	// Fed a Zipfian stream, the summary must recover (most of) the true
	// hottest ranks — the property the symmetric cache depends on.
	g, err := zipf.NewGenerator(100000, 0.99, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSpaceSaving(512)
	for i := 0; i < 300000; i++ {
		s.Observe(g.Next())
	}
	top := s.Top(64)
	hits := 0
	for _, e := range top {
		if e.Key < 128 {
			hits++
		}
	}
	if hits < 48 {
		t.Fatalf("only %d/64 of reported top keys are truly hot", hits)
	}
}

func TestSamplerRate(t *testing.T) {
	s := NewSampler(16, 10)
	for i := 0; i < 1000; i++ {
		s.Observe(7)
	}
	top := s.Top(1)
	if len(top) != 1 || top[0].Count != 100 {
		t.Fatalf("sampled count = %+v, want 100", top)
	}
	s.Reset()
	if len(s.Top(1)) != 0 {
		t.Fatalf("reset failed")
	}
}

func TestSamplerZeroRate(t *testing.T) {
	s := NewSampler(4, 0) // must clamp to 1
	s.Observe(3)
	if len(s.Top(1)) != 1 {
		t.Fatalf("rate 0 must behave as rate 1")
	}
}

func TestCoordinatorPublishesHotSet(t *testing.T) {
	c := NewCoordinator(4, 16, 1)
	var got *HotSet
	c.Subscribe(func(h *HotSet) { got = h })

	for i := 0; i < 100; i++ {
		c.Observe(1)
		c.Observe(2)
	}
	c.Observe(99)

	hs, added, removed := c.EndEpoch()
	if got != hs {
		t.Fatalf("subscriber did not receive the published set")
	}
	if hs.Epoch != 1 {
		t.Fatalf("epoch = %d", hs.Epoch)
	}
	if !hs.Contains(1) || !hs.Contains(2) {
		t.Fatalf("hot keys missing: %v", hs.Keys)
	}
	if added != hs.Size() || removed != 0 {
		t.Fatalf("churn added=%d removed=%d", added, removed)
	}
	if c.Current() != hs {
		t.Fatalf("Current() mismatch")
	}
}

func TestCoordinatorChurnAcrossEpochs(t *testing.T) {
	c := NewCoordinator(2, 8, 1)
	for i := 0; i < 50; i++ {
		c.Observe(1)
		c.Observe(2)
	}
	c.EndEpoch()

	// New epoch: key 3 displaces key 2.
	for i := 0; i < 80; i++ {
		c.Observe(1)
		c.Observe(3)
	}
	_, added, removed := c.EndEpoch()
	if added == 0 || removed == 0 {
		t.Fatalf("expected churn, got added=%d removed=%d", added, removed)
	}
	a, r := c.Churn()
	if a != added || r != removed {
		t.Fatalf("Churn() = %d,%d want %d,%d", a, r, added, removed)
	}
}

func TestCoordinatorTracksAtLeastCacheSize(t *testing.T) {
	c := NewCoordinator(8, 2, 1) // trackK < cacheSize must be bumped
	for i := uint64(0); i < 8; i++ {
		c.Observe(i)
	}
	hs, _, _ := c.EndEpoch()
	if hs.Size() != 8 {
		t.Fatalf("hot set size = %d, want 8", hs.Size())
	}
}

func TestHotSetEmpty(t *testing.T) {
	c := NewCoordinator(4, 8, 1)
	if c.Current().Contains(1) || c.Current().Size() != 0 {
		t.Fatalf("initial hot set must be empty")
	}
}

func BenchmarkSpaceSavingObserve(b *testing.B) {
	g, _ := zipf.NewGenerator(1_000_000, 0.99, 1)
	s := NewSpaceSaving(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(g.Next())
	}
}

func TestCoordinatorSeed(t *testing.T) {
	c := NewCoordinator(2, 8, 1)
	c.Seed([]uint64{10, 11})
	if !c.Current().Contains(10) || c.Current().Epoch != 0 {
		t.Fatalf("seed not installed")
	}
	for i := 0; i < 10; i++ {
		c.Observe(10)
		c.Observe(99)
	}
	_, added, removed := c.EndEpoch()
	if added != 1 || removed != 1 {
		t.Fatalf("churn vs seed: added=%d removed=%d", added, removed)
	}
}
