// Package seqlock implements sequential locks in the style ccKVS uses for
// its CRCW key-value store and symmetric cache (EuroSys'18, §6.2).
//
// A seqlock pairs a spinlock with a version counter. Writers acquire the
// spinlock, increment the version to an odd value, mutate the protected data,
// then increment the version again (back to even) and release the lock.
// Readers never take the lock: they snapshot the version before and after the
// read and retry if either snapshot is odd or the two differ. Reads are thus
// lock-free and never starve writers, which matches the paper's requirement
// that reads to the cache happen "lock-free and in parallel" while all
// consistency messages are treated as writes.
//
// The implementation follows the OPTIK design pattern cited by the paper:
// version validation doubles as optimistic concurrency control.
//
// Race-detector builds: the optimistic read protocol is invisible to the Go
// race detector — readers touch the protected payload concurrently with
// writers on purpose and rely on version validation to discard torn
// snapshots, which the detector (correctly, per the Go memory model) reports
// as a data race. Under `-race` the reader side therefore degrades to
// mutual exclusion: ReadBegin acquires the writer spinlock and ReadRetry
// releases it (reporting "no retry needed"), so every read section is
// exclusive and the whole suite can run race-clean. Production builds keep
// the lock-free fast path. See read_norace.go / read_race.go. Callers must
// pair each ReadBegin with exactly one ReadRetry on every control path.
package seqlock

import (
	"runtime"
	"sync/atomic"
)

// SeqLock is a sequence lock. The zero value is unlocked with version 0.
//
// The version is advanced by two per write section, so an odd version always
// means "write in progress". ccKVS overlays the protocol Lamport clock on the
// same version word (see internal/core); this package keeps the mechanism
// generic by exposing the raw version.
type SeqLock struct {
	version atomic.Uint64
	lock    atomic.Uint32
}

// Lock acquires the writer spinlock and marks the version odd. It must be
// paired with Unlock. Writers serialize with each other on the spinlock;
// readers observe the odd version and retry.
func (s *SeqLock) Lock() {
	for !s.lock.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
	// Entering the critical section: version becomes odd.
	s.version.Add(1)
}

// TryLock attempts to acquire the writer lock without spinning. It returns
// true on success.
func (s *SeqLock) TryLock() bool {
	if !s.lock.CompareAndSwap(0, 1) {
		return false
	}
	s.version.Add(1)
	return true
}

// Unlock ends the write section: the version returns to even and the spinlock
// is released.
func (s *SeqLock) Unlock() {
	s.version.Add(1)
	s.lock.Store(0)
}

// Read runs fn under optimistic read validation, retrying until fn observes
// a consistent snapshot. fn must be idempotent and must not block.
func (s *SeqLock) Read(fn func()) {
	for {
		v := s.ReadBegin()
		fn()
		if !s.ReadRetry(v) {
			return
		}
	}
}

// Write runs fn while holding the writer lock.
func (s *SeqLock) Write(fn func()) {
	s.Lock()
	fn()
	s.Unlock()
}

// Version returns the current raw version word (odd while a write is in
// progress). Exposed so higher layers can reuse the counter as a logical
// clock, as ccKVS does.
func (s *SeqLock) Version() uint64 { return s.version.Load() }
