// Command cckvs-verify model-checks the ccKVS consistency protocols,
// reproducing the paper's Murphi verification (§5.2): exhaustive
// exploration of a bounded protocol instance, checking the data-value and
// write-serialization invariants at every state and deadlock freedom at
// quiescence.
//
// Usage:
//
//	cckvs-verify                         # default matrix (Lin + SC)
//	cckvs-verify -protocol lin -procs 3 -clock 2
//	cckvs-verify -fault conditional-ack  # demonstrate bug detection
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/mcheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and executes the requested verification, returning the
// process exit code (factored out of main so the CLI is testable end to
// end).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cckvs-verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		protoName = fs.String("protocol", "", "lin or sc (empty: verify both with the default matrix)")
		procs     = fs.Int("procs", 3, "number of replicas")
		addrs     = fs.Int("addrs", 1, "number of keys")
		clock     = fs.Int("clock", 1, "Lamport clock bound")
		faultName = fs.String("fault", "", "inject a protocol bug: conditional-ack | mismatched-update")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *protoName == "" && *faultName == "" {
		matrix := []struct {
			p mcheck.Protocol
			b mcheck.Bounds
		}{
			{mcheck.Lin, mcheck.Bounds{Procs: 3, Addrs: 1, MaxClock: 1}},
			{mcheck.Lin, mcheck.Bounds{Procs: 2, Addrs: 1, MaxClock: 3}},
			{mcheck.Lin, mcheck.Bounds{Procs: 2, Addrs: 2, MaxClock: 1}},
			{mcheck.SC, mcheck.Bounds{Procs: 3, Addrs: 2, MaxClock: 1}},
		}
		failed := false
		for _, m := range matrix {
			rep, err := mcheck.Check(m.p, m.b)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintln(stdout, rep.String())
			if !rep.OK() {
				failed = true
			}
		}
		if failed {
			return 1
		}
		return 0
	}

	proto := mcheck.Lin
	if *protoName == "sc" {
		proto = mcheck.SC
	}
	fault := mcheck.FaultNone
	switch *faultName {
	case "":
	case "conditional-ack":
		fault = mcheck.FaultConditionalAck
	case "mismatched-update":
		fault = mcheck.FaultApplyMismatchedUpdate
	default:
		fmt.Fprintf(stderr, "unknown fault %q\n", *faultName)
		return 2
	}
	rep, err := mcheck.CheckFault(proto, mcheck.Bounds{
		Procs: *procs, Addrs: *addrs, MaxClock: uint8(*clock),
	}, fault)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintln(stdout, rep.String())
	if !rep.OK() {
		fmt.Fprintln(stdout, "counterexample trace:")
		for i, step := range rep.Trace {
			fmt.Fprintf(stdout, "  %2d. %s\n", i+1, step)
		}
		if fault == mcheck.FaultNone {
			return 1
		}
	}
	return 0
}
