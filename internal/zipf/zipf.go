// Package zipf provides the Zipfian popularity machinery used throughout the
// ccKVS reproduction: exact and approximate partial zeta sums, cache hit-rate
// and shard-load analytics (Figures 1 and 3 of the paper), and O(1) Zipfian
// samplers in the style of YCSB (Gray et al.'s algorithm, plus the scrambled
// variant).
//
// In a Zipfian distribution with exponent alpha, the item of popularity rank
// r (1-based) is accessed with probability r^-alpha / Zeta(n, alpha), where
// Zeta is the generalized harmonic number. The paper uses alpha = 0.99 as the
// YCSB default and also evaluates 0.90 and 1.01.
package zipf

import (
	"fmt"
	"math"
	"sync"
)

// exactZetaLimit is the rank up to which partial zeta sums are computed by
// direct summation. Beyond it an integral (midpoint) approximation is used;
// the crossover keeps errors below ~1e-9 while making Zeta(250e6) cheap.
const exactZetaLimit = 1 << 20

// zetaKey memoizes partial sums per (n, alpha).
type zetaKey struct {
	n     uint64
	alpha float64
}

var (
	zetaMu    sync.Mutex
	zetaCache = map[zetaKey]float64{}
)

// Zeta returns the generalized harmonic number H_{n,alpha} =
// sum_{r=1..n} r^-alpha. Results are memoized; the function is safe for
// concurrent use.
func Zeta(n uint64, alpha float64) float64 {
	if n == 0 {
		return 0
	}
	key := zetaKey{n, alpha}
	zetaMu.Lock()
	if v, ok := zetaCache[key]; ok {
		zetaMu.Unlock()
		return v
	}
	zetaMu.Unlock()

	v := zetaUncached(n, alpha)

	zetaMu.Lock()
	zetaCache[key] = v
	zetaMu.Unlock()
	return v
}

func zetaUncached(n uint64, alpha float64) float64 {
	limit := n
	if limit > exactZetaLimit {
		limit = exactZetaLimit
	}
	sum := 0.0
	for r := uint64(1); r <= limit; r++ {
		sum += math.Pow(float64(r), -alpha)
	}
	if n > limit {
		// Midpoint-rule integral approximation of the tail
		// sum_{r=limit+1..n} r^-alpha ~= integral over [limit+0.5, n+0.5].
		sum += integralPow(float64(limit)+0.5, float64(n)+0.5, alpha)
	}
	return sum
}

// integralPow integrates x^-alpha over [a, b].
func integralPow(a, b, alpha float64) float64 {
	if alpha == 1 {
		return math.Log(b / a)
	}
	return (math.Pow(b, 1-alpha) - math.Pow(a, 1-alpha)) / (1 - alpha)
}

// Prob returns the access probability of the item with popularity rank r
// (1-based) in a Zipfian distribution over n items.
func Prob(r, n uint64, alpha float64) float64 {
	if r == 0 || r > n {
		return 0
	}
	return math.Pow(float64(r), -alpha) / Zeta(n, alpha)
}

// TopMass returns the cumulative access probability of the k most popular
// items out of n, i.e. the hit rate of a perfect cache holding the top-k
// (Figure 3). k may exceed n, in which case the mass is 1.
func TopMass(k, n uint64, alpha float64) float64 {
	if n == 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	return Zeta(k, alpha) / Zeta(n, alpha)
}

// HitRate is TopMass expressed with the cache sized as a fraction of the
// dataset, matching the x-axis of Figure 3 ("Cache size (% of dataset)").
func HitRate(cacheFrac float64, n uint64, alpha float64) float64 {
	if cacheFrac <= 0 {
		return 0
	}
	k := uint64(cacheFrac * float64(n))
	if k == 0 {
		k = 1
	}
	return TopMass(k, n, alpha)
}

// ShardLoads computes the fraction of total accesses landing on each of
// `shards` servers when n keys are placed by the supplied placement function
// (rank -> shard, ranks 0-based by popularity). The head of the distribution
// (the hottest `exactHead` ranks) is attributed exactly; the tail is spread
// proportionally to the number of tail keys each shard owns, which is
// accurate because tail items are individually negligible. This regenerates
// Figure 1.
func ShardLoads(n uint64, alpha float64, shards int, place func(rank uint64) int) []float64 {
	const exactHead = 1 << 16
	loads := make([]float64, shards)
	head := uint64(exactHead)
	if head > n {
		head = n
	}
	z := Zeta(n, alpha)
	tailKeys := make([]float64, shards)
	for r := uint64(0); r < head; r++ {
		loads[place(r)] += math.Pow(float64(r+1), -alpha) / z
	}
	if head < n {
		// Count tail ownership by sampling placement over a stride; with a
		// hash placement every shard owns ~(n-head)/shards keys.
		const samples = 1 << 14
		stride := (n - head) / samples
		if stride == 0 {
			stride = 1
		}
		cnt := 0
		for r := head; r < n; r += stride {
			tailKeys[place(r)]++
			cnt++
		}
		tailMass := (Zeta(n, alpha) - Zeta(head, alpha)) / z
		for s := range loads {
			loads[s] += tailMass * tailKeys[s] / float64(cnt)
		}
	}
	return loads
}

// Imbalance summarizes a load vector: the maximum shard load divided by the
// mean shard load (Figure 1 reports hottest ~7x average at 128 servers).
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	total, max := 0.0, 0.0
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	mean := total / float64(len(loads))
	return max / mean
}

// Generator draws Zipfian-distributed popularity ranks in O(1) per sample
// using Gray et al.'s method as popularized by YCSB's ZipfianGenerator.
// Rank 0 is the most popular item. The generator is NOT safe for concurrent
// use; give each client goroutine its own instance.
type Generator struct {
	n     uint64
	alpha float64

	zetan    float64
	eta      float64
	alphaG   float64 // 1/(1-alpha)
	half     float64 // 0.5^alpha
	rng      *splitMix
	scramble bool
}

// NewGenerator returns a Zipfian generator over ranks [0, n) with the given
// exponent and seed. alpha must be in (0, 1) ∪ (1, ~2); the YCSB values 0.90,
// 0.99 and 1.01 are all supported.
func NewGenerator(n uint64, alpha float64, seed uint64) (*Generator, error) {
	if n == 0 {
		return nil, fmt.Errorf("zipf: n must be positive")
	}
	if alpha <= 0 || alpha == 1 {
		return nil, fmt.Errorf("zipf: unsupported alpha %v (must be >0 and != 1)", alpha)
	}
	zetan := Zeta(n, alpha)
	zeta2 := Zeta(2, alpha)
	g := &Generator{
		n:      n,
		alpha:  alpha,
		zetan:  zetan,
		alphaG: 1 / (1 - alpha),
		half:   math.Pow(0.5, alpha),
		eta:    (1 - math.Pow(2/float64(n), 1-alpha)) / (1 - zeta2/zetan),
		rng:    newSplitMix(seed),
	}
	return g, nil
}

// NewScrambled returns a generator whose output ranks are scrambled over the
// keyspace with a hash, as YCSB's ScrambledZipfianGenerator does, so that the
// hottest keys are not clustered at the low end of the key space.
func NewScrambled(n uint64, alpha float64, seed uint64) (*Generator, error) {
	g, err := NewGenerator(n, alpha, seed)
	if err != nil {
		return nil, err
	}
	g.scramble = true
	return g, nil
}

// N returns the size of the rank space.
func (g *Generator) N() uint64 { return g.n }

// Alpha returns the skew exponent.
func (g *Generator) Alpha() float64 { return g.alpha }

// Next draws the next rank. With scrambling enabled the rank is mapped
// through ScrambleRank before being returned.
func (g *Generator) Next() uint64 {
	u := g.rng.float64()
	uz := u * g.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+g.half:
		rank = 1
	default:
		rank = uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alphaG))
		if rank >= g.n {
			rank = g.n - 1
		}
	}
	if g.scramble {
		return ScrambleRank(rank, g.n)
	}
	return rank
}

// ScrambleRank maps a popularity rank to a pseudo-random key id in [0, n)
// using an FNV-1a style mix, mirroring YCSB's scrambled generator.
func ScrambleRank(rank, n uint64) uint64 {
	return Mix64(rank) % n
}

// Mix64 is a strong 64-bit finalizer (splitmix64) used for scrambling and
// key placement hashing across the reproduction.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uniform draws uniformly-distributed ranks; it is the workload of the
// paper's "Uniform" baseline.
type Uniform struct {
	n   uint64
	rng *splitMix
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(n uint64, seed uint64) *Uniform {
	return &Uniform{n: n, rng: newSplitMix(seed)}
}

// Next draws the next rank.
func (u *Uniform) Next() uint64 { return u.rng.next() % u.n }

// splitMix is a tiny, fast, deterministic PRNG (splitmix64). It avoids any
// dependency on math/rand's global state and is reproducible across runs.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
