package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// LocalCoalescingAblation measures the request-coalescing pipeline
// (§6.3/§8.5) on the real in-process cluster in its worst-case-for-caching /
// best-case-for-batching regime: a uniform (alpha=0) workload on the
// cache-less Base system, where (N-1)/N of all requests are remote
// accesses. The first row pins the pipeline to one request per packet and
// drives one op per call — the per-request baseline this PR replaced — and
// the remaining rows grow the client batch size, letting the pipeline pack
// concurrent requests into multi-request packets. Throughput must rise and
// the achieved requests-per-packet must approach the packet cap.
func LocalCoalescingAblation(opsPerClient int) (Table, error) {
	if opsPerClient <= 0 {
		opsPerClient = 4000
	}
	t := Table{
		ID:      "local-coalescing",
		Title:   "Request coalescing on the live cluster [5 nodes, Base, uniform, 5% writes]",
		Columns: []string{"client batch", "throughput ops/s", "reqs/packet", "speedup", "p95 read us"},
	}
	const (
		nodes   = 5
		numKeys = 20000
	)
	var baseline float64
	for _, batch := range []int{1, 4, 16, 64} {
		cfg := cluster.Config{Nodes: nodes, System: cluster.Base, NumKeys: numKeys}
		if batch == 1 {
			cfg.BatchMaxMsgs = 1 // the per-request wire protocol
		}
		cl, err := cluster.New(cfg)
		if err != nil {
			return Table{}, err
		}
		cl.Populate()
		res, err := cl.Run(cluster.RunOptions{
			Clients:      8,
			OpsPerClient: opsPerClient,
			BatchSize:    batch,
			Workload: workload.Config{
				NumKeys: numKeys, Alpha: 0, WriteRatio: 0.05, ValueSize: 40, Seed: 21,
			},
		})
		var msgs, pkts uint64
		for i := 0; i < cl.NumNodes(); i++ {
			msgs += cl.Node(i).RemoteReqMsgs.Load()
			pkts += cl.Node(i).RemoteReqPackets.Load()
		}
		cl.Close()
		if err != nil {
			return Table{}, fmt.Errorf("batch %d: %w", batch, err)
		}
		factor := 0.0
		if pkts > 0 {
			factor = float64(msgs) / float64(pkts)
		}
		if batch == 1 {
			baseline = res.Throughput
		}
		t.AddRow(fmt.Sprintf("%d", batch), res.Throughput, factor,
			fmt.Sprintf("%.2fx", res.Throughput/baseline), float64(res.ReadLat.P95)/1000)
	}
	t.Notes = append(t.Notes,
		"row 1 is the per-request baseline (one request per packet, one op per call); coalescing amortizes per-packet costs exactly as Figure 13a predicts for the RDMA fabric")
	return t, nil
}
