package mcheck

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/timestamp"
)

// Conformance tests for the online hot-set reconfiguration protocol
// (cluster/reconfig.go): random interleavings of the demotion dance
// (freeze → collect → write-back → commit) and of promotions with SC and
// Lin client writes, executed single-threadedly against real core.Cache
// replicas and a real store.Store home shard so every message delivery and
// every protocol step is an explicit schedule action. Two invariants are
// checked on every trial:
//
//   - no lost writes: after the reconfiguration and a full message drain,
//     the home shard holds the value of the highest-timestamped write that
//     was ever issued, no matter where in the transition each write landed
//     (cache, retried-into-home, or in-flight update);
//   - no stale reads past a demotion's write-back: once the keys are
//     committed out of the caches, a read that misses to the home shard
//     never observes a version older than the write-back.

// issuedWrite records one client write and the timestamp that serializes it.
type issuedWrite struct {
	ts  timestamp.TS
	val []byte
}

func maxIssued(t *testing.T, issued []issuedWrite) issuedWrite {
	t.Helper()
	if len(issued) == 0 {
		t.Fatal("no writes issued")
	}
	best := issued[0]
	for _, w := range issued[1:] {
		if w.ts.After(best.ts) {
			best = w
		}
	}
	return best
}

// homePut mirrors the miss path of a put that reached the home shard
// (cluster.localKVSPut / rpcOpPut): serialize against the stored version.
func homePut(home *store.Store, key uint64, writer uint8, val []byte) timestamp.TS {
	_, ts, _ := home.Get(key, nil)
	nts := ts.Next(writer)
	home.Put(key, val, nts)
	return nts
}

// demoter drives the five-phase demotion (freeze → collect → write-back →
// retire → commit) of one key across all replicas, one sub-step per Step
// call, so the test scheduler can interleave client activity anywhere
// inside the transition.
type demoter struct {
	caches []*core.Cache
	home   *store.Store
	key    uint64

	frozen    int
	collected int
	retired   int
	committed int
	best      core.WriteBack
	bestSet   bool
	wroteBack bool
	// WBTS is the version the write-back (if any) pushed home; valid once
	// Done.
	WBTS timestamp.TS
}

func (d *demoter) Done() bool { return d.committed == len(d.caches) }

// Step performs the next demotion sub-step. It returns false when the
// current step must be retried later (a collect found the entry still
// draining protocol traffic).
func (d *demoter) Step() bool {
	switch {
	case d.frozen < len(d.caches):
		d.caches[d.frozen].Freeze([]uint64{d.key})
		d.frozen++
	case d.collected < len(d.caches):
		wb, dirty, quiescent := d.caches[d.collected].CollectFrozen(d.key)
		if !quiescent {
			return false
		}
		if dirty && (!d.bestSet || wb.TS.After(d.best.TS)) {
			d.best, d.bestSet = wb, true
		}
		d.collected++
	case !d.wroteBack:
		if d.bestSet {
			_ = d.home.PutIfNewer(d.key, d.best.Value, d.best.TS)
			d.WBTS = d.best.TS
		}
		d.wroteBack = true
	case d.retired < len(d.caches):
		// Reads go dark everywhere before any replica drops its copy.
		d.caches[d.retired].Retire([]uint64{d.key})
		d.retired++
	default:
		d.caches[d.committed].Remove([]uint64{d.key})
		d.committed++
	}
	return true
}

// TestSCDemotionConformance interleaves SC writes (with the ops.go retry
// discipline: ErrFrozen spins, ErrMiss forwards to the home shard) and
// update deliveries with the demotion protocol.
func TestSCDemotionConformance(t *testing.T) {
	const procs = 3
	const key = uint64(0)
	for trial := 0; trial < 80; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		home := store.New(16)
		home.Put(key, []byte{0, 0}, timestamp.TS{})
		fetch := func(uint64) ([]byte, timestamp.TS, bool) {
			v, ts, err := home.Get(key, nil)
			if err != nil {
				return nil, timestamp.TS{}, false
			}
			return v, ts, true
		}
		caches := make([]*core.Cache, procs)
		for i := range caches {
			caches[i] = core.NewCache(uint8(i), procs)
			caches[i].Install([]uint64{key}, fetch)
		}

		type updMsg struct {
			u  core.Update
			to int
		}
		var msgs []updMsg
		var issued []issuedWrite
		var spinning []int // procs whose write hit ErrFrozen and must retry
		nextVal := byte(1)

		tryWrite := func(p int) {
			val := []byte{nextVal, byte(p)}
			u, err := caches[p].WriteSC(key, val)
			switch err {
			case nil:
				nextVal++
				issued = append(issued, issuedWrite{ts: u.TS, val: append([]byte(nil), val...)})
				for q := 0; q < procs; q++ {
					if q != p {
						msgs = append(msgs, updMsg{u: u, to: q})
					}
				}
			case core.ErrFrozen:
				spinning = append(spinning, p)
			case core.ErrMiss:
				nextVal++
				ts := homePut(home, key, uint8(p), val)
				issued = append(issued, issuedWrite{ts: ts, val: append([]byte(nil), val...)})
			default:
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		deliver := func(i int) {
			m := msgs[i]
			msgs[i] = msgs[len(msgs)-1]
			msgs = msgs[:len(msgs)-1]
			caches[m.to].ApplyUpdateSC(m.u)
		}

		d := &demoter{caches: caches, home: home, key: key}
		// The commit-point invariant is the heart of the write-safety
		// argument: the instant the last replica drops the key, the home
		// shard must already dominate every write issued so far — a write
		// that squeezed into a dying entry after its collect would violate
		// it (and only the freeze step prevents that).
		commitPoint := func() {
			t.Helper()
			_, ts, err := home.Get(key, nil)
			if err != nil {
				t.Fatalf("trial %d: home read at commit point: %v", trial, err)
			}
			for _, w := range issued {
				if w.ts.After(ts) {
					t.Fatalf("trial %d: write %v@%v lost across the demotion (home at %v)",
						trial, w.val, w.ts, ts)
				}
			}
		}
		for step := 0; step < 150; step++ {
			switch rng.Intn(4) {
			case 0:
				tryWrite(rng.Intn(procs))
			case 1:
				if len(spinning) > 0 {
					i := rng.Intn(len(spinning))
					p := spinning[i]
					spinning = append(spinning[:i], spinning[i+1:]...)
					tryWrite(p)
				}
			case 2:
				if len(msgs) > 0 {
					deliver(rng.Intn(len(msgs)))
				}
			case 3:
				if !d.Done() {
					d.Step() // SC entries are always quiescent
					if d.Done() {
						commitPoint()
					}
				}
			}
		}
		// Drain: finish the demotion, flush in-flight updates, and let the
		// spinning writers miss through to the home shard.
		for !d.Done() {
			if !d.Step() {
				t.Fatalf("trial %d: SC entry reported non-quiescent", trial)
			}
			if d.Done() {
				commitPoint()
			}
		}
		for len(msgs) > 0 {
			deliver(len(msgs) - 1)
		}
		for len(spinning) > 0 {
			p := spinning[len(spinning)-1]
			spinning = spinning[:len(spinning)-1]
			tryWrite(p)
		}

		// Past the demotion every cache must miss...
		for p := 0; p < procs; p++ {
			if caches[p].Contains(key) {
				t.Fatalf("trial %d: p%d still caches the demoted key", trial, p)
			}
		}
		// ...and the home shard must hold the highest-timestamped write,
		// at a version no older than the write-back (no lost writes, no
		// stale reads past the write-back).
		v, ts, err := home.Get(key, nil)
		if err != nil {
			t.Fatalf("trial %d: home read: %v", trial, err)
		}
		if ts.Less(d.WBTS) {
			t.Fatalf("trial %d: home version %v older than write-back %v", trial, ts, d.WBTS)
		}
		if len(issued) > 0 {
			win := maxIssued(t, issued)
			if ts != win.ts || !bytes.Equal(v, win.val) {
				t.Fatalf("trial %d: home has %v@%v, want winner %v@%v",
					trial, v, ts, win.val, win.ts)
			}
		}
	}
}

// TestLinDemotionConformance runs the same schedule against the two-phase
// Lin write protocol, whose in-flight invalidations/acks/updates are what
// the collect phase's quiescence check exists for.
func TestLinDemotionConformance(t *testing.T) {
	const procs = 3
	const key = uint64(0)
	for trial := 0; trial < 80; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		home := store.New(16)
		home.Put(key, []byte{0, 0}, timestamp.TS{})
		fetch := func(uint64) ([]byte, timestamp.TS, bool) {
			v, ts, err := home.Get(key, nil)
			if err != nil {
				return nil, timestamp.TS{}, false
			}
			return v, ts, true
		}
		caches := make([]*core.Cache, procs)
		for i := range caches {
			caches[i] = core.NewCache(uint8(i), procs)
			caches[i].Install([]uint64{key}, fetch)
		}

		type linMsg struct {
			m  any
			to int
		}
		var msgs []linMsg
		var issued []issuedWrite
		var spinning []int
		nextVal := byte(1)

		tryWrite := func(p int) {
			val := []byte{nextVal, byte(p)}
			inv, err := caches[p].WriteLinStart(key, val)
			switch err {
			case nil:
				nextVal++
				// The write's place in the serialization order is fixed at
				// start time; losers complete without publishing, which the
				// winner-takes-all invariant below already models.
				issued = append(issued, issuedWrite{ts: inv.TS, val: append([]byte(nil), val...)})
				for q := 0; q < procs; q++ {
					if q != p {
						msgs = append(msgs, linMsg{m: inv, to: q})
					}
				}
			case core.ErrFrozen, core.ErrWritePending:
				spinning = append(spinning, p)
			case core.ErrMiss:
				nextVal++
				ts := homePut(home, key, uint8(p), val)
				issued = append(issued, issuedWrite{ts: ts, val: append([]byte(nil), val...)})
			default:
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		deliver := func(i int) {
			msg := msgs[i]
			msgs[i] = msgs[len(msgs)-1]
			msgs = msgs[:len(msgs)-1]
			switch m := msg.m.(type) {
			case core.Invalidation:
				ack, _ := caches[msg.to].ApplyInvalidation(m)
				msgs = append(msgs, linMsg{m: ack, to: int(m.From)})
			case core.Ack:
				if upd, done := caches[msg.to].ApplyAck(m); done {
					for q := 0; q < procs; q++ {
						if q != msg.to {
							msgs = append(msgs, linMsg{m: upd, to: q})
						}
					}
				}
			case core.Update:
				caches[msg.to].ApplyUpdateLin(m)
			}
		}

		d := &demoter{caches: caches, home: home, key: key}
		// See the SC test: at the instant the demotion commits, the home
		// shard must dominate every write issued so far. For Lin this
		// additionally proves the collect phase really waited out the
		// two-phase writes that were in flight when the freeze landed.
		commitPoint := func() {
			t.Helper()
			_, ts, err := home.Get(key, nil)
			if err != nil {
				t.Fatalf("trial %d: home read at commit point: %v", trial, err)
			}
			for _, w := range issued {
				if w.ts.After(ts) {
					t.Fatalf("trial %d: write %v@%v lost across the demotion (home at %v)",
						trial, w.val, w.ts, ts)
				}
			}
		}
		collectRetries := 0
		for step := 0; step < 200; step++ {
			switch rng.Intn(4) {
			case 0:
				tryWrite(rng.Intn(procs))
			case 1:
				if len(spinning) > 0 {
					i := rng.Intn(len(spinning))
					p := spinning[i]
					spinning = append(spinning[:i], spinning[i+1:]...)
					tryWrite(p)
				}
			case 2:
				if len(msgs) > 0 {
					deliver(rng.Intn(len(msgs)))
				}
			case 3:
				if !d.Done() {
					if !d.Step() {
						collectRetries++ // entry still draining: legal, retry later
					} else if d.Done() {
						commitPoint()
					}
				}
			}
		}
		// Drain in-flight protocol traffic and finish the demotion; collect
		// must go quiescent once the messages are gone (every started write
		// completed or was superseded).
		for !d.Done() {
			if d.Step() {
				if d.Done() {
					commitPoint()
				}
				continue
			}
			if len(msgs) == 0 {
				t.Fatalf("trial %d: collect stuck with no traffic in flight", trial)
			}
			deliver(len(msgs) - 1)
		}
		for len(msgs) > 0 {
			deliver(len(msgs) - 1)
		}
		for len(spinning) > 0 {
			p := spinning[len(spinning)-1]
			spinning = spinning[:len(spinning)-1]
			tryWrite(p)
		}

		for p := 0; p < procs; p++ {
			if caches[p].Contains(key) {
				t.Fatalf("trial %d: p%d still caches the demoted key", trial, p)
			}
		}
		v, ts, err := home.Get(key, nil)
		if err != nil {
			t.Fatalf("trial %d: home read: %v", trial, err)
		}
		if ts.Less(d.WBTS) {
			t.Fatalf("trial %d: home version %v older than write-back %v (stale read past write-back)",
				trial, ts, d.WBTS)
		}
		if len(issued) > 0 {
			win := maxIssued(t, issued)
			if ts != win.ts || !bytes.Equal(v, win.val) {
				t.Fatalf("trial %d: home has %v@%v, want winner %v@%v (retries=%d)",
					trial, v, ts, win.val, win.ts, collectRetries)
			}
		}
	}
}

// promoter drives the prepare → fetch → fill → unfreeze promotion of one
// key across all replicas, one sub-step per Step call. The prepare barrier
// pins the home value (no write can reach the home shard past the frozen
// placeholders, so the fetch cannot be overtaken); the unfreeze barrier
// keeps writes held until every replica serves the value (a write
// completing earlier would be invisible to replicas still missing to the
// home shard).
type promoter struct {
	caches []*core.Cache
	home   *store.Store
	key    uint64

	prepared int
	fetched  bool
	FetchVal []byte
	FetchTS  timestamp.TS
	filled   int
	unfrozen int
}

func (p *promoter) Done() bool { return p.unfrozen == len(p.caches) }

func (p *promoter) Step() {
	switch {
	case p.prepared < len(p.caches):
		p.caches[p.prepared].AddPending([]uint64{p.key})
		p.prepared++
	case !p.fetched:
		v, ts, err := p.home.Get(p.key, nil)
		if err == nil {
			p.FetchVal = append([]byte(nil), v...)
			p.FetchTS = ts
		}
		p.fetched = true
	case p.filled < len(p.caches):
		p.caches[p.filled].FillAdd(p.key, p.FetchVal, p.FetchTS)
		p.filled++
	default:
		p.caches[p.unfrozen].Unfreeze([]uint64{p.key})
		p.unfrozen++
	}
}

// TestSCPromotionConformance interleaves the three-phase promotion with SC
// client writes. The commit-point invariant is the teeth: when the last
// replica goes live, the installed version must dominate every write issued
// so far — a put that reached the home shard after the fetch (the race the
// prepare barrier exists to prevent) would violate it. A final demotion
// then checks end-to-end convergence at the home shard.
func TestSCPromotionConformance(t *testing.T) {
	const procs = 3
	const key = uint64(0)
	for trial := 0; trial < 80; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		home := store.New(16)
		home.Put(key, []byte{0, 0}, timestamp.TS{Clock: 1, Writer: 0})
		caches := make([]*core.Cache, procs)
		for i := range caches {
			caches[i] = core.NewCache(uint8(i), procs)
		}

		type updMsg struct {
			u  core.Update
			to int
		}
		var msgs []updMsg
		var issued, homeIssued []issuedWrite
		var spinning []int
		nextVal := byte(1)

		tryWrite := func(p int) {
			val := []byte{nextVal, byte(p)}
			u, err := caches[p].WriteSC(key, val)
			switch err {
			case nil:
				nextVal++
				issued = append(issued, issuedWrite{ts: u.TS, val: append([]byte(nil), val...)})
				for q := 0; q < procs; q++ {
					if q != p {
						msgs = append(msgs, updMsg{u: u, to: q})
					}
				}
			case core.ErrFrozen:
				// Placeholder: the write spins until the commit.
				spinning = append(spinning, p)
			case core.ErrMiss:
				// Not yet prepared here: the write goes to the home shard.
				nextVal++
				ts := homePut(home, key, uint8(p), val)
				w := issuedWrite{ts: ts, val: append([]byte(nil), val...)}
				issued = append(issued, w)
				homeIssued = append(homeIssued, w)
			default:
				t.Fatalf("trial %d: %v", trial, err)
			}
		}

		pr := &promoter{caches: caches, home: home, key: key}
		commitPoint := func() {
			t.Helper()
			// All replicas live: the fetched version must dominate every
			// home-path write — they all happened before the prepare
			// barrier completed, hence before the fetch (a put overtaking
			// the fetch is the race the placeholder phase prevents; cache
			// writes at already-committed replicas legitimately exceed it).
			for _, w := range homeIssued {
				if w.ts.After(pr.FetchTS) {
					t.Fatalf("trial %d: home write %v@%v overtook the promotion fetch @%v",
						trial, w.val, w.ts, pr.FetchTS)
				}
			}
		}
		for step := 0; step < 120; step++ {
			switch rng.Intn(4) {
			case 0:
				tryWrite(rng.Intn(procs))
			case 1:
				if len(spinning) > 0 {
					i := rng.Intn(len(spinning))
					p := spinning[i]
					spinning = append(spinning[:i], spinning[i+1:]...)
					tryWrite(p)
				}
			case 2:
				if len(msgs) > 0 {
					i := rng.Intn(len(msgs))
					m := msgs[i]
					msgs[i] = msgs[len(msgs)-1]
					msgs = msgs[:len(msgs)-1]
					caches[m.to].ApplyUpdateSC(m.u)
				}
			case 3:
				if !pr.Done() {
					pr.Step()
					if pr.Done() {
						commitPoint()
					}
				}
			}
		}
		// Finish the promotion, release the spinners, drain the updates,
		// then demote everything and require convergence at the home shard.
		for !pr.Done() {
			pr.Step()
			if pr.Done() {
				commitPoint()
			}
		}
		for len(spinning) > 0 {
			p := spinning[len(spinning)-1]
			spinning = spinning[:len(spinning)-1]
			tryWrite(p)
		}
		for len(msgs) > 0 {
			m := msgs[len(msgs)-1]
			msgs = msgs[:len(msgs)-1]
			caches[m.to].ApplyUpdateSC(m.u)
		}
		d := &demoter{caches: caches, home: home, key: key}
		for !d.Done() {
			if !d.Step() {
				t.Fatalf("trial %d: SC entry reported non-quiescent", trial)
			}
		}
		v, ts, err := home.Get(key, nil)
		if err != nil {
			t.Fatalf("trial %d: home read: %v", trial, err)
		}
		if len(issued) > 0 {
			win := maxIssued(t, issued)
			if ts != win.ts || !bytes.Equal(v, win.val) {
				t.Fatalf("trial %d: home has %v@%v, want winner %v@%v",
					trial, v, ts, win.val, win.ts)
			}
		}
	}
}
