package core

import (
	"bytes"
	"testing"

	"repro/internal/timestamp"
)

func TestAddInstallsOnlyNewKeys(t *testing.T) {
	c := newCacheWith(t, 0, 3, 1, 2)
	fetches := 0
	n := c.Add([]uint64{2, 5, 6}, func(key uint64) ([]byte, timestamp.TS, bool) {
		fetches++
		return []byte{byte(key), 0xF0}, timestamp.TS{Clock: 7, Writer: 1}, true
	})
	if n != 2 {
		t.Fatalf("installed %d keys, want 2", n)
	}
	if fetches != 2 {
		t.Fatalf("fetched %d keys (must not re-fetch the cached key 2)", fetches)
	}
	for _, k := range []uint64{1, 2, 5, 6} {
		if !c.Contains(k) {
			t.Fatalf("key %d missing after Add", k)
		}
	}
	v, ts, err := c.Read(5, nil)
	if err != nil || !bytes.Equal(v, []byte{5, 0xF0}) || ts.Clock != 7 {
		t.Fatalf("promoted key wrong: %v %v %v", v, ts, err)
	}
	// The retained key kept its original value.
	v, _, err = c.Read(1, nil)
	if err != nil || !bytes.Equal(v, []byte{1}) {
		t.Fatalf("retained key clobbered: %v %v", v, err)
	}
}

func TestAddSkipsUnfetchableKeys(t *testing.T) {
	c := newCacheWith(t, 0, 2, 1)
	n := c.Add([]uint64{8, 9}, func(key uint64) ([]byte, timestamp.TS, bool) {
		return nil, timestamp.TS{}, key == 9
	})
	if n != 1 || c.Contains(8) || !c.Contains(9) {
		t.Fatalf("n=%d contains8=%v contains9=%v", n, c.Contains(8), c.Contains(9))
	}
	if c.Add(nil, nil) != 0 {
		t.Fatal("empty Add must be a no-op")
	}
}

func TestFreezeBlocksWritesServesReads(t *testing.T) {
	c := newCacheWith(t, 0, 3, 1, 2)
	if _, err := c.WriteSC(1, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if n := c.Freeze([]uint64{1, 99}); n != 1 {
		t.Fatalf("froze %d entries, want 1 (uncached keys skipped)", n)
	}
	if !c.Frozen(1) || c.Frozen(2) {
		t.Fatal("frozen flags wrong")
	}
	// Re-freezing is idempotent.
	if n := c.Freeze([]uint64{1}); n != 0 {
		t.Fatalf("double freeze transitioned %d entries", n)
	}
	// New writes are refused under every protocol...
	if _, err := c.WriteSC(1, []byte{0xBB}); err != ErrFrozen {
		t.Fatalf("WriteSC on frozen entry: %v, want ErrFrozen", err)
	}
	if _, err := c.WriteSCWithTS(1, []byte{0xBB}, timestamp.TS{Clock: 9}); err != ErrFrozen {
		t.Fatalf("WriteSCWithTS on frozen entry: %v, want ErrFrozen", err)
	}
	if _, err := c.WriteLinStart(1, []byte{0xBB}); err != ErrFrozen {
		t.Fatalf("WriteLinStart on frozen entry: %v, want ErrFrozen", err)
	}
	// ...while reads keep serving the committed value.
	v, _, err := c.Read(1, nil)
	if err != nil || !bytes.Equal(v, []byte{0xAA}) {
		t.Fatalf("read on frozen entry: %v %v", v, err)
	}
	// The unfrozen neighbour is untouched.
	if _, err := c.WriteSC(2, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectFrozenReportsDirtyValue(t *testing.T) {
	c := newCacheWith(t, 0, 3, 1, 2)
	if _, err := c.WriteSC(1, []byte{0xAA, 0xAB}); err != nil {
		t.Fatal(err)
	}
	c.Freeze([]uint64{1, 2})
	wb, dirty, ok := c.CollectFrozen(1)
	if !ok || !dirty {
		t.Fatalf("dirty entry: dirty=%v ok=%v", dirty, ok)
	}
	if !bytes.Equal(wb.Value, []byte{0xAA, 0xAB}) || wb.TS.Clock != 1 {
		t.Fatalf("write-back %v@%v", wb.Value, wb.TS)
	}
	// A clean entry needs no write-back, an uncached key is trivially done.
	if _, dirty, ok := c.CollectFrozen(2); !ok || dirty {
		t.Fatalf("clean entry: dirty=%v ok=%v", dirty, ok)
	}
	if _, dirty, ok := c.CollectFrozen(42); !ok || dirty {
		t.Fatalf("uncached key: dirty=%v ok=%v", dirty, ok)
	}
}

func TestCollectFrozenWaitsForLinWrite(t *testing.T) {
	c := newCacheWith(t, 0, 2, 1)
	inv, err := c.WriteLinStart(1, []byte{0xEE})
	if err != nil {
		t.Fatal(err)
	}
	c.Freeze([]uint64{1})
	if _, _, ok := c.CollectFrozen(1); ok {
		t.Fatal("entry with a pending Lin write reported quiescent")
	}
	// The last ack completes the write; now the entry is collectable and
	// carries the written value.
	if _, done := c.ApplyAck(Ack{Key: 1, TS: inv.TS, From: 1}); !done {
		t.Fatal("single ack must complete a 2-node write")
	}
	wb, dirty, ok := c.CollectFrozen(1)
	if !ok || !dirty || !bytes.Equal(wb.Value, []byte{0xEE}) || wb.TS != inv.TS {
		t.Fatalf("post-completion collect: %v dirty=%v ok=%v", wb, dirty, ok)
	}
}

func TestCollectFrozenWaitsForInvalidEntry(t *testing.T) {
	c := newCacheWith(t, 1, 3, 1)
	// A remote writer's invalidation parks the entry in Invalid.
	ts := timestamp.TS{Clock: 5, Writer: 0}
	if _, invalidated := c.ApplyInvalidation(Invalidation{Key: 1, TS: ts, From: 0}); !invalidated {
		t.Fatal("invalidation not applied")
	}
	c.Freeze([]uint64{1})
	if _, _, ok := c.CollectFrozen(1); ok {
		t.Fatal("Invalid entry reported quiescent (its ts already names the winner)")
	}
	// The matching update revalidates; collect then sees the new value.
	if !c.ApplyUpdateLin(Update{Key: 1, TS: ts, Value: []byte{0x99}}) {
		t.Fatal("update not applied")
	}
	wb, dirty, ok := c.CollectFrozen(1)
	if !ok || !dirty || !bytes.Equal(wb.Value, []byte{0x99}) || wb.TS != ts {
		t.Fatalf("post-update collect: %v dirty=%v ok=%v", wb, dirty, ok)
	}
}

func TestRemoveDropsKeysAndPoisonsStragglers(t *testing.T) {
	c := newCacheWith(t, 0, 3, 1, 2, 3)
	// A straggler writer resolved the entry through the pre-Remove table;
	// the shared entry must refuse it afterwards.
	c.Freeze([]uint64{1})
	if n := c.Remove([]uint64{1, 2, 42}); n != 2 {
		t.Fatalf("removed %d keys, want 2", n)
	}
	if c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Fatal("wrong key set after Remove")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if _, _, err := c.Read(1, nil); err != ErrMiss {
		t.Fatalf("removed key must miss, got %v", err)
	}
	if _, err := c.WriteSC(1, nil); err != ErrMiss {
		t.Fatalf("removed key write must miss, got %v", err)
	}
	if c.Stats().Evictions.Load() != 2 {
		t.Fatalf("evictions = %d", c.Stats().Evictions.Load())
	}
	// In-flight consistency traffic for removed keys is dropped quietly.
	if c.ApplyUpdateSC(Update{Key: 1, TS: timestamp.TS{Clock: 3}, Value: []byte{1}}) {
		t.Fatal("update applied to a removed key")
	}
}

func TestConsistencyTrafficStillAppliesWhileFrozen(t *testing.T) {
	c := newCacheWith(t, 1, 3, 1)
	c.Freeze([]uint64{1})
	// SC update from a peer that wrote just before the freeze reached it.
	if !c.ApplyUpdateSC(Update{Key: 1, TS: timestamp.TS{Clock: 2, Writer: 0}, Value: []byte{0x42}}) {
		t.Fatal("frozen entry must still drain in-flight updates")
	}
	v, _, err := c.Read(1, nil)
	if err != nil || !bytes.Equal(v, []byte{0x42}) {
		t.Fatalf("read after frozen update: %v %v", v, err)
	}
	// The drained value is what the demotion writes back.
	wb, dirty, ok := c.CollectFrozen(1)
	if !ok || !dirty || !bytes.Equal(wb.Value, []byte{0x42}) {
		t.Fatalf("collect after frozen update: %v dirty=%v ok=%v", wb, dirty, ok)
	}
}
