package fabric

import "sync"

// Credits implements the credit-based flow control of §6.3. A sender holds a
// per-peer credit budget matching the receiver's posted buffer space; each
// send consumes one credit and credits return either implicitly (a response
// doubles as a credit update — the request/response pattern between cache
// threads and KVS threads) or through explicit credit-update messages (the
// broadcast pattern between cache threads, where updates and invalidations
// receive no application-level response).
type Credits struct {
	mu    sync.Mutex
	cond  *sync.Cond
	avail map[Addr]int
	max   map[Addr]int
	// Waits counts how often a sender blocked on an exhausted budget; the
	// paper tracks the analogous busy-wait counters when hunting
	// bottlenecks (§8.4).
	Waits uint64
}

// NewCredits returns an empty credit table.
func NewCredits() *Credits {
	c := &Credits{avail: map[Addr]int{}, max: map[Addr]int{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// SetBudget grants peer an initial budget of n credits (the receiver's
// posted-receive count for this sender).
func (c *Credits) SetBudget(peer Addr, n int) {
	c.mu.Lock()
	c.avail[peer] = n
	c.max[peer] = n
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Available returns the current credit count for peer.
func (c *Credits) Available(peer Addr) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.avail[peer]
}

// Acquire consumes one credit for peer, blocking until one is available. It
// returns false — without consuming anything — when peer has no budget: the
// peer was dropped from the membership view (Drop) while the caller waited,
// or was never granted one. Senders treat false as "destination gone" and
// fail the message instead of sending it.
func (c *Credits) Acquire(peer Addr) bool {
	c.mu.Lock()
	for c.avail[peer] <= 0 {
		if _, budgeted := c.max[peer]; !budgeted {
			c.mu.Unlock()
			return false
		}
		c.Waits++
		c.cond.Wait()
	}
	c.avail[peer]--
	c.mu.Unlock()
	return true
}

// TryAcquire consumes a credit if one is available, without blocking.
func (c *Credits) TryAcquire(peer Addr) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.avail[peer] <= 0 {
		return false
	}
	c.avail[peer]--
	return true
}

// Grant returns n credits to peer (a response arrived, or an explicit
// credit-update message was received). The budget never exceeds the
// configured maximum. Grants for a peer without a budget are discarded: a
// straggler response from a peer dropped by a view change must not
// resurrect (or leak into) a budget the flip already accounted away.
func (c *Credits) Grant(peer Addr, n int) {
	c.mu.Lock()
	m, ok := c.max[peer]
	if !ok {
		c.mu.Unlock()
		return
	}
	c.avail[peer] += n
	if c.avail[peer] > m {
		c.avail[peer] = m
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Drop removes peer's budget entirely — the peer left the membership view.
// Credits in flight toward it (consumed but never restored) are destroyed
// with the budget rather than leaked into any other peer's; blocked
// acquirers wake and see Acquire return false. It returns how many credits
// were outstanding toward the peer at the drop. SetBudget re-arms the peer
// on rejoin.
func (c *Credits) Drop(peer Addr) (outstanding int) {
	c.mu.Lock()
	if m, ok := c.max[peer]; ok {
		outstanding = m - c.avail[peer]
	}
	delete(c.avail, peer)
	delete(c.max, peer)
	c.mu.Unlock()
	c.cond.Broadcast()
	return outstanding
}

// CreditBatcher implements the credit-update batching optimization of §6.4:
// instead of sending one credit-update message per received consistency
// message, the receiver accumulates deltas and emits a (header-only) credit
// update only after `every` messages from a peer, amortizing the network
// cost of flow control to the point where Figure 11 shows it as negligible.
type CreditBatcher struct {
	mu      sync.Mutex
	pending map[Addr]int
	every   int
	emit    func(peer Addr, n int)
}

// NewCreditBatcher returns a batcher that calls emit with the accumulated
// count once a peer reaches `every` pending credits (every <= 0 means 1).
func NewCreditBatcher(every int, emit func(peer Addr, n int)) *CreditBatcher {
	if every <= 0 {
		every = 1
	}
	return &CreditBatcher{pending: map[Addr]int{}, every: every, emit: emit}
}

// Note records one received message from peer, possibly emitting a batched
// credit update.
func (b *CreditBatcher) Note(peer Addr) {
	b.mu.Lock()
	b.pending[peer]++
	n := b.pending[peer]
	if n < b.every {
		b.mu.Unlock()
		return
	}
	b.pending[peer] = 0
	b.mu.Unlock()
	b.emit(peer, n)
}

// Flush emits any pending credits for all peers (used at shutdown so no
// sender is left starved).
func (b *CreditBatcher) Flush() {
	b.mu.Lock()
	drained := make(map[Addr]int, len(b.pending))
	for p, n := range b.pending {
		if n > 0 {
			drained[p] = n
		}
		b.pending[p] = 0
	}
	b.mu.Unlock()
	for p, n := range drained {
		b.emit(p, n)
	}
}
