package store

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/timestamp"
)

func ts(c uint32, w uint8) timestamp.TS { return timestamp.TS{Clock: c, Writer: w} }

func TestGetMissing(t *testing.T) {
	s := New(16)
	if _, _, err := s.Get(42, nil); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := New(16)
	s.Put(1, []byte("hello"), ts(1, 0))
	v, tsp, err := s.Get(1, nil)
	if err != nil || !bytes.Equal(v, []byte("hello")) || tsp != ts(1, 0) {
		t.Fatalf("got %q %v %v", v, tsp, err)
	}
}

func TestOverwrite(t *testing.T) {
	s := New(16)
	s.Put(1, []byte("a"), ts(1, 0))
	s.Put(1, []byte("bb"), ts(2, 0))
	v, tsp, err := s.Get(1, nil)
	if err != nil || string(v) != "bb" || tsp.Clock != 2 {
		t.Fatalf("got %q %v %v", v, tsp, err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestValueGrowthAndShrink(t *testing.T) {
	s := New(16)
	s.Put(1, bytes.Repeat([]byte{1}, 8), ts(1, 0))
	s.Put(1, bytes.Repeat([]byte{2}, 1024), ts(2, 0)) // grow
	v, _, _ := s.Get(1, nil)
	if len(v) != 1024 || v[0] != 2 {
		t.Fatalf("grow failed: len=%d", len(v))
	}
	s.Put(1, []byte{3}, ts(3, 0)) // shrink
	v, _, _ = s.Get(1, nil)
	if len(v) != 1 || v[0] != 3 {
		t.Fatalf("shrink failed: %v", v)
	}
}

func TestGetReusesDst(t *testing.T) {
	s := New(16)
	s.Put(1, []byte("abc"), ts(1, 0))
	buf := make([]byte, 0, 64)
	v, _, err := s.Get(1, buf)
	if err != nil || string(v) != "abc" {
		t.Fatalf("%q %v", v, err)
	}
	if &v[0] != &buf[:1][0] {
		t.Fatalf("dst buffer not reused")
	}
}

func TestPutIfNewer(t *testing.T) {
	s := New(16)
	s.Put(1, []byte("v1"), ts(5, 1))
	if err := s.PutIfNewer(1, []byte("old"), ts(4, 9)); err != ErrStale {
		t.Fatalf("stale write accepted: %v", err)
	}
	if err := s.PutIfNewer(1, []byte("same"), ts(5, 1)); err != ErrStale {
		t.Fatalf("equal-ts write must be stale: %v", err)
	}
	if err := s.PutIfNewer(1, []byte("new"), ts(5, 2)); err != nil {
		t.Fatalf("newer write rejected: %v", err)
	}
	v, _, _ := s.Get(1, nil)
	if string(v) != "new" {
		t.Fatalf("value = %q", v)
	}
}

func TestPutIfNewerInsertsMissing(t *testing.T) {
	s := New(16)
	if err := s.PutIfNewer(7, []byte("x"), ts(1, 0)); err != nil {
		t.Fatalf("insert via PutIfNewer failed: %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := New(16)
	s.Put(1, []byte("x"), ts(1, 0))
	if !s.Delete(1) {
		t.Fatalf("delete existing returned false")
	}
	if s.Delete(1) {
		t.Fatalf("delete missing returned true")
	}
	if _, _, err := s.Get(1, nil); err != ErrNotFound {
		t.Fatalf("key still present")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestManyKeysAcrossBuckets(t *testing.T) {
	s := New(64)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		s.Put(i, []byte(fmt.Sprintf("v%d", i)), ts(uint32(i), 0))
	}
	if s.Len() != n {
		t.Fatalf("len = %d", s.Len())
	}
	for i := uint64(0); i < n; i += 97 {
		v, _, err := s.Get(i, nil)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d: %q %v", i, v, err)
		}
	}
}

func TestRange(t *testing.T) {
	s := New(16)
	for i := uint64(0); i < 100; i++ {
		s.Put(i, []byte{byte(i)}, ts(uint32(i), 0))
	}
	seen := map[uint64]bool{}
	s.Range(func(k uint64, v []byte, tsp timestamp.TS) bool {
		if len(v) != 1 || v[0] != byte(k) || tsp.Clock != uint32(k) {
			t.Fatalf("key %d wrong value %v ts %v", k, v, tsp)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("ranged over %d keys", len(seen))
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := New(16)
	for i := uint64(0); i < 100; i++ {
		s.Put(i, []byte{1}, ts(1, 0))
	}
	n := 0
	s.Range(func(uint64, []byte, timestamp.TS) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop failed: %d", n)
	}
}

// Concurrent torture: readers must always observe some complete write (a
// value whose bytes all match its stamp), never a mishmash — the atomicity
// requirement of §5.1.
func TestConcurrentReadersSeeAtomicValues(t *testing.T) {
	s := New(16)
	const key = 3
	s.Put(key, bytes.Repeat([]byte{0}, 64), ts(1, 0))

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := uint32(2); !stop.Load(); i++ {
				for j := range buf {
					buf[j] = byte(i) ^ id
				}
				s.Put(key, buf, ts(i, id))
			}
		}(byte(w))
	}

	var rbuf []byte
	for r := 0; r < 30000; r++ {
		v, _, err := s.Get(key, rbuf)
		if err != nil {
			t.Fatalf("key vanished: %v", err)
		}
		rbuf = v
		for j := 1; j < len(v); j++ {
			if v[j] != v[0] {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("torn value: %v", v)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestConcurrentDistinctKeys(t *testing.T) {
	s := New(256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				k := base*1_000_000 + i
				s.Put(k, []byte{byte(k)}, ts(1, uint8(base)))
				if v, _, err := s.Get(k, nil); err != nil || v[0] != byte(k) {
					t.Errorf("key %d: %v %v", k, v, err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if s.Len() != 8000 {
		t.Fatalf("len = %d", s.Len())
	}
}

// Property-based: a store must behave like a map under a random operation
// sequence (single-threaded linearized semantics).
func TestStoreMatchesMapModel(t *testing.T) {
	f := func(ops []struct {
		Key uint8
		Val uint8
		Del bool
	}) bool {
		s := New(8)
		model := map[uint64][]byte{}
		clock := uint32(1)
		for _, op := range ops {
			k := uint64(op.Key % 16)
			if op.Del {
				delete(model, k)
				s.Delete(k)
			} else {
				v := []byte{op.Val}
				model[k] = v
				s.Put(k, v, ts(clock, 0))
				clock++
			}
		}
		for k, want := range model {
			got, _, err := s.Get(k, nil)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedRouting(t *testing.T) {
	p := NewPartitioned(4, 1000)
	if p.NumPartitions() != 4 {
		t.Fatalf("partitions = %d", p.NumPartitions())
	}
	for i := uint64(0); i < 1000; i++ {
		p.Put(i, []byte{byte(i)}, ts(1, 0))
	}
	if p.Len() != 1000 {
		t.Fatalf("len = %d", p.Len())
	}
	// Every key must round-trip and be stable in its partition assignment.
	for i := uint64(0); i < 1000; i += 37 {
		v, _, err := p.Get(i, nil)
		if err != nil || v[0] != byte(i) {
			t.Fatalf("key %d: %v %v", i, v, err)
		}
		if p.PartitionOf(i) != p.PartitionOf(i) {
			t.Fatalf("unstable partition for %d", i)
		}
	}
	// Keys must actually spread across partitions.
	nonEmpty := 0
	for i := 0; i < 4; i++ {
		if p.Partition(i).Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 4 {
		t.Fatalf("only %d partitions populated", nonEmpty)
	}
}

func TestPartitionedPutIfNewer(t *testing.T) {
	p := NewPartitioned(2, 100)
	p.Put(5, []byte("a"), ts(2, 0))
	if err := p.PutIfNewer(5, []byte("b"), ts(1, 0)); err != ErrStale {
		t.Fatalf("stale accepted")
	}
	if err := p.PutIfNewer(5, []byte("b"), ts(3, 0)); err != nil {
		t.Fatalf("newer rejected: %v", err)
	}
}

func TestPartitionedZeroPartitionsClamped(t *testing.T) {
	p := NewPartitioned(0, 10)
	if p.NumPartitions() != 1 {
		t.Fatalf("clamp failed: %d", p.NumPartitions())
	}
}

func BenchmarkGet(b *testing.B) {
	s := New(1 << 16)
	val := bytes.Repeat([]byte{7}, 40)
	for i := uint64(0); i < 1<<16; i++ {
		s.Put(i, val, ts(1, 0))
	}
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _, _ = s.Get(uint64(i)&0xffff, buf)
	}
}

func BenchmarkPut(b *testing.B) {
	s := New(1 << 16)
	val := bytes.Repeat([]byte{7}, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(uint64(i)&0xffff, val, ts(uint32(i), 0))
	}
}
