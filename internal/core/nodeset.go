package core

import "math/bits"

// NodeSet is a fixed-size bitset over node ids — the representation of "who
// is in the membership view" shared by the consistency layer and the cluster.
// It is a plain value (copyable, comparable); the zero value is the empty set.
// Capacity covers the full node-id space of the deployment configs (ids are
// uint8).
type NodeSet struct {
	bits [4]uint64
}

// FullNodeSet returns the set {0, 1, ..., n-1}.
func FullNodeSet(n int) NodeSet {
	var s NodeSet
	for i := 0; i < n; i++ {
		s.bits[i>>6] |= 1 << (uint(i) & 63)
	}
	return s
}

// Has reports whether node i is in the set.
func (s NodeSet) Has(i uint8) bool {
	return s.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// With returns the set plus node i.
func (s NodeSet) With(i uint8) NodeSet {
	s.bits[i>>6] |= 1 << (uint(i) & 63)
	return s
}

// Without returns the set minus node i.
func (s NodeSet) Without(i uint8) NodeSet {
	s.bits[i>>6] &^= 1 << (uint(i) & 63)
	return s
}

// Intersect returns the set intersection.
func (s NodeSet) Intersect(o NodeSet) NodeSet {
	for i := range s.bits {
		s.bits[i] &= o.bits[i]
	}
	return s
}

// Contains reports whether s is a superset of o.
func (s NodeSet) Contains(o NodeSet) bool {
	for i := range s.bits {
		if o.bits[i]&^s.bits[i] != 0 {
			return false
		}
	}
	return true
}

// Count returns the set's cardinality.
func (s NodeSet) Count() int {
	n := 0
	for _, w := range s.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s NodeSet) Empty() bool {
	return s.bits == [4]uint64{}
}
