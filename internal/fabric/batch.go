package fabric

import (
	"sync"

	"repro/internal/metrics"
)

// Batcher implements the two send-side amortizations of §6.4 and §8.5:
//
//   - Doorbell batching: multiple work requests are handed to the NIC as a
//     linked list with a single MMIO write. Here, every Flush counts one
//     doorbell regardless of how many messages it carries.
//   - Request coalescing: multiple application messages headed to the same
//     destination ride in one network packet, shifting the bottleneck from
//     the switch packet-processing rate to raw bandwidth (Figure 13a).
//
// Messages added for a destination accumulate until MaxMsgs or MaxBytes is
// reached, then flush as a single Packet. Callers should FlushAll at the end
// of each request-processing iteration so latency stays bounded
// (opportunistic batching: batch whatever happens to be pending, never wait).
type Batcher struct {
	mu       sync.Mutex
	tr       Transport
	src      Addr
	class    metrics.MsgClass
	maxMsgs  int
	maxBytes int
	stats    *Stats
	// signalEvery models selective signaling: one completion is polled per
	// this many packets (§6.4).
	signalEvery int
	sinceSignal int
	pending     map[Addr]*pendingBuf
}

type pendingBuf struct {
	data []byte
	n    int
}

// BatcherConfig parameterizes a Batcher.
type BatcherConfig struct {
	Src         Addr
	Class       metrics.MsgClass
	MaxMsgs     int // flush after this many messages (<=0: 16)
	MaxBytes    int // flush when a batch would exceed this size (<=0: 4096)
	SignalEvery int // selective signaling batch (<=0: 64)
}

// NewBatcher returns a batcher sending through tr.
func NewBatcher(tr Transport, cfg BatcherConfig, stats *Stats) *Batcher {
	if cfg.MaxMsgs <= 0 {
		cfg.MaxMsgs = 16
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 4096
	}
	if cfg.SignalEvery <= 0 {
		cfg.SignalEvery = 64
	}
	return &Batcher{
		tr:          tr,
		src:         cfg.Src,
		class:       cfg.Class,
		maxMsgs:     cfg.MaxMsgs,
		maxBytes:    cfg.MaxBytes,
		signalEvery: cfg.SignalEvery,
		stats:       stats,
		pending:     map[Addr]*pendingBuf{},
	}
}

// Add appends one encoded message for dst, flushing if thresholds are hit.
func (b *Batcher) Add(dst Addr, msg []byte) error {
	b.mu.Lock()
	buf, ok := b.pending[dst]
	if !ok {
		buf = &pendingBuf{}
		b.pending[dst] = buf
	}
	if buf.n > 0 && (buf.n >= b.maxMsgs || len(buf.data)+len(msg) > b.maxBytes) {
		if err := b.flushLocked(dst, buf); err != nil {
			b.mu.Unlock()
			return err
		}
	}
	buf.data = append(buf.data, msg...)
	buf.n++
	var err error
	if buf.n >= b.maxMsgs || len(buf.data) >= b.maxBytes {
		err = b.flushLocked(dst, buf)
	}
	b.mu.Unlock()
	return err
}

// flushLocked emits the pending batch for dst; b.mu must be held.
func (b *Batcher) flushLocked(dst Addr, buf *pendingBuf) error {
	if buf.n == 0 {
		return nil
	}
	pkt := Packet{
		Src:   b.src,
		Dst:   dst,
		Class: b.class,
		Data:  append([]byte(nil), buf.data...),
	}
	buf.data = buf.data[:0]
	buf.n = 0
	if b.stats != nil {
		b.stats.Doorbells.Add(1)
		b.sinceSignal++
		if b.sinceSignal >= b.signalEvery {
			b.stats.Signaled.Add(1)
			b.sinceSignal = 0
		}
	}
	return b.tr.Send(pkt)
}

// Flush sends any pending batch for dst immediately.
func (b *Batcher) Flush(dst Addr) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if buf, ok := b.pending[dst]; ok {
		return b.flushLocked(dst, buf)
	}
	return nil
}

// FlushAll sends every pending batch.
func (b *Batcher) FlushAll() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for dst, buf := range b.pending {
		if err := b.flushLocked(dst, buf); err != nil {
			return err
		}
	}
	return nil
}

// Broadcast implements the software broadcast primitive of §6.3: the sender
// prepares a separate message per receiver — all pointing at the same
// payload — and posts them to the NIC as one batch. RDMA multicast was tried
// by the authors and found unhelpful (the receive side stays the
// bottleneck), so the software path is the only one implemented here.
func Broadcast(tr Transport, src Addr, dsts []Addr, class metrics.MsgClass, data []byte, stats *Stats) error {
	if stats != nil && len(dsts) > 0 {
		stats.Doorbells.Add(1) // one doorbell for the whole linked list
	}
	for _, dst := range dsts {
		if dst == src {
			continue
		}
		if err := tr.Send(Packet{Src: src, Dst: dst, Class: class, Data: data}); err != nil {
			return err
		}
	}
	return nil
}
