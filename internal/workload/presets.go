package workload

// YCSB-style presets. The paper evaluates with the YCSB default skew
// (alpha = 0.99) and write ratios from 0 to 5%; these presets name the
// standard workload mixes for convenience in examples and benchmarks.

// Preset names.
const (
	// YCSBA is the update-heavy mix: 50% reads, 50% writes.
	YCSBA = "ycsb-a"
	// YCSBB is the read-mostly mix: 95% reads, 5% writes.
	YCSBB = "ycsb-b"
	// YCSBC is read-only.
	YCSBC = "ycsb-c"
	// Facebook uses the 0.2% write ratio the paper cites from TAO.
	Facebook = "facebook"
	// PaperDefault is the paper's headline configuration: alpha = 0.99,
	// 1% writes, 40-byte values.
	PaperDefault = "paper-default"
	// ShiftingHotspot is the churn workload for adaptive hot-set
	// management: the paper's default skew and 5% writes, with the
	// popularity hotspot rotating to a fresh keyspace region every few
	// thousand operations. A static hot set decays toward zero hit rate
	// under it; an adaptive one keeps up.
	ShiftingHotspot = "shifting-hotspot"
	// WriteHeavy drives the consistency plane hard: 50% puts at the paper's
	// default skew. Unlike YCSB-A (same mix) it exists as the named stress
	// workload for the write fan-out — every hot-key put broadcasts
	// updates (SC) or invalidations+acks+updates (Lin) to all peers, so
	// this is the regime where Figure 11's message-count argument bites and
	// consistency coalescing pays off.
	WriteHeavy = "write-heavy"
	// ContendedCounter is the RMW stress mix: very high skew (alpha = 1.01,
	// the paper's most skewed setting) with 30% atomic fetch-and-adds and a
	// trickle of plain writes, so contention concentrates on a handful of
	// hot counters — exactly the traffic the serialized RMW path absorbs.
	// Values are 8 bytes (the counter encoding).
	ContendedCounter = "contended-counter"
)

// Preset returns the named workload configuration over numKeys keys, or
// false if the name is unknown. Callers may adjust Seed and ValueSize.
func Preset(name string, numKeys uint64) (Config, bool) {
	base := Config{
		NumKeys:   numKeys,
		Alpha:     DefaultAlpha,
		ValueSize: DefaultValueSize,
	}
	switch name {
	case YCSBA:
		base.WriteRatio = 0.5
	case YCSBB:
		base.WriteRatio = 0.05
	case YCSBC:
		base.WriteRatio = 0
	case Facebook:
		base.WriteRatio = 0.002
	case PaperDefault:
		base.WriteRatio = 0.01
	case WriteHeavy:
		base.WriteRatio = 0.5
	case ShiftingHotspot:
		base.WriteRatio = 0.05
		// A handful of shifts within even short benchmark runs; the
		// stride default (numKeys/3+1) makes consecutive hot sets nearly
		// disjoint.
		base.ShiftEvery = 4096
	case ContendedCounter:
		base.Alpha = 1.01
		base.RMWFrac = 0.3
		base.WriteRatio = 0.01
		// 8-byte values: every key stores a valid counter encoding, so any
		// key the skew lands an FAA on is addable.
		base.ValueSize = 8
	default:
		return Config{}, false
	}
	return base, true
}

// Presets lists the known preset names.
func Presets() []string {
	return []string{YCSBA, YCSBB, YCSBC, Facebook, PaperDefault, WriteHeavy, ShiftingHotspot, ContendedCounter}
}
