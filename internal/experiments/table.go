// Package experiments maps every table and figure of the paper's evaluation
// (EuroSys'18, §8) to a runner that regenerates it. Each runner returns a
// Table whose rows carry the same series the paper plots; cmd/cckvs-bench
// renders them as text and bench_test.go wraps them as benchmarks.
//
// Measured-series numbers come from internal/simnet (the calibrated rack
// simulator standing in for the authors' testbed) and, for the model lines
// of Figures 14 and 15, from internal/model (the paper's own analytical
// model). Small-scale functional validation against the real in-process
// cluster lives in local.go.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment: a title, column headers and string rows.
type Table struct {
	ID      string // figure/table identifier, e.g. "fig8"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries caveats (substitutions, calibration) shown under the
	// table.
	Notes []string
}

// AddRow appends a row, formatting each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
