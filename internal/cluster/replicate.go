package cluster

import (
	"errors"
	"fmt"

	"repro/internal/timestamp"
)

// Per-shard primary-backup replication. With Config.ReplicasPerShard > 1
// every key's shard data lives on ReplicasOf(key): the home plus its ring
// successors. The first LIVE replica in that order is the key's acting
// primary — a view flip promotes the next backup implicitly, with no
// per-key promotion state. Cache-missing reads route to the acting primary
// only (never to a backup: backups legitimately run *ahead* of the primary
// mid-write, see below, and reading them would break per-reader
// monotonicity across healing views). Cache-missing puts run a three-phase
// protocol driven by the origin node, in the caller's context — the KVS
// dispatcher threads never block on peer RPCs, which is what keeps two
// nodes' dispatchers from deadlocking on each other:
//
//  1. stamp   — the acting primary reserves a write timestamp strictly
//               above both its stored version and every prior stamp
//               (rpcOpPutStamp), so commits can use PutIfNewer everywhere
//               without an acked write ever losing to the stored value.
//  2. commit  — the origin fans the stamped value out to every other live
//               replica (rpcOpPutCommit, PutIfNewer semantics).
//  3. apply   — the acting primary itself applies LAST. Ordering matters:
//               were the primary to apply first, a reader could observe
//               the new version at the primary, the primary die, and the
//               promoted backup serve the old one — an observable stale
//               read. A backup running ahead is safe: the value it serves
//               after promotion was merely not yet acked, i.e. fresh.
//
// The put is acked only after all three phases succeed. A replica that died
// mid-protocol is excused once the view excises it; a primary that died
// re-runs the whole protocol against the promoted backup (idempotent: the
// backup already holds the stamped value, the fresh stamp is strictly
// newer, PutIfNewer orders the commits). A Retry answer from any replica
// means the key (re)entered the hot set mid-flight; the origin re-probes
// its cache and re-executes through the cache protocol — the promotion
// fetch lifts the cache entry's version above every issued stamp
// (rpcOpPromoteFetch), so orphaned commits from the bounced attempt lose to
// the cache's eventual demotion write-back.
//
// Known residual, documented rather than solved: the protocol is exactly as
// strong as the failure detector beneath it. During a false-suspicion
// window two nodes can both believe they are the acting primary and hand
// out stamps; PutIfNewer plus the deterministic (Clock, Writer) order make
// all replicas converge to one winner, but the interleaving is not
// linearizable during the window — the same honesty clause as the
// membership layer itself. And with ReplicasPerShard >= 3, a put abandoned
// between its stamp and a minority of its commits can leave that minority's
// timestamp ahead of the promoted primary's until the clock catches up.

// errReplicaMoved reports that the acting primary died mid-protocol and the
// view has moved past it; the caller re-runs against the promoted backup.
var errReplicaMoved = errors.New("cluster: acting primary changed mid-put")

// replicaRetryBudget bounds how many view changes a single operation will
// chase before failing loudly; each retry requires the view to actually
// move, so the bound is generous.
const replicaRetryBudget = 64

// getReplicated serves a cache-missing read in a replicated deployment:
// route to the key's acting primary, chasing at most replicaRetryBudget
// promotions if primaries keep dying mid-read.
func (n *Node) getReplicated(key uint64) ([]byte, error) {
	c := n.cluster
	for attempt := 0; ; attempt++ {
		if attempt > replicaRetryBudget {
			return nil, fmt.Errorf("cluster: read could not settle on a primary for key %d", key)
		}
		view := c.view.Load()
		primary := c.primaryFor(key, view)
		if primary < 0 {
			return nil, homeDownErr(c.HomeNode(key), key)
		}
		if primary == int(n.id) {
			// Reads at the acting primary wait out a rejoin re-sync: the
			// local shard may hold pre-crash state until the seeds land.
			for spin := 0; c.syncing.Load(); spin++ {
				if spin > frozenRetryLimit {
					return nil, ErrFrozenRetriesExhausted
				}
				yield()
			}
			n.LocalOps.Add(1)
			v, _, err := n.kvs.Get(key, nil)
			return v, err
		}
		n.RemoteOps.Add(1)
		v, _, err := n.RemoteGet(uint8(primary), key)
		if err != nil {
			if nv := c.view.Load(); c.primaryFor(key, nv) != primary {
				continue // primary died mid-read; the promoted backup serves
			}
		}
		return v, err
	}
}

// replicatedPut runs the three-phase stamped put for a cache-missing key.
// bounced=true (nil error) reports the key went hot mid-flight at some
// replica; the caller re-probes its cache and re-executes.
func (n *Node) replicatedPut(key uint64, value []byte) (bounced bool, err error) {
	c := n.cluster
	for attempt := 0; ; attempt++ {
		if attempt > replicaRetryBudget {
			return false, fmt.Errorf("cluster: put could not settle on a primary for key %d", key)
		}
		view := c.view.Load()
		primary := c.primaryFor(key, view)
		if primary < 0 {
			return false, homeDownErr(c.HomeNode(key), key)
		}
		ts, bounced, err := n.stampAt(primary, key)
		if bounced {
			return true, nil
		}
		if err != nil {
			if nv := c.view.Load(); c.primaryFor(key, nv) != primary {
				continue // primary died mid-stamp; re-run against its successor
			}
			return false, err
		}
		bounced, err = n.commitReplicated(key, value, ts, primary, view)
		if bounced {
			return true, nil
		}
		if err == errReplicaMoved {
			continue
		}
		return false, err
	}
}

// stampAt runs phase 1 at the acting primary (locally when this node is it).
func (n *Node) stampAt(primary int, key uint64) (timestamp.TS, bool, error) {
	if primary == int(n.id) {
		ts, bounced := n.stampLocal(key)
		return ts, bounced, nil
	}
	ts, err := n.remoteStamp(uint8(primary), key)
	if err == errPutBounced {
		return timestamp.TS{}, true, nil
	}
	return ts, false, err
}

// stampLocal is the local form of rpcOpPutStamp: reserve the next write
// timestamp for key, strictly above the stored version and every prior
// stamp. bounced=true when the key is cached (stale probe) or this node is
// still re-syncing after a rejoin.
func (n *Node) stampLocal(key uint64) (timestamp.TS, bool) {
	if n.cluster.syncing.Load() {
		return timestamp.TS{}, true
	}
	wk := n.workerFor(key)
	wk.homeMu.Lock()
	if n.cache != nil && n.cache.Contains(key) {
		wk.homeMu.Unlock()
		return timestamp.TS{}, true
	}
	sc := scratchPool.Get().(*srvBuf)
	v, ts, err := n.kvs.Get(key, sc.b[:0])
	if err != nil {
		ts = timestamp.TS{}
	} else {
		sc.b = v
	}
	scratchPool.Put(sc)
	wk.seqMu.Lock()
	clock := wk.seqClocks[key]
	if ts.Clock > clock {
		clock = ts.Clock
	}
	clock++
	wk.seqClocks[key] = clock
	wk.seqMu.Unlock()
	wk.homeMu.Unlock()
	return timestamp.TS{Clock: clock, Writer: n.id}, false
}

// commitLocal is the local form of rpcOpPutCommit: apply a stamped value to
// this node's own replica, unless the key is (again) cached.
func (n *Node) commitLocal(key uint64, value []byte, ts timestamp.TS) (bounced bool) {
	wk := n.workerFor(key)
	wk.homeMu.Lock()
	defer wk.homeMu.Unlock()
	if n.cache != nil && n.cache.Contains(key) {
		return true
	}
	_ = n.kvs.PutIfNewer(key, value, ts)
	// A commit carrying an RMW pin's stamp is that RMW landing (rmw.go);
	// release the pin so the next RMW on the key can be stamped.
	if pin, ok := wk.rmwPins[key]; ok && pin.ts == ts {
		delete(wk.rmwPins, key)
	}
	return false
}

// commitReplicated runs phases 2 and 3: commit the stamped value to every
// live backup in parallel, then apply at the acting primary last.
func (n *Node) commitReplicated(key uint64, value []byte, ts timestamp.TS, primary int, view *View) (bounced bool, err error) {
	c := n.cluster
	home := c.HomeNode(key)
	wk := n.workerFor(key)
	req := wireReq{op: rpcOpPutCommit, key: key, ts: ts, value: value}

	// Phase 2: every live replica except the acting primary, fanned out on
	// the coalescing pipeline; the origin's own replica (if any) applies
	// inline.
	var chs []chan rpcResult
	var peers []int
	for i := 0; i < c.cfg.ReplicasPerShard; i++ {
		node := (home + i) % c.cfg.Nodes
		if node == primary {
			continue
		}
		if node == int(n.id) {
			if n.commitLocal(key, value, ts) {
				bounced = true
			}
			continue
		}
		if !view.Live(node) {
			continue
		}
		chs = append(chs, wk.rpc.start(uint8(node), req))
		peers = append(peers, node)
	}
	for i, ch := range chs {
		res, aerr := awaitRPC(ch)
		if aerr != nil {
			// The backup died mid-commit: once the view excises it, its
			// replica is no longer required; otherwise surface the failure.
			if !c.view.Load().Live(peers[i]) {
				continue
			}
			if err == nil {
				err = aerr
			}
			continue
		}
		if res.status == rpcStatusRetry {
			bounced = true
		} else if res.status != rpcStatusOK && err == nil {
			err = fmt.Errorf("cluster: replica commit failed (status %d)", res.status)
		}
	}
	if bounced {
		// The key went hot mid-flight (the symmetric caches are, well,
		// symmetric — if one replica caches it they all do). Orphaned
		// commits from this attempt lose to the cache's demotion write-back
		// (the promotion fetch out-stamped them); re-execute via the cache.
		return true, nil
	}
	if err != nil {
		return false, err
	}

	// Phase 3: apply at the acting primary, strictly after every backup
	// holds the value.
	if primary == int(n.id) {
		if n.commitLocal(key, value, ts) {
			return true, nil
		}
		n.LocalOps.Add(1)
		return false, nil
	}
	n.RemoteOps.Add(1)
	res, aerr := awaitRPC(wk.rpc.start(uint8(primary), req))
	if aerr != nil {
		if !c.view.Load().Live(primary) {
			return false, errReplicaMoved
		}
		return false, aerr
	}
	switch res.status {
	case rpcStatusOK:
		return false, nil
	case rpcStatusRetry:
		return true, nil
	default:
		return false, fmt.Errorf("cluster: primary commit failed (status %d)", res.status)
	}
}
