// Package store implements the MICA-derived in-memory key-value store that
// serves as ccKVS's back-end (EuroSys'18, §6.2).
//
// Data lives in a bucket-chained hash index. Each bucket is protected by a
// seqlock: writers serialize on the bucket spinlock while readers validate a
// version snapshot and retry on interference, so gets are lock-free and never
// starve puts — the concurrency design the paper adopts ("seqlocks allow
// lock-free reads without starving the writes").
//
// The store supports MICA's two thread-partitioning disciplines:
//
//   - CRCW (Concurrent Read Concurrent Write): a single Store shared by all
//     threads; the seqlocks carry the synchronization. ccKVS chooses this
//     mode because it minimizes cross-node connections (§6.2, §6.4).
//   - EREW (Exclusive Read Exclusive Write): a Partitioned store with one
//     partition per thread; each partition is only ever touched by its owner
//     so the seqlocks are uncontended. This is the Base-EREW baseline.
//
// Items carry a version stamped by the caller (the protocol Lamport clock),
// enabling conditional "apply only if newer" writes used when dirty cache
// items are written back to their home shard.
package store

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/seqlock"
	"repro/internal/timestamp"
	"repro/internal/zipf"
)

// Common errors.
var (
	// ErrNotFound is returned by Get for absent keys.
	ErrNotFound = errors.New("store: key not found")
	// ErrStale is returned by PutIfNewer when the stored version is not
	// older than the offered one.
	ErrStale = errors.New("store: stored version is newer")
)

// valBuf is one value buffer plus its lease count. A buffer with live
// leases is immutable: writers that find leases > 0 swap in a fresh buffer
// (copy-on-write) instead of mutating in place, so lease holders keep
// reading a stable snapshot without pinning any lock. The GC reclaims
// swapped-out buffers once the last lease drops its reference.
type valBuf struct {
	leases atomic.Int32
	b      []byte
}

// Lease is a pinned, read-only view of a stored value, handed out by
// GetLease. Value() aliases store memory directly — zero copies — and stays
// valid until Release. Release is idempotent and must be called exactly
// once per lease on every control path; a leaked lease degrades the key's
// writes to copy-on-write forever (correct, but allocates).
type Lease struct {
	buf *valBuf
	val []byte
}

// Value returns the leased bytes. The slice aliases store memory: it is
// read-only and must not be used after Release.
func (l *Lease) Value() []byte { return l.val }

// Held reports whether the lease currently pins a buffer (false for the
// zero Lease and after Release).
func (l *Lease) Held() bool { return l.buf != nil }

// Release unpins the lease. Idempotent; the zero Lease is a no-op.
func (l *Lease) Release() {
	if l.buf != nil {
		l.buf.leases.Add(-1)
		l.buf = nil
		l.val = nil
	}
}

// item is a stored object. The value buffer is only mutated in place while
// it has no leases (never re-sliced) so optimistic readers can copy it and
// rely on seqlock validation to reject torn snapshots; leased buffers are
// replaced copy-on-write instead.
type item struct {
	key  uint64
	ts   timestamp.TS
	vlen int
	val  *valBuf
}

// bucket is one hash chain protected by a seqlock.
type bucket struct {
	lock  seqlock.SeqLock
	items []*item
}

// Store is a single KVS partition. The zero value is not usable; call New.
type Store struct {
	buckets []bucket
	mask    uint64
	// count tracks the number of keys; guarded by countMu since it is off
	// the hot path (insertions only).
	countMu sync.Mutex
	count   int
}

// New returns a store sized for roughly expectedKeys items.
func New(expectedKeys int) *Store {
	nb := 16
	for nb < expectedKeys/4 {
		nb <<= 1
	}
	return &Store{buckets: make([]bucket, nb), mask: uint64(nb - 1)}
}

func (s *Store) bucketFor(key uint64) *bucket {
	return &s.buckets[zipf.Mix64(key)&s.mask]
}

// Get copies the value for key into dst (growing it as needed) and returns
// the value, its version timestamp, and nil; or ErrNotFound. The read is
// lock-free: it validates the bucket seqlock and retries on writer
// interference.
func (s *Store) Get(key uint64, dst []byte) ([]byte, timestamp.TS, error) {
	b := s.bucketFor(key)
	for {
		v := b.lock.ReadBegin()
		var found *item
		for _, it := range b.items {
			if it.key == key {
				found = it
				break
			}
		}
		if found == nil {
			if !b.lock.ReadRetry(v) {
				return nil, timestamp.TS{}, ErrNotFound
			}
			continue
		}
		vlen := found.vlen
		ts := found.ts
		vb := found.val
		// A torn length can only be observed mid-write; the validation
		// below rejects the snapshot. Guard the copy, and call ReadRetry
		// exactly once per ReadBegin (the race-build seqlock depends on
		// strict pairing).
		sane := vb != nil && vlen >= 0 && vlen <= len(vb.b)
		if sane {
			if cap(dst) < vlen {
				dst = make([]byte, vlen)
			}
			dst = dst[:vlen]
			copy(dst, vb.b[:vlen])
		}
		if b.lock.ReadRetry(v) {
			continue
		}
		if !sane {
			return nil, timestamp.TS{}, ErrNotFound
		}
		return dst, ts, nil
	}
}

// GetLease returns a zero-copy lease on key's value: Lease.Value aliases the
// store's own buffer, pinned against in-place mutation until Release. The
// pin is optimistic — the lease count is bumped inside the seqlock read
// window and the snapshot revalidated after, so a concurrent writer either
// sees the lease (and swaps copy-on-write, leaving the leased buffer
// intact) or invalidates the snapshot (and the reader unpins and retries).
// The caller MUST Release the lease on every path, including after errors
// it raises itself; see Lease.
func (s *Store) GetLease(key uint64) (Lease, timestamp.TS, error) {
	b := s.bucketFor(key)
	for {
		v := b.lock.ReadBegin()
		var found *item
		for _, it := range b.items {
			if it.key == key {
				found = it
				break
			}
		}
		if found == nil {
			if !b.lock.ReadRetry(v) {
				return Lease{}, timestamp.TS{}, ErrNotFound
			}
			continue
		}
		vlen := found.vlen
		ts := found.ts
		vb := found.val
		sane := vb != nil && vlen >= 0 && vlen <= len(vb.b)
		if sane {
			// Pin BEFORE validating: both the pin and the writer's version
			// bump are sequentially consistent atomics, so a writer that
			// observes zero leases forces this reader's validation to
			// observe the version bump and retry (and vice versa — if the
			// validation passes, the writer must see the pin).
			vb.leases.Add(1)
		}
		if b.lock.ReadRetry(v) {
			if sane {
				vb.leases.Add(-1)
			}
			continue
		}
		if !sane {
			return Lease{}, timestamp.TS{}, ErrNotFound
		}
		return Lease{buf: vb, val: vb.b[:vlen:vlen]}, ts, nil
	}
}

// Put stores value under key with the given version timestamp,
// unconditionally overwriting any previous value.
func (s *Store) Put(key uint64, value []byte, ts timestamp.TS) {
	s.put(key, value, ts, false)
}

// PutIfNewer stores value only if ts orders after the stored version; it
// returns ErrStale otherwise. Used for write-backs of evicted cache items,
// where a slower replica's flush must not clobber a newer value.
func (s *Store) PutIfNewer(key uint64, value []byte, ts timestamp.TS) error {
	if s.put(key, value, ts, true) {
		return nil
	}
	return ErrStale
}

func (s *Store) put(key uint64, value []byte, ts timestamp.TS, onlyNewer bool) bool {
	b := s.bucketFor(key)
	b.lock.Lock()
	for _, it := range b.items {
		if it.key == key {
			if onlyNewer && !ts.After(it.ts) {
				b.lock.Unlock()
				return false
			}
			// The seqlock's version bump (Lock, above) is ordered before
			// this lease load; a racing GetLease either pinned before the
			// bump (visible here → copy-on-write) or will fail validation
			// and unpin. Leased or undersized buffers are replaced whole so
			// lease holders keep an immutable snapshot.
			if it.val.leases.Load() != 0 || len(it.val.b) < len(value) {
				// Mark shrunk length first so readers never see a length
				// beyond the old buffer, then swap buffers. The buffer
				// always has len == cap so readers bound-check against len.
				it.vlen = 0
				it.val = &valBuf{b: make([]byte, len(value))}
			}
			copy(it.val.b[:len(value)], value)
			it.vlen = len(value)
			it.ts = ts
			b.lock.Unlock()
			return true
		}
	}
	buf := make([]byte, len(value))
	copy(buf, value)
	ni := &item{key: key, ts: ts, vlen: len(value), val: &valBuf{b: buf}}
	b.items = append(b.items, ni)
	b.lock.Unlock()

	s.countMu.Lock()
	s.count++
	s.countMu.Unlock()
	return true
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key uint64) bool {
	b := s.bucketFor(key)
	b.lock.Lock()
	for i, it := range b.items {
		if it.key == key {
			b.items[i] = b.items[len(b.items)-1]
			b.items = b.items[:len(b.items)-1]
			b.lock.Unlock()
			s.countMu.Lock()
			s.count--
			s.countMu.Unlock()
			return true
		}
	}
	b.lock.Unlock()
	return false
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	s.countMu.Lock()
	defer s.countMu.Unlock()
	return s.count
}

// Range calls fn for every key with a private copy of its value, stopping if
// fn returns false. It takes bucket locks briefly and must not be called
// from fn itself.
func (s *Store) Range(fn func(key uint64, value []byte, ts timestamp.TS) bool) {
	for i := range s.buckets {
		b := &s.buckets[i]
		b.lock.Lock()
		// Copy out under the lock, invoke callbacks after releasing it.
		type kv struct {
			key uint64
			val []byte
			ts  timestamp.TS
		}
		snap := make([]kv, 0, len(b.items))
		for _, it := range b.items {
			snap = append(snap, kv{it.key, append([]byte(nil), it.val.b[:it.vlen]...), it.ts})
		}
		b.lock.Unlock()
		for _, e := range snap {
			if !fn(e.key, e.val, e.ts) {
				return
			}
		}
	}
}

// Partitioned composes multiple Store partitions, mapping keys to partitions
// by hash — MICA's EREW organization when each partition is owned by one
// thread, or a striped CRCW store otherwise.
type Partitioned struct {
	parts []*Store
}

// NewPartitioned returns a store with n partitions sized for expectedKeys
// total items.
func NewPartitioned(n, expectedKeys int) *Partitioned {
	if n <= 0 {
		n = 1
	}
	parts := make([]*Store, n)
	for i := range parts {
		parts[i] = New(expectedKeys / n)
	}
	return &Partitioned{parts: parts}
}

// NumPartitions returns the partition count.
func (p *Partitioned) NumPartitions() int { return len(p.parts) }

// PartitionOf returns the partition index owning key.
func (p *Partitioned) PartitionOf(key uint64) int {
	return int(zipf.Mix64(key^0x5bd1e995) % uint64(len(p.parts)))
}

// Partition returns partition i for direct (EREW owner-thread) access.
func (p *Partitioned) Partition(i int) *Store { return p.parts[i] }

// Get routes to the owning partition.
func (p *Partitioned) Get(key uint64, dst []byte) ([]byte, timestamp.TS, error) {
	return p.parts[p.PartitionOf(key)].Get(key, dst)
}

// GetLease routes to the owning partition.
func (p *Partitioned) GetLease(key uint64) (Lease, timestamp.TS, error) {
	return p.parts[p.PartitionOf(key)].GetLease(key)
}

// Put routes to the owning partition.
func (p *Partitioned) Put(key uint64, value []byte, ts timestamp.TS) {
	p.parts[p.PartitionOf(key)].Put(key, value, ts)
}

// PutIfNewer routes to the owning partition.
func (p *Partitioned) PutIfNewer(key uint64, value []byte, ts timestamp.TS) error {
	return p.parts[p.PartitionOf(key)].PutIfNewer(key, value, ts)
}

// Len sums partition sizes.
func (p *Partitioned) Len() int {
	n := 0
	for _, s := range p.parts {
		n += s.Len()
	}
	return n
}
