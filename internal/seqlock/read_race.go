//go:build race

package seqlock

import "runtime"

// RaceEnabled reports whether this build runs under the race detector, in
// which case the reader side of the seqlock is mutual exclusion rather than
// the optimistic version protocol (see the package comment).
const RaceEnabled = true

// ReadBegin acquires the writer spinlock so the read section is exclusive
// and visible to the race detector as properly synchronized. The returned
// snapshot is taken while holding the lock, so ReadRetry never asks for a
// retry.
func (s *SeqLock) ReadBegin() uint64 {
	for !s.lock.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
	return s.version.Load()
}

// ReadRetry releases the spinlock taken by ReadBegin and reports that the
// (exclusive) snapshot is valid. It must be called exactly once per
// ReadBegin on every control path.
func (s *SeqLock) ReadRetry(v uint64) bool {
	s.lock.Store(0)
	return false
}
