// Package workload generates the request streams used in the ccKVS
// evaluation: YCSB-style Zipfian or uniform key popularity, a configurable
// write ratio, and configurable object sizes (§7.2 of the paper: 250M keys,
// 8 B keys, 40 B/256 B/1 KB values, write ratios 0–5%, alpha 0.90/0.99/1.01).
package workload

import (
	"fmt"

	"repro/internal/zipf"
)

// OpType distinguishes the generated operation kinds.
type OpType uint8

// Operation kinds.
const (
	Get OpType = iota
	Put
	// FAA is an atomic fetch-and-add (delta 1) against the key's 8-byte
	// counter encoding — the contended-counter op of the RMW workloads.
	FAA
)

// String names the operation.
func (o OpType) String() string {
	switch o {
	case Put:
		return "put"
	case FAA:
		return "faa"
	}
	return "get"
}

// Op is a single generated request. Key is a popularity rank mapped into the
// keyspace (rank 0 = hottest key unless scrambling is enabled); Value is nil
// for gets and FAAs (an FAA adds Delta server-side instead of carrying a
// payload).
type Op struct {
	Type  OpType
	Key   uint64
	Value []byte
	Delta uint64
}

// Config parameterizes a workload.
type Config struct {
	// NumKeys is the dataset size (paper default: 250M; tests use less).
	NumKeys uint64
	// Alpha is the Zipfian exponent; 0 selects a uniform distribution
	// (the paper's "Uniform" workload).
	Alpha float64
	// WriteRatio is the fraction of puts in [0, 1] (e.g. 0.01 for 1%).
	WriteRatio float64
	// RMWFrac is the fraction of atomic fetch-and-adds in [0, 1], drawn
	// from its own coin stream so turning it up does not perturb the
	// get/put sequence. An op is first tried as an RMW, then as a put —
	// with RMWFrac 0.3 and WriteRatio 0.1 the stream is 30% FAA, 7% put.
	RMWFrac float64
	// ValueSize is the object payload size in bytes (default 40).
	ValueSize int
	// Scramble spreads hot ranks across the keyspace (YCSB scrambled
	// Zipfian). Analytics are simplest unscrambled, which is the default.
	Scramble bool
	// ShiftEvery, when positive, moves the popularity hotspot every that
	// many operations: the rank→key mapping rotates by ShiftStride, so the
	// keys that were hottest go cold and a fresh region of the keyspace
	// heats up — the adversarial churn workload for adaptive hot-set
	// management (§4). 0 keeps the classic static distribution.
	ShiftEvery uint64
	// ShiftStride is how far (in keys) each shift rotates the hotspot;
	// defaults to a large keyspace fraction so consecutive hot sets are
	// nearly disjoint. Used only when ShiftEvery > 0.
	ShiftStride uint64
	// Seed makes the stream deterministic.
	Seed uint64
}

// Default values mirroring the paper's setup.
const (
	DefaultValueSize = 40
	DefaultKeySize   = 8
	DefaultAlpha     = 0.99
)

func (c Config) withDefaults() Config {
	if c.ValueSize == 0 {
		c.ValueSize = DefaultValueSize
	}
	if c.NumKeys == 0 {
		c.NumKeys = 1 << 20
	}
	if c.ShiftEvery > 0 && c.ShiftStride == 0 {
		// Nearly disjoint consecutive hotspots: a large stride that is not
		// a divisor-friendly fraction, so rotations cycle the keyspace.
		c.ShiftStride = c.NumKeys/3 + 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.WriteRatio < 0 || c.WriteRatio > 1 {
		return fmt.Errorf("workload: write ratio %v out of [0,1]", c.WriteRatio)
	}
	if c.RMWFrac < 0 || c.RMWFrac > 1 {
		return fmt.Errorf("workload: rmw fraction %v out of [0,1]", c.RMWFrac)
	}
	if c.Alpha < 0 || c.Alpha == 1 {
		return fmt.Errorf("workload: unsupported alpha %v", c.Alpha)
	}
	if c.ValueSize < 0 {
		return fmt.Errorf("workload: negative value size")
	}
	return nil
}

// keySource abstracts the two popularity distributions.
type keySource interface {
	Next() uint64
}

// Generator produces a deterministic stream of operations. It is not safe
// for concurrent use; create one per client goroutine (use Clone with a
// distinct stream id).
type Generator struct {
	cfg     Config
	keys    keySource
	coin    *coinFlip
	rmwCoin *coinFlip
	value   []byte
	seq     uint64
}

// New builds a generator for the given config.
func New(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var src keySource
	if cfg.Alpha == 0 {
		src = zipf.NewUniform(cfg.NumKeys, cfg.Seed^0xa5a5a5a5)
	} else {
		var g *zipf.Generator
		var err error
		if cfg.Scramble {
			g, err = zipf.NewScrambled(cfg.NumKeys, cfg.Alpha, cfg.Seed^0xa5a5a5a5)
		} else {
			g, err = zipf.NewGenerator(cfg.NumKeys, cfg.Alpha, cfg.Seed^0xa5a5a5a5)
		}
		if err != nil {
			return nil, err
		}
		src = g
	}
	gen := &Generator{
		cfg:     cfg,
		keys:    src,
		coin:    newCoinFlip(cfg.Seed ^ 0xc01),  // independent write-coin stream
		rmwCoin: newCoinFlip(cfg.Seed ^ 0xfaa1), // independent rmw-coin stream
		value:   make([]byte, cfg.ValueSize),
	}
	return gen, nil
}

// MustNew is New, panicking on error; for tests and examples.
func MustNew(cfg Config) *Generator {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }

// Next generates the next operation. The returned value slice is reused
// across calls; callers that retain it must copy.
func (g *Generator) Next() Op {
	g.seq++
	key := g.keys.Next()
	if g.cfg.ShiftEvery > 0 {
		// Rotate the rank→key mapping: after each ShiftEvery operations
		// the whole popularity distribution lands on a different keyspace
		// region, so rank 0 (the hottest key) moves and yesterday's hot
		// set goes cold.
		shifts := g.seq / g.cfg.ShiftEvery
		key = (key + shifts*g.cfg.ShiftStride) % g.cfg.NumKeys
	}
	// Both coins advance every op, so dialing RMWFrac up or down never
	// perturbs which ops the write coin selects.
	isRMW := g.cfg.RMWFrac > 0 && g.rmwCoin.flip(g.cfg.RMWFrac)
	isPut := g.cfg.WriteRatio > 0 && g.coin.flip(g.cfg.WriteRatio)
	if isRMW {
		return Op{Type: FAA, Key: key, Delta: 1}
	}
	if isPut {
		// Deterministic, distinguishable payload: writer stamps sequence.
		fill(g.value, g.seq)
		return Op{Type: Put, Key: key, Value: g.value}
	}
	return Op{Type: Get, Key: key}
}

// Clone returns an independent generator with the same configuration but a
// decorrelated seed, for per-client streams.
func (g *Generator) Clone(stream uint64) *Generator {
	cfg := g.cfg
	cfg.Seed = zipf.Mix64(cfg.Seed ^ (stream+1)*0x9e3779b97f4a7c15)
	ng, err := New(cfg)
	if err != nil {
		panic(err) // config already validated
	}
	return ng
}

// fill writes a recognizable pattern derived from tag into buf.
func fill(buf []byte, tag uint64) {
	for i := range buf {
		buf[i] = byte(tag>>(8*(uint(i)&7))) ^ byte(i)
	}
}

// coinFlip draws Bernoulli samples from a dedicated PRNG stream.
type coinFlip struct{ state uint64 }

func newCoinFlip(seed uint64) *coinFlip { return &coinFlip{state: seed} }

func (c *coinFlip) flip(p float64) bool {
	c.state = zipf.Mix64(c.state + 0x9e3779b97f4a7c15)
	return float64(c.state>>11)/(1<<53) < p
}
