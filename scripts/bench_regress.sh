#!/usr/bin/env bash
# Benchmark regression gate: re-run the ablation benchmarks and compare each
# table against the committed bench/BENCH_baseline_*.json snapshots.
#
# Absolute ops/s are machine-bound, so the comparison (cckvs-bench -compare,
# experiments.CompareRuns) is on each table's *shape*: every row's throughput
# relative to its own table's first row. Those ratios are the property each
# ablation exists to demonstrate — coalescing beats per-request framing,
# batched session frames beat single-op frames — and they transfer across
# hosts. The gate fails when any fresh ratio drops more than TOL below the
# committed one. Tables that carry an allocs/op column (client-edge) are
# additionally gated on it absolutely — allocation counts are a property of
# the code, not the host — so the zero-copy value path cannot silently
# regress: a fresh row may not allocate more than the committed count grown
# by TOL plus a small noise slack.
#
# Like the worker-scaling gate, the script self-skips on a single hardware
# thread: the worker and client-concurrency rows are flat without parallel
# cores, so the ratios are not reproducible there.
#
# Usage: scripts/bench_regress.sh [report_file]
# Env:   TOL (allowed relative ratio drop, default 0.25)
#        OPS (operations per client per mode, default 1500)
set -euo pipefail
cd "$(dirname "$0")/.."

REPORT="${1:-bench_regress_report.txt}"
TOL="${TOL:-0.25}"
OPS="${OPS:-1500}"

# Allocation gate, before the single-thread self-skip: the allocs/op
# thresholds asserted by the TestClient*AllocsPerOp / TestRemoteGetAllocsPerOp
# tests ARE the committed allocation trajectory, and testing.AllocsPerRun is
# deterministic — unlike the throughput ratios this gate is exact,
# machine-independent, and needs no parallel cores.
: > "$REPORT"
echo "=== allocs/op: go test -run 'AllocsPerOp' ===" | tee -a "$REPORT"
if ! go test ./internal/cluster -run 'AllocsPerOp' -count=1 >> "$REPORT" 2>&1; then
    cat "$REPORT"
    echo "bench regression gate: FAILED (allocs/op regressed; see $REPORT)" >&2
    exit 1
fi

if [ "$(getconf _NPROCESSORS_ONLN)" -le 1 ]; then
    echo "bench regression gate: allocs/op OK; throughput tables skipped (single hardware thread; scaling ratios not reproducible)" | tee -a "$REPORT"
    exit 0
fi

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/cckvs-bench" ./cmd/cckvs-bench

fail=0
for mode in coalesce workers clientedge rmw writefanout; do
    base="bench/BENCH_baseline_${mode}.json"
    fresh="$BIN/fresh_${mode}.json"
    if [ ! -f "$base" ]; then
        echo "FAIL: committed baseline $base is missing" | tee -a "$REPORT"
        fail=1
        continue
    fi
    echo "=== $mode: fresh run (ops=$OPS) ===" | tee -a "$REPORT"
    "$BIN/cckvs-bench" "-$mode" -ops "$OPS" -json "$fresh" >> "$REPORT"
    echo "=== $mode: compare against $base (tolerance $TOL) ===" | tee -a "$REPORT"
    if ! "$BIN/cckvs-bench" -compare "$base" -against "$fresh" -tolerance "$TOL" >> "$REPORT" 2>&1; then
        fail=1
    fi
done

cat "$REPORT"
if [ "$fail" -ne 0 ]; then
    echo "bench regression gate: FAILED (see $REPORT)" >&2
    exit 1
fi
echo "bench regression gate: all tables within tolerance (throughput shape + allocs/op)"
