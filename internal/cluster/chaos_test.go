package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// Chaos: kill one node of a 3-member deployment mid-run and assert the
// membership machinery unblocks the survivors within a bounded window —
// writes to survivor-homed (and cached) keys complete, dead-homed cold keys
// fail fast with ErrHomeDown, mcheck-style monotonic readers observe no
// stale or lost reads among the survivors, and everything stays race-clean.
// Covered on the in-process ChanTransport (ping suspicion is the only
// failure signal — nothing "breaks" when a member dies in-process) and over
// real TCP sockets (transport-level detection plus suspicion), for both SC
// and Lin.

// chaosKeys picks the checked key set: hot keys (including, when possible,
// one homed on the doomed node — those must KEEP serving through the kill,
// from the symmetric cache) plus cold keys homed on each survivor.
func chaosKeys(t *testing.T, cfg Config, hot []uint64, doomed int) []uint64 {
	t.Helper()
	keys := make([]uint64, 0, 6)
	// One hot key homed on each node (dead-homed hot keys are the point).
	seen := map[int]bool{}
	for _, k := range hot {
		h := HomeOf(k, cfg.Nodes)
		if !seen[h] {
			seen[h] = true
			keys = append(keys, k)
		}
		if len(seen) == cfg.Nodes {
			break
		}
	}
	// One cold key per survivor home.
	for n := 0; n < cfg.Nodes; n++ {
		if n == doomed {
			continue
		}
		for k := cfg.NumKeys / 2; k < cfg.NumKeys; k++ {
			if HomeOf(k, cfg.Nodes) == n {
				keys = append(keys, k)
				break
			}
		}
	}
	if len(keys) < 3 {
		t.Fatalf("could not assemble a chaos key set (got %v)", keys)
	}
	return keys
}

// coldKeyHomedOnCfg finds a cold key (outside the default hot set) homed on
// node, without needing a cluster handle.
func coldKeyHomedOnCfg(t *testing.T, cfg Config, node int) uint64 {
	t.Helper()
	for k := cfg.NumKeys / 2; k < cfg.NumKeys; k++ {
		if HomeOf(k, cfg.Nodes) == node {
			return k
		}
	}
	t.Fatal("no cold key homed on node")
	return 0
}

func encodeChaosSeq(seq uint64) []byte {
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(v, seq)
	return v
}

func decodeChaosSeq(v []byte) (uint64, bool) {
	if len(v) != 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(v), true
}

// chaosSuspicion widens a tight suspicion timeout under the race detector:
// race instrumentation on a loaded (or single-hardware-thread) box can stall
// the ping responder past a 50-60ms window, falsely excising a LIVE member —
// which these tests then misread as lost updates or phantom ErrHomeDown.
// The non-race build keeps the tight window, so suspicion latency itself
// stays covered.
func chaosSuspicion(d time.Duration) time.Duration {
	if raceEnabled {
		return 4 * d
	}
	return d
}

// waitViewDown polls until every given member's view excludes peer.
func waitViewDown(t *testing.T, members []*Cluster, peer int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for _, m := range members {
		for m.View().Live(peer) {
			if time.Now().After(deadline) {
				t.Fatalf("member %d never excised node %d from its view", m.self, peer)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestChaosKillMemberInProcess is the in-process half of the acceptance
// criterion: 3 member-form clusters over one ChanTransport, ping suspicion
// as the sole failure detector, node 2 killed under live checked traffic.
func TestChaosKillMemberInProcess(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			const doomed = 2
			cfg := Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 2048, CacheItems: 32, ValueSize: 16, WorkersPerNode: 2,
				PingInterval: 5 * time.Millisecond, PingTimeout: chaosSuspicion(60 * time.Millisecond),
			}
			members := newChanMembers(t, cfg)
			hot := DefaultHotSet(cfg.CacheItems)
			if _, err := members[0].ApplyHotSet(0, hot); err != nil {
				t.Fatal(err)
			}
			keys := chaosKeys(t, cfg, hot, doomed)
			survivors := []*Cluster{members[0], members[1]}

			// One writer per key through a fixed survivor (per-key writes
			// serialize), one monotonic reader per survivor: a reader must
			// never observe a key's sequence go backwards — not before the
			// kill, not through it, not after.
			var (
				stop     = make(chan struct{})
				wg       sync.WaitGroup
				finalSeq = make([]atomic.Uint64, len(keys))
				errMu    sync.Mutex
				firstErr error
			)
			fail := func(err error) {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
			for ki, k := range keys {
				wg.Add(1)
				go func(ki int, key uint64) {
					defer wg.Done()
					n := survivors[ki%len(survivors)].LocalNode()
					for seq := uint64(1); ; seq++ {
						select {
						case <-stop:
							return
						default:
						}
						if err := n.Put(key, encodeChaosSeq(seq)); err != nil {
							fail(fmt.Errorf("writer key %d seq %d: %w", key, seq, err))
							return
						}
						finalSeq[ki].Store(seq)
					}
				}(ki, k)
			}
			for _, m := range survivors {
				wg.Add(1)
				go func(m *Cluster) {
					defer wg.Done()
					last := make(map[uint64]uint64, len(keys))
					n := m.LocalNode()
					for {
						select {
						case <-stop:
							return
						default:
						}
						for _, k := range keys {
							v, err := n.Get(k)
							if err != nil {
								fail(fmt.Errorf("reader member %d key %d: %w", m.self, k, err))
								return
							}
							seq, ok := decodeChaosSeq(v)
							if !ok {
								continue // populate-time value
							}
							if seq < last[k] {
								fail(fmt.Errorf("STALE READ member %d key %d: %d after %d", m.self, k, seq, last[k]))
								return
							}
							last[k] = seq
						}
					}
				}(m)
			}

			// Let traffic establish, then kill node 2 abruptly: it stops
			// answering everything (consistency, KVS, pings). Survivors must
			// excise it within the suspicion window and keep going.
			time.Sleep(50 * time.Millisecond)
			members[doomed].Kill()
			waitViewDown(t, survivors, doomed, 5*time.Second)
			time.Sleep(100 * time.Millisecond) // checked traffic through the new view
			close(stop)
			wg.Wait()
			if firstErr != nil {
				t.Fatal(firstErr)
			}

			// Dead-homed cold keys fail fast on every survivor.
			deadCold := coldKeyHomedOnCfg(t, cfg, doomed)
			for _, m := range survivors {
				if _, err := m.LocalNode().Get(deadCold); !errors.Is(err, ErrHomeDown) {
					t.Fatalf("member %d get dead-homed key: %v, want ErrHomeDown", m.self, err)
				}
				if err := m.LocalNode().Put(deadCold, []byte("x")); !errors.Is(err, ErrHomeDown) {
					t.Fatalf("member %d put dead-homed key: %v, want ErrHomeDown", m.self, err)
				}
			}

			// Writes to survivor-homed and cached keys complete post-kill
			// without stalling (the test timeout is the bound).
			for ki, k := range keys {
				seq := finalSeq[ki].Load() + 1
				if err := survivors[ki%2].LocalNode().Put(k, encodeChaosSeq(seq)); err != nil {
					t.Fatalf("post-kill write key %d: %v", k, err)
				}
				finalSeq[ki].Store(seq)
			}

			// Convergence: both survivors serve every key's final write (SC
			// propagates asynchronously; poll).
			for ki, k := range keys {
				want := finalSeq[ki].Load()
				for _, m := range survivors {
					m := m
					waitForValue(t, fmt.Sprintf("member %d key %d", m.self, k), encodeChaosSeq(want), func() ([]byte, error) {
						return m.LocalNode().Get(k)
					})
				}
			}
		})
	}
}

// A Lin write already waiting on the doomed node's ack must be woken by the
// view change — not stall until some client-level timeout. The window is
// bounded by the suspicion timeout plus scheduling noise.
func TestChaosLinWriteUnblocksWithinBoundedWindow(t *testing.T) {
	const doomed = 2
	cfg := Config{
		Nodes: 3, System: CCKVS, Protocol: core.Lin,
		NumKeys: 1024, CacheItems: 16, ValueSize: 16, WorkersPerNode: 1,
		PingInterval: 5 * time.Millisecond, PingTimeout: chaosSuspicion(50 * time.Millisecond),
	}
	members := newChanMembers(t, cfg)
	hot := DefaultHotSet(cfg.CacheItems)
	if _, err := members[0].ApplyHotSet(0, hot); err != nil {
		t.Fatal(err)
	}
	// Kill first, then write immediately: the invalidation broadcast still
	// counts node 2 (the survivors' views have not flipped yet), its ack
	// never arrives, and only the view change can complete the write.
	members[doomed].Kill()
	start := time.Now()
	if err := members[0].LocalNode().Put(hot[0], []byte("unblocked-by-view")); err != nil {
		t.Fatalf("lin write across the kill: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("lin write took %v, want bounded by the suspicion window", d)
	}
	if !members[0].View().Live(doomed) {
		// The flip happened before the write completed, as designed.
		if got, err := members[1].LocalNode().Get(hot[0]); err != nil || string(got) != "unblocked-by-view" {
			t.Fatalf("survivor read after unblocked write: %q %v", got, err)
		}
	}
}

// Manual view transitions without any real failure: PeerDown must fail fast
// and shrink the Lin ack requirement; PeerUp must restore budgets, the ack
// requirement, and home-down keys — the rejoin semantics.
func TestViewDownUpRestoresService(t *testing.T) {
	const down = 2
	cfg := Config{
		Nodes: 3, System: CCKVS, Protocol: core.Lin,
		NumKeys: 1024, CacheItems: 16, ValueSize: 16, WorkersPerNode: 1,
	}
	members := newChanMembers(t, cfg)
	hot := DefaultHotSet(cfg.CacheItems)
	if _, err := members[0].ApplyHotSet(0, hot); err != nil {
		t.Fatal(err)
	}
	deadCold := coldKeyHomedOnCfg(t, cfg, down)

	epoch0 := members[0].View().Epoch
	members[0].PeerDown(down, errors.New("operator said so"))
	if members[0].View().Live(down) || members[0].View().Epoch != epoch0+1 {
		t.Fatalf("view after PeerDown: %+v", members[0].View())
	}
	// The change gossips to member 1 over the fabric.
	waitViewDown(t, []*Cluster{members[1]}, down, 5*time.Second)

	// Fail-fast on both survivors; hot writes complete on the shrunken view
	// (node 2 receives no invalidation, so only node 1's ack is required).
	for _, m := range []*Cluster{members[0], members[1]} {
		if _, err := m.LocalNode().Get(deadCold); !errors.Is(err, ErrHomeDown) {
			t.Fatalf("member %d: %v, want ErrHomeDown", m.self, err)
		}
	}
	if err := members[0].LocalNode().Put(hot[1], []byte("two-member-view")); err != nil {
		t.Fatalf("lin write in two-member view: %v", err)
	}
	waitForValue(t, "member 1", []byte("two-member-view"), func() ([]byte, error) {
		return members[1].LocalNode().Get(hot[1])
	})

	// Rejoin: each survivor re-admits node 2 (the prober would do this on a
	// pong; here the test drives it). Node 2 was never actually gone, so
	// service resumes at full membership immediately.
	members[0].PeerUp(down)
	members[1].PeerUp(down)
	if !members[0].View().Live(down) {
		t.Fatal("PeerUp did not restore the member")
	}
	if err := members[0].LocalNode().Put(deadCold, []byte("back")); err != nil {
		t.Fatalf("put to rejoined home: %v", err)
	}
	if v, err := members[1].LocalNode().Get(deadCold); err != nil || string(v) != "back" {
		t.Fatalf("get via rejoined home: %q %v", v, err)
	}
	// Full-view Lin write again requires (and gets) both acks.
	if err := members[0].LocalNode().Put(hot[1], []byte("full-view")); err != nil {
		t.Fatalf("lin write after rejoin: %v", err)
	}
	waitForValue(t, "member 2", []byte("full-view"), func() ([]byte, error) {
		return members[down].LocalNode().Get(hot[1])
	})
}

// TestTCPChaosKillNode is the sockets half of the acceptance criterion: the
// same kill-one-node scenario over real TCP transports, driven through the
// session layer exactly like a cckvs-load client, with transport-level
// peer-down detection doing the fast excision.
func TestTCPChaosKillNode(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			const doomed = 2
			cfg := Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 2048, CacheItems: 32, ValueSize: 16, WorkersPerNode: 2,
				PingInterval: 20 * time.Millisecond, PingTimeout: 200 * time.Millisecond,
			}
			members, addrs := newTCPMembers(t, cfg)
			cl, err := DialTCP(200, addrs)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			if err := cl.WaitReady(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			hot := DefaultHotSet(cfg.CacheItems)
			if _, _, err := cl.Refresh(0, hot); err != nil {
				t.Fatal(err)
			}
			keys := chaosKeys(t, cfg, hot, doomed)
			survivorNodes := []int{0, 1}

			var (
				stop     = make(chan struct{})
				wg       sync.WaitGroup
				finalSeq = make([]atomic.Uint64, len(keys))
				errMu    sync.Mutex
				firstErr error
			)
			fail := func(err error) {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
			for ki, k := range keys {
				wg.Add(1)
				go func(ki int, key uint64) {
					defer wg.Done()
					node := survivorNodes[ki%len(survivorNodes)]
					for seq := uint64(1); ; seq++ {
						select {
						case <-stop:
							return
						default:
						}
						if err := cl.Put(node, key, encodeChaosSeq(seq)); err != nil {
							fail(fmt.Errorf("writer key %d seq %d via node %d: %w", key, seq, node, err))
							return
						}
						finalSeq[ki].Store(seq)
					}
				}(ki, k)
			}
			for _, node := range survivorNodes {
				wg.Add(1)
				go func(node int) {
					defer wg.Done()
					last := make(map[uint64]uint64, len(keys))
					for {
						select {
						case <-stop:
							return
						default:
						}
						for _, k := range keys {
							v, err := cl.Get(node, k)
							if err != nil {
								fail(fmt.Errorf("reader node %d key %d: %w", node, k, err))
								return
							}
							if seq, ok := decodeChaosSeq(v); ok {
								if seq < last[k] {
									fail(fmt.Errorf("STALE READ node %d key %d: %d after %d", node, k, seq, last[k]))
									return
								}
								last[k] = seq
							}
						}
					}
				}(node)
			}

			time.Sleep(100 * time.Millisecond)
			// "Process death": tear node 2's transport down abruptly. The
			// survivors' broken connections fire their peer-down handlers.
			if err := members[doomed].Close(); err != nil {
				t.Fatal(err)
			}
			waitViewDown(t, []*Cluster{members[0], members[1]}, doomed, 10*time.Second)
			time.Sleep(150 * time.Millisecond)
			close(stop)
			wg.Wait()
			if firstErr != nil {
				t.Fatal(firstErr)
			}

			// Dead-homed cold keys surface the typed home-down status through
			// the session layer on every survivor.
			deadCold := coldKeyHomedOnCfg(t, cfg, doomed)
			for _, node := range survivorNodes {
				if _, err := cl.Get(node, deadCold); !errors.Is(err, ErrHomeDown) {
					t.Fatalf("session get via node %d for dead-homed key: %v, want ErrHomeDown", node, err)
				}
				if err := cl.Put(node, deadCold, []byte("x")); !errors.Is(err, ErrHomeDown) {
					t.Fatalf("session put via node %d for dead-homed key: %v, want ErrHomeDown", node, err)
				}
			}

			// Convergence among survivors on every checked key's final write.
			for ki, k := range keys {
				want := finalSeq[ki].Load()
				if want == 0 {
					continue
				}
				for _, node := range survivorNodes {
					node := node
					waitForValue(t, fmt.Sprintf("node %d key %d", node, k), encodeChaosSeq(want), func() ([]byte, error) {
						return cl.Get(node, k)
					})
				}
			}
		})
	}
}

// TestChaosReplicatedKillPrimary is the replicated acceptance criterion:
// with ReplicasPerShard=2 the kill of a node must close the ErrHomeDown
// window entirely — writes and reads on keys homed at the victim keep
// succeeding through its ring-successor backup once the view flips, no
// acked write is lost across the promotion (writes commit at every live
// replica before acking, the backup strictly runs ahead of the primary),
// and Lin writes in flight at the kill unblock through the view change.
func TestChaosReplicatedKillPrimary(t *testing.T) {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		t.Run(proto.String(), func(t *testing.T) {
			const doomed = 2
			cfg := Config{
				Nodes: 3, System: CCKVS, Protocol: proto,
				NumKeys: 2048, CacheItems: 32, ValueSize: 16, WorkersPerNode: 2,
				ReplicasPerShard: 2,
				PingInterval:     5 * time.Millisecond, PingTimeout: chaosSuspicion(60 * time.Millisecond),
			}
			members := newChanMembers(t, cfg)
			hot := DefaultHotSet(cfg.CacheItems)
			if _, err := members[0].ApplyHotSet(0, hot); err != nil {
				t.Fatal(err)
			}
			// The checked set deliberately includes a cold key homed on the
			// doomed node: unreplicated it would fail fast with ErrHomeDown
			// after the kill; replicated it must keep serving via the backup.
			keys := chaosKeys(t, cfg, hot, doomed)
			deadCold := coldKeyHomedOnCfg(t, cfg, doomed)
			deadColdIdx := len(keys)
			keys = append(keys, deadCold)
			survivors := []*Cluster{members[0], members[1]}

			var (
				stop     = make(chan struct{})
				wg       sync.WaitGroup
				finalSeq = make([]atomic.Uint64, len(keys))
				errMu    sync.Mutex
				firstErr error
			)
			fail := func(err error) {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
			for ki, k := range keys {
				wg.Add(1)
				go func(ki int, key uint64) {
					defer wg.Done()
					n := survivors[ki%len(survivors)].LocalNode()
					for seq := uint64(1); ; seq++ {
						select {
						case <-stop:
							return
						default:
						}
						// Any error fails the run — with a live replica per
						// key there is no tolerated ErrHomeDown anymore.
						if err := n.Put(key, encodeChaosSeq(seq)); err != nil {
							fail(fmt.Errorf("writer key %d seq %d: %w", key, seq, err))
							return
						}
						finalSeq[ki].Store(seq)
					}
				}(ki, k)
			}
			for _, m := range survivors {
				wg.Add(1)
				go func(m *Cluster) {
					defer wg.Done()
					last := make(map[uint64]uint64, len(keys))
					n := m.LocalNode()
					for {
						select {
						case <-stop:
							return
						default:
						}
						for _, k := range keys {
							v, err := n.Get(k)
							if err != nil {
								fail(fmt.Errorf("reader member %d key %d: %w", m.self, k, err))
								return
							}
							seq, ok := decodeChaosSeq(v)
							if !ok {
								continue
							}
							if seq < last[k] {
								fail(fmt.Errorf("STALE READ member %d key %d: %d after %d", m.self, k, seq, last[k]))
								return
							}
							last[k] = seq
						}
					}
				}(m)
			}

			time.Sleep(50 * time.Millisecond)
			members[doomed].Kill()
			waitViewDown(t, survivors, doomed, 5*time.Second)
			time.Sleep(100 * time.Millisecond) // checked traffic through the new view
			close(stop)
			wg.Wait()
			if firstErr != nil {
				t.Fatal(firstErr)
			}

			// No acked write lost across the promotion: the backup now acting
			// as the dead home's primary serves at least the last acked
			// sequence (it held every acked write before the primary did).
			if want := finalSeq[deadColdIdx].Load(); want > 0 {
				v, err := survivors[0].LocalNode().Get(deadCold)
				if err != nil {
					t.Fatalf("get dead-homed key via promoted backup: %v", err)
				}
				if seq, ok := decodeChaosSeq(v); !ok || seq < want {
					t.Fatalf("LOST WRITE key %d: promoted backup serves %d, acked %d", deadCold, seq, want)
				}
			}

			// The ErrHomeDown window is closed: dead-homed ops succeed on
			// every survivor via the promoted backup.
			for _, m := range survivors {
				if _, err := m.LocalNode().Get(deadCold); err != nil {
					t.Fatalf("member %d get dead-homed key: %v, want success via backup", m.self, err)
				}
			}
			for ki, k := range keys {
				seq := finalSeq[ki].Load() + 1
				if err := survivors[ki%2].LocalNode().Put(k, encodeChaosSeq(seq)); err != nil {
					t.Fatalf("post-kill write key %d: %v", k, err)
				}
				finalSeq[ki].Store(seq)
			}
			for ki, k := range keys {
				want := finalSeq[ki].Load()
				for _, m := range survivors {
					m := m
					waitForValue(t, fmt.Sprintf("member %d key %d", m.self, k), encodeChaosSeq(want), func() ([]byte, error) {
						return m.LocalNode().Get(k)
					})
				}
			}
		})
	}
}

// TestReplicatedRejoinReseed: false suspicion of a perfectly live member in
// a replicated deployment. The survivors excise it and serve its keys via
// the promoted backup; when the prober's next pong reveals it was alive all
// along, they must re-seed it with everything written in the window BEFORE
// re-admitting it — a rejoiner serving its pre-suspicion shard state would
// be an observable lost write.
func TestReplicatedRejoinReseed(t *testing.T) {
	const suspect = 2
	cfg := Config{
		Nodes: 3, System: CCKVS, Protocol: core.SC,
		NumKeys: 2048, CacheItems: 32, ValueSize: 16, WorkersPerNode: 2,
		ReplicasPerShard: 2,
		// The prober heals the false suspicion (pong -> re-seed -> PeerUp);
		// the timeout is far above any scheduling noise so no REAL suspicion
		// fires during the test.
		PingInterval: 25 * time.Millisecond, PingTimeout: 10 * time.Second,
	}
	members := newChanMembers(t, cfg)
	survivors := []*Cluster{members[0], members[1]}
	key := coldKeyHomedOnCfg(t, cfg, suspect)

	// False suspicion: both survivors excise the live member. (Gossip would
	// spread one member's suspicion anyway; seeding both makes the window
	// deterministic.)
	members[0].PeerDown(suspect, errors.New("false suspicion"))
	members[1].PeerDown(suspect, errors.New("false suspicion"))

	// Window writes: acked by the promoted backup while the home is out of
	// the survivors' views. The suspected member knows nothing of any of
	// this — its own view never flipped.
	const rounds = 32
	for seq := uint64(1); seq <= rounds; seq++ {
		if err := members[0].LocalNode().Put(key, encodeChaosSeq(seq)); err != nil {
			t.Fatalf("window write seq %d: %v", seq, err)
		}
	}

	// The prober heals the suspicion on its own: pong -> seed-begin ->
	// PeerUp -> seed push -> seed-done.
	deadline := time.Now().Add(10 * time.Second)
	for _, m := range survivors {
		for !m.View().Live(suspect) {
			if time.Now().After(deadline) {
				t.Fatalf("member %d never re-admitted the falsely suspected node", m.self)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// The rejoined member is the key's home — and hence its acting primary
	// again. It must serve the window's final write (its re-sync gate holds
	// local reads until the seeds land; poll through it).
	waitForValue(t, "rejoined member", encodeChaosSeq(rounds), func() ([]byte, error) {
		return members[suspect].LocalNode().Get(key)
	})

	// Fresh writes through the healed view commit at all replicas again:
	// written via a survivor, readable at the rejoined home.
	if err := members[1].LocalNode().Put(key, encodeChaosSeq(rounds+1)); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	waitForValue(t, "rejoined member post-heal", encodeChaosSeq(rounds+1), func() ([]byte, error) {
		return members[suspect].LocalNode().Get(key)
	})
	for _, m := range survivors {
		m := m
		waitForValue(t, fmt.Sprintf("member %d post-heal", m.self), encodeChaosSeq(rounds+1), func() ([]byte, error) {
			return m.LocalNode().Get(key)
		})
	}
}
