// Skew analysis: why symmetric caching works. Reproduces the paper's
// motivating analyses (Figures 1 and 3) and then demonstrates the effect on
// a live in-process cluster: the same Zipfian workload served by the Base
// design and by ccKVS.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
	"repro/internal/zipf"
)

func main() {
	// 1. The problem: a few keys hog the load (Figure 1).
	fmt.Print(experiments.Fig1().Render())
	fmt.Println()

	// 2. The opportunity: a tiny cache absorbs most accesses (Figure 3).
	fmt.Print(experiments.Fig3().Render())
	fmt.Println()

	// 3. Live demonstration at laptop scale: identical skewed workloads
	// against Base and ccKVS-SC.
	const (
		nodes   = 4
		numKeys = 20000
		hotKeys = 200
	)
	wl := workload.Config{NumKeys: numKeys, Alpha: 0.99, WriteRatio: 0.01, Seed: 7}

	run := func(name string, cfg cluster.Config) cluster.RunResult {
		c, err := cluster.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		c.Populate()
		if cfg.System == cluster.CCKVS {
			c.InstallHotSet(cluster.DefaultHotSet(cfg.CacheItems))
		}
		res, err := c.Run(cluster.RunOptions{Clients: 8, OpsPerClient: 3000, Workload: wl})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.0f ops/s   hit rate %5.1f%%   remote accesses %d\n",
			name, res.Throughput, res.HitRate()*100, res.RemoteOps)
		return res
	}

	fmt.Println("live cluster comparison (4 nodes, alpha=0.99, 1% writes):")
	base := run("Base", cluster.Config{Nodes: nodes, System: cluster.Base, NumKeys: numKeys})
	cc := run("ccKVS-SC", cluster.Config{
		Nodes: nodes, System: cluster.CCKVS, Protocol: core.SC,
		NumKeys: numKeys, CacheItems: hotKeys,
	})

	analytic := zipf.TopMass(hotKeys, numKeys, 0.99)
	fmt.Printf("\nccKVS avoided %.0f%% of Base's remote accesses (analytic hit rate %.1f%%)\n",
		(1-float64(cc.RemoteOps)/float64(base.RemoteOps))*100, analytic*100)
}
