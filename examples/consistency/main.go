// Consistency semantics: observable difference between per-key Sequential
// Consistency and per-key Linearizability (the paper's Figure 5 history).
//
// Under SC, a put is non-blocking: a session on another node may still read
// the old value for a short window after the put returns. Under Lin that
// window cannot exist — the put returns only once no replica will serve the
// old value again.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	for _, proto := range []core.Protocol{core.SC, core.Lin} {
		stale := measureStaleReads(proto, 3000)
		fmt.Printf("%-3s: %4d/3000 cross-node reads returned the old value right after Put\n",
			proto, stale)
	}
	fmt.Println()
	fmt.Println("SC permits the stale window (Figure 5 is legal); Lin forbids it:")
	fmt.Println("a Lin read either returns the new value or stalls until the update lands.")
}

// measureStaleReads runs write-then-immediately-read-elsewhere rounds and
// counts how often the reader saw the pre-write value.
func measureStaleReads(proto core.Protocol, rounds int) int {
	c, err := cluster.New(cluster.Config{
		Nodes: 3, System: cluster.CCKVS, Protocol: proto,
		NumKeys: 100, CacheItems: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	c.Populate()
	c.InstallHotSet(cluster.DefaultHotSet(16))

	const key = 3
	stale := 0
	old := []byte(nil)
	for i := 0; i < rounds; i++ {
		fresh := bytes.Repeat([]byte{byte(i)}, 8)
		// Session A writes at node 0...
		if err := c.Node(0).Put(key, fresh); err != nil {
			log.Fatal(err)
		}
		// ...session B immediately reads at node 1.
		v, err := c.Node(1).Get(key)
		if err != nil {
			log.Fatal(err)
		}
		if old != nil && bytes.Equal(v, old) {
			stale++
		}
		old = fresh
	}
	return stale
}
