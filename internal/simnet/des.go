package simnet

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/zipf"
)

// Latency simulation (Figure 13c): average and 95th-percentile request
// latency versus offered load, for read-only and 1%-write workloads with
// request coalescing enabled.
//
// Each node is modeled as two tandem resources — a network port whose
// per-packet service time encodes the switch packet budget, and a CPU whose
// per-visit service time encodes the node's request-processing capacity.
// Requests visit resources in path order (client → handler [→ home] →
// client); Lin writes additionally wait for the slowest of N-1
// invalidation/ack round trips before returning, which is what lifts their
// tail latency at high load (§8.6). Arrivals are Poisson; the simulation
// processes requests in arrival order against per-resource busy-until
// clocks, the standard fast approximation of FIFO single-server queues.

// LatencyPoint is one load point of the latency-vs-load curve.
type LatencyPoint struct {
	OfferedMRPS float64
	AvgUs       float64
	P95Us       float64
}

// latencyParams are the fixed path delays. The 6 µs round trip matches
// InfiniBand rack latencies; batching adds a small accumulation delay.
const (
	wireDelayUs  = 1.5 // one way, per hop
	batchDelayUs = 2.0 // opportunistic batching accumulation per network hop
	clientHops   = 1   // client <-> server hops counted each way
)

// SimulateLatency runs the queueing simulation for cfg at the given offered
// load (requests/second) and returns latency statistics. The requests
// parameter bounds simulation length (e.g. 200_000).
func SimulateLatency(cfg Config, offeredRPS float64, requests int) (LatencyPoint, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return LatencyPoint{}, err
	}
	if offeredRPS <= 0 || requests <= 0 {
		return LatencyPoint{}, fmt.Errorf("simnet: offered load and request count must be positive")
	}
	cal := cfg.Cal
	n := cfg.Nodes
	h := cfg.hitRatio()
	w := cfg.WriteRatio

	// Resource service times in microseconds.
	pktUs := 1e6 / cal.PacketRatePPS
	missPkts := 2.0
	if cfg.Coalesce {
		missPkts /= cal.CoalesceFactor
	}
	cpuUs := 1e6 / cal.NodeCacheOps // cache-thread pool, per visit
	kvsUs := 1e6 / cal.NodeKVSOps   // KVS-thread pool on the home node

	// Under Lin, a read that lands on a hot key with an invalidation in
	// flight stalls until the matching update arrives (§6.2: a cached read
	// "may not succeed"). Hot keys attract both the reads and the writes,
	// so the stall probability is the popularity-weighted chance that a
	// key's invalidation window covers the read. This is what lifts
	// ccKVS-Lin's 95th percentile above its average at high load (§8.6).
	stallProb, stallMeanUs := 0.0, 0.0
	if cfg.System == CCKVS && cfg.Protocol == core.Lin && w > 0 {
		invWindowUs := 4*(wireDelayUs+batchDelayUs) + 2 // inv+ack+update round trips
		stallMeanUs = invWindowUs / 2                   // residual window seen by a read
		for k := uint64(1); k <= 4096; k++ {
			pk := zipf.Prob(k, cfg.NumKeys, cfg.Alpha)
			busyFrac := offeredRPS * w * pk * invWindowUs / 1e6
			if busyFrac > 1 {
				busyFrac = 1
			}
			stallProb += pk * busyFrac
		}
		if h > 0 {
			stallProb /= h // conditioned on the read being a cache hit
		}
		if stallProb > 1 {
			stallProb = 1
		}
	}

	// Each node exposes one single-server engine per visit type. Visits of
	// one type arrive with near-identical pipeline offsets, so each engine
	// is a faithful FIFO queue; lumping types into one engine would let a
	// late-offset visit block an earlier-offset one, which the processing
	// order here (request order, not event order) cannot untangle.
	ingressNet := make([]float64, n) // handler-side packet processing
	handlerCPU := make([]float64, n) // cache probe / request handling
	homeNet := make([]float64, n)    // home-side packet processing
	homeCPU := make([]float64, n)    // home KVS service
	consistNet := make([]float64, n) // invalidation/update/ack processing
	consistCPU := make([]float64, n) // consistency message application

	rng := newRand(0x13c)
	hist := metrics.NewHistogram()
	interUs := 1e6 / offeredRPS

	now := 0.0
	for i := 0; i < requests; i++ {
		now += rng.exp(interUs)
		handler := int(rng.next() % uint64(n))

		t := now + wireDelayUs*clientHops // client -> handler
		// Handler network ingress.
		t = visit(ingressNet, handler, t, pktUs*missPkts/2) + batchDelayUs
		// Handler CPU (cache probe / request handling).
		t = visit(handlerCPU, handler, t, cpuUs)

		isWrite := rng.float() < w
		isHit := rng.float() < h

		switch {
		case cfg.System == CCKVS && isHit && isWrite && cfg.Protocol == core.Lin:
			// Two-phase blocking write: invalidations out, acks back.
			worst := t
			for r := 0; r < n; r++ {
				if r == handler {
					continue
				}
				at := t + wireDelayUs + batchDelayUs
				at = visit(consistNet, r, at, pktUs) // invalidation processing
				at = visit(consistCPU, r, at, cpuUs)
				at += wireDelayUs // ack flight
				at = visit(consistNet, handler, at, pktUs)
				if at > worst {
					worst = at
				}
			}
			t = worst
			// Update broadcast is off the latency path but loads ports.
			for r := 0; r < n; r++ {
				if r != handler {
					visit(consistNet, r, t+wireDelayUs, pktUs)
				}
			}
		case cfg.System == CCKVS && isHit && isWrite:
			// SC write: local apply; async update broadcast loads ports.
			for r := 0; r < n; r++ {
				if r != handler {
					visit(consistNet, r, t+wireDelayUs, pktUs)
				}
			}
		case cfg.System == CCKVS && isHit:
			// Read hit: served locally; under Lin it may stall on an
			// in-flight invalidation of a hot key.
			if stallProb > 0 && rng.float() < stallProb {
				t += rng.exp(stallMeanUs)
			}
		default:
			// Miss (or baseline): remote access with probability 1-1/N.
			home := int(rng.next() % uint64(n))
			if home != handler {
				at := t + wireDelayUs + batchDelayUs
				at = visit(homeNet, home, at, pktUs*missPkts/2)
				at = visit(homeCPU, home, at, kvsUs)
				t = at + wireDelayUs
			} else {
				t = visit(homeCPU, handler, t, kvsUs)
			}
		}
		t += wireDelayUs * clientHops // response to client
		lat := t - now
		if lat < 0 {
			lat = 0
		}
		hist.Record(uint64(lat * 1000)) // nanoseconds
	}

	snap := hist.Snapshot()
	return LatencyPoint{
		OfferedMRPS: offeredRPS / 1e6,
		AvgUs:       snap.Mean / 1000,
		P95Us:       float64(snap.P95) / 1000,
	}, nil
}

// visit serializes a request through resource idx: service begins when both
// the request has arrived and the resource is free.
func visit(busy []float64, idx int, arrive, service float64) float64 {
	start := arrive
	if busy[idx] > start {
		start = busy[idx]
	}
	done := start + service
	busy[idx] = done
	return done
}

// rand is a tiny deterministic PRNG (splitmix64) for reproducible runs.
type rand struct{ s uint64 }

func newRand(seed uint64) *rand { return &rand{s: seed} }

func (r *rand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rand) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// exp draws an exponential variate with the given mean.
func (r *rand) exp(mean float64) float64 {
	u := r.float()
	if u <= 0 {
		u = 1e-12
	}
	return -mean * math.Log(u)
}
