package core

import (
	"errors"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/seqlock"
	"repro/internal/timestamp"
)

// Errors returned by cache operations.
var (
	// ErrMiss means the key is not in the hot set; the request must go to
	// the (possibly remote) home KVS shard.
	ErrMiss = errors.New("core: cache miss")
	// ErrInvalid means the key is cached but its replica is invalidated by
	// an in-flight Lin write; the read must be retried once the update
	// arrives (a read "may hit in the cache but may not succeed", §6.2).
	ErrInvalid = errors.New("core: entry invalid, update in flight")
	// ErrWritePending means this node already has an outstanding Lin write
	// for the key; the new write must wait for it to complete.
	ErrWritePending = errors.New("core: write already pending for key")
)

// State is the consistency state of a cached entry. SC uses only StateValid;
// Lin adds one stable invalid state and one transient write state, exactly
// the state count the paper reports for each protocol (§5.2).
type State uint8

// Cache entry states.
const (
	// StateValid: the entry is readable.
	StateValid State = iota
	// StateInvalid: invalidated by a remote Lin write; reads stall until
	// the matching update arrives.
	StateInvalid
	// StateWrite: transient; this node issued a Lin write and is gathering
	// acknowledgements. Reads return the pre-write value.
	StateWrite
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateValid:
		return "Valid"
	case StateInvalid:
		return "Invalid"
	case StateWrite:
		return "Write"
	default:
		return "State(?)"
	}
}

// entry is one cached object. Its header mirrors the 8-byte ccKVS item
// header: consistency state (1 B, Lin only), version i.e. Lamport clock
// (4 B), last-writer id (1 B), ack counter (1 B, Lin only) and the seqlock
// spinlock byte. The seqlock version doubles as the write-in-progress marker.
type entry struct {
	lock  seqlock.SeqLock
	state State
	ts    timestamp.TS
	vlen  int
	val   []byte // len == cap, mutated in place
	dirty bool   // differs from the home shard (write-back caching, §4)

	// Lin per-writer bookkeeping for this node's outstanding write.
	pendActive bool
	pendTS     timestamp.TS
	pendVlen   int
	pendVal    []byte
	acks       int
}

// table is an immutable key set with mutable entries; a new table is
// installed wholesale at each epoch change.
type table struct {
	m map[uint64]*entry
}

// Stats aggregates cache/protocol counters.
type Stats struct {
	Hits, Misses          metrics.Counter
	InvalidStalls         metrics.Counter // reads that found StateInvalid
	UpdatesApplied        metrics.Counter
	UpdatesDiscarded      metrics.Counter
	Invalidations         metrics.Counter
	AcksReceived          metrics.Counter
	WritesSC, WritesLin   metrics.Counter
	WriteConflictsLost    metrics.Counter // Lin writes superseded by a concurrent higher-ts write
	Evictions, WriteBacks metrics.Counter
}

// Cache is one node's instance of the symmetric cache. All cache threads of
// the node share it (CRCW); every node in the deployment holds an identical
// key set, which is what removes the need for a sharer directory (§4).
type Cache struct {
	nodeID   uint8
	numNodes int
	table    atomic.Pointer[table]
	stats    Stats
}

// NewCache returns an empty cache for node nodeID of a numNodes deployment.
func NewCache(nodeID uint8, numNodes int) *Cache {
	if numNodes < 1 {
		panic("core: deployment needs at least one node")
	}
	c := &Cache{nodeID: nodeID, numNodes: numNodes}
	c.table.Store(&table{m: map[uint64]*entry{}})
	return c
}

// NodeID returns this cache's node id.
func (c *Cache) NodeID() uint8 { return c.nodeID }

// NumNodes returns the deployment size.
func (c *Cache) NumNodes() int { return c.numNodes }

// Stats exposes the counter block.
func (c *Cache) Stats() *Stats { return &c.stats }

// Len returns the number of cached keys.
func (c *Cache) Len() int { return len(c.table.Load().m) }

// Contains reports whether key is in the hot set. Because caches are
// symmetric, a local probe answers the global question "which nodes cache
// this item": all of them or none (§4).
func (c *Cache) Contains(key uint64) bool {
	_, ok := c.table.Load().m[key]
	return ok
}

// WriteBack is a dirty item evicted at an epoch change that must be flushed
// to its home shard (symmetric caches are write-back, §4).
type WriteBack struct {
	Key   uint64
	Value []byte
	TS    timestamp.TS
}

// Install replaces the hot set. For every new key, fetch must return the
// value and version from the node's view of the KVS (or ok=false to install
// an empty entry). It returns the dirty evicted entries, which the caller
// flushes to their home shards with PutIfNewer. Concurrent reads continue
// against the old table until the swap.
func (c *Cache) Install(keys []uint64, fetch func(key uint64) ([]byte, timestamp.TS, bool)) []WriteBack {
	old := c.table.Load()
	next := &table{m: make(map[uint64]*entry, len(keys))}
	for _, k := range keys {
		if e, ok := old.m[k]; ok {
			next.m[k] = e // retained entries keep value, ts and state
			continue
		}
		e := &entry{}
		if v, ts, ok := fetch(k); ok {
			e.val = append(make([]byte, 0, len(v)), v...)
			e.vlen = len(v)
			e.ts = ts
		}
		next.m[k] = e
	}

	var wb []WriteBack
	for k, e := range old.m {
		if _, kept := next.m[k]; kept {
			continue
		}
		c.stats.Evictions.Add(1)
		e.lock.Lock()
		if e.dirty {
			wb = append(wb, WriteBack{
				Key:   k,
				Value: append([]byte(nil), e.val[:e.vlen]...),
				TS:    e.ts,
			})
			c.stats.WriteBacks.Add(1)
		}
		e.lock.Unlock()
	}
	c.table.Store(next)
	return wb
}

// Read probes the cache. On a hit it copies the value into dst and returns
// it with the entry's timestamp. It returns ErrMiss for uncached keys and
// ErrInvalid when a Lin invalidation is outstanding. Reads are lock-free.
func (c *Cache) Read(key uint64, dst []byte) ([]byte, timestamp.TS, error) {
	e, ok := c.table.Load().m[key]
	if !ok {
		c.stats.Misses.Add(1)
		return dst, timestamp.TS{}, ErrMiss
	}
	for {
		v := e.lock.ReadBegin()
		state := e.state
		ts := e.ts
		vlen := e.vlen
		if state == StateInvalid {
			if !e.lock.ReadRetry(v) {
				c.stats.InvalidStalls.Add(1)
				return dst, timestamp.TS{}, ErrInvalid
			}
			continue
		}
		if vlen < 0 || vlen > len(e.val) {
			if e.lock.ReadRetry(v) {
				continue
			}
			vlen = 0
		}
		if cap(dst) < vlen {
			dst = make([]byte, vlen)
		}
		dst = dst[:vlen]
		copy(dst, e.val[:vlen])
		if !e.lock.ReadRetry(v) {
			c.stats.Hits.Add(1)
			return dst, ts, nil
		}
	}
}

// setValueLocked stores value into e under e.lock.
func (e *entry) setValueLocked(value []byte) {
	if len(e.val) < len(value) {
		e.vlen = 0
		e.val = make([]byte, len(value))
	}
	copy(e.val[:len(value)], value)
	e.vlen = len(value)
}

// Keys returns the cached key set (for tests and epoch bookkeeping).
func (c *Cache) Keys() []uint64 {
	t := c.table.Load()
	out := make([]uint64, 0, len(t.m))
	for k := range t.m {
		out = append(out, k)
	}
	return out
}

// EntryState returns the state and timestamp of a cached key (test hook).
func (c *Cache) EntryState(key uint64) (State, timestamp.TS, bool) {
	e, ok := c.table.Load().m[key]
	if !ok {
		return 0, timestamp.TS{}, false
	}
	var st State
	var ts timestamp.TS
	e.lock.Read(func() { st, ts = e.state, e.ts })
	return st, ts, true
}
