// Package timestamp implements Lamport logical timestamps as used by the
// ccKVS consistency protocols (EuroSys'18, §5.2).
//
// Every write in the symmetric cache is tagged with a Lamport clock plus the
// id of the writing node/session. The pair gives each write a globally unique
// timestamp, which is the invariant that provides write serialization in the
// fully-distributed SC and Lin protocols: all replicas apply writes to a key
// in (Clock, Writer) order regardless of arrival order.
package timestamp

import "fmt"

// TS is a Lamport timestamp: a logical clock combined with the id of the
// writer that produced it. The paper stores the clock in the 4-byte item
// version field and the writer id in a single byte of the item header.
type TS struct {
	// Clock is the Lamport logical clock (the item version in ccKVS).
	Clock uint32
	// Writer is the node/session id of the last writer; it breaks ties
	// between concurrent writes carrying equal clocks.
	Writer uint8
}

// Zero is the initial timestamp carried by freshly-installed items.
var Zero = TS{}

// Compare returns -1 if t orders before o, +1 if t orders after o and 0 if
// they are the same timestamp. Ordering is by clock first, writer id second,
// so two distinct writers can never produce equal non-identical timestamps.
func (t TS) Compare(o TS) int {
	switch {
	case t.Clock < o.Clock:
		return -1
	case t.Clock > o.Clock:
		return 1
	case t.Writer < o.Writer:
		return -1
	case t.Writer > o.Writer:
		return 1
	default:
		return 0
	}
}

// Less reports whether t orders strictly before o.
func (t TS) Less(o TS) bool { return t.Compare(o) < 0 }

// After reports whether t orders strictly after o. A replica receiving an
// update applies it only when the update's timestamp is After the stored one.
func (t TS) After(o TS) bool { return t.Compare(o) > 0 }

// Next returns the timestamp a writer with the given id produces for its next
// write after observing t: the clock is incremented and the writer id is
// stamped. This is the "increment the Lamport clock" step of both protocols.
func (t TS) Next(writer uint8) TS {
	return TS{Clock: t.Clock + 1, Writer: writer}
}

// Max returns the later of the two timestamps.
func Max(a, b TS) TS {
	if a.After(b) {
		return a
	}
	return b
}

// String renders the timestamp as "clock.writer" for logs and test output.
func (t TS) String() string { return fmt.Sprintf("%d.%d", t.Clock, t.Writer) }
