// Command cckvs-load drives a multi-process cckvs-node deployment with a
// YCSB-style Zipfian workload and reports throughput and latency.
//
// Example:
//
//	cckvs-load -nodes 127.0.0.1:7000,127.0.0.1:7001 -keys 10000 \
//	           -alpha 0.99 -writes 0.01 -ops 100000 -clients 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/remote"
	"repro/internal/workload"
)

func main() {
	var (
		nodeList = flag.String("nodes", "127.0.0.1:7000", "comma-separated node addresses, ordered by node id")
		keys     = flag.Uint64("keys", 10000, "keyspace size")
		alpha    = flag.Float64("alpha", 0.99, "zipfian exponent (0 = uniform)")
		writes   = flag.Float64("writes", 0.01, "write ratio")
		ops      = flag.Int("ops", 100000, "operations per client")
		clients  = flag.Int("clients", 4, "concurrent clients")
		valSize  = flag.Int("value", 40, "value size in bytes")
	)
	flag.Parse()

	addrs := strings.Split(*nodeList, ",")
	peers := map[uint8]string{}
	for i, a := range addrs {
		peers[uint8(i)] = strings.TrimSpace(a)
	}

	gen, err := workload.New(workload.Config{
		NumKeys: *keys, Alpha: *alpha, WriteRatio: *writes, ValueSize: *valSize, Seed: 42,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	lat := metrics.NewHistogram()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := remote.DialCluster(uint8(100+id), peers)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer cl.Close()
			g := gen.Clone(uint64(id))
			for i := 0; i < *ops; i++ {
				op := g.Next()
				t0 := time.Now()
				if op.Type == workload.Put {
					err = cl.Put(op.Key, op.Value)
				} else {
					_, err = cl.Get(op.Key)
					if err == remote.ErrNotFound {
						err = nil // cold keys are fine on an unloaded deployment
					}
				}
				lat.Record(uint64(time.Since(t0).Nanoseconds()))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d: %w", id, err)
					}
					mu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		fmt.Fprintln(os.Stderr, firstErr)
		os.Exit(1)
	}
	total := float64(*clients * *ops)
	snap := lat.Snapshot()
	fmt.Printf("%d nodes, %d clients, %.0f ops in %v\n", len(peers), *clients, total, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s\n", total/elapsed.Seconds())
	fmt.Printf("latency:    avg %.1fus  p50 %.1fus  p95 %.1fus  p99 %.1fus\n",
		snap.Mean/1000, float64(snap.P50)/1000, float64(snap.P95)/1000, float64(snap.P99)/1000)
}
