// Package remote deploys the NUMA-abstraction KVS across real processes:
// each node serves a shard of the keyspace over the TCP fabric transport,
// and any node (or standalone client) can access any key through two-sided
// remote procedure calls — the FaRM/FaSST-style remote access layer of §2.2
// that ccKVS builds on, usable for multi-machine smoke deployments
// (cmd/cckvs-node, cmd/cckvs-load).
//
// The in-process evaluation cluster (internal/cluster) is the primary
// harness; this package exists so the transport and RPC layer are exercised
// end-to-end over real sockets.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/timestamp"
	"repro/internal/zipf"
)

// Thread ids within a node.
const (
	threadServer uint8 = 1 // serves remote requests
	threadClient uint8 = 2 // receives responses
)

// RPC opcodes and statuses (wire format shared with the in-process
// cluster: op(1) reqID(8) key(8) [vlen(4) value]).
const (
	opGet byte = 0
	opPut byte = 1

	statusOK       byte = 0
	statusNotFound byte = 1
)

// HomeNode maps a key to its owning node among n nodes; all deployments
// must agree on this placement.
func HomeNode(key uint64, n int) uint8 {
	return uint8(zipf.Mix64(key^0x7f4a7c15) % uint64(n))
}

// Node is one standalone KVS server process.
type Node struct {
	id uint8
	tr *fabric.TCPTransport
	st *store.Store
	// Served counts requests handled.
	Served metrics.Counter
}

// StartNode launches a node with the given id listening on listenAddr.
func StartNode(id uint8, listenAddr string, expectedKeys int) (*Node, error) {
	tr, err := fabric.NewTCPTransport(id, listenAddr, fabric.NewStats())
	if err != nil {
		return nil, err
	}
	n := &Node{id: id, tr: tr, st: store.New(expectedKeys)}
	tr.Register(fabric.Addr{Node: id, Thread: threadServer}, n.serve)
	return n, nil
}

// Addr returns the node's bound listen address.
func (n *Node) Addr() string { return n.tr.ListenAddr() }

// Close stops the node.
func (n *Node) Close() error { return n.tr.Close() }

// Store exposes the shard for preloading.
func (n *Node) Store() *store.Store { return n.st }

func (n *Node) serve(p fabric.Packet) {
	buf := p.Data
	if len(buf) < 17 {
		return
	}
	op := buf[0]
	reqID := binary.LittleEndian.Uint64(buf[1:9])
	key := binary.LittleEndian.Uint64(buf[9:17])
	n.Served.Add(1)

	resp := make([]byte, 0, 64)
	resp = binary.LittleEndian.AppendUint64(resp, reqID)
	switch op {
	case opGet:
		v, _, err := n.st.Get(key, nil)
		if err != nil {
			resp = append(resp, statusNotFound)
		} else {
			resp = append(resp, statusOK)
			resp = binary.LittleEndian.AppendUint32(resp, uint32(len(v)))
			resp = append(resp, v...)
		}
	case opPut:
		if len(buf) < 21 {
			return
		}
		vlen := int(binary.LittleEndian.Uint32(buf[17:21]))
		if len(buf) < 21+vlen {
			return
		}
		_, ts, err := n.st.Get(key, nil)
		if err != nil {
			ts = timestamp.TS{}
		}
		n.st.Put(key, buf[21:21+vlen], ts.Next(n.id))
		resp = append(resp, statusOK)
	default:
		return
	}
	n.tr.Send(fabric.Packet{
		Src:   fabric.Addr{Node: n.id, Thread: threadServer},
		Dst:   fabric.Addr{Node: p.Src.Node, Thread: threadClient},
		Class: metrics.ClassCacheMiss,
		Data:  resp,
	})
}

// AddPeer tells the node how to reach another node (needed only if nodes
// forward requests among themselves; clients always address homes
// directly).
func (n *Node) AddPeer(id uint8, addr string) { n.tr.AddPeer(id, addr) }

// Client accesses a deployment of nodes.
type Client struct {
	id    uint8
	tr    *fabric.TCPTransport
	nodes int

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan []byte

	// Timeout bounds each call (default 5s).
	Timeout time.Duration
}

// ErrTimeout is returned when a response does not arrive in time.
var ErrTimeout = errors.New("remote: request timed out")

// ErrNotFound is returned for absent keys.
var ErrNotFound = errors.New("remote: key not found")

// DialCluster connects a client (with its own fabric node id, which must
// not collide with the servers') to the given node addresses, indexed by
// node id.
func DialCluster(clientID uint8, peers map[uint8]string) (*Client, error) {
	tr, err := fabric.NewTCPTransport(clientID, "127.0.0.1:0", fabric.NewStats())
	if err != nil {
		return nil, err
	}
	c := &Client{
		id:      clientID,
		tr:      tr,
		nodes:   len(peers),
		pending: map[uint64]chan []byte{},
		Timeout: 5 * time.Second,
	}
	for id, addr := range peers {
		tr.AddPeer(id, addr)
	}
	tr.Register(fabric.Addr{Node: clientID, Thread: threadClient}, c.onResponse)
	return c, nil
}

// Close disconnects the client.
func (c *Client) Close() error { return c.tr.Close() }

func (c *Client) onResponse(p fabric.Packet) {
	if len(p.Data) < 9 {
		return
	}
	reqID := binary.LittleEndian.Uint64(p.Data[:8])
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- append([]byte(nil), p.Data[8:]...)
	}
}

func (c *Client) call(node uint8, req []byte, reqID uint64) ([]byte, error) {
	ch := make(chan []byte, 1)
	c.mu.Lock()
	c.pending[reqID] = ch
	c.mu.Unlock()

	err := c.tr.Send(fabric.Packet{
		Src:   fabric.Addr{Node: c.id, Thread: threadClient},
		Dst:   fabric.Addr{Node: node, Thread: threadServer},
		Class: metrics.ClassCacheMiss,
		Data:  req,
	})
	if err != nil {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-time.After(c.Timeout):
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return nil, ErrTimeout
	}
}

func (c *Client) newID() uint64 {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	return id
}

// Get fetches key from its home node.
func (c *Client) Get(key uint64) ([]byte, error) {
	id := c.newID()
	req := make([]byte, 0, 17)
	req = append(req, opGet)
	req = binary.LittleEndian.AppendUint64(req, id)
	req = binary.LittleEndian.AppendUint64(req, key)
	resp, err := c.call(HomeNode(key, c.nodes), req, id)
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 || resp[0] != statusOK {
		return nil, ErrNotFound
	}
	if len(resp) < 5 {
		return nil, fmt.Errorf("remote: malformed response")
	}
	vlen := int(binary.LittleEndian.Uint32(resp[1:5]))
	if len(resp) < 5+vlen {
		return nil, fmt.Errorf("remote: truncated response")
	}
	return resp[5 : 5+vlen], nil
}

// Put writes key at its home node.
func (c *Client) Put(key uint64, value []byte) error {
	id := c.newID()
	req := make([]byte, 0, 21+len(value))
	req = append(req, opPut)
	req = binary.LittleEndian.AppendUint64(req, id)
	req = binary.LittleEndian.AppendUint64(req, key)
	req = binary.LittleEndian.AppendUint32(req, uint32(len(value)))
	req = append(req, value...)
	resp, err := c.call(HomeNode(key, c.nodes), req, id)
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != statusOK {
		return fmt.Errorf("remote: put failed (status %d)", resp[0])
	}
	return nil
}
