// Package cluster assembles the full systems evaluated in the paper
// (EuroSys'18, §7.1) as in-process deployments: every node couples a KVS
// shard with (for ccKVS) an instance of the symmetric cache, threads are
// partitioned into cache threads and KVS threads (§6.2), and nodes exchange
// remote accesses and consistency messages over a fabric transport.
//
// Five system flavours are provided:
//
//   - BaseEREW  — NUMA abstraction, KVS partitioned at core granularity
//   - Base      — NUMA abstraction, CRCW KVS (partitioned per server)
//   - Uniform   — Base driven by a uniform workload (the baselines' upper
//     bound; selected by the workload, not the cluster config)
//   - ccKVS-SC  — Base plus symmetric caches kept consistent with the SC
//     protocol
//   - ccKVS-Lin — same with the Lin protocol
//
// The cluster is functionally complete (real protocol traffic over a real
// transport); paper-scale *performance* numbers come from internal/simnet,
// which models the rack's network bottlenecks explicitly.
package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/timestamp"
	"repro/internal/zipf"
)

// System selects the evaluated design.
type System int

// Evaluated systems.
const (
	// BaseEREW partitions each node's KVS at thread granularity
	// (exclusive reads, exclusive writes), like stock MICA.
	BaseEREW System = iota
	// Base partitions the KVS at server granularity (CRCW).
	Base
	// CCKVS is Base plus consistent symmetric caching.
	CCKVS
)

// String names the system as in the paper's figures.
func (s System) String() string {
	switch s {
	case BaseEREW:
		return "Base-EREW"
	case Base:
		return "Base"
	case CCKVS:
		return "ccKVS"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Thread ids within a node's fabric address space. A node no longer exposes
// one thread per traffic class: the cache, KVS and response roles are
// *banks* of WorkersPerNode threads each (the paper's cache/KVS worker
// threads, §6.2), laid out back to back above the two fixed singleton
// threads. Requests are steered to a bank member by key hash on the sender
// side (Config.workerOf), so the same key always lands on the same worker
// everywhere — which is what lets each worker run lock-free against its
// brethren (EREW across workers, exactly MICA's discipline).
const (
	threadFlow     uint8 = 0 // explicit credit updates (one per node)
	threadSession  uint8 = 1 // client-facing session requests (session.go)
	threadView     uint8 = 2 // membership: pings, pongs, view changes (view.go)
	threadBankBase uint8 = 3 // first worker-bank thread
)

// MaxWorkersPerNode bounds the per-node worker count: the three per-worker
// banks (cache, KVS, resp) must fit the uint8 thread address space above
// the fixed threads.
const MaxWorkersPerNode = 64

// cacheThread returns worker w's consistency-message endpoint.
func (c Config) cacheThread(w int) uint8 {
	return threadBankBase + uint8(w)
}

// kvsThread returns worker w's remote KVS request server endpoint.
func (c Config) kvsThread(w int) uint8 {
	return threadBankBase + uint8(c.WorkersPerNode) + uint8(w)
}

// respThread returns worker w's RPC completion endpoint.
func (c Config) respThread(w int) uint8 {
	return threadBankBase + uint8(2*c.WorkersPerNode) + uint8(w)
}

// workerOf steers a key to its worker index — the same on every node, so
// a request encoded by any sender lands on the worker that owns the key's
// stripe at the receiver. The salt decorrelates worker steering from home
// placement (HomeNode), so one node's keys still spread across all workers.
func (c Config) workerOf(key uint64) int {
	return int(zipf.Mix64(key^0x2545f4914f6cdd1d) % uint64(c.WorkersPerNode))
}

// Serialization selects how hot writes obtain their place in the per-key
// write order — the design space of the paper's Figure 4. The paper's
// protocols are fully distributed (Figure 4c); the primary and sequencer
// variants exist as executable baselines for the ablation.
type Serialization int

// Write-serialization designs.
const (
	// SerializationDistributed: any replica writes locally; Lamport
	// timestamps serialize (Figure 4c, the paper's design).
	SerializationDistributed Serialization = iota
	// SerializationPrimary: all hot writes execute on a designated
	// primary node, which broadcasts the updates (Figure 4a).
	SerializationPrimary
	// SerializationSequencer: writers fetch a per-key timestamp from a
	// sequencer node, then apply and broadcast themselves (Figure 4b).
	SerializationSequencer
)

// String names the design.
func (s Serialization) String() string {
	switch s {
	case SerializationPrimary:
		return "primary"
	case SerializationSequencer:
		return "sequencer"
	default:
		return "distributed"
	}
}

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the deployment size (paper: 9).
	Nodes int
	// System picks the design; Protocol applies only to CCKVS.
	System   System
	Protocol core.Protocol
	// Serialization selects the Figure 4 write-serialization design for
	// ccKVS-SC hot writes (default: fully distributed). Node 0 acts as
	// primary/sequencer when selected.
	Serialization Serialization
	// NumKeys is the dataset size; keys are 0..NumKeys-1 ranked by
	// popularity (rank 0 hottest).
	NumKeys uint64
	// ReplicasPerShard is how many nodes hold each key's shard data: the
	// home (HomeOf) plus ReplicasPerShard-1 successor backups. 1 (the
	// default) is the unreplicated layout — a dead home fails cold keys
	// with ErrHomeDown. With more replicas, miss-path puts and
	// reconfiguration write-backs commit to every live replica before
	// acking, reads route to the first live replica (the acting primary),
	// and a view flip promotes the next backup instead of erroring;
	// ErrHomeDown then only occurs when ALL replicas of a shard are down.
	// Every member of a deployment must use the same value.
	ReplicasPerShard int
	// PingInterval, when positive, arms the ping-based failure detector in
	// member form: the member pings every peer at this interval and excises
	// any live peer silent for PingTimeout from the membership view
	// (view.go). 0 (the default) disables suspicion — transports that detect
	// failure themselves (TCP) still drive view changes through PeerDown.
	PingInterval time.Duration
	// PingTimeout is the silence after which a peer is declared down
	// (default 6x PingInterval).
	PingTimeout time.Duration
	// CacheItems is the symmetric cache capacity in objects (paper: 0.1%
	// of the dataset = 250K).
	CacheItems int
	// WorkersPerNode is the width of each node's worker banks: every node
	// runs this many cache/KVS/resp worker threads (§6.2), with requests
	// steered to workers by key hash. Default: GOMAXPROCS, capped at
	// MaxWorkersPerNode. Every member of a deployment must use the same
	// value — it determines the fabric thread layout.
	WorkersPerNode int
	// ValueSize is the object payload size (paper default 40B).
	ValueSize int
	// KVSPartitions is the per-node partition count for BaseEREW
	// (stands in for the per-core partitioning; default 8).
	KVSPartitions int
	// CreditsPerPeer bounds in-flight messages toward each peer (§6.3;
	// default 64).
	CreditsPerPeer int
	// CreditBatch is how many received consistency messages are
	// acknowledged with one explicit credit update (§6.4; default 8).
	CreditBatch int
	// BatchMaxMsgs bounds how many remote requests the coalescing pipeline
	// packs into one network packet (§6.3/§8.5; default 16; 1 disables
	// coalescing, the per-request baseline of the ablation).
	BatchMaxMsgs int
	// BatchMaxBytes bounds the payload of a coalesced request packet
	// (default 4096).
	BatchMaxBytes int
	// QueueDepth is the transport queue depth (default 1024).
	QueueDepth int
	// ReorderDepth, when positive, wraps the fabric in an adversarial
	// shuffle buffer of that depth (UD datagrams are unordered; the
	// protocols must tolerate it). Test/torture use.
	ReorderDepth int
	// ReorderSeed seeds the shuffle for reproducibility.
	ReorderSeed uint64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.NumKeys == 0 {
		c.NumKeys = 1 << 16
	}
	if c.ValueSize == 0 {
		c.ValueSize = 40
	}
	if c.ReplicasPerShard == 0 {
		c.ReplicasPerShard = 1
	}
	if c.ReplicasPerShard > c.Nodes {
		c.ReplicasPerShard = c.Nodes
	}
	if c.KVSPartitions == 0 {
		c.KVSPartitions = 8
	}
	if c.WorkersPerNode == 0 {
		c.WorkersPerNode = runtime.GOMAXPROCS(0)
		if c.WorkersPerNode > MaxWorkersPerNode {
			c.WorkersPerNode = MaxWorkersPerNode
		}
	}
	if c.CreditsPerPeer == 0 {
		c.CreditsPerPeer = 64
	}
	if c.CreditBatch == 0 {
		c.CreditBatch = 8
	}
	if c.BatchMaxMsgs == 0 {
		c.BatchMaxMsgs = 16
	}
	if c.BatchMaxBytes == 0 {
		c.BatchMaxBytes = 4096
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.PingInterval > 0 && c.PingTimeout == 0 {
		c.PingTimeout = 6 * c.PingInterval
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 1 || c.Nodes > 250 {
		return fmt.Errorf("cluster: node count %d out of range [1,250]", c.Nodes)
	}
	if c.System == CCKVS && c.CacheItems <= 0 {
		return errors.New("cluster: ccKVS needs CacheItems > 0")
	}
	if c.System != CCKVS && c.CacheItems > 0 {
		return errors.New("cluster: baselines have no cache; CacheItems must be 0")
	}
	if c.WorkersPerNode < 0 || c.WorkersPerNode > MaxWorkersPerNode {
		return fmt.Errorf("cluster: WorkersPerNode %d out of range [0,%d] (0 selects the GOMAXPROCS-derived default)",
			c.WorkersPerNode, MaxWorkersPerNode)
	}
	if c.Serialization != SerializationDistributed {
		if c.System != CCKVS || c.Protocol != core.SC {
			return errors.New("cluster: primary/sequencer serialization is implemented for ccKVS-SC only")
		}
	}
	if c.ReplicasPerShard < 0 {
		return fmt.Errorf("cluster: ReplicasPerShard %d must be >= 0 (0 selects the unreplicated default)", c.ReplicasPerShard)
	}
	return nil
}

// Cluster is a deployment view. In the in-process form (New,
// NewWithTransport) it holds every node; in member form (NewMember) it holds
// exactly one node of a multi-process deployment and reaches the others over
// the injected transport — same protocol code, same RPCs, different process
// layout.
type Cluster struct {
	cfg       Config
	transport fabric.Transport
	stats     *fabric.Stats
	// trCopies reports that the transport serializes packet data during
	// Send (fabric.TCPTransport): senders may reuse their encode buffers
	// the moment Send returns, which is what makes the hot path's pooled
	// buffers possible. Channel-based transports pass data by reference,
	// so there the buffers must stay fresh per packet.
	trCopies bool
	// nodes is indexed by node id and always cfg.Nodes long; in member form
	// every entry except the local node is nil.
	nodes  []*Node
	member bool
	self   int
	closed bool
	mu     sync.Mutex
	// reconfigMu serializes hot-set reconfigurations (reconfig.go).
	reconfigMu sync.Mutex

	// Membership (view.go): the epoch-stamped live-member view, swapped
	// atomically on every change; viewMu serializes the transitions.
	view   atomic.Pointer[View]
	viewMu sync.Mutex
	onView func(*View)
	// killed marks a chaos-killed member: every fabric handler drops its
	// traffic so peers' suspicion timers fire (Kill).
	killed atomic.Bool
	// sessMu guards sessClosed against the worker session lanes' queues:
	// enqueues take the read side, Close flips sessClosed and closes the
	// queues under the write side, so no send can race the close.
	sessMu     sync.RWMutex
	sessClosed bool
	// Ping-based failure detector state (startProber).
	lastPong     []atomic.Int64
	probeStop    chan struct{}
	probeStopped bool
	probeMu      sync.Mutex
	probeWG      sync.WaitGroup

	// Rejoin re-seed state (view.go). syncSources holds the peers currently
	// streaming shard seeds at this member (seed-begin received, seed-done
	// pending); while non-empty the member answers acting-primary traffic
	// with retries so no reader observes its pre-crash state. syncing
	// mirrors len(syncSources) > 0 for lock-free hot-path checks. reseeding
	// guards one concurrent outbound reseed per rejoining peer.
	syncMu      sync.Mutex
	syncSources map[uint8]struct{}
	syncing     atomic.Bool
	reseedMu    sync.Mutex
	reseeding   map[uint8]bool
	reseedWG    sync.WaitGroup
}

// Node is one server: a KVS shard plus (for ccKVS) a symmetric cache,
// fronted by a bank of WorkersPerNode workers that own disjoint key stripes.
type Node struct {
	id      uint8
	cluster *Cluster
	kvs     *store.Partitioned
	cache   *core.Cache // nil for baselines

	// workers are the node's request-processing lanes; worker i serves the
	// keys with workerOf(key) == i on every node of the deployment, so no
	// lock is shared between lanes on the hot path.
	workers []*worker

	// Counters for the evaluation.
	CacheHits, CacheMisses metrics.Counter
	LocalOps, RemoteOps    metrics.Counter
	InvalidRetries         metrics.Counter
	WritePendingRetries    metrics.Counter
	// FrozenRetries counts writes that found their entry frozen
	// mid-demotion and had to retry until the key left the hot set.
	FrozenRetries metrics.Counter
	// RemoteReqPackets counts request packets the coalescing pipeline sent;
	// RemoteReqMsgs counts the requests they carried. Their ratio is the
	// achieved coalescing factor (§8.5).
	RemoteReqPackets, RemoteReqMsgs metrics.Counter
	// ConPackets counts consistency packets the coalescing consistency plane
	// sent; ConMsgs counts the updates/invalidations/acks they carried.
	// Their ratio is the write fan-out coalescing factor (§6.3).
	ConPackets, ConMsgs metrics.Counter
	// RPCDecodeErrors counts malformed request/response entries that were
	// refused or dropped instead of deadlocking their callers.
	RPCDecodeErrors metrics.Counter
}

// worker is one of a node's W request-processing lanes — the reproduction's
// form of the paper's worker threads (§6.2). Each worker owns the key
// stripe workerOf(key) == idx: its own fabric endpoints (one cache, KVS and
// resp thread), its own coalescing pipeline senders, its own credit budget
// and completion table, and its own stripe of the serialization state that
// used to be node-global (sequencer clocks, Lin waiters, the home-fetch
// mutex). Two operations contend on a lock only if they touch the same
// stripe; across stripes the hot path is lock-disjoint.
type worker struct {
	node *Node
	idx  int

	rpc  *rpcClient
	pipe *pipeline // per-destination request coalescing (pipeline.go)
	con  *conPlane // per-destination consistency coalescing (consistency.go)

	credits *fabric.Credits
	cbatch  *fabric.CreditBatcher

	// Sequencer state (node 0 when SerializationSequencer is selected):
	// per-key clocks handed out to writers, striped by key.
	seqMu     sync.Mutex
	seqClocks map[uint64]uint32

	// homeMu orders local miss-path puts against a local promotion fetch
	// (reconfig.go) for this worker's keys: a put whose cache probe
	// predates the promotion's placeholder re-checks the cache under this
	// mutex before touching the local shard, so it either lands before the
	// fetch reads the shard or bounces back through the cache. Remote
	// miss-path puts get the same guarantee for free — a key's puts and
	// promotion fetches serialize on the home's KVS dispatcher for the
	// key's worker (same key, same worker, same dispatcher).
	homeMu sync.Mutex

	// Lin write completion plumbing: one waiter per key (a node allows a
	// single outstanding Lin write per key, see core.ErrWritePending).
	waitMu  sync.Mutex
	waiters map[uint64]chan core.Update

	// rmwPins serializes cold replicated RMWs per key (rmw.go): the acting
	// primary records the origin and stamp of an RMW it has stamped but whose
	// replicated commit the origin is still driving, and answers Retry to
	// competing RMWs on the same key until the commit (or an explicit clear,
	// or the origin's death) releases the pin. Guarded by homeMu — the pin is
	// only ever consulted where the shard state it protects is consulted.
	rmwPins map[uint64]rmwPin

	// sessQ feeds this worker's session lane (session.go): client-edge
	// requests steered here by key hash, served in overlapped bursts.
	sessQ chan sessJob
}

// workerFor returns the worker owning key's stripe.
func (n *Node) workerFor(key uint64) *worker {
	return n.workers[n.cluster.cfg.workerOf(key)]
}

// New builds and starts a fully in-process cluster over a ChanTransport —
// the default harness for experiments and tests.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stats := fabric.NewStats()
	var tr fabric.Transport = fabric.NewChanTransport(cfg.QueueDepth, stats)
	if cfg.ReorderDepth > 0 {
		tr = fabric.NewReorder(tr, cfg.ReorderDepth, cfg.ReorderSeed|1)
	}
	return NewWithTransport(cfg, tr, stats)
}

// NewWithTransport builds and starts a cluster whose nodes all live in this
// process but exchange messages over the given transport. stats should be
// the block the transport accounts into (nil allocates an unattached one).
func NewWithTransport(cfg Config, tr fabric.Transport, stats *fabric.Stats) (*Cluster, error) {
	return build(cfg, tr, stats, -1)
}

// NewMember builds and starts ONE node of a multi-process deployment: the
// cluster view holds only node self, and every remote access, consistency
// message and reconfiguration RPC crosses the injected transport (a
// TCPTransport with the peer table filled in, or a ChanTransport shared by
// several members of the same process in tests). All members must run an
// identical Config. The caller populates the local shard (Populate writes
// only locally-homed keys in member form) and bootstraps the hot set with
// ApplyHotSet from any one member once its peers are reachable.
func NewMember(cfg Config, self int, tr fabric.Transport, stats *fabric.Stats) (*Cluster, error) {
	return build(cfg, tr, stats, self)
}

// build assembles the node set: every node for self < 0, exactly one
// otherwise.
func build(cfg Config, tr fabric.Transport, stats *fabric.Stats, self int) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if self >= cfg.Nodes {
		return nil, fmt.Errorf("cluster: member id %d out of range [0,%d)", self, cfg.Nodes)
	}
	if stats == nil {
		stats = fabric.NewStats()
	}
	c := &Cluster{
		cfg:       cfg,
		stats:     stats,
		transport: tr,
		member:    self >= 0,
		self:      self,
	}
	if ct, ok := tr.(interface{ SendCopiesData() bool }); ok {
		c.trCopies = ct.SendCopiesData()
	}
	c.view.Store(&View{live: core.FullNodeSet(cfg.Nodes), n: cfg.Nodes})
	c.lastPong = make([]atomic.Int64, cfg.Nodes)
	c.syncSources = map[uint8]struct{}{}
	c.reseeding = map[uint8]bool{}
	c.nodes = make([]*Node, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		if c.member && i != self {
			continue
		}
		parts := 1
		if cfg.System == BaseEREW {
			parts = cfg.KVSPartitions
		}
		n := &Node{
			id:      uint8(i),
			cluster: c,
			kvs:     store.NewPartitioned(parts, int(cfg.NumKeys)/cfg.Nodes+16),
		}
		if cfg.System == CCKVS {
			n.cache = core.NewCache(n.id, cfg.Nodes)
		}
		n.workers = make([]*worker, cfg.WorkersPerNode)
		for w := range n.workers {
			wk := &worker{
				node:      n,
				idx:       w,
				credits:   fabric.NewCredits(),
				seqClocks: map[uint64]uint32{},
				waiters:   map[uint64]chan core.Update{},
				rmwPins:   map[uint64]rmwPin{},
			}
			wk.rpc = newRPCClient(wk)
			wk.pipe = newPipeline(wk, cfg.Nodes, cfg.QueueDepth, cfg.BatchMaxMsgs, cfg.BatchMaxBytes)
			wk.con = newConPlane(wk, cfg.Nodes, cfg.QueueDepth, cfg.BatchMaxMsgs, cfg.BatchMaxBytes)
			wk.sessQ = make(chan sessJob, cfg.QueueDepth)
			n.workers[w] = wk
		}
		c.nodes[i] = n
	}
	for _, n := range c.nodes {
		if n != nil {
			n.start()
		}
	}
	// The membership endpoint answers pings and applies gossiped view
	// changes; one per process (in member form the local id, else node 0 —
	// the full in-process form never changes views, every node shares this
	// Cluster).
	tr.Register(fabric.Addr{Node: c.localID(), Thread: threadView}, c.handleView)
	c.startProber()
	return c, nil
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// FabricStats returns the transport counters (traffic breakdown etc.).
func (c *Cluster) FabricStats() *fabric.Stats { return c.stats }

// NumNodes returns the deployment size (including remote members).
func (c *Cluster) NumNodes() int { return c.cfg.Nodes }

// Node returns node i; nil in member form when i is not the local node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// LocalNode returns the member's own node (member form), or node 0.
func (c *Cluster) LocalNode() *Node {
	if c.member {
		return c.nodes[c.self]
	}
	return c.nodes[0]
}

// IsMember reports whether this cluster view holds a single node of a
// multi-process deployment.
func (c *Cluster) IsMember() bool { return c.member }

// HomeNode returns the node owning key's shard. Like the paper we place
// keys by hash, so the hottest keys scatter across shards. Every member of
// a deployment computes the same placement (it depends only on Config.Nodes).
func (c *Cluster) HomeNode(key uint64) int {
	return HomeOf(key, c.cfg.Nodes)
}

// HomeOf returns the home node of key in a deployment of nodes servers —
// the same placement every member computes. Exported for external
// orchestrators (cmd/cckvs-load) that must reason about key homes, e.g. to
// pick survivor-homed keys for a chaos consistency check.
func HomeOf(key uint64, nodes int) int {
	return int(zipf.Mix64(key^0x7f4a7c15) % uint64(nodes))
}

// ReplicasOf returns the nodes holding key's shard, in priority order: the
// home (HomeOf) followed by its replicas-1 ring successors. The first LIVE
// entry of this list is the key's acting primary — promotion on a view flip
// is implicit in that rule, with no per-key state. Exported for external
// orchestrators that must reason about replica placement under chaos.
func ReplicasOf(key uint64, nodes, replicas int) []int {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > nodes {
		replicas = nodes
	}
	home := HomeOf(key, nodes)
	rs := make([]int, replicas)
	for i := range rs {
		rs[i] = (home + i) % nodes
	}
	return rs
}

// isReplica reports whether node holds a replica of key's shard, without
// allocating the replica list.
func (c *Cluster) isReplica(key uint64, node int) bool {
	d := node - c.HomeNode(key)
	if d < 0 {
		d += c.cfg.Nodes
	}
	return d < c.cfg.ReplicasPerShard
}

// primaryFor returns key's acting primary under view v — the first live
// replica in home order — or -1 when every replica is down (the only case
// that still surfaces ErrHomeDown). With ReplicasPerShard=1 this is exactly
// the old home-or-dead rule.
func (c *Cluster) primaryFor(key uint64, v *View) int {
	home := c.HomeNode(key)
	for i := 0; i < c.cfg.ReplicasPerShard; i++ {
		node := home + i
		if node >= c.cfg.Nodes {
			node -= c.cfg.Nodes
		}
		if v.Live(node) {
			return node
		}
	}
	return -1
}

// replicated reports whether the deployment runs with shard replication.
func (c *Cluster) replicated() bool { return c.cfg.ReplicasPerShard > 1 }

// Close shuts the cluster down.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.stopProber()
	// Drain the request pipelines while the transport is still up: queued
	// requests flush and their responses complete the waiting callers;
	// anything enqueued from here on fails with ErrPipelineClosed instead
	// of waiting on a response that can no longer arrive. The consistency
	// lanes drain the same way so queued updates/invalidations/acks still
	// reach their peers before the transport goes down.
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		for _, wk := range n.workers {
			wk.pipe.close()
			wk.con.close()
		}
	}
	err := c.transport.Close()
	// A response whose send lost the race against the transport close never
	// reached its caller; fail whatever is still pending so no session
	// blocks forever.
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		for _, wk := range n.workers {
			wk.rpc.failAll(ErrPipelineClosed)
		}
	}
	// In-flight re-seed pushes fail fast now that the pipelines are gone;
	// wait them out so no reseed goroutine outlives the cluster.
	c.reseedWG.Wait()
	// Stop the session lanes last: in-flight lane work has already been
	// failed by the pipeline/RPC teardown above, and the write lock pairs
	// with sessEnqueue's read lock so no enqueue races the close.
	c.sessMu.Lock()
	c.sessClosed = true
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		for _, wk := range n.workers {
			close(wk.sessQ)
		}
	}
	c.sessMu.Unlock()
	return err
}

// Populate loads the dataset: every key 0..NumKeys-1 is written to each of
// its replica shards (just the home when unreplicated) with the given value
// size and a zero timestamp. In member form only the local shard is written
// — each process populates its own replicas, and the shards together hold
// the full (replicated) dataset.
func (c *Cluster) Populate() {
	val := make([]byte, c.cfg.ValueSize)
	for k := uint64(0); k < c.cfg.NumKeys; k++ {
		home := c.HomeNode(k)
		written := false
		for i := 0; i < c.cfg.ReplicasPerShard; i++ {
			n := c.nodes[(home+i)%c.cfg.Nodes]
			if n == nil {
				continue
			}
			if !written {
				for j := range val {
					val[j] = byte(k) ^ byte(j)
				}
				written = true
			}
			n.kvs.Put(k, val, timestamp.TS{})
		}
	}
}

// InstallHotSet fills every node's symmetric cache with the given keys
// (typically ranks 0..CacheItems-1), fetching initial values from the home
// shards, and flushes any dirty evicted items home. It is the *bootstrap*
// (full-reinstall) epoch path of §4: the harness acts as an omniscient
// coordinator that reads peer KVS state directly, bypassing the fabric, and
// it offers no write-ordering guarantees against concurrent traffic. Online
// epoch changes under live traffic use ApplyHotSetDelta (reconfig.go), which
// applies only the delta over the RPC fabric.
func (c *Cluster) InstallHotSet(keys []uint64) error {
	if c.cfg.System != CCKVS {
		return nil
	}
	if c.member {
		// A member cannot read peer KVS state directly; the bootstrap runs
		// as an ordinary online epoch change over the RPC fabric instead —
		// which can fail (the peers must already be reachable), unlike the
		// infallible direct path below.
		_, err := c.ApplyHotSet(c.self, keys)
		return err
	}
	c.reconfigMu.Lock()
	defer c.reconfigMu.Unlock()
	for _, n := range c.nodes {
		wbs := n.cache.Install(keys, func(key uint64) ([]byte, timestamp.TS, bool) {
			home := c.nodes[c.HomeNode(key)]
			v, ts, err := home.kvs.Get(key, nil)
			if err != nil {
				return nil, timestamp.TS{}, false
			}
			return v, ts, true
		})
		for _, wb := range wbs {
			home := c.nodes[c.HomeNode(wb.Key)]
			// PutIfNewer: a peer may already have flushed a newer value.
			_ = home.kvs.PutIfNewer(wb.Key, wb.Value, wb.TS)
		}
	}
	return nil
}

// DefaultHotSet returns the top-k ranks [0, k) — with an unscrambled
// Zipfian workload these are exactly the hottest keys.
func DefaultHotSet(k int) []uint64 {
	keys := make([]uint64, k)
	for i := range keys {
		keys[i] = uint64(i)
	}
	return keys
}

// start registers the node's fabric handlers and initializes credits.
func (n *Node) start() {
	cfg := n.cluster.cfg
	tr := n.cluster.transport

	for _, wk := range n.workers {
		wk := wk
		for peer := 0; peer < cfg.Nodes; peer++ {
			if peer == int(n.id) {
				continue
			}
			// One budget per remote node for each traffic kind, per worker:
			// every bank member has its own receive queue at the peer, so
			// every bank member gets its own in-flight budget toward it.
			wk.credits.SetBudget(fabric.Addr{Node: uint8(peer), Thread: cfg.cacheThread(wk.idx)}, cfg.CreditsPerPeer)
			wk.credits.SetBudget(fabric.Addr{Node: uint8(peer), Thread: cfg.kvsThread(wk.idx)}, cfg.CreditsPerPeer)
		}
		wk.cbatch = fabric.NewCreditBatcher(cfg.CreditBatch, func(peer fabric.Addr, cnt int) {
			// Header-only credit update (§6.4): the count rides in a 2-byte
			// payload (count, bank thread) so the receiver can restore that
			// many credits to the right worker's budget.
			tr.Send(fabric.Packet{
				Src:   fabric.Addr{Node: n.id, Thread: threadFlow},
				Dst:   fabric.Addr{Node: peer.Node, Thread: threadFlow},
				Class: metrics.ClassFlowControl,
				Data:  []byte{byte(cnt), peer.Thread},
			})
		})

		tr.Register(fabric.Addr{Node: n.id, Thread: cfg.cacheThread(wk.idx)}, wk.handleConsistency)
		tr.Register(fabric.Addr{Node: n.id, Thread: cfg.kvsThread(wk.idx)}, n.handleKVSRequest)
		tr.Register(fabric.Addr{Node: n.id, Thread: cfg.respThread(wk.idx)}, wk.rpc.handleResponse)
	}
	tr.Register(fabric.Addr{Node: n.id, Thread: threadFlow}, n.handleFlowControl)
	tr.Register(fabric.Addr{Node: n.id, Thread: threadSession}, n.handleSession)
	for _, wk := range n.workers {
		go n.sessionLane(wk.sessQ)
	}
}

// handleFlowControl restores credits granted by a peer's credit update to
// the budget of the worker whose bank thread the payload names.
func (n *Node) handleFlowControl(p fabric.Packet) {
	if n.cluster.killed.Load() || len(p.Data) < 2 {
		return
	}
	th := p.Data[1]
	w := int(th) - int(threadBankBase)
	if w < 0 || w >= len(n.workers) {
		return // not a cache-bank thread of this deployment's layout
	}
	n.workers[w].credits.Grant(fabric.Addr{Node: p.Src.Node, Thread: th}, int(p.Data[0]))
}

// handleConsistency processes updates, invalidations and acks addressed to
// this worker's cache thread. Consistency messages may arrive coalesced;
// the decode loop walks the whole packet. Key steering guarantees every
// message for a key lands on the same worker on every node.
func (wk *worker) handleConsistency(p fabric.Packet) {
	n := wk.node
	if n.cache == nil || n.cluster.killed.Load() {
		return
	}
	// Consistency messages consume receive buffers; note them toward the
	// sender's batched credit updates, tagged with this worker's bank
	// thread so the sender restores the right per-worker budget.
	wk.cbatch.Note(fabric.Addr{Node: p.Src.Node, Thread: p.Dst.Thread})

	buf := p.Data
	for len(buf) > 0 {
		msg, consumed, err := core.Decode(buf)
		if err != nil {
			return // malformed tail; drop (datagram semantics)
		}
		buf = buf[consumed:]
		switch m := msg.(type) {
		case core.Update:
			if n.cluster.cfg.Protocol == core.Lin {
				n.cache.ApplyUpdateLin(m)
			} else {
				n.cache.ApplyUpdateSC(m)
			}
		case core.Invalidation:
			ack, _ := n.cache.ApplyInvalidation(m)
			n.sendAck(m.From, ack)
		case core.Ack:
			if upd, done := n.cache.ApplyAck(m); done {
				n.completeLinWrite(m.Key, upd)
			}
		}
	}
}

// sendAck returns an ack to the writer node for the key's worker (the
// writer's completion table lives on that worker's stripe). The ack rides
// the worker's consistency lane toward the writer, so it piggybacks onto
// any update/invalidation packet already headed there. This runs on the
// receive dispatcher, which must never block on a full lane — a dispatcher
// stalled here would stop noting received packets toward credit updates,
// and two nodes doing that to each other would starve both senders for
// good — so a full lane falls back to an immediate uncoalesced send (the
// pre-coalescing behavior: unacquired, with the receiver's matching grant
// absorbed by the budget cap).
func (n *Node) sendAck(to uint8, ack core.Ack) {
	wk := n.workerFor(ack.Key)
	if wk.con.tryEnqueue(to, conMsg{kind: core.MsgAck, key: ack.Key, ts: ack.TS, from: ack.From}) {
		return
	}
	th := n.cluster.cfg.cacheThread(wk.idx)
	n.cluster.transport.Send(fabric.Packet{
		Src:   fabric.Addr{Node: n.id, Thread: th},
		Dst:   fabric.Addr{Node: to, Thread: th},
		Class: metrics.ClassAck,
		Data:  ack.Encode(nil),
	})
}

// broadcastUpdate fans an update out to every live peer via the key's
// worker's consistency lanes. The value slice is enqueued as-is on every
// lane — core hands out freshly-copied, immutable values, so coalescing
// never re-copies them; on zero-copy transports they go to the wire as
// their own packet segments (conPlane.sender).
func (n *Node) broadcastUpdate(upd core.Update) {
	n.broadcastConsistency(conMsg{kind: core.MsgUpdate, key: upd.Key, ts: upd.TS, value: upd.Value})
}

// broadcastInvalidation fans a Lin invalidation out to every live peer via
// the key's worker's consistency lanes.
func (n *Node) broadcastInvalidation(inv core.Invalidation) {
	n.broadcastConsistency(conMsg{kind: core.MsgInvalidation, key: inv.Key, ts: inv.TS, from: inv.From})
}

// broadcastConsistency enqueues one consistency message onto the key's
// worker's lane toward every *live* node. Dead peers are skipped here — no
// enqueue, no credit — and a peer excised after the enqueue is handled by
// the lane sender: the view change dropped its budget, so the sender's
// per-packet Acquire returns false and the queued batch toward it is
// discarded (mirroring how pipeline senders fail queued requests).
func (n *Node) broadcastConsistency(m conMsg) {
	wk := n.workerFor(m.key)
	view := n.cluster.view.Load()
	for peer := 0; peer < n.cluster.cfg.Nodes; peer++ {
		if peer == int(n.id) || !view.Live(peer) {
			continue
		}
		wk.con.enqueue(uint8(peer), m)
	}
}

// completeLinWrite wakes the session blocked in Put. On a shrunken view it
// additionally checks for an orphaned conflict-lost write: if this
// completion lost to a winner that has since left the view, the winner's
// update can never arrive, and the acknowledged staged value must be
// re-driven through a fresh write (on its own goroutine — the re-publish
// blocks on live acks, and this may be called under viewMu).
func (n *Node) completeLinWrite(key uint64, upd core.Update) {
	wk := n.workerFor(key)
	wk.waitMu.Lock()
	ch := wk.waiters[key]
	delete(wk.waiters, key)
	wk.waitMu.Unlock()
	if ch != nil {
		ch <- upd
	}
	if v := n.cluster.view.Load(); v.LiveCount() < n.cluster.cfg.Nodes {
		if u, ok := n.cache.TakeOrphanedLoserWrite(key); ok {
			go func() { _ = n.Put(u.Key, u.Value) }()
		}
	}
}

// tryRegisterLinWaiter installs the completion channel before the
// invalidations are broadcast (the acks may race back immediately). It
// fails if another session on this node already has a write in flight for
// the key.
func (n *Node) tryRegisterLinWaiter(key uint64) (chan core.Update, bool) {
	wk := n.workerFor(key)
	wk.waitMu.Lock()
	defer wk.waitMu.Unlock()
	if _, busy := wk.waiters[key]; busy {
		return nil, false
	}
	ch := make(chan core.Update, 1)
	wk.waiters[key] = ch
	return ch, true
}

// yield lets dispatcher goroutines run on small GOMAXPROCS settings.
func yield() { runtime.Gosched() }
