package cckvs

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The epoch must roll even when the interval observed nothing, with the
// return values and Stats agreeing: nothing was promoted or demoted and the
// caches kept their content (the old behaviour rotated the coordinator
// epoch but skipped the install and reported 0,0 with a k-key churn inside
// the coordinator).
func TestRefreshHotSetEmptyEpochRollsEpoch(t *testing.T) {
	kv, err := Open(Options{Nodes: 2, NumKeys: 100, CacheItems: 4, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	for epoch := 1; epoch <= 3; epoch++ {
		added, removed := kv.RefreshHotSet()
		if added != 0 || removed != 0 {
			t.Fatalf("empty epoch %d churned: +%d -%d", epoch, added, removed)
		}
		if got := kv.Stats().HotSetEpoch; got != uint64(epoch) {
			t.Fatalf("epoch = %d, want %d (the epoch must roll)", got, epoch)
		}
		if kv.Stats().HotSetSize != 4 {
			t.Fatalf("hot set size %d after empty epoch", kv.Stats().HotSetSize)
		}
	}
	// The bootstrap hot set is intact: key 0 still hits.
	before := kv.Stats().CacheHits
	if _, err := kv.Get(0); err != nil {
		t.Fatal(err)
	}
	if kv.Stats().CacheHits != before+1 {
		t.Fatal("initial hot set lost across empty refreshes")
	}
}

// RefreshHotSet keeps working while clients hammer the deployment — the
// refresh races the traffic by design (run with -race).
func TestRefreshHotSetUnderConcurrentTraffic(t *testing.T) {
	kv, err := Open(Options{Nodes: 3, NumKeys: 3000, CacheItems: 16, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	const clients = 4
	stop := make(chan struct{})
	errs := make(chan error, clients)
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			val := make([]byte, 8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Hammer a hot region far outside the bootstrap hot set
				// (keys 0..15), hopping regions as the run progresses so
				// successive epochs promote and demote for real.
				region := uint64(1000 + (i/400%3)*50)
				key := region + uint64((id+i)%16)
				if i%5 == 0 {
					val[0] = byte(i)
					if err := kv.Put(key, val); err != nil {
						errs <- fmt.Errorf("client %d put: %w", id, err)
						return
					}
				} else if _, err := kv.Get(key); err != nil {
					errs <- fmt.Errorf("client %d get: %w", id, err)
					return
				}
				ops.Add(1)
			}
		}(cl)
	}
	totalAdded := 0
	for epoch := 0; epoch < 10; epoch++ {
		// Let the clients put real traffic into the epoch before closing it.
		target := ops.Load() + 1500
		for ops.Load() < target {
			runtime.Gosched()
		}
		added, removed := kv.RefreshHotSet()
		if added < 0 || removed < 0 {
			t.Fatalf("negative churn %d/%d", added, removed)
		}
		totalAdded += added
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if totalAdded == 0 {
		t.Fatal("ten epochs under hot traffic promoted nothing")
	}
	if kv.Stats().HotSetEpoch != 10 {
		t.Fatalf("epoch = %d, want 10", kv.Stats().HotSetEpoch)
	}
	if kv.Stats().HotSetSize == 0 {
		t.Fatal("hot set emptied out")
	}
}
