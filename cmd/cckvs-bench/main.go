// Command cckvs-bench regenerates the paper's evaluation figures
// (EuroSys'18, §8) as text tables.
//
// Usage:
//
//	cckvs-bench -list             # show available experiments
//	cckvs-bench -fig fig8         # one figure
//	cckvs-bench -all              # every figure and ablation
//	cckvs-bench -local            # in-process cluster validation run
//	cckvs-bench -local -ops 5000  # longer validation run
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		local = flag.Bool("local", false, "run the in-process cluster validation")
		fig4  = flag.Bool("fig4", false, "run the Figure 4 serialization design space on the live cluster")
		coal  = flag.Bool("coalesce", false, "run the request-coalescing (batched vs per-request) ablation on the live cluster")
		ops   = flag.Int("ops", 2000, "operations per client for -local/-fig4/-coalesce")
	)
	flag.Parse()

	registry := experiments.All()
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	switch {
	case *list:
		for _, id := range ids {
			fmt.Println(id)
		}
	case *local:
		tab, err := experiments.LocalValidation(*ops)
		if err != nil {
			fmt.Fprintln(os.Stderr, "local validation:", err)
			os.Exit(1)
		}
		fmt.Print(tab.Render())
	case *fig4:
		tab, err := experiments.LocalSerializationAblation(*ops)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serialization ablation:", err)
			os.Exit(1)
		}
		fmt.Print(tab.Render())
	case *coal:
		tab, err := experiments.LocalCoalescingAblation(*ops)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coalescing ablation:", err)
			os.Exit(1)
		}
		fmt.Print(tab.Render())
	case *all:
		for _, id := range ids {
			fmt.Print(registry[id]().Render())
			fmt.Println()
		}
	case *fig != "":
		fn, ok := registry[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *fig)
			os.Exit(2)
		}
		fmt.Print(fn().Render())
	default:
		flag.Usage()
		os.Exit(2)
	}
}
