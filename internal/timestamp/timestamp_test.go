package timestamp

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompareOrdersByClockFirst(t *testing.T) {
	a := TS{Clock: 1, Writer: 9}
	b := TS{Clock: 2, Writer: 0}
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Fatalf("clock must dominate writer id: %v vs %v", a, b)
	}
}

func TestCompareTieBreaksOnWriter(t *testing.T) {
	a := TS{Clock: 7, Writer: 1}
	b := TS{Clock: 7, Writer: 2}
	if !a.Less(b) {
		t.Fatalf("equal clocks must order by writer id")
	}
	if a.Compare(a) != 0 {
		t.Fatalf("a timestamp must compare equal to itself")
	}
}

func TestNextIncrementsAndStamps(t *testing.T) {
	ts := TS{Clock: 41, Writer: 3}
	n := ts.Next(5)
	if n.Clock != 42 || n.Writer != 5 {
		t.Fatalf("Next = %v, want 42.5", n)
	}
	if !n.After(ts) {
		t.Fatalf("Next must order after its predecessor")
	}
}

func TestZeroIsSmallest(t *testing.T) {
	if Zero.After(TS{Clock: 0, Writer: 0}) {
		t.Fatalf("zero compares after itself")
	}
	if !(TS{Clock: 0, Writer: 1}).After(Zero) {
		t.Fatalf("0.1 must order after zero")
	}
}

func TestMax(t *testing.T) {
	a := TS{Clock: 3, Writer: 1}
	b := TS{Clock: 3, Writer: 2}
	if Max(a, b) != b || Max(b, a) != b {
		t.Fatalf("Max must pick the later timestamp symmetrically")
	}
}

// Property: Compare is a total order — antisymmetric and transitive — over
// arbitrary timestamps. This is exactly the property that gives the protocols
// write serialization.
func TestCompareTotalOrderProperty(t *testing.T) {
	anti := func(ac, bc uint32, aw, bw uint8) bool {
		a, b := TS{ac, aw}, TS{bc, bw}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Fatalf("antisymmetry: %v", err)
	}
	trans := func(ac, bc, cc uint32, aw, bw, cw uint8) bool {
		a, b, c := TS{ac, aw}, TS{bc, bw}, TS{cc, cw}
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Fatalf("transitivity: %v", err)
	}
}

// Property: distinct (clock, writer) pairs never compare equal, i.e. every
// write has a unique position in the order (the paper's §5.2 invariant).
func TestUniqueTimestampsProperty(t *testing.T) {
	f := func(ac, bc uint32, aw, bw uint8) bool {
		a, b := TS{ac, aw}, TS{bc, bw}
		if a == b {
			return a.Compare(b) == 0
		}
		return a.Compare(b) != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortingConvergence(t *testing.T) {
	// Shuffled replicas of the same write set must converge to one order.
	rng := rand.New(rand.NewSource(1))
	base := make([]TS, 0, 64)
	for c := uint32(0); c < 8; c++ {
		for w := uint8(0); w < 8; w++ {
			base = append(base, TS{Clock: c, Writer: w})
		}
	}
	for trial := 0; trial < 10; trial++ {
		perm := make([]TS, len(base))
		copy(perm, base)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		sort.Slice(perm, func(i, j int) bool { return perm[i].Less(perm[j]) })
		for i := range perm {
			if perm[i] != base[i] {
				t.Fatalf("trial %d: replicas disagree at %d: %v != %v", trial, i, perm[i], base[i])
			}
		}
	}
}

func TestString(t *testing.T) {
	if s := (TS{Clock: 12, Writer: 4}).String(); s != "12.4" {
		t.Fatalf("String = %q", s)
	}
}
