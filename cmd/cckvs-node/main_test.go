package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	stop := make(chan os.Signal, 1)
	stop <- os.Interrupt // flag/validation failures return before serving
	code := run(args, &out, &errb, stop, nil)
	return code, out.String(), errb.String()
}

func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := exec(t, "-definitely-not-a-flag"); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code, _, _ := exec(t, "-h"); code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
}

func TestIDOutOfRangeExitsTwo(t *testing.T) {
	code, _, errb := exec(t, "-id", "5", "-peers", "127.0.0.1:1,127.0.0.1:2")
	if code != 2 || !strings.Contains(errb, "out of range") {
		t.Fatalf("code=%d stderr=%q", code, errb)
	}
}

func TestUnknownProtocolExitsTwo(t *testing.T) {
	if code, _, _ := exec(t, "-protocol", "eventual"); code != 2 {
		t.Fatal("unknown protocol accepted")
	}
}

func TestUnknownSystemExitsTwo(t *testing.T) {
	if code, _, _ := exec(t, "-system", "dynamo"); code != 2 {
		t.Fatal("unknown system accepted")
	}
}

func TestPprofRefusesNonLoopback(t *testing.T) {
	code, _, errb := exec(t, "-pprof", "0.0.0.0:0")
	if code != 2 || !strings.Contains(errb, "loopback") {
		t.Fatalf("code=%d stderr=%q; want refusal of a non-loopback pprof bind", code, errb)
	}
}

// The -pprof endpoint serves a readable heap profile while the node runs.
func TestPprofServesHeapProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback deployment")
	}
	addrs := reservePorts(t, 1)
	out := &lockedBuffer{}
	stop := make(chan os.Signal, 1)
	code := make(chan int, 1)
	ready := make(chan struct{})
	go func() {
		code <- run([]string{
			"-id", "0", "-peers", addrs[0], "-keys", "2048", "-cache", "16",
			"-pprof", "127.0.0.1:0",
		}, out, out, stop, func(string) { close(ready) })
	}()
	<-ready

	var pprofAddr string
	for _, line := range strings.Split(out.String(), "\n") {
		if _, rest, ok := strings.Cut(line, "pprof on http://"); ok {
			pprofAddr = strings.TrimSuffix(rest, "/debug/pprof/")
		}
	}
	if pprofAddr == "" {
		t.Fatalf("no pprof address announced; output:\n%s", out.String())
	}
	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("heap profile: status=%d len=%d err=%v", resp.StatusCode, len(body), err)
	}

	stop <- os.Interrupt
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code %d; output:\n%s", c, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("node never exited")
	}
}

// reservePorts grabs n distinct loopback ports and releases them for the
// nodes to rebind (the usual test-deployment dance; the race window is
// negligible on loopback).
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// A real 3-process-shaped deployment: three run() instances over loopback
// TCP, driven end to end through a session client, then shut down cleanly.
func TestNodeEndToEndDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node loopback deployment")
	}
	addrs := reservePorts(t, 3)
	peers := strings.Join(addrs, ",")

	type nodeProc struct {
		stop chan os.Signal
		code chan int
		out  *lockedBuffer
	}
	procs := make([]*nodeProc, 3)
	var ready sync.WaitGroup
	for i := range procs {
		p := &nodeProc{
			stop: make(chan os.Signal, 1),
			code: make(chan int, 1),
			out:  &lockedBuffer{},
		}
		procs[i] = p
		ready.Add(1)
		go func(id int) {
			p.code <- run([]string{
				"-id", fmt.Sprint(id), "-peers", peers,
				"-protocol", "lin", "-keys", "2048", "-cache", "16", "-value", "16",
			}, p.out, p.out, p.stop, func(string) { ready.Done() })
		}(i)
	}
	ready.Wait()

	cl, err := cluster.DialTCP(250, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitReady(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p, _, err := cl.Refresh(0, cluster.DefaultHotSet(16)); err != nil || p != 16 {
		t.Fatalf("refresh: promoted=%d err=%v", p, err)
	}
	if err := cl.Put(1, 3, []byte("through-process")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(2, 3)
	if err != nil || string(got) != "through-process" {
		t.Fatalf("cross-node read: %q, %v", got, err)
	}
	st, err := cl.Stats(0)
	if err != nil || st.HotKeys != 16 {
		t.Fatalf("stats: %+v, %v", st, err)
	}

	for _, p := range procs {
		p.stop <- os.Interrupt
	}
	for i, p := range procs {
		select {
		case code := <-p.code:
			if code != 0 {
				t.Fatalf("node %d exit code %d; output:\n%s", i, code, p.out.String())
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("node %d never exited", i)
		}
		if out := p.out.String(); !strings.Contains(out, "serving") || !strings.Contains(out, "hits=") {
			t.Fatalf("node %d output missing serving/stats lines:\n%s", i, out)
		}
	}
}

// lockedBuffer makes the shared stdout/stderr writer race-safe between the
// node goroutine and the test's assertions.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
