package cluster

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/timestamp"
)

// ErrRetriesExhausted is returned when a read stalled on an invalidated
// entry for an implausibly long time — it indicates a protocol bug (the
// matching update never arrived) and exists so tests fail loudly instead of
// hanging.
var ErrRetriesExhausted = errors.New("cluster: read retries exhausted on invalid entry")

// ErrFrozenRetriesExhausted is returned when a write spun on a frozen entry
// for an implausibly long time — a hot-set reconfiguration always commits,
// aborts or removes the entry in bounded time, so this indicates a
// reconfiguration that died without cleaning up (e.g. the deployment closed
// mid-refresh).
var ErrFrozenRetriesExhausted = errors.New("cluster: write retries exhausted on frozen entry")

// invalidRetryLimit bounds the Read retry loop on Lin-invalidated entries.
const invalidRetryLimit = 10_000_000

// frozenRetryLimit bounds write retries on entries frozen by a hot-set
// reconfiguration. A transition always commits, aborts, or removes the
// entry in bounded time; hitting the limit means a reconfiguration died
// without cleaning up (e.g. the deployment closed mid-refresh) and the
// write fails loudly instead of spinning forever.
const frozenRetryLimit = 10_000_000

// cacheRead probes the symmetric cache, spinning while an entry is
// invalidated by an in-flight Lin write. hit=false reports a clean miss.
func (n *Node) cacheRead(key uint64) (value []byte, hit bool, err error) {
	for attempt := 0; ; attempt++ {
		v, _, err := n.cache.Read(key, nil)
		switch err {
		case nil:
			return v, true, nil
		case core.ErrInvalid:
			// An update is in flight; spin until it lands. The paper's
			// cache threads keep polling their receive queues here; our
			// dispatcher goroutine applies the update concurrently.
			n.InvalidRetries.Add(1)
			if attempt > invalidRetryLimit {
				return nil, false, ErrRetriesExhausted
			}
			yield()
		case core.ErrMiss:
			return nil, false, nil
		default:
			return nil, false, err
		}
	}
}

// homeDownErr names the dead home a failed-fast operation needed.
func homeDownErr(home int, key uint64) error {
	return fmt.Errorf("%w (key %d, home node %d)", ErrHomeDown, key, home)
}

// Get serves a client read arriving at this node (§6.1, "Reads"): probe the
// symmetric cache; on a miss, access the local shard or issue a remote
// access to the home node. A miss for a key homed on a node outside the
// membership view fails fast with ErrHomeDown instead of timing out — hot
// keys keep serving from the symmetric cache whoever their home is.
func (n *Node) Get(key uint64) ([]byte, error) {
	if n.cache != nil {
		v, hit, err := n.cacheRead(key)
		if err != nil {
			return nil, err
		}
		if hit {
			n.CacheHits.Add(1)
			return v, nil
		}
		n.CacheMisses.Add(1)
	}
	if n.cluster.replicated() {
		return n.getReplicated(key)
	}
	home := n.cluster.HomeNode(key)
	if home == int(n.id) {
		n.LocalOps.Add(1)
		v, _, err := n.kvs.Get(key, nil)
		return v, err
	}
	if !n.cluster.view.Load().Live(home) {
		return nil, homeDownErr(home, key)
	}
	n.RemoteOps.Add(1)
	v, _, err := n.RemoteGet(uint8(home), key)
	return v, err
}

// pendingOp tracks one started remote call of a batch operation.
type pendingOp struct {
	idx int
	ch  chan rpcResult
}

// MultiGet serves a batch of reads in one call: every key is probed in the
// cache (or the local shard) as it is scanned, while misses for remote homes
// are started on the coalescing pipeline immediately and collected at the
// end — the client side of the request coalescing of §6.3. All remote
// accesses of a batch are therefore in flight at once (one round-trip for
// the whole batch, few multi-request packets per home) without spawning any
// goroutines. values[i] is nil when keys[i] is absent; the first hard
// failure is returned after the whole batch settled.
//
// Ownership: the returned values are private to the caller, but locally
// served entries of one batch may share a single backing array (each local
// value is pinned under a store lease and copied once into a batch-shared
// buffer instead of allocating per key). The slices are disjoint and
// full-capacity-clipped, so reads and in-place writes are safe; appending
// to one is not.
func (n *Node) MultiGet(keys []uint64) ([][]byte, error) {
	out := make([][]byte, len(keys))
	var pend []pendingOp
	var firstErr error
	// Locally served values accumulate in one shared buffer; cuts records
	// offsets (not slices — append may reallocate the buffer) to materialize
	// after the scan.
	type localCut struct{ idx, off, end int }
	var vals []byte
	var cuts []localCut
	for i, key := range keys {
		if n.cache != nil {
			v, hit, err := n.cacheRead(key)
			if err != nil {
				return nil, err
			}
			if hit {
				n.CacheHits.Add(1)
				out[i] = v
				continue
			}
			n.CacheMisses.Add(1)
		}
		home := n.cluster.HomeNode(key)
		if n.cluster.replicated() {
			primary := n.cluster.primaryFor(key, n.cluster.view.Load())
			if primary < 0 {
				if firstErr == nil {
					firstErr = homeDownErr(home, key)
				}
				continue
			}
			if primary == int(n.id) {
				// Local acting-primary read (waits out a rejoin re-sync).
				v, err := n.getReplicated(key)
				if err == nil {
					out[i] = v
				} else if err != store.ErrNotFound && firstErr == nil {
					firstErr = err
				}
				continue
			}
			n.RemoteOps.Add(1)
			ch := n.workerFor(key).rpc.start(uint8(primary), wireReq{op: rpcOpGet, key: key})
			pend = append(pend, pendingOp{idx: i, ch: ch})
			continue
		}
		if home == int(n.id) {
			n.LocalOps.Add(1)
			lv, _, err := n.kvs.GetLease(key)
			if err == nil {
				off := len(vals)
				vals = append(vals, lv.Value()...)
				lv.Release()
				cuts = append(cuts, localCut{idx: i, off: off, end: len(vals)})
			} else if err != store.ErrNotFound {
				return nil, err
			}
			continue
		}
		if !n.cluster.view.Load().Live(home) {
			// Dead-homed key: fail fast for this entry, still serve the rest
			// of the batch (the batch contract reports the first error after
			// everything settled).
			if firstErr == nil {
				firstErr = homeDownErr(home, key)
			}
			continue
		}
		n.RemoteOps.Add(1)
		ch := n.workerFor(key).rpc.start(uint8(home), wireReq{op: rpcOpGet, key: key})
		pend = append(pend, pendingOp{idx: i, ch: ch})
	}
	// The shared buffer is final now: materialize the local values.
	for _, c := range cuts {
		out[c.idx] = vals[c.off:c.end:c.end]
	}
	for _, p := range pend {
		res, err := awaitRPC(p.ch)
		if (err != nil || res.status == rpcStatusRetry) && n.cluster.replicated() {
			// The primary died or is re-syncing mid-batch; the single-op
			// path owns the promotion-chasing retry.
			v, gerr := n.getReplicated(keys[p.idx])
			if gerr == nil {
				out[p.idx] = v
			} else if gerr != store.ErrNotFound && firstErr == nil {
				firstErr = gerr
			}
			continue
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if res.status == rpcStatusOK {
			out[p.idx] = res.value
		}
	}
	return out, firstErr
}

// Put serves a client write arriving at this node (§6.1, "Writes"): a cache
// hit runs the configured consistency protocol; a miss forwards the write
// to the home node. A miss-path write whose probe went stale — the key
// (re)entered the hot set before the write reached the home shard — bounces
// back and re-probes, so it can never overtake a promotion's fetch of the
// home value.
func (n *Node) Put(key uint64, value []byte) error {
	for attempt := 0; ; attempt++ {
		if attempt > frozenRetryLimit {
			return ErrFrozenRetriesExhausted
		}
		done, err := n.putCached(key, value)
		if err != nil || done {
			return err
		}
		if n.cluster.replicated() {
			bounced, err := n.replicatedPut(key, value)
			if err != nil {
				return err
			}
			if !bounced {
				return nil
			}
			// The key went hot mid-flight at some replica; re-probe the
			// cache and re-execute through the cache protocol.
			n.FrozenRetries.Add(1)
			yield()
			continue
		}
		home := n.cluster.HomeNode(key)
		if home == int(n.id) {
			bounced := n.localHomePut(key, value)
			if !bounced {
				return nil
			}
		} else if !n.cluster.view.Load().Live(home) {
			// Cache miss for a dead-homed key: fail fast; the write can be
			// retried once the home rejoins. (Hot keys never reach here —
			// they commit through the cache protocol among the live
			// replicas whoever their home is.)
			return homeDownErr(home, key)
		} else {
			n.RemoteOps.Add(1)
			err := n.RemotePut(uint8(home), key, value)
			if err != errPutBounced {
				return err
			}
		}
		n.FrozenRetries.Add(1)
		yield()
	}
}

// localHomePut applies a miss-path put to this node's own shard, unless the
// key is (again) cached — the stale-probe re-check runs under homeMu, the
// mutex a local promotion fetch holds while reading the shard, so the put
// either lands before the fetch or bounces back through the cache.
func (n *Node) localHomePut(key uint64, value []byte) (bounced bool) {
	wk := n.workerFor(key)
	wk.homeMu.Lock()
	defer wk.homeMu.Unlock()
	if n.cache != nil && n.cache.Contains(key) {
		return true
	}
	n.LocalOps.Add(1)
	n.localKVSPut(key, value)
	return false
}

// MultiPut serves a batch of writes in one call: hot keys run the
// configured consistency protocol as usual, while cache misses for remote
// homes are started on the coalescing pipeline immediately and their acks
// collected at the end, so the whole batch's forwards overlap. The first
// failure is returned after the batch settled.
func (n *Node) MultiPut(keys []uint64, values [][]byte) error {
	var pend []pendingOp
	var firstErr error
	for i, key := range keys {
		done, err := n.putCached(key, values[i])
		if err != nil {
			return err
		}
		if done {
			continue
		}
		if n.cluster.replicated() {
			// A replicated put is a multi-phase exchange of its own; run the
			// single-op path (which owns the bounce/promotion retries)
			// instead of the one-shot pipelined forward.
			if err := n.Put(key, values[i]); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		home := n.cluster.HomeNode(key)
		if home == int(n.id) {
			if n.localHomePut(key, values[i]) {
				// Stale probe (the key re-entered the hot set): re-execute
				// through the full write path.
				n.FrozenRetries.Add(1)
				if err := n.Put(key, values[i]); err != nil {
					return err
				}
			}
			continue
		}
		if !n.cluster.view.Load().Live(home) {
			if firstErr == nil {
				firstErr = homeDownErr(home, key)
			}
			continue
		}
		n.RemoteOps.Add(1)
		ch := n.workerFor(key).rpc.start(uint8(home), wireReq{op: rpcOpPut, key: key, value: values[i]})
		pend = append(pend, pendingOp{idx: i, ch: ch})
	}
	for _, p := range pend {
		res, err := awaitRPC(p.ch)
		if err == nil && res.status == rpcStatusRetry {
			// Bounced by the home: the key went hot mid-flight; re-probe
			// and re-execute this write through the cache protocol.
			err = n.Put(keys[p.idx], values[p.idx])
		} else if err == nil && res.status != rpcStatusOK {
			err = fmt.Errorf("cluster: remote put failed (status %d)", res.status)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// putCached attempts the write through the symmetric cache under the
// configured protocol. done=false with nil error means the key missed the
// cache (the caller forwards to the home shard); the miss is already
// counted.
func (n *Node) putCached(key uint64, value []byte) (done bool, err error) {
	if n.cache == nil {
		return false, nil
	}
	if n.cluster.cfg.Protocol == core.Lin {
		done, err = n.putLin(key, value)
	} else {
		done, err = n.putSC(key, value)
	}
	if err != nil || done {
		return done, err
	}
	n.CacheMisses.Add(1)
	return false, nil
}

// putSC runs an SC cache write under the configured Figure 4 serialization
// design. done=false with nil error means the key missed the cache. A write
// that finds its entry frozen mid-demotion retries until the key either
// unfreezes (never happens today: demotions always commit) or leaves the hot
// set, at which point it misses to the home shard — which by then holds the
// demotion's write-back, so the write can never be clobbered by it.
func (n *Node) putSC(key uint64, value []byte) (bool, error) {
	const coordinator = 0 // primary/sequencer node when selected
	switch n.cluster.cfg.Serialization {
	case SerializationPrimary:
		for attempt := 0; ; attempt++ {
			if attempt > frozenRetryLimit {
				return false, ErrFrozenRetriesExhausted
			}
			if !n.cache.Contains(key) {
				return false, nil // putCached counts the miss
			}
			if n.id == coordinator {
				done, retry, err := n.commitSC(n.cache.WriteSC(key, value))
				if retry {
					continue
				}
				return done, err
			}
			// All writes serialize at the primary (Figure 4a): forward and
			// wait for its ack; the update reaches us via broadcast.
			err := n.PrimaryWrite(coordinator, key, value)
			if err == errPrimaryMiss {
				// The hot set shifted under us; wait for our own commit
				// and re-probe (the write then goes to the home shard).
				yield()
				continue
			}
			if err == nil {
				n.CacheHits.Add(1)
				return true, nil
			}
			return false, err
		}
	case SerializationSequencer:
		for attempt := 0; ; attempt++ {
			if attempt > frozenRetryLimit {
				return false, ErrFrozenRetriesExhausted
			}
			if !n.cache.Contains(key) {
				return false, nil // putCached counts the miss
			}
			var ts timestamp.TS
			var err error
			if n.id == coordinator {
				// The sequencer's own writes take the timestamp locally.
				wk := n.workerFor(key)
				wk.seqMu.Lock()
				wk.seqClocks[key]++
				ts = timestamp.TS{Clock: wk.seqClocks[key], Writer: n.id}
				wk.seqMu.Unlock()
			} else if ts, err = n.SeqTS(coordinator, key); err != nil {
				return false, err
			}
			// On a frozen retry the consumed sequencer timestamp is
			// abandoned; gaps in the per-key clock are harmless (it only
			// ever advances).
			done, retry, err := n.commitSC(n.cache.WriteSCWithTS(key, value, ts))
			if retry {
				continue
			}
			return done, err
		}
	default:
		for attempt := 0; ; attempt++ {
			if attempt > frozenRetryLimit {
				return false, ErrFrozenRetriesExhausted
			}
			// Non-blocking: the local write is already visible; propagate
			// asynchronously to all replicas (§5.2).
			done, retry, err := n.commitSC(n.cache.WriteSC(key, value))
			if retry {
				continue
			}
			return done, err
		}
	}
}

// commitSC finishes one SC cache-write attempt, whatever serialization
// design produced it: a successful write is broadcast; a frozen entry
// (mid-demotion) yields and asks the caller to retry; a miss falls through
// to the home-shard path.
func (n *Node) commitSC(upd core.Update, err error) (done, retry bool, _ error) {
	switch err {
	case nil:
		n.CacheHits.Add(1)
		n.broadcastUpdate(upd)
		return true, false, nil
	case core.ErrFrozen:
		n.FrozenRetries.Add(1)
		yield()
		return false, true, nil
	case core.ErrMiss:
		return false, false, nil // putCached counts the miss
	default:
		return false, false, err
	}
}

// putLin runs the blocking two-phase Lin write. done=false with nil error
// means the key missed the cache.
func (n *Node) putLin(key uint64, value []byte) (bool, error) {
	for attempt := 0; ; attempt++ {
		if attempt > frozenRetryLimit {
			return false, ErrFrozenRetriesExhausted
		}
		// Register the waiter first: acks can arrive the moment the
		// invalidations hit the wire. Registration doubles as the
		// node-local write mutex for the key: if a waiter exists, another
		// session's write is in flight.
		ch, ok := n.tryRegisterLinWaiter(key)
		if !ok {
			n.WritePendingRetries.Add(1)
			yield()
			continue
		}
		inv, err := n.cache.WriteLinStart(key, value)
		switch err {
		case nil:
			n.CacheHits.Add(1)
			n.broadcastInvalidation(inv)
			// A view flip may have excised a counted peer between the
			// write's live-set snapshot and the broadcast — or this node may
			// be the only live member — in which case no further ack will
			// arrive; re-run the completion check so the write can never
			// wait on a peer that is gone. Guarded by one atomic view load:
			// at full membership (the common case) no recheck — and no
			// second entry-lock acquisition — is needed, and flips after
			// this point are covered by Cache.SetLive's scan.
			if v := n.cluster.view.Load(); v.LiveCount() < n.cluster.cfg.Nodes {
				if upd, done := n.cache.RecheckPending(key); done {
					n.completeLinWrite(key, upd)
				}
			}
			// Block until the last ack completes the write (§5.2: "writes
			// are synchronous").
			upd := <-ch
			n.broadcastUpdate(upd)
			return true, nil
		case core.ErrWritePending:
			// Another session on this node is writing the key; wait for
			// it and retry — writes must serialize.
			n.unregisterLinWaiter(key, ch)
			n.WritePendingRetries.Add(1)
			yield()
			continue
		case core.ErrFrozen:
			// The key is being demoted; retry until it leaves the hot set
			// and the write misses to the home shard (which by then holds
			// the demotion's write-back).
			n.unregisterLinWaiter(key, ch)
			n.FrozenRetries.Add(1)
			yield()
			continue
		case core.ErrMiss:
			n.unregisterLinWaiter(key, ch)
			return false, nil
		default:
			n.unregisterLinWaiter(key, ch)
			return false, err
		}
	}
}

// unregisterLinWaiter removes a waiter that never armed (write refused).
func (n *Node) unregisterLinWaiter(key uint64, ch chan core.Update) {
	wk := n.workerFor(key)
	wk.waitMu.Lock()
	if wk.waiters[key] == ch {
		delete(wk.waiters, key)
	}
	wk.waitMu.Unlock()
}

// localKVSPut writes a cache-missing key to the local shard with a fresh
// serialization timestamp (a missing key advances from the zero timestamp).
func (n *Node) localKVSPut(key uint64, value []byte) {
	_, ts, _ := n.kvs.Get(key, nil)
	n.kvs.Put(key, value, ts.Next(n.id))
}
